# Tier-1 verification and developer shortcuts. `make tier1` is the gate
# every PR must keep green; it race-checks the concurrent pipeline stages
# (file processing, sharded mining and FP-tree construction, parallel scan)
# and enforces gofmt cleanliness on top of the plain build-and-test cycle.

GO ?= go

.PHONY: tier1 build vet fmt test race bench serve-smoke

tier1: build vet fmt race serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks of the parallel pipeline: compare the serial reference path
# against the all-CPU path (BenchmarkScan, BenchmarkPruneUncommon,
# BenchmarkMinePatterns show the speedup on multi-core runners), then
# record the mining-stage numbers (ns/op, allocs/op, FP-tree node count)
# into BENCH_mining.json so the perf trajectory is tracked per commit.
bench:
	$(GO) test -run xxx -bench 'BenchmarkScan$$|BenchmarkPruneUncommon|BenchmarkMinePatterns' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkServeScan$$' -benchmem ./internal/serve
	BENCH_JSON=BENCH_mining.json $(GO) test -run 'TestWriteMiningBenchJSON$$' -count=1 -v .
	BENCH_KNOWLEDGE_JSON=BENCH_knowledge.json $(GO) test -run 'TestWriteKnowledgeBenchJSON$$' -count=1 -v .
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -run 'TestWriteServeBenchJSON$$' -count=1 -v ./internal/serve

# End-to-end smoke test of the serving layer: generate a corpus, mine
# binary knowledge, boot namer-serve on a random port, and require 200s
# from /healthz and /v1/scan. The /metrics scrape must parse as
# Prometheus text format and carry the request counter and every
# parse/scan/classify stage histogram. A TERM at the end checks clean
# shutdown.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp" ./cmd/namer-corpus ./cmd/namer-mine ./cmd/namer-serve; \
	"$$tmp/namer-corpus" -lang python -repos 12 -files 3 -out "$$tmp/corpus" >/dev/null; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -out "$$tmp/knowledge.bin" >/dev/null; \
	"$$tmp/namer-serve" -addr 127.0.0.1:0 -knowledge "$$tmp/knowledge.bin" \
		-ready-file "$$tmp/addr" >"$$tmp/serve.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "serve-smoke: server did not start"; cat "$$tmp/serve.log"; exit 1; }; \
	addr=$$(head -n1 "$$tmp/addr"); \
	code=$$(curl -s -o "$$tmp/health.json" -w '%{http_code}' "http://$$addr/healthz"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /healthz returned $$code"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/scan.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /v1/scan returned $$code"; cat "$$tmp/scan.json"; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"source":"def f(:\n"}' "http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: malformed-source scan returned $$code"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/metrics.txt" -w '%{http_code}' "http://$$addr/metrics"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /metrics returned $$code"; exit 1; }; \
	for series in 'namer_scan_requests_total' 'namer_scans_total' \
		'namer_request_seconds_bucket' \
		'namer_stage_seconds_bucket{stage="parse",le="+Inf"}' \
		'namer_stage_seconds_bucket{stage="scan",le="+Inf"}' \
		'namer_stage_seconds_bucket{stage="classify",le="+Inf"}' \
		'namer_http_responses_total{status="200"}' \
		'namer_scan_inflight'; do \
		grep -qF "$$series" "$$tmp/metrics.txt" || \
			{ echo "serve-smoke: /metrics missing $$series"; cat "$$tmp/metrics.txt"; exit 1; }; \
	done; \
	bad=$$(grep -cvE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?(\{[^{}]*\})? -?[0-9.eE+-]+|)$$' "$$tmp/metrics.txt" || true); \
	[ "$$bad" = 0 ] || { echo "serve-smoke: $$bad unparsable /metrics lines"; \
		grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?(\{[^{}]*\})? -?[0-9.eE+-]+|)$$' "$$tmp/metrics.txt"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "serve-smoke: unclean shutdown"; exit 1; }; \
	pid=; \
	echo "serve-smoke: ok ($$addr)"
