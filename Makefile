# Tier-1 verification and developer shortcuts. `make tier1` is the gate
# every PR must keep green; it race-checks the concurrent pipeline stages
# (file processing, sharded mining and FP-tree construction, parallel scan)
# and enforces gofmt cleanliness on top of the plain build-and-test cycle.

GO ?= go

.PHONY: tier1 build vet fmt test race bench

tier1: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks of the parallel pipeline: compare the serial reference path
# against the all-CPU path (BenchmarkScan, BenchmarkPruneUncommon,
# BenchmarkMinePatterns show the speedup on multi-core runners), then
# record the mining-stage numbers (ns/op, allocs/op, FP-tree node count)
# into BENCH_mining.json so the perf trajectory is tracked per commit.
bench:
	$(GO) test -run xxx -bench 'BenchmarkScan$$|BenchmarkPruneUncommon|BenchmarkMinePatterns' -benchmem .
	BENCH_JSON=BENCH_mining.json $(GO) test -run 'TestWriteMiningBenchJSON$$' -count=1 -v .
