# Tier-1 verification and developer shortcuts. `make tier1` is the gate
# every PR must keep green; it race-checks the concurrent pipeline stages
# (file processing, sharded mining and FP-tree construction, parallel scan)
# and enforces gofmt cleanliness on top of the plain build-and-test cycle.

GO ?= go

.PHONY: tier1 build vet fmt test race bench serve-smoke driver-gate obs-gate

tier1: build vet fmt race serve-smoke driver-gate obs-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks of the parallel pipeline: compare the serial reference path
# against the all-CPU path (BenchmarkScan, BenchmarkPruneUncommon,
# BenchmarkMinePatterns show the speedup on multi-core runners), then
# record the mining-stage numbers (ns/op, allocs/op, FP-tree node count)
# into BENCH_mining.json and the per-stage span durations of one traced
# end-to-end run into BENCH_trace.json, so the perf trajectory is
# tracked per commit.
bench:
	$(GO) test -run xxx -bench 'BenchmarkScan$$|BenchmarkPruneUncommon|BenchmarkMinePatterns' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkServeScan$$' -benchmem ./internal/serve
	BENCH_JSON=BENCH_mining.json $(GO) test -run 'TestWriteMiningBenchJSON$$' -count=1 -v .
	BENCH_TRACE_JSON=BENCH_trace.json $(GO) test -run 'TestWriteTraceBenchJSON$$' -count=1 -v .
	BENCH_KNOWLEDGE_JSON=BENCH_knowledge.json $(GO) test -run 'TestWriteKnowledgeBenchJSON$$' -count=1 -v .
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -run 'TestWriteServeBenchJSON$$' -count=1 -v ./internal/serve

# Determinism gate for the distributed miner: the knowledge file from a
# 2-shard driver run with spawned worker processes must be byte-for-byte
# identical to a serial single-process mine of the same corpus, and a
# second driver run over the same checkpoint directory must reuse every
# shard checkpoint and still produce the same bytes.
driver-gate:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp" ./cmd/namer-corpus ./cmd/namer-mine; \
	"$$tmp/namer-corpus" -lang python -repos 12 -files 3 -out "$$tmp/corpus" >/dev/null; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -parallelism 1 \
		-out "$$tmp/serial.bin" >/dev/null 2>&1; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -driver -shards 2 -worker-procs 2 \
		-checkpoints "$$tmp/ck" -out "$$tmp/driver.bin" >"$$tmp/driver.log" 2>&1 || \
		{ echo "driver-gate: driver mine failed"; cat "$$tmp/driver.log"; exit 1; }; \
	cmp "$$tmp/serial.bin" "$$tmp/driver.bin" || \
		{ echo "driver-gate: 2-shard driver knowledge differs from serial mine"; exit 1; }; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -driver -shards 2 -worker-procs 2 \
		-checkpoints "$$tmp/ck" -out "$$tmp/resumed.bin" >"$$tmp/resume.log" 2>&1 || \
		{ echo "driver-gate: resumed driver mine failed"; cat "$$tmp/resume.log"; exit 1; }; \
	grep -qE 'driver: 2 shards \(2 stmts \+ 2 trees checkpoints reused' "$$tmp/resume.log" || \
		{ echo "driver-gate: resume did not reuse the shard checkpoints"; cat "$$tmp/resume.log"; exit 1; }; \
	cmp "$$tmp/serial.bin" "$$tmp/resumed.bin" || \
		{ echo "driver-gate: resumed driver knowledge differs from serial mine"; exit 1; }; \
	echo "driver-gate: ok (2-shard driver == serial, full checkpoint reuse)"

# Observability gate for the distributed miner. The in-process half
# (TestObsGate) runs a 2-shard subprocess mine under a trace, a flight
# recorder, and a live status server, scraping /status, /metrics, and
# /debug/pprof mid-run, and validates the merged Chrome trace (both
# worker PID lanes, checkpoint/resume-validation spans, no malformed
# events) plus histogram-bucket monotonicity on /metrics. The binary
# half runs the real namer-mine with -trace, -status-addr, and JSON
# debug logging and asserts the trace file carries span lanes from at
# least three distinct processes (driver lane + two workers), the
# worker/checkpoint spans survived shipping, the stderr stream is
# structured (JSON records, with captured worker lines tagged
# worker_pid), and stdout ends with the per-shard resource table and
# per-worker rusage rows.
obs-gate:
	$(GO) test -run 'TestObsGate$$|TestResultOmitsEmptySpanBatch$$' -count=1 ./internal/driver
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp" ./cmd/namer-corpus ./cmd/namer-mine; \
	"$$tmp/namer-corpus" -lang python -repos 12 -files 3 -out "$$tmp/corpus" >/dev/null; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -driver -shards 2 -worker-procs 2 \
		-checkpoints "$$tmp/ck" -out "$$tmp/driver.bin" -trace "$$tmp/trace.json" \
		-status-addr 127.0.0.1:0 -status-ready-file "$$tmp/status-addr" \
		-log-level debug -log-format json >"$$tmp/mine.out" 2>"$$tmp/mine.err" || \
		{ echo "obs-gate: observed driver mine failed"; cat "$$tmp/mine.err"; exit 1; }; \
	[ -s "$$tmp/status-addr" ] || { echo "obs-gate: status server never published its address"; exit 1; }; \
	pids=$$(grep -o '"pid":[0-9]*' "$$tmp/trace.json" | sort -u | wc -l); \
	[ "$$pids" -ge 3 ] || { echo "obs-gate: trace has $$pids process lanes, want >= 3 (driver + 2 workers)"; exit 1; }; \
	for span in job load_shard build_shard_tree checkpoint_write checkpoint_read resume_validate; do \
		grep -qF "\"$$span\"" "$$tmp/trace.json" || \
			{ echo "obs-gate: merged trace missing $$span span"; exit 1; }; \
	done; \
	grep -cq '"process_name"' "$$tmp/trace.json" || \
		{ echo "obs-gate: trace has no process_name lane metadata"; exit 1; }; \
	grep -q '"level":"info"' "$$tmp/mine.err" || \
		{ echo "obs-gate: -log-format json produced no JSON records"; head "$$tmp/mine.err"; exit 1; }; \
	grep -q '"worker_pid":' "$$tmp/mine.err" || \
		{ echo "obs-gate: no captured worker stderr tagged with worker_pid"; head "$$tmp/mine.err"; exit 1; }; \
	grep -q 'driver: per-shard resources:' "$$tmp/mine.out" || \
		{ echo "obs-gate: stdout missing the per-shard resource table"; cat "$$tmp/mine.out"; exit 1; }; \
	grep -qE 'driver: worker pid=[0-9]+ cpu=' "$$tmp/mine.out" || \
		{ echo "obs-gate: stdout missing per-worker rusage rows"; cat "$$tmp/mine.out"; exit 1; }; \
	echo "obs-gate: ok (merged trace, live status server, structured logs, resource table)"

# End-to-end smoke test of the serving layer: generate a corpus, mine
# binary knowledge (with a -trace export that must contain the FP
# stages), boot namer-serve on a random port with the flight recorder
# on, and require 200s from /healthz, /v1/scan, and /v1/diff (both the
# before/after and the unified-diff "patch" forms). Repeating the same
# scan must hit the per-file cache (asserted in the response and in the
# namer_cache_hits_total counter). The /metrics scrape must parse as
# Prometheus text format and carry the request counter, every
# parse/scan/classify/diff stage histogram, the cache counters and
# gauges, the Go runtime gauges, and the build-info series.
# /debug/traces must list the scan's trace and its Chrome export must
# cover the parse/match/classify pipeline. Then the hot-swap path:
# SIGHUP with a scan in flight (the scan must still return 200), the
# namer_knowledge_reloads_total counter and namer_knowledge_info gauge
# on /metrics, POST /debug/reload returning "status": "ok", and the
# scan cache rotating with the bundle (cold then warm again after the
# swap). Then one full editor session: open, a full-content change, an
# incremental range edit (the response must say "scan": "incremental"),
# another edit across a second SIGHUP reload (still 200, never
# "failed"), the namer_sessions gauge at 1, close, and a 404 for an
# edit after close. A TERM at the end checks clean shutdown. Every
# histogram on /metrics must have le-ordered, cumulative buckets.
# Finally a second server with -max-inflight 1: while a deliberately
# slow scan (tens of thousands of generated statements) holds the only
# slot — confirmed via the namer_scan_inflight gauge, not a sleep — a
# concurrent scan must be shed with 429 and a Retry-After header, and
# the held scan must still complete with 200.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid $$pid2 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp" ./cmd/namer-corpus ./cmd/namer-mine ./cmd/namer-serve; \
	"$$tmp/namer-serve" -version >/dev/null || { echo "serve-smoke: -version failed"; exit 1; }; \
	"$$tmp/namer-corpus" -lang python -repos 12 -files 3 -out "$$tmp/corpus" >/dev/null; \
	"$$tmp/namer-mine" -lang python -dir "$$tmp/corpus" -out "$$tmp/knowledge.bin" \
		-trace "$$tmp/mine-trace.json" >/dev/null 2>"$$tmp/mine.log"; \
	for span in load_corpus process_files pass1_count build_tree fp_growth prune_uncommon; do \
		grep -qF "\"$$span\"" "$$tmp/mine-trace.json" || \
			{ echo "serve-smoke: mine trace missing $$span span"; cat "$$tmp/mine-trace.json"; exit 1; }; \
	done; \
	"$$tmp/namer-serve" -addr 127.0.0.1:0 -knowledge "$$tmp/knowledge.bin" -traces \
		-ready-file "$$tmp/addr" >"$$tmp/serve.log" 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "serve-smoke: server did not start"; cat "$$tmp/serve.log"; exit 1; }; \
	addr=$$(head -n1 "$$tmp/addr"); \
	code=$$(curl -s -o "$$tmp/health.json" -w '%{http_code}' "http://$$addr/healthz"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /healthz returned $$code"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/scan.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /v1/scan returned $$code"; cat "$$tmp/scan.json"; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"source":"def f(:\n"}' "http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: malformed-source scan returned $$code"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/scan2.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: warm /v1/scan returned $$code"; cat "$$tmp/scan2.json"; exit 1; }; \
	grep -qE '"cache_hits": [1-9]' "$$tmp/scan2.json" || \
		{ echo "serve-smoke: repeated scan did not hit the cache"; cat "$$tmp/scan2.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/diff.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","files":[{"path":"d.py","before":"value = 1\n","after":"value = 1\nupload_cnt = upload_count + 1\n"}],"all":true}' \
		"http://$$addr/v1/diff"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /v1/diff returned $$code"; cat "$$tmp/diff.json"; exit 1; }; \
	grep -qE '"changed_statements": [1-9]' "$$tmp/diff.json" || \
		{ echo "serve-smoke: /v1/diff saw no changed statements"; cat "$$tmp/diff.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/diff2.json" -w '%{http_code}' -X POST \
		-d '{"files":[{"path":"p.py","before":"a = 1\n","patch":"@@ -1,1 +1,2 @@\n a = 1\n+b = 2\n"}]}' \
		"http://$$addr/v1/diff"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: patch /v1/diff returned $$code"; cat "$$tmp/diff2.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/metrics.txt" -w '%{http_code}' "http://$$addr/metrics"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /metrics returned $$code"; exit 1; }; \
	for series in 'namer_scan_requests_total' 'namer_scans_total' \
		'namer_request_seconds_bucket' \
		'namer_stage_seconds_bucket{stage="parse",le="+Inf"}' \
		'namer_stage_seconds_bucket{stage="scan",le="+Inf"}' \
		'namer_stage_seconds_bucket{stage="classify",le="+Inf"}' \
		'namer_stage_seconds_bucket{stage="diff",le="+Inf"}' \
		'namer_http_responses_total{status="200"}' \
		'namer_scan_inflight' \
		'namer_diff_requests_total' \
		'namer_cache_misses_total' \
		'namer_cache_evictions_total' \
		'namer_cache_bytes' \
		'namer_cache_entries' \
		'go_goroutines' \
		'go_heap_alloc_bytes' \
		'go_gc_pause_seconds_bucket' \
		'namer_build_info{'; do \
		grep -qF "$$series" "$$tmp/metrics.txt" || \
			{ echo "serve-smoke: /metrics missing $$series"; cat "$$tmp/metrics.txt"; exit 1; }; \
	done; \
	grep -qE '^namer_cache_hits_total [1-9]' "$$tmp/metrics.txt" || \
		{ echo "serve-smoke: namer_cache_hits_total did not count the warm scan"; \
		  grep namer_cache "$$tmp/metrics.txt"; exit 1; }; \
	bad=$$(grep -cvE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?(\{[^{}]*\})? -?[0-9.eE+-]+|)$$' "$$tmp/metrics.txt" || true); \
	[ "$$bad" = 0 ] || { echo "serve-smoke: $$bad unparsable /metrics lines"; \
		grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?(\{[^{}]*\})? -?[0-9.eE+-]+|)$$' "$$tmp/metrics.txt"; exit 1; }; \
	awk '/_bucket\{/ { \
		line=$$0; le=line; sub(/.*le="/,"",le); sub(/".*/,"",le); \
		series=$$1; sub(/le="[^"]*",?/,"",series); \
		lev = (le=="+Inf") ? 1e308 : le+0; \
		if (series in lastle && lev <= lastle[series]) { print "le order violation: " line; bad=1 } \
		if (series in lastct && $$NF+0 < lastct[series]) { print "non-cumulative bucket: " line; bad=1 } \
		lastle[series]=lev; lastct[series]=$$NF+0 } \
		END { exit bad }' "$$tmp/metrics.txt" || \
		{ echo "serve-smoke: /metrics histogram buckets not monotone"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/traces.json" -w '%{http_code}' "http://$$addr/debug/traces"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /debug/traces returned $$code"; exit 1; }; \
	grep -qF '"scan_request"' "$$tmp/traces.json" || \
		{ echo "serve-smoke: /debug/traces has no recorded scan"; cat "$$tmp/traces.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/trace-slowest.json" -w '%{http_code}' "http://$$addr/debug/traces?id=slowest"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /debug/traces?id=slowest returned $$code"; exit 1; }; \
	for span in parse match classify; do \
		grep -qF "\"$$span\"" "$$tmp/trace-slowest.json" || \
			{ echo "serve-smoke: slowest trace missing $$span span"; cat "$$tmp/trace-slowest.json"; exit 1; }; \
	done; \
	grep -qF '"knowledge_format"' "$$tmp/health.json" || \
		{ echo "serve-smoke: /healthz missing knowledge_format"; cat "$$tmp/health.json"; exit 1; }; \
	grep -qF '"knowledge_hash"' "$$tmp/health.json" || \
		{ echo "serve-smoke: /healthz missing knowledge_hash"; cat "$$tmp/health.json"; exit 1; }; \
	curl -s -o "$$tmp/inflight.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan" >"$$tmp/inflight.code" & cpid=$$!; \
	kill -HUP $$pid; \
	wait $$cpid; \
	[ "$$(cat "$$tmp/inflight.code")" = 200 ] || \
		{ echo "serve-smoke: scan in flight across SIGHUP returned $$(cat "$$tmp/inflight.code")"; \
		  cat "$$tmp/inflight.json"; exit 1; }; \
	for i in $$(seq 1 50); do \
		curl -s "http://$$addr/metrics" | grep -qE '^namer_knowledge_reloads_total [1-9]' && break; sleep 0.1; \
	done; \
	curl -s -o "$$tmp/metrics2.txt" "http://$$addr/metrics"; \
	grep -qE '^namer_knowledge_reloads_total [1-9]' "$$tmp/metrics2.txt" || \
		{ echo "serve-smoke: SIGHUP did not bump namer_knowledge_reloads_total"; \
		  grep namer_knowledge "$$tmp/metrics2.txt"; cat "$$tmp/serve.log"; exit 1; }; \
	grep -qF 'namer_knowledge_info{' "$$tmp/metrics2.txt" || \
		{ echo "serve-smoke: /metrics missing namer_knowledge_info"; exit 1; }; \
	grep -qE '^namer_knowledge_reload_last_success 1' "$$tmp/metrics2.txt" || \
		{ echo "serve-smoke: namer_knowledge_reload_last_success not 1 after SIGHUP"; \
		  grep namer_knowledge "$$tmp/metrics2.txt"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/reload.json" -w '%{http_code}' -X POST "http://$$addr/debug/reload"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: /debug/reload returned $$code"; cat "$$tmp/reload.json"; exit 1; }; \
	grep -qF '"status": "ok"' "$$tmp/reload.json" || \
		{ echo "serve-smoke: /debug/reload body not ok"; cat "$$tmp/reload.json"; exit 1; }; \
	grep -qF '"content_hash"' "$$tmp/reload.json" || \
		{ echo "serve-smoke: /debug/reload body missing knowledge identity"; cat "$$tmp/reload.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/scan3.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: post-reload scan returned $$code"; cat "$$tmp/scan3.json"; exit 1; }; \
	grep -qF '"cache_hits": 0' "$$tmp/scan3.json" || \
		{ echo "serve-smoke: reload did not rotate the scan cache"; cat "$$tmp/scan3.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/scan4.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"upload_cnt = upload_count + 1\n","all":true}' \
		"http://$$addr/v1/scan"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: warm post-reload scan returned $$code"; exit 1; }; \
	grep -qE '"cache_hits": [1-9]' "$$tmp/scan4.json" || \
		{ echo "serve-smoke: post-reload cache never warms"; cat "$$tmp/scan4.json"; exit 1; }; \
	sid=$$(curl -s -X POST -d '{"op":"open"}' "http://$$addr/v1/session" | \
		sed -n 's/.*"session_id": "\([^"]*\)".*/\1/p'); \
	[ -n "$$sid" ] || { echo "serve-smoke: session open failed"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/sess1.json" -w '%{http_code}' -X POST \
		-d '{"path":"s.py","version":1,"all":true,"edits":[{"text":"value = 1\ndownload_cnt = download_count + 1\n"}]}' \
		"http://$$addr/v1/session/$$sid/change"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: session change returned $$code"; cat "$$tmp/sess1.json"; exit 1; }; \
	grep -qF '"scan": "full"' "$$tmp/sess1.json" || \
		{ echo "serve-smoke: first session change is not a full scan"; cat "$$tmp/sess1.json"; exit 1; }; \
	code=$$(curl -s -o "$$tmp/sess2.json" -w '%{http_code}' -X POST \
		-d '{"path":"s.py","version":2,"all":true,"edits":[{"range":{"start":{"line":2,"character":0},"end":{"line":2,"character":0}},"text":"upload_cnt = upload_count + 1\n"}]}' \
		"http://$$addr/v1/session/$$sid/change"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: session range edit returned $$code"; cat "$$tmp/sess2.json"; exit 1; }; \
	grep -qF '"scan": "incremental"' "$$tmp/sess2.json" || \
		{ echo "serve-smoke: session range edit did not scan incrementally"; cat "$$tmp/sess2.json"; exit 1; }; \
	kill -HUP $$pid; \
	for i in $$(seq 1 50); do \
		curl -s "http://$$addr/metrics" | grep -qE '^namer_knowledge_reloads_total 3' && break; sleep 0.1; \
	done; \
	code=$$(curl -s -o "$$tmp/sess3.json" -w '%{http_code}' -X POST \
		-d '{"path":"s.py","version":3,"all":true,"edits":[{"range":{"start":{"line":3,"character":0},"end":{"line":3,"character":0}},"text":"task_cnt = task_count + 1\n"}]}' \
		"http://$$addr/v1/session/$$sid/change"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: session edit across SIGHUP returned $$code"; cat "$$tmp/sess3.json"; exit 1; }; \
	grep -qF '"scan": "failed"' "$$tmp/sess3.json" && \
		{ echo "serve-smoke: session scan failed across SIGHUP"; cat "$$tmp/sess3.json"; exit 1; }; \
	curl -s "http://$$addr/metrics" | grep -qE '^namer_sessions 1' || \
		{ echo "serve-smoke: namer_sessions gauge is not 1 with one session open"; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		-d '{"op":"close","session_id":"'"$$sid"'"}' "http://$$addr/v1/session"); \
	[ "$$code" = 200 ] || { echo "serve-smoke: session close returned $$code"; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		-d '{"path":"s.py","version":4,"edits":[{"text":"x = 1\n"}]}' \
		"http://$$addr/v1/session/$$sid/change"); \
	[ "$$code" = 404 ] || { echo "serve-smoke: change after close returned $$code, want 404"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "serve-smoke: unclean shutdown"; exit 1; }; \
	pid=; \
	"$$tmp/namer-serve" -addr 127.0.0.1:0 -knowledge "$$tmp/knowledge.bin" -max-inflight 1 \
		-ready-file "$$tmp/addr2" >"$$tmp/serve2.log" 2>&1 & pid2=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr2" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr2" ] || { echo "serve-smoke: capped server did not start"; cat "$$tmp/serve2.log"; exit 1; }; \
	addr2=$$(head -n1 "$$tmp/addr2"); \
	awk 'BEGIN{printf "{\"lang\":\"python\",\"all\":true,\"source\":\""; \
		for(i=0;i<20000;i++) printf "value_%d = other_%d + 1\\n", i, i; print "\"}"}' \
		>"$$tmp/big.json"; \
	curl -s -o "$$tmp/held.json" -w '%{http_code}' -X POST --data-binary @"$$tmp/big.json" \
		"http://$$addr2/v1/scan" >"$$tmp/held.code" & slowpid=$$!; \
	for i in $$(seq 1 100); do \
		curl -s "http://$$addr2/metrics" | grep -qE '^namer_scan_inflight 1' && break; sleep 0.1; \
	done; \
	curl -s "http://$$addr2/metrics" | grep -qE '^namer_scan_inflight 1' || \
		{ echo "serve-smoke: slow scan never occupied the in-flight slot"; exit 1; }; \
	code=$$(curl -s -D "$$tmp/shed.hdrs" -o "$$tmp/shed.json" -w '%{http_code}' -X POST \
		-d '{"lang":"python","source":"x = 1\n"}' "http://$$addr2/v1/scan"); \
	[ "$$code" = 429 ] || { echo "serve-smoke: scan past -max-inflight returned $$code, want 429"; \
		cat "$$tmp/shed.json"; exit 1; }; \
	grep -qiE '^Retry-After: [0-9]+' "$$tmp/shed.hdrs" || \
		{ echo "serve-smoke: 429 shed carries no Retry-After header"; cat "$$tmp/shed.hdrs"; exit 1; }; \
	wait $$slowpid; \
	[ "$$(cat "$$tmp/held.code")" = 200 ] || \
		{ echo "serve-smoke: held streaming scan returned $$(cat "$$tmp/held.code")"; cat "$$tmp/held.json"; exit 1; }; \
	kill -TERM $$pid2; wait $$pid2 || { echo "serve-smoke: unclean capped-server shutdown"; exit 1; }; \
	pid2=; \
	echo "serve-smoke: ok ($$addr, 429 shed with Retry-After at capacity)"
