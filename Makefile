# Tier-1 verification and developer shortcuts. `make tier1` is the gate
# every PR must keep green; it race-checks the concurrent pipeline stages
# (file processing, sharded mining, parallel scan) on top of the plain
# build-and-test cycle.

GO ?= go

.PHONY: tier1 build vet test race bench

tier1: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks of the parallel pipeline: compare the serial reference path
# against the all-CPU path (BenchmarkScan, BenchmarkPruneUncommon,
# BenchmarkMinePatterns show the speedup on multi-core runners).
bench:
	$(GO) test -run xxx -bench 'BenchmarkScan$$|BenchmarkPruneUncommon|BenchmarkMinePatterns' -benchmem .
