module namer

go 1.22
