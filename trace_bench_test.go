// BENCH_trace.json: per-stage span durations of one traced mining run
// (make bench). Where BENCH_mining.json tracks ns/op of the stages in
// isolation, this file snapshots how one end-to-end run divides its
// wall time between them — the same data a namer-mine -trace export
// shows in chrome://tracing, reduced to stage totals.
package namer

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/obs"
)

// traceBenchStage is one aggregated span name of BENCH_trace.json.
type traceBenchStage struct {
	Name    string `json:"name"`
	Spans   int    `json:"spans"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
}

type traceBenchFile struct {
	CPUs     int               `json:"cpus"`
	Corpus   string            `json:"corpus"`
	WallNs   int64             `json:"wall_ns"`
	Spans    int               `json:"spans"`
	Coverage float64           `json:"coverage"` // top-level stage time / wall time
	Stages   []traceBenchStage `json:"stages"`
}

// TestWriteTraceBenchJSON traces one full process+mine+scan run and
// writes the per-stage span durations to the file named by
// BENCH_TRACE_JSON, so the shape of the pipeline's wall time is tracked
// commit over commit alongside the ns/op numbers. Without the env var
// the test is a no-op.
func TestWriteTraceBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_TRACE_JSON")
	if out == "" {
		t.Skip("set BENCH_TRACE_JSON=<file> to record a traced mining run (make bench)")
	}
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	files := benchCorpusFiles(c)
	sys := core.NewSystem(opts.System)
	sys.MinePairs(c.Commits)

	ctx, tr := obs.NewTrace(context.Background(), "bench-mine", "")
	tr.SetMaxSpans(1 << 20)
	sys.ProcessFilesCtx(ctx, files)
	sys.MinePatternsCtx(ctx)
	if vs := sys.ScanCtx(ctx); len(vs) == 0 {
		t.Fatal("no violations")
	}
	tr.Finish()

	spans := tr.Spans()
	agg := map[string]*traceBenchStage{}
	order := []string{}
	var topLevel time.Duration
	rootID := -1
	for _, s := range spans {
		if s.Parent == -1 {
			rootID = s.ID
		}
	}
	for _, s := range spans {
		if s.Parent == -1 {
			continue
		}
		if s.Parent == rootID {
			topLevel += s.Duration
		}
		st := agg[s.Name]
		if st == nil {
			st = &traceBenchStage{Name: s.Name}
			agg[s.Name] = st
			order = append(order, s.Name)
		}
		st.Spans++
		st.TotalNs += int64(s.Duration)
		if int64(s.Duration) > st.MaxNs {
			st.MaxNs = int64(s.Duration)
		}
	}
	file := traceBenchFile{
		CPUs: runtime.NumCPU(),
		Corpus: fmt.Sprintf("python synthetic, %d repos x %d files",
			opts.Corpus.Repos, opts.Corpus.FilesPerRepo),
		WallNs:   int64(tr.Duration()),
		Spans:    len(spans),
		Coverage: float64(topLevel) / float64(tr.Duration()),
	}
	for _, name := range order {
		file.Stages = append(file.Stages, *agg[name])
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d stages, %.0f%% coverage)", out, len(file.Stages), 100*file.Coverage)
}
