// Command namer-eval regenerates every table of the paper's evaluation
// (§5) on the synthetic Big Code corpus: precision and ablations (Tables
// 2 and 5), example reports (Tables 3 and 6), the per-pattern-type
// breakdown (Table 4), the simulated user study (Tables 7 and 8),
// classifier feature weights (Table 9), the GGNN/Great comparison (Tables
// 10 and 11), and the mining and cross-validation statistics of §5.2/§5.3.
//
//	namer-eval -lang both            # everything (used to produce EXPERIMENTS.md)
//	namer-eval -lang python -quick   # smaller corpus, faster neural training
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/eval"
	"namer/internal/obs/log"
)

func main() {
	lang := flag.String("lang", "both", "language: python, java, or both")
	quick := flag.Bool("quick", false, "smaller corpus and faster neural training")
	skipNeural := flag.Bool("skip-neural", false, "skip the GGNN/Great comparison")
	seed := flag.Int64("seed", 7, "evaluation seed")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-eval", buildinfo.String())
		return
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "namer-eval:", err)
		os.Exit(2)
	}

	langs := []ast.Language{ast.Python, ast.Java}
	switch *lang {
	case "python", "py":
		langs = []ast.Language{ast.Python}
	case "java":
		langs = []ast.Language{ast.Java}
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "namer-eval: unknown language %q\n", *lang)
		os.Exit(2)
	}

	for _, l := range langs {
		lg.Debug("evaluation starting", log.Str("lang", l.String()),
			log.Int64("seed", *seed))
		evaluate(l, *quick, *skipNeural, *seed)
	}
}

func evaluate(lang ast.Language, quick, skipNeural bool, seed int64) {
	opts := eval.DefaultOptions(lang)
	opts.Seed = seed
	if quick {
		opts.Corpus.Repos = 18
		opts.Corpus.FilesPerRepo = 4
		opts.System.Mining.MinPatternCount = opts.Corpus.Repos * opts.Corpus.FilesPerRepo / 3
		opts.TrainSize = 80
		opts.TestSize = 200
	}

	banner("%s evaluation (corpus: %d repos × %d files, issue rate %.0f%%, anomaly rate %.0f%%)",
		lang, opts.Corpus.Repos, opts.Corpus.FilesPerRepo,
		100*opts.Corpus.IssueRate, 100*opts.Corpus.AnomalyRate)

	start := time.Now()
	run := eval.NewRun(opts)
	fmt.Printf("corpus built and scanned in %v: %d violations over %d patterns\n\n",
		time.Since(start).Round(time.Millisecond), len(run.Violations), len(run.Sys.Patterns))

	tableNo, exampleNo, neuralNo := "2", "3", "10"
	if lang == ast.Java {
		tableNo, exampleNo, neuralNo = "5", "6", "11"
	}

	banner("Table %s: precision of Namer and ablations (%s)", tableNo, lang)
	rows := run.PrecisionTable()
	fmt.Print(eval.FormatPrecisionTable(rows))
	fmt.Println()

	banner("Table %s: example reports (%s)", exampleNo, lang)
	for _, ex := range run.ExampleReports(3) {
		fmt.Printf("[%s / %s]\n  %s\n  suggested fix: %s -> %s\n",
			ex.Severity, orDash(ex.Category), ex.Statement, ex.Original, ex.Suggested)
	}
	fmt.Println()

	banner("Table 4 analogue: per-pattern-type breakdown (%s)", lang)
	fmt.Print(eval.FormatBreakdown(run.PatternBreakdown(100)))
	share := run.ReportTypeShare()
	fmt.Printf("report share: consistency %.0f%%, confusing word %.0f%%, both %.0f%%\n\n",
		100*share.Consistency, 100*share.Confusing, 100*share.Both)

	banner("Mining statistics (§5.2/§5.3, %s)", lang)
	st := run.Mining()
	fmt.Printf("name patterns mined:       %d\n", st.Patterns)
	fmt.Printf("confusing word pairs:      %d\n", st.ConfusingPairs)
	fmt.Printf("statements with violation: %d\n", st.ViolatingStatements)
	fmt.Printf("files with violation:      %d/%d (%.0f%%)\n",
		st.ViolatingFiles, st.TotalFiles, 100*float64(st.ViolatingFiles)/float64(st.TotalFiles))
	fmt.Printf("repos with violation:      %d/%d (%.0f%%)\n\n",
		st.ViolatingRepos, st.TotalRepos, 100*float64(st.ViolatingRepos)/float64(st.TotalRepos))

	banner("Cross-validation (§5.1 model selection, %s)", lang)
	best, cv := run.CrossValidation(30)
	for _, name := range []string{"svm", "logreg", "lda"} {
		m := cv[name]
		mark := " "
		if name == best {
			mark = "*"
		}
		fmt.Printf("%s %-7s accuracy=%.2f precision=%.2f recall=%.2f f1=%.2f\n",
			mark, name, m.Accuracy, m.Precision, m.Recall, m.F1)
	}
	fmt.Println()

	banner("Table 9: classifier feature weights (%s)", lang)
	fmt.Printf("%-22s %10s %10s %10s\n", "Feature", "File", "Repo", "Dataset")
	for _, w := range run.FeatureWeightTable() {
		ds := "-"
		if w.HasData {
			ds = fmt.Sprintf("%+.3f", w.Dataset)
		}
		fmt.Printf("%-22s %+10.3f %+10.3f %10s\n", w.Feature, w.File, w.Repo, ds)
	}
	fmt.Println()

	if lang == ast.Python {
		banner("Table 7: user study items")
		items := run.UserStudyItems()
		for _, it := range items {
			fmt.Printf("[%s] %s  (fix: %s -> %s)\n", it.Category, it.Statement, it.Original, it.Suggested)
		}
		fmt.Println()
		banner("Table 8: simulated user study (7 developers)")
		fmt.Printf("%-15s %12s %9s %8s %10s\n", "Category", "NotAccepted", "WithIDE", "WithPR", "Manually")
		for _, res := range eval.SimulateUserStudy(items, 7, seed) {
			fmt.Printf("%-15s %12d %9d %8d %10d\n",
				res.Category, res.NotAccepted, res.WithIDE, res.WithPR, res.Manually)
		}
		fmt.Println()
	}

	if !skipNeural {
		banner("Table %s: GGNN and Great vs Namer (%s)", neuralNo, lang)
		nopts := eval.DefaultNeuralOptions()
		if quick {
			nopts.TrainSamples = 250
			nopts.TestSamples = 80
			nopts.Epochs = 2
		}
		namer := rows[0]
		start := time.Now()
		results := run.NeuralComparison(nopts, namer.Reports)
		fmt.Printf("(trained %d samples × %d epochs in %v)\n",
			nopts.TrainSamples, nopts.Epochs, time.Since(start).Round(time.Millisecond))
		fmt.Printf("%-6s %9s %9s %9s | %8s %9s %8s %6s %10s\n",
			"System", "syn-cls", "syn-loc", "syn-rep", "Reports", "Semantic", "Quality", "FP", "Precision")
		for _, res := range results {
			fmt.Printf("%-6s %8.0f%% %8.0f%% %8.0f%% | %8d %9d %8d %6d %9.0f%%\n",
				res.System, 100*res.Synthetic.Classification, 100*res.Synthetic.Localization,
				100*res.Synthetic.Repair, res.Row.Reports, res.Row.Semantic,
				res.Row.Quality, res.Row.FalsePos, 100*res.Row.Precision())
		}
		fmt.Printf("%-6s %9s %9s %9s | %8d %9d %8d %6d %9.0f%%\n",
			"Namer", "-", "-", "-", namer.Reports, namer.Semantic,
			namer.Quality, namer.FalsePos, 100*namer.Precision())
		fmt.Println()
	}
}

func banner(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	fmt.Println(s)
	fmt.Println(strings.Repeat("-", len(s)))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
