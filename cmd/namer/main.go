// Command namer detects and suggests fixes for naming issues in Python
// and Java source trees, following the paper's inference pipeline: parse →
// per-file points-to analysis → AST+ → name paths → pattern matching →
// defect classification → report.
//
// It needs a knowledge file produced by namer-mine (and optionally
// namer-train, which adds the false-positive-pruning classifier):
//
//	namer -lang python -knowledge knowledge-trained.json path/to/code
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/obs/log"
	"namer/internal/pointsto"
	"namer/internal/prof"
)

func main() {
	lang := flag.String("lang", "python", "language: python, java, or go")
	knowledge := flag.String("knowledge", "knowledge.bin", "knowledge file from namer-mine/namer-train")
	all := flag.Bool("all", false, "report every violation, bypassing the classifier (the w/o C ablation)")
	fix := flag.Bool("fix", false, "rewrite the reported identifiers in place")
	parallelism := flag.Int("parallelism", 0,
		"worker count for file processing and scanning (0 = all CPUs, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer", buildinfo.String())
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: namer [-lang python|java] [-knowledge file] [-all] path...")
		os.Exit(2)
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	l, err := ast.ParseLanguage(*lang)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(l)
	cfg.Parallelism = *parallelism
	sys := core.NewSystem(cfg)
	if err := sys.LoadKnowledge(*knowledge); err != nil {
		fatal(fmt.Errorf("loading knowledge: %w (run namer-mine first)", err))
	}

	var files []*core.InputFile
	for _, root := range flag.Args() {
		fs, errs := core.LoadDirectory(root, l)
		for _, e := range errs {
			lg.Warn("load failed", log.Err(e))
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no %s files found", *lang))
	}
	for _, e := range sys.ProcessFiles(files) {
		lg.Warn("analysis failed", log.Err(e))
	}

	byFile := make(map[string]*core.InputFile, len(files))
	for _, f := range files {
		byFile[f.Repo+"|"+f.Path] = f
	}
	reports, fixes := 0, 0
	changed := map[string]*core.InputFile{}
	for _, v := range core.Dedup(sys.Scan()) {
		if !*all && !sys.Classify(v) {
			continue
		}
		reports++
		fmt.Println(v.Report())
		if !*fix {
			continue
		}
		f := byFile[v.Stmt.Repo+"|"+v.Stmt.Path]
		if f == nil {
			continue
		}
		if newSrc, ok := core.ApplyFix(f.Source, v); ok {
			f.Source = newSrc
			changed[v.Stmt.Path] = f
			fixes++
			fmt.Println("  fixed:", core.FixReport(v))
		}
	}
	if *fix {
		for _, f := range changed {
			if err := writeBack(flag.Args(), f); err != nil {
				lg.Warn("write-back failed", log.Err(err))
			}
		}
		fmt.Printf("\napplied %d fix(es) to %d file(s)\n", fixes, len(changed))
	}
	// Precise intra-file argument-selection check (Rice et al., discussed
	// in the paper's §6.1), independent of mined patterns.
	for _, f := range files {
		for _, sw := range pointsto.CheckArgumentSelection(f.Root, l) {
			reports++
			fmt.Printf("%s:%d: arguments %q and %q to %s() appear swapped (formals cross-match)\n",
				f.Path, sw.Line, sw.ArgA, sw.ArgB, sw.Callee)
		}
	}
	if reports == 0 {
		fmt.Println("no naming issues found")
	} else {
		fmt.Printf("\n%d naming issue(s) reported across %d files\n", reports, len(files))
	}
}

// writeBack persists a fixed file under the root it was loaded from.
func writeBack(roots []string, f *core.InputFile) error {
	for _, root := range roots {
		path := filepath.Join(root, f.Path)
		if _, err := os.Stat(path); err == nil {
			return os.WriteFile(path, []byte(f.Source), 0o644)
		}
	}
	return fmt.Errorf("cannot locate %s under the given roots", f.Path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer:", err)
	os.Exit(1)
}
