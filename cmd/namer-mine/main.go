// Command namer-mine runs the unsupervised half of the paper's recipe
// over a corpus directory: it mines confusing word pairs from the commit
// history (§3.2) and name patterns from the code (§3.3, Algorithms 1–2),
// writing the result as a knowledge file for cmd/namer and
// cmd/namer-train. The default output is the flat v2 binary format
// (O(1) open in namer-serve); -format v1 writes the legacy compact
// binary for pre-v2 readers, and a .json -out path writes the debug
// format.
//
// Long corpus runs are observable three ways: periodic progress lines on
// stderr (files analyzed, statements, moving rate, ETA; FP-tree shapes
// as each pass completes); -trace out.json, which records the whole
// run as a span tree and writes it in the Chrome trace-event format —
// load it in chrome://tracing or https://ui.perfetto.dev to see where
// the wall time went, stage by stage and file by file; and, in driver
// mode, -status-addr, a live HTTP status server (/status per-shard
// states, /metrics Prometheus text, /debug/pprof, /debug/traces).
// Diagnostics go through a structured logger (-log-level, -log-format).
//
// -driver switches to the distributed map/reduce miner: the corpus is
// split into -shards repo shards, map workers run as in-process
// goroutines (or as spawned `namer-mine -worker` child processes with
// -worker-procs N), and every shard's intermediate product is a
// CRC-checked checkpoint under -checkpoints, so a killed run resumes
// from where it stopped (-fresh discards the checkpoints instead). The
// mined knowledge is byte-identical to a non-driver run at any shard or
// worker count. With -trace, spawned workers record their spans locally
// and ship them back over the job protocol, so the written trace shows
// every worker process as its own lane keyed by real PID.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/driver"
	"namer/internal/knowledge"
	"namer/internal/obs"
	"namer/internal/obs/log"
	"namer/internal/prof"
)

func main() {
	lang := flag.String("lang", "python", "language: python, java, or go")
	dir := flag.String("dir", "corpus", "corpus directory (repositories as subdirectories)")
	out := flag.String("out", "knowledge.bin",
		"output knowledge file (flat binary; use a .json extension for the debug format)")
	format := flag.String("format", "auto",
		"knowledge encoding: auto (v2 binary, or JSON for .json paths) or v1 (legacy compact binary, for pre-v2 readers)")
	minPatternCount := flag.Int("min-pattern-count", 0,
		"FP-tree support threshold (0 = scale with corpus size)")
	minPairCount := flag.Int("min-pair-count", 3, "confusing-pair support threshold")
	noAnalysis := flag.Bool("no-analysis", false, "disable the points-to analyses (the w/o A ablation)")
	parallelism := flag.Int("parallelism", 0,
		"worker count for file processing and mining (0 = all CPUs, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := flag.String("trace", "",
		"write a Chrome trace-event JSON of the full mining run to this file (chrome://tracing, Perfetto)")
	driverMode := flag.Bool("driver", false,
		"run the distributed map/reduce miner with per-shard checkpoints (resumable)")
	shards := flag.Int("shards", 0, "driver mode: corpus shard count (0 = all CPUs)")
	workerProcs := flag.Int("worker-procs", 0,
		"driver mode: run map workers as this many spawned namer-mine -worker child processes (0 = in-process goroutines)")
	checkpoints := flag.String("checkpoints", "",
		"driver mode: checkpoint directory (default <out>.ckpt)")
	fresh := flag.Bool("fresh", false, "driver mode: discard existing checkpoints instead of resuming")
	workerMode := flag.Bool("worker", false,
		"serve map jobs over stdin/stdout JSON lines (spawned by -driver -worker-procs; not for direct use)")
	statusAddr := flag.String("status-addr", "",
		"driver mode: serve live mining status on this address (/status, /metrics, /debug/pprof, /debug/traces)")
	statusReadyFile := flag.String("status-ready-file", "",
		"driver mode: write the bound status address to this file once listening (for scripts with -status-addr :0)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-mine", buildinfo.String())
		return
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	if *workerMode {
		if err := driver.ServeWorker(os.Stdin, os.Stdout, lg); err != nil {
			fatal(err)
		}
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	// With -trace, every pipeline stage below runs under a span tree
	// rooted at this trace; without it, ctx carries no trace and the
	// span calls in core/mining are free no-ops.
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" {
		ctx, tr = obs.NewTrace(ctx, "namer-mine", "")
		// Corpus runs record one span per file; give them room.
		tr.SetMaxSpans(1 << 20)
	}

	l, err := ast.ParseLanguage(*lang)
	if err != nil {
		fatal(err)
	}

	if *driverMode {
		cfg := core.DefaultConfig(l)
		cfg.UseAnalysis = !*noAnalysis
		cfg.MinPairCount = *minPairCount
		cfg.Parallelism = *parallelism
		// 0 lets the driver auto-scale the threshold once the map round
		// has counted the parsed files, matching the serial path.
		cfg.Mining.MinPatternCount = *minPatternCount
		ckdir := *checkpoints
		if ckdir == "" {
			ckdir = *out + ".ckpt"
		}
		opts := driver.Options{
			CorpusDir:     *dir,
			Config:        cfg,
			Shards:        *shards,
			CheckpointDir: ckdir,
			Fresh:         *fresh,
			Workers:       *parallelism,
			Status:        os.Stderr,
			Log:           lg,
		}
		if *workerProcs > 0 {
			exe, err := os.Executable()
			if err != nil {
				fatal(err)
			}
			// Workers inherit the log flags so their (captured) stderr
			// carries the same level and the driver re-tags it per PID.
			opts.WorkerCommand = []string{exe, "-worker",
				"-log-level", *logLevel, "-log-format", *logFormat}
			opts.Workers = *workerProcs
		}
		if *statusAddr != "" {
			opts.Monitor = driver.NewMonitor()
			opts.Recorder = obs.NewFlightRecorder(32)
			st, err := driver.StartStatus(*statusAddr, opts.Monitor, opts.Recorder, lg)
			if err != nil {
				fatal(err)
			}
			defer st.Close()
			if *statusReadyFile != "" {
				if err := os.WriteFile(*statusReadyFile, []byte(st.Addr()+"\n"), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		k, stats, err := driver.Run(ctx, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("driver: %d shards (%d stmts + %d trees checkpoints reused), %d files, %d statements\n",
			stats.Shards, stats.StmtsReused, stats.TreesReused, stats.FilesParsed, stats.Statements)
		for _, ms := range stats.Mining {
			fmt.Printf("  %v FP tree: %d nodes over %d transactions\n", ms.Type, ms.TreeNodes, ms.Transactions)
		}
		fmt.Printf("driver: map %v, reduce %v\n",
			stats.MapWall.Round(time.Millisecond), stats.ReduceWall.Round(time.Millisecond))
		printUsage(stats)
		if err := saveKnowledge(*out, *format, k); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		finishTrace(tr, *traceOut)
		return
	}

	_, sp := obs.StartSpan(ctx, "load_corpus")
	files, errs := core.LoadDirectory(*dir, l)
	sp.SetAttrInt("files", len(files))
	sp.End()
	for _, e := range errs {
		lg.Warn("load", log.Err(e))
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no %s files under %s", *lang, *dir))
	}

	cfg := core.DefaultConfig(l)
	cfg.UseAnalysis = !*noAnalysis
	cfg.MinPairCount = *minPairCount
	cfg.Parallelism = *parallelism
	if *minPatternCount > 0 {
		cfg.Mining.MinPatternCount = *minPatternCount
	} else {
		cfg.Mining.MinPatternCount = len(files) / 3
		if cfg.Mining.MinPatternCount < 5 {
			cfg.Mining.MinPatternCount = 5
		}
	}
	progress := obs.NewProgress(os.Stderr, "analyze", "files")
	cfg.Progress = progress.Update
	cfg.Mining.OnTreeBuilt = func(nodes, transactions int) {
		lg.Info("FP tree built", log.Int("nodes", nodes), log.Int("transactions", transactions))
	}

	sys := core.NewSystem(cfg)
	_, sp = obs.StartSpan(ctx, "mine_pairs")
	if pairs, err := corpus.ReadCommits(filepath.Join(*dir, "commits")); err == nil {
		commits, skipped := corpus.ParseCommitSources(l, pairs)
		if skipped > 0 {
			lg.Warn("some commit pairs did not parse",
				log.Int("skipped", skipped), log.Int("total", len(pairs)))
		}
		sys.MinePairs(commits)
		fmt.Printf("mined %d confusing word pairs from %d commits\n", sys.Pairs.Len(), len(pairs))
	} else {
		sys.MinePairs(nil)
		lg.Warn("no commit history found; confusing-word patterns disabled")
	}
	sp.End()

	start := time.Now()
	for _, e := range sys.ProcessFilesCtx(ctx, files) {
		lg.Warn("analyze", log.Err(e))
	}
	fmt.Printf("analyzed %d files, %d statements in %v (%.1f ms/file)\n",
		len(files), len(sys.Stmts), time.Since(start).Round(time.Millisecond),
		float64(time.Since(start).Milliseconds())/float64(len(files)))

	start = time.Now()
	sys.MinePatternsCtx(ctx)
	fmt.Printf("mined %d name patterns in %v\n", len(sys.Patterns), time.Since(start).Round(time.Millisecond))
	for _, ms := range sys.MiningStats {
		fmt.Printf("  %v FP tree: %d nodes over %d transactions\n", ms.Type, ms.TreeNodes, ms.Transactions)
	}

	_, sp = obs.StartSpan(ctx, "save_knowledge")
	k, err := sys.ExportKnowledge()
	if err == nil {
		err = saveKnowledge(*out, *format, k)
	}
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	finishTrace(tr, *traceOut)
}

// printUsage renders the per-shard resource table (and per-worker
// totals) a driver run measured: wall and CPU per shard, peak RSS, and
// allocation volume. Fully-reused shards show 0 jobs.
func printUsage(stats driver.Stats) {
	if len(stats.Usage) == 0 {
		return
	}
	fmt.Printf("driver: per-shard resources:\n")
	fmt.Printf("  %5s %4s %10s %10s %10s %10s\n", "shard", "jobs", "wall", "cpu", "rss", "alloc")
	var wall, cpu time.Duration
	var alloc int64
	for _, u := range stats.Usage {
		wall += u.Wall
		cpu += u.CPU
		alloc += u.AllocBytes
		fmt.Printf("  %5d %4d %10v %10v %8dKB %8.1fMB\n",
			u.Shard, u.Jobs, u.Wall.Round(time.Millisecond), u.CPU.Round(time.Millisecond),
			u.MaxRSSKB, float64(u.AllocBytes)/(1<<20))
	}
	fmt.Printf("  total      %10v %10v %19.1fMB\n",
		wall.Round(time.Millisecond), cpu.Round(time.Millisecond), float64(alloc)/(1<<20))
	for _, w := range stats.Workers {
		fmt.Printf("driver: worker pid=%d cpu=%v maxrss=%dKB\n",
			w.PID, w.CPU.Round(time.Millisecond), w.MaxRSSKB)
	}
}

// saveKnowledge writes the artifact under the -format flag's encoding.
func saveKnowledge(out, format string, k *knowledge.Artifact) error {
	switch format {
	case "auto", "":
		return knowledge.Save(out, k)
	case "v1":
		return knowledge.SaveV1(out, k)
	default:
		return fmt.Errorf("unknown -format %q (want auto or v1)", format)
	}
}

func finishTrace(tr *obs.Trace, traceOut string) {
	if tr == nil {
		return
	}
	tr.Finish()
	f, err := os.Create(traceOut)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	tr.WriteTree(os.Stderr)
	spans, pids := tr.ExternalSpanCount()
	if pids > 0 {
		fmt.Printf("wrote trace %s (%d spans + %d worker spans from %d processes, %v; open in chrome://tracing)\n",
			traceOut, tr.SpanCount(), spans, pids, tr.Duration().Round(time.Millisecond))
	} else {
		fmt.Printf("wrote trace %s (%d spans, %v; open in chrome://tracing)\n",
			traceOut, tr.SpanCount(), tr.Duration().Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-mine:", err)
	os.Exit(1)
}
