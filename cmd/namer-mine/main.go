// Command namer-mine runs the unsupervised half of the paper's recipe
// over a corpus directory: it mines confusing word pairs from the commit
// history (§3.2) and name patterns from the code (§3.3, Algorithms 1–2),
// writing the result as a knowledge file for cmd/namer and
// cmd/namer-train.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/prof"
)

func main() {
	lang := flag.String("lang", "python", "language: python, java, or go")
	dir := flag.String("dir", "corpus", "corpus directory (repositories as subdirectories)")
	out := flag.String("out", "knowledge.bin",
		"output knowledge file (compact binary; use a .json extension for the debug format)")
	minPatternCount := flag.Int("min-pattern-count", 0,
		"FP-tree support threshold (0 = scale with corpus size)")
	minPairCount := flag.Int("min-pair-count", 3, "confusing-pair support threshold")
	noAnalysis := flag.Bool("no-analysis", false, "disable the points-to analyses (the w/o A ablation)")
	parallelism := flag.Int("parallelism", 0,
		"worker count for file processing and mining (0 = all CPUs, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	l, err := ast.ParseLanguage(*lang)
	if err != nil {
		fatal(err)
	}
	files, errs := core.LoadDirectory(*dir, l)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "warning:", e)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no %s files under %s", *lang, *dir))
	}

	cfg := core.DefaultConfig(l)
	cfg.UseAnalysis = !*noAnalysis
	cfg.MinPairCount = *minPairCount
	cfg.Parallelism = *parallelism
	if *minPatternCount > 0 {
		cfg.Mining.MinPatternCount = *minPatternCount
	} else {
		cfg.Mining.MinPatternCount = len(files) / 3
		if cfg.Mining.MinPatternCount < 5 {
			cfg.Mining.MinPatternCount = 5
		}
	}

	sys := core.NewSystem(cfg)
	if pairs, err := corpus.ReadCommits(filepath.Join(*dir, "commits")); err == nil {
		sys.MinePairs(corpus.ParseCommitSources(l, pairs))
		fmt.Printf("mined %d confusing word pairs from %d commits\n", sys.Pairs.Len(), len(pairs))
	} else {
		sys.MinePairs(nil)
		fmt.Fprintln(os.Stderr, "warning: no commit history found; confusing-word patterns disabled")
	}

	start := time.Now()
	for _, e := range sys.ProcessFiles(files) {
		fmt.Fprintln(os.Stderr, "warning:", e)
	}
	fmt.Printf("analyzed %d files, %d statements in %v (%.1f ms/file)\n",
		len(files), len(sys.Stmts), time.Since(start).Round(time.Millisecond),
		float64(time.Since(start).Milliseconds())/float64(len(files)))

	start = time.Now()
	sys.MinePatterns()
	fmt.Printf("mined %d name patterns in %v\n", len(sys.Patterns), time.Since(start).Round(time.Millisecond))
	for _, ms := range sys.MiningStats {
		fmt.Printf("  %v FP tree: %d nodes over %d transactions\n", ms.Type, ms.TreeNodes, ms.Transactions)
	}

	if err := sys.SaveKnowledge(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-mine:", err)
	os.Exit(1)
}
