// Command namer-corpus generates a synthetic "Big Code" corpus on disk:
// repositories of Python or Java files with ground-truth naming issues
// (issues.json) and a commit history of naming fixes (commits/). It is the
// data source for the namer-mine → namer-train → namer toolchain and
// stands in for the paper's GitHub dataset (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/corpus"
	"namer/internal/obs/log"
)

func main() {
	lang := flag.String("lang", "python", "language: python or java")
	out := flag.String("out", "corpus", "output directory")
	repos := flag.Int("repos", 36, "number of repositories")
	files := flag.Int("files", 5, "files per repository")
	issueRate := flag.Float64("issue-rate", 0.05, "probability an idiom instance is buggy")
	anomalyRate := flag.Float64("anomaly-rate", 0.15, "probability of a legitimate anomaly")
	seed := flag.Int64("seed", 1, "generation seed")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-corpus", buildinfo.String())
		return
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}

	l, err := ast.ParseLanguage(*lang)
	if err != nil {
		fatal(err)
	}
	if l == ast.Go {
		fatal(fmt.Errorf("the synthetic corpus generator emits python and java only"))
	}
	cfg := corpus.DefaultConfig(l)
	cfg.Repos = *repos
	cfg.FilesPerRepo = *files
	cfg.IssueRate = *issueRate
	cfg.AnomalyRate = *anomalyRate
	cfg.Seed = *seed
	lg.Debug("generating corpus", log.Str("lang", *lang), log.Int("repos", *repos),
		log.Int("files_per_repo", *files), log.Int64("seed", *seed))
	c := corpus.Generate(cfg)
	if err := c.WriteTo(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d files in %d repositories to %s (%d ground-truth issues, %d commits)\n",
		c.TotalFiles(), len(c.Repos), *out, len(c.Issues), len(c.Commits))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-corpus:", err)
	os.Exit(1)
}
