// Command namer-serve is the always-on serving daemon over mined
// knowledge: it loads a knowledge artifact (binary or JSON, produced by
// namer-mine / namer-train) once at startup and answers HTTP scan
// requests until terminated.
//
//	namer-serve -knowledge knowledge.bin -addr :8737
//
//	curl -X POST localhost:8737/v1/scan \
//	     -d '{"lang":"python","source":"upload_cnt = upload_count + 1\n"}'
//
// POST /v1/diff takes before/after versions of files (or a unified
// diff via "patch") and reports only the violations *introduced* by
// the change, plus identifier renames found by AST alignment. Repeat
// file contents across requests are served from a bounded per-file
// scan cache (-cache-entries / -cache-bytes; hit/miss/eviction
// counters and size gauges on /metrics).
//
// POST /v1/session opens a long-lived editor session (close it the same
// way), and POST /v1/session/{id}/change applies didChange-style edits
// to a per-session file overlay, re-scanning just the touched file —
// incrementally when possible — and answering with push-style
// diagnostics, proposed-fix text edits, and the introduced/resolved
// delta against the session's previous scan. Sessions idle past
// -session-idle are evicted; -max-sessions caps how many are open.
//
// Liveness is at /healthz, Prometheus counters and latency histograms
// at /metrics, legacy expvar counters at /debug/vars, and profiling at
// /debug/pprof (only with -pprof). With -traces, a flight recorder
// keeps the span trees of the slowest recent requests at /debug/traces
// (JSON list; ?id=<X-Request-Id> or ?id=slowest for a Chrome trace
// export). Every request gets an X-Request-Id and one JSON access-log
// line (-access-log, default stdout). Load past -max-inflight
// concurrent scans is shed with 429 + Retry-After.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, and
// in-flight scans are given a grace period to finish responding.
// SIGHUP (or POST /debug/reload) re-reads the knowledge file and
// hot-swaps it atomically: in-flight requests finish against the old
// knowledge, new requests see the new artifact, the scan cache rotates
// with it, and no request is dropped. The loaded artifact's format
// version, content hash, and load time are reported on /healthz and as
// the namer_knowledge_info gauge on /metrics.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"syscall"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/knowledge"
	"namer/internal/obs"
	"namer/internal/obs/log"
	"namer/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8737", "listen address (host:port; port 0 picks a free port)")
	kpath := flag.String("knowledge", "knowledge.bin", "knowledge file from namer-mine/namer-train")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBody, "maximum request body size in bytes")
	scanTimeout := flag.Duration("scan-timeout", serve.DefaultScanTimeout, "per-request scan deadline")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight,
		"concurrent scan limit; excess requests are shed with 429")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries,
		"per-file scan cache capacity in files; 0 disables the cache")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes,
		"per-file scan cache capacity in estimated bytes")
	accessLog := flag.String("access-log", "stdout",
		"JSON access log destination: stdout, stderr, off, or a file path")
	pprofFlag := flag.Bool("pprof", false, "expose profiling handlers under /debug/pprof/")
	tracesFlag := flag.Bool("traces", false,
		"record span trees of the slowest requests and serve them at /debug/traces")
	traceRing := flag.Int("trace-ring", serve.DefaultTraceRing,
		"how many slowest-request traces the flight recorder keeps")
	maxSessions := flag.Int("max-sessions", 0,
		"concurrently open editor sessions; 0 uses the default, negative is unlimited")
	sessionIdle := flag.Duration("session-idle", 0,
		"evict editor sessions idle longer than this; 0 uses the default, negative disables")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")
	readyFile := flag.String("ready-file", "",
		"write the bound address to this file once listening (for scripts using port 0)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-serve", buildinfo.String())
		return
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}

	sys, kinfo, err := loadKnowledgeSystem(*kpath)
	if err != nil {
		fatal(fmt.Errorf("loading knowledge: %w (run namer-mine first)", err))
	}
	lg.Info("loaded knowledge", log.Str("summary", kinfo.Summary))

	logw, err := obs.OpenLogWriter(*accessLog)
	if err != nil {
		fatal(fmt.Errorf("opening access log: %w", err))
	}
	entries := *cacheEntries
	if entries == 0 {
		entries = -1 // flag semantics: 0 disables; Config semantics: negative disables
	}
	sv := serve.New(sys, serve.Config{
		MaxBodyBytes: *maxBody,
		ScanTimeout:  *scanTimeout,
		MaxInFlight:  *maxInFlight,
		CacheEntries: entries,
		CacheBytes:   *cacheBytes,
		Knowledge:    kinfo,
		Loader: func() (*core.System, serve.KnowledgeInfo, error) {
			return loadKnowledgeSystem(*kpath)
		},
		AccessLog:      logw,
		EnablePprof:    *pprofFlag,
		EnableTraces:   *tracesFlag,
		TraceRingSize:  *traceRing,
		MaxSessions:    *maxSessions,
		SessionIdleTTL: *sessionIdle,
	})
	// SIGHUP re-reads the knowledge file and hot-swaps the serving
	// bundle; POST /debug/reload does the same over HTTP. In-flight
	// requests finish against the old knowledge either way.
	stopReload := serve.ReloadOnSignal(func() error {
		_, err := sv.Reload()
		return err
	}, syscall.SIGHUP)
	defer stopReload()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	lg.Info("listening", log.Str("url", "http://"+bound),
		log.Str("endpoints", "POST /v1/scan, POST /v1/diff, POST /v1/session, GET /healthz, GET /metrics, GET /debug/vars"))
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			fatal(err)
		}
	}

	srv := serve.NewHTTPServer(sv.Handler(), *scanTimeout)
	serve.TrackConnections(srv, sv.Metrics())
	// A SIGHUP arriving while the graceful shutdown drains must not swap
	// the bundle under the in-flight requests or leak the signal
	// watcher: the moment Shutdown starts, stop the watcher and mark the
	// server draining (further reloads are refused).
	srv.RegisterOnShutdown(func() {
		stopReload()
		sv.Close()
	})
	if err := serve.RunUntilSignal(srv, ln, *grace, os.Interrupt, syscall.SIGTERM); err != nil {
		fatal(err)
	}
	lg.Info("shut down cleanly")
}

// loadKnowledgeSystem builds a fresh system from the knowledge file:
// the artifact determines the language, the default config supplies the
// analysis settings (points-to on, per §4.1). Used for the initial load
// and for every SIGHUP / POST /debug/reload hot-swap; on error the
// caller keeps whatever it was serving.
func loadKnowledgeSystem(path string) (*core.System, serve.KnowledgeInfo, error) {
	k, info, err := knowledge.LoadWithInfo(path)
	if err != nil {
		return nil, serve.KnowledgeInfo{}, err
	}
	sys := core.NewSystem(core.DefaultConfig(ast.Python))
	if err := sys.ImportKnowledge(k); err != nil {
		return nil, serve.KnowledgeInfo{}, err
	}
	ki := serve.KnowledgeInfo{
		Path:          path,
		Format:        info.Format.String(),
		FormatVersion: info.FormatVersion,
		ContentHash:   info.ContentHash,
		LoadedAt:      info.LoadedAt,
	}
	format := info.Format.String()
	if info.Format == knowledge.FormatBinary {
		format = fmt.Sprintf("%s v%d", format, info.FormatVersion)
	}
	hash := info.ContentHash
	if len(hash) > 12 {
		hash = hash[:12]
	}
	ki.Summary = fmt.Sprintf("%s (%s format, sha256 %s, %s, %d patterns, %d pairs, classifier=%v)",
		path, format, hash, sys.Config().Lang, len(sys.Patterns),
		sys.Pairs.Len(), sys.HasClassifier())
	return sys, ki, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-serve:", err)
	os.Exit(1)
}
