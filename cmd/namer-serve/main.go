// Command namer-serve is the always-on serving daemon over mined
// knowledge: it loads a knowledge artifact (binary or JSON, produced by
// namer-mine / namer-train) once at startup and answers HTTP scan
// requests until terminated.
//
//	namer-serve -knowledge knowledge.bin -addr :8737
//
//	curl -X POST localhost:8737/v1/scan \
//	     -d '{"lang":"python","source":"upload_cnt = upload_count + 1\n"}'
//
// POST /v1/diff takes before/after versions of files (or a unified
// diff via "patch") and reports only the violations *introduced* by
// the change, plus identifier renames found by AST alignment. Repeat
// file contents across requests are served from a bounded per-file
// scan cache (-cache-entries / -cache-bytes; hit/miss/eviction
// counters and size gauges on /metrics).
//
// Liveness is at /healthz, Prometheus counters and latency histograms
// at /metrics, legacy expvar counters at /debug/vars, and profiling at
// /debug/pprof (only with -pprof). With -traces, a flight recorder
// keeps the span trees of the slowest recent requests at /debug/traces
// (JSON list; ?id=<X-Request-Id> or ?id=slowest for a Chrome trace
// export). Every request gets an X-Request-Id and one JSON access-log
// line (-access-log, default stdout). Load past -max-inflight
// concurrent scans is shed with 429 + Retry-After.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, and
// in-flight scans are given a grace period to finish responding.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"syscall"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/knowledge"
	"namer/internal/obs"
	"namer/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8737", "listen address (host:port; port 0 picks a free port)")
	kpath := flag.String("knowledge", "knowledge.bin", "knowledge file from namer-mine/namer-train")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBody, "maximum request body size in bytes")
	scanTimeout := flag.Duration("scan-timeout", serve.DefaultScanTimeout, "per-request scan deadline")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight,
		"concurrent scan limit; excess requests are shed with 429")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries,
		"per-file scan cache capacity in files; 0 disables the cache")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes,
		"per-file scan cache capacity in estimated bytes")
	accessLog := flag.String("access-log", "stdout",
		"JSON access log destination: stdout, stderr, off, or a file path")
	pprofFlag := flag.Bool("pprof", false, "expose profiling handlers under /debug/pprof/")
	tracesFlag := flag.Bool("traces", false,
		"record span trees of the slowest requests and serve them at /debug/traces")
	traceRing := flag.Int("trace-ring", serve.DefaultTraceRing,
		"how many slowest-request traces the flight recorder keeps")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")
	readyFile := flag.String("ready-file", "",
		"write the bound address to this file once listening (for scripts using port 0)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-serve", buildinfo.String())
		return
	}

	// The knowledge file determines the language; the default config
	// supplies the analysis settings (points-to on, per §4.1).
	sys := core.NewSystem(core.DefaultConfig(ast.Python))
	if err := sys.LoadKnowledge(*kpath); err != nil {
		fatal(fmt.Errorf("loading knowledge: %w (run namer-mine first)", err))
	}
	info := fmt.Sprintf("%s (%s format, %s, %d patterns, %d pairs, classifier=%v)",
		*kpath, loadedFormat(*kpath), sys.Config().Lang, len(sys.Patterns),
		sys.Pairs.Len(), sys.HasClassifier())
	fmt.Println("namer-serve: loaded", info)

	logw, err := obs.OpenLogWriter(*accessLog)
	if err != nil {
		fatal(fmt.Errorf("opening access log: %w", err))
	}
	entries := *cacheEntries
	if entries == 0 {
		entries = -1 // flag semantics: 0 disables; Config semantics: negative disables
	}
	sv := serve.New(sys, serve.Config{
		MaxBodyBytes:  *maxBody,
		ScanTimeout:   *scanTimeout,
		MaxInFlight:   *maxInFlight,
		CacheEntries:  entries,
		CacheBytes:    *cacheBytes,
		KnowledgeInfo: info,
		AccessLog:     logw,
		EnablePprof:   *pprofFlag,
		EnableTraces:  *tracesFlag,
		TraceRingSize: *traceRing,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("namer-serve: listening on http://%s (POST /v1/scan, POST /v1/diff, GET /healthz, GET /metrics, GET /debug/vars)\n", bound)
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			fatal(err)
		}
	}

	srv := serve.NewHTTPServer(sv.Handler(), *scanTimeout)
	serve.TrackConnections(srv, sv.Metrics())
	if err := serve.RunUntilSignal(srv, ln, *grace, os.Interrupt, syscall.SIGTERM); err != nil {
		fatal(err)
	}
	fmt.Println("namer-serve: shut down cleanly")
}

// loadedFormat reports which on-disk format the knowledge file uses, by
// content sniffing (the same detection LoadKnowledge applies).
func loadedFormat(path string) knowledge.Format {
	data, err := os.ReadFile(path)
	if err != nil {
		return knowledge.FormatJSON
	}
	return knowledge.DetectFormat(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-serve:", err)
	os.Exit(1)
}
