// Command namer-train runs the supervised half of the paper's recipe: it
// scans a corpus with previously mined knowledge, labels a small balanced
// set of violations (§5.1 labels 120), trains the defect classifier
// (linear SVM over the 17 features of Table 1, with standardization and
// PCA), and writes the augmented knowledge file.
//
// Labels come from the corpus's issues.json ground truth; for real-world
// corpora that file would be produced by manual inspection.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/obs/log"
)

func main() {
	lang := flag.String("lang", "python", "language: python, java, or go")
	dir := flag.String("dir", "corpus", "corpus directory")
	knowledge := flag.String("knowledge", "knowledge.bin", "input knowledge file (from namer-mine)")
	issues := flag.String("issues", "", "ground-truth labels (default <dir>/issues.json)")
	out := flag.String("out", "knowledge-trained.bin",
		"output knowledge file (compact binary; use a .json extension for the debug format)")
	trainSize := flag.Int("train", 120, "labeled violations to train on (balanced)")
	seed := flag.Int64("seed", 1, "sampling seed")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("namer-train", buildinfo.String())
		return
	}
	lg, err := log.FromFlags(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}

	l, err := ast.ParseLanguage(*lang)
	if err != nil {
		fatal(err)
	}
	if *issues == "" {
		*issues = filepath.Join(*dir, "issues.json")
	}

	sys := core.NewSystem(core.DefaultConfig(l))
	if err := sys.LoadKnowledge(*knowledge); err != nil {
		fatal(err)
	}
	files, errs := core.LoadDirectory(*dir, l)
	for _, e := range errs {
		lg.Warn("load failed", log.Err(e))
	}
	for _, e := range sys.ProcessFiles(files) {
		lg.Warn("analysis failed", log.Err(e))
	}
	violations := sys.Scan()
	fmt.Printf("found %d violations over %d files\n", len(violations), len(files))

	gt, err := corpus.ReadIssues(*issues)
	if err != nil {
		fatal(fmt.Errorf("reading labels: %w", err))
	}
	judge := indexIssues(gt)

	// Balanced sample, as in §5.1: half true issues, half false positives.
	rng := rand.New(rand.NewSource(*seed))
	perm := rng.Perm(len(violations))
	var vs []*core.Violation
	var ys []int
	pos, neg := 0, 0
	half := *trainSize / 2
	for _, i := range perm {
		v := violations[i]
		isIssue := judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		switch {
		case isIssue && pos < half:
			vs = append(vs, v)
			ys = append(ys, 1)
			pos++
		case !isIssue && neg < half:
			vs = append(vs, v)
			ys = append(ys, 0)
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		fatal(fmt.Errorf("degenerate labels: %d true, %d false", pos, neg))
	}
	sys.TrainClassifier(vs, ys)
	fmt.Printf("trained the defect classifier on %d labeled violations (%d true, %d false)\n",
		len(vs), pos, neg)

	kept := 0
	for _, v := range violations {
		if sys.Classify(v) {
			kept++
		}
	}
	fmt.Printf("classifier keeps %d/%d violations as reports\n", kept, len(violations))

	if err := sys.SaveKnowledge(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// indexIssues builds a judge function over the ground-truth issues.
func indexIssues(issues []*corpus.Issue) func(repo, path string, line int, original string) bool {
	type key struct{ repo, path string }
	byFile := map[key][]*corpus.Issue{}
	for _, is := range issues {
		k := key{is.Repo, is.Path}
		byFile[k] = append(byFile[k], is)
	}
	return func(repo, path string, line int, original string) bool {
		for _, is := range byFile[key{repo, path}] {
			if is.Original != original && is.Fixed != original {
				continue
			}
			d := line - is.Line
			if d < 0 {
				d = -d
			}
			if line == 0 || is.Line == 0 || d <= 1 {
				return true
			}
		}
		return false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "namer-train:", err)
	os.Exit(1)
}
