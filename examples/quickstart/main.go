// Quickstart: the smallest end-to-end tour of the Namer API — generate a
// tiny Big Code corpus, mine confusing word pairs and name patterns, scan
// for violations, train the defect classifier on a handful of labeled
// violations, and print the surviving reports.
package main

import (
	"fmt"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
)

func main() {
	// 1. A corpus (stands in for millions of GitHub files; see DESIGN.md).
	ccfg := corpus.DefaultConfig(ast.Python)
	ccfg.Repos = 16
	ccfg.FilesPerRepo = 4
	ccfg.IssueRate = 0.08
	c := corpus.Generate(ccfg)
	fmt.Printf("corpus: %d files, %d ground-truth issues\n", c.TotalFiles(), len(c.Issues))

	// 2. Build the system: mine pairs from commit history, process files
	// (per-file points-to analysis + AST+ + name paths), mine patterns.
	cfg := core.DefaultConfig(ast.Python)
	cfg.Mining.MinPatternCount = c.TotalFiles() / 3
	sys := core.NewSystem(cfg)
	sys.MinePairs(c.Commits)
	var files []*core.InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	sys.ProcessFiles(files)
	sys.MinePatterns()
	fmt.Printf("mined:  %d confusing word pairs, %d name patterns\n", sys.Pairs.Len(), len(sys.Patterns))

	// 3. Scan for violations of the mined patterns.
	violations := core.Dedup(sys.Scan())
	fmt.Printf("scan:   %d distinct violations\n", len(violations))

	// 4. Small supervision: label a few violations with the corpus's
	// ground truth (in the paper this is 120 manual inspections) and
	// train the classifier.
	var train []*core.Violation
	var labels []int
	pos, neg := 0, 0
	for _, v := range violations {
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		switch {
		case sev != corpus.NotIssue && pos < 30:
			train = append(train, v)
			labels = append(labels, 1)
			pos++
		case sev == corpus.NotIssue && neg < 30:
			train = append(train, v)
			labels = append(labels, 0)
			neg++
		}
	}
	sys.TrainClassifier(train, labels)

	// 5. Report.
	fmt.Println("\nreports:")
	shown := 0
	for _, v := range violations {
		if !sys.Classify(v) {
			continue
		}
		shown++
		if shown <= 8 {
			fmt.Println(v.Report())
		}
	}
	fmt.Printf("... %d reports total (classifier pruned %d violations)\n",
		shown, len(violations)-shown)
}
