// Figure 2 walkthrough: runs the paper's overview example through every
// stage of the inference pipeline and prints each intermediate artifact —
// the parsed AST, the transformed AST+ (with NUM abstraction, NumArgs and
// NumST nodes, and the TestCase origin decoration from the points-to
// analysis), the extracted name paths of Fig. 2(d), the violated name
// pattern of Fig. 2(e), and the suggested fix (assertTrue -> assertEqual).
package main

import (
	"fmt"

	"namer/internal/ast"
	"namer/internal/astplus"
	"namer/internal/namepath"
	"namer/internal/pattern"
	"namer/internal/pointsto"
	"namer/internal/pylang"
	"namer/internal/subtoken"
)

const src = `class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        for picture in self.slide.pictures:
            if picture.relative_path == rotated_picture_name:
                picture = self.slide.pictures[0]
                self.assertTrue(picture.rotate_angle, 90)
                break
`

func main() {
	fmt.Println("== The example program of Fig. 2(a) ==")
	fmt.Print(src)

	root, err := pylang.Parse(src)
	if err != nil {
		panic(err)
	}

	// Find the buggy statement.
	var stmt *ast.Statement
	for _, s := range ast.Statements(root) {
		found := false
		s.Root.Walk(func(n *ast.Node) bool {
			if n.Kind == ast.Ident && n.Value == "assertTrue" {
				found = true
			}
			return true
		})
		if found {
			stmt = s
		}
	}
	fmt.Println("== Parsed AST of the statement (Fig. 2(b)) ==")
	fmt.Println(stmt.Root.Dump())

	// Points-to and dataflow analyses (§4.1): self resolves to TestCase.
	res := pointsto.AnalyzeFile(root, ast.Python)
	fmt.Printf("analysis: %d functions, %d contexts, %d origin decorations\n\n",
		res.Stats.Functions, res.Stats.Contexts, res.OriginCount())

	// AST+ transformation (§3.1).
	plus := astplus.Transform(stmt, res.OriginOf)
	fmt.Println("== Transformed AST+ (Fig. 2(c)) ==")
	fmt.Println(plus.Dump())

	// Name paths (Fig. 2(d)).
	paths := namepath.Extract(plus, 10)
	fmt.Println("== Name paths (Fig. 2(d)) ==")
	for _, p := range paths {
		fmt.Println(" ", p)
	}
	fmt.Println()

	// The name pattern of Fig. 2(e), as it would be mined from Big Code.
	mk := func(s string) namepath.Path {
		np, ok := namepath.ParsePath(s)
		if !ok {
			panic("bad path: " + s)
		}
		return np
	}
	pat := &pattern.Pattern{
		Type: pattern.ConfusingWord,
		Condition: []namepath.Path{
			mk("NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self"),
			mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert"),
			mk("NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM"),
		},
		Deduction: []namepath.Path{
			mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 Equal"),
		},
	}
	fmt.Println("== Name pattern (Fig. 2(e)) ==")
	fmt.Println(pat)

	fmt.Printf("matches the statement:   %v\n", pat.Matches(paths))
	fmt.Printf("satisfied by statement:  %v\n", pat.Satisfied(paths))
	fmt.Printf("violated by statement:   %v\n\n", pat.Violated(paths))

	v, _ := pat.Explain(paths)
	fixed := subtoken.Join("assertTrue", []string{"assert", v.Suggested})
	fmt.Printf("suggested fix: replace subtoken %q with %q — assertTrue(...) becomes %s(...)\n",
		v.Original, v.Suggested, fixed)
}
