// FP-tree mining demo (Fig. 3): shows how the pattern miner grows a
// frequent-pattern tree over condition/deduction transactions and
// extracts name patterns at transaction-end nodes, then runs the real
// miner (Algorithms 1 and 2) on a small synthetic statement set to show
// how the assertTrue/assertEqual pattern of Fig. 2(e) emerges from data.
package main

import (
	"fmt"

	"namer/internal/confusion"
	"namer/internal/fptree"
	"namer/internal/mining"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

func main() {
	// Part 1: the toy FP tree of Fig. 3(a). Items are abstract path ids
	// NP1..NP6 (1..6); the deduction is the last item of each transaction.
	fmt.Println("== Part 1: the FP tree of Fig. 3(a) ==")
	tree := fptree.New()
	for i := 0; i < 33; i++ {
		tree.Update([]int{1, 2}) // cond NP1 => deduct NP2
	}
	for i := 0; i < 15; i++ {
		tree.Update([]int{1, 3, 5}) // cond NP1,NP3 => deduct NP5
	}
	for i := 0; i < 1; i++ {
		tree.Update([]int{1, 3, 4}) // cond NP1,NP3 => deduct NP4
	}
	for i := 0; i < 13; i++ {
		tree.Update([]int{1, 3, 4, 6}) // cond NP1,NP3,NP4 => deduct NP6
	}
	tree.Walk(func(n *fptree.Node, stack []int) {
		indent := ""
		for range stack {
			indent += "  "
		}
		last := ""
		if n.IsLast {
			last = "  <- transaction end (pattern extracted here)"
		}
		fmt.Printf("%sNP%d count=%d%s\n", indent, n.Item, n.Count, last)
	})
	fmt.Println()
	fmt.Println("Extracted (condition => deduction, count) as in Fig. 3(b):")
	tree.Walk(func(n *fptree.Node, stack []int) {
		if !n.IsLast {
			return
		}
		fmt.Printf("  {")
		for i, it := range stack[:len(stack)-1] {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("NP%d", it)
		}
		fmt.Printf("} => NP%d   count %d\n", stack[len(stack)-1], n.Count)
	})
	fmt.Println()

	// Part 2: mine the Fig. 2(e) pattern from synthetic statements.
	fmt.Println("== Part 2: mining the assertEqual pattern from statements ==")
	mk := func(word string) *pattern.Statement {
		p := func(s string) namepath.Path {
			np, ok := namepath.ParsePath(s)
			if !ok {
				panic("bad path " + s)
			}
			return np
		}
		return pattern.NewStatement([]namepath.Path{
			p("NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self"),
			p("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert"),
			p("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 " + word),
			p("NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM"),
		})
	}
	var stmts []*pattern.Statement
	for i := 0; i < 60; i++ {
		stmts = append(stmts, mk("Equal")) // the common idiom
	}
	for i := 0; i < 4; i++ {
		stmts = append(stmts, mk("True")) // the Fig. 2 bug
	}
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal") // mined from commit histories (§3.2)

	cfg := mining.DefaultConfig()
	cfg.MinPathCount = 0
	cfg.MinPatternCount = 20
	patterns := mining.MinePatterns(stmts, pattern.ConfusingWord, pairs, cfg)
	fmt.Printf("mined %d confusing-word pattern(s)\n\n", len(patterns))

	buggy := mk("True")
	for _, p := range patterns {
		if !buggy.Violated(p) {
			continue
		}
		fmt.Println(p)
		v, _ := buggy.Explain(p)
		fmt.Printf("the buggy statement violates it: fix %q -> %q\n", v.Original, v.Suggested)
		break
	}
}
