// Bugfinder: scans a generated multi-repository corpus end to end — the
// workload the paper's evaluation runs at GitHub scale — and prints a
// digest: per-category detection counts against the ground truth, the
// classifier's effect on precision, and a handful of sample reports for
// both languages.
package main

import (
	"fmt"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
)

func main() {
	for _, lang := range []ast.Language{ast.Python, ast.Java} {
		scan(lang)
	}
}

func scan(lang ast.Language) {
	fmt.Printf("==== %s ====\n", lang)
	ccfg := corpus.DefaultConfig(lang)
	ccfg.Repos = 24
	ccfg.FilesPerRepo = 5
	ccfg.IssueRate = 0.06
	ccfg.AnomalyRate = 0.12
	c := corpus.Generate(ccfg)

	cfg := core.DefaultConfig(lang)
	cfg.Mining.MinPatternCount = c.TotalFiles() / 3
	sys := core.NewSystem(cfg)
	sys.MinePairs(c.Commits)
	var files []*core.InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	sys.ProcessFiles(files)
	sys.MinePatterns()
	violations := core.Dedup(sys.Scan())

	// Train the classifier on a small balanced sample of ground-truth
	// labels (the paper's "small supervision").
	var train []*core.Violation
	var labels []int
	pos, neg := 0, 0
	for _, v := range violations {
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		switch {
		case sev != corpus.NotIssue && pos < 40:
			train = append(train, v)
			labels = append(labels, 1)
			pos++
		case sev == corpus.NotIssue && neg < 40:
			train = append(train, v)
			labels = append(labels, 0)
			neg++
		}
	}
	sys.TrainClassifier(train, labels)

	// Digest.
	type stats struct{ found, reported int }
	byCat := map[string]*stats{}
	var rawTP, rawAll, repTP, repAll int
	samples := 0
	for _, v := range violations {
		sev, cat := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		rawAll++
		isIssue := sev != corpus.NotIssue
		if isIssue {
			rawTP++
			if byCat[cat] == nil {
				byCat[cat] = &stats{}
			}
			byCat[cat].found++
		}
		if sys.Classify(v) {
			repAll++
			if isIssue {
				repTP++
				byCat[cat].reported++
			}
			if samples < 3 {
				samples++
				fmt.Println(v.Report())
			}
		}
	}
	fmt.Printf("\nviolations: %d (precision %.0f%%) -> reports: %d (precision %.0f%%)\n",
		rawAll, 100*float64(rawTP)/float64(rawAll),
		repAll, 100*float64(repTP)/float64(repAll))
	fmt.Println("per-category detections (found -> kept by classifier):")
	for cat, s := range byCat {
		fmt.Printf("  %-16s %3d -> %3d\n", cat, s.found, s.reported)
	}
	fmt.Println()
}
