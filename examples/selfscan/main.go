// Selfscan: Namer eats its own dogfood. The Go front end (a third
// language, demonstrating the paper's §5.1 genericity claim) parses this
// repository's own source; consistency name patterns are mined from it
// and the most anomalous naming spots are reported. With no commit
// history there are no confusing word pairs, so this is a pure
// consistency-pattern run — the unsupervised half of the recipe.
//
// Run from the repository root:
//
//	go run ./examples/selfscan
package main

import (
	"fmt"
	"os"
	"sort"

	"namer/internal/ast"
	"namer/internal/core"
)

func main() {
	root := "internal"
	if _, err := os.Stat(root); err != nil {
		fmt.Fprintln(os.Stderr, "run from the repository root (internal/ not found)")
		os.Exit(1)
	}
	files, errs := core.LoadDirectory(root, ast.Go)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "warning:", e)
	}
	fmt.Printf("parsed %d Go files from %s/\n", len(files), root)

	cfg := core.DefaultConfig(ast.Go)
	cfg.Mining.MinPatternCount = 8
	// §2: "we allow violations to be triggered at lower confidence so that
	// most issues are not missed" — without a classifier to prune, rank by
	// pattern adoption instead.
	cfg.Mining.MinSatisfactionRatio = 0.7
	sys := core.NewSystem(cfg)
	sys.MinePairs(nil) // no commit history: consistency patterns only
	sys.ProcessFiles(files)
	sys.MinePatterns()
	fmt.Printf("processed %d statements, mined %d consistency patterns\n",
		len(sys.Stmts), len(sys.Patterns))

	violations := core.Dedup(sys.Scan())
	fmt.Printf("found %d naming anomalies (unclassified — no labeled data for Go)\n\n", len(violations))

	// Rank by how strongly the violated pattern is adopted elsewhere.
	sort.SliceStable(violations, func(i, j int) bool {
		ri := satisfactionRate(violations[i])
		rj := satisfactionRate(violations[j])
		if ri != rj {
			return ri > rj
		}
		return violations[i].Stmt.Path < violations[j].Stmt.Path
	})
	max := 12
	if len(violations) < max {
		max = len(violations)
	}
	for _, v := range violations[:max] {
		fmt.Println(v.Report())
	}
	if len(violations) > max {
		fmt.Printf("... and %d more\n", len(violations)-max)
	}
}

func satisfactionRate(v *core.Violation) float64 {
	p := v.Pattern
	if p.MatchCount == 0 {
		return 0
	}
	return float64(p.SatisfyCount) / float64(p.MatchCount)
}
