package golang

import (
	goast "go/ast"
	gotoken "go/token"

	uast "namer/internal/ast"
)

// stmt converts one Go statement.
func (c *converter) stmt(s goast.Stmt) *uast.Node {
	switch x := s.(type) {
	case *goast.AssignStmt:
		return c.assign(x)
	case *goast.ExprStmt:
		return c.node(uast.ExprStmt, x, c.expr(x.X, false))
	case *goast.ReturnStmt:
		ret := c.node(uast.Return, x)
		for _, r := range x.Results {
			ret.Add(c.expr(r, false))
		}
		return ret
	case *goast.IfStmt:
		out := c.node(uast.If, x)
		if x.Init != nil {
			// Hoist the init statement in front via a Block.
			blk := c.node(uast.Block, x, c.stmt(x.Init))
			out.Add(c.expr(x.Cond, false))
			out.Add(c.block(x.Body))
			if x.Else != nil {
				out.Add(c.elseClause(x.Else))
			}
			blk.Add(out)
			return blk
		}
		out.Add(c.expr(x.Cond, false))
		out.Add(c.block(x.Body))
		if x.Else != nil {
			out.Add(c.elseClause(x.Else))
		}
		return out
	case *goast.ForStmt:
		out := c.node(uast.For, x)
		if x.Init != nil {
			out.Add(c.stmt(x.Init))
		}
		if x.Cond != nil {
			out.Add(c.expr(x.Cond, false))
		}
		if x.Post != nil {
			out.Add(c.stmt(x.Post))
		}
		out.Add(c.block(x.Body))
		return out
	case *goast.RangeStmt:
		out := c.node(uast.ForEach, x)
		out.Add(c.node(uast.TypeRef, x, c.leaf(uast.Ident, "range", x)))
		if x.Key != nil {
			out.Add(c.storeTarget(x.Key))
		} else {
			out.Add(c.node(uast.NameStore, x, c.leaf(uast.Ident, "_", x)))
		}
		if x.Value != nil {
			out.Add(c.storeTarget(x.Value))
		}
		out.Add(c.expr(x.X, false))
		out.Add(c.block(x.Body))
		return out
	case *goast.SwitchStmt:
		out := c.node(uast.Switch, x)
		if x.Tag != nil {
			out.Add(c.expr(x.Tag, false))
		} else {
			out.Add(c.node(uast.Bool, x, c.leaf(uast.BoolLit, "true", x)))
		}
		body := c.node(uast.Body, x)
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*goast.CaseClause); ok {
				cas := c.node(uast.CaseClause, clause)
				for _, e := range clause.List {
					cas.Add(c.expr(e, false))
				}
				for _, st := range clause.Body {
					cas.Add(c.stmt(st))
				}
				body.Add(cas)
			}
		}
		out.Add(body)
		return out
	case *goast.TypeSwitchStmt:
		out := c.node(uast.Switch, x)
		out.Add(c.node(uast.NameLoad, x, c.leaf(uast.Ident, "type", x)))
		body := c.node(uast.Body, x)
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*goast.CaseClause); ok {
				cas := c.node(uast.CaseClause, clause)
				for _, st := range clause.Body {
					cas.Add(c.stmt(st))
				}
				body.Add(cas)
			}
		}
		out.Add(body)
		return out
	case *goast.SelectStmt:
		out := c.node(uast.Switch, x)
		out.Add(c.node(uast.NameLoad, x, c.leaf(uast.Ident, "select", x)))
		body := c.node(uast.Body, x)
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*goast.CommClause); ok {
				cas := c.node(uast.CaseClause, clause)
				for _, st := range clause.Body {
					cas.Add(c.stmt(st))
				}
				body.Add(cas)
			}
		}
		out.Add(body)
		return out
	case *goast.BlockStmt:
		return c.block(x)
	case *goast.DeclStmt:
		if gd, ok := x.Decl.(*goast.GenDecl); ok {
			decls := c.genDecl(gd)
			if len(decls) == 1 {
				return decls[0]
			}
			blk := c.node(uast.Block, x)
			blk.Add(decls...)
			return blk
		}
		return c.node(uast.EmptyStmt, x)
	case *goast.IncDecStmt:
		op := "++"
		if x.Tok == gotoken.DEC {
			op = "--"
		}
		return c.node(uast.ExprStmt, x,
			c.node(uast.UnaryOp, x, c.leaf(uast.OpTok, op, x), c.expr(x.X, false)))
	case *goast.BranchStmt:
		switch x.Tok {
		case gotoken.BREAK:
			return c.node(uast.Break, x)
		case gotoken.CONTINUE:
			return c.node(uast.Continue, x)
		default:
			return c.node(uast.EmptyStmt, x)
		}
	case *goast.DeferStmt:
		return c.node(uast.ExprStmt, x, c.expr(x.Call, false))
	case *goast.GoStmt:
		return c.node(uast.ExprStmt, x, c.expr(x.Call, false))
	case *goast.SendStmt:
		return c.node(uast.ExprStmt, x,
			c.node(uast.BinOp, x, c.leaf(uast.OpTok, "<-", x),
				c.expr(x.Chan, false), c.expr(x.Value, false)))
	case *goast.LabeledStmt:
		return c.node(uast.LabeledStmt, x,
			c.leaf(uast.Ident, x.Label.Name, x.Label), c.stmt(x.Stmt))
	case *goast.EmptyStmt:
		return c.node(uast.EmptyStmt, x)
	}
	return c.node(uast.EmptyStmt, s)
}

func (c *converter) block(b *goast.BlockStmt) *uast.Node {
	body := c.node(uast.Body, b)
	for _, st := range b.List {
		body.Add(c.stmt(st))
	}
	return body
}

func (c *converter) elseClause(e goast.Stmt) *uast.Node {
	switch x := e.(type) {
	case *goast.IfStmt:
		return c.node(uast.Elif, x, c.stmt(x))
	case *goast.BlockStmt:
		return c.node(uast.Else, x, c.block(x))
	}
	return c.node(uast.Else, e, c.node(uast.Body, e, c.stmt(e)))
}

var goAugOps = map[gotoken.Token]string{
	gotoken.ADD_ASSIGN: "+=", gotoken.SUB_ASSIGN: "-=", gotoken.MUL_ASSIGN: "*=",
	gotoken.QUO_ASSIGN: "/=", gotoken.REM_ASSIGN: "%=", gotoken.AND_ASSIGN: "&=",
	gotoken.OR_ASSIGN: "|=", gotoken.XOR_ASSIGN: "^=", gotoken.SHL_ASSIGN: "<<=",
	gotoken.SHR_ASSIGN: ">>=", gotoken.AND_NOT_ASSIGN: "&^=",
}

func (c *converter) assign(x *goast.AssignStmt) *uast.Node {
	if op, ok := goAugOps[x.Tok]; ok {
		return c.node(uast.AugAssign, x, c.storeTarget(x.Lhs[0]),
			c.leaf(uast.OpTok, op, x), c.expr(x.Rhs[0], false))
	}
	out := c.node(uast.Assign, x)
	if len(x.Lhs) == 1 {
		out.Add(c.storeTarget(x.Lhs[0]))
	} else {
		tup := c.node(uast.TupleLit, x)
		for _, l := range x.Lhs {
			tup.Add(c.storeTarget(l))
		}
		out.Add(tup)
	}
	if len(x.Rhs) == 1 {
		out.Add(c.expr(x.Rhs[0], false))
	} else {
		tup := c.node(uast.TupleLit, x)
		for _, r := range x.Rhs {
			tup.Add(c.expr(r, false))
		}
		out.Add(tup)
	}
	return out
}

func (c *converter) storeTarget(e goast.Expr) *uast.Node {
	return c.expr(e, true)
}
