package golang

import (
	goast "go/ast"
	gotoken "go/token"

	uast "namer/internal/ast"
)

// expr converts one Go expression; store selects the NameStore /
// AttributeStore / SubscriptStore context for assignment targets.
func (c *converter) expr(e goast.Expr, store bool) *uast.Node {
	switch x := e.(type) {
	case *goast.Ident:
		kind := uast.NameLoad
		if store {
			kind = uast.NameStore
		}
		switch x.Name {
		case "true", "false":
			return c.node(uast.Bool, x, c.leaf(uast.BoolLit, x.Name, x))
		case "nil":
			return c.node(uast.Null, x, c.leaf(uast.NullLit, "nil", x))
		}
		return c.node(kind, x, c.leaf(uast.Ident, x.Name, x))
	case *goast.BasicLit:
		switch x.Kind {
		case gotoken.INT, gotoken.FLOAT, gotoken.IMAG:
			return c.node(uast.Num, x, c.leaf(uast.NumLit, x.Value, x))
		case gotoken.CHAR, gotoken.STRING:
			return c.node(uast.Str, x, c.leaf(uast.StrLit, x.Value, x))
		}
		return c.node(uast.Str, x, c.leaf(uast.StrLit, x.Value, x))
	case *goast.SelectorExpr:
		kind := uast.AttributeLoad
		if store {
			kind = uast.AttributeStore
		}
		return c.node(kind, x, c.expr(x.X, false),
			c.node(uast.Attr, x.Sel, c.leaf(uast.Ident, x.Sel.Name, x.Sel)))
	case *goast.CallExpr:
		call := c.node(uast.Call, x, c.expr(x.Fun, false))
		for _, a := range x.Args {
			call.Add(c.expr(a, false))
		}
		return call
	case *goast.IndexExpr:
		kind := uast.SubscriptLoad
		if store {
			kind = uast.SubscriptStore
		}
		return c.node(kind, x, c.expr(x.X, false),
			c.node(uast.Index, x, c.expr(x.Index, false)))
	case *goast.SliceExpr:
		sl := c.node(uast.SliceRange, x)
		for _, part := range []goast.Expr{x.Low, x.High, x.Max} {
			if part != nil {
				sl.Add(c.expr(part, false))
			}
		}
		return c.node(uast.SubscriptLoad, x, c.expr(x.X, false), sl)
	case *goast.BinaryExpr:
		op := x.Op.String()
		kind := uast.BinOp
		switch x.Op {
		case gotoken.LAND, gotoken.LOR:
			kind = uast.BoolOp
		case gotoken.EQL, gotoken.NEQ, gotoken.LSS, gotoken.GTR, gotoken.LEQ, gotoken.GEQ:
			return c.node(uast.Compare, x, c.expr(x.X, false),
				c.leaf(uast.OpTok, op, x), c.expr(x.Y, false))
		}
		return c.node(kind, x, c.leaf(uast.OpTok, op, x),
			c.expr(x.X, false), c.expr(x.Y, false))
	case *goast.UnaryExpr:
		return c.node(uast.UnaryOp, x, c.leaf(uast.OpTok, x.Op.String(), x),
			c.expr(x.X, false))
	case *goast.StarExpr:
		return c.node(uast.UnaryOp, x, c.leaf(uast.OpTok, "*", x),
			c.expr(x.X, false))
	case *goast.ParenExpr:
		return c.expr(x.X, store)
	case *goast.CompositeLit:
		lit := c.node(uast.ListLit, x)
		for _, el := range x.Elts {
			lit.Add(c.expr(el, false))
		}
		return lit
	case *goast.KeyValueExpr:
		return c.node(uast.DictItem, x, c.expr(x.Key, false), c.expr(x.Value, false))
	case *goast.FuncLit:
		params := c.node(uast.Params, x)
		if x.Type.Params != nil {
			for _, f := range x.Type.Params.List {
				for _, nm := range f.Names {
					params.Add(c.node(uast.Param, f, c.typeRef(f.Type),
						c.leaf(uast.Ident, nm.Name, nm)))
				}
			}
		}
		return c.node(uast.Lambda, x, params, c.block(x.Body))
	case *goast.TypeAssertExpr:
		if x.Type == nil {
			return c.expr(x.X, false)
		}
		return c.node(uast.Cast, x, c.typeRef(x.Type), c.expr(x.X, false))
	case *goast.Ellipsis:
		if x.Elt != nil {
			return c.node(uast.StarArg, x, c.expr(x.Elt, false))
		}
		return c.node(uast.NameLoad, x, c.leaf(uast.Ident, "...", x))
	case *goast.ArrayType, *goast.MapType, *goast.ChanType, *goast.FuncType,
		*goast.StructType, *goast.InterfaceType:
		return c.typeRef(x)
	case *goast.IndexListExpr:
		return c.expr(x.X, store)
	}
	return c.node(uast.NameLoad, e, c.leaf(uast.Ident, "_", e))
}
