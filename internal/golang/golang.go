// Package golang maps Go source onto the unified AST via the standard
// library's go/parser, adding a third front end next to pylang and
// javalang. It demonstrates the paper's §5.1 claim that the framework
// "is generic and can be applied to other languages": downstream stages
// (AST+, name paths, mining, classification) run unchanged.
//
// Mapping conventions: a method's receiver becomes the first parameter
// (playing the self/this role), struct types become ClassDef with
// FieldDecl members, selector expressions become AttributeLoad, and
// `x := e` / `var x T = e` become Assign / LocalVarDecl like their
// Python/Java counterparts.
package golang

import (
	goast "go/ast"
	"go/parser"
	gotoken "go/token"
	"strings"

	uast "namer/internal/ast"
)

// Parse parses Go source into a unified AST rooted at a Module node.
func Parse(src string) (*uast.Node, error) {
	fset := gotoken.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	c := &converter{fset: fset}
	return c.file(file), nil
}

type converter struct {
	fset *gotoken.FileSet
}

func (c *converter) pos(n goast.Node) int {
	if n == nil {
		return 0
	}
	return c.fset.Position(n.Pos()).Line
}

func (c *converter) node(k uast.Kind, n goast.Node, children ...*uast.Node) *uast.Node {
	out := uast.NewNode(k, children...)
	out.Line = c.pos(n)
	return out
}

func (c *converter) leaf(k uast.Kind, value string, n goast.Node) *uast.Node {
	out := uast.NewLeaf(k, value)
	out.Line = c.pos(n)
	return out
}

func (c *converter) file(f *goast.File) *uast.Node {
	mod := c.node(uast.Module, f)
	mod.Add(c.node(uast.PackageDecl, f.Name, c.leaf(uast.Ident, f.Name.Name, f.Name)))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		alias := c.node(uast.ImportAlias, imp, c.leaf(uast.Ident, path, imp))
		if imp.Name != nil {
			alias.Add(c.leaf(uast.Ident, imp.Name.Name, imp.Name))
		}
		mod.Add(c.node(uast.Import, imp, alias))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *goast.FuncDecl:
			mod.Add(c.funcDecl(d))
		case *goast.GenDecl:
			if d.Tok == gotoken.IMPORT {
				continue
			}
			for _, out := range c.genDecl(d) {
				mod.Add(out)
			}
		}
	}
	return mod
}

func (c *converter) genDecl(d *goast.GenDecl) []*uast.Node {
	var out []*uast.Node
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *goast.TypeSpec:
			out = append(out, c.typeSpec(s))
		case *goast.ValueSpec:
			out = append(out, c.valueSpec(s)...)
		}
	}
	return out
}

func (c *converter) typeSpec(s *goast.TypeSpec) *uast.Node {
	switch t := s.Type.(type) {
	case *goast.StructType:
		cls := c.node(uast.ClassDef, s, c.leaf(uast.Ident, s.Name.Name, s.Name),
			c.node(uast.Bases, s))
		body := c.node(uast.Body, s)
		for _, f := range t.Fields.List {
			typ := c.typeRef(f.Type)
			if len(f.Names) == 0 {
				// Embedded field: treat as a base.
				cls.Children[1].Add(typ)
				continue
			}
			for _, nm := range f.Names {
				body.Add(c.node(uast.FieldDecl, f, typ.Clone(),
					c.node(uast.NameStore, nm, c.leaf(uast.Ident, nm.Name, nm))))
			}
		}
		cls.Add(body)
		return cls
	case *goast.InterfaceType:
		it := c.node(uast.InterfaceDef, s, c.leaf(uast.Ident, s.Name.Name, s.Name),
			c.node(uast.Bases, s))
		body := c.node(uast.Body, s)
		for _, m := range t.Methods.List {
			for _, nm := range m.Names {
				body.Add(c.node(uast.FunctionDef, m,
					c.leaf(uast.Ident, nm.Name, nm), c.node(uast.Params, m), c.node(uast.Body, m)))
			}
		}
		it.Add(body)
		return it
	default:
		// Named type alias: record as an empty class.
		return c.node(uast.ClassDef, s, c.leaf(uast.Ident, s.Name.Name, s.Name),
			c.node(uast.Bases, s), c.node(uast.Body, s))
	}
}

func (c *converter) valueSpec(s *goast.ValueSpec) []*uast.Node {
	var out []*uast.Node
	for i, nm := range s.Names {
		d := c.node(uast.LocalVarDecl, s)
		if s.Type != nil {
			d.Add(c.typeRef(s.Type))
		}
		d.Add(c.node(uast.NameStore, nm, c.leaf(uast.Ident, nm.Name, nm)))
		if i < len(s.Values) {
			d.Add(c.expr(s.Values[i], false))
		}
		out = append(out, d)
	}
	return out
}

func (c *converter) funcDecl(d *goast.FuncDecl) *uast.Node {
	fn := c.node(uast.FunctionDef, d)
	fn.Add(c.leaf(uast.Ident, d.Name.Name, d.Name))
	params := c.node(uast.Params, d)
	if d.Recv != nil {
		for _, f := range d.Recv.List {
			for _, nm := range f.Names {
				params.Add(c.node(uast.Param, f, c.typeRef(f.Type),
					c.leaf(uast.Ident, nm.Name, nm)))
			}
		}
	}
	if d.Type.Params != nil {
		for _, f := range d.Type.Params.List {
			typ := c.typeRef(f.Type)
			if len(f.Names) == 0 {
				params.Add(c.node(uast.Param, f, typ))
				continue
			}
			for _, nm := range f.Names {
				params.Add(c.node(uast.Param, f, typ.Clone(),
					c.leaf(uast.Ident, nm.Name, nm)))
			}
		}
	}
	fn.Add(params)
	body := c.node(uast.Body, d)
	if d.Body != nil {
		for _, st := range d.Body.List {
			body.Add(c.stmt(st))
		}
	}
	fn.Add(body)
	return fn
}

// typeRef renders a Go type expression as a TypeRef with a dotted name.
func (c *converter) typeRef(t goast.Expr) *uast.Node {
	return c.node(uast.TypeRef, t, c.leaf(uast.Ident, typeName(t), t))
}

func typeName(t goast.Expr) string {
	switch x := t.(type) {
	case *goast.Ident:
		return x.Name
	case *goast.SelectorExpr:
		return typeName(x.X) + "." + x.Sel.Name
	case *goast.StarExpr:
		return typeName(x.X)
	case *goast.ArrayType:
		return typeName(x.Elt) + "[]"
	case *goast.MapType:
		return "map"
	case *goast.FuncType:
		return "func"
	case *goast.ChanType:
		return "chan"
	case *goast.InterfaceType:
		return "interface"
	case *goast.StructType:
		return "struct"
	case *goast.Ellipsis:
		return typeName(x.Elt) + "[]"
	case *goast.IndexExpr:
		return typeName(x.X)
	case *goast.IndexListExpr:
		return typeName(x.X)
	}
	return "type"
}
