package golang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	uast "namer/internal/ast"
	"namer/internal/astplus"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

const sample = `package sample

import (
	"fmt"
	np "namer/pkg"
)

type Widget struct {
	Base
	name string
	port int
}

type Store interface {
	Get(key string) string
}

func NewWidget(name string, port int) *Widget {
	w := &Widget{}
	w.name = name
	w.port = port
	return w
}

func (w *Widget) Render(limit int) error {
	total := 0
	for i := 0; i < limit; i++ {
		total += i
	}
	for key, value := range w.table() {
		fmt.Println(key, value)
	}
	if total > limit {
		return fmt.Errorf("overflow %d", total)
	} else if total == 0 {
		total = 1
	} else {
		total--
	}
	switch total {
	case 1:
		total = 2
	default:
		total = 0
	}
	items := []int{1, 2, 3}
	m := map[string]int{"a": 1}
	fn := func(x int) int { return x * 2 }
	defer w.close()
	go w.poll()
	s := items[0:2]
	_ = s
	v, ok := m["a"]
	_ = v
	_ = ok
	x := any(total)
	if n, isInt := x.(int); isInt {
		total = n
	}
	return np.Wrap(fn(total))
}
`

func TestParseGoSample(t *testing.T) {
	root, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != uast.Module {
		t.Fatalf("root = %v", root.Kind)
	}
	kinds := map[uast.Kind]int{}
	root.Walk(func(n *uast.Node) bool {
		kinds[n.Kind]++
		return true
	})
	for _, want := range []uast.Kind{
		uast.PackageDecl, uast.Import, uast.ClassDef, uast.InterfaceDef,
		uast.FieldDecl, uast.FunctionDef, uast.Assign, uast.AugAssign,
		uast.For, uast.ForEach, uast.If, uast.Elif, uast.Else, uast.Switch,
		uast.CaseClause, uast.Call, uast.AttributeLoad, uast.AttributeStore,
		uast.SubscriptLoad, uast.Lambda, uast.Cast, uast.Return,
		uast.Compare, uast.BinOp, uast.ListLit, uast.DictItem,
	} {
		if kinds[want] == 0 {
			t.Errorf("kind %v not produced", want)
		}
	}
}

func TestGoStatementsAndNamePaths(t *testing.T) {
	root, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	stmts := uast.Statements(root)
	if len(stmts) < 15 {
		t.Fatalf("only %d statements projected", len(stmts))
	}
	// Downstream machinery runs unchanged: transform + extract + index.
	total := 0
	for _, s := range stmts {
		plus := astplus.Transform(s, nil)
		paths := namepath.Extract(plus, 10)
		total += len(paths)
		if len(paths) > 0 {
			pattern.NewStatement(paths)
		}
	}
	if total == 0 {
		t.Fatal("no name paths extracted from Go code")
	}
	// The w.name = name store looks exactly like Python/Java consistency
	// material: AttributeStore with matching attr/value subtokens.
	found := false
	for _, s := range stmts {
		plus := astplus.Transform(s, nil)
		paths := namepath.Extract(plus, 10)
		var attrEnd, valEnd string
		for _, p := range paths {
			str := p.String()
			if strings.Contains(str, "AttributeStore 1 Attr") {
				attrEnd = p.End
			}
			if strings.Contains(str, "Assign 1 NameLoad") {
				valEnd = p.End
			}
		}
		if attrEnd == "name" && valEnd == "name" {
			found = true
		}
	}
	if !found {
		t.Error("w.name = name did not yield consistency-shaped paths")
	}
}

func TestGoReceiverIsFirstParam(t *testing.T) {
	root, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	var render *uast.Node
	root.Walk(func(n *uast.Node) bool {
		if n.Kind == uast.FunctionDef {
			for _, c := range n.Children {
				if c.Kind == uast.Ident && c.Value == "Render" {
					render = n
				}
			}
		}
		return true
	})
	if render == nil {
		t.Fatal("Render not found")
	}
	var params *uast.Node
	for _, c := range render.Children {
		if c.Kind == uast.Params {
			params = c
		}
	}
	if params == nil || len(params.Children) != 2 {
		t.Fatalf("params: %v", params)
	}
	first := params.Children[0]
	if first.Children[len(first.Children)-1].Value != "w" {
		t.Errorf("receiver should be the first parameter, got %s", first)
	}
}

func TestParseGoErrors(t *testing.T) {
	if _, err := Parse("package p\nfunc broken( {\n"); err == nil {
		t.Error("syntax error should be reported")
	}
}

// The front end parses this repository's own source — the self-scan
// workload of examples/selfscan.
func TestParseOwnPackage(t *testing.T) {
	for _, name := range []string{"golang.go", "stmt.go", "expr.go"} {
		data, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		root, err := Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(uast.Statements(root)) < 10 {
			t.Errorf("%s: suspiciously few statements", name)
		}
	}
}
