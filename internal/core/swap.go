package core

import "fmt"

// Swap is a detected swapped-arguments defect: two mirrored violations on
// the same statement, each suggesting the other's current subtoken. This
// extends Namer to the argument-selection defect class of Rice et al. and
// DeepBugs (discussed in §6.1 of the paper); the paper's §3.2 leaves
// additional pattern kinds as future work, and swaps compose directly
// from mirrored confusing-word violations.
type Swap struct {
	First  *Violation
	Second *Violation
}

// Report renders the swap in the style of Violation.Report.
func (s *Swap) Report() string {
	v := s.First
	return fmt.Sprintf("%s:%d: %s\n  suggested fix: swap %q and %q (swapped arguments)",
		v.Stmt.Path, v.Stmt.Line, v.Stmt.SourceLine,
		s.First.Detail.Original, s.Second.Detail.Original)
}

// FindSwaps scans a violation list for mirrored pairs: two violations of
// the same statement where each one's suggested subtoken is the other's
// original and the offending paths differ. Each returned Swap pairs the
// two; the same violation never participates in two swaps.
func FindSwaps(vs []*Violation) []*Swap {
	byStmt := map[*ProcStmt][]*Violation{}
	for _, v := range vs {
		byStmt[v.Stmt] = append(byStmt[v.Stmt], v)
	}
	var out []*Swap
	for _, group := range byStmt {
		used := make([]bool, len(group))
		for i := 0; i < len(group); i++ {
			if used[i] {
				continue
			}
			for j := i + 1; j < len(group); j++ {
				if used[j] {
					continue
				}
				a, b := group[i], group[j]
				if a.Detail.Original == b.Detail.Suggested &&
					a.Detail.Suggested == b.Detail.Original &&
					a.Detail.Original != b.Detail.Original &&
					a.Detail.Path.PrefixKey() != b.Detail.Path.PrefixKey() {
					used[i], used[j] = true, true
					out = append(out, &Swap{First: a, Second: b})
					break
				}
			}
		}
	}
	return out
}
