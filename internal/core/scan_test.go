package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"namer/internal/ast"
	"namer/internal/confusion"
	"namer/internal/knowledge"
	"namer/internal/pattern"
)

// TestKnowledgeRoundTripBinary checks the acceptance criterion that the
// binary formats round-trip byte-identical semantics with JSON: the same
// mined system saved as JSON, v1 binary, and v2 binary loads into
// systems that agree on every pattern, pair, violation, and classifier
// decision. Size expectations differ per format: v1 (the compact varint
// archive) stays at least 3x smaller than JSON, while v2 trades some of
// that for O(1) open and must only beat JSON.
func TestKnowledgeRoundTripBinary(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) < 20 {
		t.Skip("not enough violations")
	}
	var vs []*Violation
	var ys []int
	for i, v := range violations {
		if i >= 60 {
			break
		}
		vs = append(vs, v)
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		if sev != 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	sys.TrainClassifier(vs, ys)

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "knowledge.json")
	binPath := filepath.Join(dir, "knowledge.bin")
	v1Path := filepath.Join(dir, "knowledge-v1.bin")
	if err := sys.SaveKnowledge(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveKnowledge(binPath); err != nil {
		t.Fatal(err)
	}
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	if err := knowledge.SaveV1(v1Path, k); err != nil {
		t.Fatal(err)
	}

	jinfo, _ := os.Stat(jsonPath)
	binfo, _ := os.Stat(binPath)
	v1info, _ := os.Stat(v1Path)
	t.Logf("knowledge sizes: json=%d bytes, v2=%d bytes (%.1fx), v1=%d bytes (%.1fx)",
		jinfo.Size(), binfo.Size(), float64(jinfo.Size())/float64(binfo.Size()),
		v1info.Size(), float64(jinfo.Size())/float64(v1info.Size()))
	if binfo.Size() >= jinfo.Size() {
		t.Errorf("v2 binary knowledge (%d bytes) is not smaller than JSON (%d bytes)",
			binfo.Size(), jinfo.Size())
	}
	if v1info.Size()*3 > jinfo.Size() {
		t.Errorf("v1 binary knowledge (%d bytes) is not >=3x smaller than JSON (%d bytes)",
			v1info.Size(), jinfo.Size())
	}

	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	load := func(path string) (*System, []*Violation) {
		s := NewSystem(DefaultConfig(ast.Python))
		if err := s.LoadKnowledge(path); err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		if errs := s.ProcessFiles(files); len(errs) != 0 {
			t.Fatalf("process errors: %v", errs)
		}
		return s, s.Scan()
	}
	sysJ, vJ := load(jsonPath)
	sysB, vB := load(binPath)
	sys1, v1 := load(v1Path)

	if len(sysJ.Patterns) != len(sysB.Patterns) || len(sysJ.Patterns) != len(sys1.Patterns) {
		t.Fatalf("patterns: json %d vs v2 %d vs v1 %d",
			len(sysJ.Patterns), len(sysB.Patterns), len(sys1.Patterns))
	}
	for i := range sysJ.Patterns {
		if sysJ.Patterns[i].Key() != sysB.Patterns[i].Key() ||
			sysJ.Patterns[i].Key() != sys1.Patterns[i].Key() {
			t.Fatalf("pattern %d keys diverged", i)
		}
	}
	if sysJ.Pairs.Len() != sysB.Pairs.Len() || sysJ.Pairs.Len() != sys1.Pairs.Len() {
		t.Fatalf("pairs: json %d vs v2 %d vs v1 %d",
			sysJ.Pairs.Len(), sysB.Pairs.Len(), sys1.Pairs.Len())
	}
	if len(vJ) != len(vB) || len(vJ) != len(v1) || len(vJ) != len(violations) {
		t.Fatalf("violations: original %d, json %d, v2 %d, v1 %d",
			len(violations), len(vJ), len(vB), len(v1))
	}
	for i := range vJ {
		a, b, c1 := vJ[i], vB[i], v1[i]
		if a.Stmt.Path != b.Stmt.Path || a.Stmt.Line != b.Stmt.Line ||
			a.Detail.Original != b.Detail.Original || a.Detail.Suggested != b.Detail.Suggested {
			t.Fatalf("violation %d diverged between json and v2: %v vs %v", i, a.Detail, b.Detail)
		}
		if a.Stmt.Path != c1.Stmt.Path || a.Stmt.Line != c1.Stmt.Line ||
			a.Detail.Original != c1.Detail.Original || a.Detail.Suggested != c1.Detail.Suggested {
			t.Fatalf("violation %d diverged between json and v1: %v vs %v", i, a.Detail, c1.Detail)
		}
		if sysJ.Classify(vJ[i]) != sysB.Classify(vB[i]) || sysJ.Classify(vJ[i]) != sys1.Classify(v1[i]) {
			t.Fatalf("classification diverged at violation %d", i)
		}
	}
}

// TestImportKnowledgeAllOrNothing: a failed import must leave the system
// exactly as it was — same patterns, same index, same scan output — so a
// hot-reload path can fall back to the old bundle safely.
func TestImportKnowledgeAllOrNothing(t *testing.T) {
	sys, c, _ := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSystem(DefaultConfig(ast.Python))
	if err := fresh.ImportKnowledge(k); err != nil {
		t.Fatal(err)
	}
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	before := fresh.ScanFiles(files)

	bad := []*Knowledge{
		{Lang: "cobol", Pairs: confusion.NewPairSet()},
		{Lang: "Python", Pairs: confusion.NewPairSet(), Patterns: append([]*pattern.Pattern{nil}, k.Patterns...)},
		{Lang: "Python", Pairs: confusion.NewPairSet(), Patterns: []*pattern.Pattern{{Type: pattern.Consistency}}},
	}
	for i, b := range bad {
		err := fresh.ImportKnowledge(b)
		if err == nil {
			t.Fatalf("bad knowledge %d accepted", i)
		}
		if !strings.Contains(err.Error(), "unchanged") {
			t.Fatalf("bad knowledge %d: error %q does not state the system is unchanged", i, err)
		}
	}

	after := fresh.ScanFiles(files)
	if len(after.Violations) != len(before.Violations) {
		t.Fatalf("failed imports changed scan output: %d -> %d violations",
			len(before.Violations), len(after.Violations))
	}
	for i := range before.Violations {
		a, b := before.Violations[i], after.Violations[i]
		if a.Stmt.Path != b.Stmt.Path || a.Stmt.Line != b.Stmt.Line ||
			a.Detail.Original != b.Detail.Original || a.Detail.Suggested != b.Detail.Suggested {
			t.Fatalf("violation %d diverged after failed imports", i)
		}
	}

	// A successful import drops any stale scan cache along with the old
	// knowledge; the cache's lifetime is exactly one (config, knowledge)
	// pair.
	fresh.SetFileCache(nopCache{})
	if err := fresh.ImportKnowledge(k); err != nil {
		t.Fatal(err)
	}
	if fresh.cache != nil {
		t.Fatal("stale file cache survived a knowledge import")
	}
}

// nopCache is the minimal FileCache for cache-rotation assertions.
type nopCache struct{}

func (nopCache) Get(string) (*CachedFile, bool) { return nil, false }
func (nopCache) Add(string, *CachedFile)        {}

// TestImportKnowledgeAcceptsGo covers the bugfix: knowledge with
// lang "Go" (as ExportKnowledge writes for a Go system) imports instead
// of being rejected.
func TestImportKnowledgeAcceptsGo(t *testing.T) {
	for _, lang := range []string{"Go", "go", "golang", "Python", "Java"} {
		sys := NewSystem(DefaultConfig(ast.Python))
		k := &Knowledge{Lang: lang, Pairs: confusion.NewPairSet()}
		if err := sys.ImportKnowledge(k); err != nil {
			t.Fatalf("lang %q rejected: %v", lang, err)
		}
	}
	sys := NewSystem(DefaultConfig(ast.Python))
	err := sys.ImportKnowledge(&Knowledge{Lang: "cobol", Pairs: confusion.NewPairSet()})
	if err == nil {
		t.Fatal("unknown language accepted")
	}
	for _, want := range []string{"python", "java", "go"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid language %q", err, want)
		}
	}
}

// TestSaveKnowledgeAtomic verifies that saving over an existing artifact
// replaces it completely (rename semantics) and leaves no temp litter.
func TestSaveKnowledgeAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "knowledge.bin")
	if err := os.WriteFile(path, []byte("old artifact bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DefaultConfig(ast.Python))
	sys.Pairs = confusion.NewPairSet()
	if err := sys.SaveKnowledge(path); err != nil {
		t.Fatal(err)
	}
	if _, err := knowledge.Load(path); err != nil {
		t.Fatalf("replaced artifact unreadable: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("expected only the artifact in %s, found %d entries", dir, len(entries))
	}
}

// TestProcessFilesContainsPanics: a pathological file (nil AST stands in
// for a front-end panic; processFileSafe treats both the same way) is
// reported as an error while the rest of the corpus processes normally.
func TestProcessFilesContainsPanics(t *testing.T) {
	good, err := ParseSource(ast.Python, "def f(a):\n    b = a.parse()\n    return b\n")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DefaultConfig(ast.Python))
	errs := sys.ProcessFiles([]*InputFile{
		{Repo: "r", Path: "bad.py", Source: "x", Root: nil},
		{Repo: "r", Path: "good.py", Source: "def f(a):\n    b = a.parse()\n    return b\n", Root: good},
	})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "bad.py") {
		t.Fatalf("expected one error naming bad.py, got %v", errs)
	}
	if len(sys.Stmts) == 0 {
		t.Fatal("good file was not processed")
	}
}

// TestParseSourceNeverPanics feeds hostile snippets to every front end;
// all must return (possibly with an error), never panic.
func TestParseSourceNeverPanics(t *testing.T) {
	snippets := []string{
		"", "\x00\x01\x02", "def f(:", "class {", "))))(((",
		strings.Repeat("(", 2000), "if x\n  y", "def f(a,\n", "\xff\xfe",
		"public class A { void f() { int x = ; } }",
	}
	for _, lang := range []ast.Language{ast.Python, ast.Java, ast.Go} {
		for _, src := range snippets {
			ParseSource(lang, src) // must not panic
		}
	}
	if _, err := ParseSource(ast.Language(99), "x"); err == nil {
		t.Fatal("unknown language accepted")
	}
}

// TestScanFilesMatchesScan: the detached read-only scan path reports the
// same violations as the stateful ProcessFiles+Scan pipeline.
func TestScanFilesMatchesScan(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	deduped := Dedup(violations)

	// A fresh system with the same knowledge scans the same files
	// detachedly.
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSystem(DefaultConfig(ast.Python))
	if err := fresh.ImportKnowledge(k); err != nil {
		t.Fatal(err)
	}
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	res := fresh.ScanFiles(files)
	if len(res.Errors) != 0 {
		t.Fatalf("detached scan errors: %v", res.Errors)
	}
	if len(res.Violations) != len(deduped) {
		t.Fatalf("detached scan found %d violations, stateful found %d",
			len(res.Violations), len(deduped))
	}
	for i := range deduped {
		a, b := deduped[i], res.Violations[i]
		if a.Stmt.Path != b.Stmt.Path || a.Stmt.Line != b.Stmt.Line ||
			a.Detail.Original != b.Detail.Original || a.Detail.Suggested != b.Detail.Suggested {
			t.Fatalf("violation %d diverged: %v vs %v", i, a.Detail, b.Detail)
		}
	}
	// The detached path must not leak state into the system.
	if len(fresh.Stmts) != 0 {
		t.Fatalf("ScanFiles appended %d statements to the system", len(fresh.Stmts))
	}
}

// TestScanFilesTimings: the detached scan records per-stage wall times
// (front-end processing vs pattern matching) for the serving layer's
// latency histograms.
func TestScanFilesTimings(t *testing.T) {
	sys, c, _ := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	res := sys.ScanFiles(files)
	if res.Timings.Process <= 0 {
		t.Errorf("Process stage not timed: %v", res.Timings)
	}
	if res.Timings.Match <= 0 {
		t.Errorf("Match stage not timed: %v", res.Timings)
	}

	// Without knowledge the match stage never runs: its timing stays
	// zero while the front end is still recorded.
	empty := NewSystem(DefaultConfig(ast.Python))
	res2 := empty.ScanFiles(files[:1])
	if res2.Timings.Process <= 0 {
		t.Errorf("Process stage not timed without knowledge: %v", res2.Timings)
	}
	if res2.Timings.Match != 0 {
		t.Errorf("Match stage timed with no pattern index: %v", res2.Timings)
	}
}
