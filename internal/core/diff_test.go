package core

import (
	"errors"
	"regexp"
	"testing"

	"namer/internal/ast"
)

// diffReports renders introduced violations (with classification against
// the diff's after-side stats) into comparable strings.
func diffReports(sys *System, res *DiffResult) []string {
	out := make([]string, 0, len(res.Introduced))
	for _, v := range res.Introduced {
		s := v.Report()
		if sys.ClassifyIn(res.Stats, v) {
			s += " [classified]"
		}
		out = append(out, s)
	}
	return out
}

// TestDiffFilesIdentity: an unchanged file introduces nothing, however
// many pre-existing violations it has.
func TestDiffFilesIdentity(t *testing.T) {
	sys, files := freshScanSystem(t)
	base := sys.ScanFiles(files)
	if len(base.Violations) == 0 {
		t.Fatal("corpus has no violations; identity test would be vacuous")
	}
	pairs := make([]DiffFile, 0, len(files))
	for _, f := range files {
		pairs = append(pairs, DiffFile{Repo: f.Repo, Path: f.Path, Before: f.Source, After: f.Source})
	}
	res := sys.DiffFiles(pairs)
	if len(res.Errors) != 0 {
		t.Fatalf("diff errors: %v", res.Errors)
	}
	if res.Changed != 0 {
		t.Fatalf("identity diff reports %d changed statements", res.Changed)
	}
	if len(res.Introduced) != 0 {
		t.Fatalf("identity diff introduced %d violations: %v", len(res.Introduced), res.Introduced[0].Report())
	}
	if len(res.Renames) != 0 {
		t.Fatalf("identity diff found %d renames", len(res.Renames))
	}
	if res.FilesParsed != len(files) || res.Statements != base.Statements {
		t.Fatalf("identity diff parsed=%d statements=%d, want %d/%d",
			res.FilesParsed, res.Statements, len(files), base.Statements)
	}
}

// TestDiffFilesFromEmpty: diffing from an empty file is "everything is
// new" — the introduced set must equal a full scan of the after side,
// classification included.
func TestDiffFilesFromEmpty(t *testing.T) {
	sys, files := freshScanSystem(t)
	// Pick a file that a full scan flags.
	base := sys.ScanFiles(files)
	if len(base.Violations) == 0 {
		t.Fatal("corpus has no violations")
	}
	v0 := base.Violations[0]
	var target *InputFile
	for _, f := range files {
		if f.Repo == v0.Stmt.Repo && f.Path == v0.Stmt.Path {
			target = f
		}
	}

	scan := sys.ScanFiles([]*InputFile{target})
	res := sys.DiffFiles([]DiffFile{{Repo: target.Repo, Path: target.Path, Before: "", After: target.Source}})
	if len(res.Errors) != 0 {
		t.Fatalf("diff errors: %v", res.Errors)
	}
	if res.Changed != res.Statements || res.Changed == 0 {
		t.Fatalf("from-empty diff: %d/%d statements changed, want all", res.Changed, res.Statements)
	}
	want := scanReports(sys, scan)
	got := diffReports(sys, res)
	if len(got) != len(want) {
		t.Fatalf("from-empty diff introduced %d violations, full scan found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("from-empty diff diverged at %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// TestDiffFilesLineShiftIntroducesNothing: prepending a comment moves
// every statement to a new line but changes no statement structure, so
// nothing is "introduced" — the multiset comparison is by fingerprint,
// not position.
func TestDiffFilesLineShiftIntroducesNothing(t *testing.T) {
	sys, files := freshScanSystem(t)
	base := sys.ScanFiles(files)
	if len(base.Violations) == 0 {
		t.Fatal("corpus has no violations")
	}
	v0 := base.Violations[0]
	var target *InputFile
	for _, f := range files {
		if f.Repo == v0.Stmt.Repo && f.Path == v0.Stmt.Path {
			target = f
		}
	}
	res := sys.DiffFiles([]DiffFile{{
		Repo: target.Repo, Path: target.Path,
		Before: target.Source,
		After:  "# touched in review\n" + target.Source,
	}})
	if len(res.Errors) != 0 {
		t.Fatalf("diff errors: %v", res.Errors)
	}
	if res.Changed != 0 || len(res.Introduced) != 0 {
		t.Fatalf("comment shift: %d changed, %d introduced; want 0/0",
			res.Changed, len(res.Introduced))
	}
}

// TestDiffFilesRoundTrip is the acceptance round trip: applying a
// suggested fix introduces nothing, and reverting it (the "PR that
// introduces a naming bug") re-introduces exactly that violation, with
// the rename surfaced by the tree alignment.
func TestDiffFilesRoundTrip(t *testing.T) {
	sys, files := freshScanSystem(t)
	base := sys.ScanFiles(files)

	bySrc := map[string]*InputFile{}
	for _, f := range files {
		bySrc[f.Repo+"\x00"+f.Path] = f
	}
	tried, ok := 0, false
	for _, v := range base.Violations {
		from, to, fixable := v.SuggestFixedName()
		if !fixable || from == to {
			continue
		}
		f := bySrc[v.Stmt.Repo+"\x00"+v.Stmt.Path]
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(from) + `\b`)
		fixed := re.ReplaceAllString(f.Source, to)
		if fixed == f.Source {
			continue
		}
		if _, err := ParseSource(ast.Python, fixed); err != nil {
			continue
		}
		// The rename must actually fix it: the fixed file, scanned alone,
		// no longer reports this rewrite.
		still := false
		fscan := sys.ScanFiles([]*InputFile{{Repo: f.Repo, Path: f.Path, Source: fixed}})
		for _, fv := range fscan.Violations {
			if fv.Detail.Original == v.Detail.Original && fv.Detail.Suggested == v.Detail.Suggested {
				still = true
			}
		}
		if still {
			continue
		}
		tried++
		if tried > 25 {
			break
		}

		fwd := sys.DiffFiles([]DiffFile{{Repo: f.Repo, Path: f.Path, Before: f.Source, After: fixed}})
		for _, iv := range fwd.Introduced {
			if iv.Detail.Original == v.Detail.Original && iv.Detail.Suggested == v.Detail.Suggested {
				t.Fatalf("applying the fix %s -> %s still introduces %q", from, to, iv.Report())
			}
		}

		rev := sys.DiffFiles([]DiffFile{{Repo: f.Repo, Path: f.Path, Before: fixed, After: f.Source}})
		found := false
		for _, iv := range rev.Introduced {
			if iv.Detail.Original == v.Detail.Original && iv.Detail.Suggested == v.Detail.Suggested {
				found = true
			}
		}
		if !found {
			continue // the rename may have shifted other statements' context
		}
		renamed := false
		for _, rn := range rev.Renames {
			if rn.Before == to && rn.After == from {
				renamed = true
			}
		}
		if !renamed {
			t.Fatalf("reverting %s -> %s: violation re-introduced but rename not reported (%v)",
				from, to, rev.Renames)
		}
		ok = true
		break
	}
	if !ok {
		t.Fatalf("no violation survived the fix/revert round trip (%d candidates tried)", tried)
	}
}

// TestDiffFilesCarriedOverNotReintroduced: a statement that is edited
// but keeps its pre-existing violation (same original/suggested rewrite)
// is carried over, not re-reported.
func TestDiffFilesCarriedOverNotReintroduced(t *testing.T) {
	sys, files := freshScanSystem(t)
	base := sys.ScanFiles(files)

	bySrc := map[string]*InputFile{}
	for _, f := range files {
		bySrc[f.Repo+"\x00"+f.Path] = f
	}
	// Rename an *unrelated* identifier so the violating statement's
	// fingerprint changes while its violation stays: the statement is
	// "changed", the violation is carried.
	done := false
	for _, v := range base.Violations {
		f := bySrc[v.Stmt.Repo+"\x00"+v.Stmt.Path]
		// Pick another identifier on the violating statement's line.
		re := regexp.MustCompile(`\b([a-z][a-z_0-9]{3,})\b`)
		var other string
		for _, m := range re.FindAllString(v.Stmt.SourceLine, -1) {
			if m != v.Detail.Original && m != v.Detail.Suggested {
				other = m
				break
			}
		}
		if other == "" {
			continue
		}
		after := regexp.MustCompile(`\b`+regexp.QuoteMeta(other)+`\b`).
			ReplaceAllString(f.Source, other+"_v2")
		if _, err := ParseSource(ast.Python, after); err != nil {
			continue
		}
		res := sys.DiffFiles([]DiffFile{{Repo: f.Repo, Path: f.Path, Before: f.Source, After: after}})
		if len(res.Errors) != 0 {
			continue
		}
		if res.Changed == 0 {
			continue // the identifier did not appear in any statement path
		}
		for _, iv := range res.Introduced {
			if iv.Detail.Original == v.Detail.Original && iv.Detail.Suggested == v.Detail.Suggested &&
				iv.Stmt.Line == v.Stmt.Line {
				t.Fatalf("edit to unrelated name %s re-introduced carried violation %q", other, iv.Report())
			}
		}
		done = true
		break
	}
	if !done {
		t.Skip("no violating statement with an unrelated identifier to rename")
	}
}

// TestDiffFilesNoKnowledge: diffing before any knowledge is loaded is an
// explicit error, not a silent empty result.
func TestDiffFilesNoKnowledge(t *testing.T) {
	empty := NewSystem(DefaultConfig(ast.Python))
	res := empty.DiffFiles([]DiffFile{{Repo: "r", Path: "p.py", Before: "x = 1\n", After: "y = 2\n"}})
	if len(res.Errors) != 1 || !errors.Is(res.Errors[0], ErrNoKnowledge) {
		t.Fatalf("errors = %v, want ErrNoKnowledge", res.Errors)
	}
}

// TestDiffFilesCached: both sides of every pair come from the cache on a
// repeat diff, and the result is unchanged.
func TestDiffFilesCached(t *testing.T) {
	sys, files := freshScanSystem(t)
	cache := newMapCache()
	sys.SetFileCache(cache)
	defer sys.SetFileCache(nil)

	pairs := []DiffFile{
		{Repo: files[0].Repo, Path: files[0].Path, Before: "", After: files[0].Source},
		{Repo: files[1].Repo, Path: files[1].Path, Before: files[1].Source, After: files[1].Source},
	}
	cold := sys.DiffFiles(pairs)
	if cold.CacheHits != 0 || cold.CacheMisses != 4 {
		t.Fatalf("cold diff hits/misses = %d/%d, want 0/4", cold.CacheHits, cold.CacheMisses)
	}
	warm := sys.DiffFiles(pairs)
	if warm.CacheMisses != 0 || warm.CacheHits != 4 {
		t.Fatalf("warm diff hits/misses = %d/%d, want 4/0", warm.CacheHits, warm.CacheMisses)
	}
	cw, ww := diffReports(sys, cold), diffReports(sys, warm)
	if len(cw) != len(ww) {
		t.Fatalf("cached diff diverged: %d vs %d introduced", len(cw), len(ww))
	}
	for i := range cw {
		if cw[i] != ww[i] {
			t.Fatalf("cached diff diverged at %d: %q vs %q", i, cw[i], ww[i])
		}
	}
}
