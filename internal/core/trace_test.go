package core

import (
	"context"
	"testing"

	"namer/internal/ast"
	"namer/internal/corpus"
	"namer/internal/obs"
)

// traceIndex groups a finished trace's spans for structural assertions.
func traceIndex(tr *obs.Trace) (byName map[string][]obs.SpanInfo, nameOf map[int]string) {
	byName = map[string][]obs.SpanInfo{}
	nameOf = map[int]string{-1: ""}
	for _, s := range tr.Spans() {
		byName[s.Name] = append(byName[s.Name], s)
		nameOf[s.ID] = s.Name
	}
	return byName, nameOf
}

// TestPipelineSpanStructure traces a full mine-and-scan run and checks
// the span tree mirrors the pipeline: process_files over per-file
// spans, mine_patterns over per-type mine trees with the four FP stages
// (pass-1 count, tree build, FP-growth, prune), scan over per-shard
// spans — each stage parented where the pipeline nests it.
func TestPipelineSpanStructure(t *testing.T) {
	c := corpus.Generate(smallCorpusConfig(ast.Python))
	sys := NewSystem(smallSystemConfig(ast.Python))
	sys.MinePairs(c.Commits)
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}

	ctx, tr := obs.NewTrace(context.Background(), "test-run", "")
	tr.SetMaxSpans(1 << 18)
	sys.ProcessFilesCtx(ctx, files)
	sys.MinePatternsCtx(ctx)
	violations := sys.ScanCtx(ctx)
	tr.Finish()
	if len(sys.Patterns) == 0 || len(violations) == 0 {
		t.Fatalf("pipeline degenerate: %d patterns, %d violations", len(sys.Patterns), len(violations))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d spans", tr.Dropped())
	}

	byName, nameOf := traceIndex(tr)
	mustParent := func(child, parent string) {
		t.Helper()
		spans := byName[child]
		if len(spans) == 0 {
			t.Fatalf("no %q spans recorded", child)
		}
		for _, s := range spans {
			if nameOf[s.Parent] != parent {
				t.Fatalf("%q span parented under %q, want %q", child, nameOf[s.Parent], parent)
			}
		}
	}
	mustParent("process_files", "test-run")
	mustParent("mine_patterns", "test-run")
	mustParent("scan", "test-run")
	mustParent("mine", "mine_patterns")
	for _, stage := range []string{"pass1_count", "build_tree", "fp_growth", "prune_uncommon"} {
		mustParent(stage, "mine")
		// Every per-type mine tree runs every stage exactly once.
		if got, want := len(byName[stage]), len(byName["mine"]); got != want {
			t.Errorf("%d %q spans for %d mine trees", got, stage, want)
		}
	}
	mustParent("shard", "scan")
	if got, want := len(byName["file"]), len(files); got != want {
		t.Errorf("%d file spans for %d input files", got, want)
	}
	mustParent("file", "process_files")
}

// TestScanFilesTimingsDeriveFromSpans pins the StageTimings contract:
// with tracing on, the reported Process/Match durations are the span
// durations; with tracing off, the stopwatch fallback still fills them.
func TestScanFilesTimingsDeriveFromSpans(t *testing.T) {
	sys, c, _ := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	var files []*InputFile
	for _, f := range c.Repos[0].Files {
		files = append(files, &InputFile{Repo: c.Repos[0].Name, Path: f.Path, Source: f.Source, Root: f.Root})
	}

	ctx, tr := obs.NewTrace(context.Background(), "scan-files", "")
	res := sys.ScanFilesCtx(ctx, files)
	tr.Finish()
	byName, _ := traceIndex(tr)
	if n := len(byName["process"]); n != 1 {
		t.Fatalf("got %d process spans, want 1", n)
	}
	if n := len(byName["match"]); n != 1 {
		t.Fatalf("got %d match spans, want 1", n)
	}
	if got, want := res.Timings.Process, byName["process"][0].Duration; got != want {
		t.Errorf("Timings.Process = %v, span = %v", got, want)
	}
	if got, want := res.Timings.Match, byName["match"][0].Duration; got != want {
		t.Errorf("Timings.Match = %v, span = %v", got, want)
	}

	// Untraced: the same call must still produce non-zero timings.
	res2 := sys.ScanFilesCtx(context.Background(), files)
	if res2.Timings.Process <= 0 || res2.Timings.Match < 0 {
		t.Errorf("untraced timings degenerate: %+v", res2.Timings)
	}
}
