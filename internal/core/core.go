// Package core assembles the full Namer system of the paper: per-file
// parsing and static analysis (§4.1), the AST+ transformation and name
// path extraction (§3.1), name pattern mining over the corpus (§3.3),
// violation detection (§3.2), feature extraction (§4.2, Table 1), and the
// defect classifier that prunes false positives.
//
// The two ablations of Tables 2 and 5 are configuration switches:
// Config.UseAnalysis ("w/o A" when false) and whether a classifier is
// trained ("w/o C" when not).
package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"namer/internal/ast"
	"namer/internal/astplus"
	"namer/internal/confusion"
	"namer/internal/features"
	"namer/internal/mining"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/obs"
	"namer/internal/parallel"
	"namer/internal/pattern"
	"namer/internal/pointsto"
)

// Config configures a Namer instance.
type Config struct {
	Lang ast.Language
	// UseAnalysis enables the points-to/dataflow origin decoration; false
	// is the "w/o A" ablation.
	UseAnalysis bool
	// Mining hyperparameters (§5.1).
	Mining mining.Config
	// PointsTo options (k=5, fallback at 8 contexts/method).
	PointsTo pointsto.Options
	// MinPairCount prunes confusing word pairs seen fewer times.
	MinPairCount int
	// Seed drives classifier training.
	Seed int64
	// Parallelism is the worker count for the corpus-scale stages (file
	// processing, mining, and the violation scan): 0 uses every CPU, 1
	// forces the serial reference path. Outputs are byte-identical at any
	// setting. Mining.Parallelism, when zero, inherits this value.
	Parallelism int
	// Progress, when non-nil, is called after each file finishes the
	// front end with (files done, files total, cumulative statements).
	// It runs on worker goroutines and must be safe for concurrent use
	// (obs.Progress.Update is); it must not mutate the system.
	Progress func(done, total, statements int)
}

// DefaultConfig mirrors §5.1 with corpus-scale mining thresholds.
func DefaultConfig(lang ast.Language) Config {
	m := mining.DefaultConfig()
	m.MinPatternCount = 40
	m.MaxCombinationsPerNode = 64
	return Config{
		Lang:         lang,
		UseAnalysis:  true,
		Mining:       m,
		PointsTo:     pointsto.DefaultOptions(),
		MinPairCount: 3,
		Seed:         1,
	}
}

// InputFile is one corpus file handed to the system.
type InputFile struct {
	Repo   string
	Path   string
	Source string
	Root   *ast.Node
}

// ProcStmt is one processed statement: its indexed name paths plus the
// provenance needed for features and reports.
type ProcStmt struct {
	Repo        string
	Path        string
	Line        int
	Fingerprint string
	PS          *pattern.Statement
	SourceLine  string
}

// Violation is one detected name pattern violation, before classification.
type Violation struct {
	Stmt    *ProcStmt
	Pattern *pattern.Pattern
	Detail  pattern.Violation
}

// System is a Namer instance.
type System struct {
	cfg      Config
	Pairs    *confusion.PairSet
	Patterns []*pattern.Pattern
	Stmts    []*ProcStmt
	StatsIx  *features.Index
	// MiningStats records the FP-tree shape of each MinePatterns pass
	// (one entry per pattern type), for the perf-tracking benchmarks and
	// the cmd binaries' progress output.
	MiningStats []MiningStat

	classifier *ml.Pipeline
	index      *mining.Index
	cache      FileCache
}

// MiningStat is the FP-tree shape of one mining pass.
type MiningStat struct {
	Type         pattern.Type
	TreeNodes    int
	Transactions int
}

// NewSystem returns an empty system.
func NewSystem(cfg Config) *System {
	return &System{cfg: cfg, StatsIx: features.NewIndex()}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// MinePairs extracts and prunes confusing word pairs from commit history.
func (s *System) MinePairs(commits []confusion.Commit) {
	ps := confusion.MinePairs(commits)
	if s.cfg.MinPairCount > 1 {
		ps = ps.Prune(s.cfg.MinPairCount)
	}
	s.Pairs = ps
}

// ProcessFiles runs the per-file front end (analysis, transformation, name
// path extraction) on a fixed pool of Parallelism workers (not one
// goroutine per file, which bursts unboundedly on large corpora), then
// appends results in deterministic input order and records statement
// statistics for features 2-3.
//
// A panic while analyzing one file (the parsers re-panic on internal
// errors, and the points-to engine panics on rule-set bugs) is contained
// to that file and returned as an error, so one pathological input cannot
// kill a corpus run: the remaining files are processed normally.
func (s *System) ProcessFiles(files []*InputFile) []error {
	return s.ProcessFilesCtx(context.Background(), files)
}

// ProcessFilesCtx is ProcessFiles under a tracing context: the whole
// stage is one "process_files" span with a child span per file (path,
// statement count), recorded from whichever worker processed it, and
// the Config.Progress callback fires as files complete.
func (s *System) ProcessFilesCtx(ctx context.Context, files []*InputFile) []error {
	ctx, sp := obs.StartSpan(ctx, "process_files")
	sp.SetAttrInt("files", len(files))
	defer sp.End()
	results := make([][]*ProcStmt, len(files))
	fileErrs := make([]error, len(files))
	var done, stmtCount atomic.Int64
	parallel.ForEach(len(files), parallel.Degree(s.cfg.Parallelism), func(i int) {
		_, fsp := obs.StartSpan(ctx, "file")
		results[i], fileErrs[i] = s.processFileSafe(files[i])
		fsp.SetAttr("path", files[i].Path)
		fsp.SetAttrInt("statements", len(results[i]))
		fsp.End()
		if s.cfg.Progress != nil {
			s.cfg.Progress(int(done.Add(1)), len(files),
				int(stmtCount.Add(int64(len(results[i])))))
		}
	})
	var errs []error
	for i, stmts := range results {
		if fileErrs[i] != nil {
			errs = append(errs, fileErrs[i])
			continue
		}
		for _, ps := range stmts {
			s.Stmts = append(s.Stmts, ps)
			s.StatsIx.AddStatement(ps.Repo, ps.Path, ps.Fingerprint)
		}
	}
	return errs
}

// processFileSafe runs ProcessFile with panics converted to per-file
// errors.
func (s *System) processFileSafe(f *InputFile) (out []*ProcStmt, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("%s/%s: analysis panic: %v", f.Repo, f.Path, r)
		}
	}()
	if f.Root == nil {
		return nil, fmt.Errorf("%s/%s: no parsed AST", f.Repo, f.Path)
	}
	return s.ProcessFile(f), nil
}

// ProcessFile runs the front half of the pipeline on one file.
func (s *System) ProcessFile(f *InputFile) []*ProcStmt {
	var origin astplus.OriginFunc
	if s.cfg.UseAnalysis {
		res := pointsto.Analyze(f.Root, s.cfg.Lang, s.cfg.PointsTo)
		origin = res.OriginOf
	}
	lines := strings.Split(f.Source, "\n")
	var out []*ProcStmt
	for _, stmt := range ast.Statements(f.Root) {
		plus := astplus.Transform(stmt, origin)
		paths := namepath.Extract(plus, s.cfg.Mining.MaxPathsPerStatement)
		if len(paths) == 0 {
			continue
		}
		srcLine := ""
		if stmt.Line >= 1 && stmt.Line <= len(lines) {
			srcLine = strings.TrimSpace(lines[stmt.Line-1])
		}
		out = append(out, &ProcStmt{
			Repo:        f.Repo,
			Path:        f.Path,
			Line:        stmt.Line,
			Fingerprint: stmt.Root.Fingerprint(),
			PS:          pattern.NewStatement(paths),
			SourceLine:  srcLine,
		})
	}
	return out
}

// MinePatterns mines both pattern types over the processed statements.
func (s *System) MinePatterns() {
	s.MinePatternsCtx(context.Background())
}

// MinePatternsCtx is MinePatterns under a tracing context: one
// "mine_patterns" span wrapping a per-type "mine" span tree whose
// children break out the pass-1 count, FP-tree build, FP-growth, and
// prune stages (see mining.MinePatternsCtx). A caller-set
// Mining.OnTreeBuilt hook still fires after the stats are recorded.
func (s *System) MinePatternsCtx(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "mine_patterns")
	defer sp.End()
	stmts := make([]*pattern.Statement, len(s.Stmts))
	for i, ps := range s.Stmts {
		stmts[i] = ps.PS
	}
	mcfg := s.cfg.Mining
	if mcfg.Parallelism == 0 {
		mcfg.Parallelism = s.cfg.Parallelism
	}
	s.MiningStats = s.MiningStats[:0]
	chained := mcfg.OnTreeBuilt
	record := func(typ pattern.Type) func(nodes, transactions int) {
		return func(nodes, transactions int) {
			s.MiningStats = append(s.MiningStats,
				MiningStat{Type: typ, TreeNodes: nodes, Transactions: transactions})
			if chained != nil {
				chained(nodes, transactions)
			}
		}
	}
	mcfg.OnTreeBuilt = record(pattern.Consistency)
	cons := mining.MinePatternsCtx(ctx, stmts, pattern.Consistency, nil, mcfg)
	mcfg.OnTreeBuilt = record(pattern.ConfusingWord)
	conf := mining.MinePatternsCtx(ctx, stmts, pattern.ConfusingWord, s.Pairs, mcfg)
	s.Patterns = append(cons, conf...)
	s.index = mining.NewIndex(s.Patterns)
	sp.SetAttrInt("patterns", len(s.Patterns))
}

// Scan matches every statement against the mined patterns, populating the
// statistics index (features 4-12) and returning all violations in
// deterministic order.
//
// The statement list is split into contiguous shards, one worker per
// shard; each shard accumulates violations and pattern observations into
// private storage (no locks on the match loop), and the per-shard results
// are folded into the output and s.StatsIx in shard order. Concatenating
// in-order shards reproduces the serial violation order exactly, and the
// statistics merge is additive, so Scan is deterministic at any
// Parallelism.
func (s *System) Scan() []*Violation {
	return s.ScanCtx(context.Background())
}

// ScanCtx is Scan under a tracing context: one "scan" span with a child
// span per shard. Spans are per-shard, never per-statement, so the
// match loop itself carries no tracing overhead.
func (s *System) ScanCtx(ctx context.Context) []*Violation {
	ctx, sp := obs.StartSpan(ctx, "scan")
	defer sp.End()
	type shardOut struct {
		violations []*Violation
		stats      *features.Index
	}
	shards := parallel.Shards(len(s.Stmts), parallel.Degree(s.cfg.Parallelism))
	outs := make([]shardOut, len(shards))
	parallel.ForEach(len(shards), len(shards), func(shard int) {
		_, ssp := obs.StartSpan(ctx, "shard")
		ssp.SetAttrInt("statements", shards[shard].Hi-shards[shard].Lo)
		defer ssp.End()
		stats := features.NewIndex()
		var vs []*Violation
		for _, ps := range s.Stmts[shards[shard].Lo:shards[shard].Hi] {
			for _, p := range s.index.Candidates(ps.PS) {
				if !ps.PS.Matches(p) {
					continue
				}
				satisfied := ps.PS.Satisfied(p)
				stats.AddObservation(ps.Repo, ps.Path, p, satisfied)
				if satisfied {
					continue
				}
				detail, ok := ps.PS.Explain(p)
				if !ok {
					continue
				}
				vs = append(vs, &Violation{Stmt: ps, Pattern: p, Detail: detail})
			}
		}
		outs[shard] = shardOut{violations: vs, stats: stats}
	})
	var out []*Violation
	for _, o := range outs {
		out = append(out, o.violations...)
		s.StatsIx.Merge(o.stats)
	}
	return out
}

// Dedup collapses violations that flag the same statement with the same
// original/suggested subtokens (near-identical patterns produce duplicate
// reports); the first occurrence — the lowest pattern key — is kept.
// Statement identity is by value (location plus fingerprint), not by
// pointer, so the cached scan path — where one statement object can back
// several occurrences of the same file — deduplicates exactly like the
// uncached one.
func Dedup(vs []*Violation) []*Violation {
	type key struct {
		repo, path  string
		line        int
		fingerprint string
		original    string
		suggested   string
	}
	seen := map[key]bool{}
	out := vs[:0:0]
	for _, v := range vs {
		k := key{v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Stmt.Fingerprint,
			v.Detail.Original, v.Detail.Suggested}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}

// FeatureVector computes the 17 features of Table 1 for a violation,
// against the system's accumulated statistics.
func (s *System) FeatureVector(v *Violation) []float64 {
	return s.FeatureVectorIn(s.StatsIx, v)
}

// FeatureVectorIn computes the feature vector against an explicit
// statistics index. Detached scans (the serving path) keep per-request
// statistics so concurrent requests never write shared state.
func (s *System) FeatureVectorIn(ix *features.Index, v *Violation) []float64 {
	return ix.Vector(features.Violation{
		Repo:        v.Stmt.Repo,
		File:        v.Stmt.Path,
		Fingerprint: v.Stmt.Fingerprint,
		NumPaths:    len(v.Stmt.PS.Paths),
		Pattern:     v.Pattern,
		Detail:      v.Detail,
	}, s.Pairs)
}

// TrainClassifier trains the defect classifier (linear SVM over
// standardized, PCA-transformed features, per §5.1) from labeled
// violations. Labels are 1 for true naming issues, 0 for false positives.
func (s *System) TrainClassifier(vs []*Violation, labels []int) {
	X := make([][]float64, len(vs))
	for i, v := range vs {
		X[i] = s.FeatureVector(v)
	}
	s.classifier = s.newPipeline("svm")
	s.classifier.Fit(X, labels)
}

// newPipeline builds the §5.1 preprocessing + model stack.
func (s *System) newPipeline(model string) *ml.Pipeline {
	seed := s.cfg.Seed
	return &ml.Pipeline{
		UsePCA: true,
		PCAK:   0,
		NewModel: func() ml.Classifier {
			switch model {
			case "logreg":
				return &ml.LogisticRegression{Epochs: 150, Seed: seed}
			case "lda":
				return &ml.LDA{}
			default:
				return &ml.LinearSVM{Epochs: 150, Seed: seed}
			}
		},
	}
}

// CrossValidate runs the §5.1 model-selection protocol (random 80/20
// splits, repeated) over labeled violations for the given model name
// ("svm", "logreg", "lda"), returning averaged metrics.
func (s *System) CrossValidate(vs []*Violation, labels []int, model string, repeats int) ml.Metrics {
	X := make([][]float64, len(vs))
	for i, v := range vs {
		X[i] = s.FeatureVector(v)
	}
	return ml.CrossValidate(func() *ml.Pipeline { return s.newPipeline(model) },
		X, labels, repeats, 0.8, s.cfg.Seed)
}

// HasClassifier reports whether a classifier is trained.
func (s *System) HasClassifier() bool { return s.classifier != nil }

// Classify returns whether the violation should be reported as a naming
// issue. Without a trained classifier every violation is reported (the
// "w/o C" ablation).
func (s *System) Classify(v *Violation) bool {
	return s.ClassifyIn(s.StatsIx, v)
}

// ClassifyIn classifies a violation using an explicit statistics index
// (see FeatureVectorIn). Safe for concurrent use: the classifier and
// pattern state are read-only after Import/TrainClassifier.
func (s *System) ClassifyIn(ix *features.Index, v *Violation) bool {
	if s.classifier == nil {
		return true
	}
	return s.classifier.Predict(s.FeatureVectorIn(ix, v)) == 1
}

// FeatureWeights returns the trained classifier's weights mapped back to
// the 17 features of Table 1 (what Table 9 aggregates); nil before
// training.
func (s *System) FeatureWeights() []float64 {
	if s.classifier == nil {
		return nil
	}
	return s.classifier.FeatureWeights()
}

// Report renders a violation as a human-readable report with the
// suggested fix, in the style of Tables 3 and 6.
func (v *Violation) Report() string {
	var b strings.Builder
	b.WriteString(v.Stmt.Path)
	b.WriteString(":")
	b.WriteString(strconv.Itoa(v.Stmt.Line))
	b.WriteString(": ")
	if v.Stmt.SourceLine != "" {
		b.WriteString(v.Stmt.SourceLine)
	} else {
		b.WriteString(v.Stmt.Fingerprint)
	}
	b.WriteString("\n  suggested fix: replace \"")
	b.WriteString(v.Detail.Original)
	b.WriteString("\" with \"")
	b.WriteString(v.Detail.Suggested)
	b.WriteString("\" (")
	b.WriteString(v.Pattern.Type.String())
	b.WriteString(" pattern)")
	return b.String()
}
