// Incremental overlay scanning: the editor-session workload. An overlay
// analysis keeps the per-statement decomposition of one file's scan —
// statement, pattern observations, violations — so that a keystroke-sized
// edit can be re-analyzed by splicing: statements before the edited
// region are reused as-is, statements after it are reused with their
// lines shifted, and only the enclosing top-level region is re-parsed
// and re-matched. A full /v1/scan re-parses the whole file even on a
// cache-backed warm path; the overlay path does not, which is what puts
// a warm single-file change-scan an order of magnitude under a cold one.
//
// Safety model: the incremental path is taken only when the unedited
// prefix and suffix of the previous content are verified line-for-line
// identical, the region boundaries are top-level statement starts in
// both versions, and the re-parsed region yields statements strictly
// inside the region. Anything suspicious — a boundary the line
// classifier cannot place, a region parse failure, statements escaping
// the region — falls back to a full re-analysis of the new content.
// Overlay units are never published to the shared per-file scan cache:
// with points-to analysis enabled, a region re-analysis computes origins
// from the region subtree only, so a spliced analysis may differ from a
// from-scratch one on cross-region dataflow (the documented
// interactive-mode approximation; with UseAnalysis off the spliced and
// full analyses are identical). The cache's byte-identical invariant
// stays intact because only full-file front-end units ever enter it.
package core

import (
	"context"
	"strings"

	"namer/internal/ast"
	"namer/internal/features"
	"namer/internal/obs"
	"namer/internal/pattern"
)

// StmtObservation is one pattern observation on a statement: the match
// loop saw the statement match the pattern's precondition, satisfied or
// not. Replaying observations rebuilds the statistics index without
// re-running the matcher.
type StmtObservation struct {
	Pattern   *pattern.Pattern
	Satisfied bool
}

// FileAnalysis is the per-statement decomposition of one file's scan,
// the unit of reuse for overlay edits. It is immutable once built;
// splicing copies the shifted parts.
type FileAnalysis struct {
	Repo   string
	Path   string
	Source string // the exact content this analysis was computed from
	Stmts  []*StmtAnalysis
}

// StmtAnalysis is one statement's share of a file analysis.
type StmtAnalysis struct {
	Stmt *ProcStmt
	Obs  []StmtObservation
	// Violations are this statement's pre-dedup violations; their Stmt
	// pointer is exactly Stmt, so fingerprint-multiset diffing by
	// pointer membership works on spliced analyses too.
	Violations []*Violation
}

// EditHint bounds where an edit touched the previously analyzed
// content, in 1-based line numbers of that content. It is advisory: the
// incremental path verifies the implied unedited prefix and suffix
// before trusting it, so an overly narrow hint degrades to a full
// re-analysis rather than a wrong one.
type EditHint struct {
	// StartLine/EndLine bound the touched lines (inclusive).
	StartLine int
	EndLine   int
	// LineDelta is the line-count change the edit caused (new minus
	// old), used only to compose hints across multiple edits.
	LineDelta int
}

// Merge composes h (old content → intermediate) with next (intermediate
// → new content) into one hint relative to the old content. The result
// is conservative: it may widen, never narrow.
func (h EditHint) Merge(next EditHint) EditHint {
	backLo := next.StartLine
	switch {
	case backLo > h.EndLine+h.LineDelta:
		backLo -= h.LineDelta
	case backLo >= h.StartLine:
		backLo = h.StartLine
	}
	backHi := next.EndLine
	switch {
	case backHi > h.EndLine+h.LineDelta:
		backHi -= h.LineDelta
	case backHi >= h.StartLine:
		backHi = h.EndLine
	}
	return EditHint{
		StartLine: min(h.StartLine, backLo),
		EndLine:   max(h.EndLine, backHi),
		LineDelta: h.LineDelta + next.LineDelta,
	}
}

// OverlayResult is the outcome of one overlay (re-)analysis.
type OverlayResult struct {
	// Analysis is the new per-statement decomposition; hand it back as
	// prev on the next edit.
	Analysis *FileAnalysis
	// Violations are the file's violations, deduplicated, in statement
	// order.
	Violations []*Violation
	// Stats is the file-local statistics index, equivalent to what a
	// detached scan of the file would produce; classify against it.
	Stats *features.Index
	// Statements counts analyzed statements; ReusedStatements how many
	// were spliced from the previous analysis rather than re-analyzed.
	Statements       int
	ReusedStatements int
	// Incremental reports whether the region splice was taken (false:
	// full re-analysis).
	Incremental bool
}

// Statements returns the analyzed statements in order.
func (fa *FileAnalysis) Statements() []*ProcStmt {
	out := make([]*ProcStmt, len(fa.Stmts))
	for i, sa := range fa.Stmts {
		out[i] = sa.Stmt
	}
	return out
}

// Stats rebuilds the analysis's statistics index by replaying its
// statements and observations, in the same two passes the scan path
// uses (all statements, then all observations) — no parsing or
// matching involved.
func (fa *FileAnalysis) Stats() *features.Index {
	stats := features.NewIndex()
	for _, sa := range fa.Stmts {
		stats.AddStatement(sa.Stmt.Repo, sa.Stmt.Path, sa.Stmt.Fingerprint)
	}
	for _, sa := range fa.Stmts {
		for _, o := range sa.Obs {
			stats.AddObservation(sa.Stmt.Repo, sa.Stmt.Path, o.Pattern, o.Satisfied)
		}
	}
	return stats
}

// RawViolations returns the pre-dedup violations in statement order —
// the shape IntroducedViolations expects.
func (fa *FileAnalysis) RawViolations() []*Violation {
	var out []*Violation
	for _, sa := range fa.Stmts {
		out = append(out, sa.Violations...)
	}
	return out
}

// AnalyzeOverlay is AnalyzeOverlayCtx without tracing.
func (s *System) AnalyzeOverlay(f *InputFile, prev *FileAnalysis, hint *EditHint) (*OverlayResult, error) {
	return s.AnalyzeOverlayCtx(context.Background(), f, prev, hint)
}

// AnalyzeOverlayCtx analyzes one overlay file against the system's
// knowledge. With a previous analysis and an edit hint it attempts the
// incremental region splice; otherwise — or whenever the splice cannot
// be verified — it re-analyzes the whole content. Like ScanFilesCtx it
// is read-only on the system and safe for concurrent use. The error is
// the file's parse/analysis failure; the previous analysis stays valid
// in that case.
func (s *System) AnalyzeOverlayCtx(ctx context.Context, f *InputFile, prev *FileAnalysis, hint *EditHint) (*OverlayResult, error) {
	ctx, sp := obs.StartSpan(ctx, "overlay")
	defer sp.End()
	sp.SetAttr("path", f.Path)
	if prev != nil && hint != nil && s.cfg.Lang == ast.Python &&
		prev.Repo == f.Repo && prev.Path == f.Path {
		if res := s.rescanRegion(ctx, f, prev, *hint); res != nil {
			sp.SetAttr("mode", "incremental")
			sp.SetAttrInt("statements", res.Statements)
			return res, nil
		}
	}
	res, err := s.overlayFull(ctx, f)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	sp.SetAttr("mode", "full")
	sp.SetAttrInt("statements", res.Statements)
	return res, nil
}

// overlayFull analyzes the whole content from scratch.
func (s *System) overlayFull(ctx context.Context, f *InputFile) (*OverlayResult, error) {
	root := f.Root
	if root == nil {
		_, psp := obs.StartSpan(ctx, "parse")
		parsed, err := ParseSource(s.cfg.Lang, f.Source)
		psp.End()
		if err != nil {
			return nil, err
		}
		root = parsed
	}
	stmts, err := s.processFileSafe(&InputFile{Repo: f.Repo, Path: f.Path, Source: f.Source, Root: root})
	if err != nil {
		return nil, err
	}
	fa := &FileAnalysis{Repo: f.Repo, Path: f.Path, Source: f.Source,
		Stmts: make([]*StmtAnalysis, len(stmts))}
	for i, ps := range stmts {
		fa.Stmts[i] = s.analyzeStmt(ps)
	}
	return fa.result(0, false), nil
}

// rescanRegion attempts the incremental path; nil means "could not be
// verified, take the full path" (including region parse errors — the
// full parse is authoritative on whether the content is broken).
func (s *System) rescanRegion(ctx context.Context, f *InputFile, prev *FileAnalysis, hint EditHint) *OverlayResult {
	oldLines := contentLines(prev.Source)
	newLines := contentLines(f.Source)
	if hint.StartLine < 1 || hint.EndLine < hint.StartLine || len(oldLines) == 0 {
		return nil
	}
	delta := len(newLines) - len(oldLines)
	oldB := pyBoundaries(oldLines)
	newB := pyBoundaries(newLines)

	// B: the last line at or before the edit that starts a top-level
	// statement in both versions — the region's left edge.
	P := min(hint.StartLine, len(oldLines), len(newLines))
	B := 0
	for b := P; b >= 1; b-- {
		if oldB[b-1] && newB[b-1] {
			B = b
			break
		}
	}
	if B == 0 {
		return nil
	}
	// Eold/Enew: the first top-level start strictly after the edited
	// range on each side — the region's right edge (exclusive).
	qOld := min(max(hint.EndLine, B), len(oldLines))
	eOld := len(oldLines) + 1
	for e := qOld + 1; e <= len(oldLines); e++ {
		if oldB[e-1] {
			eOld = e
			break
		}
	}
	qNew := min(max(qOld+delta, B), len(newLines))
	eNew := len(newLines) + 1
	for e := qNew + 1; e <= len(newLines); e++ {
		if newB[e-1] {
			eNew = e
			break
		}
	}

	// The splice is only sound if everything outside [B, E) really is
	// unedited: verify the prefix and suffix line-for-line, so a wrong
	// hint degrades to a full re-analysis instead of a wrong result.
	if len(oldLines)-(eOld-1) != len(newLines)-(eNew-1) {
		return nil
	}
	for i := 0; i < B-1; i++ {
		if oldLines[i] != newLines[i] {
			return nil
		}
	}
	for i := 0; eOld-1+i < len(oldLines); i++ {
		if oldLines[eOld-1+i] != newLines[eNew-1+i] {
			return nil
		}
	}

	// Re-parse just the region, with a blank-line prefix so statement
	// lines come out absolute. Fingerprints are structural (no
	// positions), so a standalone region parse matches the in-file one.
	var sb strings.Builder
	sb.Grow(B + 64*(eNew-B))
	for i := 1; i < B; i++ {
		sb.WriteByte('\n')
	}
	for i := B - 1; i < eNew-1; i++ {
		sb.WriteString(newLines[i])
		sb.WriteByte('\n')
	}
	regionSrc := sb.String()
	root, err := ParseSource(s.cfg.Lang, regionSrc)
	if err != nil {
		return nil
	}
	stmts, err := s.processFileSafe(&InputFile{Repo: f.Repo, Path: f.Path, Source: regionSrc, Root: root})
	if err != nil {
		return nil
	}
	for _, ps := range stmts {
		if ps.Line < B || ps.Line >= eNew {
			return nil
		}
	}

	// Splice: prefix reused as-is, region re-analyzed, suffix reused
	// with lines shifted. Previous statements must come in prefix /
	// region / suffix runs (ast.Statements emits nondecreasing lines);
	// anything out of order bails to the full path.
	out := make([]*StmtAnalysis, 0, len(prev.Stmts)+len(stmts))
	reused := 0
	phase := 0 // 0 prefix, 1 old region, 2 suffix
	for _, sa := range prev.Stmts {
		switch {
		case sa.Stmt.Line < B:
			if phase != 0 {
				return nil
			}
			out = append(out, sa)
			reused++
		case sa.Stmt.Line < eOld:
			if phase == 2 {
				return nil
			}
			if phase == 0 {
				phase = 1
				for _, ps := range stmts {
					out = append(out, s.analyzeStmt(ps))
				}
			}
		default:
			if phase == 0 {
				for _, ps := range stmts {
					out = append(out, s.analyzeStmt(ps))
				}
			}
			phase = 2
			out = append(out, sa.shift(delta))
			reused++
		}
	}
	if phase == 0 {
		// No previous statement at or past the region (e.g. appending
		// at EOF): the region statements still go in.
		for _, ps := range stmts {
			out = append(out, s.analyzeStmt(ps))
		}
	}
	fa := &FileAnalysis{Repo: f.Repo, Path: f.Path, Source: f.Source, Stmts: out}
	return fa.result(reused, true)
}

// analyzeStmt runs the match loop for one statement, recording the
// observations and violations matchFile would have produced.
func (s *System) analyzeStmt(ps *ProcStmt) *StmtAnalysis {
	sa := &StmtAnalysis{Stmt: ps}
	if s.index == nil {
		return sa
	}
	for _, p := range s.index.Candidates(ps.PS) {
		if !ps.PS.Matches(p) {
			continue
		}
		satisfied := ps.PS.Satisfied(p)
		sa.Obs = append(sa.Obs, StmtObservation{Pattern: p, Satisfied: satisfied})
		if satisfied {
			continue
		}
		detail, ok := ps.PS.Explain(p)
		if !ok {
			continue
		}
		sa.Violations = append(sa.Violations, &Violation{Stmt: ps, Pattern: p, Detail: detail})
	}
	return sa
}

// shift returns the statement analysis moved by delta lines; the
// original is left untouched (previous analyses are immutable). The
// violation copies point at the shifted statement so pointer-membership
// diffing stays coherent.
func (sa *StmtAnalysis) shift(delta int) *StmtAnalysis {
	if delta == 0 {
		return sa
	}
	ps := *sa.Stmt
	ps.Line += delta
	cp := &StmtAnalysis{Stmt: &ps, Obs: sa.Obs}
	if len(sa.Violations) > 0 {
		cp.Violations = make([]*Violation, len(sa.Violations))
		for i, v := range sa.Violations {
			cv := *v
			cv.Stmt = &ps
			cp.Violations[i] = &cv
		}
	}
	return cp
}

// result folds the per-statement decomposition into an OverlayResult.
func (fa *FileAnalysis) result(reused int, incremental bool) *OverlayResult {
	var vs []*Violation
	for _, sa := range fa.Stmts {
		vs = append(vs, sa.Violations...)
	}
	return &OverlayResult{
		Analysis:         fa,
		Violations:       Dedup(vs),
		Stats:            fa.Stats(),
		Statements:       len(fa.Stmts),
		ReusedStatements: reused,
		Incremental:      incremental,
	}
}

// contentLines splits source into its content lines, without the
// synthetic empty element a trailing newline would add.
func contentLines(src string) []string {
	ls := strings.Split(src, "\n")
	if n := len(ls); n > 0 && ls[n-1] == "" {
		ls = ls[:n-1]
	}
	return ls
}

// pyBoundaries classifies each line (index i ↔ line i+1) of a Python
// source as a safe region boundary: a column-0 line that starts a fresh
// top-level statement. Lines inside brackets, triple-quoted strings, or
// after a backslash continuation are not starts; neither are
// else/elif/except/finally clause headers (they belong to an enclosing
// compound statement) nor the statement a decorator stack attaches to
// (the region must begin at the first decorator, never between it and
// its def).
func pyBoundaries(lines []string) []bool {
	out := make([]bool, len(lines))
	depth := 0
	var triple byte
	cont := false
	afterDec := false
	for i, line := range lines {
		startable := triple == 0 && depth == 0 && !cont
		if startable && line != "" {
			c := line[0]
			if c != ' ' && c != '\t' && c != '#' {
				switch {
				case leadingWordIn(line, "else", "elif", "except", "finally"):
					// clause of an enclosing compound statement
				case c == '@':
					out[i] = !afterDec
					afterDec = true
				default:
					out[i] = !afterDec
					afterDec = false
				}
			}
		}
		depth, triple, cont = pyLexLine(line, depth, triple)
	}
	return out
}

// leadingWordIn reports whether the line's first identifier-ish word is
// one of the given keywords.
func leadingWordIn(line string, kws ...string) bool {
	end := 0
	for end < len(line) {
		c := line[end]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
			end++
			continue
		}
		break
	}
	w := line[:end]
	for _, kw := range kws {
		if w == kw {
			return true
		}
	}
	return false
}

// pyLexLine carries the line-spanning lexical state (bracket depth,
// open triple-quoted string, backslash continuation) across one line.
// It is deliberately approximate — e.g. nested f-string quoting is not
// modeled — because a misclassification can only mis-place a region
// boundary, and every splice is verified before being trusted.
func pyLexLine(line string, depth int, triple byte) (int, byte, bool) {
	i, n := 0, len(line)
	for i < n {
		if triple != 0 {
			if line[i] == '\\' {
				i += 2
				continue
			}
			if line[i] == triple && i+2 < n && line[i+1] == triple && line[i+2] == triple {
				triple = 0
				i += 3
				continue
			}
			i++
			continue
		}
		switch c := line[i]; c {
		case '#':
			return depth, triple, false
		case '(', '[', '{':
			depth++
			i++
		case ')', ']', '}':
			if depth > 0 {
				depth--
			}
			i++
		case '\'', '"':
			if i+2 < n && line[i+1] == c && line[i+2] == c {
				triple = c
				i += 3
				continue
			}
			j := i + 1
			closed := false
			for j < n {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == c {
					closed = true
					j++
					break
				}
				j++
			}
			i = j
			if !closed {
				// An unterminated single-quoted string only parses
				// with a trailing backslash; either way the next line
				// continues this statement.
				return depth, triple, true
			}
		case '\\':
			if i == n-1 {
				return depth, triple, true
			}
			i += 2
		default:
			i++
		}
	}
	return depth, triple, false
}
