package core

import (
	"testing"

	"namer/internal/ast"
)

// The parallel pipeline (worker-pool file processing, sharded mining,
// sharded scan with per-shard statistics) must be byte-identical to the
// serial reference path: same patterns in the same order, same violations
// in the same order, and the same feature vectors (which read the merged
// statistics index).
func TestParallelPipelineMatchesSerial(t *testing.T) {
	ccfg := smallCorpusConfig(ast.Python)
	serialCfg := smallSystemConfig(ast.Python)
	serialCfg.Parallelism = 1
	parallelCfg := smallSystemConfig(ast.Python)
	parallelCfg.Parallelism = 8

	serialSys, _, serialVs := buildSystem(t, ast.Python, serialCfg, ccfg)
	parSys, _, parVs := buildSystem(t, ast.Python, parallelCfg, ccfg)

	if len(serialSys.Patterns) == 0 {
		t.Fatal("no patterns mined, nothing compared")
	}
	if len(serialSys.Patterns) != len(parSys.Patterns) {
		t.Fatalf("pattern counts differ: serial %d, parallel %d",
			len(serialSys.Patterns), len(parSys.Patterns))
	}
	for i := range serialSys.Patterns {
		if serialSys.Patterns[i].Key() != parSys.Patterns[i].Key() {
			t.Fatalf("pattern %d differs:\n serial   %s\n parallel %s",
				i, serialSys.Patterns[i].Key(), parSys.Patterns[i].Key())
		}
	}

	if len(serialVs) == 0 {
		t.Fatal("no violations found, nothing compared")
	}
	if len(serialVs) != len(parVs) {
		t.Fatalf("violation counts differ: serial %d, parallel %d", len(serialVs), len(parVs))
	}
	for i := range serialVs {
		sv, pv := serialVs[i], parVs[i]
		if sv.Stmt.Repo != pv.Stmt.Repo || sv.Stmt.Path != pv.Stmt.Path ||
			sv.Stmt.Line != pv.Stmt.Line ||
			sv.Pattern.Key() != pv.Pattern.Key() ||
			sv.Detail.Original != pv.Detail.Original ||
			sv.Detail.Suggested != pv.Detail.Suggested {
			t.Fatalf("violation %d differs:\n serial   %s\n parallel %s",
				i, sv.Report(), pv.Report())
		}
		sf := serialSys.FeatureVector(sv)
		pf := parSys.FeatureVector(pv)
		for j := range sf {
			if sf[j] != pf[j] {
				t.Fatalf("violation %d feature %d differs: serial %v, parallel %v",
					i, j, sf[j], pf[j])
			}
		}
	}
}
