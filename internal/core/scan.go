package core

import (
	"context"
	"fmt"
	"time"

	"namer/internal/ast"
	"namer/internal/features"
	"namer/internal/golang"
	"namer/internal/javalang"
	"namer/internal/obs"
	"namer/internal/pylang"
)

// ParseSource parses one source file with the language front end. Parser
// panics (the pylang/javalang parsers re-panic on internal errors) are
// contained and returned as errors, so callers feeding untrusted input —
// directory walks and serve requests alike — cannot be killed by one
// pathological file.
func ParseSource(lang ast.Language, source string) (root *ast.Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			root, err = nil, fmt.Errorf("core: %v parser panic: %v", lang, r)
		}
	}()
	switch lang {
	case ast.Python:
		return pylang.Parse(source)
	case ast.Java:
		return javalang.Parse(source)
	case ast.Go:
		return golang.Parse(source)
	}
	return nil, fmt.Errorf("core: no parser for %v", lang)
}

// StageTimings breaks one detached scan into its two pipeline stages,
// so the serving layer can export per-stage latency histograms and an
// operator can tell front-end cost (analysis, AST+ transformation,
// path extraction) apart from pattern-index matching. Under a tracing
// context the values are a derived view of the "process" and "match"
// spans; without one they are measured directly, so the histograms
// stay populated either way.
type StageTimings struct {
	// Process is the per-file front-end time: points-to analysis,
	// AST+ transformation, and name path extraction.
	Process time.Duration
	// Match is the pattern matching time: candidate lookup, predicate
	// evaluation, explanation, and dedup.
	Match time.Duration
}

// ScanResult is the outcome of a detached scan (ScanFiles).
type ScanResult struct {
	// Violations are the deduplicated pattern violations found in the
	// request files, in deterministic order.
	Violations []*Violation
	// Stats is the request-local statistics index the violations were
	// scored against; pass it to ClassifyIn/FeatureVectorIn.
	Stats *features.Index
	// Statements is how many statements were extracted and matched.
	Statements int
	// Errors holds per-file analysis failures; files that fail are
	// skipped, the rest are scanned normally.
	Errors []error
	// Timings records how long each scan stage took (see StageTimings).
	Timings StageTimings
}

// stage opens a child span and a fallback stopwatch; the returned stop
// function ends the span and reports the stage duration — the span's
// own duration when tracing is live (so StageTimings is exactly the
// span view), a direct measurement otherwise.
func stage(ctx context.Context, name string) (context.Context, func() time.Duration) {
	cctx, sp := obs.StartSpan(ctx, name)
	start := time.Now()
	return cctx, func() time.Duration {
		sp.End()
		if d, ok := sp.Duration(); ok {
			return d
		}
		return time.Since(start)
	}
}

// ScanFiles analyzes the given files against the system's mined knowledge
// without touching any system state: statements and statistics live in the
// returned ScanResult rather than in s.Stmts/s.StatsIx. Unlike
// ProcessFiles+Scan, this path is safe for concurrent read-only use — the
// serving layer runs one ScanFiles per request over a shared System. The
// system must not be mutated (mining, training, importing) while detached
// scans are in flight.
func (s *System) ScanFiles(files []*InputFile) *ScanResult {
	return s.ScanFilesCtx(context.Background(), files)
}

// ScanFilesCtx is ScanFiles under a tracing context: a "process" span
// (one "file" child per input, with path and statement count) and a
// "match" span, from which ScanResult.Timings is derived.
func (s *System) ScanFilesCtx(ctx context.Context, files []*InputFile) *ScanResult {
	res := &ScanResult{Stats: features.NewIndex()}
	var stmts []*ProcStmt
	pctx, stopProcess := stage(ctx, "process")
	// Requests are small (a snippet or a handful of files); concurrency
	// comes from scanning many requests at once, so each request is
	// processed serially to avoid worker-pool churn per request.
	for _, f := range files {
		_, fsp := obs.StartSpan(pctx, "file")
		fsp.SetAttr("path", f.Path)
		out, err := s.processFileSafe(f)
		if err != nil {
			res.Errors = append(res.Errors, err)
			fsp.SetAttr("error", err.Error())
			fsp.End()
			continue
		}
		for _, ps := range out {
			stmts = append(stmts, ps)
			res.Stats.AddStatement(ps.Repo, ps.Path, ps.Fingerprint)
		}
		fsp.SetAttrInt("statements", len(out))
		fsp.End()
	}
	res.Statements = len(stmts)
	res.Timings.Process = stopProcess()
	if s.index == nil {
		// No knowledge imported/mined yet: nothing to match against.
		return res
	}
	_, stopMatch := stage(ctx, "match")
	var vs []*Violation
	for _, ps := range stmts {
		for _, p := range s.index.Candidates(ps.PS) {
			if !ps.PS.Matches(p) {
				continue
			}
			satisfied := ps.PS.Satisfied(p)
			res.Stats.AddObservation(ps.Repo, ps.Path, p, satisfied)
			if satisfied {
				continue
			}
			detail, ok := ps.PS.Explain(p)
			if !ok {
				continue
			}
			vs = append(vs, &Violation{Stmt: ps, Pattern: p, Detail: detail})
		}
	}
	res.Violations = Dedup(vs)
	res.Timings.Match = stopMatch()
	return res
}
