package core

import (
	"context"
	"fmt"
	"time"

	"namer/internal/ast"
	"namer/internal/features"
	"namer/internal/golang"
	"namer/internal/javalang"
	"namer/internal/obs"
	"namer/internal/pylang"
)

// ParseSource parses one source file with the language front end. Parser
// panics (the pylang/javalang parsers re-panic on internal errors) are
// contained and returned as errors, so callers feeding untrusted input —
// directory walks and serve requests alike — cannot be killed by one
// pathological file.
func ParseSource(lang ast.Language, source string) (root *ast.Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			root, err = nil, fmt.Errorf("core: %v parser panic: %v", lang, r)
		}
	}()
	switch lang {
	case ast.Python:
		return pylang.Parse(source)
	case ast.Java:
		return javalang.Parse(source)
	case ast.Go:
		return golang.Parse(source)
	}
	return nil, fmt.Errorf("core: no parser for %v", lang)
}

// StageTimings breaks one detached scan into its pipeline stages, so the
// serving layer can export per-stage latency histograms and an operator
// can tell front-end cost (parsing, analysis, AST+ transformation, path
// extraction) apart from pattern-index matching. Under a tracing context
// the Process/Match values are a derived view of the "process" and
// "match" spans; without one they are measured directly, so the
// histograms stay populated either way.
type StageTimings struct {
	// Parse is the cumulative source-parsing time across the request's
	// files; zero for files served from the cache or handed in
	// pre-parsed.
	Parse time.Duration
	// Process is the per-file front-end time: parsing (when needed),
	// points-to analysis, AST+ transformation, and name path extraction.
	Process time.Duration
	// Match is the pattern matching time: candidate lookup, predicate
	// evaluation, explanation, and dedup.
	Match time.Duration
}

// ScanResult is the outcome of a detached scan (ScanFiles).
type ScanResult struct {
	// Violations are the deduplicated pattern violations found in the
	// request files, in deterministic order.
	Violations []*Violation
	// Stats is the request-local statistics index the violations were
	// scored against; pass it to ClassifyIn/FeatureVectorIn.
	Stats *features.Index
	// Statements is how many statements were extracted and matched.
	Statements int
	// FilesParsed counts the input files that produced an AST (handed in
	// pre-parsed, parsed here, or served from the cache); the difference
	// from len(files) is itemized in Errors.
	FilesParsed int
	// CacheHits/CacheMisses count per-file cache lookups for this scan;
	// both stay zero when no cache is installed.
	CacheHits   int
	CacheMisses int
	// Errors holds per-file parse/analysis failures; files that fail are
	// skipped, the rest are scanned normally.
	Errors []error
	// Timings records how long each scan stage took (see StageTimings).
	Timings StageTimings
}

// stage opens a child span and a fallback stopwatch; the returned stop
// function ends the span and reports the stage duration — the span's
// own duration when tracing is live (so StageTimings is exactly the
// span view), a direct measurement otherwise.
func stage(ctx context.Context, name string) (context.Context, func() time.Duration) {
	cctx, sp := obs.StartSpan(ctx, name)
	start := time.Now()
	return cctx, func() time.Duration {
		sp.End()
		if d, ok := sp.Duration(); ok {
			return d
		}
		return time.Since(start)
	}
}

// fileEval tracks one request file through the per-file pipeline.
type fileEval struct {
	key      string // cache key; "" when the cache is bypassed
	ent      *CachedFile
	hit      bool
	parsedOK bool
	err      error
}

// frontEndFile runs the per-file front end under a "file" span (path,
// cache_hit, statement-count attributes), consulting the cache first. On
// a hit the returned unit is complete, match fragment included; on a
// miss it carries the parsed AST, statements, and statement statistics,
// and matchFile finishes and publishes it. Files arriving with Root set
// skip parsing; files without one are parsed from Source (a "parse"
// child span, accumulated into timings.Parse).
func (s *System) frontEndFile(pctx context.Context, f *InputFile, timings *StageTimings) *fileEval {
	fctx, fsp := obs.StartSpan(pctx, "file")
	defer fsp.End()
	fsp.SetAttr("path", f.Path)
	fe := &fileEval{}
	if s.cacheActive() {
		fe.key = s.FileCacheKey(f)
		if ent, ok := s.cache.Get(fe.key); ok {
			fsp.SetAttr("cache_hit", "true")
			fsp.SetAttrInt("statements", len(ent.Stmts))
			fe.ent, fe.hit, fe.parsedOK = ent, true, true
			return fe
		}
		fsp.SetAttr("cache_hit", "false")
	}
	root := f.Root
	if root == nil {
		start := time.Now()
		_, psp := obs.StartSpan(fctx, "parse")
		parsed, err := ParseSource(s.cfg.Lang, f.Source)
		psp.End()
		timings.Parse += time.Since(start)
		if err != nil {
			fe.err = fmt.Errorf("%s/%s: %v", f.Repo, f.Path, err)
			fsp.SetAttr("error", err.Error())
			return fe
		}
		root = parsed
	}
	fe.parsedOK = true
	in := f
	if in.Root != root {
		in = &InputFile{Repo: f.Repo, Path: f.Path, Source: f.Source, Root: root}
	}
	stmts, err := s.processFileSafe(in)
	if err != nil {
		fe.err = err
		fsp.SetAttr("error", err.Error())
		return fe
	}
	stats := features.NewIndex()
	for _, ps := range stmts {
		stats.AddStatement(ps.Repo, ps.Path, ps.Fingerprint)
	}
	fe.ent = &CachedFile{Root: root, Stmts: stmts, Stats: stats}
	fsp.SetAttrInt("statements", len(stmts))
	return fe
}

// matchFile finishes a missed per-file unit: the match fragment (pattern
// observations into the unit's statistics plus the per-file violations)
// is computed against the pattern index, and the completed unit is
// published to the cache. Cache hits and failed files are no-ops. Must
// only run with a loaded pattern index.
func (s *System) matchFile(fe *fileEval) {
	if fe.err != nil || fe.ent == nil || fe.hit {
		return
	}
	ent := fe.ent
	for _, ps := range ent.Stmts {
		for _, p := range s.index.Candidates(ps.PS) {
			if !ps.PS.Matches(p) {
				continue
			}
			satisfied := ps.PS.Satisfied(p)
			ent.Stats.AddObservation(ps.Repo, ps.Path, p, satisfied)
			if satisfied {
				continue
			}
			detail, ok := ps.PS.Explain(p)
			if !ok {
				continue
			}
			ent.Violations = append(ent.Violations, &Violation{Stmt: ps, Pattern: p, Detail: detail})
		}
	}
	if fe.key != "" {
		ent.Cost = ent.cost()
		s.cache.Add(fe.key, ent)
	}
}

// accountEval folds one per-file evaluation into the scan result's
// counters and error list; it reports whether the file survived.
func accountEval(fe *fileEval, parsed, hits, misses *int, errs *[]error) bool {
	if fe.hit {
		*hits++
	} else if fe.key != "" {
		*misses++
	}
	if fe.parsedOK {
		*parsed++
	}
	if fe.err != nil {
		*errs = append(*errs, fe.err)
		return false
	}
	return true
}

// ScanFiles analyzes the given files against the system's mined knowledge
// without touching any system state: statements and statistics live in the
// returned ScanResult rather than in s.Stmts/s.StatsIx. Unlike
// ProcessFiles+Scan, this path is safe for concurrent read-only use — the
// serving layer runs one ScanFiles per request over a shared System. The
// system must not be mutated (mining, training, importing) while detached
// scans are in flight. Files may arrive pre-parsed (Root set) or as raw
// Source; with a FileCache installed, repeat files skip the whole
// parse/analyze/match pipeline.
func (s *System) ScanFiles(files []*InputFile) *ScanResult {
	return s.ScanFilesCtx(context.Background(), files)
}

// ScanFilesCtx is ScanFiles under a tracing context: a "process" span
// (one "file" child per input with path, cache_hit, and statement-count
// attributes, plus a "parse" child per parsed file) and a "match" span,
// from which ScanResult.Timings is derived.
func (s *System) ScanFilesCtx(ctx context.Context, files []*InputFile) *ScanResult {
	res := &ScanResult{Stats: features.NewIndex()}
	evals := make([]*fileEval, 0, len(files))
	pctx, stopProcess := stage(ctx, "process")
	// Requests are small (a snippet or a handful of files); concurrency
	// comes from scanning many requests at once, so each request is
	// processed serially to avoid worker-pool churn per request.
	for _, f := range files {
		fe := s.frontEndFile(pctx, f, &res.Timings)
		if !accountEval(fe, &res.FilesParsed, &res.CacheHits, &res.CacheMisses, &res.Errors) {
			continue
		}
		res.Statements += len(fe.ent.Stmts)
		evals = append(evals, fe)
	}
	res.Timings.Process = stopProcess()
	if s.index == nil {
		// No knowledge imported/mined yet: nothing to match against, but
		// the statement statistics are still reported.
		for _, fe := range evals {
			res.Stats.Merge(fe.ent.Stats)
		}
		return res
	}
	_, stopMatch := stage(ctx, "match")
	var vs []*Violation
	for _, fe := range evals {
		s.matchFile(fe)
		res.Stats.Merge(fe.ent.Stats)
		vs = append(vs, fe.ent.Violations...)
	}
	res.Violations = Dedup(vs)
	res.Timings.Match = stopMatch()
	return res
}
