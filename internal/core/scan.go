package core

import (
	"fmt"
	"time"

	"namer/internal/ast"
	"namer/internal/features"
	"namer/internal/golang"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

// ParseSource parses one source file with the language front end. Parser
// panics (the pylang/javalang parsers re-panic on internal errors) are
// contained and returned as errors, so callers feeding untrusted input —
// directory walks and serve requests alike — cannot be killed by one
// pathological file.
func ParseSource(lang ast.Language, source string) (root *ast.Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			root, err = nil, fmt.Errorf("core: %v parser panic: %v", lang, r)
		}
	}()
	switch lang {
	case ast.Python:
		return pylang.Parse(source)
	case ast.Java:
		return javalang.Parse(source)
	case ast.Go:
		return golang.Parse(source)
	}
	return nil, fmt.Errorf("core: no parser for %v", lang)
}

// StageTimings breaks one detached scan into its two pipeline stages,
// so the serving layer can export per-stage latency histograms and an
// operator can tell front-end cost (analysis, AST+ transformation,
// path extraction) apart from pattern-index matching.
type StageTimings struct {
	// Process is the per-file front-end time: points-to analysis,
	// AST+ transformation, and name path extraction.
	Process time.Duration
	// Match is the pattern matching time: candidate lookup, predicate
	// evaluation, explanation, and dedup.
	Match time.Duration
}

// ScanResult is the outcome of a detached scan (ScanFiles).
type ScanResult struct {
	// Violations are the deduplicated pattern violations found in the
	// request files, in deterministic order.
	Violations []*Violation
	// Stats is the request-local statistics index the violations were
	// scored against; pass it to ClassifyIn/FeatureVectorIn.
	Stats *features.Index
	// Statements is how many statements were extracted and matched.
	Statements int
	// Errors holds per-file analysis failures; files that fail are
	// skipped, the rest are scanned normally.
	Errors []error
	// Timings records how long each scan stage took.
	Timings StageTimings
}

// ScanFiles analyzes the given files against the system's mined knowledge
// without touching any system state: statements and statistics live in the
// returned ScanResult rather than in s.Stmts/s.StatsIx. Unlike
// ProcessFiles+Scan, this path is safe for concurrent read-only use — the
// serving layer runs one ScanFiles per request over a shared System. The
// system must not be mutated (mining, training, importing) while detached
// scans are in flight.
func (s *System) ScanFiles(files []*InputFile) *ScanResult {
	res := &ScanResult{Stats: features.NewIndex()}
	var stmts []*ProcStmt
	start := time.Now()
	// Requests are small (a snippet or a handful of files); concurrency
	// comes from scanning many requests at once, so each request is
	// processed serially to avoid worker-pool churn per request.
	for _, f := range files {
		out, err := s.processFileSafe(f)
		if err != nil {
			res.Errors = append(res.Errors, err)
			continue
		}
		for _, ps := range out {
			stmts = append(stmts, ps)
			res.Stats.AddStatement(ps.Repo, ps.Path, ps.Fingerprint)
		}
	}
	res.Statements = len(stmts)
	res.Timings.Process = time.Since(start)
	if s.index == nil {
		// No knowledge imported/mined yet: nothing to match against.
		return res
	}
	start = time.Now()
	var vs []*Violation
	for _, ps := range stmts {
		for _, p := range s.index.Candidates(ps.PS) {
			if !ps.PS.Matches(p) {
				continue
			}
			satisfied := ps.PS.Satisfied(p)
			res.Stats.AddObservation(ps.Repo, ps.Path, p, satisfied)
			if satisfied {
				continue
			}
			detail, ok := ps.PS.Explain(p)
			if !ok {
				continue
			}
			vs = append(vs, &Violation{Stmt: ps, Pattern: p, Detail: detail})
		}
	}
	res.Violations = Dedup(vs)
	res.Timings.Match = time.Since(start)
	return res
}
