// Diff-aware scanning: the CI/PR-review workload. A diff scan takes
// before/after versions of files, analyzes both sides through the same
// cached per-file units as ScanFiles, and reports only the violations
// *introduced* by the change — what a review bot should comment on a PR,
// rather than re-litigating every pre-existing issue in the file.
//
// Semantics, per file:
//
//   - Statements are compared by fingerprint multiset. After-side
//     statements not covered by the before side are the changed set;
//     only their violations are candidates.
//   - Violations carried over from changed before-side statements (same
//     original/suggested rewrite on a statement that was merely edited)
//     are subtracted, so editing an already-flagged line without fixing
//     it is not re-reported as a new issue.
//   - Classification runs against the after side's statistics, the same
//     statistics a full /v1/scan of the after files would use.
//
// treediff aligns the before/after ASTs (the same alignment the pair
// miner applies to commit histories) and reports identifier renames;
// renames matching a mined confusing-word pair are flagged, surfacing
// "this rename goes from/to a commonly confused name" directly in
// review.
package core

import (
	"context"
	"errors"

	"namer/internal/features"
	"namer/internal/obs"
	"namer/internal/subtoken"
	"namer/internal/treediff"
)

// DiffFile is one before/after file pair handed to the diff scan.
type DiffFile struct {
	Repo   string
	Path   string
	Before string
	After  string
}

// Rename is one identifier rename the tree alignment found, attributed
// to its file.
type Rename struct {
	Path   string
	Before string
	After  string
	// KnownPair reports whether the renamed subtoken pair (in either
	// direction) is in the mined confusing-word pair set — the rename
	// crosses a boundary developers demonstrably mix up.
	KnownPair bool
}

// DiffResult is the outcome of a diff scan (DiffFiles).
type DiffResult struct {
	// Introduced are the violations present on changed after-side
	// statements and not carried over from the before side, deduplicated,
	// in deterministic order.
	Introduced []*Violation
	// Renames are the identifier renames of the tree alignment, deduped
	// per file in first-occurrence order.
	Renames []Rename
	// Stats is the after side's statistics index; classify Introduced
	// against it (ClassifyIn), exactly as a full scan of the after files
	// would.
	Stats *features.Index
	// Statements counts after-side statements; Changed counts the subset
	// not present (by fingerprint) in the before side.
	Statements int
	Changed    int
	// FilesParsed counts the file pairs where both sides parsed.
	FilesParsed int
	// CacheHits/CacheMisses aggregate per-file cache lookups across both
	// sides.
	CacheHits   int
	CacheMisses int
	// Errors holds per-side parse/analysis failures; a pair with a failed
	// side is skipped, the rest are diffed normally.
	Errors []error
	// Timings records the stage split (see StageTimings).
	Timings StageTimings
}

// ErrNoKnowledge is returned (via DiffResult.Errors) when a diff scan
// runs before any knowledge is mined or imported.
var ErrNoKnowledge = errors.New("core: no knowledge loaded")

// DiffFiles is DiffFilesCtx without tracing.
func (s *System) DiffFiles(files []DiffFile) *DiffResult {
	return s.DiffFilesCtx(context.Background(), files)
}

// DiffFilesCtx scans before/after file pairs and reports only the
// violations introduced by the change, plus the identifier renames of
// the AST alignment. Like ScanFilesCtx it is read-only on the system,
// safe for concurrent use, and serves both sides of every pair from the
// per-file cache when one is installed. Span structure: "process" (one
// "file" child per side), "match", and "align" for the tree diff.
func (s *System) DiffFilesCtx(ctx context.Context, files []DiffFile) *DiffResult {
	res := &DiffResult{Stats: features.NewIndex()}
	if s.index == nil {
		res.Errors = append(res.Errors, ErrNoKnowledge)
		return res
	}

	type pairEval struct {
		path          string
		before, after *fileEval
	}
	pairs := make([]pairEval, 0, len(files))
	pctx, stopProcess := stage(ctx, "process")
	for _, df := range files {
		b := s.frontEndFile(pctx, &InputFile{Repo: df.Repo, Path: df.Path, Source: df.Before}, &res.Timings)
		a := s.frontEndFile(pctx, &InputFile{Repo: df.Repo, Path: df.Path, Source: df.After}, &res.Timings)
		okB := accountEval(b, new(int), &res.CacheHits, &res.CacheMisses, &res.Errors)
		okA := accountEval(a, new(int), &res.CacheHits, &res.CacheMisses, &res.Errors)
		if !okB || !okA {
			continue
		}
		res.FilesParsed++
		pairs = append(pairs, pairEval{path: df.Path, before: b, after: a})
	}
	res.Timings.Process = stopProcess()

	_, stopMatch := stage(ctx, "match")
	var introduced []*Violation
	for _, pe := range pairs {
		s.matchFile(pe.before)
		s.matchFile(pe.after)
		res.Stats.Merge(pe.after.ent.Stats)
		res.Statements += len(pe.after.ent.Stmts)

		intro, changed := IntroducedViolations(
			pe.before.ent.Stmts, pe.after.ent.Stmts,
			pe.before.ent.Violations, pe.after.ent.Violations)
		res.Changed += changed
		introduced = append(introduced, intro...)
	}
	res.Introduced = Dedup(introduced)
	res.Timings.Match = stopMatch()

	_, alignSp := obs.StartSpan(ctx, "align")
	for _, pe := range pairs {
		seen := map[[2]string]bool{}
		for _, r := range treediff.Diff(pe.before.ent.Root, pe.after.ent.Root) {
			k := [2]string{r.Before, r.After}
			if seen[k] {
				continue
			}
			seen[k] = true
			res.Renames = append(res.Renames, Rename{
				Path:      pe.path,
				Before:    r.Before,
				After:     r.After,
				KnownPair: s.renameKnownPair(r.Before, r.After),
			})
		}
	}
	alignSp.SetAttrInt("renames", len(res.Renames))
	alignSp.End()
	return res
}

// IntroducedViolations reports the violations introduced by going from
// the before statements/violations to the after side of one file — the
// per-pair core of DiffFilesCtx, shared with the session overlay path.
// Changed statements on each side are the occurrences not covered by
// the other side's fingerprint multiset (so k unchanged copies cancel k
// copies, and the k+1st counts as changed); rewrites already flagged on
// changed before-side statements are carried over, not introduced. The
// violation slices are pre-dedup (per-file, statement order); the
// after-side violations must reference the after statements by pointer.
// It also returns the number of changed after-side statements. Swapping
// the two sides yields the violations *resolved* by the change.
func IntroducedViolations(beforeStmts, afterStmts []*ProcStmt, beforeViols, afterViols []*Violation) ([]*Violation, int) {
	changedAfter := uncovered(afterStmts, beforeStmts)
	changedBefore := uncovered(beforeStmts, afterStmts)

	carried := map[[2]string]int{}
	for _, v := range Dedup(beforeViols) {
		if changedBefore[v.Stmt] {
			carried[[2]string{v.Detail.Original, v.Detail.Suggested}]++
		}
	}
	var introduced []*Violation
	for _, v := range Dedup(afterViols) {
		if !changedAfter[v.Stmt] {
			continue
		}
		k := [2]string{v.Detail.Original, v.Detail.Suggested}
		if carried[k] > 0 {
			carried[k]--
			continue
		}
		introduced = append(introduced, v)
	}
	return introduced, len(changedAfter)
}

// uncovered returns the statements of xs whose fingerprint occurrence is
// not covered by the fingerprint multiset of ys, preserving xs order via
// map iteration on pointer membership at the call site.
func uncovered(xs, ys []*ProcStmt) map[*ProcStmt]bool {
	cover := map[string]int{}
	for _, ps := range ys {
		cover[ps.Fingerprint]++
	}
	out := map[*ProcStmt]bool{}
	for _, ps := range xs {
		if cover[ps.Fingerprint] > 0 {
			cover[ps.Fingerprint]--
			continue
		}
		out[ps] = true
	}
	return out
}

// renameKnownPair reports whether the before→after identifier rename
// differs in exactly one subtoken and that subtoken pair (in either
// direction) is in the mined confusing-word pair set — the same
// single-subtoken alignment the pair miner applies to commit diffs.
func (s *System) renameKnownPair(before, after string) bool {
	if s.Pairs == nil {
		return false
	}
	sb, sa := subtoken.Split(before), subtoken.Split(after)
	if len(sb) != len(sa) {
		return false
	}
	w1, w2 := "", ""
	for i := range sb {
		if sb[i] == sa[i] {
			continue
		}
		if w1 != "" {
			return false // more than one subtoken changed
		}
		w1, w2 = sb[i], sa[i]
	}
	if w1 == "" {
		return false
	}
	return s.Pairs.Contains(w1, w2) || s.Pairs.Contains(w2, w1)
}
