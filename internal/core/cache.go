package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"

	"namer/internal/ast"
	"namer/internal/features"
)

// FileCache is the pluggable content-hash parse cache consulted by the
// detached scan path (ScanFilesCtx/DiffFilesCtx). The cached unit is one
// fully analyzed file — parsed AST, extracted statements with their name
// paths, the per-file statistics fragment, and the per-file match output
// — keyed by a hash of the file identity and content (FileCacheKey).
//
// Implementations must be safe for concurrent use; internal/servecache
// provides the bounded LRU used by namer-serve. Cached values are shared
// across requests and must be treated as immutable by every consumer —
// the scan path only ever reads them.
//
// The cached match fragment is computed against the system's loaded
// pattern index, so a cache is valid for exactly one (config, knowledge)
// pair: after swapping knowledge, install a fresh cache.
type FileCache interface {
	// Get returns the cached unit for key, or ok=false on a miss.
	Get(key string) (*CachedFile, bool)
	// Add publishes a finished unit under key.
	Add(key string, f *CachedFile)
}

// CachedFile is one fully analyzed file, the unit the cache stores.
// All fields are read-only once the unit has been published.
type CachedFile struct {
	// Root is the parsed file AST (the AST+ decoration happens per
	// statement and is captured in Stmts).
	Root *ast.Node
	// Stmts is the front-end output: processed statements with indexed
	// name paths.
	Stmts []*ProcStmt
	// Stats is the per-file statistics fragment: statement fingerprints
	// plus the pattern observations of the match pass. Request-level
	// statistics are the additive merge of these fragments, which equals
	// the serial uncached pass exactly.
	Stats *features.Index
	// Violations is the per-file match output, pre-dedup, in
	// deterministic statement order.
	Violations []*Violation
	// Cost is the unit's byte-size estimate used for cache accounting.
	Cost int64
}

// SetFileCache installs (or removes, with nil) the per-file scan cache.
// Call before serving; the cache itself provides the synchronization,
// but installing one mid-flight is not synchronized.
func (s *System) SetFileCache(c FileCache) { s.cache = c }

// FileCache returns the installed cache, nil when disabled.
func (s *System) FileCache() FileCache { return s.cache }

// cacheActive reports whether per-file units can be cached: the match
// fragment is part of the unit, so caching needs loaded knowledge.
func (s *System) cacheActive() bool { return s.cache != nil && s.index != nil }

// FileCacheKey returns the content-hash cache key for one input file:
// a SHA-256 over the language, repo, path, and full source text. Repo
// and path participate because they are part of the scan output
// (reports and statistics are path-keyed), so the same content under
// two paths is two cache entries.
func (s *System) FileCacheKey(f *InputFile) string {
	h := sha256.New()
	io.WriteString(h, s.cfg.Lang.String())
	h.Write([]byte{0})
	io.WriteString(h, f.Repo)
	h.Write([]byte{0})
	io.WriteString(h, f.Path)
	h.Write([]byte{0})
	io.WriteString(h, f.Source)
	return hex.EncodeToString(h.Sum(nil))
}

// cost estimates the resident size of the unit in bytes. It is a
// deterministic estimate (struct overheads are flat constants), not an
// exact accounting; the cache's byte bound is enforced against it.
func (e *CachedFile) cost() int64 {
	c := int64(256)
	if e.Root != nil {
		c += int64(e.Root.CountNodes()) * 96
	}
	for _, ps := range e.Stmts {
		c += 160 + int64(len(ps.Repo)+len(ps.Path)+len(ps.Fingerprint)+len(ps.SourceLine))
		for _, p := range ps.PS.Paths {
			c += 64 + 2*int64(len(p.Key()))
		}
	}
	c += int64(len(e.Violations)) * 128
	return c
}
