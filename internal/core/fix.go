package core

import (
	"fmt"
	"strings"

	"namer/internal/subtoken"
)

// SuggestFixedName returns the full identifier rewrite a violation
// suggests: the identifier on the reported line whose subtokens contain
// the flagged original subtoken, with that subtoken replaced by the
// suggestion. ok is false when no unique identifier on the line carries
// the subtoken.
func (v *Violation) SuggestFixedName() (from, to string, ok bool) {
	from, ok = findIdentifierWithSubtoken(v.Stmt.SourceLine, v.Detail.Original)
	if !ok {
		return "", "", false
	}
	subs := subtoken.Split(from)
	for i, s := range subs {
		if s == v.Detail.Original {
			subs[i] = v.Detail.Suggested
			break
		}
	}
	to = subtoken.Join(from, subs)
	return from, to, from != to
}

// ApplyFix rewrites one violation in the file source, replacing the
// offending identifier on the reported line, and returns the new source.
// It fails (ok=false) when the identifier cannot be located unambiguously.
func ApplyFix(source string, v *Violation) (string, bool) {
	lines := strings.Split(source, "\n")
	if v.Stmt.Line < 1 || v.Stmt.Line > len(lines) {
		return source, false
	}
	from, to, ok := v.SuggestFixedName()
	if !ok {
		return source, false
	}
	line := lines[v.Stmt.Line-1]
	fixed, ok := replaceIdentifier(line, from, to)
	if !ok {
		return source, false
	}
	lines[v.Stmt.Line-1] = fixed
	return strings.Join(lines, "\n"), true
}

// FixReport renders the rewrite as a human-readable diff line.
func FixReport(v *Violation) string {
	from, to, ok := v.SuggestFixedName()
	if !ok {
		return fmt.Sprintf("%s:%d: no automatic fix (replace subtoken %q with %q manually)",
			v.Stmt.Path, v.Stmt.Line, v.Detail.Original, v.Detail.Suggested)
	}
	return fmt.Sprintf("%s:%d: %s -> %s", v.Stmt.Path, v.Stmt.Line, from, to)
}

// findIdentifierWithSubtoken scans the identifiers of a source line for
// the unique one whose subtoken split contains sub.
func findIdentifierWithSubtoken(line, sub string) (string, bool) {
	found := ""
	for _, ident := range identifiersOf(line) {
		for _, s := range subtoken.Split(ident) {
			if s == sub {
				if found != "" && found != ident {
					return "", false // ambiguous
				}
				found = ident
				break
			}
		}
	}
	return found, found != ""
}

// identifiersOf tokenizes a line into identifier-shaped words.
func identifiersOf(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		c := line[i]
		if isIdentStart(c) {
			j := i
			for j < len(line) && isIdentCont(line[j]) {
				j++
			}
			out = append(out, line[i:j])
			i = j
			continue
		}
		if c == '"' || c == '\'' {
			// Skip string literals so their contents are not rewritten.
			q := c
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == q {
					j++
					break
				}
				j++
			}
			i = j
			continue
		}
		i++
	}
	return out
}

// replaceIdentifier rewrites whole-word occurrences of from outside string
// literals; ok is false when nothing was replaced.
func replaceIdentifier(line, from, to string) (string, bool) {
	var b strings.Builder
	replaced := false
	i := 0
	for i < len(line) {
		c := line[i]
		if isIdentStart(c) {
			j := i
			for j < len(line) && isIdentCont(line[j]) {
				j++
			}
			word := line[i:j]
			if word == from {
				b.WriteString(to)
				replaced = true
			} else {
				b.WriteString(word)
			}
			i = j
			continue
		}
		if c == '"' || c == '\'' {
			q := c
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == q {
					j++
					break
				}
				j++
			}
			b.WriteString(line[i:j])
			i = j
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String(), replaced
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
