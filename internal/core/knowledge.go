package core

import (
	"fmt"

	"namer/internal/ast"
	"namer/internal/confusion"
	"namer/internal/knowledge"
	"namer/internal/mining"
	"namer/internal/ml"
)

// Knowledge is the serializable product of mining and training: everything
// a fresh Namer process needs to detect issues in new code without
// re-mining — the confusing word pairs, the name patterns, and the trained
// defect classifier. It is an alias for knowledge.Artifact, which owns the
// on-disk encodings (compact binary by default, JSON for debugging).
type Knowledge = knowledge.Artifact

// ExportKnowledge captures the system's mined and trained state.
func (s *System) ExportKnowledge() (*Knowledge, error) {
	k := &Knowledge{
		Lang:     s.cfg.Lang.String(),
		Pairs:    s.Pairs,
		Patterns: s.Patterns,
	}
	if s.classifier != nil {
		st, err := s.classifier.Export()
		if err != nil {
			return nil, err
		}
		k.Classifier = st
	}
	return k, nil
}

// ImportKnowledge installs previously exported state into a fresh system.
// Any supported language is accepted (Python, Java, and Go knowledge all
// load; the language names are resolved by ast.ParseLanguage).
//
// The import is all-or-nothing: everything is validated and built into
// locals first and committed in one step at the end, so an import error
// leaves the system exactly as it was. A hot-reload path that feeds a
// bad artifact through here therefore cannot corrupt the bundle that is
// still serving.
func (s *System) ImportKnowledge(k *Knowledge) error {
	lang, err := ast.ParseLanguage(k.Lang)
	if err != nil {
		return fmt.Errorf("core: %w (system left unchanged)", err)
	}
	pairs := k.Pairs
	if pairs == nil {
		pairs = confusion.NewPairSet()
	}
	for i, p := range k.Patterns {
		if p == nil {
			return fmt.Errorf("core: pattern %d is nil (system left unchanged)", i)
		}
		if !p.Valid() {
			return fmt.Errorf("core: pattern %d is invalid for type %v (system left unchanged)", i, p.Type)
		}
		// Warm every pattern's identity key from this goroutine so
		// concurrent read-only scans never race on the lazy cache (NewIndex
		// warms the patterns it buckets, but not invalid stragglers).
		p.Key()
	}
	index := mining.NewIndex(k.Patterns)
	var classifier *ml.Pipeline
	if k.Classifier != nil {
		classifier = ml.Restore(k.Classifier)
	}

	// Commit point: nothing below can fail.
	s.cfg.Lang = lang
	s.Pairs = pairs
	s.Patterns = k.Patterns
	s.index = index
	s.classifier = classifier
	// Any attached scan cache keyed against the previous knowledge is now
	// stale; drop it rather than serve results mined by the old patterns.
	s.cache = nil
	return nil
}

// SaveKnowledge writes the exported state to path atomically. The format
// follows the extension: ".json" produces the pretty-printed debug format,
// anything else the compact binary format.
func (s *System) SaveKnowledge(path string) error {
	k, err := s.ExportKnowledge()
	if err != nil {
		return err
	}
	return knowledge.Save(path, k)
}

// LoadKnowledge reads exported state from path, auto-detecting the binary
// or JSON format by content.
func (s *System) LoadKnowledge(path string) error {
	k, err := knowledge.Load(path)
	if err != nil {
		return err
	}
	return s.ImportKnowledge(k)
}
