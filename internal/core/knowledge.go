package core

import (
	"encoding/json"
	"fmt"
	"os"

	"namer/internal/ast"
	"namer/internal/confusion"
	"namer/internal/mining"
	"namer/internal/ml"
	"namer/internal/pattern"
)

// Knowledge is the serializable product of mining and training: everything
// a fresh Namer process needs to detect issues in new code without
// re-mining — the confusing word pairs, the name patterns, and the trained
// defect classifier.
type Knowledge struct {
	Lang       string             `json:"lang"`
	Pairs      *confusion.PairSet `json:"pairs"`
	Patterns   []*pattern.Pattern `json:"patterns"`
	Classifier *ml.PipelineState  `json:"classifier,omitempty"`
}

// ExportKnowledge captures the system's mined and trained state.
func (s *System) ExportKnowledge() (*Knowledge, error) {
	k := &Knowledge{
		Lang:     s.cfg.Lang.String(),
		Pairs:    s.Pairs,
		Patterns: s.Patterns,
	}
	if s.classifier != nil {
		st, err := s.classifier.Export()
		if err != nil {
			return nil, err
		}
		k.Classifier = st
	}
	return k, nil
}

// ImportKnowledge installs previously exported state into a fresh system.
func (s *System) ImportKnowledge(k *Knowledge) error {
	switch k.Lang {
	case ast.Python.String():
		s.cfg.Lang = ast.Python
	case ast.Java.String():
		s.cfg.Lang = ast.Java
	default:
		return fmt.Errorf("core: unknown language %q", k.Lang)
	}
	s.Pairs = k.Pairs
	s.Patterns = k.Patterns
	s.index = mining.NewIndex(s.Patterns)
	if k.Classifier != nil {
		s.classifier = ml.Restore(k.Classifier)
	}
	return nil
}

// SaveKnowledge writes the exported state as JSON.
func (s *System) SaveKnowledge(path string) error {
	k, err := s.ExportKnowledge()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(k, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadKnowledge reads exported state from JSON.
func (s *System) LoadKnowledge(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var k Knowledge
	k.Pairs = confusion.NewPairSet()
	if err := json.Unmarshal(data, &k); err != nil {
		return err
	}
	return s.ImportKnowledge(&k)
}
