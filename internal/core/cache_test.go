package core

import (
	"sync"
	"testing"

	"namer/internal/ast"
)

// mapCache is an unbounded FileCache for core tests (the bounded LRU
// lives in internal/servecache, which cannot be imported from here
// without a cycle).
type mapCache struct {
	mu sync.Mutex
	m  map[string]*CachedFile
}

func newMapCache() *mapCache { return &mapCache{m: map[string]*CachedFile{}} }

func (c *mapCache) Get(key string) (*CachedFile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[key]
	return f, ok
}

func (c *mapCache) Add(key string, f *CachedFile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = f
}

func (c *mapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// scanReports renders a scan's violations (with classification) into
// comparable strings, so "byte-identical results" is literal.
func scanReports(sys *System, res *ScanResult) []string {
	out := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		s := v.Report()
		if sys.ClassifyIn(res.Stats, v) {
			s += " [classified]"
		}
		out = append(out, s)
	}
	return out
}

// freshScanSystem exports the mined knowledge into a fresh system, the
// way a serving daemon loads it, and returns the corpus files as
// source-only inputs (no pre-parsed Root, so the scan path parses).
func freshScanSystem(t *testing.T) (*System, []*InputFile) {
	t.Helper()
	sys, c, _ := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSystem(DefaultConfig(ast.Python))
	if err := fresh.ImportKnowledge(k); err != nil {
		t.Fatal(err)
	}
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source})
		}
	}
	return fresh, files
}

// TestScanFilesCachedIdentical pins the acceptance criterion: scans with
// the cache (cold and warm) produce byte-identical violation reports and
// classifications to scans without it.
func TestScanFilesCachedIdentical(t *testing.T) {
	sys, files := freshScanSystem(t)

	base := sys.ScanFiles(files)
	if len(base.Errors) != 0 {
		t.Fatalf("baseline errors: %v", base.Errors)
	}
	if base.CacheHits != 0 || base.CacheMisses != 0 {
		t.Fatalf("cacheless scan counted lookups: %d/%d", base.CacheHits, base.CacheMisses)
	}
	want := scanReports(sys, base)
	if len(want) == 0 {
		t.Fatal("baseline found no violations; corpus too clean to test")
	}

	cache := newMapCache()
	sys.SetFileCache(cache)
	defer sys.SetFileCache(nil)

	cold := sys.ScanFiles(files)
	if cold.CacheMisses != len(files) || cold.CacheHits != 0 {
		t.Fatalf("cold scan hits/misses = %d/%d, want 0/%d", cold.CacheHits, cold.CacheMisses, len(files))
	}
	warm := sys.ScanFiles(files)
	if warm.CacheHits != len(files) || warm.CacheMisses != 0 {
		t.Fatalf("warm scan hits/misses = %d/%d, want %d/0", warm.CacheHits, warm.CacheMisses, len(files))
	}
	if warm.FilesParsed != len(files) || warm.Statements != base.Statements {
		t.Fatalf("warm scan parsed=%d statements=%d, want %d/%d",
			warm.FilesParsed, warm.Statements, len(files), base.Statements)
	}

	for name, res := range map[string]*ScanResult{"cold": cold, "warm": warm} {
		got := scanReports(sys, res)
		if len(got) != len(want) {
			t.Fatalf("%s scan: %d violations, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s scan diverged at %d:\n got %q\nwant %q", name, i, got[i], want[i])
			}
		}
	}
}

// TestScanFilesCachedDuplicates: the same file twice in one request must
// behave identically cached and uncached (dedup is value-keyed, so the
// shared cached statements cannot change the outcome).
func TestScanFilesCachedDuplicates(t *testing.T) {
	sys, files := freshScanSystem(t)
	dup := append([]*InputFile{files[0]}, files[0], files[1])

	base := sys.ScanFiles(dup)
	cache := newMapCache()
	sys.SetFileCache(cache)
	defer sys.SetFileCache(nil)
	sys.ScanFiles(dup) // prime
	warm := sys.ScanFiles(dup)

	if warm.CacheHits != 3 {
		t.Fatalf("warm hits = %d, want 3", warm.CacheHits)
	}
	gotW, gotB := scanReports(sys, warm), scanReports(sys, base)
	if len(gotW) != len(gotB) {
		t.Fatalf("duplicate handling diverged: cached %d vs uncached %d violations", len(gotW), len(gotB))
	}
	for i := range gotB {
		if gotW[i] != gotB[i] {
			t.Fatalf("duplicate scan diverged at %d: %q vs %q", i, gotW[i], gotB[i])
		}
	}
}

// TestScanFilesCacheBypassedWithoutKnowledge: cached units embed match
// output, so without a pattern index nothing may be cached or served —
// otherwise entries created before a knowledge load would poison scans
// after it.
func TestScanFilesCacheBypassedWithoutKnowledge(t *testing.T) {
	_, files := freshScanSystem(t)
	empty := NewSystem(DefaultConfig(ast.Python))
	cache := newMapCache()
	empty.SetFileCache(cache)
	res := empty.ScanFiles(files[:2])
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Fatalf("knowledge-less scan touched the cache: %d/%d", res.CacheHits, res.CacheMisses)
	}
	if cache.Len() != 0 {
		t.Fatalf("knowledge-less scan cached %d units", cache.Len())
	}
}

// TestScanFilesConcurrentSharedCache runs many scans over one shared
// cache; under -race this is the concurrency check for the cached unit
// sharing (all consumers treat units as read-only).
func TestScanFilesConcurrentSharedCache(t *testing.T) {
	sys, files := freshScanSystem(t)
	cache := newMapCache()
	sys.SetFileCache(cache)
	defer sys.SetFileCache(nil)

	base := sys.ScanFiles(files)
	want := len(base.Violations)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger the slice so goroutines mix hits and misses.
			sub := files[g%4:]
			for i := 0; i < 4; i++ {
				res := sys.ScanFiles(sub)
				if len(res.Errors) != 0 {
					errs <- res.Errors[0].Error()
					return
				}
				if g%4 == 0 && len(res.Violations) != want {
					errs <- "violation count diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestFileCacheKey pins the key contract: language, repo, path, and
// content all participate, and equal inputs collide.
func TestFileCacheKey(t *testing.T) {
	py := NewSystem(DefaultConfig(ast.Python))
	f := &InputFile{Repo: "r", Path: "p.py", Source: "x = 1\n"}
	if py.FileCacheKey(f) != py.FileCacheKey(&InputFile{Repo: "r", Path: "p.py", Source: "x = 1\n"}) {
		t.Fatal("equal inputs produced different keys")
	}
	distinct := map[string]string{}
	for name, g := range map[string]*InputFile{
		"base":    f,
		"content": {Repo: "r", Path: "p.py", Source: "x = 2\n"},
		"path":    {Repo: "r", Path: "q.py", Source: "x = 1\n"},
		"repo":    {Repo: "s", Path: "p.py", Source: "x = 1\n"},
	} {
		distinct[name] = py.FileCacheKey(g)
	}
	distinct["lang"] = NewSystem(DefaultConfig(ast.Java)).FileCacheKey(f)
	seen := map[string]string{}
	for name, key := range distinct {
		if other, dup := seen[key]; dup {
			t.Fatalf("%s and %s collide on key %s", name, other, key)
		}
		seen[key] = name
	}
}
