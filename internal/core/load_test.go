package core

import (
	"os"
	"path/filepath"
	"testing"

	"namer/internal/ast"
	"namer/internal/corpus"
)

func TestLoadDirectory(t *testing.T) {
	dir := t.TempDir()
	ccfg := corpus.DefaultConfig(ast.Python)
	ccfg.Repos = 3
	ccfg.FilesPerRepo = 2
	c := corpus.Generate(ccfg)
	if err := c.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// An unparseable file must be reported but not abort the walk.
	bad := filepath.Join(dir, "repo000", "src", "broken.py")
	if err := os.WriteFile(bad, []byte("def broken(:\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, errs := LoadDirectory(dir, ast.Python)
	if len(files) != 6 {
		t.Fatalf("loaded %d files, want 6", len(files))
	}
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly the broken file", errs)
	}
	for _, f := range files {
		if f.Repo == "" || f.Root == nil || f.Source == "" {
			t.Errorf("incomplete file: %+v", f.Path)
		}
		if f.Repo != "repo000" && f.Repo != "repo001" && f.Repo != "repo002" {
			t.Errorf("unexpected repo %q", f.Repo)
		}
	}
	// Java loader ignores Python files.
	jfiles, _ := LoadDirectory(dir, ast.Java)
	if len(jfiles) != 0 {
		t.Errorf("java loader found %d files in a python corpus", len(jfiles))
	}
}

// TestToolchainFlow exercises the namer-corpus -> namer-mine ->
// namer-train -> namer flow through the package APIs, including the
// knowledge round trip through disk.
func TestToolchainFlow(t *testing.T) {
	dir := t.TempDir()
	ccfg := corpus.DefaultConfig(ast.Python)
	ccfg.Repos = 16
	ccfg.FilesPerRepo = 4
	ccfg.IssueRate = 0.08
	c := corpus.Generate(ccfg)
	if err := c.WriteTo(dir); err != nil {
		t.Fatal(err)
	}

	// Mine (as namer-mine does, from disk).
	files, errs := LoadDirectory(dir, ast.Python)
	if len(errs) > 0 {
		t.Fatalf("load errors: %v", errs)
	}
	cfg := DefaultConfig(ast.Python)
	cfg.Mining.MinPatternCount = len(files) / 3
	sys := NewSystem(cfg)
	pairsSrc, err := corpus.ReadCommits(filepath.Join(dir, "commits"))
	if err != nil {
		t.Fatal(err)
	}
	commits, skipped := corpus.ParseCommitSources(ast.Python, pairsSrc)
	if skipped > 0 {
		t.Fatalf("%d commit pairs failed to parse", skipped)
	}
	sys.MinePairs(commits)
	if sys.Pairs.Len() == 0 {
		t.Fatal("no pairs mined from on-disk commits")
	}
	sys.ProcessFiles(files)
	sys.MinePatterns()
	if len(sys.Patterns) == 0 {
		t.Fatal("no patterns mined from on-disk corpus")
	}
	knowledgePath := filepath.Join(dir, "knowledge.json")
	if err := sys.SaveKnowledge(knowledgePath); err != nil {
		t.Fatal(err)
	}

	// Train (as namer-train does): label with issues.json ground truth.
	issues, err := corpus.ReadIssues(filepath.Join(dir, "issues.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) == 0 {
		t.Fatal("no issues on disk")
	}
	violations := Dedup(sys.Scan())
	if len(violations) == 0 {
		t.Fatal("no violations")
	}
	isIssue := func(v *Violation) bool {
		for _, is := range issues {
			if is.Repo == v.Stmt.Repo && is.Path == v.Stmt.Path &&
				(is.Original == v.Detail.Original || is.Fixed == v.Detail.Original) {
				d := is.Line - v.Stmt.Line
				if d < 0 {
					d = -d
				}
				if d <= 1 {
					return true
				}
			}
		}
		return false
	}
	var train []*Violation
	var labels []int
	pos, neg := 0, 0
	for _, v := range violations {
		if isIssue(v) && pos < 30 {
			train = append(train, v)
			labels = append(labels, 1)
			pos++
		} else if !isIssue(v) && neg < 30 {
			train = append(train, v)
			labels = append(labels, 0)
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Skipf("degenerate labels pos=%d neg=%d", pos, neg)
	}
	sys.TrainClassifier(train, labels)
	trained := filepath.Join(dir, "knowledge-trained.json")
	if err := sys.SaveKnowledge(trained); err != nil {
		t.Fatal(err)
	}

	// Detect (as namer does): fresh process, load trained knowledge.
	sys2 := NewSystem(DefaultConfig(ast.Python))
	if err := sys2.LoadKnowledge(trained); err != nil {
		t.Fatal(err)
	}
	if !sys2.HasClassifier() {
		t.Fatal("classifier missing after reload")
	}
	files2, _ := LoadDirectory(dir, ast.Python)
	sys2.ProcessFiles(files2)
	reports := 0
	tp := 0
	for _, v := range Dedup(sys2.Scan()) {
		if !sys2.Classify(v) {
			continue
		}
		reports++
		if isIssue(v) {
			tp++
		}
	}
	if reports == 0 {
		t.Fatal("trained system reports nothing")
	}
	precision := float64(tp) / float64(reports)
	t.Logf("toolchain: %d reports, precision %.2f", reports, precision)
	if precision < 0.5 {
		t.Errorf("toolchain precision %.2f too low", precision)
	}
}
