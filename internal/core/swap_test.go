package core

import (
	"strings"
	"testing"

	"namer/internal/ast"
	"namer/internal/corpus"
)

func TestFindSwapsOnCorpus(t *testing.T) {
	ccfg := smallCorpusConfig(ast.Python)
	ccfg.IssueRate = 0.12 // enough swap instances
	_, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), ccfg)

	swapIssues := 0
	lines := map[string]bool{}
	for _, is := range c.Issues {
		if is.Category == "swapped-args" {
			k := is.Repo + "|" + is.Path
			if !lines[k+itoa(is.Line)] {
				lines[k+itoa(is.Line)] = true
				swapIssues++
			}
		}
	}
	if swapIssues == 0 {
		t.Skip("no swap issues generated")
	}
	swaps := FindSwaps(violations)
	if len(swaps) == 0 {
		t.Fatal("no swaps detected")
	}
	// Every detected swap must point at an injected swapped-args issue.
	tp := 0
	for _, s := range swaps {
		sev, cat := c.Judge(s.First.Stmt.Repo, s.First.Stmt.Path, s.First.Stmt.Line, s.First.Detail.Original)
		if sev == corpus.SemanticDefect && cat == "swapped-args" {
			tp++
		}
		if !strings.Contains(s.Report(), "swap") {
			t.Errorf("report: %s", s.Report())
		}
	}
	t.Logf("swaps: %d injected statements, %d detected, %d true", swapIssues, len(swaps), tp)
	if tp != len(swaps) {
		t.Errorf("swap precision: %d/%d", tp, len(swaps))
	}
	if float64(tp) < 0.5*float64(swapIssues) {
		t.Errorf("swap recall too low: %d/%d", tp, swapIssues)
	}
}

func TestFindSwapsNoFalsePairing(t *testing.T) {
	// Two unrelated violations on the same statement must not pair.
	stmt := &ProcStmt{Path: "f.py", Line: 1, SourceLine: "x"}
	v1 := &Violation{Stmt: stmt}
	v1.Detail.Original = "a"
	v1.Detail.Suggested = "b"
	v2 := &Violation{Stmt: stmt}
	v2.Detail.Original = "c"
	v2.Detail.Suggested = "d"
	if got := FindSwaps([]*Violation{v1, v2}); len(got) != 0 {
		t.Errorf("unrelated violations paired: %d", len(got))
	}
	// Identical subtokens (a->a mirror) must not pair either.
	v3 := &Violation{Stmt: stmt}
	v3.Detail.Original = "a"
	v3.Detail.Suggested = "a"
	v4 := &Violation{Stmt: stmt}
	v4.Detail.Original = "a"
	v4.Detail.Suggested = "a"
	if got := FindSwaps([]*Violation{v3, v4}); len(got) != 0 {
		t.Errorf("degenerate mirror paired: %d", len(got))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
