package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"namer/internal/ast"
)

// overlayFixture is a Python file with several top-level regions, so
// single-def edits have a prefix and a suffix to reuse.
const overlayFixture = `import os

def upload(upload_count, upload_pos):
    upload_cnt = upload_count + 1
    return upload_cnt

@cache
def download(download_count):
    download_cnt = download_count + 1
    return download_cnt

class Worker:
    def run(self, task_count):
        task_cnt = task_count + 1
        return task_cnt

def main():
    return upload(1, 2) + download(3)
`

// sameOverlay fails the test unless the two results agree on every
// statement (line + fingerprint) and every deduplicated violation.
func sameOverlay(t *testing.T, label string, inc, full *OverlayResult) {
	t.Helper()
	is, fs := inc.Analysis.Statements(), full.Analysis.Statements()
	if len(is) != len(fs) {
		t.Fatalf("%s: %d statements incremental vs %d full", label, len(is), len(fs))
	}
	for i := range is {
		if is[i].Line != fs[i].Line || is[i].Fingerprint != fs[i].Fingerprint {
			t.Fatalf("%s: statement %d diverged: %d/%s vs %d/%s",
				label, i, is[i].Line, is[i].Fingerprint, fs[i].Line, fs[i].Fingerprint)
		}
		if is[i].SourceLine != fs[i].SourceLine {
			t.Fatalf("%s: statement %d source line diverged: %q vs %q",
				label, i, is[i].SourceLine, fs[i].SourceLine)
		}
	}
	iv, fv := inc.Violations, full.Violations
	if len(iv) != len(fv) {
		t.Fatalf("%s: %d violations incremental vs %d full", label, len(iv), len(fv))
	}
	for i := range iv {
		a, b := iv[i], fv[i]
		if a.Stmt.Line != b.Stmt.Line || a.Detail.Original != b.Detail.Original ||
			a.Detail.Suggested != b.Detail.Suggested {
			t.Fatalf("%s: violation %d diverged: line %d %s->%s vs line %d %s->%s", label, i,
				a.Stmt.Line, a.Detail.Original, a.Detail.Suggested,
				b.Stmt.Line, b.Detail.Original, b.Detail.Suggested)
		}
	}
}

// TestOverlayIncrementalReuse: a body edit inside one def re-analyzes
// only that region and reuses every other statement, and the spliced
// result is identical to a from-scratch analysis.
func TestOverlayIncrementalReuse(t *testing.T) {
	sys := NewSystem(DefaultConfig(ast.Python))
	f := &InputFile{Repo: "r", Path: "f.py", Source: overlayFixture}
	first, err := sys.AnalyzeOverlay(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Incremental || first.Statements == 0 {
		t.Fatalf("first analysis: incremental=%v statements=%d", first.Incremental, first.Statements)
	}

	edited := strings.Replace(overlayFixture, "download_cnt = download_count + 1",
		"download_cnt = download_count + 2", 1)
	line := 1 + strings.Count(overlayFixture[:strings.Index(overlayFixture, "download_cnt =")], "\n")
	hint := &EditHint{StartLine: line, EndLine: line, LineDelta: 0}
	inc, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: edited}, first.Analysis, hint)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Incremental {
		t.Fatal("region splice not taken for a single-line body edit")
	}
	if inc.ReusedStatements == 0 || inc.ReusedStatements >= inc.Statements {
		t.Fatalf("reused %d of %d statements; want partial reuse", inc.ReusedStatements, inc.Statements)
	}
	full, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: edited}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameOverlay(t, "body edit", inc, full)
}

// TestOverlayAppendAtEOF: appending a new def reuses every previous
// statement and analyzes only the appended region.
func TestOverlayAppendAtEOF(t *testing.T) {
	sys := NewSystem(DefaultConfig(ast.Python))
	first, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: overlayFixture}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	appended := overlayFixture + "\ndef extra(extra_count):\n    return extra_count + 1\n"
	lines := strings.Count(overlayFixture, "\n")
	hint := &EditHint{StartLine: lines, EndLine: lines + 3, LineDelta: 3}
	inc, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: appended}, first.Analysis, hint)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Incremental {
		t.Fatal("append at EOF did not take the region splice")
	}
	full, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: appended}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameOverlay(t, "append", inc, full)
	if inc.Statements <= first.Statements {
		t.Fatalf("appended def added no statements: %d -> %d", first.Statements, inc.Statements)
	}
}

// TestOverlayParseErrorKeepsPrev: mid-keystroke garbage fails the scan
// and the previous analysis stays usable for the next (fixed) edit.
func TestOverlayParseErrorKeepsPrev(t *testing.T) {
	sys := NewSystem(DefaultConfig(ast.Python))
	first, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: overlayFixture}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(overlayFixture, "def download(download_count):", "def download(:", 1)
	if _, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: broken},
		first.Analysis, &EditHint{StartLine: 8, EndLine: 8}); err == nil {
		t.Fatal("broken content analyzed without error")
	}
	// The untouched previous analysis still splices a later good edit.
	fixed := strings.Replace(overlayFixture, "download_cnt = download_count + 1",
		"download_cnt = download_count + 3", 1)
	inc, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: fixed},
		first.Analysis, &EditHint{StartLine: 9, EndLine: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Incremental {
		t.Fatal("previous analysis unusable after a failed scan")
	}
}

// TestOverlayWrongHintDegradesToFull: a hint that lies about the edited
// range (the real change is outside it) must never produce a wrong
// splice — the prefix/suffix verification fails and the full path runs.
func TestOverlayWrongHintDegradesToFull(t *testing.T) {
	sys := NewSystem(DefaultConfig(ast.Python))
	first, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: overlayFixture}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(overlayFixture, "task_cnt = task_count + 1",
		"task_cnt = task_count + 9", 1)
	// The hint claims the edit is in upload() (lines 3-5); it is in the
	// Worker class much further down.
	res, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: edited},
		first.Analysis, &EditHint{StartLine: 4, EndLine: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("splice trusted a hint whose suffix does not match")
	}
	full, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: edited}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameOverlay(t, "wrong hint", res, full)
}

// TestOverlayEquivalenceProperty drives random line edits over a real
// mined system (analysis ablated, where spliced and full analyses are
// defined to agree exactly) and checks after every parsable edit that
// the incremental result matches a from-scratch analysis.
func TestOverlayEquivalenceProperty(t *testing.T) {
	cfg := smallSystemConfig(ast.Python)
	cfg.UseAnalysis = false
	sys, c, _ := buildSystem(t, ast.Python, cfg, smallCorpusConfig(ast.Python))
	rng := rand.New(rand.NewSource(11))

	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source})
		}
	}
	if len(files) > 12 {
		files = files[:12]
	}
	incrementals := 0
	for _, f := range files {
		prev, err := sys.AnalyzeOverlay(f, nil, nil)
		if err != nil {
			t.Fatalf("%s: initial analysis: %v", f.Path, err)
		}
		content := f.Source
		for step := 0; step < 12; step++ {
			edited, hint := randomLineEdit(rng, content)
			file := &InputFile{Repo: f.Repo, Path: f.Path, Source: edited}
			full, fullErr := sys.AnalyzeOverlay(file, nil, nil)
			inc, incErr := sys.AnalyzeOverlay(file, prev.Analysis, &hint)
			if fullErr != nil {
				// The edit broke the parse; the incremental path must
				// agree (the region parse is never authoritative).
				if incErr == nil {
					t.Fatalf("%s step %d: full analysis failed (%v) but overlay accepted hint %+v",
						f.Path, step, fullErr, hint)
				}
				continue // keep prev and content, try another edit
			}
			if incErr != nil {
				t.Fatalf("%s step %d: overlay failed (%v) on parsable content", f.Path, step, incErr)
			}
			sameOverlay(t, fmt.Sprintf("%s step %d hint %+v", f.Path, step, hint), inc, full)
			if inc.Incremental {
				incrementals++
			}
			prev, content = inc, edited
		}
	}
	if incrementals == 0 {
		t.Fatal("no edit took the incremental path; the property test is vacuous")
	}
	t.Logf("%d incremental splices verified against full analyses", incrementals)
}

// randomLineEdit applies one synthetic edit to content and returns the
// new content plus the honest hint for it (1-based lines of content).
func randomLineEdit(rng *rand.Rand, content string) (string, EditHint) {
	lines := strings.Split(content, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return "x = 1\n", EditHint{StartLine: 1, EndLine: 1, LineDelta: 1}
	}
	i := rng.Intn(len(lines))
	switch rng.Intn(5) {
	case 0: // tweak a numeric literal / append a suffix on one line
		lines[i] = lines[i] + "  # edited"
		return joinNL(lines), EditHint{StartLine: i + 1, EndLine: i + 1}
	case 1: // duplicate a line
		dup := append([]string{}, lines[:i+1]...)
		dup = append(dup, lines[i])
		dup = append(dup, lines[i+1:]...)
		return joinNL(dup), EditHint{StartLine: i + 1, EndLine: i + 1, LineDelta: 1}
	case 2: // delete a line
		del := append([]string{}, lines[:i]...)
		del = append(del, lines[i+1:]...)
		return joinNL(del), EditHint{StartLine: i + 1, EndLine: i + 1, LineDelta: -1}
	case 3: // insert a comment line
		ins := append([]string{}, lines[:i]...)
		ins = append(ins, "# inserted")
		ins = append(ins, lines[i:]...)
		return joinNL(ins), EditHint{StartLine: i + 1, EndLine: i + 1, LineDelta: 1}
	default: // rename the first identifier-ish token on the line
		edited := renameFirstIdent(lines[i])
		lines[i] = edited
		return joinNL(lines), EditHint{StartLine: i + 1, EndLine: i + 1}
	}
}

func joinNL(lines []string) string { return strings.Join(lines, "\n") + "\n" }

func renameFirstIdent(line string) string {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
			j := i
			for j < len(line) && (line[j] == '_' ||
				line[j] >= 'a' && line[j] <= 'z' || line[j] >= 'A' && line[j] <= 'Z' ||
				line[j] >= '0' && line[j] <= '9') {
				j++
			}
			word := line[i:j]
			switch word {
			case "def", "class", "return", "import", "from", "if", "else", "elif",
				"for", "while", "try", "except", "finally", "with", "pass", "lambda",
				"self", "in", "not", "and", "or", "None", "True", "False":
				return line // renaming a keyword breaks the parse more often than not
			}
			return line[:i] + word + "x" + line[j:]
		}
	}
	return line
}

// TestPyBoundaries pins the line classifier on the constructs that make
// a column-0 line *not* a safe region boundary.
func TestPyBoundaries(t *testing.T) {
	src := []string{
		"import os",          // 1: boundary
		"",                   // 2: blank
		"def f(a,",           // 3: boundary, opens bracket
		"        b):",        // 4: inside bracket
		"    return a + b",   // 5: indented
		"x = '''doc",         // 6: boundary, opens triple
		"def not_really():",  // 7: inside triple string
		"'''",                // 8: closes triple
		"y = 1 + \\",         // 9: boundary, continuation
		"2",                  // 10: continuation target
		"@decorator",         // 11: boundary (first decorator)
		"@second",            // 12: stacked decorator
		"def g():",           // 13: decorated def
		"    pass",           // 14: indented
		"try:",               // 15: boundary
		"    pass",           // 16
		"except ValueError:", // 17: clause, not a boundary
		"    pass",           // 18
		"finally:",           // 19: clause
		"    pass",           // 20
		"else_like = 1",      // 21: boundary (identifier, not keyword)
		"# comment",          // 22: comment
		"z = {'k': [1,",      // 23: boundary, opens brackets
		"       2]}",         // 24: inside
		"w = 'unterminated",  // 25: boundary, runs on
		"still_inside'",      // 26: continuation of the string
	}
	want := map[int]bool{1: true, 3: true, 6: true, 9: true, 11: true,
		15: true, 21: true, 23: true, 25: true}
	got := pyBoundaries(src)
	for i := range src {
		if got[i] != want[i+1] {
			t.Errorf("line %d %q: boundary=%v, want %v", i+1, src[i], got[i], want[i+1])
		}
	}
}

func TestEditHintMerge(t *testing.T) {
	cases := []struct {
		name    string
		a, b, w EditHint
	}{
		{"disjoint below", EditHint{StartLine: 10, EndLine: 12, LineDelta: 2},
			EditHint{StartLine: 20, EndLine: 21}, EditHint{StartLine: 10, EndLine: 19, LineDelta: 2}},
		{"disjoint above", EditHint{StartLine: 10, EndLine: 12},
			EditHint{StartLine: 3, EndLine: 4, LineDelta: 1}, EditHint{StartLine: 3, EndLine: 12, LineDelta: 1}},
		{"overlapping", EditHint{StartLine: 10, EndLine: 12, LineDelta: 1},
			EditHint{StartLine: 11, EndLine: 13}, EditHint{StartLine: 10, EndLine: 12, LineDelta: 1}},
		{"same line twice", EditHint{StartLine: 5, EndLine: 5},
			EditHint{StartLine: 5, EndLine: 5}, EditHint{StartLine: 5, EndLine: 5}},
	}
	for _, tc := range cases {
		if got := tc.a.Merge(tc.b); got != tc.w {
			t.Errorf("%s: %+v.Merge(%+v) = %+v, want %+v", tc.name, tc.a, tc.b, got, tc.w)
		}
	}
}

// TestEditHintMergeSoundness: for random edit pairs over a fixture, the
// merged hint must still verify — an incremental scan across two edits
// agrees with the full analysis.
func TestEditHintMergeSoundness(t *testing.T) {
	sys := NewSystem(DefaultConfig(ast.Python))
	rng := rand.New(rand.NewSource(23))
	base := overlayFixture
	prev, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: base}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		mid, h1 := randomLineEdit(rng, base)
		final, h2 := randomLineEdit(rng, mid)
		merged := h1.Merge(h2)
		file := &InputFile{Repo: "r", Path: "f.py", Source: final}
		full, fullErr := sys.AnalyzeOverlay(file, nil, nil)
		inc, incErr := sys.AnalyzeOverlay(file, prev.Analysis, &merged)
		if fullErr != nil {
			if incErr == nil {
				t.Fatalf("trial %d: unparsable content accepted via merged hint %+v", trial, merged)
			}
			continue
		}
		if incErr != nil {
			t.Fatalf("trial %d: overlay failed on parsable content: %v", trial, incErr)
		}
		sameOverlay(t, fmt.Sprintf("trial %d merged %+v", trial, merged), inc, full)
	}
}

// TestOverlayDetachedFromScan: analyzing overlays leaks nothing into the
// system (corpus statements, stats), mirroring ScanFiles' guarantee.
func TestOverlayDetachedFromScan(t *testing.T) {
	sys, _, _ := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	before := len(sys.Stmts)
	if _, err := sys.AnalyzeOverlay(&InputFile{Repo: "r", Path: "f.py", Source: overlayFixture}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(sys.Stmts) != before {
		t.Fatalf("overlay analysis appended statements to the system: %d -> %d", before, len(sys.Stmts))
	}
}
