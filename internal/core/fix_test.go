package core

import (
	"strings"
	"testing"

	"namer/internal/ast"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

func TestApplyFixClearsViolation(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) == 0 {
		t.Fatal("no violations")
	}
	// Index sources by (repo, path).
	srcs := map[string]string{}
	for _, r := range c.Repos {
		for _, f := range r.Files {
			srcs[r.Name+"|"+f.Path] = f.Source
		}
	}
	fixed, failed, cleared := 0, 0, 0
	for _, v := range Dedup(violations) {
		src := srcs[v.Stmt.Repo+"|"+v.Stmt.Path]
		newSrc, ok := ApplyFix(src, v)
		if !ok {
			failed++
			continue
		}
		fixed++
		if newSrc == src {
			t.Errorf("ApplyFix reported success without changing %s:%d", v.Stmt.Path, v.Stmt.Line)
		}
		// Reprocess the fixed file: the same pattern must no longer be
		// violated at that line.
		pf := &InputFile{Repo: v.Stmt.Repo, Path: v.Stmt.Path, Source: newSrc}
		root, err := parseByLang(newSrc, ast.Python)
		if err != nil {
			t.Errorf("fixed source does not parse: %v\n%s", err, newSrc)
			continue
		}
		pf.Root = root
		still := false
		for _, ps := range sys.ProcessFile(pf) {
			if ps.Line != v.Stmt.Line {
				continue
			}
			if ps.PS.Violated(v.Pattern) {
				still = true
			}
		}
		if !still {
			cleared++
		}
	}
	if fixed == 0 {
		t.Fatal("no fixes applied")
	}
	rate := float64(cleared) / float64(fixed)
	t.Logf("fixes: %d applied (%d not applicable), %.0f%% clear the violated pattern",
		fixed, failed, 100*rate)
	if rate < 0.9 {
		t.Errorf("only %.0f%% of applied fixes satisfy the pattern afterwards", 100*rate)
	}
}

func parseByLang(src string, lang ast.Language) (*ast.Node, error) {
	if lang == ast.Python {
		return pylang.Parse(src)
	}
	return javalang.Parse(src)
}

func TestReplaceIdentifier(t *testing.T) {
	tests := []struct {
		line, from, to, want string
		ok                   bool
	}{
		{"self.assertTrue(x, 1)", "assertTrue", "assertEqual", "self.assertEqual(x, 1)", true},
		{"x = por + 'por'", "por", "port", "x = port + 'por'", true}, // string untouched
		{"portable = por", "por", "port", "portable = port", true},   // whole word only
		{"nothing here", "missing", "x", "nothing here", false},
		{`s = "assertTrue"`, "assertTrue", "assertEqual", `s = "assertTrue"`, false},
	}
	for _, tt := range tests {
		got, ok := replaceIdentifier(tt.line, tt.from, tt.to)
		if got != tt.want || ok != tt.ok {
			t.Errorf("replaceIdentifier(%q, %q, %q) = %q,%v; want %q,%v",
				tt.line, tt.from, tt.to, got, ok, tt.want, tt.ok)
		}
	}
}

func TestFindIdentifierWithSubtoken(t *testing.T) {
	id, ok := findIdentifierWithSubtoken("self.assertTrue(picture.rotate_angle, 90)", "True")
	if !ok || id != "assertTrue" {
		t.Errorf("got %q,%v", id, ok)
	}
	// Ambiguous: two identifiers carry the subtoken.
	if _, ok := findIdentifierWithSubtoken("port = port_count", "port"); ok {
		t.Error("ambiguous subtoken should not resolve")
	}
	if _, ok := findIdentifierWithSubtoken("x = 1", "missing"); ok {
		t.Error("absent subtoken should not resolve")
	}
}

func TestSuggestFixedName(t *testing.T) {
	v := &Violation{
		Stmt: &ProcStmt{SourceLine: "self.assertTrue(x, 90)", Line: 1, Path: "f.py"},
	}
	v.Detail.Original = "True"
	v.Detail.Suggested = "Equal"
	from, to, ok := v.SuggestFixedName()
	if !ok || from != "assertTrue" || to != "assertEqual" {
		t.Errorf("SuggestFixedName = %q -> %q, %v", from, to, ok)
	}
	if !strings.Contains(FixReport(v), "assertEqual") {
		t.Error("FixReport missing rewrite")
	}
}

func TestFixReportFallback(t *testing.T) {
	v := &Violation{
		Stmt: &ProcStmt{SourceLine: "x = 1", Line: 3, Path: "f.py"},
	}
	v.Detail.Original = "missing"
	v.Detail.Suggested = "other"
	r := FixReport(v)
	if !strings.Contains(r, "manually") {
		t.Errorf("fallback report = %q", r)
	}
}
