package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"namer/internal/ast"
)

// LoadDirectory walks a corpus directory and parses every source file of
// the language (.py, .java, or .go). The first path component below root
// names the repository (the layout corpus.WriteTo produces). Unparseable
// files — including ones that panic the front end — are skipped with
// their errors collected.
func LoadDirectory(root string, lang ast.Language) ([]*InputFile, []error) {
	ext := ".py"
	switch lang {
	case ast.Java:
		ext = ".java"
	case ast.Go:
		ext = ".go"
	}
	var files []*InputFile
	var errs []error
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ext) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		repo := rel
		if i := strings.IndexByte(rel, filepath.Separator); i >= 0 {
			repo = rel[:i]
		}
		node, err := ParseSource(lang, string(data))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", rel, err))
			return nil
		}
		files = append(files, &InputFile{
			Repo:   repo,
			Path:   rel,
			Source: string(data),
			Root:   node,
		})
		return nil
	})
	if walkErr != nil {
		errs = append(errs, walkErr)
	}
	return files, errs
}
