package core

import (
	"path/filepath"
	"testing"

	"namer/internal/ast"
)

func TestKnowledgeRoundTrip(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) < 20 {
		t.Skip("not enough violations")
	}
	// Train a classifier so the full state is exercised.
	var vs []*Violation
	var ys []int
	for i, v := range violations {
		if i >= 60 {
			break
		}
		vs = append(vs, v)
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		if sev != 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	sys.TrainClassifier(vs, ys)

	path := filepath.Join(t.TempDir(), "knowledge.json")
	if err := sys.SaveKnowledge(path); err != nil {
		t.Fatal(err)
	}

	// Fresh system: load knowledge, reprocess the same files, rescan.
	sys2 := NewSystem(DefaultConfig(ast.Python))
	if err := sys2.LoadKnowledge(path); err != nil {
		t.Fatal(err)
	}
	if len(sys2.Patterns) != len(sys.Patterns) {
		t.Fatalf("patterns: %d vs %d", len(sys2.Patterns), len(sys.Patterns))
	}
	if sys2.Pairs.Len() != sys.Pairs.Len() {
		t.Fatalf("pairs: %d vs %d", sys2.Pairs.Len(), sys.Pairs.Len())
	}
	if !sys2.HasClassifier() {
		t.Fatal("classifier not restored")
	}
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	sys2.ProcessFiles(files)
	violations2 := sys2.Scan()
	if len(violations2) != len(violations) {
		t.Fatalf("violations after reload: %d vs %d", len(violations2), len(violations))
	}
	// Classifier decisions agree on every violation.
	for i := range violations {
		if sys.Classify(violations[i]) != sys2.Classify(violations2[i]) {
			t.Fatalf("classification diverged at violation %d", i)
		}
	}
}
