package core

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/corpus"
	"namer/internal/pattern"
)

// buildSystem runs the full pipeline over a generated corpus.
func buildSystem(t *testing.T, lang ast.Language, cfg Config, ccfg corpus.Config) (*System, *corpus.Corpus, []*Violation) {
	t.Helper()
	c := corpus.Generate(ccfg)
	sys := NewSystem(cfg)
	sys.MinePairs(c.Commits)
	var files []*InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	sys.ProcessFiles(files)
	sys.MinePatterns()
	return sys, c, sys.Scan()
}

func smallCorpusConfig(lang ast.Language) corpus.Config {
	ccfg := corpus.DefaultConfig(lang)
	ccfg.Repos = 20
	ccfg.FilesPerRepo = 4
	ccfg.IssueRate = 0.06
	return ccfg
}

func smallSystemConfig(lang ast.Language) Config {
	cfg := DefaultConfig(lang)
	cfg.Mining.MinPatternCount = 25
	return cfg
}

func TestEndToEndPython(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(sys.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	if len(violations) == 0 {
		t.Fatal("no violations found")
	}
	// Both pattern types must be represented.
	types := map[pattern.Type]int{}
	for _, p := range sys.Patterns {
		types[p.Type]++
	}
	if types[pattern.Consistency] == 0 || types[pattern.ConfusingWord] == 0 {
		t.Errorf("pattern types mined: %v", types)
	}
	// A decent share of injected issues must be caught.
	caught := map[*corpus.Issue]bool{}
	tp := 0
	for _, v := range violations {
		if is := c.IssueAt(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original); is != nil {
			if !caught[is] {
				caught[is] = true
				tp++
			}
		}
	}
	if len(c.Issues) == 0 {
		t.Fatal("corpus has no issues")
	}
	recall := float64(tp) / float64(len(c.Issues))
	t.Logf("python: %d patterns, %d violations, %d/%d issues caught (recall %.2f)",
		len(sys.Patterns), len(violations), tp, len(c.Issues), recall)
	if recall < 0.4 {
		t.Errorf("recall = %.2f, want >= 0.4", recall)
	}
	// The assertTrue defect specifically must be caught with fix Equal.
	foundAssert := false
	for _, v := range violations {
		if v.Detail.Original == "True" && v.Detail.Suggested == "Equal" {
			foundAssert = true
		}
	}
	hasAssertIssue := false
	for _, is := range c.Issues {
		if is.Original == "True" {
			hasAssertIssue = true
		}
	}
	if hasAssertIssue && !foundAssert {
		t.Error("assertTrue(x, NUM) defect not detected")
	}
}

func TestEndToEndJava(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Java, smallSystemConfig(ast.Java), smallCorpusConfig(ast.Java))
	if len(sys.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	if len(violations) == 0 {
		t.Fatal("no violations found")
	}
	tp := 0
	caught := map[*corpus.Issue]bool{}
	for _, v := range violations {
		if is := c.IssueAt(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original); is != nil && !caught[is] {
			caught[is] = true
			tp++
		}
	}
	recall := float64(tp) / float64(len(c.Issues))
	t.Logf("java: %d patterns, %d violations, %d/%d issues caught (recall %.2f)",
		len(sys.Patterns), len(violations), tp, len(c.Issues), recall)
	if recall < 0.35 {
		t.Errorf("recall = %.2f, want >= 0.35", recall)
	}
}

func TestClassifierImprovesPrecision(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) < 40 {
		t.Skipf("only %d violations", len(violations))
	}
	// Label all violations with ground truth.
	labels := make([]int, len(violations))
	truePos := 0
	for i, v := range violations {
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		if sev != corpus.NotIssue {
			labels[i] = 1
			truePos++
		}
	}
	if truePos == 0 || truePos == len(violations) {
		t.Skipf("degenerate labels: %d/%d", truePos, len(violations))
	}
	basePrecision := float64(truePos) / float64(len(violations))

	// Train on a balanced subset (the paper's 120 labeled violations).
	var trainVs []*Violation
	var trainY []int
	pos, neg := 0, 0
	for i, v := range violations {
		if labels[i] == 1 && pos < 60 {
			trainVs = append(trainVs, v)
			trainY = append(trainY, 1)
			pos++
		}
		if labels[i] == 0 && neg < 60 {
			trainVs = append(trainVs, v)
			trainY = append(trainY, 0)
			neg++
		}
	}
	sys.TrainClassifier(trainVs, trainY)
	if !sys.HasClassifier() {
		t.Fatal("classifier not trained")
	}

	reported, reportedTP := 0, 0
	for i, v := range violations {
		if sys.Classify(v) {
			reported++
			if labels[i] == 1 {
				reportedTP++
			}
		}
	}
	if reported == 0 {
		t.Fatal("classifier reports nothing")
	}
	precision := float64(reportedTP) / float64(reported)
	t.Logf("precision: %.2f -> %.2f (reports %d -> %d)",
		basePrecision, precision, len(violations), reported)
	if precision <= basePrecision {
		t.Errorf("classifier did not improve precision: %.2f vs %.2f", precision, basePrecision)
	}
	// Feature weights exposed after training.
	if w := sys.FeatureWeights(); len(w) != 17 {
		t.Errorf("feature weights dim = %d, want 17", len(w))
	}
}

func TestAblationNoAnalysis(t *testing.T) {
	cfgA := smallSystemConfig(ast.Python)
	cfgNoA := smallSystemConfig(ast.Python)
	cfgNoA.UseAnalysis = false
	ccfg := smallCorpusConfig(ast.Python)

	_, cA, vA := buildSystem(t, ast.Python, cfgA, ccfg)
	_, cNoA, vNoA := buildSystem(t, ast.Python, cfgNoA, ccfg)

	caught := func(c *corpus.Corpus, vs []*Violation) int {
		seen := map[*corpus.Issue]bool{}
		n := 0
		for _, v := range vs {
			if is := c.IssueAt(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original); is != nil && !seen[is] {
				seen[is] = true
				n++
			}
		}
		return n
	}
	tpA, tpNoA := caught(cA, vA), caught(cNoA, vNoA)
	t.Logf("with analysis: %d issues; without: %d issues", tpA, tpNoA)
	// The analysis unlocks origin-dependent patterns (TestCase receivers,
	// numpy aliases, typed Java params): it must find strictly more.
	if tpA <= tpNoA {
		t.Errorf("analysis should find more issues: %d vs %d", tpA, tpNoA)
	}
}

func TestViolationReport(t *testing.T) {
	_, _, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) == 0 {
		t.Fatal("no violations")
	}
	r := violations[0].Report()
	if r == "" || len(r) < 20 {
		t.Errorf("report too short: %q", r)
	}
}

func TestCrossValidateModels(t *testing.T) {
	sys, c, violations := buildSystem(t, ast.Python, smallSystemConfig(ast.Python), smallCorpusConfig(ast.Python))
	if len(violations) < 40 {
		t.Skip("not enough violations")
	}
	labels := make([]int, len(violations))
	for i, v := range violations {
		sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		if sev != corpus.NotIssue {
			labels[i] = 1
		}
	}
	for _, model := range []string{"svm", "logreg", "lda"} {
		m := sys.CrossValidate(violations, labels, model, 5)
		if m.Accuracy <= 0.4 {
			t.Errorf("%s: accuracy %.2f suspiciously low", model, m.Accuracy)
		}
		t.Logf("%s: acc=%.2f prec=%.2f rec=%.2f f1=%.2f", model, m.Accuracy, m.Precision, m.Recall, m.F1)
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := DefaultConfig(ast.Java)
	sys := NewSystem(cfg)
	if got := sys.Config(); got.Lang != ast.Java || !got.UseAnalysis {
		t.Errorf("Config() = %+v", got)
	}
}
