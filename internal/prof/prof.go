// Package prof wires the -cpuprofile/-memprofile flags of the cmd
// binaries to runtime/pprof, so mining and scan hot spots can be profiled
// without code edits (go tool pprof <binary> <file>).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (if non-empty) and returns a
// stop function that ends the CPU profile and writes an allocation-site
// heap profile to memFile (if non-empty). Call stop exactly once, before
// the process exits. An empty filename disables that profile; Start with
// both names empty returns a no-op stop.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "warning: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "warning: mem profile:", err)
			}
		}
	}, nil
}
