// Package mining implements Algorithms 1 and 2 of §3.3: growing an FP tree
// over the name paths of a corpus of statements, with each transaction
// split into condition paths and deduction paths, then traversing the tree
// to generate candidate name patterns, and finally pruning uncommon
// patterns by their satisfaction/match ratio over the dataset.
package mining

import (
	"context"
	"sort"

	"namer/internal/confusion"
	"namer/internal/fptree"
	"namer/internal/namepath"
	"namer/internal/obs"
	"namer/internal/parallel"
	"namer/internal/pattern"
)

// Config carries the regularization hyperparameters of §5.1.
type Config struct {
	// MinPathCount drops name paths occurring <= this many times in the
	// dataset before mining (the paper uses 10, removing >99% of paths).
	MinPathCount int
	// MaxPathsPerStatement keeps only the first n paths per statement
	// (the paper uses 10).
	MaxPathsPerStatement int
	// MaxConditionPaths bounds the condition size (the paper uses 10).
	MaxConditionPaths int
	// MinPatternCount prunes patterns below this FP-tree support (the
	// paper uses 100 for Python, 500 for Java; scale to corpus size).
	MinPatternCount int
	// MinSatisfactionRatio is the pruneUncommon threshold (0.8).
	MinSatisfactionRatio float64
	// MaxCombinationsPerNode caps how many condition subsets are emitted
	// per isLast node; 1 emits only the full ancestor condition.
	MaxCombinationsPerNode int
	// Parallelism is the worker count for the sharded mining stages
	// (pass-1 path counting, pass-2 FP-tree construction, and candidate
	// pruning): 0 uses every CPU, 1 forces the serial reference path.
	// Outputs are byte-identical at any setting.
	Parallelism int
	// OnTreeBuilt, when non-nil, is called with the FP tree's node count
	// and the number of inserted transactions after pass 2, before
	// pattern generation — a stats hook for benchmarks and the cmd
	// binaries; it does not affect mining output.
	OnTreeBuilt func(nodes, transactions int)
}

// DefaultConfig returns the paper's hyperparameters with a pattern count
// threshold suitable for corpus-scale runs (callers rescale it).
func DefaultConfig() Config {
	return Config{
		MinPathCount:           10,
		MaxPathsPerStatement:   10,
		MaxConditionPaths:      10,
		MinPatternCount:        100,
		MinSatisfactionRatio:   0.8,
		MaxCombinationsPerNode: 16,
	}
}

// MinePatterns runs Algorithm 1 over the statements. For confusing-word
// patterns, pairs supplies the mined confusing word pairs; it is ignored
// for consistency patterns.
func MinePatterns(stmts []*pattern.Statement, t pattern.Type,
	pairs *confusion.PairSet, cfg Config) []*pattern.Pattern {
	return MinePatternsCtx(context.Background(), stmts, t, pairs, cfg)
}

// MinePatternsCtx is MinePatterns under a tracing context. One "mine"
// span (attribute: pattern type) covers the pass, with a child span per
// algorithm stage:
//
//	pass1_count     path frequency counting (Algorithm 1, pass 1)
//	build_tree      transaction generation + FP-tree growth (pass 2)
//	fp_growth       tree traversal and candidate generation (Algorithm 2)
//	prune_uncommon  satisfaction-ratio pruning (Algorithm 1, line 9)
//
// Outside a trace every span call is a no-op; mining output is
// identical either way.
func MinePatternsCtx(ctx context.Context, stmts []*pattern.Statement, t pattern.Type,
	pairs *confusion.PairSet, cfg Config) []*pattern.Pattern {

	ctx, msp := obs.StartSpan(ctx, "mine")
	msp.SetAttr("type", t.String())
	defer msp.End()

	if cfg.MaxPathsPerStatement <= 0 {
		cfg.MaxPathsPerStatement = 10
	}
	if cfg.MinSatisfactionRatio <= 0 {
		cfg.MinSatisfactionRatio = 0.8
	}

	workers := parallel.Degree(cfg.Parallelism)

	// Pass 1: path frequencies across the dataset, counted on per-shard
	// maps and summed shard-by-shard. Addition commutes, so the merged
	// counts are identical to a serial pass regardless of scheduling.
	_, sp := obs.StartSpan(ctx, "pass1_count")
	sp.SetAttrInt("statements", len(stmts))
	freq := CountPaths(stmts, workers)
	sp.SetAttrInt("distinct_paths", len(freq))
	sp.End()

	// Pass 2: grow the FP tree (Algorithm 1, lines 4-7). The single-process
	// path is the one-shard special case of the map/reduce split: build one
	// shard tree over all statements, "merge" the single tree, grow.
	_, sp = obs.StartSpan(ctx, "build_tree")
	st := BuildShardTree(stmts, t, pairs, freq, cfg)
	sp.SetAttrInt("transactions", st.Transactions)
	sp.SetAttrInt("tree_nodes", st.Tree.Size())
	sp.End()
	if cfg.OnTreeBuilt != nil {
		cfg.OnTreeBuilt(st.Tree.Size(), st.Transactions)
	}

	// Algorithm 2: generate patterns from the FP tree.
	_, sp = obs.StartSpan(ctx, "fp_growth")
	candidates := Grow(st, t, pairs, cfg)
	sp.SetAttrInt("candidates", len(candidates))
	sp.End()

	_, sp = obs.StartSpan(ctx, "prune_uncommon")
	out := PruneUncommon(candidates, stmts, cfg.MinSatisfactionRatio, workers)
	sp.SetAttrInt("kept", len(out))
	sp.End()
	msp.SetAttrInt("patterns", len(out))
	return out
}

// ShardTree is the pass-2 product of one corpus shard: the FP tree over
// the shard's transactions, the item table mapping the tree's dense item
// ids back to name paths, and the number of inserted transactions. It is
// the unit the map/reduce mining driver checkpoints per shard and folds
// with MergeShardTrees on the reduce side.
type ShardTree struct {
	Tree         *fptree.Tree
	Items        []namepath.Path
	Transactions int
}

// BuildShardTree runs pass 2 of Algorithm 1 over one shard of statements:
// transaction generation (path filtering by the dataset-wide frequency
// table, condition/deduction splits, canonical item ordering) and FP-tree
// growth. freq must be the merged pass-1 counts of the WHOLE dataset, not
// just this shard — both the MinPathCount filter and the item ordering
// depend on it, which is why the distributed protocol needs a count-merge
// barrier between pass 1 and pass 2.
//
// Item ordering within a transaction is canonical and id-free: condition
// paths sort by (dataset frequency desc, path key asc), deduction paths by
// path key asc. Because the ordering never consults shard-local interner
// ids, the transaction of a statement is the same path sequence no matter
// which shard builds it, and an FP tree is uniquely determined by its
// transaction multiset — so merging per-shard trees yields byte-identical
// knowledge to a single-process build at any shard count.
func BuildShardTree(stmts []*pattern.Statement, t pattern.Type,
	pairs *confusion.PairSet, freq map[string]int, cfg Config) ShardTree {

	if cfg.MaxPathsPerStatement <= 0 {
		cfg.MaxPathsPerStatement = 10
	}
	workers := parallel.Degree(cfg.Parallelism)
	in := namepath.NewInterner()
	var itemFreq []int // dense: itemFreq[id] = dataset frequency of the path
	intern := func(p namepath.Path) int32 {
		id := in.Intern(p)
		if id == len(itemFreq) {
			itemFreq = append(itemFreq, freq[p.Key()])
		}
		return int32(id)
	}
	var tree *fptree.Tree // serial path: grow directly, no materialization
	var txs *fptree.Transactions
	if workers <= 1 {
		tree = fptree.New()
	} else {
		txs = fptree.NewTransactions()
	}
	transactions := 0
	var (
		frequent []namepath.Path // per-statement scratch, reused
		items    []int32         // per-transaction scratch, reused
	)
	for _, s := range stmts {
		paths := s.Paths
		if len(paths) > cfg.MaxPathsPerStatement {
			paths = paths[:cfg.MaxPathsPerStatement]
		}
		frequent = frequent[:0]
		for _, p := range paths {
			if freq[p.Key()] > cfg.MinPathCount {
				frequent = append(frequent, p)
			}
		}
		for _, split := range splitPaths(frequent, t, pairs) {
			items = items[:0]
			for _, c := range split.cond {
				items = append(items, intern(c))
			}
			sortItems(items, itemFreq, in)
			deductStart := len(items)
			for _, d := range split.deduct {
				items = append(items, intern(d))
			}
			sortByKey(items[deductStart:], in)
			if len(items) == 0 {
				continue
			}
			transactions++
			if tree != nil {
				tree.Add(items)
			} else {
				txs.Push(items)
			}
		}
	}
	if tree == nil {
		tree = fptree.BuildSharded(txs, workers)
	}
	st := ShardTree{Tree: tree, Transactions: transactions}
	st.Items = make([]namepath.Path, in.Len())
	for i := range st.Items {
		st.Items[i] = in.Path(i)
	}
	return st
}

// MergeShardTrees folds per-shard trees into one: every shard's item ids
// are remapped into a shared interner and its tree is count-merged into
// the accumulator (fptree.Tree.MergeMapped). Because each shard's
// transactions were ordered canonically (BuildShardTree), the merged tree
// equals the tree a single process would build over the concatenated
// statements — shard boundaries and merge order leave no trace.
func MergeShardTrees(shards []ShardTree) ShardTree {
	in := namepath.NewInterner()
	tree := fptree.New()
	total := 0
	for _, sh := range shards {
		if sh.Tree == nil || sh.Tree.Size() == 0 {
			total += sh.Transactions
			continue
		}
		idMap := make([]int32, len(sh.Items))
		for local, p := range sh.Items {
			idMap[local] = int32(in.Intern(p))
		}
		tree.MergeMapped(sh.Tree, func(item int32) int32 { return idMap[item] })
		total += sh.Transactions
	}
	out := ShardTree{Tree: tree, Transactions: total}
	out.Items = make([]namepath.Path, in.Len())
	for i := range out.Items {
		out.Items[i] = in.Path(i)
	}
	return out
}

// Grow runs Algorithm 2 over a (possibly merged) shard tree: it walks the
// FP tree, emits candidate patterns for every transaction-ending node,
// aggregates equal patterns, applies the MinPatternCount support
// threshold, and returns the candidates in ascending key order. The
// output depends only on the tree's canonical form, never on its arena
// layout or item-id assignment.
func Grow(st ShardTree, t pattern.Type, pairs *confusion.PairSet, cfg Config) []*pattern.Pattern {
	deductLen := 1
	if t == pattern.Consistency {
		deductLen = 2
	}
	byKey := make(map[string]*pattern.Pattern)
	st.Tree.Walk(func(n *fptree.Node, stack []int) {
		if !n.IsLast || len(stack) < deductLen {
			return
		}
		deduct := make([]namepath.Path, deductLen)
		for i := 0; i < deductLen; i++ {
			deduct[i] = st.Items[stack[len(stack)-deductLen+i]]
		}
		if !validDeduction(deduct, t, pairs) {
			return
		}
		conds := stack[:len(stack)-deductLen]
		if cfg.MaxConditionPaths > 0 && len(conds) > cfg.MaxConditionPaths {
			conds = conds[len(conds)-cfg.MaxConditionPaths:]
		}
		for _, subset := range combinations(conds, cfg.MaxCombinationsPerNode) {
			cond := make([]namepath.Path, len(subset))
			for i, id := range subset {
				cond[i] = st.Items[id]
			}
			p := &pattern.Pattern{Type: t, Condition: cond, Deduction: deduct, Count: int(n.Count)}
			k := p.Key()
			if prev, ok := byKey[k]; ok {
				prev.Count += int(n.Count)
			} else {
				byKey[k] = p
			}
		}
	})

	var candidates []*pattern.Pattern
	for _, p := range byKey {
		if p.Count >= cfg.MinPatternCount {
			candidates = append(candidates, p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Key() < candidates[j].Key() })
	return candidates
}

// CountPaths is the sharded pass 1 of Algorithm 1: each worker counts
// path occurrences over a contiguous statement range into a private map,
// and the per-shard maps are folded together in shard order. The counts
// of disjoint statement sets merge by plain addition, which is what the
// map/reduce driver's count-reduce step does across corpus shards.
func CountPaths(stmts []*pattern.Statement, workers int) map[string]int {
	shards := parallel.Shards(len(stmts), workers)
	if len(shards) <= 1 {
		freq := make(map[string]int)
		for _, s := range stmts {
			for _, p := range s.Paths {
				freq[p.Key()]++
			}
		}
		return freq
	}
	parts := make([]map[string]int, len(shards))
	parallel.ForEachShard(len(stmts), workers, func(shard, lo, hi int) {
		local := make(map[string]int)
		for _, s := range stmts[lo:hi] {
			for _, p := range s.Paths {
				local[p.Key()]++
			}
		}
		parts[shard] = local
	})
	freq := parts[0]
	for _, part := range parts[1:] {
		for k, n := range part {
			freq[k] += n
		}
	}
	return freq
}

// PruneUncommon implements Algorithm 1 line 9: counts matches and
// satisfactions for every candidate over the dataset and keeps patterns
// whose satisfaction/match ratio is at least minRatio. Match and satisfy
// counts are recorded on the surviving patterns (features 6 and 12).
//
// Candidates are independent of each other, so the counting fans out
// across `workers` goroutines (0 = all CPUs, 1 = serial); each worker
// writes only its own candidate's slot and pattern, and the final filter
// runs serially in candidate order, so output is identical at any degree.
func PruneUncommon(candidates []*pattern.Pattern, stmts []*pattern.Statement,
	minRatio float64, workers int) []*pattern.Pattern {

	for _, p := range candidates {
		p.Key() // warm the identity caches before sharing across workers
	}
	idx := newStmtIndex(stmts)
	type stat struct{ matches, satisfies int }
	stats := make([]stat, len(candidates))
	parallel.ForEach(len(candidates), parallel.Degree(workers), func(i int) {
		p := candidates[i]
		for _, s := range idx.candidates(p) {
			if s.Matches(p) {
				stats[i].matches++
				if s.Satisfied(p) {
					stats[i].satisfies++
				}
			}
		}
	})
	var out []*pattern.Pattern
	for i, p := range candidates {
		matches, satisfies := stats[i].matches, stats[i].satisfies
		if matches == 0 {
			continue
		}
		if float64(satisfies)/float64(matches) < minRatio {
			continue
		}
		p.MatchCount = matches
		p.SatisfyCount = satisfies
		out = append(out, p)
	}
	return out
}

type split struct {
	cond   []namepath.Path
	deduct []namepath.Path
}

// splitPaths enumerates the ways to split a statement's paths into
// condition and deduction (Algorithm 1 line 6). For consistency patterns
// the deduction is any pair of paths with equal end subtokens and distinct
// prefixes (ends replaced by ϵ); for confusing-word patterns it is any
// single path whose end is the correct word of a mined pair.
func splitPaths(paths []namepath.Path, t pattern.Type, pairs *confusion.PairSet) []split {
	var out []split
	switch t {
	case pattern.Consistency:
		for i := 0; i < len(paths); i++ {
			for j := i + 1; j < len(paths); j++ {
				if paths[i].End != paths[j].End || paths[i].Same(paths[j]) {
					continue
				}
				var cond []namepath.Path
				for k, p := range paths {
					if k != i && k != j {
						cond = append(cond, p)
					}
				}
				out = append(out, split{
					cond:   cond,
					deduct: []namepath.Path{paths[i].WithEnd(namepath.Epsilon), paths[j].WithEnd(namepath.Epsilon)},
				})
			}
		}
	case pattern.ConfusingWord:
		if pairs == nil {
			return nil
		}
		for i, p := range paths {
			if !pairs.IsCorrectWord(p.End) {
				continue
			}
			var cond []namepath.Path
			for k, q := range paths {
				if k != i {
					cond = append(cond, q)
				}
			}
			out = append(out, split{cond: cond, deduct: []namepath.Path{p}})
		}
	}
	return out
}

func validDeduction(deduct []namepath.Path, t pattern.Type, pairs *confusion.PairSet) bool {
	switch t {
	case pattern.Consistency:
		return len(deduct) == 2 && deduct[0].Symbolic() && deduct[1].Symbolic()
	case pattern.ConfusingWord:
		return len(deduct) == 1 && !deduct[0].Symbolic() &&
			(pairs == nil || pairs.IsCorrectWord(deduct[0].End))
	}
	return false
}

// sortItems orders condition items by descending dataset frequency — the
// standard FP-tree ordering that maximizes prefix sharing — with ties
// broken by ascending path key. The tie-break is deliberately id-free:
// interner ids depend on which statements a process has seen and in what
// order, while the (frequency, key) order is a property of the dataset
// alone, so every shard of a distributed mine sorts identically. freq is
// the dense per-id frequency table built during interning; keys come
// memoized from the interner's path table, so ties cost a map-free string
// compare.
func sortItems(items []int32, freq []int, in *namepath.Interner) {
	sort.Slice(items, func(i, j int) bool {
		fi, fj := freq[items[i]], freq[items[j]]
		if fi != fj {
			return fi > fj
		}
		return in.Path(int(items[i])).Key() < in.Path(int(items[j])).Key()
	})
}

// sortByKey orders deduction items by ascending path key (canonical and
// id-free, see sortItems). Deductions are one or two items, so this is at
// most a single compare-and-swap.
func sortByKey(items []int32, in *namepath.Interner) {
	if len(items) <= 1 {
		return
	}
	if len(items) == 2 {
		if in.Path(int(items[1])).Key() < in.Path(int(items[0])).Key() {
			items[0], items[1] = items[1], items[0]
		}
		return
	}
	sort.Slice(items, func(i, j int) bool {
		return in.Path(int(items[i])).Key() < in.Path(int(items[j])).Key()
	})
}

// combinations enumerates condition subsets (Algorithm 2 line 7). The full
// set is always emitted first; when the powerset is within maxOut, all
// non-full subsets (including the empty condition) follow.
func combinations(items []int, maxOut int) [][]int {
	full := append([]int(nil), items...)
	out := [][]int{full}
	if maxOut <= 1 || len(items) == 0 {
		return out
	}
	total := 1 << uint(len(items))
	if total > maxOut {
		return out
	}
	for mask := 0; mask < total-1; mask++ { // total-1 == full set, already emitted
		var subset []int
		for i := range items {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, items[i])
			}
		}
		out = append(out, subset)
	}
	return out
}

// stmtIndex is an inverted index from deduction prefix keys to statements,
// so pruneUncommon and violation scans touch only plausible statements.
type stmtIndex struct {
	byPrefix map[string][]*pattern.Statement
}

func newStmtIndex(stmts []*pattern.Statement) *stmtIndex {
	idx := &stmtIndex{byPrefix: make(map[string][]*pattern.Statement)}
	for _, s := range stmts {
		seen := map[string]bool{}
		for _, p := range s.Paths {
			pk := p.PrefixKey()
			if !seen[pk] {
				seen[pk] = true
				idx.byPrefix[pk] = append(idx.byPrefix[pk], s)
			}
		}
	}
	return idx
}

// candidates returns the statements that contain the pattern's first
// deduction prefix (a necessary condition for a match).
func (idx *stmtIndex) candidates(p *pattern.Pattern) []*pattern.Statement {
	if len(p.Deduction) == 0 {
		return nil
	}
	best := idx.byPrefix[p.Deduction[0].PrefixKey()]
	for _, d := range p.Deduction[1:] {
		if alt := idx.byPrefix[d.PrefixKey()]; len(alt) < len(best) {
			best = alt
		}
	}
	return best
}

// Index provides fast candidate-pattern lookup per statement for the
// violation scan at inference time: a pattern can only match a statement
// that contains its deduction prefixes. Building the index assigns every
// pattern a dense rank in ascending Key order and pre-sorts each prefix
// bucket by that rank, so Candidates returns a deterministically ordered
// list without any string comparisons on the scan's per-statement path.
// A built Index is immutable and safe for concurrent readers.
type Index struct {
	byPrefix map[string][]rankedPattern
}

type rankedPattern struct {
	rank int
	pat  *pattern.Pattern
}

// NewIndex indexes patterns by their first deduction prefix key. It also
// warms every pattern's Key cache, so the patterns can subsequently be
// shared across scan workers without synchronization.
func NewIndex(patterns []*pattern.Pattern) *Index {
	ordered := make([]*pattern.Pattern, len(patterns))
	copy(ordered, patterns)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Key() < ordered[j].Key() })
	idx := &Index{byPrefix: make(map[string][]rankedPattern)}
	for rank, p := range ordered {
		if len(p.Deduction) == 0 {
			continue
		}
		k := p.Deduction[0].PrefixKey()
		idx.byPrefix[k] = append(idx.byPrefix[k], rankedPattern{rank: rank, pat: p})
	}
	// Buckets are filled in ascending rank order already (the loop runs
	// over the rank-sorted slice), so each bucket is sorted by construction.
	return idx
}

// Candidates returns the patterns whose deduction prefix occurs in the
// statement, without duplicates, in ascending pattern-Key order. Each
// pattern lives in exactly one prefix bucket, so deduplication only has to
// skip repeated statement prefixes; the final ordering is a cheap integer
// sort over the pre-ranked buckets.
func (idx *Index) Candidates(s *pattern.Statement) []*pattern.Pattern {
	var ranked []rankedPattern
	prefixSeen := map[string]bool{}
	for _, p := range s.Paths {
		pk := p.PrefixKey()
		if prefixSeen[pk] {
			continue
		}
		prefixSeen[pk] = true
		ranked = append(ranked, idx.byPrefix[pk]...)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].rank < ranked[j].rank })
	out := make([]*pattern.Pattern, len(ranked))
	for i, rp := range ranked {
		out[i] = rp.pat
	}
	return out
}
