package mining

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"namer/internal/confusion"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// Invariant: every mined pattern satisfies the pruning contract on the
// mining dataset itself — it matches at least once, its satisfaction
// ratio is >= the configured threshold, its recorded stats equal a direct
// recount, and its support meets MinPatternCount.
func TestMinedPatternInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	pairs.Add("xrange", "range")

	// A randomized corpus of statements over a few statement shapes.
	var stmts []*pattern.Statement
	words := []string{"Equal", "Equal", "Equal", "True", "range", "range", "xrange"}
	for i := 0; i < 400; i++ {
		w := words[rng.Intn(len(words))]
		paths := []namepath.Path{
			path("NameLoad", 0, "self"),
			path("Attr", rng.Intn(2), "assert"),
			path("Word", 0, w),
			path("Num", 0, "NUM"),
		}
		if rng.Intn(3) == 0 {
			paths = paths[1:] // drop the self path sometimes
		}
		stmts = append(stmts, pattern.NewStatement(paths))
	}

	cfg := Config{
		MinPathCount:           2,
		MaxPathsPerStatement:   10,
		MaxConditionPaths:      10,
		MinPatternCount:        10,
		MinSatisfactionRatio:   0.6,
		MaxCombinationsPerNode: 16,
	}
	for _, typ := range []pattern.Type{pattern.ConfusingWord, pattern.Consistency} {
		mined := MinePatterns(stmts, typ, pairs, cfg)
		for _, p := range mined {
			if !p.Valid() {
				t.Errorf("%v: invalid pattern mined: %s", typ, p)
			}
			if p.Count < cfg.MinPatternCount {
				t.Errorf("%v: support %d below threshold", typ, p.Count)
			}
			// Recount matches/satisfactions directly.
			matches, satisfies := 0, 0
			for _, s := range stmts {
				if s.Matches(p) {
					matches++
					if s.Satisfied(p) {
						satisfies++
					}
				}
			}
			if matches == 0 {
				t.Errorf("%v: mined pattern never matches: %s", typ, p)
				continue
			}
			if matches != p.MatchCount || satisfies != p.SatisfyCount {
				t.Errorf("%v: recorded stats %d/%d, recount %d/%d",
					typ, p.SatisfyCount, p.MatchCount, satisfies, matches)
			}
			if ratio := float64(satisfies) / float64(matches); ratio < cfg.MinSatisfactionRatio {
				t.Errorf("%v: satisfaction ratio %.2f below %.2f for %s",
					typ, ratio, cfg.MinSatisfactionRatio, p)
			}
		}
	}
}

// Invariant: the parallel mining path (sharded pass-1 counting, fanned-out
// candidate pruning) produces byte-identical patterns, in identical order,
// to the serial reference path, for both pattern types.
func TestParallelMiningMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")

	// ~90% of statements use the correct word and consistent field names,
	// so both pattern types survive the 0.6 satisfaction threshold.
	var stmts []*pattern.Statement
	for i := 0; i < 500; i++ {
		w := "Equal"
		if rng.Intn(10) == 0 {
			w = "True"
		}
		name := fmt.Sprintf("field%d", rng.Intn(5))
		value := name
		if rng.Intn(10) == 0 {
			value = "mismatch"
		}
		paths := []namepath.Path{
			path("NameLoad", 0, "self"),
			path("Attr", 0, name),
			path("Value", 0, value),
			path("Word", 0, w),
		}
		if rng.Intn(4) == 0 {
			paths = paths[1:]
		}
		stmts = append(stmts, pattern.NewStatement(paths))
	}

	cfg := Config{
		MinPathCount:           2,
		MaxPathsPerStatement:   10,
		MaxConditionPaths:      10,
		MinPatternCount:        10,
		MinSatisfactionRatio:   0.6,
		MaxCombinationsPerNode: 16,
	}
	for _, typ := range []pattern.Type{pattern.ConfusingWord, pattern.Consistency} {
		serialCfg := cfg
		serialCfg.Parallelism = 1
		var serialNodes, serialTxs int
		serialCfg.OnTreeBuilt = func(nodes, txs int) { serialNodes, serialTxs = nodes, txs }
		serial := MinePatterns(stmts, typ, pairs, serialCfg)
		if len(serial) == 0 {
			t.Fatalf("%v: no patterns mined, nothing compared", typ)
		}
		for _, workers := range []int{2, 3, 8, runtime.NumCPU()} {
			parallelCfg := cfg
			parallelCfg.Parallelism = workers
			var parNodes, parTxs int
			parallelCfg.OnTreeBuilt = func(nodes, txs int) { parNodes, parTxs = nodes, txs }
			par := MinePatterns(stmts, typ, pairs, parallelCfg)
			if len(serial) != len(par) {
				t.Fatalf("%v/p=%d: pattern counts differ: serial %d, parallel %d",
					typ, workers, len(serial), len(par))
			}
			if parNodes != serialNodes || parTxs != serialTxs {
				t.Errorf("%v/p=%d: tree shape differs: serial %d nodes/%d txs, parallel %d/%d",
					typ, workers, serialNodes, serialTxs, parNodes, parTxs)
			}
			for i := range serial {
				s, p := serial[i], par[i]
				if s.Key() != p.Key() {
					t.Errorf("%v/p=%d: pattern %d keys differ:\n serial   %s\n parallel %s",
						typ, workers, i, s.Key(), p.Key())
				}
				if s.Count != p.Count || s.MatchCount != p.MatchCount || s.SatisfyCount != p.SatisfyCount {
					t.Errorf("%v/p=%d: pattern %d stats differ: serial %d/%d/%d, parallel %d/%d/%d",
						typ, workers, i, s.Count, s.MatchCount, s.SatisfyCount, p.Count, p.MatchCount, p.SatisfyCount)
				}
			}
		}
	}
}

// Invariant: mining is deterministic — same statements, same output.
func TestMiningDeterministic(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	var stmts []*pattern.Statement
	for i := 0; i < 60; i++ {
		w := "Equal"
		if i%10 == 0 {
			w = "True"
		}
		stmts = append(stmts, assertStmt(w))
	}
	a := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	b := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	if len(a) != len(b) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Count != b[i].Count {
			t.Fatalf("pattern %d differs across runs", i)
		}
	}
}
