package mining

import (
	"math/rand"
	"testing"

	"namer/internal/confusion"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// Invariant: every mined pattern satisfies the pruning contract on the
// mining dataset itself — it matches at least once, its satisfaction
// ratio is >= the configured threshold, its recorded stats equal a direct
// recount, and its support meets MinPatternCount.
func TestMinedPatternInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	pairs.Add("xrange", "range")

	// A randomized corpus of statements over a few statement shapes.
	var stmts []*pattern.Statement
	words := []string{"Equal", "Equal", "Equal", "True", "range", "range", "xrange"}
	for i := 0; i < 400; i++ {
		w := words[rng.Intn(len(words))]
		paths := []namepath.Path{
			path("NameLoad", 0, "self"),
			path("Attr", rng.Intn(2), "assert"),
			path("Word", 0, w),
			path("Num", 0, "NUM"),
		}
		if rng.Intn(3) == 0 {
			paths = paths[1:] // drop the self path sometimes
		}
		stmts = append(stmts, pattern.NewStatement(paths))
	}

	cfg := Config{
		MinPathCount:           2,
		MaxPathsPerStatement:   10,
		MaxConditionPaths:      10,
		MinPatternCount:        10,
		MinSatisfactionRatio:   0.6,
		MaxCombinationsPerNode: 16,
	}
	for _, typ := range []pattern.Type{pattern.ConfusingWord, pattern.Consistency} {
		mined := MinePatterns(stmts, typ, pairs, cfg)
		for _, p := range mined {
			if !p.Valid() {
				t.Errorf("%v: invalid pattern mined: %s", typ, p)
			}
			if p.Count < cfg.MinPatternCount {
				t.Errorf("%v: support %d below threshold", typ, p.Count)
			}
			// Recount matches/satisfactions directly.
			matches, satisfies := 0, 0
			for _, s := range stmts {
				if s.Matches(p) {
					matches++
					if s.Satisfied(p) {
						satisfies++
					}
				}
			}
			if matches == 0 {
				t.Errorf("%v: mined pattern never matches: %s", typ, p)
				continue
			}
			if matches != p.MatchCount || satisfies != p.SatisfyCount {
				t.Errorf("%v: recorded stats %d/%d, recount %d/%d",
					typ, p.SatisfyCount, p.MatchCount, satisfies, matches)
			}
			if ratio := float64(satisfies) / float64(matches); ratio < cfg.MinSatisfactionRatio {
				t.Errorf("%v: satisfaction ratio %.2f below %.2f for %s",
					typ, ratio, cfg.MinSatisfactionRatio, p)
			}
		}
	}
}

// Invariant: mining is deterministic — same statements, same output.
func TestMiningDeterministic(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	var stmts []*pattern.Statement
	for i := 0; i < 60; i++ {
		w := "Equal"
		if i%10 == 0 {
			w = "True"
		}
		stmts = append(stmts, assertStmt(w))
	}
	a := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	b := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	if len(a) != len(b) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Count != b[i].Count {
			t.Fatalf("pattern %d differs across runs", i)
		}
	}
}
