package mining

import (
	"fmt"
	"testing"

	"namer/internal/confusion"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// path builds a short synthetic name path.
func path(prefix string, idx int, end string) namepath.Path {
	return namepath.Path{
		Prefix: []namepath.Elem{{Value: "Call", Index: 0}, {Value: prefix, Index: idx}},
		End:    end,
	}
}

// assertStmt builds the paths of a statement shaped like
// self.assert<Word>(x, NUM).
func assertStmt(word string) *pattern.Statement {
	return pattern.NewStatement([]namepath.Path{
		path("NameLoad", 0, "self"),
		path("Attr", 0, "assert"),
		path("Attr", 1, word),
		path("Num", 0, "NUM"),
	})
}

func confusingConfig() Config {
	return Config{
		MinPathCount:           0,
		MaxPathsPerStatement:   10,
		MaxConditionPaths:      10,
		MinPatternCount:        10,
		MinSatisfactionRatio:   0.8,
		MaxCombinationsPerNode: 16,
	}
}

func TestMineConfusingWordPattern(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")

	var stmts []*pattern.Statement
	for i := 0; i < 50; i++ {
		stmts = append(stmts, assertStmt("Equal"))
	}
	for i := 0; i < 5; i++ {
		stmts = append(stmts, assertStmt("True"))
	}
	patterns := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	if len(patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	// Some mined pattern must be violated by the buggy statements and
	// satisfied by the good ones.
	bad := assertStmt("True")
	good := assertStmt("Equal")
	foundViolating := false
	for _, p := range patterns {
		if p.Type != pattern.ConfusingWord || !p.Valid() {
			t.Errorf("invalid pattern mined: %s", p)
		}
		if bad.Violated(p) && good.Satisfied(p) {
			foundViolating = true
			v, ok := bad.Explain(p)
			if !ok || v.Original != "True" || v.Suggested != "Equal" {
				t.Errorf("fix = %+v", v)
			}
		}
	}
	if !foundViolating {
		t.Error("no mined pattern distinguishes assertTrue from assertEqual")
	}
	// Match statistics recorded.
	for _, p := range patterns {
		if p.MatchCount == 0 || p.SatisfyCount == 0 {
			t.Errorf("pattern missing stats: %+v", p)
		}
	}
}

func TestMineConsistencyPattern(t *testing.T) {
	mkStmt := func(attr, val string) *pattern.Statement {
		return pattern.NewStatement([]namepath.Path{
			path("NameLoad", 0, "self"),
			path("Attr", 0, attr),
			path("Value", 0, val),
		})
	}
	var stmts []*pattern.Statement
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("field%d", i%7)
		stmts = append(stmts, mkStmt(name, name))
	}
	for i := 0; i < 4; i++ {
		stmts = append(stmts, mkStmt("help", "docstring"))
	}
	patterns := MinePatterns(stmts, pattern.Consistency, nil, confusingConfig())
	if len(patterns) == 0 {
		t.Fatal("no consistency patterns mined")
	}
	bad := mkStmt("help", "docstring")
	good := mkStmt("name", "name")
	ok := false
	for _, p := range patterns {
		if !p.Valid() {
			t.Errorf("invalid pattern: %s", p)
		}
		if bad.Violated(p) && good.Satisfied(p) {
			ok = true
		}
	}
	if !ok {
		t.Error("no mined consistency pattern flags self.help = docstring")
	}
}

func TestMinPatternCountPrunes(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	var stmts []*pattern.Statement
	for i := 0; i < 20; i++ {
		stmts = append(stmts, assertStmt("Equal"))
	}
	cfg := confusingConfig()
	cfg.MinPatternCount = 1000
	if got := MinePatterns(stmts, pattern.ConfusingWord, pairs, cfg); len(got) != 0 {
		t.Errorf("threshold should prune everything, got %d patterns", len(got))
	}
}

func TestSatisfactionRatioPrunes(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	// Half the statements use True: ratio 0.5 < 0.8 for the deduction.
	var stmts []*pattern.Statement
	for i := 0; i < 30; i++ {
		stmts = append(stmts, assertStmt("Equal"))
		stmts = append(stmts, assertStmt("True"))
	}
	patterns := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	bad := assertStmt("True")
	for _, p := range patterns {
		if bad.Violated(p) {
			t.Errorf("low-consensus pattern survived pruning: %s", p)
		}
	}
}

func TestMinPathCountFiltersRarePaths(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	var stmts []*pattern.Statement
	for i := 0; i < 30; i++ {
		// Each statement carries one globally-unique noise path.
		paths := []namepath.Path{
			path("NameLoad", 0, "self"),
			path("Attr", 1, "Equal"),
			path("Noise", i, fmt.Sprintf("unique%d", i)),
		}
		stmts = append(stmts, pattern.NewStatement(paths))
	}
	cfg := confusingConfig()
	cfg.MinPathCount = 10
	patterns := MinePatterns(stmts, pattern.ConfusingWord, pairs, cfg)
	for _, p := range patterns {
		for _, c := range p.Condition {
			if c.Prefix[1].Value == "Noise" {
				t.Errorf("rare path survived the frequency filter: %s", p)
			}
		}
	}
	if len(patterns) == 0 {
		t.Error("frequent paths should still yield patterns")
	}
}

func TestCombinations(t *testing.T) {
	items := []int{1, 2, 3}
	full := combinations(items, 1)
	if len(full) != 1 || len(full[0]) != 3 {
		t.Errorf("maxOut=1 should emit only the full set, got %v", full)
	}
	all := combinations(items, 16)
	if len(all) != 8 { // 2^3 subsets, full emitted once
		t.Errorf("got %d subsets, want 8", len(all))
	}
	// First entry is the full set.
	if len(all[0]) != 3 {
		t.Errorf("first subset should be full, got %v", all[0])
	}
	capped := combinations([]int{1, 2, 3, 4, 5}, 16)
	if len(capped) != 1 {
		t.Errorf("powerset over cap should fall back to full only, got %d", len(capped))
	}
	empty := combinations(nil, 16)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Errorf("empty items: %v", empty)
	}
}

func TestIndexCandidates(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")
	var stmts []*pattern.Statement
	for i := 0; i < 30; i++ {
		stmts = append(stmts, assertStmt("Equal"))
	}
	patterns := MinePatterns(stmts, pattern.ConfusingWord, pairs, confusingConfig())
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	idx := NewIndex(patterns)
	s := assertStmt("True")
	cands := idx.Candidates(s)
	if len(cands) == 0 {
		t.Fatal("no candidate patterns for a matching statement")
	}
	// A statement with entirely different prefixes gets no candidates.
	other := pattern.NewStatement([]namepath.Path{path("Other", 9, "zzz")})
	if got := idx.Candidates(other); len(got) != 0 {
		t.Errorf("unrelated statement got %d candidates", len(got))
	}
	// No duplicates.
	seen := map[*pattern.Pattern]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Error("duplicate candidate")
		}
		seen[c] = true
	}
}

func TestSplitPathsConsistency(t *testing.T) {
	paths := []namepath.Path{
		path("A", 0, "x"),
		path("B", 0, "x"),
		path("C", 0, "y"),
	}
	splits := splitPaths(paths, pattern.Consistency, nil)
	if len(splits) != 1 {
		t.Fatalf("splits = %d, want 1 (only the x/x pair)", len(splits))
	}
	sp := splits[0]
	if len(sp.deduct) != 2 || !sp.deduct[0].Symbolic() || !sp.deduct[1].Symbolic() {
		t.Errorf("deduction = %v", sp.deduct)
	}
	if len(sp.cond) != 1 || sp.cond[0].End != "y" {
		t.Errorf("condition = %v", sp.cond)
	}
}

func TestSplitPathsConfusing(t *testing.T) {
	pairs := confusion.NewPairSet()
	pairs.Add("a", "x")
	pairs.Add("b", "y")
	paths := []namepath.Path{
		path("A", 0, "x"),
		path("B", 0, "y"),
		path("C", 0, "z"),
	}
	splits := splitPaths(paths, pattern.ConfusingWord, pairs)
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2 (x and y are correct words)", len(splits))
	}
	for _, sp := range splits {
		if len(sp.deduct) != 1 || len(sp.cond) != 2 {
			t.Errorf("split shape: %v", sp)
		}
	}
	if got := splitPaths(paths, pattern.ConfusingWord, nil); got != nil {
		t.Error("nil pair set must yield no splits")
	}
}
