package pattern

import (
	"encoding/json"
	"fmt"

	"namer/internal/namepath"
)

// patternJSON is the serialized form of a Pattern; name paths use the
// paper's textual notation.
type patternJSON struct {
	Type         string   `json:"type"`
	Condition    []string `json:"condition"`
	Deduction    []string `json:"deduction"`
	Count        int      `json:"count"`
	MatchCount   int      `json:"match_count"`
	SatisfyCount int      `json:"satisfy_count"`
}

// MarshalJSON serializes the pattern.
func (p *Pattern) MarshalJSON() ([]byte, error) {
	out := patternJSON{
		Type:         p.Type.String(),
		Count:        p.Count,
		MatchCount:   p.MatchCount,
		SatisfyCount: p.SatisfyCount,
	}
	for _, c := range p.Condition {
		out.Condition = append(out.Condition, c.String())
	}
	for _, d := range p.Deduction {
		out.Deduction = append(out.Deduction, d.String())
	}
	return json.Marshal(out)
}

// UnmarshalJSON deserializes the pattern.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var in patternJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	switch in.Type {
	case Consistency.String():
		p.Type = Consistency
	case ConfusingWord.String():
		p.Type = ConfusingWord
	default:
		return fmt.Errorf("pattern: unknown type %q", in.Type)
	}
	p.Condition, p.Deduction = nil, nil
	for _, s := range in.Condition {
		np, ok := namepath.ParsePath(s)
		if !ok {
			return fmt.Errorf("pattern: bad condition path %q", s)
		}
		p.Condition = append(p.Condition, np)
	}
	for _, s := range in.Deduction {
		np, ok := namepath.ParsePath(s)
		if !ok {
			return fmt.Errorf("pattern: bad deduction path %q", s)
		}
		p.Deduction = append(p.Deduction, np)
	}
	p.Count = in.Count
	p.MatchCount = in.MatchCount
	p.SatisfyCount = in.SatisfyCount
	if !p.Valid() {
		return fmt.Errorf("pattern: deserialized pattern is invalid")
	}
	p.key = ""
	p.Key() // warm the identity cache before the pattern is shared
	return nil
}
