package pattern

import (
	"encoding/json"
	"testing"

	"namer/internal/namepath"
)

func TestPatternJSONRoundTrip(t *testing.T) {
	cond, deduct, stmt := fig2Paths()
	p := &Pattern{
		Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct},
		Count: 42, MatchCount: 100, SatisfyCount: 90,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Pattern
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Key() != p.Key() {
		t.Errorf("key changed: %q vs %q", q.Key(), p.Key())
	}
	if q.Count != 42 || q.MatchCount != 100 || q.SatisfyCount != 90 {
		t.Errorf("counts lost: %+v", q)
	}
	// Semantics preserved.
	if !q.Violated(stmt) {
		t.Error("deserialized pattern lost its violation semantics")
	}
}

func TestConsistencyPatternJSONRoundTrip(t *testing.T) {
	mk := func(s string) namepath.Path {
		p, _ := namepath.ParsePath(s)
		return p
	}
	p := &Pattern{
		Type:      Consistency,
		Condition: []namepath.Path{mk("Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 self")},
		Deduction: []namepath.Path{
			mk("Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 ϵ"),
			mk("Assign 1 NameLoad 0 NumST(1) 0 ϵ"),
		},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Pattern
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Valid() || !q.Deduction[0].Symbolic() {
		t.Error("symbolic deduction lost in round trip")
	}
}

func TestPatternUnmarshalErrors(t *testing.T) {
	bad := []string{
		`{"type":"alien","condition":[],"deduction":[]}`,
		`{"type":"confusing-word","condition":["not a path"],"deduction":["A 0 x"]}`,
		`{"type":"confusing-word","condition":[],"deduction":["A notanumber x"]}`,
		`{"type":"confusing-word","condition":[],"deduction":[]}`, // invalid shape
		`[1,2,3]`,
	}
	for _, s := range bad {
		var p Pattern
		if err := json.Unmarshal([]byte(s), &p); err == nil {
			t.Errorf("Unmarshal(%s) should fail", s)
		}
	}
}

func TestPatternString(t *testing.T) {
	cond, deduct, _ := fig2Paths()
	p := &Pattern{Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct}}
	s := p.String()
	if len(s) == 0 || s[:10] != "Condition:" {
		t.Errorf("String() = %q", s)
	}
}
