package pattern

import "namer/internal/namepath"

// Statement is an indexed view of a statement's name paths that answers
// Matches/Satisfied/Violated queries in O(|C| + |D|) set lookups instead of
// scanning all paths. Mining and matching over the whole corpus run
// through this representation.
type Statement struct {
	Paths []namepath.Path
	full  map[string]bool     // full path keys present
	ends  map[string][]string // prefix key -> end subtokens (in order)
}

// NewStatement indexes a statement's (concrete) name paths.
func NewStatement(paths []namepath.Path) *Statement {
	s := &Statement{
		Paths: paths,
		full:  make(map[string]bool, len(paths)),
		ends:  make(map[string][]string, len(paths)),
	}
	for _, p := range paths {
		s.full[p.Key()] = true
		pk := p.PrefixKey()
		s.ends[pk] = append(s.ends[pk], p.End)
	}
	return s
}

// Matches mirrors Pattern.Matches.
func (s *Statement) Matches(p *Pattern) bool {
	for _, c := range p.Condition {
		if c.Symbolic() {
			if _, ok := s.ends[c.PrefixKey()]; !ok {
				return false
			}
			continue
		}
		if !s.full[c.Key()] {
			return false
		}
	}
	for _, d := range p.Deduction {
		if _, ok := s.ends[d.PrefixKey()]; !ok {
			return false
		}
	}
	return true
}

// Satisfied mirrors Pattern.Satisfied.
func (s *Statement) Satisfied(p *Pattern) bool {
	if !s.Matches(p) {
		return false
	}
	switch p.Type {
	case Consistency:
		e1 := s.ends[p.Deduction[0].PrefixKey()]
		e2 := s.ends[p.Deduction[1].PrefixKey()]
		for _, a := range e1 {
			for _, b := range e2 {
				if a != b {
					return false
				}
			}
		}
		return true
	case ConfusingWord:
		d := p.Deduction[0]
		for _, e := range s.ends[d.PrefixKey()] {
			if e != d.End {
				return false
			}
		}
		return true
	}
	return false
}

// Violated mirrors Pattern.Violated.
func (s *Statement) Violated(p *Pattern) bool {
	return s.Matches(p) && !s.Satisfied(p)
}

// Explain mirrors Pattern.Explain.
func (s *Statement) Explain(p *Pattern) (Violation, bool) {
	if !s.Violated(p) {
		return Violation{}, false
	}
	return p.Explain(s.Paths)
}
