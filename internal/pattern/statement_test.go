package pattern

import (
	"testing"
	"testing/quick"

	"namer/internal/namepath"
)

// genPaths derives a deterministic small path set from fuzz bytes.
func genPaths(data []uint8) []namepath.Path {
	var out []namepath.Path
	for i := 0; i+2 < len(data); i += 3 {
		p := namepath.Path{
			Prefix: []namepath.Elem{
				{Value: string(rune('A' + data[i]%3)), Index: int(data[i+1] % 2)},
			},
			End: string(rune('a' + data[i+2]%4)),
		}
		out = append(out, p)
	}
	return out
}

// Property: the indexed Statement agrees with the naive Pattern methods on
// Matches, Satisfied, and Violated for both pattern types.
func TestStatementAgreesWithPattern(t *testing.T) {
	f := func(stmtData, condData []uint8, dedEnd uint8, consistency bool) bool {
		paths := genPaths(stmtData)
		if len(paths) == 0 {
			return true
		}
		cond := genPaths(condData)
		if len(cond) > 2 {
			cond = cond[:2]
		}
		var p *Pattern
		if consistency {
			if len(paths) < 2 {
				return true
			}
			p = &Pattern{
				Type:      Consistency,
				Condition: cond,
				Deduction: []namepath.Path{
					paths[0].WithEnd(namepath.Epsilon),
					paths[len(paths)-1].WithEnd(namepath.Epsilon),
				},
			}
		} else {
			p = &Pattern{
				Type:      ConfusingWord,
				Condition: cond,
				Deduction: []namepath.Path{paths[0].WithEnd(string(rune('a' + dedEnd%4)))},
			}
		}
		s := NewStatement(paths)
		return s.Matches(p) == p.Matches(paths) &&
			s.Satisfied(p) == p.Satisfied(paths) &&
			s.Violated(p) == p.Violated(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatementExplainMatchesPattern(t *testing.T) {
	mk := func(s string) namepath.Path {
		p, _ := namepath.ParsePath(s)
		return p
	}
	p := &Pattern{
		Type:      ConfusingWord,
		Condition: []namepath.Path{mk("Call 0 NameLoad 0 NumST(1) 0 self")},
		Deduction: []namepath.Path{mk("Call 1 Attr 0 NumST(1) 0 range")},
	}
	paths := []namepath.Path{
		mk("Call 0 NameLoad 0 NumST(1) 0 self"),
		mk("Call 1 Attr 0 NumST(1) 0 xrange"),
	}
	s := NewStatement(paths)
	v, ok := s.Explain(p)
	if !ok || v.Original != "xrange" || v.Suggested != "range" {
		t.Errorf("Explain = %+v, %v", v, ok)
	}
}
