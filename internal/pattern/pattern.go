// Package pattern implements name patterns (Definitions 3.6–3.9): rules of
// the form condition ⇒ deduction over name paths that capture common naming
// idioms. Two pattern types are supported, as in the paper: consistency
// patterns (two symbolic deduction paths whose end subtokens must agree)
// and confusing-word patterns (a single concrete deduction path whose end
// must be the correct word of a mined confusing word pair).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"namer/internal/namepath"
)

// Type discriminates the two pattern kinds of §3.2.
type Type uint8

// Pattern types.
const (
	Consistency Type = iota
	ConfusingWord
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Consistency:
		return "consistency"
	case ConfusingWord:
		return "confusing-word"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Pattern is a name pattern p = (C, D).
type Pattern struct {
	Type      Type
	Condition []namepath.Path
	Deduction []namepath.Path

	// Support statistics filled by the miner: how many statements in the
	// mining dataset matched and satisfied the pattern, and the raw
	// FP-tree count. These back features 6, 9 and 12 of Table 1.
	Count         int
	MatchCount    int
	SatisfyCount  int
	ViolationHits int

	// key caches the canonical identity string. It is filled lazily by
	// Key(); concurrent pipeline stages warm it from a single goroutine
	// first (mining.NewIndex and PruneUncommon do this), after which reads
	// are race-free.
	key string
}

// Key returns a canonical identity string for the pattern. The first call
// computes and caches it; call Key once from a single goroutine before
// sharing the pattern across workers.
func (p *Pattern) Key() string {
	if p.key == "" {
		p.key = p.computeKey()
	}
	return p.key
}

func (p *Pattern) computeKey() string {
	var parts []string
	for _, c := range p.Condition {
		parts = append(parts, "C:"+c.Key())
	}
	sort.Strings(parts)
	var dparts []string
	for _, d := range p.Deduction {
		dparts = append(dparts, "D:"+d.Key())
	}
	sort.Strings(dparts)
	return p.Type.String() + "|" + strings.Join(append(parts, dparts...), "|")
}

// String renders the pattern in the paper's Condition/Deduction layout.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("Condition:\n")
	for _, c := range p.Condition {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	b.WriteString("Deduction:\n")
	for _, d := range p.Deduction {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Valid reports whether the pattern is well-formed for its type.
func (p *Pattern) Valid() bool {
	switch p.Type {
	case Consistency:
		if len(p.Deduction) != 2 {
			return false
		}
		return p.Deduction[0].Symbolic() && p.Deduction[1].Symbolic()
	case ConfusingWord:
		return len(p.Deduction) == 1 && !p.Deduction[0].Symbolic()
	}
	return false
}

// Matches implements the match relation of Definition 3.6: every condition
// path equals (=) some statement path, and every deduction path's prefix
// appears (~) among the statement paths.
func (p *Pattern) Matches(a []namepath.Path) bool {
	for _, c := range p.Condition {
		found := false
		for _, x := range a {
			if c.Eq(x) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, d := range p.Deduction {
		found := false
		for _, x := range a {
			if d.Same(x) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Satisfied implements the satisfaction relations of Definitions 3.7 and
// 3.9 for the two pattern types.
func (p *Pattern) Satisfied(a []namepath.Path) bool {
	if !p.Matches(a) {
		return false
	}
	switch p.Type {
	case Consistency:
		d1, d2 := p.Deduction[0], p.Deduction[1]
		for _, a1 := range a {
			if !d1.Same(a1) {
				continue
			}
			for _, a2 := range a {
				if d2.Same(a2) && a1.End != a2.End {
					return false
				}
			}
		}
		return true
	case ConfusingWord:
		d := p.Deduction[0]
		for _, x := range a {
			if d.Same(x) && x.End != d.End {
				return false
			}
		}
		return true
	}
	return false
}

// Violated reports whether the statement matches but does not satisfy the
// pattern (Definitions 3.7 and 3.9).
func (p *Pattern) Violated(a []namepath.Path) bool {
	return p.Matches(a) && !p.Satisfied(a)
}

// Violation describes one violated pattern occurrence: the offending path,
// the original end subtoken, and the suggested replacement that would make
// the statement satisfy the pattern.
type Violation struct {
	Pattern   *Pattern
	Path      namepath.Path
	Original  string
	Suggested string
}

// Explain returns the violation details for a statement that violates p,
// or ok=false if the statement does not violate p. For confusing-word
// patterns the suggestion is the deduction's correct word; for consistency
// patterns the suggestion is the end subtoken of the other deduction path
// (the majority end when several paths share the prefix).
func (p *Pattern) Explain(a []namepath.Path) (Violation, bool) {
	if !p.Violated(a) {
		return Violation{}, false
	}
	switch p.Type {
	case ConfusingWord:
		d := p.Deduction[0]
		for _, x := range a {
			if d.Same(x) && x.End != d.End {
				return Violation{Pattern: p, Path: x, Original: x.End, Suggested: d.End}, true
			}
		}
	case Consistency:
		d1, d2 := p.Deduction[0], p.Deduction[1]
		for _, a1 := range a {
			if !d1.Same(a1) {
				continue
			}
			for _, a2 := range a {
				if d2.Same(a2) && a1.End != a2.End {
					// Report the second path as the offender, suggesting
					// the first path's end (the paper fixes the statement
					// to satisfy the pattern; either direction works, the
					// classifier sees both via its features).
					return Violation{Pattern: p, Path: a2, Original: a2.End, Suggested: a1.End}, true
				}
			}
		}
	}
	return Violation{}, false
}
