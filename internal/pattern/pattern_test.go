package pattern

import (
	"testing"

	"namer/internal/namepath"
)

// Paths for the Fig. 2(e) confusing-word pattern.
func fig2Paths() (cond []namepath.Path, deduct namepath.Path, stmt []namepath.Path) {
	mk := func(s string) namepath.Path {
		p, ok := namepath.ParsePath(s)
		if !ok {
			panic("bad path " + s)
		}
		return p
	}
	cond = []namepath.Path{
		mk("NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self"),
		mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert"),
		mk("NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM"),
	}
	deduct = mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 Equal")
	stmt = []namepath.Path{
		mk("NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self"),
		mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert"),
		mk("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True"),
		mk("NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM"),
	}
	return cond, deduct, stmt
}

func TestFigure2PatternViolation(t *testing.T) {
	cond, deduct, stmt := fig2Paths()
	p := &Pattern{Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct}}
	if !p.Valid() {
		t.Fatal("pattern should be valid")
	}
	if !p.Matches(stmt) {
		t.Fatal("statement should match the pattern")
	}
	if p.Satisfied(stmt) {
		t.Fatal("statement should not satisfy the pattern")
	}
	if !p.Violated(stmt) {
		t.Fatal("statement should violate the pattern")
	}
	v, ok := p.Explain(stmt)
	if !ok {
		t.Fatal("Explain should produce a violation")
	}
	if v.Original != "True" || v.Suggested != "Equal" {
		t.Errorf("fix = %s -> %s, want True -> Equal", v.Original, v.Suggested)
	}
}

func TestFigure2PatternSatisfaction(t *testing.T) {
	cond, deduct, stmt := fig2Paths()
	p := &Pattern{Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct}}
	// Fix the statement: True -> Equal.
	fixed := make([]namepath.Path, len(stmt))
	copy(fixed, stmt)
	fixed[2] = fixed[2].WithEnd("Equal")
	if !p.Satisfied(fixed) {
		t.Error("fixed statement should satisfy the pattern")
	}
	if p.Violated(fixed) {
		t.Error("fixed statement should not violate the pattern")
	}
}

func TestNoMatchWhenConditionMissing(t *testing.T) {
	cond, deduct, stmt := fig2Paths()
	p := &Pattern{Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct}}
	// Remove the NUM argument path: condition no longer matches.
	short := stmt[:3]
	if p.Matches(short) {
		t.Error("pattern should not match without the NUM path")
	}
	if p.Violated(short) {
		t.Error("no match implies no violation")
	}
}

func TestConsistencyPattern(t *testing.T) {
	mk := func(s string) namepath.Path {
		p, _ := namepath.ParsePath(s)
		return p
	}
	// Example 3.8: self.<name1> = <name2> requires name1 == name2.
	p := &Pattern{
		Type: Consistency,
		Condition: []namepath.Path{
			mk("Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 self"),
		},
		Deduction: []namepath.Path{
			mk("Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 ϵ"),
			mk("Assign 1 NameLoad 0 NumST(1) 0 ϵ"),
		},
	}
	if !p.Valid() {
		t.Fatal("consistency pattern should be valid")
	}
	good := []namepath.Path{
		mk("Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 self"),
		mk("Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 name"),
		mk("Assign 1 NameLoad 0 NumST(1) 0 name"),
	}
	bad := []namepath.Path{
		mk("Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 self"),
		mk("Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 help"),
		mk("Assign 1 NameLoad 0 NumST(1) 0 docstring"),
	}
	if !p.Satisfied(good) {
		t.Error("self.name = name should satisfy")
	}
	if !p.Violated(bad) {
		t.Error("self.help = docstring should violate")
	}
	v, ok := p.Explain(bad)
	if !ok {
		t.Fatal("Explain failed")
	}
	if v.Original == v.Suggested {
		t.Error("suggestion must differ from the original")
	}
	// One of the two directions: help->docstring or docstring->help.
	pair := v.Original + "->" + v.Suggested
	if pair != "docstring->help" && pair != "help->docstring" {
		t.Errorf("unexpected fix %s", pair)
	}
}

func TestValidRejectsMalformed(t *testing.T) {
	mk := func(s string) namepath.Path {
		p, _ := namepath.ParsePath(s)
		return p
	}
	concrete := mk("Assign 0 NameStore 0 NumST(1) 0 x")
	symbolic := concrete.WithEnd(namepath.Epsilon)
	cases := []*Pattern{
		{Type: Consistency, Deduction: []namepath.Path{symbolic}},             // 1 deduction
		{Type: Consistency, Deduction: []namepath.Path{symbolic, concrete}},   // concrete end
		{Type: ConfusingWord, Deduction: []namepath.Path{symbolic}},           // symbolic end
		{Type: ConfusingWord, Deduction: []namepath.Path{concrete, concrete}}, // 2 deductions
	}
	for i, p := range cases {
		if p.Valid() {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestPatternKeyStable(t *testing.T) {
	cond, deduct, _ := fig2Paths()
	p1 := &Pattern{Type: ConfusingWord, Condition: cond, Deduction: []namepath.Path{deduct}}
	// Same pattern with condition order shuffled.
	shuffled := []namepath.Path{cond[2], cond[0], cond[1]}
	p2 := &Pattern{Type: ConfusingWord, Condition: shuffled, Deduction: []namepath.Path{deduct}}
	if p1.Key() != p2.Key() {
		t.Error("Key must be order-insensitive for conditions")
	}
	p3 := &Pattern{Type: Consistency, Condition: cond, Deduction: []namepath.Path{deduct}}
	if p1.Key() == p3.Key() {
		t.Error("Key must include the type")
	}
}

func TestMatchRequiresDeductionPrefix(t *testing.T) {
	cond, deduct, stmt := fig2Paths()
	p := &Pattern{Type: ConfusingWord, Condition: cond[:1], Deduction: []namepath.Path{deduct}}
	// Statement without any path matching the deduction prefix.
	noDeduct := []namepath.Path{stmt[0], stmt[1], stmt[3]}
	if p.Matches(noDeduct) {
		t.Error("match requires a path with the deduction's prefix")
	}
}
