// Package udiff applies unified diffs to source text, so the diff
// endpoint can accept the patch a PR bot already has (git diff output)
// instead of requiring both file versions on the wire.
//
// The subset understood is what `diff -u` / `git diff` emit for one
// file: any number of `@@ -start,count +start,count @@` hunks whose body
// lines start with ' ' (context), '-' (deletion), '+' (addition), or
// '\' (the "No newline at end of file" marker). Header lines (---/+++,
// `diff --git`, index …) and anything else outside hunks are ignored.
// Context and deletion lines are verified against the source; a
// mismatch is an error, not a fuzzy apply.
package udiff

import (
	"fmt"
	"strconv"
	"strings"
)

// Apply applies a unified diff to src and returns the patched text. The
// source's trailing-newline shape is preserved: sources ending in a
// newline stay that way unless the patch's last added line carries a
// "No newline" marker.
func Apply(src, patch string) (string, error) {
	srcLines := strings.Split(src, "\n")
	// A trailing newline yields one empty trailing element; drop it so
	// lines are content-only, and restore the newline at the end.
	trailingNL := false
	if n := len(srcLines); n > 0 && srcLines[n-1] == "" {
		srcLines = srcLines[:n-1]
		trailingNL = true
	}

	var out []string
	srcPos := 0 // next unconsumed source line (0-based)
	patchLines := strings.Split(patch, "\n")
	inHunk := false
	sawHunk := false
	noTrailingNL := false
	for i := 0; i < len(patchLines); i++ {
		line := patchLines[i]
		if strings.HasPrefix(line, "@@") {
			start, count, err := parseHunkHeader(line)
			if err != nil {
				return "", err
			}
			// start is 1-based; a zero-length before-range ("-0,0")
			// addresses the position after line 0.
			hunkStart := start - 1
			if count == 0 {
				hunkStart = start
			}
			if hunkStart < srcPos || hunkStart > len(srcLines) {
				return "", fmt.Errorf("udiff: hunk %q out of order or beyond source (%d lines)", line, len(srcLines))
			}
			out = append(out, srcLines[srcPos:hunkStart]...)
			srcPos = hunkStart
			inHunk = true
			sawHunk = true
			continue
		}
		if !inHunk {
			continue // file headers, junk between hunks
		}
		switch {
		case line == "" && i == len(patchLines)-1:
			// Trailing newline of the patch text itself.
		case strings.HasPrefix(line, " "):
			if err := consume(srcLines, srcPos, line[1:], "context"); err != nil {
				return "", err
			}
			out = append(out, line[1:])
			srcPos++
		case strings.HasPrefix(line, "-"):
			if err := consume(srcLines, srcPos, line[1:], "deleted"); err != nil {
				return "", err
			}
			srcPos++
		case strings.HasPrefix(line, "+"):
			out = append(out, line[1:])
			noTrailingNL = false
		case strings.HasPrefix(line, `\`):
			// "\ No newline at end of file": applies to the line just
			// emitted (or kept); only the final one affects the output.
			noTrailingNL = true
		case line == "":
			// Some tools emit bare empty lines for empty context.
			if err := consume(srcLines, srcPos, "", "context"); err != nil {
				return "", err
			}
			out = append(out, "")
			srcPos++
		default:
			inHunk = false // next header block (e.g. "diff --git" of another file)
		}
	}
	if !sawHunk {
		return "", fmt.Errorf("udiff: no @@ hunks in patch")
	}
	out = append(out, srcLines[srcPos:]...)
	result := strings.Join(out, "\n")
	if trailingNL && !noTrailingNL {
		result += "\n"
	}
	return result, nil
}

// consume verifies that the source line at pos equals want.
func consume(srcLines []string, pos int, want, kind string) error {
	if pos >= len(srcLines) {
		return fmt.Errorf("udiff: %s line %q beyond end of source", kind, want)
	}
	if srcLines[pos] != want {
		return fmt.Errorf("udiff: %s mismatch at source line %d: have %q, patch says %q",
			kind, pos+1, srcLines[pos], want)
	}
	return nil
}

// parseHunkHeader extracts the before-range of "@@ -a,b +c,d @@".
func parseHunkHeader(line string) (start, count int, err error) {
	rest := strings.TrimPrefix(line, "@@")
	end := strings.Index(rest, "@@")
	if end < 0 {
		return 0, 0, fmt.Errorf("udiff: malformed hunk header %q", line)
	}
	fields := strings.Fields(rest[:end])
	if len(fields) != 2 || !strings.HasPrefix(fields[0], "-") || !strings.HasPrefix(fields[1], "+") {
		return 0, 0, fmt.Errorf("udiff: malformed hunk header %q", line)
	}
	before := strings.TrimPrefix(fields[0], "-")
	count = 1
	if i := strings.IndexByte(before, ','); i >= 0 {
		count, err = strconv.Atoi(before[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("udiff: malformed hunk header %q", line)
		}
		before = before[:i]
	}
	start, err = strconv.Atoi(before)
	if err != nil || start < 0 {
		return 0, 0, fmt.Errorf("udiff: malformed hunk header %q", line)
	}
	return start, count, nil
}
