// Package udiff applies unified diffs to source text, so the diff
// endpoint can accept the patch a PR bot already has (git diff output)
// instead of requiring both file versions on the wire.
//
// The subset understood is what `diff -u` / `git diff` emit for one
// file: any number of `@@ -start,count +start,count @@` hunks whose body
// lines start with ' ' (context), '-' (deletion), '+' (addition), or
// '\' (the "No newline at end of file" marker). Header lines (---/+++,
// `diff --git`, index …) and anything else outside hunks are ignored.
//
// Application is strict — a patch that does not describe the source
// exactly is rejected rather than fuzzily or partially applied:
//
//   - Context and deletion lines are verified against the source; a
//     mismatch is an error.
//   - Hunk bodies must account for exactly the line counts the header
//     declares on both sides; a body that runs short (truncated patch)
//     or long (corrupted header) is an error.
//   - A "\ No newline at end of file" marker must directly follow a
//     content line, and that line must be the last of its side(s) of
//     the hunk; a marker on the before side additionally requires the
//     source to really end without a newline.
//
// Sources with uniform CRLF line endings are normalized to LF for
// matching and the patched text is converted back, so an LF patch (what
// git emits) applies to a CRLF file. Mixed line endings are left
// untouched and must match the patch byte-for-byte.
package udiff

import (
	"fmt"
	"strconv"
	"strings"
)

// Kinds of hunk-body line, for tracking what a "\ No newline" marker
// attaches to.
const (
	lastNone = iota
	lastContext
	lastDel
	lastAdd
	lastMarker
)

// Apply applies a unified diff to src and returns the patched text. The
// output's trailing-newline shape follows the patch where the last hunk
// reaches the end of the source (an added final line ends with a newline
// unless a "No newline" marker follows it) and the source otherwise.
func Apply(src, patch string) (string, error) {
	src, srcCRLF := normalizeEOL(src)
	patch, _ = normalizeEOL(patch)

	srcLines := strings.Split(src, "\n")
	// A trailing newline yields one empty trailing element; drop it so
	// lines are content-only, and restore the newline at the end.
	trailingNL := false
	if n := len(srcLines); n > 0 && srcLines[n-1] == "" {
		srcLines = srcLines[:n-1]
		trailingNL = true
	}

	var out []string
	srcPos := 0 // next unconsumed source line (0-based)
	patchLines := strings.Split(patch, "\n")
	inHunk := false
	sawHunk := false
	resultNL := trailingNL // whether the patched text ends with a newline
	beforeLeft, afterLeft := 0, 0
	lastKind := lastNone
	for i := 0; i < len(patchLines); i++ {
		line := patchLines[i]
		if strings.HasPrefix(line, "@@") {
			if inHunk && (beforeLeft > 0 || afterLeft > 0) {
				return "", fmt.Errorf("udiff: hunk body ended with %d before / %d after lines unaccounted for", beforeLeft, afterLeft)
			}
			h, err := parseHunkHeader(line)
			if err != nil {
				return "", err
			}
			// Starts are 1-based; a zero-length before-range ("-N,0")
			// addresses the position after line N.
			hunkStart := h.beforeStart - 1
			if h.beforeCount == 0 {
				hunkStart = h.beforeStart
			}
			if hunkStart < srcPos || hunkStart > len(srcLines) {
				return "", fmt.Errorf("udiff: hunk %q out of order or beyond source (%d lines)", line, len(srcLines))
			}
			out = append(out, srcLines[srcPos:hunkStart]...)
			srcPos = hunkStart
			inHunk = true
			sawHunk = true
			beforeLeft, afterLeft = h.beforeCount, h.afterCount
			lastKind = lastNone
			continue
		}
		if !inHunk {
			continue // file headers, junk between hunks
		}
		switch {
		case line == "" && i == len(patchLines)-1:
			// Trailing newline of the patch text itself.
		case strings.HasPrefix(line, " "), line == "":
			// Some tools emit bare empty lines for empty context.
			body := ""
			if line != "" {
				body = line[1:]
			}
			if beforeLeft == 0 || afterLeft == 0 {
				return "", fmt.Errorf("udiff: context line %q exceeds the hunk header's line counts", body)
			}
			if err := consume(srcLines, srcPos, body, "context"); err != nil {
				return "", err
			}
			out = append(out, body)
			srcPos++
			beforeLeft--
			afterLeft--
			resultNL = trailingNL
			lastKind = lastContext
		case strings.HasPrefix(line, "-"):
			if beforeLeft == 0 {
				return "", fmt.Errorf("udiff: deleted line %q exceeds the hunk header's before-count", line[1:])
			}
			if err := consume(srcLines, srcPos, line[1:], "deleted"); err != nil {
				return "", err
			}
			srcPos++
			beforeLeft--
			// If this deletion ends the output, the preceding kept line
			// was newline-terminated in the source.
			resultNL = true
			lastKind = lastDel
		case strings.HasPrefix(line, "+"):
			if afterLeft == 0 {
				return "", fmt.Errorf("udiff: added line %q exceeds the hunk header's after-count", line[1:])
			}
			out = append(out, line[1:])
			afterLeft--
			resultNL = true
			lastKind = lastAdd
		case strings.HasPrefix(line, `\`):
			// "\ No newline at end of file": attaches to the line just
			// above it, which must end its side(s) of the hunk.
			switch lastKind {
			case lastNone, lastMarker:
				return "", fmt.Errorf("udiff: marker %q does not follow a context, deleted, or added line", line)
			case lastContext, lastDel:
				if beforeLeft > 0 || (lastKind == lastContext && afterLeft > 0) {
					return "", fmt.Errorf("udiff: marker %q on a line that is not the last of the hunk", line)
				}
				if srcPos != len(srcLines) || trailingNL {
					return "", fmt.Errorf("udiff: patch says the source has no newline at end of file, but it does")
				}
				if lastKind == lastContext {
					resultNL = false
				}
			case lastAdd:
				if afterLeft > 0 {
					return "", fmt.Errorf("udiff: marker %q on an added line that is not the last of the hunk", line)
				}
				resultNL = false
			}
			lastKind = lastMarker
		default:
			// Next header block (e.g. "diff --git" of another file).
			if beforeLeft > 0 || afterLeft > 0 {
				return "", fmt.Errorf("udiff: hunk interrupted by %q with %d before / %d after lines unaccounted for", line, beforeLeft, afterLeft)
			}
			inHunk = false
			lastKind = lastNone
		}
	}
	if inHunk && (beforeLeft > 0 || afterLeft > 0) {
		return "", fmt.Errorf("udiff: patch ended with %d before / %d after lines unaccounted for", beforeLeft, afterLeft)
	}
	if !sawHunk {
		return "", fmt.Errorf("udiff: no @@ hunks in patch")
	}
	if srcPos < len(srcLines) {
		out = append(out, srcLines[srcPos:]...)
		resultNL = trailingNL // the source's own tail ends the output
	}
	if len(out) == 0 {
		return "", nil
	}
	result := strings.Join(out, "\n")
	if resultNL {
		result += "\n"
	}
	if srcCRLF {
		result = strings.ReplaceAll(result, "\n", "\r\n")
	}
	return result, nil
}

// normalizeEOL converts uniformly-CRLF text to LF and reports that it
// did. Text with mixed line endings is returned untouched, so patches
// must match it byte-for-byte — strict rejection over a fuzzy apply.
func normalizeEOL(s string) (string, bool) {
	crlf := strings.Count(s, "\r\n")
	if crlf == 0 || crlf != strings.Count(s, "\r") || crlf != strings.Count(s, "\n") {
		return s, false
	}
	return strings.ReplaceAll(s, "\r\n", "\n"), true
}

// consume verifies that the source line at pos equals want.
func consume(srcLines []string, pos int, want, kind string) error {
	if pos >= len(srcLines) {
		return fmt.Errorf("udiff: %s line %q beyond end of source", kind, want)
	}
	if srcLines[pos] != want {
		return fmt.Errorf("udiff: %s mismatch at source line %d: have %q, patch says %q",
			kind, pos+1, srcLines[pos], want)
	}
	return nil
}

type hunkHeader struct {
	beforeStart, beforeCount int
	afterStart, afterCount   int
}

// parseHunkHeader extracts both ranges of "@@ -a,b +c,d @@".
func parseHunkHeader(line string) (hunkHeader, error) {
	var h hunkHeader
	malformed := fmt.Errorf("udiff: malformed hunk header %q", line)
	rest := strings.TrimPrefix(line, "@@")
	end := strings.Index(rest, "@@")
	if end < 0 {
		return h, malformed
	}
	fields := strings.Fields(rest[:end])
	if len(fields) != 2 || !strings.HasPrefix(fields[0], "-") || !strings.HasPrefix(fields[1], "+") {
		return h, malformed
	}
	var ok bool
	if h.beforeStart, h.beforeCount, ok = parseRange(fields[0][1:]); !ok {
		return h, malformed
	}
	if h.afterStart, h.afterCount, ok = parseRange(fields[1][1:]); !ok {
		return h, malformed
	}
	return h, nil
}

// parseRange parses "start" or "start,count"; count defaults to 1.
func parseRange(s string) (start, count int, ok bool) {
	count = 1
	if i := strings.IndexByte(s, ','); i >= 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 0 {
			return 0, 0, false
		}
		count = n
		s = s[:i]
	}
	start, err := strconv.Atoi(s)
	if err != nil || start < 0 {
		return 0, 0, false
	}
	return start, count, true
}
