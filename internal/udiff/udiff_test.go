package udiff

import (
	"strings"
	"testing"
)

func TestApplySimpleEdit(t *testing.T) {
	src := "a = 1\nb = 2\nc = 3\n"
	patch := "--- a/f.py\n+++ b/f.py\n@@ -1,3 +1,3 @@\n a = 1\n-b = 2\n+b = 20\n c = 3\n"
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 20\nc = 3\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyAppend(t *testing.T) {
	src := "a = 1\n"
	patch := "@@ -1,1 +1,2 @@\n a = 1\n+b = 2\n"
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 2\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyToEmpty(t *testing.T) {
	got, err := Apply("", "@@ -0,0 +1,2 @@\n+a = 1\n+b = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 2\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyMultiHunk(t *testing.T) {
	src := "l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\n"
	patch := strings.Join([]string{
		"@@ -1,2 +1,2 @@",
		" l1",
		"-l2",
		"+L2",
		"@@ -7,2 +7,2 @@",
		" l7",
		"-l8",
		"+L8",
		"",
	}, "\n")
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "l1\nL2\nl3\nl4\nl5\nl6\nl7\nL8\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyDelete(t *testing.T) {
	src := "a\nb\nc\n"
	got, err := Apply(src, "@@ -1,3 +1,2 @@\n a\n-b\n c\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a\nc\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyNoNewlineMarker(t *testing.T) {
	src := "a\n"
	got, err := Apply(src, "@@ -1,1 +1,1 @@\n-a\n+b\n\\ No newline at end of file\n")
	if err != nil {
		t.Fatal(err)
	}
	if got != "b" {
		t.Fatalf("got %q want %q", got, "b")
	}
}

func TestApplyRejectsMismatch(t *testing.T) {
	cases := []struct{ name, src, patch string }{
		{"context mismatch", "a\nb\n", "@@ -1,2 +1,2 @@\n x\n-b\n+c\n"},
		{"deletion mismatch", "a\nb\n", "@@ -1,2 +1,2 @@\n a\n-x\n+c\n"},
		{"beyond end", "a\n", "@@ -5,1 +5,1 @@\n-z\n+y\n"},
		{"no hunks", "a\n", "just some text\n"},
		{"bad header", "a\n", "@@ nonsense @@\n a\n"},
		{"out of order", "a\nb\nc\n", "@@ -3,1 +3,1 @@\n-c\n+C\n@@ -1,1 +1,1 @@\n-a\n+A\n"},
	}
	for _, tc := range cases {
		if got, err := Apply(tc.src, tc.patch); err == nil {
			t.Errorf("%s: accepted, produced %q", tc.name, got)
		}
	}
}
