package udiff

import (
	"strings"
	"testing"
)

func TestApplySimpleEdit(t *testing.T) {
	src := "a = 1\nb = 2\nc = 3\n"
	patch := "--- a/f.py\n+++ b/f.py\n@@ -1,3 +1,3 @@\n a = 1\n-b = 2\n+b = 20\n c = 3\n"
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 20\nc = 3\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyAppend(t *testing.T) {
	src := "a = 1\n"
	patch := "@@ -1,1 +1,2 @@\n a = 1\n+b = 2\n"
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 2\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyToEmpty(t *testing.T) {
	got, err := Apply("", "@@ -0,0 +1,2 @@\n+a = 1\n+b = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a = 1\nb = 2\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyMultiHunk(t *testing.T) {
	src := "l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\n"
	patch := strings.Join([]string{
		"@@ -1,2 +1,2 @@",
		" l1",
		"-l2",
		"+L2",
		"@@ -7,2 +7,2 @@",
		" l7",
		"-l8",
		"+L8",
		"",
	}, "\n")
	got, err := Apply(src, patch)
	if err != nil {
		t.Fatal(err)
	}
	if want := "l1\nL2\nl3\nl4\nl5\nl6\nl7\nL8\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyDelete(t *testing.T) {
	src := "a\nb\nc\n"
	got, err := Apply(src, "@@ -1,3 +1,2 @@\n a\n-b\n c\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a\nc\n"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestApplyNoNewlineMarker(t *testing.T) {
	src := "a\n"
	got, err := Apply(src, "@@ -1,1 +1,1 @@\n-a\n+b\n\\ No newline at end of file\n")
	if err != nil {
		t.Fatal(err)
	}
	if got != "b" {
		t.Fatalf("got %q want %q", got, "b")
	}
}

func TestApplyStrictAccounting(t *testing.T) {
	cases := []struct {
		name, src, patch string
		ok               bool
		want             string
	}{
		// Header/body count disagreements: never partially applied.
		{"body longer: extra context", "a\nb\n", "@@ -1,1 +1,1 @@\n a\n b\n", false, ""},
		{"body longer: extra addition", "a\n", "@@ -1,1 +1,1 @@\n a\n+b\n", false, ""},
		{"body longer: extra deletion", "a\nb\n", "@@ -1,1 +1,1 @@\n-a\n-b\n+c\n", false, ""},
		{"body shorter: patch ends", "a\nb\n", "@@ -1,2 +1,2 @@\n a\n", false, ""},
		{"body shorter: next hunk", "a\nb\nc\n", "@@ -1,2 +1,2 @@\n a\n@@ -3,1 +3,1 @@\n-c\n+C\n", false, ""},
		{"body shorter: junk line", "a\nb\n", "@@ -1,2 +1,2 @@\n a\ndiff --git a/x b/x\n", false, ""},
		{"negative count", "a\n", "@@ -1,-1 +1,1 @@\n-a\n+b\n", false, ""},
		{"counts exactly consumed", "a\nb\nc\n", "@@ -1,3 +1,3 @@\n a\n-b\n+B\n c\n", true, "a\nB\nc\n"},

		// "\ No newline at end of file" placement rules.
		{"marker directly after header", "a", "@@ -1,1 +1,1 @@\n\\ No newline at end of file\n-a\n+b\n", false, ""},
		{"marker on mid-hunk context", "a\nb", "@@ -1,2 +1,2 @@\n a\n\\ No newline at end of file\n-b\n+c\n", false, ""},
		{"marker on context but source has newline", "a\n", "@@ -1,1 +1,1 @@\n a\n\\ No newline at end of file\n", false, ""},
		{"marker on deletion but source has newline", "a\n", "@@ -1,1 +1,1 @@\n-a\n\\ No newline at end of file\n+b\n", false, ""},
		{"marker on mid-hunk deletion", "a\nb\n", "@@ -1,2 +1,1 @@\n-a\n\\ No newline at end of file\n b\n", false, ""},
		{"doubled marker", "a", "@@ -1,1 +1,1 @@\n-a\n\\ No newline at end of file\n\\ No newline at end of file\n+b\n", false, ""},
		{"final context marker ok", "a\nb", "@@ -1,2 +1,2 @@\n a\n-b\n+B\n\\ No newline at end of file\n", true, "a\nB"},
		{"gain trailing newline", "a", "@@ -1,1 +1,2 @@\n-a\n\\ No newline at end of file\n+a\n+b\n", true, "a\nb\n"},
		{"delete unterminated last line", "a\nb", "@@ -1,2 +1,1 @@\n a\n-b\n\\ No newline at end of file\n", true, "a\n"},
		{"edit above unterminated tail keeps shape", "a\nb", "@@ -1,1 +1,1 @@\n-a\n+A\n", true, "A\nb"},
		{"delete only line", "a\n", "@@ -1,1 +0,0 @@\n-a\n", true, ""},

		// CRLF sources: uniform CRLF normalized for matching, restored
		// on output; mixed endings must match byte-for-byte.
		{"crlf source, lf patch", "a\r\nb\r\n", "@@ -1,2 +1,2 @@\n a\n-b\n+B\n", true, "a\r\nB\r\n"},
		{"crlf source, crlf patch", "a\r\nb\r\n", "@@ -1,2 +1,2 @@\r\n a\r\n-b\r\n+B\r\n", true, "a\r\nB\r\n"},
		{"crlf source, added lines gain crlf", "a\r\n", "@@ -1,1 +1,2 @@\n a\n+b\n", true, "a\r\nb\r\n"},
		{"mixed endings rejected on mismatch", "a\r\nb\n", "@@ -1,2 +1,2 @@\n a\n-b\n+B\n", false, ""},
	}
	for _, tc := range cases {
		got, err := Apply(tc.src, tc.patch)
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: accepted, produced %q", tc.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q want %q", tc.name, got, tc.want)
		}
	}
}

func TestApplyRejectsMismatch(t *testing.T) {
	cases := []struct{ name, src, patch string }{
		{"context mismatch", "a\nb\n", "@@ -1,2 +1,2 @@\n x\n-b\n+c\n"},
		{"deletion mismatch", "a\nb\n", "@@ -1,2 +1,2 @@\n a\n-x\n+c\n"},
		{"beyond end", "a\n", "@@ -5,1 +5,1 @@\n-z\n+y\n"},
		{"no hunks", "a\n", "just some text\n"},
		{"bad header", "a\n", "@@ nonsense @@\n a\n"},
		{"out of order", "a\nb\nc\n", "@@ -3,1 +3,1 @@\n-c\n+C\n@@ -1,1 +1,1 @@\n-a\n+A\n"},
	}
	for _, tc := range cases {
		if got, err := Apply(tc.src, tc.patch); err == nil {
			t.Errorf("%s: accepted, produced %q", tc.name, got)
		}
	}
}
