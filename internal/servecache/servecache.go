// Package servecache implements the bounded LRU behind the serving
// layer's content-hash parse cache: it stores fully analyzed per-file
// scan units (core.CachedFile — parsed AST, extracted name paths,
// statistics fragment, match output) keyed by content hash, bounded both
// by entry count and by estimated bytes, and safe for concurrent use.
//
// The cache is deliberately simple: one mutex around a doubly-linked
// recency list and a map. Scan requests touch the cache once per file
// and then do orders of magnitude more work per miss, so lock contention
// is not the bottleneck; what matters is that hits are O(1) and that the
// bounds are hard invariants (never exceeded, not even transiently
// observable through Stats).
package servecache

import (
	"container/list"
	"sync"

	"namer/internal/core"
)

// Metrics are optional instrumentation hooks, satisfied by obs.Counter
// (Inc) and obs.Gauge (Set); nil fields are skipped. Hooks are invoked
// under the cache lock and must not call back into the cache.
type Metrics struct {
	Hits      interface{ Inc() }
	Misses    interface{ Inc() }
	Evictions interface{ Inc() }
	Bytes     interface{ Set(int64) }
	Entries   interface{ Set(int64) }
}

// Stats is a consistent snapshot of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// Cache is the bounded LRU. Use New; the zero value is not usable.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       int64
	misses     int64
	evictions  int64
	met        Metrics
}

type item struct {
	key  string
	f    *core.CachedFile
	cost int64
}

// New returns a cache bounded to at most maxEntries units and maxBytes
// estimated bytes; bounds below 1 are clamped to 1.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// SetMetrics installs instrumentation hooks. Call before the cache is
// shared; installation is not synchronized with concurrent use.
func (c *Cache) SetMetrics(m Metrics) { c.met = m }

// Get returns the unit cached under key and marks it most recently used.
func (c *Cache) Get(key string) (*core.CachedFile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		if c.met.Misses != nil {
			c.met.Misses.Inc()
		}
		return nil, false
	}
	c.hits++
	if c.met.Hits != nil {
		c.met.Hits.Inc()
	}
	c.ll.MoveToFront(el)
	return el.Value.(*item).f, true
}

// Add publishes f under key, evicting least-recently-used units until
// both bounds hold again. A unit whose own cost exceeds the byte bound
// is not stored at all (storing it would flush the whole cache for one
// oversized file) — and if the key was already resident, the stale unit
// is evicted rather than left to answer future Gets for a key the
// caller just tried to replace. Re-adding an existing key refreshes the
// unit and its recency. Costs below 1 are clamped to 1 so every unit is
// accounted.
func (c *Cache) Add(key string, f *core.CachedFile) {
	cost := f.Cost
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxBytes {
		if el, ok := c.items[key]; ok {
			c.removeElement(el)
			c.updateGauges()
		}
		return
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*item)
		c.bytes += cost - it.cost
		it.f, it.cost = f, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&item{key: key, f: f, cost: cost})
		c.bytes += cost
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
	c.updateGauges()
}

// evictOldest drops the least recently used unit; callers hold the lock.
func (c *Cache) evictOldest() {
	if el := c.ll.Back(); el != nil {
		c.removeElement(el)
	}
}

// removeElement evicts one resident unit, keeping bytes equal to the
// sum of resident costs and counting the eviction exactly once; callers
// hold the lock.
func (c *Cache) removeElement(el *list.Element) {
	it := el.Value.(*item)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.cost
	c.evictions++
	if c.met.Evictions != nil {
		c.met.Evictions.Inc()
	}
}

// updateGauges pushes the size gauges; callers hold the lock.
func (c *Cache) updateGauges() {
	if c.met.Bytes != nil {
		c.met.Bytes.Set(c.bytes)
	}
	if c.met.Entries != nil {
		c.met.Entries.Set(int64(c.ll.Len()))
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the current estimated byte footprint.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}
