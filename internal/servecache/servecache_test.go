package servecache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"namer/internal/core"
)

func unit(cost int64) *core.CachedFile { return &core.CachedFile{Cost: cost} }

func TestGetAddBasics(t *testing.T) {
	c := New(4, 1<<20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	u := unit(100)
	c.Add("a", u)
	got, ok := c.Get("a")
	if !ok || got != u {
		t.Fatalf("Get(a) = %v, %v; want the stored unit", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplaceRefreshesCost(t *testing.T) {
	c := New(4, 1<<20)
	c.Add("a", unit(100))
	c.Add("a", unit(250))
	if c.Len() != 1 || c.Bytes() != 250 {
		t.Fatalf("after replace: len=%d bytes=%d, want 1/250", c.Len(), c.Bytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, 1<<20)
	c.Add("a", unit(1))
	c.Add("b", unit(1))
	c.Get("a") // bump a; b is now oldest
	c.Add("c", unit(1))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived, but it was least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	c := New(100, 1000)
	c.Add("a", unit(400))
	c.Add("b", unit(400))
	c.Add("c", unit(400)) // 1200 > 1000: a must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte bound not enforced")
	}
	if c.Bytes() != 800 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 800/2", c.Bytes(), c.Len())
	}
}

func TestOversizedUnitRejected(t *testing.T) {
	c := New(100, 1000)
	c.Add("a", unit(400))
	c.Add("big", unit(2000))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized unit stored")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("oversized add flushed existing entries")
	}
}

// TestEvictionBoundsProperty drives a deterministic random workload and
// checks the hard invariants after every operation: entries and bytes
// never exceed their bounds, and byte accounting matches the live set.
func TestEvictionBoundsProperty(t *testing.T) {
	const maxEntries, maxBytes = 16, 4000
	c := New(maxEntries, maxBytes)
	rng := rand.New(rand.NewSource(42))
	live := map[string]int64{}
	evicted := int64(0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(64))
		switch rng.Intn(3) {
		case 0, 1:
			cost := int64(rng.Intn(900) + 1)
			c.Add(key, unit(cost))
			if cost <= maxBytes {
				live[key] = cost
			}
		case 2:
			c.Get(key)
		}
		st := c.Stats()
		if st.Entries > maxEntries {
			t.Fatalf("op %d: %d entries > bound %d", i, st.Entries, maxEntries)
		}
		if st.Bytes > maxBytes {
			t.Fatalf("op %d: %d bytes > bound %d", i, st.Bytes, maxBytes)
		}
		if st.Bytes < 0 {
			t.Fatalf("op %d: negative byte accounting %d", i, st.Bytes)
		}
		if st.Evictions < evicted {
			t.Fatalf("op %d: eviction counter went backwards", i)
		}
		evicted = st.Evictions
	}
	// Cross-check the byte accounting against what is actually
	// retrievable: the sum of the retained units' costs must equal the
	// reported byte footprint.
	var sum int64
	n := 0
	for key := range live {
		if f, ok := c.Get(key); ok {
			sum += f.Cost
			n++
		}
	}
	if st := c.Stats(); n != st.Entries || sum != st.Bytes {
		t.Fatalf("live set inconsistent: %d retrievable / %d bytes vs stats %+v", n, sum, st)
	}
}

type fakeCounter struct{ n atomic.Int64 }

func (f *fakeCounter) Inc() { f.n.Add(1) }

type fakeGauge struct{ v atomic.Int64 }

func (f *fakeGauge) Set(v int64) { f.v.Store(v) }

func TestMetricsHooks(t *testing.T) {
	hits, misses, evictions := &fakeCounter{}, &fakeCounter{}, &fakeCounter{}
	bytes, entries := &fakeGauge{}, &fakeGauge{}
	c := New(2, 1<<20)
	c.SetMetrics(Metrics{Hits: hits, Misses: misses, Evictions: evictions, Bytes: bytes, Entries: entries})

	c.Get("a") // miss
	c.Add("a", unit(10))
	c.Get("a") // hit
	c.Add("b", unit(20))
	c.Add("c", unit(30)) // evicts a

	if hits.n.Load() != 1 || misses.n.Load() != 1 || evictions.n.Load() != 1 {
		t.Fatalf("hooks: hits=%d misses=%d evictions=%d, want 1/1/1",
			hits.n.Load(), misses.n.Load(), evictions.n.Load())
	}
	if bytes.v.Load() != 50 || entries.v.Load() != 2 {
		t.Fatalf("gauges: bytes=%d entries=%d, want 50/2", bytes.v.Load(), entries.v.Load())
	}
}

// TestConcurrentUse hammers the cache from many goroutines; run under
// -race this is the data-race check, and the bounds must hold at the end.
func TestConcurrentUse(t *testing.T) {
	const maxEntries, maxBytes = 32, 10000
	c := New(maxEntries, maxBytes)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(100))
				if rng.Intn(2) == 0 {
					c.Add(key, unit(int64(rng.Intn(500)+1)))
				} else {
					c.Get(key)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > maxEntries || st.Bytes > maxBytes {
		t.Fatalf("bounds violated after concurrent use: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
