package servecache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"namer/internal/core"
)

func unit(cost int64) *core.CachedFile { return &core.CachedFile{Cost: cost} }

func TestGetAddBasics(t *testing.T) {
	c := New(4, 1<<20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	u := unit(100)
	c.Add("a", u)
	got, ok := c.Get("a")
	if !ok || got != u {
		t.Fatalf("Get(a) = %v, %v; want the stored unit", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplaceRefreshesCost(t *testing.T) {
	c := New(4, 1<<20)
	c.Add("a", unit(100))
	c.Add("a", unit(250))
	if c.Len() != 1 || c.Bytes() != 250 {
		t.Fatalf("after replace: len=%d bytes=%d, want 1/250", c.Len(), c.Bytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, 1<<20)
	c.Add("a", unit(1))
	c.Add("b", unit(1))
	c.Get("a") // bump a; b is now oldest
	c.Add("c", unit(1))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived, but it was least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	c := New(100, 1000)
	c.Add("a", unit(400))
	c.Add("b", unit(400))
	c.Add("c", unit(400)) // 1200 > 1000: a must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte bound not enforced")
	}
	if c.Bytes() != 800 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 800/2", c.Bytes(), c.Len())
	}
}

func TestOversizedUnitRejected(t *testing.T) {
	c := New(100, 1000)
	c.Add("a", unit(400))
	c.Add("big", unit(2000))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized unit stored")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("oversized add flushed existing entries")
	}
}

func TestOversizedUpdateEvictsStale(t *testing.T) {
	c := New(100, 1000)
	evictions := &fakeCounter{}
	c.SetMetrics(Metrics{Evictions: evictions})
	c.Add("a", unit(400))
	c.Add("b", unit(100))
	// Replacing a resident unit with one too big to store must not
	// leave the stale version answering future Gets.
	c.Add("a", unit(2000))
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale unit still resident after oversized update")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("after oversized update: %+v, want 1 entry / 100 bytes", st)
	}
	if st.Evictions != 1 || evictions.n.Load() != 1 {
		t.Fatalf("evictions = %d (hook %d), want exactly 1", st.Evictions, evictions.n.Load())
	}
	// Repeating the oversized add evicts nothing further: the key is
	// already gone, so there is no second eviction to count.
	c.Add("a", unit(2000))
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("second oversized add bumped evictions to %d", got)
	}
}

// cacheModel is an exact reference implementation of the LRU semantics:
// an ordered key list (most recent first) plus cost map, replayed
// operation for operation against the real cache.
type cacheModel struct {
	maxEntries int
	maxBytes   int64
	order      []string
	cost       map[string]int64
	bytes      int64
	hits       int64
	misses     int64
	evictions  int64
}

func newCacheModel(maxEntries int, maxBytes int64) *cacheModel {
	return &cacheModel{maxEntries: maxEntries, maxBytes: maxBytes, cost: map[string]int64{}}
}

func (m *cacheModel) remove(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.bytes -= m.cost[key]
	delete(m.cost, key)
	m.evictions++
}

func (m *cacheModel) add(key string, cost int64) {
	if cost < 1 {
		cost = 1
	}
	if cost > m.maxBytes {
		if _, ok := m.cost[key]; ok {
			m.remove(key)
		}
		return
	}
	if old, ok := m.cost[key]; ok {
		m.bytes += cost - old
		m.cost[key] = cost
		m.touch(key)
	} else {
		m.order = append([]string{key}, m.order...)
		m.cost[key] = cost
		m.bytes += cost
	}
	for len(m.order) > m.maxEntries || m.bytes > m.maxBytes {
		m.remove(m.order[len(m.order)-1])
	}
}

func (m *cacheModel) get(key string) bool {
	if _, ok := m.cost[key]; !ok {
		m.misses++
		return false
	}
	m.hits++
	m.touch(key)
	return true
}

func (m *cacheModel) touch(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			m.order = append([]string{key}, m.order...)
			return
		}
	}
}

// TestReferenceModelProperty replays a deterministic random op sequence
// — including zero-cost units, replacements with different costs, and
// oversized updates of resident keys — against both the cache and the
// reference model, and demands exact agreement on every counter after
// every operation: bytes must equal the sum of resident costs, and each
// evicted unit is counted exactly once.
func TestReferenceModelProperty(t *testing.T) {
	const maxEntries, maxBytes = 8, 2000
	c := New(maxEntries, maxBytes)
	evictions := &fakeCounter{}
	c.SetMetrics(Metrics{Evictions: evictions})
	m := newCacheModel(maxEntries, maxBytes)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(24))
		if rng.Intn(3) < 2 {
			// Costs from -1 (clamped) through 1.5× the byte bound
			// (oversized), biased to land near the bound.
			cost := int64(rng.Intn(maxBytes*3/2)) - 1
			c.Add(key, unit(cost))
			m.add(key, cost)
		} else {
			_, got := c.Get(key)
			if want := m.get(key); got != want {
				t.Fatalf("op %d: Get(%s) = %v, model says %v", i, key, got, want)
			}
		}
		st := c.Stats()
		var modelSum int64
		for _, v := range m.cost {
			modelSum += v
		}
		if modelSum != m.bytes {
			t.Fatalf("op %d: model self-check failed: %d vs %d", i, modelSum, m.bytes)
		}
		if st.Entries != len(m.order) || st.Bytes != m.bytes {
			t.Fatalf("op %d: cache %d entries / %d bytes, model %d / %d",
				i, st.Entries, st.Bytes, len(m.order), m.bytes)
		}
		if st.Hits != m.hits || st.Misses != m.misses || st.Evictions != m.evictions {
			t.Fatalf("op %d: counters hits=%d/%d misses=%d/%d evictions=%d/%d (cache/model)",
				i, st.Hits, m.hits, st.Misses, m.misses, st.Evictions, m.evictions)
		}
		if evictions.n.Load() != m.evictions {
			t.Fatalf("op %d: eviction hook fired %d times, model evicted %d units",
				i, evictions.n.Load(), m.evictions)
		}
	}
	// Final membership check in model recency order; Get bumps recency
	// identically on both sides, so they stay in lockstep.
	for _, key := range append([]string(nil), m.order...) {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("model-resident key %s missing from cache", key)
		}
		m.get(key)
	}
	if st := c.Stats(); st.Entries != len(m.order) || st.Bytes != m.bytes {
		t.Fatalf("final state diverged: cache %+v, model %d entries / %d bytes", st, len(m.order), m.bytes)
	}
}

// TestEvictionBoundsProperty drives a deterministic random workload and
// checks the hard invariants after every operation: entries and bytes
// never exceed their bounds, and byte accounting matches the live set.
func TestEvictionBoundsProperty(t *testing.T) {
	const maxEntries, maxBytes = 16, 4000
	c := New(maxEntries, maxBytes)
	rng := rand.New(rand.NewSource(42))
	live := map[string]int64{}
	evicted := int64(0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(64))
		switch rng.Intn(3) {
		case 0, 1:
			cost := int64(rng.Intn(900) + 1)
			c.Add(key, unit(cost))
			if cost <= maxBytes {
				live[key] = cost
			}
		case 2:
			c.Get(key)
		}
		st := c.Stats()
		if st.Entries > maxEntries {
			t.Fatalf("op %d: %d entries > bound %d", i, st.Entries, maxEntries)
		}
		if st.Bytes > maxBytes {
			t.Fatalf("op %d: %d bytes > bound %d", i, st.Bytes, maxBytes)
		}
		if st.Bytes < 0 {
			t.Fatalf("op %d: negative byte accounting %d", i, st.Bytes)
		}
		if st.Evictions < evicted {
			t.Fatalf("op %d: eviction counter went backwards", i)
		}
		evicted = st.Evictions
	}
	// Cross-check the byte accounting against what is actually
	// retrievable: the sum of the retained units' costs must equal the
	// reported byte footprint.
	var sum int64
	n := 0
	for key := range live {
		if f, ok := c.Get(key); ok {
			sum += f.Cost
			n++
		}
	}
	if st := c.Stats(); n != st.Entries || sum != st.Bytes {
		t.Fatalf("live set inconsistent: %d retrievable / %d bytes vs stats %+v", n, sum, st)
	}
}

type fakeCounter struct{ n atomic.Int64 }

func (f *fakeCounter) Inc() { f.n.Add(1) }

type fakeGauge struct{ v atomic.Int64 }

func (f *fakeGauge) Set(v int64) { f.v.Store(v) }

func TestMetricsHooks(t *testing.T) {
	hits, misses, evictions := &fakeCounter{}, &fakeCounter{}, &fakeCounter{}
	bytes, entries := &fakeGauge{}, &fakeGauge{}
	c := New(2, 1<<20)
	c.SetMetrics(Metrics{Hits: hits, Misses: misses, Evictions: evictions, Bytes: bytes, Entries: entries})

	c.Get("a") // miss
	c.Add("a", unit(10))
	c.Get("a") // hit
	c.Add("b", unit(20))
	c.Add("c", unit(30)) // evicts a

	if hits.n.Load() != 1 || misses.n.Load() != 1 || evictions.n.Load() != 1 {
		t.Fatalf("hooks: hits=%d misses=%d evictions=%d, want 1/1/1",
			hits.n.Load(), misses.n.Load(), evictions.n.Load())
	}
	if bytes.v.Load() != 50 || entries.v.Load() != 2 {
		t.Fatalf("gauges: bytes=%d entries=%d, want 50/2", bytes.v.Load(), entries.v.Load())
	}
}

// TestConcurrentUse hammers the cache from many goroutines; run under
// -race this is the data-race check, and the bounds must hold at the end.
func TestConcurrentUse(t *testing.T) {
	const maxEntries, maxBytes = 32, 10000
	c := New(maxEntries, maxBytes)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(100))
				if rng.Intn(2) == 0 {
					c.Add(key, unit(int64(rng.Intn(500)+1)))
				} else {
					c.Get(key)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > maxEntries || st.Bytes > maxBytes {
		t.Fatalf("bounds violated after concurrent use: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
