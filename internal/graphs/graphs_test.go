package graphs

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/pylang"
)

func parseFn(t *testing.T, src string) *ast.Node {
	t.Helper()
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var fn *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.FunctionDef && fn == nil {
			fn = n
		}
		return true
	})
	if fn == nil {
		t.Fatal("no function found")
	}
	return fn
}

const fnSrc = `def f(a, b):
    c = a + b
    d = c * a
    return d
`

func TestBuildBasics(t *testing.T) {
	fn := parseFn(t, fnSrc)
	v := NewVocab()
	g := Build(fn, v)
	if g.N() == 0 {
		t.Fatal("empty graph")
	}
	if len(g.Edges[Child]) == 0 || len(g.Edges[Parent]) == 0 {
		t.Error("missing child/parent edges")
	}
	if len(g.Edges[Child]) != len(g.Edges[Parent]) {
		t.Error("child and parent edge counts should match")
	}
	if len(g.Edges[NextToken]) == 0 {
		t.Error("missing NextToken edges")
	}
	// Variables a, b, c, d all occur.
	names, reps := g.Variables()
	if len(names) != 4 {
		t.Fatalf("variables = %v, want 4", names)
	}
	if len(reps) != len(names) {
		t.Error("reps misaligned")
	}
	// a is used twice (c = a+b, d = c*a): LastUse edge must exist.
	if len(g.Edges[LastUse]) == 0 {
		t.Error("missing LastUse edges")
	}
	if len(g.Edges[LastWrite]) == 0 {
		t.Error("missing LastWrite edges")
	}
	if len(g.Edges[ComputedFrom]) == 0 {
		t.Error("missing ComputedFrom edges")
	}
}

func TestVarUsesExcludeWrites(t *testing.T) {
	fn := parseFn(t, fnSrc)
	g := Build(fn, NewVocab())
	for _, u := range g.VarUses() {
		if g.IsWrite[u] {
			t.Error("VarUses returned a write occurrence")
		}
		if g.VarName[u] == "" {
			t.Error("VarUses returned a non-variable node")
		}
	}
	// Uses: a, b (in c=a+b), c, a (in d=c*a), d (return) = 5.
	if got := len(g.VarUses()); got != 5 {
		t.Errorf("var uses = %d, want 5", got)
	}
}

func TestSelfExcluded(t *testing.T) {
	fn := parseFn(t, "def m(self, x):\n    return self.f(x)\n")
	g := Build(fn, NewVocab())
	for i, name := range g.VarName {
		if name == "self" {
			t.Errorf("self tracked as variable at node %d", i)
		}
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	a := v.ID("alpha")
	if a == 0 {
		t.Error("new word got unk id")
	}
	if v.ID("alpha") != a {
		t.Error("interning not idempotent")
	}
	v.Freeze()
	if v.ID("beta") != 0 {
		t.Error("frozen vocab should map unseen to unk")
	}
	if v.Word(a) != "alpha" {
		t.Error("Word round trip failed")
	}
	if v.Word(9999) != "<unk>" {
		t.Error("out-of-range Word should be unk")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestEdgeTypeString(t *testing.T) {
	for e := EdgeType(0); e < NumEdgeTypes; e++ {
		if e.String() == "?" {
			t.Errorf("edge type %d unnamed", e)
		}
	}
}

func TestNodeOfMapping(t *testing.T) {
	fn := parseFn(t, fnSrc)
	g := Build(fn, NewVocab())
	if len(g.NodeOf) != g.N() {
		t.Errorf("NodeOf has %d entries, graph has %d nodes", len(g.NodeOf), g.N())
	}
	if id, ok := g.NodeOf[fn]; !ok || id != 0 {
		t.Error("root should be node 0")
	}
}
