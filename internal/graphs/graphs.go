// Package graphs builds the program graphs consumed by the neural
// baselines of §5.6 (GGNN and Great): AST nodes plus the data-flow-style
// edges of Allamanis et al. (Child, NextSibling, NextToken, LastUse,
// LastWrite, ComputedFrom), with variable-occurrence bookkeeping for the
// variable-misuse task.
package graphs

import (
	"namer/internal/ast"
)

// EdgeType enumerates the edge relations.
type EdgeType int

// Edge types. Reversed variants double the message-passing directions as
// in the GGNN paper.
const (
	Child EdgeType = iota
	Parent
	NextSibling
	NextToken
	LastUse
	LastWrite
	ComputedFrom
	NumEdgeTypes
)

// String returns the edge type name.
func (e EdgeType) String() string {
	switch e {
	case Child:
		return "Child"
	case Parent:
		return "Parent"
	case NextSibling:
		return "NextSibling"
	case NextToken:
		return "NextToken"
	case LastUse:
		return "LastUse"
	case LastWrite:
		return "LastWrite"
	case ComputedFrom:
		return "ComputedFrom"
	}
	return "?"
}

// Vocab interns node value strings. Id 0 is the unknown token; once
// frozen, unseen words map to it.
type Vocab struct {
	byWord map[string]int
	words  []string
	frozen bool
}

// NewVocab returns a vocabulary containing only the unknown token.
func NewVocab() *Vocab {
	v := &Vocab{byWord: map[string]int{"<unk>": 0}, words: []string{"<unk>"}}
	return v
}

// ID returns the id for word, interning it unless the vocabulary is
// frozen.
func (v *Vocab) ID(word string) int {
	if id, ok := v.byWord[word]; ok {
		return id
	}
	if v.frozen {
		return 0
	}
	id := len(v.words)
	v.byWord[word] = id
	v.words = append(v.words, word)
	return id
}

// Freeze stops the vocabulary from growing.
func (v *Vocab) Freeze() { v.frozen = true }

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.words) }

// Word returns the string for an id.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return "<unk>"
	}
	return v.words[id]
}

// Graph is a program graph over the nodes of one AST subtree.
type Graph struct {
	// Vals holds the vocabulary id of each node's value.
	Vals []int
	// VarName is non-empty for variable-occurrence nodes (identifier
	// terminals in name contexts, excluding self/this).
	VarName []string
	// IsWrite marks variable occurrences in store/parameter position.
	IsWrite []bool
	Edges   [NumEdgeTypes][][2]int
	// NodeOf maps AST nodes to graph node indices (valid until the AST is
	// mutated).
	NodeOf map[*ast.Node]int
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Vals) }

// VarUses returns the indices of variable-occurrence nodes in read
// position (the candidate misuse slots).
func (g *Graph) VarUses() []int {
	var out []int
	for i, name := range g.VarName {
		if name != "" && !g.IsWrite[i] {
			out = append(out, i)
		}
	}
	return out
}

// Variables returns the distinct variable names in the graph, in first-
// occurrence order, along with a representative node index per name.
func (g *Graph) Variables() ([]string, []int) {
	var names []string
	var reps []int
	seen := map[string]bool{}
	for i, name := range g.VarName {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		names = append(names, name)
		reps = append(reps, i)
	}
	return names, reps
}

// Build constructs the program graph for an AST subtree.
func Build(root *ast.Node, vocab *Vocab) *Graph {
	g := &Graph{NodeOf: make(map[*ast.Node]int)}
	// Number nodes in pre-order.
	var lastTerminal = -1
	var order []*ast.Node
	var number func(n *ast.Node)
	number = func(n *ast.Node) {
		id := len(order)
		order = append(order, n)
		g.NodeOf[n] = id
		g.Vals = append(g.Vals, vocab.ID(n.Value))
		g.VarName = append(g.VarName, "")
		g.IsWrite = append(g.IsWrite, false)
		for _, c := range n.Children {
			number(c)
		}
	}
	number(root)

	addEdge := func(t EdgeType, s, d int) {
		g.Edges[t] = append(g.Edges[t], [2]int{s, d})
	}

	lastOccurrence := map[string]int{}
	lastWrite := map[string]int{}

	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		id := g.NodeOf[n]
		prevSib := -1
		for _, c := range n.Children {
			cid := g.NodeOf[c]
			addEdge(Child, id, cid)
			addEdge(Parent, cid, id)
			if prevSib >= 0 {
				addEdge(NextSibling, prevSib, cid)
			}
			prevSib = cid
			walk(c)
		}
		if n.IsTerminal() {
			if lastTerminal >= 0 {
				addEdge(NextToken, lastTerminal, id)
			}
			lastTerminal = id
		}
	}
	walk(root)

	// Variable occurrences with LastUse / LastWrite edges (token order).
	var visitVars func(n *ast.Node, parent *ast.Node)
	visitVars = func(n *ast.Node, parent *ast.Node) {
		if n.Kind == ast.Ident && parent != nil && isNameContext(parent.Kind) &&
			n.Value != "self" && n.Value != "this" {
			id := g.NodeOf[n]
			g.VarName[id] = n.Value
			write := isWriteContext(parent.Kind)
			g.IsWrite[id] = write
			if prev, ok := lastOccurrence[n.Value]; ok {
				addEdge(LastUse, id, prev)
			}
			if prev, ok := lastWrite[n.Value]; ok {
				addEdge(LastWrite, id, prev)
			}
			lastOccurrence[n.Value] = id
			if write {
				lastWrite[n.Value] = id
			}
		}
		for _, c := range n.Children {
			visitVars(c, n)
		}
	}
	visitVars(root, nil)

	// ComputedFrom: assignment target variables <- RHS variables.
	root.Walk(func(n *ast.Node) bool {
		if n.Kind != ast.Assign || len(n.Children) < 2 {
			return true
		}
		value := n.Children[len(n.Children)-1]
		var rhs []int
		value.Walk(func(m *ast.Node) bool {
			if id, ok := g.NodeOf[m]; ok && g.VarName[id] != "" {
				rhs = append(rhs, id)
			}
			return true
		})
		for _, tgt := range n.Children[:len(n.Children)-1] {
			tgt.Walk(func(m *ast.Node) bool {
				if id, ok := g.NodeOf[m]; ok && g.VarName[id] != "" {
					for _, r := range rhs {
						addEdge(ComputedFrom, id, r)
					}
				}
				return true
			})
		}
		return true
	})
	return g
}

func isNameContext(k ast.Kind) bool {
	switch k {
	case ast.NameLoad, ast.NameStore, ast.NameParam, ast.Param,
		ast.DefaultParam, ast.VarArgParam, ast.KwArgParam:
		return true
	}
	return false
}

func isWriteContext(k ast.Kind) bool {
	switch k {
	case ast.NameStore, ast.Param, ast.DefaultParam, ast.VarArgParam,
		ast.KwArgParam, ast.NameParam:
		return true
	}
	return false
}
