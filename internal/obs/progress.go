package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress emits periodic one-line progress reports for a long batch
// stage ("analyze: 120/500 files (24%), 3450 statements, 61.2 files/s,
// ETA 6s"). Update is safe to call from concurrent workers and rate-
// limits its own output, so it can sit directly in a per-item callback;
// the ETA comes from the moving rate between emitted lines, not the
// lifetime average, so it tracks speedups and slowdowns mid-run.
type Progress struct {
	w     io.Writer
	label string
	unit  string
	every time.Duration

	mu       sync.Mutex
	start    time.Time
	lastT    time.Time
	lastDone int
}

// DefaultProgressInterval is how often Progress emits, at most.
const DefaultProgressInterval = 2 * time.Second

// NewProgress returns a progress reporter writing to w. label prefixes
// each line; unit names the items being counted ("files").
func NewProgress(w io.Writer, label, unit string) *Progress {
	now := time.Now()
	return &Progress{
		w: w, label: label, unit: unit,
		every: DefaultProgressInterval,
		start: now, lastT: now,
	}
}

// SetInterval overrides the emit rate limit (tests use a tiny value).
func (p *Progress) SetInterval(d time.Duration) {
	p.mu.Lock()
	p.every = d
	p.mu.Unlock()
}

// Update reports that `done` of `total` items are complete, with an
// auxiliary running count (statements extracted, bytes read; 0 to
// omit). At most one line per interval is written.
func (p *Progress) Update(done, total, extra int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if now.Sub(p.lastT) < p.every {
		return
	}
	p.emitLocked(now, done, total, extra)
}

// Final writes one unconditional closing line.
func (p *Progress) Final(done, total, extra int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(time.Now(), done, total, extra)
}

func (p *Progress) emitLocked(now time.Time, done, total, extra int) {
	rate := 0.0
	if dt := now.Sub(p.lastT).Seconds(); dt > 0 && done > p.lastDone {
		rate = float64(done-p.lastDone) / dt
	} else if dt := now.Sub(p.start).Seconds(); dt > 0 {
		rate = float64(done) / dt
	}
	line := fmt.Sprintf("%s: %d/%d %s", p.label, done, total, p.unit)
	if total > 0 {
		line += fmt.Sprintf(" (%.0f%%)", 100*float64(done)/float64(total))
	}
	if extra > 0 {
		line += fmt.Sprintf(", %d statements", extra)
	}
	if rate > 0 {
		line += fmt.Sprintf(", %.1f %s/s", rate, p.unit)
		if left := total - done; left > 0 {
			eta := time.Duration(float64(left) / rate * float64(time.Second)).Round(time.Second)
			line += fmt.Sprintf(", ETA %s", eta)
		}
	}
	fmt.Fprintln(p.w, line)
	p.lastT = now
	p.lastDone = done
}
