package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress emits periodic one-line progress reports for a long batch
// stage ("analyze: 120/500 files (24%), 3450 statements, 61.2 files/s,
// ETA 6s"). Update is safe to call from concurrent workers and rate-
// limits its own output, so it can sit directly in a per-item callback;
// the ETA comes from the moving rate between emitted lines, not the
// lifetime average, so it tracks speedups and slowdowns mid-run. The
// first Update emits immediately, so short runs are not silent until
// Final.
type Progress struct {
	w     io.Writer
	label string
	unit  string
	every time.Duration

	mu       sync.Mutex
	now      func() time.Time // injectable clock for tests
	start    time.Time
	emitted  bool
	lastT    time.Time
	lastDone int
}

// DefaultProgressInterval is how often Progress emits, at most.
const DefaultProgressInterval = 2 * time.Second

// minRateWindow is the smallest interval the moving rate is computed
// over. A Final (or racing Update) arriving microseconds after the last
// emitted line would otherwise divide a tiny item delta by a near-zero
// dt and print an absurd rate and ETA; below the floor the lifetime
// average is used instead.
const minRateWindow = 100 * time.Millisecond

// NewProgress returns a progress reporter writing to w. label prefixes
// each line; unit names the items being counted ("files").
func NewProgress(w io.Writer, label, unit string) *Progress {
	now := time.Now()
	return &Progress{
		w: w, label: label, unit: unit,
		every: DefaultProgressInterval,
		now:   time.Now,
		start: now, lastT: now,
	}
}

// SetInterval overrides the emit rate limit (tests use a tiny value).
func (p *Progress) SetInterval(d time.Duration) {
	p.mu.Lock()
	p.every = d
	p.mu.Unlock()
}

// Update reports that `done` of `total` items are complete, with an
// auxiliary running count (statements extracted, bytes read; 0 to
// omit). The first call emits unconditionally; afterwards at most one
// line per interval is written.
func (p *Progress) Update(done, total, extra int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if p.emitted && now.Sub(p.lastT) < p.every {
		return
	}
	p.emitLocked(now, done, total, extra)
}

// Final writes one unconditional closing line.
func (p *Progress) Final(done, total, extra int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(p.now(), done, total, extra)
}

func (p *Progress) emitLocked(now time.Time, done, total, extra int) {
	// The moving rate needs a window wide enough to mean something: a
	// Final microseconds after the last Update must fall back to the
	// lifetime average instead of printing a million-items/s spike.
	rate := 0.0
	if dt := now.Sub(p.lastT).Seconds(); dt >= minRateWindow.Seconds() && done > p.lastDone {
		rate = float64(done-p.lastDone) / dt
	} else if dt := now.Sub(p.start).Seconds(); dt > 0 {
		rate = float64(done) / dt
	}
	line := fmt.Sprintf("%s: %d/%d %s", p.label, done, total, p.unit)
	if total > 0 {
		line += fmt.Sprintf(" (%.0f%%)", 100*float64(done)/float64(total))
	}
	if extra > 0 {
		line += fmt.Sprintf(", %d statements", extra)
	}
	if rate > 0 {
		line += fmt.Sprintf(", %.1f %s/s", rate, p.unit)
		if left := total - done; left > 0 {
			eta := time.Duration(float64(left) / rate * float64(time.Second)).Round(time.Second)
			line += fmt.Sprintf(", ETA %s", eta)
		}
	}
	fmt.Fprintln(p.w, line)
	p.emitted = true
	p.lastT = now
	p.lastDone = done
}

// ProgressAggregator folds per-source progress into one Progress line —
// the cross-worker view of a distributed stage, where each map worker
// (in-process shard goroutine or child process) reports only its own
// done count. Report takes absolute per-source values, so workers can
// re-report freely (including after a driver resume, where finished
// shards report their totals once) and the aggregate never double
// counts.
type ProgressAggregator struct {
	p     *Progress
	total int

	mu    sync.Mutex
	done  []int
	extra []int
}

// NewProgressAggregator returns an aggregator over `sources` independent
// progress sources whose combined work is `total` items, reporting
// through p.
func NewProgressAggregator(p *Progress, sources, total int) *ProgressAggregator {
	return &ProgressAggregator{
		p:     p,
		total: total,
		done:  make([]int, sources),
		extra: make([]int, sources),
	}
}

// Report records that the given source has completed `done` items with
// `extra` auxiliary units so far (absolute values, not deltas), and
// forwards the cross-source sums to the underlying Progress. Safe for
// concurrent use from every source.
func (a *ProgressAggregator) Report(source, done, extra int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done[source] = done
	a.extra[source] = extra
	sumDone, sumExtra := 0, 0
	for i := range a.done {
		sumDone += a.done[i]
		sumExtra += a.extra[i]
	}
	// Emit while still holding the lock: two racing Reports that computed
	// sums S1 < S2 could otherwise reach the Progress in the wrong order
	// and print an aggregate that goes backwards.
	a.p.Update(sumDone, a.total, sumExtra)
}

// Final emits the closing line with the current cross-source sums.
func (a *ProgressAggregator) Final() {
	a.mu.Lock()
	defer a.mu.Unlock()
	sumDone, sumExtra := 0, 0
	for i := range a.done {
		sumDone += a.done[i]
		sumExtra += a.extra[i]
	}
	a.p.Final(sumDone, a.total, sumExtra)
}
