package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Add(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Set(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
}

// TestHistogramBucketDeterminism pins the exact bucket placement and
// quantile interpolation for a fixed observation set: the serving
// metrics must be reproducible, not approximately right.
func TestHistogramBucketDeterminism(t *testing.T) {
	h := NewHistogram([]time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	obs := []time.Duration{
		500 * time.Microsecond, // bucket 0 (<= 1ms)
		time.Millisecond,       // bucket 0 (boundary is inclusive)
		2 * time.Millisecond,   // bucket 1
		5 * time.Millisecond,   // bucket 1
		50 * time.Millisecond,  // bucket 2
		time.Second,            // +Inf bucket
		-time.Second,           // clamped to 0, bucket 0
	}
	for _, d := range obs {
		h.Observe(d)
	}
	want := []int64{3, 2, 1, 1}
	if got := h.bucketCounts(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 2*time.Millisecond +
		5*time.Millisecond + 50*time.Millisecond + time.Second
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}

	// Quantiles interpolate linearly inside the target bucket.
	// p50: rank 3.5 lands at the very end of bucket 0 (cum 3) plus
	// 0.5/2 of bucket 1 (1ms..10ms) = 1ms + 2.25ms.
	if got, want := h.Quantile(0.50), 3250*time.Microsecond; got != want {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p95: rank 6.65 is in the +Inf bucket -> clamps to the last bound.
	if got, want := h.Quantile(0.95), 100*time.Millisecond; got != want {
		t.Errorf("p95 = %v, want %v", got, want)
	}
	// rank exactly at a cumulative boundary stays in the earlier bucket:
	// q=3/7 -> rank 3.0 -> end of bucket 0.
	if got, want := h.Quantile(3.0/7.0), time.Millisecond; got != want {
		t.Errorf("q(3/7) = %v, want %v", got, want)
	}
}

func TestHistogramEmptyAndConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// promLine matches one non-comment Prometheus text-format sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+$`)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`requests_total{code="200"}`).Add(3)
	r.Counter(`requests_total{code="500"}`).Inc()
	r.Gauge("inflight").Set(2)
	h := r.Histogram(`stage_seconds{stage="scan"}`, []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter\n",
		`requests_total{code="200"} 3`,
		`requests_total{code="500"} 1`,
		"# TYPE inflight gauge\n",
		"inflight 2",
		"# TYPE stage_seconds histogram\n",
		`stage_seconds_bucket{stage="scan",le="0.001"} 1`,
		`stage_seconds_bucket{stage="scan",le="1"} 1`,
		`stage_seconds_bucket{stage="scan",le="+Inf"} 2`,
		`stage_seconds_sum{stage="scan"} 2.0005`,
		`stage_seconds_count{stage="scan"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several labeled series.
	if n := strings.Count(out, "# TYPE requests_total"); n != 1 {
		t.Errorf("requests_total has %d TYPE lines, want 1", n)
	}
	// Every sample line must parse.
	for sc := bufio.NewScanner(strings.NewReader(out)); sc.Scan(); {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparsable sample line: %q", line)
		}
	}

	// Same-name-different-kind is a programming error and panics.
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge(`requests_total{code="200"}`)
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks_total").Add(9)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(buf.String(), "ticks_total 9") {
		t.Errorf("missing series: %s", buf.String())
	}
}

func TestAccessLogMiddleware(t *testing.T) {
	var buf bytes.Buffer
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestID(r.Context()) == "" {
			t.Error("no request id in handler context")
		}
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	})
	ts := httptest.NewServer(AccessLog(inner, &buf))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/scan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("no X-Request-Id response header")
	}

	var e AccessEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("access line not JSON: %q: %v", buf.String(), err)
	}
	if e.Method != "GET" || e.Path != "/v1/scan" || e.Status != http.StatusTeapot {
		t.Errorf("bad entry: %+v", e)
	}
	if e.Bytes != int64(len("short and stout")) {
		t.Errorf("bytes = %d", e.Bytes)
	}
	if e.RequestID == "" || e.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("request id mismatch: %q vs header %q", e.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if e.DurMillis < 0 {
		t.Errorf("negative duration: %v", e.DurMillis)
	}
	if _, err := time.Parse(time.RFC3339Nano, e.Time); err != nil {
		t.Errorf("bad timestamp %q: %v", e.Time, err)
	}

	// nil writer: ids still assigned, nothing logged.
	buf.Reset()
	ts2 := httptest.NewServer(AccessLog(inner, nil))
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("nil-writer middleware dropped request ids")
	}
	if buf.Len() != 0 {
		t.Errorf("nil-writer middleware logged: %q", buf.String())
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := newRequestID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// Label values containing the exposition format's three special
// characters must be escaped on output, and FormatLabels/ParseLabels
// must round-trip arbitrary values — the fix for the raw-value writer.
func TestLabelValueEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		"line1\nline2",
		`every\thing "mixed" \n literal` + "\nreal",
		``,
		`trailing\`,
	}
	for _, v := range values {
		block := FormatLabels("path", v, "kind", "k")
		keys, vals, ok := ParseLabels(block)
		if !ok {
			t.Fatalf("ParseLabels(%q) failed (from value %q)", block, v)
		}
		if len(keys) != 2 || keys[0] != "path" || vals[0] != v || vals[1] != "k" {
			t.Fatalf("round trip broke: %q -> %q -> %v %v", v, block, keys, vals)
		}
		if strings.Contains(block, "\n") {
			t.Fatalf("FormatLabels left a raw newline in %q", block)
		}
	}
}

// A series registered with hostile label values must scrape as parseable
// exposition text: one line, escaped value, decodable back to the raw
// string.
func TestRegistryEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	raw := "a\\b \"c\"\nd"
	r.Counter("weird_total{" + FormatLabels("path", raw) + "}").Add(3)
	// A caller that bypassed FormatLabels and embedded a raw newline:
	// the writer must still emit a single escaped line.
	r.Gauge("raw_gauge{k=\"x\ny\"}").Set(1)
	r.Histogram("esc_seconds{"+FormatLabels("stage", raw)+"}", []time.Duration{time.Millisecond}).Observe(0)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		brace := strings.IndexByte(line, '{')
		if brace < 0 {
			continue
		}
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			t.Fatalf("unterminated label block: %q", line)
		}
		if _, _, ok := ParseLabels(line[brace+1 : end]); !ok {
			t.Fatalf("unparsable label block in line %q", line)
		}
	}
	if !strings.Contains(out, `weird_total{path="a\\b \"c\"\nd"} 3`) {
		t.Fatalf("counter label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `raw_gauge{k="x\ny"} 1`) {
		t.Fatalf("raw newline not escaped:\n%s", out)
	}
	// Histogram extra `le` label merges after the escaped stage label.
	if !strings.Contains(out, `esc_seconds_bucket{stage="a\\b \"c\"\nd",le="0.001"} 1`) {
		t.Fatalf("histogram label not escaped:\n%s", out)
	}
	// Decode back: the escaped value must parse to the raw original.
	_, vals, ok := ParseLabels(`path="a\\b \"c\"\nd"`)
	if !ok || vals[0] != raw {
		t.Fatalf("escaped output does not decode to the raw value: %v %q", ok, vals)
	}
}
