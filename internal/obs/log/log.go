// Package log is the structured, leveled logging layer of the
// observability stack — the stdlib-only counterpart to internal/obs's
// metrics and traces. Every command logs through it instead of ad-hoc
// fmt.Fprintf(os.Stderr, ...): one line per event, either human-oriented
// text or machine-parseable JSON, selected by the -log-format flag that
// each cmd exposes alongside -log-level.
//
// The API is built for hot paths: fields are typed values (no interface
// boxing), the variadic field slice never escapes, and a call below the
// logger's level — or on a nil logger — performs one atomic load and
// allocates nothing, so debug logging can sit inside per-file and
// per-shard loops at zero cost when disabled. Emission takes a short
// mutex per destination, so concurrent workers (and every logger derived
// via With) never interleave partial lines.
package log

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. Higher is more severe.
type Level int32

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("log: unknown level %q (want debug, info, warn, or error)", s)
}

// Format selects the line encoding.
type Format int32

const (
	// Text is the human-oriented default: "15:04:05.000 INFO  msg k=v".
	Text Format = iota
	// JSON emits one JSON object per line:
	// {"time":"...","level":"info","msg":"...","k":"v"}.
	JSON
)

// ParseFormat reads a -log-format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return Text, nil
	case "json":
		return JSON, nil
	}
	return Text, fmt.Errorf("log: unknown format %q (want text or json)", s)
}

// fieldKind discriminates the typed Field payload.
type fieldKind uint8

const (
	kindString fieldKind = iota
	kindInt
	kindDuration
	kindErr
)

// Field is one typed key/value annotation on a log line. Values are
// held unboxed so building fields never allocates; construct them with
// Str, Int, Dur, and Err.
type Field struct {
	Key  string
	kind fieldKind
	str  string
	num  int64
}

// Str annotates with a string value.
func Str(key, value string) Field { return Field{Key: key, kind: kindString, str: value} }

// Int annotates with an integer value.
func Int(key string, value int) Field { return Field{Key: key, kind: kindInt, num: int64(value)} }

// Int64 annotates with a 64-bit integer value.
func Int64(key string, value int64) Field { return Field{Key: key, kind: kindInt, num: value} }

// Dur annotates with a duration, rendered in Go's duration syntax.
func Dur(key string, value time.Duration) Field {
	return Field{Key: key, kind: kindDuration, num: int64(value)}
}

// Err annotates with an error under the conventional "err" key; a nil
// error renders as "<nil>".
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", kind: kindErr, str: "<nil>"}
	}
	return Field{Key: "err", kind: kindErr, str: err.Error()}
}

// value renders the field's payload as a plain string.
func (f Field) value() string {
	switch f.kind {
	case kindInt:
		return strconv.FormatInt(f.num, 10)
	case kindDuration:
		return time.Duration(f.num).String()
	default:
		return f.str
	}
}

// output is one log destination shared by a whole With-tree: the mutex
// keeps lines from concurrent goroutines (and child loggers) whole.
type output struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger writes leveled, structured lines to one destination. All
// methods are safe for concurrent use and are no-ops on a nil receiver,
// so optional logging plumbs through APIs without nil checks — the same
// contract as the obs span layer.
type Logger struct {
	level  *atomic.Int32 // shared by the With-tree: SetLevel reaches children
	format Format
	out    *output
	prefix []Field          // fields stamped on every line (With)
	now    func() time.Time // injectable clock for tests
}

// New returns a logger writing lines at or above level to w in the
// given format.
func New(w io.Writer, level Level, format Format) *Logger {
	l := &Logger{
		level:  new(atomic.Int32),
		format: format,
		out:    &output{w: w},
		now:    time.Now,
	}
	l.level.Store(int32(level))
	return l
}

// With returns a logger that stamps the given fields (after the parent's)
// on every line — the idiom for tagging a subsystem ("component") or a
// worker ("shard", "pid") once instead of at every call site. The child
// shares the parent's writer, mutex, and level. With on a nil logger
// returns nil.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	child := *l
	child.prefix = append(append([]Field(nil), l.prefix...), fields...)
	return &child
}

// SetLevel changes the minimum emitted level at runtime, for this logger
// and everything derived from it via With.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Enabled reports whether a line at the given level would be emitted.
// One atomic load; the zero-cost guard for expensive field computation.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// Debug logs at Debug level. Like every emitter it checks Enabled
// first, so a disabled call never renders its fields; the variadic
// field slice holds plain values and stays on the caller's stack,
// keeping the disabled path at zero allocations (pinned by
// TestDisabledLoggingZeroAlloc).
func (l *Logger) Debug(msg string, fields ...Field) { l.log(Debug, msg, fields) }

// Info logs at Info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(Info, msg, fields) }

// Warn logs at Warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(Warn, msg, fields) }

// Error logs at Error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(Error, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	t := l.now()
	var b strings.Builder
	if l.format == JSON {
		b.WriteString(`{"time":"`)
		b.WriteString(t.UTC().Format(time.RFC3339Nano))
		b.WriteString(`","level":"`)
		b.WriteString(level.String())
		b.WriteString(`","msg":`)
		writeJSONString(&b, msg)
		for _, f := range l.prefix {
			writeJSONField(&b, f)
		}
		for _, f := range fields {
			writeJSONField(&b, f)
		}
		b.WriteString("}\n")
	} else {
		b.WriteString(t.Format("15:04:05.000"))
		b.WriteByte(' ')
		name := strings.ToUpper(level.String())
		b.WriteString(name)
		for i := len(name); i < 5; i++ {
			b.WriteByte(' ')
		}
		b.WriteByte(' ')
		b.WriteString(msg)
		for _, f := range l.prefix {
			writeTextField(&b, f)
		}
		for _, f := range fields {
			writeTextField(&b, f)
		}
		b.WriteByte('\n')
	}
	l.out.mu.Lock()
	io.WriteString(l.out.w, b.String())
	l.out.mu.Unlock()
}

// writeTextField renders ` key=value`, quoting values that contain
// spaces, quotes, or control characters so lines stay one-per-event and
// splittable on whitespace.
func writeTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	v := f.value()
	if strings.ContainsAny(v, " \t\n\"=") || v == "" {
		b.WriteString(strconv.Quote(v))
	} else {
		b.WriteString(v)
	}
}

// writeJSONField renders `,"key":value` with integers unquoted.
func writeJSONField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	writeJSONString(b, f.Key)
	b.WriteByte(':')
	if f.kind == kindInt {
		b.WriteString(strconv.FormatInt(f.num, 10))
		return
	}
	writeJSONString(b, f.value())
}

// writeJSONString writes s as a JSON string literal. Only the escapes
// JSON requires: quote, backslash, and control characters.
func writeJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c == '\r':
			b.WriteString(`\r`)
		case c < 0x20:
			fmt.Fprintf(b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// FromFlags builds a logger from the -log-level and -log-format flag
// values every cmd exposes, writing to w (conventionally stderr,
// keeping stdout for results). Invalid values return an error listing
// the accepted spellings.
func FromFlags(w io.Writer, level, format string) (*Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	f, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return New(w, lv, f), nil
}
