package log

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 34, 56, 789000000, time.UTC)
}

func newTestLogger(buf *bytes.Buffer, level Level, format Format) *Logger {
	l := New(buf, level, format)
	l.now = fixedClock
	return l
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Debug, Text)
	l.Info("shard done", Int("shard", 3), Dur("wall", 1500*time.Millisecond), Str("phase", "stmts"))
	got := buf.String()
	want := "12:34:56.789 INFO  shard done shard=3 wall=1.5s phase=stmts\n"
	if got != want {
		t.Fatalf("text line = %q, want %q", got, want)
	}
}

func TestTextQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Debug, Text)
	l.Warn("odd", Str("v", `a "b" c`), Str("empty", ""))
	got := buf.String()
	if !strings.Contains(got, `v="a \"b\" c"`) || !strings.Contains(got, `empty=""`) {
		t.Fatalf("quoting wrong: %q", got)
	}
}

func TestJSONFormatParses(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Debug, JSON)
	l.With(Str("component", "driver")).Error(`bad "path"`,
		Int("shard", 7), Err(errors.New("boom\nline2")), Dur("wall", time.Second))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line does not parse as JSON: %v\n%s", err, buf.String())
	}
	if m["level"] != "error" || m["msg"] != `bad "path"` || m["component"] != "driver" {
		t.Fatalf("fields wrong: %v", m)
	}
	if m["shard"] != float64(7) {
		t.Fatalf("int field not numeric: %v (%T)", m["shard"], m["shard"])
	}
	if m["err"] != "boom\nline2" {
		t.Fatalf("err field = %q", m["err"])
	}
	if m["time"] != "2026-08-08T12:34:56.789Z" {
		t.Fatalf("time = %v", m["time"])
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Warn, Text)
	l.Debug("no")
	l.Info("no")
	l.Warn("yes")
	l.Error("yes")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", n, buf.String())
	}
	l.SetLevel(Debug)
	l.Debug("now")
	if !strings.Contains(buf.String(), "now") {
		t.Fatal("SetLevel(Debug) did not enable debug lines")
	}
}

func TestWithSharesLevelAndWriter(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Info, Text)
	child := l.With(Int("pid", 42))
	l.SetLevel(Error) // must reach the child
	child.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("child ignored parent SetLevel: %q", buf.String())
	}
	child.SetLevel(Info)
	child.Info("kept")
	if !strings.Contains(buf.String(), "pid=42") {
		t.Fatalf("child prefix missing: %q", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x", Int("a", 1))
	l.Info("x")
	l.Warn("x")
	l.Error("x", Err(errors.New("e")))
	l.SetLevel(Debug)
	if l.Enabled(Error) {
		t.Fatal("nil logger claims to be enabled")
	}
	if l.With(Str("k", "v")) != nil {
		t.Fatal("With on nil logger must return nil")
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, "warn": Warn, "warning": Warn, "error": Error, "ERROR": Error,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	for in, want := range map[string]Format{"text": Text, "": Text, "json": JSON, "JSON": JSON} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted garbage")
	}
}

func TestFromFlags(t *testing.T) {
	var buf bytes.Buffer
	l, err := FromFlags(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("lines = %d, want 1", n)
	}
	if _, err := FromFlags(&buf, "bogus", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := FromFlags(&buf, "info", "bogus"); err == nil {
		t.Error("bad format accepted")
	}
}

// Concurrent emitters — including With-derived children — must never
// interleave partial lines. Run under -race in tier1.
func TestConcurrentNoInterleave(t *testing.T) {
	var buf lockedBuffer
	l := New(&buf, Debug, Text)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.With(Int("worker", g))
			for i := 0; i < 200; i++ {
				child.Info("tick", Int("i", i), Str("pad", strings.Repeat("x", 64)))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("lines = %d, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.HasSuffix(line, strings.Repeat("x", 64)) || strings.Count(line, "tick") != 1 {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

// lockedBuffer guards a bytes.Buffer: the logger serializes its own
// writes, but the race detector needs the buffer itself to be safe for
// the final read.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// The zero-overhead guard of the PR: a call below the level — or on a
// nil logger — must not allocate, so debug logging can sit in per-file
// and per-shard hot loops.
func TestDisabledLoggingZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Error, Text)
	err := errors.New("static")
	allocs := testing.AllocsPerRun(1000, func() {
		l.Debug("hot path", Int("files", 12345), Str("shard", "shard-0001"),
			Dur("wall", time.Second), Err(err))
		l.Info("hot path", Int("files", 12345))
	})
	if allocs != 0 {
		t.Fatalf("disabled logging allocates %.1f per call, want 0", allocs)
	}
	var nl *Logger
	allocs = testing.AllocsPerRun(1000, func() {
		nl.Error("hot path", Int("files", 12345), Str("k", "v"))
	})
	if allocs != 0 {
		t.Fatalf("nil logger allocates %.1f per call, want 0", allocs)
	}
	if buf.Len() != 0 {
		t.Fatalf("disabled logger wrote output: %q", buf.String())
	}
}

func TestJSONEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, Debug, JSON)
	weird := "tab\there \"quote\" back\\slash\nnewline \x01ctl"
	l.Info(weird, Str("k", weird))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("does not parse: %v\n%s", err, buf.String())
	}
	if m["msg"] != weird || m["k"] != weird {
		t.Fatalf("round trip broke: %q vs %q", m["msg"], weird)
	}
}

func TestErrNil(t *testing.T) {
	f := Err(nil)
	if f.Key != "err" || f.value() != "<nil>" {
		t.Fatalf("Err(nil) = %+v", f)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{Debug: "debug", Info: "info", Warn: "warn", Error: "error"} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
	if fmt.Sprint(Level(99)) != "error" {
		t.Error("out-of-range level should render as error")
	}
}
