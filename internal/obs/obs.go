// Package obs is the stdlib-only observability layer of the serving
// stack: monotonic counters, gauges, fixed-bucket latency histograms
// with quantile estimation, a registry that renders everything in the
// Prometheus text exposition format, and an HTTP middleware that
// assigns request ids and emits structured JSON access logs.
//
// Everything is safe for concurrent use. Counters and histograms are
// lock-free on the hot path (atomic adds); the registry takes a mutex
// only on metric creation and on scrape. There are no third-party
// dependencies: the package exists so the daemon can be observed in
// production without pulling a client library into the build.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters should normally come from Registry.Counter so
// they appear on /metrics.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0; negative deltas are
// ignored to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, open
// connections).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (either sign).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets covers serving latencies from 100µs to 30s,
// roughly exponential. The final +Inf bucket is implicit.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// upper bounds in the Prometheus style; observations beyond the last
// bound land in the implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds, +Inf implicit
	counts []atomic.Int64  // len(bounds)+1, last is +Inf
	sum    atomic.Int64    // nanoseconds
	total  atomic.Int64
}

// NewHistogram builds a histogram over the given sorted upper bounds.
// Passing nil uses DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile from the bucket counts by linear
// interpolation inside the target bucket, the same estimate
// Prometheus' histogram_quantile computes. The edge cases are pinned,
// never NaN and never extrapolated beyond the bucket layout:
//
//   - an empty histogram returns 0 for every q;
//   - q <= 0 returns 0 and q > 1 is clamped to 1;
//   - ranks landing in the +Inf bucket — including a histogram whose
//     observations all overflowed the last finite bound — clamp to
//     that largest finite bound rather than extrapolating.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if n == 0 {
			// Unreachable for q > 0 (an empty bucket cannot move cum
			// past the rank), kept as a defined floor: no observation
			// means no interpolation above the bucket's lower bound.
			return lo
		}
		frac := (rank - cum) / n
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns the per-bucket (non-cumulative) counts,
// including the +Inf bucket, as a snapshot.
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// metricKind discriminates registry entries for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series: a base name, an optional label set
// (the `k="v",...` inside the braces), and the metric itself.
type entry struct {
	base   string
	labels string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Series names may carry labels inline: Counter(`x{code="200"}`)
// and Counter(`x{code="500"}`) are two series of one metric family.
type Registry struct {
	mu        sync.Mutex
	entries   map[string]*entry // full name -> entry
	order     []string          // insertion order of full names
	scrapeFns []func()          // run before each scrape snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// splitName separates `base{labels}` into base and the inner labels
// (without braces); names without braces have empty labels.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// get returns the entry for name, creating it (and its metric, under
// the registry lock — concurrent first uses of one series must agree on
// the object) with kind when absent. A name registered twice with
// different kinds panics: that is a programming error, not a runtime
// condition. bounds only applies to histograms.
func (r *Registry) get(name string, kind metricKind, bounds []time.Duration) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	base, labels := splitName(name)
	e := &entry{base: base, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = NewHistogram(bounds)
	}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the counter series with the given name (which may
// include labels), creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.get(name, kindCounter, nil).c
}

// Gauge returns the gauge series with the given name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.get(name, kindGauge, nil).g
}

// Histogram returns the histogram series with the given name, creating
// it over bounds (nil = DefaultLatencyBuckets) on first use.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	return r.get(name, kindHistogram, bounds).h
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before the snapshot is taken — the hook for sampled metrics
// (runtime stats) that would be wasteful to keep current continuously.
// fn must only touch already-created metrics (Set/Add/Observe).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.scrapeFns = append(r.scrapeFns, fn)
	r.mu.Unlock()
}

// seconds renders a duration as a float seconds literal.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

// EscapeLabelValue escapes a raw label value per the Prometheus text
// exposition format: backslash, double quote, and line feed become
// `\\`, `\"`, and `\n`. Everything else passes through verbatim.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// FormatLabels renders alternating key, value pairs as the inside of a
// label block — `k1="v1",k2="v2"` — escaping each raw value for the
// exposition format. Use it to build labeled series names from values
// that may contain quotes, backslashes, or newlines:
//
//	reg.Gauge("info{" + obs.FormatLabels("path", path) + "}")
//
// An odd trailing key is dropped.
func FormatLabels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// labelPair is one parsed k="v" with the value in raw (unescaped) form.
type labelPair struct {
	key, value string
}

// ParseLabels parses the inside of a label block (`k1="v1",k2="v2"`)
// into key/raw-value pairs, decoding the exposition-format escapes
// (`\\`, `\"`, `\n`); unknown backslash sequences keep the backslash,
// matching Prometheus' parser. ok is false when the block is malformed
// (unquoted values, missing '='), in which case the caller should treat
// the block as opaque. FormatLabels and ParseLabels round-trip any
// value.
func ParseLabels(s string) (keys, values []string, ok bool) {
	pairs, ok := parseLabelPairs(s)
	if !ok {
		return nil, nil, false
	}
	for _, p := range pairs {
		keys = append(keys, p.key)
		values = append(values, p.value)
	}
	return keys, values, true
}

func parseLabelPairs(s string) ([]labelPair, bool) {
	var pairs []labelPair
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, false
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if key == "" || i >= len(s) || s[i] != '"' {
			return nil, false
		}
		i++ // opening quote
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, labelPair{key: key, value: val.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, false
			}
			i++
		}
	}
	return pairs, true
}

// canonicalLabels re-renders a label block with every value decoded and
// re-escaped, so raw quotes, backslashes, and newlines that reached the
// registry inside a series name can never corrupt the exposition
// output. Malformed blocks are returned unchanged (the historical
// behaviour) rather than guessed at.
func canonicalLabels(labels string) string {
	if labels == "" || !strings.ContainsAny(labels, "\\\n") {
		// Fast path: nothing to decode and nothing needing escape — a
		// block without backslashes or newlines renders identically.
		return labels
	}
	pairs, ok := parseLabelPairs(labels)
	if !ok {
		return labels
	}
	kv := make([]string, 0, len(pairs)*2)
	for _, p := range pairs {
		kv = append(kv, p.key, p.value)
	}
	return FormatLabels(kv...)
}

// mergeLabels joins a series' own labels with an extra label into one
// brace block, or returns "" when both are empty. The series labels are
// canonicalized (parsed and re-escaped) on the way out.
func mergeLabels(labels, extra string) string {
	labels = canonicalLabels(labels)
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every registered series in the text
// exposition format, families sorted by name with one # TYPE line each.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fns := r.scrapeFns
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}

	r.mu.Lock()
	names := append([]string(nil), r.order...)
	entries := make([]*entry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].base != entries[j].base {
			return entries[i].base < entries[j].base
		}
		return entries[i].labels < entries[j].labels
	})

	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, e := range entries {
		if e.base != lastBase {
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.base, e.kind)
			lastBase = e.base
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", e.base, mergeLabels(e.labels, ""), e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", e.base, mergeLabels(e.labels, ""), e.g.Value())
		case kindHistogram:
			var cum int64
			counts := e.h.bucketCounts()
			for i, n := range counts {
				cum += n
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = seconds(e.h.bounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					e.base, mergeLabels(e.labels, fmt.Sprintf("le=%q", le)), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", e.base, mergeLabels(e.labels, ""), seconds(e.h.Sum()))
			fmt.Fprintf(bw, "%s_count%s %d\n", e.base, mergeLabels(e.labels, ""), cum)
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler that serves the registry as a
// Prometheus scrape target (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
