package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the pipeline tracing layer: context-carried spans over
// one Trace, recorded into a flat per-trace buffer (one short mutex
// section per span start), with two exporters — Chrome trace-event JSON
// for chrome://tracing / Perfetto and a compact text tree for logs —
// plus a flight recorder that keeps the N slowest recent traces for
// the daemon's /debug/traces endpoint.
//
// Tracing is strictly opt-in per call tree: a context that never passed
// through NewTrace carries no span, StartSpan returns a nil *Span, and
// every Span method is a nil-safe no-op. The disabled path performs one
// context value lookup and zero allocations, so instrumentation can sit
// on warm paths (per-file, per-shard) without a config switch.

// DefaultMaxSpans bounds the per-trace span buffer; spans started past
// the cap are dropped (counted in Dropped) rather than growing a
// pathological request's trace without bound.
const DefaultMaxSpans = 16384

// spanCtxKey carries the current *Span in a context.
type spanCtxKey struct{}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. A span is owned by the goroutine
// that started it: SetAttr/End must be called from that goroutine (the
// trace-level buffer handles cross-goroutine span creation). All methods
// are no-ops on a nil receiver, the disabled-tracing fast path.
type Span struct {
	tr     *Trace
	id     int32
	parent int32 // -1 for the root
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []Attr
}

// Trace is one trace: a root span plus every descendant, recorded in
// start order. Creating spans from concurrent goroutines is safe; the
// exporters must only run after the work feeding the trace has finished
// (Finish provides the natural barrier). A trace can additionally carry
// external lanes — span batches recorded by other processes (worker
// subprocesses) and shipped back over the wire — which the Chrome
// exporter renders under their real PIDs next to this process's lanes.
type Trace struct {
	id   string
	name string

	mu       sync.Mutex
	spans    []*Span
	dropped  int
	maxSpans int
	external []externalBatch

	start time.Time
	end   time.Time // zero until Finish
	root  *Span
}

// externalBatch is one shipped span batch from another process.
type externalBatch struct {
	pid   int
	label string
	spans []WireSpan
}

// NewTrace starts a trace with a root span of the given name and binds
// it to the returned context: StartSpan calls below that context attach
// child spans. An empty id mints a process-unique one (the same scheme
// as request ids).
func NewTrace(ctx context.Context, name, id string) (context.Context, *Trace) {
	if id == "" {
		id = newRequestID()
	}
	t := &Trace{id: id, name: name, maxSpans: DefaultMaxSpans, start: time.Now()}
	t.root = &Span{tr: t, id: 0, parent: -1, name: name, start: t.start}
	t.spans = append(t.spans, t.root)
	return context.WithValue(ctx, spanCtxKey{}, t.root), t
}

// ContextWithSpan rebinds a span as the current one, for handing a
// subtree to code that takes a fresh context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil outside a trace.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying the child. Outside a trace (or once the trace's span
// budget is exhausted) it returns the context unchanged and a nil span,
// at the cost of one context lookup and no allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tr.newSpan(name, parent.id)
	if child == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanCtxKey{}, child), child
}

// newSpan records a span in the trace buffer, or returns nil once the
// buffer is full.
func (t *Trace) newSpan(name string, parent int32) *Span {
	s := &Span{tr: t, parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	s.id = int32(len(t.spans))
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SetAttr annotates the span; no-op when nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value; no-op when nil
// (the formatting cost is only paid when tracing is live).
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(value)})
}

// End closes the span, recording its duration. Idempotent; no-op when
// nil.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
}

// Duration returns the recorded duration; ok is false for a nil
// (disabled) span or one that has not ended yet.
func (s *Span) Duration() (time.Duration, bool) {
	if s == nil || !s.ended {
		return 0, false
	}
	return s.dur, true
}

// Name returns the span name ("" when nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the trace id.
func (t *Trace) ID() string { return t.id }

// Name returns the root span name.
func (t *Trace) Name() string { return t.name }

// Start returns when the trace began.
func (t *Trace) Start() time.Time { return t.start }

// Root returns the root span (for attaching attributes to the whole
// trace).
func (t *Trace) Root() *Span { return t.root }

// SetMaxSpans raises or lowers the span budget (default
// DefaultMaxSpans); spans already recorded are kept even if over the
// new cap.
func (t *Trace) SetMaxSpans(n int) {
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// Finish ends the root span and stamps the trace end time. Call it
// after all work feeding the trace has completed; it is the
// happens-before edge the exporters rely on.
func (t *Trace) Finish() {
	t.root.End()
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Duration is the root span's duration (elapsed-so-far before Finish).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	end := t.end
	t.mu.Unlock()
	if end.IsZero() {
		return time.Since(t.start)
	}
	return end.Sub(t.start)
}

// SpanCount returns how many spans were recorded (including the root).
func (t *Trace) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded over the buffer cap.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanInfo is an exported snapshot of one span, for tests and tools
// that aggregate trace data.
type SpanInfo struct {
	ID       int
	Parent   int // -1 for the root
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Spans snapshots every recorded span in start (= record) order. Spans
// that never ended are reported as ending at the trace end.
func (t *Trace) Spans() []SpanInfo {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	end := t.end
	t.mu.Unlock()
	out := make([]SpanInfo, len(spans))
	for i, s := range spans {
		d := s.dur
		if !s.ended {
			if !end.IsZero() && end.After(s.start) {
				d = end.Sub(s.start)
			} else {
				d = 0
			}
		}
		out[i] = SpanInfo{
			ID: int(s.id), Parent: int(s.parent), Name: s.name,
			Start: s.start, Duration: d, Attrs: s.attrs,
		}
	}
	return out
}

// --- cross-process span shipping ---

// WireSpan is the wire shape of one span when a process ships its trace
// to another (the driver's worker protocol). Parents are batch-local
// indices, start times are absolute wall-clock nanoseconds — processes
// on one machine share a clock, which is the deployment the driver
// supports — and the JSON keys are one letter because a corpus-scale
// job ships thousands of them per result line.
type WireSpan struct {
	Name        string `json:"n"`
	Parent      int32  `json:"p"` // index into the same batch; -1 for the batch root
	StartUnixNs int64  `json:"s"`
	DurNs       int64  `json:"d"`
	Attrs       []Attr `json:"a,omitempty"`
}

// WireSpans snapshots every recorded span as a wire batch ready for
// JSON shipping. Call after Finish (or at least after the spans of
// interest have ended); unfinished spans export with their
// elapsed-at-trace-end duration, exactly as Spans reports them.
func (t *Trace) WireSpans() []WireSpan {
	spans := t.Spans()
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		out[i] = WireSpan{
			Name:        s.Name,
			Parent:      int32(s.Parent),
			StartUnixNs: s.Start.UnixNano(),
			DurNs:       int64(s.Duration),
			Attrs:       s.Attrs,
		}
	}
	return out
}

// AddExternalSpans grafts a span batch recorded by another process onto
// this trace as a lane keyed by that process's real pid; label names
// the lane in the Chrome export ("worker pid=1234"). The batch is
// validated first: every parent must be -1 or the index of an earlier
// span in the same batch, so a corrupt or truncated shipment can never
// produce orphan parent ids in the merged trace. Safe for concurrent
// use with span creation.
func (t *Trace) AddExternalSpans(pid int, label string, spans []WireSpan) error {
	for i, s := range spans {
		if s.Parent < -1 || int(s.Parent) >= len(spans) {
			return fmt.Errorf("obs: external span %d (%q) has orphan parent %d (batch of %d)",
				i, s.Name, s.Parent, len(spans))
		}
		if int(s.Parent) == i {
			return fmt.Errorf("obs: external span %d (%q) is its own parent", i, s.Name)
		}
		if s.DurNs < 0 {
			return fmt.Errorf("obs: external span %d (%q) has negative duration", i, s.Name)
		}
	}
	t.mu.Lock()
	t.external = append(t.external, externalBatch{pid: pid, label: label, spans: spans})
	t.mu.Unlock()
	return nil
}

// ExternalSpanCount returns how many external (shipped) spans the trace
// carries, and how many distinct external pids they came from.
func (t *Trace) ExternalSpanCount() (spans, pids int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[int]bool{}
	for _, b := range t.external {
		spans += len(b.spans)
		seen[b.pid] = true
	}
	return spans, len(seen)
}

// Trace returns the trace a span belongs to (nil for a nil/disabled
// span) — the hook code deep in a call tree uses to graft external
// lanes onto the active trace.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// TraceFromContext returns the trace the context's current span belongs
// to, or nil outside a trace.
func TraceFromContext(ctx context.Context) *Trace {
	return SpanFromContext(ctx).Trace()
}

// --- Chrome trace-event exporter ---

// chromeEvent is one complete ("X") event of the Chrome trace-event
// format (the JSON-array flavour chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds from trace start
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace as Chrome trace-event JSON.
// Concurrent spans are laid out on synthetic thread lanes: a span lands
// on its parent's lane when the parent is still the innermost open span
// there (so sequential pipelines nest visually), otherwise on the first
// idle lane — the layout a real multi-worker run has, one lane per
// concurrently active span. This process's spans render under pid 1;
// external lanes added with AddExternalSpans render under their real
// worker pids, each named by a process_name metadata event, so a
// distributed mine reads as one timeline with a lane per process.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := t.chromeEvents(t.Spans(), 1, map[string]string{"trace_id": t.id})

	t.mu.Lock()
	external := append([]externalBatch(nil), t.external...)
	t.mu.Unlock()
	// One lane group per pid: batches from the same worker process (one
	// per job) concatenate, with batch-local parent ids rebased so the
	// lane layout sees one consistent id space.
	byPid := map[int]*externalBatch{}
	var pidOrder []int
	for _, b := range external {
		g, ok := byPid[b.pid]
		if !ok {
			g = &externalBatch{pid: b.pid, label: b.label}
			byPid[b.pid] = g
			pidOrder = append(pidOrder, b.pid)
		}
		offset := len(g.spans)
		for _, s := range b.spans {
			if s.Parent >= 0 {
				s.Parent += int32(offset)
			}
			g.spans = append(g.spans, s)
		}
	}
	for _, pid := range pidOrder {
		g := byPid[pid]
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: g.pid,
			Args: map[string]string{"name": g.label},
		})
		infos := make([]SpanInfo, len(g.spans))
		for i, s := range g.spans {
			infos[i] = SpanInfo{
				ID:       i,
				Parent:   int(s.Parent),
				Name:     s.Name,
				Start:    time.Unix(0, s.StartUnixNs),
				Duration: time.Duration(s.DurNs),
				Attrs:    s.Attrs,
			}
		}
		events = append(events, t.chromeEvents(infos, g.pid, nil)...)
	}

	data, err := json.Marshal(events)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// chromeEvents lays spans out on thread lanes under one pid, with ts
// relative to the trace start (external spans that began before the
// trace clamp to 0). rootArgs, when non-nil, is merged into the args of
// parentless spans.
func (t *Trace) chromeEvents(spans []SpanInfo, pid int, rootArgs map[string]string) []chromeEvent {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if !sa.Start.Equal(sb.Start) {
			return sa.Start.Before(sb.Start)
		}
		if sa.Duration != sb.Duration {
			return sa.Duration > sb.Duration // parents before children on ties
		}
		return sa.ID < sb.ID
	})

	lanes := make([][]SpanInfo, 0, 4) // per-lane stack of open spans
	laneOf := make(map[int]int, len(spans))
	popFinished := func(lane int, at time.Time) {
		stack := lanes[lane]
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.Start.Add(top.Duration).After(at) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		lanes[lane] = stack
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, i := range order {
		s := spans[i]
		lane := -1
		if pl, ok := laneOf[s.Parent]; ok {
			popFinished(pl, s.Start)
			if n := len(lanes[pl]); n > 0 && lanes[pl][n-1].ID == s.Parent {
				lane = pl
			}
		}
		if lane < 0 {
			for li := range lanes {
				popFinished(li, s.Start)
				if len(lanes[li]) == 0 {
					lane = li
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		lanes[lane] = append(lanes[lane], s)
		laneOf[s.ID] = lane

		ts := float64(s.Start.Sub(t.start)) / float64(time.Microsecond)
		if ts < 0 {
			ts = 0
		}
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   ts,
			Dur:  float64(s.Duration) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  lane + 1,
		}
		if len(s.Attrs) > 0 || (s.Parent == -1 && len(rootArgs) > 0) {
			ev.Args = make(map[string]string, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.Parent == -1 {
				for k, v := range rootArgs {
					ev.Args[k] = v
				}
			}
		}
		events = append(events, ev)
	}
	return events
}

// --- compact text tree exporter ---

// treeGroupThreshold is how many same-named siblings collapse into one
// "name ×N" line in WriteTree (per-file spans would otherwise swamp the
// log output of a corpus run).
const treeGroupThreshold = 4

// WriteTree renders the trace as an indented tree, one line per span,
// with durations and percent of total; runs of >= treeGroupThreshold
// same-named siblings collapse to a single aggregate line.
func (t *Trace) WriteTree(w io.Writer) error {
	spans := t.Spans()
	children := make(map[int][]SpanInfo)
	for _, s := range spans {
		if s.Parent >= 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	total := t.Duration()
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s (%d spans", t.name, fmtDur(total), len(spans))
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, ", %d dropped", d)
	}
	b.WriteString(")\n")
	writeTreeLevel(&b, children, 0, "", total)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeTreeLevel(b *strings.Builder, children map[int][]SpanInfo, id int, prefix string, total time.Duration) {
	kids := children[id]
	// Group siblings by name, preserving first-appearance order.
	type group struct {
		name  string
		spans []SpanInfo
	}
	var groups []*group
	byName := map[string]*group{}
	for _, k := range kids {
		g := byName[k.Name]
		if g == nil {
			g = &group{name: k.Name}
			byName[k.Name] = g
			groups = append(groups, g)
		}
		g.spans = append(g.spans, k)
	}
	// One output row per group (collapsed) or per span (small groups).
	type row struct {
		collapsed bool
		g         *group
		s         SpanInfo
	}
	var rows []row
	for _, g := range groups {
		if len(g.spans) >= treeGroupThreshold {
			rows = append(rows, row{collapsed: true, g: g})
			continue
		}
		for _, s := range g.spans {
			rows = append(rows, row{s: s})
		}
	}
	for i, r := range rows {
		branch, cont := "├─ ", "│  "
		if i == len(rows)-1 {
			branch, cont = "└─ ", "   "
		}
		if r.collapsed {
			var sum, max time.Duration
			for _, s := range r.g.spans {
				sum += s.Duration
				if s.Duration > max {
					max = s.Duration
				}
			}
			fmt.Fprintf(b, "%s%s%s ×%d total=%s max=%s%s\n",
				prefix, branch, r.g.name, len(r.g.spans), fmtDur(sum), fmtDur(max), pct(sum, total))
			continue
		}
		s := r.s
		fmt.Fprintf(b, "%s%s%s %s%s%s\n",
			prefix, branch, s.Name, fmtDur(s.Duration), pct(s.Duration, total), fmtAttrs(s.Attrs))
		writeTreeLevel(b, children, s.ID, prefix+cont, total)
	}
}

// fmtDur rounds a duration to a readable precision for tree output.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(100 * time.Nanosecond).String()
}

func pct(d, total time.Duration) string {
	if total <= 0 {
		return ""
	}
	return fmt.Sprintf(" %.1f%%", 100*float64(d)/float64(total))
}

func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" {")
	for i, a := range attrs {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(a.Key)
		b.WriteString("=")
		b.WriteString(a.Value)
	}
	b.WriteString("}")
	return b.String()
}

// --- flight recorder ---

// FlightRecorder keeps the N slowest recent finished traces: a new
// trace always enters while there is room, and once full it evicts the
// current fastest if (and only if) it is slower — the slowest-N
// invariant the /debug/traces endpoint serves from.
type FlightRecorder struct {
	mu     sync.Mutex
	cap    int
	traces []*Trace
}

// NewFlightRecorder returns a recorder keeping the n slowest traces
// (n < 1 keeps 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{cap: n}
}

// Add offers a finished trace; it reports whether the trace was kept.
func (fr *FlightRecorder) Add(tr *Trace) bool {
	d := tr.Duration()
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.traces) < fr.cap {
		fr.traces = append(fr.traces, tr)
		return true
	}
	min := 0
	for i := range fr.traces {
		if fr.traces[i].Duration() < fr.traces[min].Duration() {
			min = i
		}
	}
	if d <= fr.traces[min].Duration() {
		return false
	}
	fr.traces[min] = tr
	return true
}

// Len returns how many traces are held.
func (fr *FlightRecorder) Len() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.traces)
}

// Slowest returns the held traces sorted slowest first.
func (fr *FlightRecorder) Slowest() []*Trace {
	fr.mu.Lock()
	out := append([]*Trace(nil), fr.traces...)
	fr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration() > out[j].Duration() })
	return out
}

// Get returns the held trace with the given id, or nil.
func (fr *FlightRecorder) Get(id string) *Trace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, t := range fr.traces {
		if t.id == id {
			return t
		}
	}
	return nil
}

// TraceSummary is one entry of the /debug/traces listing.
type TraceSummary struct {
	ID             string  `json:"id"`
	Name           string  `json:"name"`
	Start          string  `json:"start"`
	DurationMillis float64 `json:"duration_ms"`
	Spans          int     `json:"spans"`
	Dropped        int     `json:"dropped_spans,omitempty"`
	Tree           string  `json:"tree"`
}

// Handler serves the recorder over HTTP: a JSON list of held traces
// (slowest first, each with its text tree), or — with ?id=<trace id> or
// ?id=slowest — one trace as Chrome trace-event JSON, ready for
// chrome://tracing or Perfetto.
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			var out []TraceSummary
			for _, t := range fr.Slowest() {
				var tree strings.Builder
				t.WriteTree(&tree)
				out = append(out, TraceSummary{
					ID:             t.ID(),
					Name:           t.Name(),
					Start:          t.Start().UTC().Format(time.RFC3339Nano),
					DurationMillis: float64(t.Duration().Microseconds()) / 1000,
					Spans:          t.SpanCount(),
					Dropped:        t.Dropped(),
					Tree:           tree.String(),
				})
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(out)
			return
		}
		var tr *Trace
		if id == "slowest" {
			if ts := fr.Slowest(); len(ts) > 0 {
				tr = ts[0]
			}
		} else {
			tr = fr.Get(id)
		}
		if tr == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "{\"error\":\"no trace %q\"}\n", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	})
}
