package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// A Final arriving microseconds after the last emitted line must not
// compute the moving rate over the near-zero window — it falls back to
// the lifetime average instead of printing an absurd rate and ETA.
func TestProgressFinalRateNotSpiked(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(0)
	clock := p.start
	p.now = func() time.Time { return clock }

	clock = clock.Add(10 * time.Second)
	p.Update(500, 1000, 0) // lifetime and moving rate agree: 50.0/s

	clock = clock.Add(50 * time.Microsecond)
	p.Final(501, 1000, 0) // moving window is 50µs — must fall back

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "50.0 files/s") {
		t.Errorf("update line rate = %q, want 50.0 files/s", lines[0])
	}
	// 501 files over ~10s lifetime ≈ 50.1/s; the buggy moving rate would
	// have been 1 file / 50µs = 20000/s.
	if !strings.Contains(lines[1], "50.1 files/s") {
		t.Errorf("final line rate = %q, want the lifetime average 50.1 files/s", lines[1])
	}
}

// A moving window at or above the floor still tracks mid-run speed
// changes rather than the lifetime average.
func TestProgressMovingRateTracksSpeedup(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(0)
	clock := p.start
	p.now = func() time.Time { return clock }

	clock = clock.Add(10 * time.Second)
	p.Update(100, 1000, 0) // 10/s lifetime

	clock = clock.Add(1 * time.Second)
	p.Update(300, 1000, 0) // 200 files in the last second

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[1], "200.0 files/s") {
		t.Errorf("second line rate = %q, want the moving 200.0 files/s", lines[1])
	}
}

func TestProgressFirstUpdateEmitsImmediately(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "mine", "shards")
	// Default interval is 2s; the first Update must not wait for it.
	p.Update(1, 8, 0)
	if !strings.HasPrefix(buf.String(), "mine: 1/8 shards") {
		t.Fatalf("first update silent or wrong: %q", buf.String())
	}
}

func TestProgressAggregatorSumsSources(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "map", "files")
	p.SetInterval(0)
	a := NewProgressAggregator(p, 3, 30)
	a.Report(0, 5, 100)
	a.Report(2, 7, 200)
	a.Report(0, 6, 120) // absolute re-report must replace, not add
	a.Final()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "map: 13/30 files") {
		t.Fatalf("final aggregate = %q, want 13/30", last)
	}
	if !strings.Contains(last, "320 statements") {
		t.Fatalf("final aggregate = %q, want 320 statements", last)
	}
}

// The driver's multi-worker shape under -race: every worker goroutine
// reports its own shard concurrently while readers — interval-0 emits
// that format the cross-source sums, plus concurrent Final calls — walk
// the same per-source tables. Beyond the race detector, the emitted
// aggregate must be monotone: a formatted sum may never go backwards,
// which is exactly what a torn read of the done slice would produce.
func TestProgressAggregatorConcurrentReadsAndWrites(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "map", "files")
	p.SetInterval(0) // every Report takes the read+format path
	const sources, perSource = 8, 200
	a := NewProgressAggregator(p, sources, sources*perSource)
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= perSource; i++ {
				a.Report(s, i, 2*i)
			}
		}(s)
	}
	// Interleave whole-table reads with the writers.
	for i := 0; i < 20; i++ {
		a.Final()
	}
	wg.Wait()
	a.Final()

	last := 0
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines {
		var done, total int
		if _, err := fmt.Sscanf(line, "map: %d/%d files", &done, &total); err != nil {
			t.Fatalf("unparseable progress line %q: %v", line, err)
		}
		if done < last {
			t.Fatalf("aggregate went backwards: %d after %d in %q", done, last, line)
		}
		last = done
	}
	if want := sources * perSource; last != want {
		t.Fatalf("final aggregate = %d, want %d", last, want)
	}
}

// syncBuffer makes the underlying buffer safe for the writer/reader
// interleaving above (Progress serializes its own writes, but the test
// also reads while writers run).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestProgressAggregatorConcurrent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "map", "files")
	a := NewProgressAggregator(p, 8, 800)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				a.Report(s, i, i)
			}
		}(s)
	}
	wg.Wait()
	a.Final()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "map: 800/800 files (100%)") {
		t.Fatalf("final aggregate = %q, want 800/800", last)
	}
}
