package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// A Final arriving microseconds after the last emitted line must not
// compute the moving rate over the near-zero window — it falls back to
// the lifetime average instead of printing an absurd rate and ETA.
func TestProgressFinalRateNotSpiked(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(0)
	clock := p.start
	p.now = func() time.Time { return clock }

	clock = clock.Add(10 * time.Second)
	p.Update(500, 1000, 0) // lifetime and moving rate agree: 50.0/s

	clock = clock.Add(50 * time.Microsecond)
	p.Final(501, 1000, 0) // moving window is 50µs — must fall back

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "50.0 files/s") {
		t.Errorf("update line rate = %q, want 50.0 files/s", lines[0])
	}
	// 501 files over ~10s lifetime ≈ 50.1/s; the buggy moving rate would
	// have been 1 file / 50µs = 20000/s.
	if !strings.Contains(lines[1], "50.1 files/s") {
		t.Errorf("final line rate = %q, want the lifetime average 50.1 files/s", lines[1])
	}
}

// A moving window at or above the floor still tracks mid-run speed
// changes rather than the lifetime average.
func TestProgressMovingRateTracksSpeedup(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(0)
	clock := p.start
	p.now = func() time.Time { return clock }

	clock = clock.Add(10 * time.Second)
	p.Update(100, 1000, 0) // 10/s lifetime

	clock = clock.Add(1 * time.Second)
	p.Update(300, 1000, 0) // 200 files in the last second

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[1], "200.0 files/s") {
		t.Errorf("second line rate = %q, want the moving 200.0 files/s", lines[1])
	}
}

func TestProgressFirstUpdateEmitsImmediately(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "mine", "shards")
	// Default interval is 2s; the first Update must not wait for it.
	p.Update(1, 8, 0)
	if !strings.HasPrefix(buf.String(), "mine: 1/8 shards") {
		t.Fatalf("first update silent or wrong: %q", buf.String())
	}
}

func TestProgressAggregatorSumsSources(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "map", "files")
	p.SetInterval(0)
	a := NewProgressAggregator(p, 3, 30)
	a.Report(0, 5, 100)
	a.Report(2, 7, 200)
	a.Report(0, 6, 120) // absolute re-report must replace, not add
	a.Final()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "map: 13/30 files") {
		t.Fatalf("final aggregate = %q, want 13/30", last)
	}
	if !strings.Contains(last, "320 statements") {
		t.Fatalf("final aggregate = %q, want 320 statements", last)
	}
}

func TestProgressAggregatorConcurrent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "map", "files")
	a := NewProgressAggregator(p, 8, 800)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				a.Report(s, i, i)
			}
		}(s)
	}
	wg.Wait()
	a.Final()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "map: 800/800 files (100%)") {
		t.Fatalf("final aggregate = %q, want 800/800", last)
	}
}
