package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingSequential(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "root", "trace-1")
	if tr.ID() != "trace-1" {
		t.Fatalf("ID = %q, want trace-1", tr.ID())
	}
	actx, a := StartSpan(ctx, "a")
	_, aa := StartSpan(actx, "a.a")
	aa.SetAttr("k", "v")
	aa.SetAttrInt("n", 7)
	aa.End()
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if got := byName["root"].Parent; got != -1 {
		t.Errorf("root parent = %d, want -1", got)
	}
	if got := byName["a"].Parent; got != byName["root"].ID {
		t.Errorf("a parent = %d, want root (%d)", got, byName["root"].ID)
	}
	if got := byName["a.a"].Parent; got != byName["a"].ID {
		t.Errorf("a.a parent = %d, want a (%d)", got, byName["a"].ID)
	}
	if got := byName["b"].Parent; got != byName["root"].ID {
		t.Errorf("b parent = %d, want root (%d)", got, byName["root"].ID)
	}
	attrs := byName["a.a"].Attrs
	if len(attrs) != 2 || attrs[0] != (Attr{"k", "v"}) || attrs[1] != (Attr{"n", "7"}) {
		t.Errorf("a.a attrs = %v", attrs)
	}
}

// TestSpanNestingConcurrent starts child spans from many goroutines at
// once — the shape core.ProcessFiles produces under parallel.ForEach —
// and checks every child landed under the right parent.
func TestSpanNestingConcurrent(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "root", "")
	sctx, stage := StartSpan(ctx, "stage")
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, s := StartSpan(sctx, "item")
			s.SetAttrInt("i", i)
			_, g := StartSpan(cctx, "grandchild")
			g.End()
			s.End()
		}(i)
	}
	wg.Wait()
	stage.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 2+2*n {
		t.Fatalf("got %d spans, want %d", len(spans), 2+2*n)
	}
	var stageID int = -2
	for _, s := range spans {
		if s.Name == "stage" {
			stageID = s.ID
		}
	}
	items := map[int]bool{} // item span id -> seen
	for _, s := range spans {
		if s.Name == "item" {
			if s.Parent != stageID {
				t.Fatalf("item %d parent = %d, want stage (%d)", s.ID, s.Parent, stageID)
			}
			items[s.ID] = true
		}
	}
	if len(items) != n {
		t.Fatalf("got %d item spans, want %d", len(items), n)
	}
	grandchildren := 0
	for _, s := range spans {
		if s.Name == "grandchild" {
			if !items[s.Parent] {
				t.Fatalf("grandchild %d parent = %d, not an item span", s.ID, s.Parent)
			}
			grandchildren++
		}
	}
	if grandchildren != n {
		t.Fatalf("got %d grandchildren, want %d", grandchildren, n)
	}
}

func TestStartSpanOutsideTrace(t *testing.T) {
	ctx := context.Background()
	cctx, s := StartSpan(ctx, "orphan")
	if s != nil {
		t.Fatal("StartSpan outside a trace returned a live span")
	}
	if cctx != ctx {
		t.Fatal("StartSpan outside a trace rewrapped the context")
	}
	// Every method must be a safe no-op on the nil span.
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.End()
	if _, ok := s.Duration(); ok {
		t.Fatal("nil span reported a duration")
	}
	if s.Name() != "" {
		t.Fatal("nil span reported a name")
	}
}

// TestDisabledTracingZeroAlloc pins the acceptance criterion that the
// scan hot path pays nothing when tracing is off: starting and ending a
// span on an untraced context must not allocate.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, s := StartSpan(ctx, "hot")
		s.SetAttr("k", "v")
		s.SetAttrInt("n", 42)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f per op, want 0", allocs)
	}
}

func TestSpanBudget(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "root", "")
	tr.SetMaxSpans(3) // root + two children
	_, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()
	cctx, c := StartSpan(ctx, "c") // over budget: dropped
	if c != nil {
		t.Fatal("span over budget was not dropped")
	}
	if cctx != ctx {
		t.Fatal("dropped span rewrapped the context")
	}
	tr.Finish()
	if got := tr.SpanCount(); got != 3 {
		t.Errorf("SpanCount = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "rt-1")
	actx, a := StartSpan(ctx, "stage_a")
	a.SetAttrInt("items", 3)
	_, aa := StartSpan(actx, "inner")
	time.Sleep(time.Millisecond)
	aa.End()
	a.End()
	_, b := StartSpan(ctx, "stage_b")
	time.Sleep(time.Millisecond)
	b.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	names := map[string]bool{}
	var rootDur float64
	for _, ev := range events {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative ts/dur: %v/%v", ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Pid != 1 || ev.Tid < 1 {
			t.Errorf("event %q pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
		}
		switch ev.Name {
		case "run":
			rootDur = ev.Dur
			if ev.Args["trace_id"] != "rt-1" {
				t.Errorf("root trace_id = %q, want rt-1", ev.Args["trace_id"])
			}
		case "stage_a":
			if ev.Args["items"] != "3" {
				t.Errorf("stage_a items = %q, want 3", ev.Args["items"])
			}
		}
	}
	for _, want := range []string{"run", "stage_a", "inner", "stage_b"} {
		if !names[want] {
			t.Errorf("export missing span %q", want)
		}
	}
	// Every child event fits inside the root's window.
	for _, ev := range events {
		if ev.Name == "run" {
			continue
		}
		if ev.Ts+ev.Dur > rootDur*1.01+1 {
			t.Errorf("event %q [%v, %v] extends past root end %v", ev.Name, ev.Ts, ev.Ts+ev.Dur, rootDur)
		}
	}
}

func TestWriteTreeGroupsSiblings(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "")
	sctx, stage := StartSpan(ctx, "process")
	for i := 0; i < 5; i++ {
		_, f := StartSpan(sctx, "file")
		f.End()
	}
	stage.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "file ×5") {
		t.Errorf("tree did not collapse 5 file siblings:\n%s", out)
	}
	if !strings.Contains(out, "process") {
		t.Errorf("tree missing process span:\n%s", out)
	}
	if strings.Count(out, "file") != 1 {
		t.Errorf("collapsed siblings still listed individually:\n%s", out)
	}
}

// fabricateTrace returns a finished trace whose Duration() is exactly d.
func fabricateTrace(name, id string, d time.Duration) *Trace {
	_, tr := NewTrace(context.Background(), name, id)
	tr.Finish()
	tr.end = tr.start.Add(d)
	return tr
}

func TestFlightRecorderSlowestN(t *testing.T) {
	fr := NewFlightRecorder(3)
	durations := []time.Duration{ // offered in this order
		5 * time.Millisecond,
		50 * time.Millisecond,
		10 * time.Millisecond,
		40 * time.Millisecond, // evicts 5ms
		1 * time.Millisecond,  // too fast: rejected
		10 * time.Millisecond, // ties the current min: rejected
		60 * time.Millisecond, // evicts 10ms
	}
	wantKept := []bool{true, true, true, true, false, false, true}
	for i, d := range durations {
		tr := fabricateTrace("req", fmt.Sprintf("t%d", i), d)
		if got := fr.Add(tr); got != wantKept[i] {
			t.Errorf("Add(trace %d, %v) = %v, want %v", i, d, got, wantKept[i])
		}
	}
	if fr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", fr.Len())
	}
	slowest := fr.Slowest()
	var got []time.Duration
	for _, tr := range slowest {
		got = append(got, tr.Duration())
	}
	want := []time.Duration{60 * time.Millisecond, 50 * time.Millisecond, 40 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slowest durations = %v, want %v", got, want)
		}
	}
	if tr := fr.Get("t1"); tr == nil || tr.Duration() != 50*time.Millisecond {
		t.Errorf("Get(t1) = %v", tr)
	}
	if tr := fr.Get("t0"); tr != nil {
		t.Errorf("Get(t0) returned an evicted trace")
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Add(fabricateTrace("scan_request", "fast", 2*time.Millisecond))
	fr.Add(fabricateTrace("scan_request", "slow", 20*time.Millisecond))
	h := fr.Handler()

	// Listing: slowest first, with text trees.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("list status = %d", rec.Code)
	}
	var list []TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if len(list) != 2 || list[0].ID != "slow" || list[1].ID != "fast" {
		t.Fatalf("list order wrong: %+v", list)
	}
	if list[0].Tree == "" || list[0].Spans != 1 {
		t.Errorf("summary missing tree/spans: %+v", list[0])
	}

	// Single trace by id, and by the "slowest" alias: Chrome JSON.
	for _, id := range []string{"slow", "slowest"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+id, nil))
		if rec.Code != 200 {
			t.Fatalf("?id=%s status = %d", id, rec.Code)
		}
		var events []map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
			t.Fatalf("?id=%s not valid JSON: %v", id, err)
		}
		if len(events) != 1 || events[0]["name"] != "scan_request" {
			t.Fatalf("?id=%s events = %v", id, events)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing id status = %d, want 404", rec.Code)
	}
}

func TestUnendedSpansClampToTraceEnd(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "")
	_, s := StartSpan(ctx, "leaked") // never ended
	_ = s
	time.Sleep(time.Millisecond)
	tr.Finish()
	for _, si := range tr.Spans() {
		if si.Name != "leaked" {
			continue
		}
		if si.Duration <= 0 || si.Duration > tr.Duration() {
			t.Fatalf("leaked span duration %v outside (0, %v]", si.Duration, tr.Duration())
		}
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(0)
	p.Update(3, 10, 120)
	p.Final(10, 10, 400)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "analyze: 3/10 files (30%)") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[0], "120 statements") {
		t.Errorf("first line missing statement count: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "analyze: 10/10 files (100%)") {
		t.Errorf("final line = %q", lines[1])
	}
	if strings.Contains(lines[1], "ETA") {
		t.Errorf("final line has an ETA with nothing left: %q", lines[1])
	}
}

func TestProgressThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "analyze", "files")
	p.SetInterval(time.Hour)
	for i := 1; i <= 100; i++ {
		p.Update(i, 100, 0)
	}
	// The first Update emits immediately (so short runs are not silent
	// until Final); everything after is throttled by the interval.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("throttled Progress emitted %d lines: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "analyze: 1/100 files") {
		t.Fatalf("first line = %q, want the first update", lines[0])
	}
}

// WireSpans exports a batch whose parents AddExternalSpans accepts, and
// the values survive the trip (the worker -> driver shipping path).
func TestWireSpansRoundTrip(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "worker_job", "")
	ctx2, parent := StartSpan(ctx, "phase")
	parent.SetAttr("shard", "3")
	_, child := StartSpan(ctx2, "inner")
	child.SetAttrInt("files", 7)
	child.End()
	parent.End()
	tr.Finish()

	batch := tr.WireSpans()
	if len(batch) != 3 {
		t.Fatalf("batch = %d spans, want 3", len(batch))
	}
	// JSON round trip, as the worker protocol does.
	data, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []WireSpan
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0].Parent != -1 || decoded[1].Parent != 0 || decoded[2].Parent != 1 {
		t.Fatalf("parents = %d,%d,%d", decoded[0].Parent, decoded[1].Parent, decoded[2].Parent)
	}
	if decoded[2].Name != "inner" || len(decoded[2].Attrs) != 1 || decoded[2].Attrs[0].Value != "7" {
		t.Fatalf("span 2 = %+v", decoded[2])
	}
	if decoded[2].DurNs < 0 || decoded[1].StartUnixNs > decoded[2].StartUnixNs {
		t.Fatalf("times inverted: %+v", decoded)
	}

	_, drvTrace := NewTrace(context.Background(), "driver", "")
	if err := drvTrace.AddExternalSpans(4242, "worker pid=4242", decoded); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	spans, pids := drvTrace.ExternalSpanCount()
	if spans != 3 || pids != 1 {
		t.Fatalf("ExternalSpanCount = %d spans, %d pids", spans, pids)
	}
}

// Corrupt shipments — orphan or self parents, negative durations — must
// be rejected at the graft point, never silently merged.
func TestAddExternalSpansRejectsOrphans(t *testing.T) {
	_, tr := NewTrace(context.Background(), "driver", "")
	cases := map[string][]WireSpan{
		"parent beyond batch": {{Name: "a", Parent: 5}},
		"parent below -1":     {{Name: "a", Parent: -2}},
		"self parent":         {{Name: "a", Parent: -1}, {Name: "b", Parent: 1}},
		"negative duration":   {{Name: "a", Parent: -1, DurNs: -5}},
	}
	for name, batch := range cases {
		if err := tr.AddExternalSpans(99, "w", batch); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if n, _ := tr.ExternalSpanCount(); n != 0 {
		t.Fatalf("rejected batches were kept: %d spans", n)
	}
}

// The merged Chrome export must put external batches on their real pids
// with a process_name metadata event, local spans staying on pid 1.
func TestChromeTraceExternalLanes(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "driver", "")
	_, sp := StartSpan(ctx, "map_extract")
	sp.End()

	base := time.Now().UnixNano()
	for _, pid := range []int{3001, 3002} {
		batch := []WireSpan{
			{Name: "job", Parent: -1, StartUnixNs: base, DurNs: int64(2 * time.Millisecond)},
			{Name: "checkpoint_write", Parent: 0, StartUnixNs: base + int64(time.Millisecond),
				DurNs: int64(time.Millisecond), Attrs: []Attr{{Key: "shard", Value: "1"}}},
		}
		if err := tr.AddExternalSpans(pid, fmt.Sprintf("worker pid=%d", pid), batch); err != nil {
			t.Fatal(err)
		}
	}
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Ts   float64           `json:"ts"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	pids := map[int]int{}
	names := map[int]string{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Pid] = ev.Args["name"]
			continue
		}
		pids[ev.Pid]++
		if ev.Ts < 0 {
			t.Fatalf("negative ts in event %+v", ev)
		}
	}
	if pids[1] == 0 || pids[3001] != 2 || pids[3002] != 2 {
		t.Fatalf("pid lanes wrong: %v", pids)
	}
	if names[3001] != "worker pid=3001" || names[3002] != "worker pid=3002" {
		t.Fatalf("process_name metadata wrong: %v", names)
	}
}

// A batch whose spans started before the driver's trace (clock skew,
// resume) clamps to ts=0 instead of rendering negative timestamps.
func TestExternalSpansClampBeforeTraceStart(t *testing.T) {
	_, tr := NewTrace(context.Background(), "driver", "")
	batch := []WireSpan{{Name: "early", Parent: -1,
		StartUnixNs: tr.Start().Add(-time.Second).UnixNano(), DurNs: int64(time.Millisecond)}}
	if err := tr.AddExternalSpans(77, "w", batch); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ts":-`) {
		t.Fatalf("negative ts in export: %s", buf.String())
	}
}

func TestTraceFromContext(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("TraceFromContext outside a trace must be nil")
	}
	ctx, tr := NewTrace(context.Background(), "x", "")
	if TraceFromContext(ctx) != tr {
		t.Fatal("TraceFromContext did not return the bound trace")
	}
	ctx2, _ := StartSpan(ctx, "child")
	if TraceFromContext(ctx2) != tr {
		t.Fatal("TraceFromContext below a child span lost the trace")
	}
}
