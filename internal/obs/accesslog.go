package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// requestIDKey is the context key under which the middleware stores the
// request id.
type requestIDKey struct{}

// reqSeq numbers requests within the process; combined with the process
// start time it yields ids that are unique across restarts without any
// randomness in the hot path.
var (
	reqSeq   atomic.Int64
	procSeed = func() string {
		return fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff)
	}()
)

// newRequestID mints an id like "6f3a91c2-000042".
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", procSeed, reqSeq.Add(1))
}

// RequestID returns the id the AccessLog middleware assigned to this
// request's context, or "" outside an instrumented handler.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// AccessEntry is one structured access-log line.
type AccessEntry struct {
	Time      string  `json:"time"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMillis float64 `json:"duration_ms"`
	RequestID string  `json:"request_id"`
	Remote    string  `json:"remote,omitempty"`
}

// statusWriter captures the response status and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming
// (pprof's trace endpoint flushes).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps a handler so every request gets a request id (stored
// in the context, echoed as the X-Request-Id response header) and, when
// logw is non-nil, one JSON access-log line on completion. Lines are
// written atomically under a mutex so concurrent requests never
// interleave output.
func AccessLog(next http.Handler, logw io.Writer) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if logw == nil {
			return
		}
		if sw.status == 0 {
			// Handler wrote nothing (e.g. a dropped canceled request);
			// net/http will send 200 with an empty body.
			sw.status = http.StatusOK
		}
		line, err := json.Marshal(AccessEntry{
			Time:      start.UTC().Format(time.RFC3339Nano),
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    sw.status,
			Bytes:     sw.bytes,
			DurMillis: float64(time.Since(start).Microseconds()) / 1000,
			RequestID: id,
			Remote:    r.RemoteAddr,
		})
		if err != nil {
			return
		}
		mu.Lock()
		logw.Write(append(line, '\n'))
		mu.Unlock()
	})
}

// OpenLogWriter resolves an access-log destination flag: "stdout",
// "stderr", "off"/"" (nil writer, request ids only), or a file path
// opened for append.
func OpenLogWriter(dest string) (io.Writer, error) {
	switch dest {
	case "stdout":
		return os.Stdout, nil
	case "stderr":
		return os.Stderr, nil
	case "off", "":
		return nil, nil
	}
	return os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
