package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets covers stop-the-world pause times (10µs to 1s): GC
// pauses live orders of magnitude below request latencies, so they get
// their own bucket layout instead of DefaultLatencyBuckets.
var GCPauseBuckets = []time.Duration{
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	1 * time.Second,
}

// RegisterGoMetrics adds Go runtime health series to the registry,
// sampled lazily on each scrape (runtime.ReadMemStats is not free, so
// it runs per /metrics request, not on a timer):
//
//	go_goroutines            current goroutine count
//	go_heap_alloc_bytes      live heap bytes
//	go_gc_cycles_total       completed GC cycles
//	go_gc_pause_seconds      STW pause histogram (new pauses per scrape)
//
// These let an operator correlate latency spikes on the request
// histograms with GC pressure from the same scrape.
func RegisterGoMetrics(r *Registry) {
	goroutines := r.Gauge("go_goroutines")
	heap := r.Gauge("go_heap_alloc_bytes")
	cycles := r.Counter("go_gc_cycles_total")
	pauses := r.Histogram("go_gc_pause_seconds", GCPauseBuckets)

	var mu sync.Mutex
	var lastGC uint32
	r.OnScrape(func() {
		goroutines.Set(int64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapAlloc))

		mu.Lock()
		defer mu.Unlock()
		// PauseNs is a circular buffer of the last 256 pauses; replay
		// only the cycles completed since the previous scrape (all of
		// them on the first), skipping any overwritten by a long gap.
		from := lastGC
		if ms.NumGC > from+256 {
			from = ms.NumGC - 256
		}
		for n := from; n < ms.NumGC; n++ {
			pauses.Observe(time.Duration(ms.PauseNs[n%256]))
		}
		cycles.Add(int64(ms.NumGC - lastGC))
		lastGC = ms.NumGC
	})
}
