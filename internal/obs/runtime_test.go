package obs

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestQuantileEdgeCases(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond}

	// Empty histogram: every quantile is 0, never NaN.
	h := NewHistogram(bounds)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// All observations past the last finite bound: clamp to it.
	h = NewHistogram(bounds)
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 10*time.Millisecond {
			t.Errorf("all-overflow Quantile(%v) = %v, want 10ms", q, got)
		}
	}

	// q outside (0, 1] on a populated histogram: 0 below, clamp above.
	h = NewHistogram(bounds)
	h.Observe(500 * time.Microsecond)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := h.Quantile(-0.5); got != 0 {
		t.Errorf("Quantile(-0.5) = %v, want 0", got)
	}
	if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
		t.Errorf("Quantile(1.5) = %v, want Quantile(1) = %v", got, want)
	}
}

func TestRegisterGoMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterGoMetrics(r)
	runtime.GC() // guarantee at least one GC cycle (and one pause sample)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"go_goroutines ",
		"go_heap_alloc_bytes ",
		"go_gc_cycles_total ",
		"go_gc_pause_seconds_count ",
		`go_gc_pause_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Values are sampled at scrape time, not registration time: the
	// goroutine gauge must be live (at least this test's goroutine).
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "go_goroutines ") {
			lines = append(lines, l)
		}
	}
	if len(lines) != 1 || lines[0] == "go_goroutines 0" {
		t.Errorf("go_goroutines not sampled: %v", lines)
	}

	// A second scrape must not double-count GC pauses: cycles recorded
	// once stay recorded, the pause histogram only grows by new cycles.
	count1 := scrapeValue(t, out, "go_gc_pause_seconds_count")
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	count2 := scrapeValue(t, buf2.String(), "go_gc_pause_seconds_count")
	cycles := scrapeValue(t, buf2.String(), "go_gc_cycles_total")
	if count2 < count1 {
		t.Errorf("pause count went backwards: %v -> %v", count1, count2)
	}
	if count2 > cycles {
		t.Errorf("pause samples (%v) exceed GC cycles (%v): double replay", count2, cycles)
	}
}

// scrapeValue extracts the numeric value of one Prometheus sample line.
func scrapeValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	for _, l := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(l, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(l, name+" ")), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("scrape has no %q sample:\n%s", name, scrape)
	return 0
}
