package treediff

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

func TestSimpleRename(t *testing.T) {
	before, err := pylang.Parse("self.assertTrue(vec, 4)\n")
	if err != nil {
		t.Fatal(err)
	}
	after, err := pylang.Parse("self.assertEqual(vec, 4)\n")
	if err != nil {
		t.Fatal(err)
	}
	renames := Diff(before, after)
	if len(renames) != 1 {
		t.Fatalf("renames = %v, want 1", renames)
	}
	if renames[0].Before != "assertTrue" || renames[0].After != "assertEqual" {
		t.Errorf("rename = %+v", renames[0])
	}
}

func TestNoRenameOnIdenticalTrees(t *testing.T) {
	src := "def f(a, b):\n    return a + b\n"
	before, _ := pylang.Parse(src)
	after, _ := pylang.Parse(src)
	if renames := Diff(before, after); len(renames) != 0 {
		t.Errorf("identical trees produced renames: %v", renames)
	}
}

func TestStructuralInsertionAligned(t *testing.T) {
	// A statement inserted between two others must not misalign the rest.
	before, _ := pylang.Parse("x = compute()\ny = por\n")
	after, _ := pylang.Parse("x = compute()\nlog()\ny = port\n")
	renames := Diff(before, after)
	found := false
	for _, r := range renames {
		if r.Before == "por" && r.After == "port" {
			found = true
		}
		if r.Before == "compute" && r.After != "compute" {
			t.Errorf("spurious rename %+v", r)
		}
	}
	if !found {
		t.Errorf("por -> port not detected: %v", renames)
	}
}

func TestMultipleRenames(t *testing.T) {
	before, _ := pylang.Parse("a = min(xs)\nb = min(ys)\n")
	after, _ := pylang.Parse("a = min(xs)\nb = max(ys)\n")
	renames := Diff(before, after)
	if len(renames) != 1 || renames[0].Before != "min" || renames[0].After != "max" {
		t.Errorf("renames = %v", renames)
	}
}

func TestJavaRename(t *testing.T) {
	before, err := javalang.Parse("class T { void m() { this.publicKey = publickKey; } }")
	if err != nil {
		t.Fatal(err)
	}
	after, err := javalang.Parse("class T { void m() { this.publicKey = publicKey; } }")
	if err != nil {
		t.Fatal(err)
	}
	renames := Diff(before, after)
	if len(renames) != 1 || renames[0].Before != "publickKey" {
		t.Errorf("renames = %v", renames)
	}
}

func TestDifferentKindsNotMatched(t *testing.T) {
	before, _ := pylang.Parse("x = 1\n")
	after, _ := pylang.Parse("def x():\n    pass\n")
	if renames := Diff(before, after); len(renames) != 0 {
		t.Errorf("kind-mismatched trees produced renames: %v", renames)
	}
}

func TestNilSafe(t *testing.T) {
	if renames := Diff(nil, nil); renames != nil {
		t.Error("nil trees should produce no renames")
	}
	root := ast.NewNode(ast.Module)
	if renames := Diff(root, nil); renames != nil {
		t.Error("nil after should produce no renames")
	}
}
