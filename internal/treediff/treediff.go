// Package treediff implements the AST diff matching used to extract
// confusing word pairs from commit histories (§3.2): nodes of the before
// and after trees are aligned structurally, and aligned identifier
// terminals whose names differ are reported as renames.
package treediff

import "namer/internal/ast"

// Rename is one aligned identifier change: Before was renamed to After.
type Rename struct {
	Before string
	After  string
}

// Diff aligns the two trees and returns the identifier renames between
// matched terminal nodes. The alignment recurses through nodes of equal
// kind, using a longest-common-subsequence alignment over child kinds when
// the child lists differ.
func Diff(before, after *ast.Node) []Rename {
	var out []Rename
	matchNodes(before, after, &out)
	return out
}

func matchNodes(a, b *ast.Node, out *[]Rename) {
	if a == nil || b == nil || a.Kind != b.Kind {
		return
	}
	if a.IsTerminal() && b.IsTerminal() {
		if a.Kind == ast.Ident && a.Value != b.Value {
			*out = append(*out, Rename{Before: a.Value, After: b.Value})
		}
		return
	}
	if len(a.Children) == len(b.Children) {
		for i := range a.Children {
			matchNodes(a.Children[i], b.Children[i], out)
		}
		return
	}
	// Different child counts: align by LCS over child kinds.
	pairs := lcsAlign(a.Children, b.Children)
	for _, p := range pairs {
		matchNodes(p[0], p[1], out)
	}
}

// lcsAlign computes an LCS alignment of two child lists keyed by node kind,
// returning the matched pairs.
func lcsAlign(xs, ys []*ast.Node) [][2]*ast.Node {
	n, m := len(xs), len(ys)
	// dp[i][j] = LCS length of xs[i:], ys[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if xs[i].Kind == ys[j].Kind {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var pairs [][2]*ast.Node
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case xs[i].Kind == ys[j].Kind:
			pairs = append(pairs, [2]*ast.Node{xs[i], ys[j]})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return pairs
}
