// Package great reimplements the Great baseline of §5.6 (Hellendoorn et
// al., "Global Relational Models of Source Code"): a transformer whose
// attention logits are biased by program-graph relations, with pointer
// heads for variable-misuse localization and repair. Dimensions are scaled
// down to run on CPU (see DESIGN.md); the architecture — relation-biased
// multi-layer self-attention with residual feed-forward blocks and
// candidate pointer scoring — follows the original.
package great

import (
	"math"
	"math/rand"

	"namer/internal/graphs"
	"namer/internal/neural"
	"namer/internal/synthetic"
)

// Config sizes the network.
type Config struct {
	VocabSize int
	Dim       int // hidden size (default 24)
	Layers    int // transformer layers (paper: 6-10; default 2)
	Seed      int64
}

type layer struct {
	wq, wk, wv, wo *neural.Tensor
	relBias        [graphs.NumEdgeTypes]*neural.Tensor
	ff1, fb1       *neural.Tensor
	ff2, fb2       *neural.Tensor
}

// Model is a trained or trainable Great network.
type Model struct {
	cfg    Config
	params *neural.Params
	emb    *neural.Tensor
	layers []*layer
	scoreW *neural.Tensor
}

// New builds a model with randomly initialized parameters.
func New(cfg Config) *Model {
	if cfg.Dim <= 0 {
		cfg.Dim = 24
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 300))
	p := neural.NewParams()
	m := &Model{cfg: cfg, params: p}
	d := cfg.Dim
	m.emb = p.New(cfg.VocabSize, d, rng)
	for l := 0; l < cfg.Layers; l++ {
		ly := &layer{
			wq: p.New(d, d, rng), wk: p.New(d, d, rng),
			wv: p.New(d, d, rng), wo: p.New(d, d, rng),
			ff1: p.New(d, 2*d, rng), fb1: p.NewZero(1, 2*d),
			ff2: p.New(2*d, d, rng), fb2: p.NewZero(1, d),
		}
		for e := 0; e < int(graphs.NumEdgeTypes); e++ {
			ly.relBias[e] = p.NewZero(1, 1)
		}
		m.layers = append(m.layers, ly)
	}
	m.scoreW = p.New(d, d, rng)
	return m
}

// ParamCount returns the number of scalar parameters.
func (m *Model) ParamCount() int { return m.params.Count() }

// edgeMask builds the flattened N×N indicator matrix for one edge type.
func edgeMask(g *graphs.Graph, e int) []float64 {
	n := g.N()
	mask := make([]float64, n*n)
	for _, ed := range g.Edges[e] {
		mask[ed[0]*n+ed[1]] = 1
	}
	return mask
}

// forward computes candidate logits (1×K) for a sample.
func (m *Model) forward(t *neural.Tape, s *synthetic.Sample) *neural.Tensor {
	g := s.G
	h := t.Rows(m.emb, g.Vals)
	scale := 1 / math.Sqrt(float64(m.cfg.Dim))
	for _, ly := range m.layers {
		q := t.MatMul(h, ly.wq)
		k := t.MatMul(h, ly.wk)
		v := t.MatMul(h, ly.wv)
		logits := t.Scale(t.MatMulT(q, k), scale)
		for e := 0; e < int(graphs.NumEdgeTypes); e++ {
			if len(g.Edges[e]) == 0 {
				continue
			}
			logits = t.AddMaskScaled(logits, edgeMask(g, e), ly.relBias[e])
		}
		attn := t.SoftmaxRows(logits)
		h = t.Add(h, t.MatMul(t.MatMul(attn, v), ly.wo))
		ff := t.AddBias(t.MatMul(t.ReLU(t.AddBias(t.MatMul(h, ly.ff1), ly.fb1)), ly.ff2), ly.fb2)
		h = t.Add(h, ff)
	}
	slotH := t.Rows(h, []int{s.Slot})
	qv := t.MatMul(slotH, m.scoreW)
	cands := t.Rows(m.emb, s.CandIDs)
	return t.MatMulT(qv, cands)
}

// Train runs epochs of per-sample Adam updates and returns the mean loss
// of each epoch.
func (m *Model) Train(samples []*synthetic.Sample, epochs int, lr float64) []float64 {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 400))
	var losses []float64
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(len(samples))
		total := 0.0
		for _, i := range perm {
			s := samples[i]
			if s.Correct < 0 {
				continue
			}
			m.params.ZeroGrad()
			tape := neural.NewTape()
			logits := m.forward(tape, s)
			loss := tape.SoftmaxCrossEntropy(logits, s.Correct)
			neural.SeedGrad(loss)
			tape.Backward()
			m.params.AdamStep(lr)
			total += loss.W[0]
		}
		losses = append(losses, total/float64(len(samples)))
	}
	return losses
}

// Score implements synthetic.Scorer.
func (m *Model) Score(s *synthetic.Sample) []float64 {
	tape := neural.NewTape()
	logits := m.forward(tape, s)
	out := make([]float64, logits.C)
	copy(out, logits.W)
	return out
}
