package great

import (
	"math/rand"
	"testing"

	"namer/internal/graphs"
	"namer/internal/pylang"
	"namer/internal/synthetic"
)

func trainSet(t *testing.T, vocab *graphs.Vocab, n int) []*synthetic.Sample {
	t.Helper()
	src := `def merge(first, second):
    joined = first + second
    doubled = joined + joined
    return doubled

def select(items, index):
    chosen = items[index]
    return chosen
`
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fns := synthetic.Functions(root)
	rng := rand.New(rand.NewSource(7))
	var samples []*synthetic.Sample
	for len(samples) < n {
		fn := fns[rng.Intn(len(fns))]
		if rng.Intn(2) == 0 {
			cs := synthetic.CleanSamples(fn, vocab, 0)
			if len(cs) > 0 {
				samples = append(samples, cs[rng.Intn(len(cs))])
			}
		} else if s, ok := synthetic.Inject(fn, vocab, rng); ok {
			samples = append(samples, s)
		}
	}
	return samples
}

func TestTrainingReducesLoss(t *testing.T) {
	vocab := graphs.NewVocab()
	samples := trainSet(t, vocab, 50)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 12, Layers: 1, Seed: 1})
	losses := m.Train(samples, 4, 0.01)
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
}

func TestRepairBeatsChance(t *testing.T) {
	vocab := graphs.NewVocab()
	train := trainSet(t, vocab, 80)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 12, Layers: 1, Seed: 2})
	m.Train(train, 6, 0.01)
	test := trainSet(t, vocab, 30)
	correct := 0
	for _, s := range test {
		scores := m.Score(s)
		best := 0
		for i, sc := range scores {
			if sc > scores[best] {
				best = i
			}
		}
		if best == s.Correct {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.5 {
		t.Errorf("repair accuracy = %.2f, want >= 0.5", acc)
	}
}

func TestScoreShapeAndParams(t *testing.T) {
	vocab := graphs.NewVocab()
	samples := trainSet(t, vocab, 3)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 8, Layers: 1, Seed: 3})
	if m.ParamCount() == 0 {
		t.Error("no parameters")
	}
	s := samples[0]
	if got := len(m.Score(s)); got != len(s.Candidates) {
		t.Errorf("scores = %d, want %d", got, len(s.Candidates))
	}
}
