// Package ast defines the language-neutral abstract syntax tree shared by
// the Python and Java front ends and by every downstream analysis.
//
// The representation follows Definition 3.1 of the paper: a tree of nodes,
// each carrying a value. Non-terminal nodes have children; terminal nodes
// carry token text (identifier names, literals, operators). Both front ends
// normalize their language constructs onto the same kind vocabulary (a call
// is a Call whether it is written in Python or Java), which lets the name
// path and name pattern machinery work unchanged across languages.
package ast

import (
	"fmt"
	"strings"
)

// Kind classifies a node. Non-terminal kinds mirror the Python AST names
// used in the paper (Call, AttributeLoad, NameLoad, ...); Java constructs
// are mapped onto the same vocabulary by the Java front end.
type Kind uint8

// Node kinds. Terminal kinds come first, then expression and statement
// kinds shared by both languages, then structural kinds.
const (
	// Terminal kinds: Value holds the token text.
	Ident Kind = iota // identifier leaf
	NumLit
	StrLit
	BoolLit
	NullLit
	OpTok // operator or keyword token leaf (e.g. "+", "==", "in")

	// Synthetic terminal kinds introduced by the AST+ transformation.
	Subtoken // one subtoken of a split identifier
	Origin   // origin label inserted by the points-to analysis

	// Expression kinds.
	Call
	Keyword // keyword argument: name = value
	StarArg
	DoubleStarArg
	AttributeLoad
	AttributeStore
	Attr
	NameLoad
	NameStore
	NameParam
	SubscriptLoad
	SubscriptStore
	Index
	SliceRange
	BinOp
	UnaryOp
	BoolOp
	Compare
	Ternary
	Lambda
	ListLit
	TupleLit
	DictLit
	SetLit
	DictItem
	Comprehension
	CompFor
	CompIf
	FString
	New  // Java object creation
	Cast // Java cast
	InstanceOf
	ArrayLit
	ArrayType
	TypeRef // type reference; child is the type name leaf (possibly dotted)
	Num     // literal wrapper nodes as drawn in Fig. 2(b)
	Str
	Bool
	Null

	// Statement kinds.
	Assign
	AugAssign
	AnnAssign
	ExprStmt
	Return
	Delete
	Pass
	Break
	Continue
	Raise
	Import
	ImportFrom
	ImportAlias
	Global
	Nonlocal
	AssertStmt
	If
	Elif
	Else
	For
	ForEach
	While
	DoWhile
	Try
	ExceptHandler
	Finally
	With
	WithItem
	Switch
	CaseClause
	Throw
	LocalVarDecl
	FieldDecl
	SyncBlock
	LabeledStmt
	EmptyStmt
	Yield

	// Structural kinds.
	Module
	PackageDecl
	ClassDef
	InterfaceDef
	EnumDef
	Bases
	Decorator
	Annotation
	FunctionDef
	CtorDef
	Params
	Param
	DefaultParam
	VarArgParam
	KwArgParam
	Body
	Block
	Modifiers
	Modifier
	TypeParams

	// AST+ synthetic non-terminal kinds.
	NumArgs // NumArgs(k) wrapper above Call / FunctionDef
	NumST   // NumST(k) wrapper above split subtokens

	kindCount
)

var kindNames = [...]string{
	Ident:          "Ident",
	NumLit:         "NumLit",
	StrLit:         "StrLit",
	BoolLit:        "BoolLit",
	NullLit:        "NullLit",
	OpTok:          "Op",
	Subtoken:       "Subtoken",
	Origin:         "Origin",
	Call:           "Call",
	Keyword:        "Keyword",
	StarArg:        "StarArg",
	DoubleStarArg:  "DoubleStarArg",
	AttributeLoad:  "AttributeLoad",
	AttributeStore: "AttributeStore",
	Attr:           "Attr",
	NameLoad:       "NameLoad",
	NameStore:      "NameStore",
	NameParam:      "NameParam",
	SubscriptLoad:  "SubscriptLoad",
	SubscriptStore: "SubscriptStore",
	Index:          "Index",
	SliceRange:     "Slice",
	BinOp:          "BinOp",
	UnaryOp:        "UnaryOp",
	BoolOp:         "BoolOp",
	Compare:        "Compare",
	Ternary:        "Ternary",
	Lambda:         "Lambda",
	ListLit:        "List",
	TupleLit:       "Tuple",
	DictLit:        "Dict",
	SetLit:         "Set",
	DictItem:       "DictItem",
	Comprehension:  "Comprehension",
	CompFor:        "CompFor",
	CompIf:         "CompIf",
	FString:        "FString",
	New:            "New",
	Cast:           "Cast",
	InstanceOf:     "InstanceOf",
	ArrayLit:       "ArrayLit",
	ArrayType:      "ArrayType",
	TypeRef:        "TypeRef",
	Num:            "Num",
	Str:            "Str",
	Bool:           "Bool",
	Null:           "Null",
	Assign:         "Assign",
	AugAssign:      "AugAssign",
	AnnAssign:      "AnnAssign",
	ExprStmt:       "ExprStmt",
	Return:         "Return",
	Delete:         "Delete",
	Pass:           "Pass",
	Break:          "Break",
	Continue:       "Continue",
	Raise:          "Raise",
	Import:         "Import",
	ImportFrom:     "ImportFrom",
	ImportAlias:    "ImportAlias",
	Global:         "Global",
	Nonlocal:       "Nonlocal",
	AssertStmt:     "Assert",
	If:             "If",
	Elif:           "Elif",
	Else:           "Else",
	For:            "For",
	ForEach:        "ForEach",
	While:          "While",
	DoWhile:        "DoWhile",
	Try:            "Try",
	ExceptHandler:  "ExceptHandler",
	Finally:        "Finally",
	With:           "With",
	WithItem:       "WithItem",
	Switch:         "Switch",
	CaseClause:     "Case",
	Throw:          "Throw",
	LocalVarDecl:   "LocalVarDecl",
	FieldDecl:      "FieldDecl",
	SyncBlock:      "Synchronized",
	LabeledStmt:    "Labeled",
	EmptyStmt:      "Empty",
	Yield:          "Yield",
	Module:         "Module",
	PackageDecl:    "Package",
	ClassDef:       "ClassDef",
	InterfaceDef:   "InterfaceDef",
	EnumDef:        "EnumDef",
	Bases:          "Bases",
	Decorator:      "Decorator",
	Annotation:     "Annotation",
	FunctionDef:    "FunctionDef",
	CtorDef:        "CtorDef",
	Params:         "Params",
	Param:          "Param",
	DefaultParam:   "DefaultParam",
	VarArgParam:    "VarArgParam",
	KwArgParam:     "KwArgParam",
	Body:           "Body",
	Block:          "Block",
	Modifiers:      "Modifiers",
	Modifier:       "Modifier",
	TypeParams:     "TypeParams",
	NumArgs:        "NumArgs",
	NumST:          "NumST",
}

// String returns the canonical name of the kind, which doubles as the node
// value for non-terminal nodes that carry no explicit value.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is a single AST node. Terminal nodes have no children and carry the
// token text in Value. Non-terminal nodes carry their kind name in Value
// unless the transformation pipeline replaced it (NumArgs(2), NumST(3),
// origin class names, ...).
type Node struct {
	Kind     Kind
	Value    string
	Line     int
	Children []*Node
}

// NewNode returns a non-terminal node whose value is the kind name.
func NewNode(k Kind, children ...*Node) *Node {
	return &Node{Kind: k, Value: k.String(), Children: children}
}

// NewLeaf returns a terminal node carrying token text.
func NewLeaf(k Kind, value string) *Node {
	return &Node{Kind: k, Value: value}
}

// IsTerminal reports whether the node has no children.
func (n *Node) IsTerminal() bool { return len(n.Children) == 0 }

// Add appends children and returns the node for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Value: n.Value, Line: n.Line}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Walk calls fn for every node in the subtree in pre-order. If fn returns
// false the children of the current node are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Equal reports whether two subtrees are structurally identical (kind,
// value, and children; line numbers are ignored).
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Value != m.Value || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Terminals returns the terminal nodes of the subtree in left-to-right
// order.
func (n *Node) Terminals() []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.IsTerminal() {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Fingerprint returns a canonical string encoding of the subtree, suitable
// as a map key for statement-identity counting (features 2–3 of Table 1).
func (n *Node) Fingerprint() string {
	var b strings.Builder
	n.fingerprint(&b)
	return b.String()
}

func (n *Node) fingerprint(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(n.Value)
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.fingerprint(b)
	}
	b.WriteByte(')')
}

// String renders the subtree as an s-expression, mainly for tests and
// debugging output.
func (n *Node) String() string { return n.Fingerprint() }

// Dump renders the subtree with indentation, one node per line.
func (n *Node) Dump() string {
	var b strings.Builder
	n.dump(&b, 0)
	return b.String()
}

func (n *Node) dump(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Value)
	if n.IsTerminal() && n.Value != n.Kind.String() {
		fmt.Fprintf(b, " <%s>", n.Kind)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.dump(b, depth+1)
	}
}

// IsStatementKind reports whether k is a statement-level kind: the unit at
// which Namer extracts statement ASTs, matches name patterns, and reports
// issues.
func IsStatementKind(k Kind) bool {
	switch k {
	case Assign, AugAssign, AnnAssign, ExprStmt, Return, Delete, Raise,
		Throw, AssertStmt, If, Elif, While, DoWhile, For, ForEach, With,
		LocalVarDecl, FieldDecl, ExceptHandler, FunctionDef, CtorDef,
		Switch, Import, ImportFrom:
		return true
	}
	return false
}

// isBodyKind reports whether k is a pure container whose children are
// statements (and which is therefore pruned when projecting statements).
func isBodyKind(k Kind) bool {
	switch k {
	case Body, Block, Else, Finally, Module, ClassDef, InterfaceDef,
		EnumDef, Try, CaseClause, SyncBlock, LabeledStmt:
		return true
	}
	return false
}

// Statement is one projected program statement: the statement AST with
// compound bodies pruned (the `for x in xs` header is a statement; its body
// is a separate sequence of statements), plus the enclosing context needed
// by the analyses.
type Statement struct {
	// Root is the pruned statement AST.
	Root *Node
	// Orig points to the node inside the full file AST that Root was
	// projected from, so analyses can map decorations back.
	Orig *Node
	// OrigNodes maps each node of Root to the node of the full file AST it
	// was cloned from; per-node analysis results (origin labels) are looked
	// up through it.
	OrigNodes map[*Node]*Node
	// EnclosingClass and EnclosingFunc name the lexical context ("" if
	// none).
	EnclosingClass string
	EnclosingFunc  string
	Line           int
}

// Statements projects the file AST rooted at root onto its statements, in
// source order. Compound statements contribute their header (with Body
// children removed); their bodies are recursed into. While inside the
// header of an already-projected statement, nested statement-kind nodes
// (e.g. the LocalVarDecl inside a Java `for(int i = 0; ...)`) are not
// projected again; projection resumes once a body container is entered.
func Statements(root *Node) []*Statement {
	var out []*Statement
	var visit func(n *Node, class, fn string, inHeader bool)
	visit = func(n *Node, class, fn string, inHeader bool) {
		for _, c := range n.Children {
			switch {
			case c.Kind == ClassDef || c.Kind == InterfaceDef || c.Kind == EnumDef:
				if !inHeader {
					out = append(out, projectStatement(c, class, fn))
				}
				visit(c, className(c), fn, false)
			case c.Kind == FunctionDef || c.Kind == CtorDef:
				if !inHeader {
					out = append(out, projectStatement(c, class, fn))
				}
				visit(c, class, funcName(c), true)
			case IsStatementKind(c.Kind):
				if !inHeader {
					out = append(out, projectStatement(c, class, fn))
				}
				visit(c, class, fn, true)
			case isBodyKind(c.Kind) || c.Kind == WithItem:
				visit(c, class, fn, false)
			default:
				// Expression-level node: nothing to project here, but body
				// containers can still hide below (anonymous class bodies).
				if !c.IsTerminal() {
					visit(c, class, fn, inHeader)
				}
			}
		}
	}
	visit(&Node{Children: []*Node{root}}, "", "", false)
	return out
}

func projectStatement(n *Node, class, fn string) *Statement {
	origNodes := make(map[*Node]*Node)
	return &Statement{
		Root:           pruneBodies(n, origNodes),
		Orig:           n,
		OrigNodes:      origNodes,
		EnclosingClass: class,
		EnclosingFunc:  fn,
		Line:           n.Line,
	}
}

// pruneBodies copies n, dropping any Body/Block children so the statement
// AST is the header only, recording the clone-to-original mapping.
func pruneBodies(n *Node, origNodes map[*Node]*Node) *Node {
	c := &Node{Kind: n.Kind, Value: n.Value, Line: n.Line}
	origNodes[c] = n
	for _, ch := range n.Children {
		if isBodyKind(ch.Kind) || ch.Kind == Elif || ch.Kind == ExceptHandler {
			continue
		}
		c.Children = append(c.Children, pruneBodies(ch, origNodes))
	}
	return c
}

func className(c *Node) string {
	for _, ch := range c.Children {
		if ch.Kind == Ident {
			return ch.Value
		}
	}
	return ""
}

func funcName(c *Node) string {
	for _, ch := range c.Children {
		if ch.Kind == Ident {
			return ch.Value
		}
	}
	return ""
}

// File couples a parsed AST with its provenance inside a corpus; the
// feature extractor uses Repo/Path to compute file- and repository-level
// statistics (features 2–12 of Table 1).
type File struct {
	Repo string
	Path string
	Lang Language
	Root *Node
}

// Language identifies the source language of a file.
type Language uint8

// Supported languages. Go support demonstrates the paper's claim (§5.1)
// that the framework is readily applicable to other languages.
const (
	Python Language = iota
	Java
	Go
)

// String returns the language name.
func (l Language) String() string {
	switch l {
	case Python:
		return "Python"
	case Java:
		return "Java"
	case Go:
		return "Go"
	}
	return fmt.Sprintf("Language(%d)", int(l))
}
