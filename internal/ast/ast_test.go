package ast

import (
	"strings"
	"testing"
)

// buildAssign constructs `self.assertTrue(x, 90)` roughly as in Fig. 2(b).
func buildCallStmt() *Node {
	return NewNode(ExprStmt,
		NewNode(Call,
			NewNode(AttributeLoad,
				NewNode(NameLoad, NewLeaf(Ident, "self")),
				NewNode(Attr, NewLeaf(Ident, "assertTrue")),
			),
			NewNode(NameLoad, NewLeaf(Ident, "x")),
			NewNode(Num, NewLeaf(NumLit, "90")),
		),
	)
}

func TestNodeBasics(t *testing.T) {
	n := buildCallStmt()
	if n.IsTerminal() {
		t.Fatal("ExprStmt should not be terminal")
	}
	if got := n.CountNodes(); got != 11 {
		t.Errorf("CountNodes = %d, want 11", got)
	}
	terms := n.Terminals()
	if len(terms) != 4 {
		t.Fatalf("Terminals = %d, want 4", len(terms))
	}
	if terms[0].Value != "self" || terms[1].Value != "assertTrue" {
		t.Errorf("terminal order wrong: %v %v", terms[0].Value, terms[1].Value)
	}
}

func TestCloneAndEqual(t *testing.T) {
	n := buildCallStmt()
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone should be Equal to original")
	}
	c.Children[0].Children[1].Children[0].Value = "y"
	if n.Equal(c) {
		t.Fatal("mutated clone should differ")
	}
	if n.Children[0].Children[1].Children[0].Value != "x" {
		t.Fatal("mutating clone changed original (not a deep copy)")
	}
}

func TestFingerprint(t *testing.T) {
	a, b := buildCallStmt(), buildCallStmt()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical trees must have identical fingerprints")
	}
	b.Children[0].Children[2].Children[0].Value = "91"
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different trees must have different fingerprints")
	}
	if !strings.Contains(a.Fingerprint(), "assertTrue") {
		t.Error("fingerprint should embed terminal values")
	}
}

func TestWalkPruning(t *testing.T) {
	n := buildCallStmt()
	var visited []string
	n.Walk(func(x *Node) bool {
		visited = append(visited, x.Value)
		return x.Kind != AttributeLoad // skip below AttributeLoad
	})
	for _, v := range visited {
		if v == "self" || v == "assertTrue" {
			t.Errorf("walk should not have descended into AttributeLoad, saw %q", v)
		}
	}
}

func TestStatementsProjection(t *testing.T) {
	// module: class C: def f(): x = 1; if cond: y = 2
	assign1 := NewNode(Assign, NewNode(NameStore, NewLeaf(Ident, "x")), NewNode(Num, NewLeaf(NumLit, "1")))
	assign2 := NewNode(Assign, NewNode(NameStore, NewLeaf(Ident, "y")), NewNode(Num, NewLeaf(NumLit, "2")))
	ifStmt := NewNode(If, NewNode(NameLoad, NewLeaf(Ident, "cond")), NewNode(Body, assign2))
	fn := NewNode(FunctionDef, NewLeaf(Ident, "f"), NewNode(Params), NewNode(Body, assign1, ifStmt))
	cls := NewNode(ClassDef, NewLeaf(Ident, "C"), NewNode(Bases), NewNode(Body, fn))
	mod := NewNode(Module, cls)

	stmts := Statements(mod)
	// class header, def header, x=1, if header, y=2
	if len(stmts) != 5 {
		for _, s := range stmts {
			t.Log(s.Root.Fingerprint())
		}
		t.Fatalf("got %d statements, want 5", len(stmts))
	}
	if stmts[0].Root.Kind != ClassDef || stmts[1].Root.Kind != FunctionDef {
		t.Errorf("unexpected statement order: %v %v", stmts[0].Root.Kind, stmts[1].Root.Kind)
	}
	// Headers must not contain bodies.
	stmts[1].Root.Walk(func(n *Node) bool {
		if n.Kind == Body {
			t.Error("projected FunctionDef still contains a Body")
		}
		return true
	})
	// Context propagation.
	if stmts[2].EnclosingClass != "C" || stmts[2].EnclosingFunc != "f" {
		t.Errorf("x=1 context = (%q,%q), want (C,f)", stmts[2].EnclosingClass, stmts[2].EnclosingFunc)
	}
	if stmts[4].EnclosingFunc != "f" {
		t.Errorf("y=2 should be inside f, got %q", stmts[4].EnclosingFunc)
	}
}

func TestKindString(t *testing.T) {
	if Call.String() != "Call" || AttributeLoad.String() != "AttributeLoad" {
		t.Error("kind names wrong")
	}
	if NumST.String() != "NumST" || NumArgs.String() != "NumArgs" {
		t.Error("synthetic kind names wrong")
	}
	// Every kind has a name.
	for k := Kind(0); k < kindCount; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestIsStatementKind(t *testing.T) {
	for _, k := range []Kind{Assign, ExprStmt, For, FunctionDef, Return} {
		if !IsStatementKind(k) {
			t.Errorf("%v should be a statement kind", k)
		}
	}
	for _, k := range []Kind{Call, NameLoad, Body, Module, Ident} {
		if IsStatementKind(k) {
			t.Errorf("%v should not be a statement kind", k)
		}
	}
}

func TestDump(t *testing.T) {
	d := buildCallStmt().Dump()
	if !strings.Contains(d, "Call") || !strings.Contains(d, "assertTrue") {
		t.Errorf("dump missing content:\n%s", d)
	}
}

func TestLanguageString(t *testing.T) {
	if Python.String() != "Python" || Java.String() != "Java" {
		t.Error("language names wrong")
	}
}
