package ast

import (
	"fmt"
	"strings"
)

// languageNames maps every accepted spelling to its Language. The
// canonical String() forms are included so serialized knowledge (which
// stores Lang.String()) round-trips through ParseLanguage.
var languageNames = map[string]Language{
	"python": Python,
	"py":     Python,
	"java":   Java,
	"go":     Go,
	"golang": Go,
}

// LanguageNames returns the canonical user-facing language names, in
// declaration order. Useful for flag help and error messages.
func LanguageNames() []string { return []string{"python", "java", "go"} }

// ParseLanguage resolves a language name (any case, including the
// String() form and common aliases like "py" and "golang") to its
// Language. Unknown names return an error listing the valid choices.
func ParseLanguage(s string) (Language, error) {
	if l, ok := languageNames[strings.ToLower(strings.TrimSpace(s))]; ok {
		return l, nil
	}
	return 0, fmt.Errorf("ast: unknown language %q (valid: %s)",
		s, strings.Join(LanguageNames(), ", "))
}
