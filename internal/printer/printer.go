// Package printer renders unified ASTs back to source text, for both
// Python and Java. The output is canonical rather than byte-faithful
// (comments are not part of the AST, and formatting is normalized), but
// it round-trips: parsing the rendered text yields a structurally equal
// AST. It backs report rendering, corpus tooling, and debugging.
package printer

import (
	"fmt"
	"strings"

	"namer/internal/ast"
)

// Print renders a file AST to source text in the given language.
func Print(root *ast.Node, lang ast.Language) string {
	p := &printer{lang: lang}
	if lang == ast.Python {
		p.pyStmts(root.Children, 0)
	} else {
		p.javaModule(root)
	}
	return p.b.String()
}

// PrintStatement renders a single statement AST (body pruned or not).
func PrintStatement(stmt *ast.Node, lang ast.Language) string {
	p := &printer{lang: lang}
	if lang == ast.Python {
		p.pyStmt(stmt, 0)
	} else {
		p.javaStmt(stmt, 0)
	}
	return strings.TrimRight(p.b.String(), "\n")
}

type printer struct {
	b    strings.Builder
	lang ast.Language
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) line(depth int, s string) {
	p.indent(depth)
	p.b.WriteString(s)
	p.b.WriteByte('\n')
}

// ---- Python ----

func (p *printer) pyStmts(stmts []*ast.Node, depth int) {
	for _, s := range stmts {
		p.pyStmt(s, depth)
	}
}

func body(n *ast.Node) *ast.Node {
	for _, c := range n.Children {
		if c.Kind == ast.Body {
			return c
		}
	}
	return nil
}

func (p *printer) pyBody(n *ast.Node, depth int) {
	b := body(n)
	if b == nil || len(b.Children) == 0 {
		p.line(depth, "pass")
		return
	}
	p.pyStmts(b.Children, depth)
}

func (p *printer) pyStmt(n *ast.Node, depth int) {
	switch n.Kind {
	case ast.Module:
		p.pyStmts(n.Children, depth)
	case ast.ClassDef:
		name, bases := "", []string{}
		for _, c := range n.Children {
			switch c.Kind {
			case ast.Ident:
				name = c.Value
			case ast.Decorator:
				p.line(depth, "@"+p.expr(c.Children[0]))
			case ast.Bases:
				for _, b := range c.Children {
					bases = append(bases, p.expr(b))
				}
			}
		}
		head := "class " + name
		if len(bases) > 0 {
			head += "(" + strings.Join(bases, ", ") + ")"
		}
		p.line(depth, head+":")
		p.pyBody(n, depth+1)
	case ast.FunctionDef, ast.CtorDef:
		name := ""
		params := []string{}
		for _, c := range n.Children {
			switch c.Kind {
			case ast.Decorator:
				p.line(depth, "@"+p.expr(c.Children[0]))
			case ast.Ident:
				name = c.Value
			case ast.Params:
				for _, prm := range c.Children {
					params = append(params, p.pyParam(prm))
				}
			}
		}
		p.line(depth, "def "+name+"("+strings.Join(params, ", ")+"):")
		p.pyBody(n, depth+1)
	case ast.If, ast.While:
		kw := "if"
		if n.Kind == ast.While {
			kw = "while"
		}
		p.line(depth, kw+" "+p.expr(n.Children[0])+":")
		p.pyBody(n, depth+1)
		for _, c := range n.Children[1:] {
			switch c.Kind {
			case ast.Elif:
				p.line(depth, "elif "+p.expr(c.Children[0])+":")
				p.pyBody(c, depth+1)
			case ast.Else:
				p.line(depth, "else:")
				p.pyBody(c, depth+1)
			}
		}
	case ast.For:
		p.line(depth, "for "+p.expr(n.Children[0])+" in "+p.expr(n.Children[1])+":")
		p.pyBody(n, depth+1)
		for _, c := range n.Children[2:] {
			if c.Kind == ast.Else {
				p.line(depth, "else:")
				p.pyBody(c, depth+1)
			}
		}
	case ast.Try:
		p.line(depth, "try:")
		p.pyBody(n, depth+1)
		for _, c := range n.Children {
			switch c.Kind {
			case ast.ExceptHandler:
				head := "except"
				var asName string
				for _, h := range c.Children {
					switch h.Kind {
					case ast.Body:
					case ast.NameStore:
						asName = p.expr(h)
					default:
						head += " " + p.expr(h)
					}
				}
				if asName != "" {
					head += " as " + asName
				}
				p.line(depth, head+":")
				p.pyBody(c, depth+1)
			case ast.Else:
				p.line(depth, "else:")
				p.pyBody(c, depth+1)
			case ast.Finally:
				p.line(depth, "finally:")
				p.pyBody(c, depth+1)
			}
		}
	case ast.With:
		var items []string
		for _, c := range n.Children {
			if c.Kind == ast.WithItem {
				it := p.expr(c.Children[0])
				if len(c.Children) > 1 {
					it += " as " + p.expr(c.Children[1])
				}
				items = append(items, it)
			}
		}
		p.line(depth, "with "+strings.Join(items, ", ")+":")
		p.pyBody(n, depth+1)
	case ast.Assign:
		parts := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			parts = append(parts, p.expr(c))
		}
		p.line(depth, strings.Join(parts, " = "))
	case ast.AugAssign:
		p.line(depth, p.expr(n.Children[0])+" "+n.Children[1].Value+" "+p.expr(n.Children[2]))
	case ast.AnnAssign:
		s := p.expr(n.Children[0]) + ": " + p.expr(n.Children[1].Children[0])
		if len(n.Children) > 2 {
			s += " = " + p.expr(n.Children[2])
		}
		p.line(depth, s)
	case ast.Return:
		s := "return"
		if len(n.Children) > 0 {
			s += " " + p.expr(n.Children[0])
		}
		p.line(depth, s)
	case ast.Pass:
		p.line(depth, "pass")
	case ast.Break:
		p.line(depth, "break")
	case ast.Continue:
		p.line(depth, "continue")
	case ast.Raise:
		s := "raise"
		for i, c := range n.Children {
			if i == 0 {
				s += " " + p.expr(c)
			} else {
				s += " from " + p.expr(c)
			}
		}
		p.line(depth, s)
	case ast.Global, ast.Nonlocal:
		kw := "global"
		if n.Kind == ast.Nonlocal {
			kw = "nonlocal"
		}
		var names []string
		for _, c := range n.Children {
			names = append(names, c.Value)
		}
		p.line(depth, kw+" "+strings.Join(names, ", "))
	case ast.AssertStmt:
		s := "assert " + p.expr(n.Children[0])
		if len(n.Children) > 1 {
			s += ", " + p.expr(n.Children[1])
		}
		p.line(depth, s)
	case ast.Delete:
		var parts []string
		for _, c := range n.Children {
			parts = append(parts, p.expr(c))
		}
		p.line(depth, "del "+strings.Join(parts, ", "))
	case ast.Import:
		var parts []string
		for _, al := range n.Children {
			s := al.Children[0].Value
			if len(al.Children) > 1 {
				s += " as " + al.Children[1].Value
			}
			parts = append(parts, s)
		}
		p.line(depth, "import "+strings.Join(parts, ", "))
	case ast.ImportFrom:
		mod := n.Children[0].Value
		var parts []string
		for _, al := range n.Children[1:] {
			s := al.Children[0].Value
			if len(al.Children) > 1 {
				s += " as " + al.Children[1].Value
			}
			parts = append(parts, s)
		}
		p.line(depth, "from "+mod+" import "+strings.Join(parts, ", "))
	case ast.ExprStmt:
		p.line(depth, p.expr(n.Children[0]))
	case ast.Block:
		p.pyStmts(n.Children, depth)
	default:
		p.line(depth, p.expr(n))
	}
}

func (p *printer) pyParam(n *ast.Node) string {
	switch n.Kind {
	case ast.Param:
		return n.Children[0].Value
	case ast.DefaultParam:
		name := n.Children[0].Value
		return name + "=" + p.expr(n.Children[len(n.Children)-1])
	case ast.VarArgParam:
		return "*" + n.Children[0].Value
	case ast.KwArgParam:
		return "**" + n.Children[0].Value
	}
	return p.expr(n)
}

// ---- shared expressions ----

func (p *printer) expr(n *ast.Node) string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case ast.NameLoad, ast.NameStore, ast.NameParam:
		return n.Children[0].Value
	case ast.Num, ast.Str, ast.Bool, ast.Null:
		return n.Children[0].Value
	case ast.Ident, ast.NumLit, ast.StrLit, ast.BoolLit, ast.NullLit, ast.OpTok:
		return n.Value
	case ast.AttributeLoad, ast.AttributeStore:
		return p.expr(n.Children[0]) + "." + n.Children[1].Children[0].Value
	case ast.SubscriptLoad, ast.SubscriptStore:
		idx := ""
		for _, c := range n.Children[1:] {
			idx = p.expr(c)
		}
		return p.expr(n.Children[0]) + "[" + idx + "]"
	case ast.Index:
		return p.expr(n.Children[0])
	case ast.SliceRange:
		var parts []string
		for _, c := range n.Children {
			parts = append(parts, p.expr(c))
		}
		return strings.Join(parts, ":")
	case ast.Call:
		var args []string
		for _, c := range n.Children[1:] {
			args = append(args, p.expr(c))
		}
		return p.expr(n.Children[0]) + "(" + strings.Join(args, ", ") + ")"
	case ast.Keyword:
		return n.Children[0].Value + "=" + p.expr(n.Children[1])
	case ast.StarArg:
		return "*" + p.expr(n.Children[0])
	case ast.DoubleStarArg:
		return "**" + p.expr(n.Children[0])
	case ast.BinOp:
		return "(" + p.expr(n.Children[1]) + " " + n.Children[0].Value + " " + p.expr(n.Children[2]) + ")"
	case ast.BoolOp:
		op := n.Children[0].Value
		if p.lang == ast.Java {
			// Java spells the operators differently only in the lexer;
			// the AST keeps && and ||.
			return "(" + p.expr(n.Children[1]) + " " + op + " " + p.expr(n.Children[2]) + ")"
		}
		return "(" + p.expr(n.Children[1]) + " " + op + " " + p.expr(n.Children[2]) + ")"
	case ast.UnaryOp:
		op := n.Children[0].Value
		sep := ""
		if op == "not" {
			sep = " "
		}
		if op == "++" || op == "--" {
			// Rendered as prefix; parse-equivalent for our grammar.
			return op + p.expr(n.Children[1])
		}
		return op + sep + p.expr(n.Children[1])
	case ast.Compare:
		s := p.expr(n.Children[0])
		for i := 1; i+1 < len(n.Children); i += 2 {
			s += " " + n.Children[i].Value + " " + p.expr(n.Children[i+1])
		}
		return "(" + s + ")"
	case ast.Ternary:
		if p.lang == ast.Java {
			return "(" + p.expr(n.Children[0]) + " ? " + p.expr(n.Children[1]) + " : " + p.expr(n.Children[2]) + ")"
		}
		return "(" + p.expr(n.Children[0]) + " if " + p.expr(n.Children[1]) + " else " + p.expr(n.Children[2]) + ")"
	case ast.Lambda:
		if p.lang == ast.Java {
			var params []string
			for _, prm := range n.Children[0].Children {
				params = append(params, prm.Children[len(prm.Children)-1].Value)
			}
			bodyStr := ""
			if len(n.Children) > 1 {
				if n.Children[1].Kind == ast.Body {
					bodyStr = "{ }"
				} else {
					bodyStr = p.expr(n.Children[1])
				}
			}
			return "(" + strings.Join(params, ", ") + ") -> " + bodyStr
		}
		var params []string
		for _, prm := range n.Children[0].Children {
			params = append(params, p.pyParam(prm))
		}
		return "lambda " + strings.Join(params, ", ") + ": " + p.expr(n.Children[1])
	case ast.ListLit:
		return "[" + p.exprList(n.Children) + "]"
	case ast.TupleLit:
		if len(n.Children) == 1 {
			return "(" + p.expr(n.Children[0]) + ",)"
		}
		return "(" + p.exprList(n.Children) + ")"
	case ast.SetLit:
		return "{" + p.exprList(n.Children) + "}"
	case ast.DictLit:
		var parts []string
		for _, c := range n.Children {
			parts = append(parts, p.expr(c))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case ast.DictItem:
		return p.expr(n.Children[0]) + ": " + p.expr(n.Children[1])
	case ast.Comprehension:
		s := p.expr(n.Children[0])
		for _, c := range n.Children[1:] {
			switch c.Kind {
			case ast.CompFor:
				s += " for " + p.expr(c.Children[0]) + " in " + p.expr(c.Children[1])
			case ast.CompIf:
				s += " if " + p.expr(c.Children[0])
			}
		}
		return "[" + s + "]"
	case ast.Yield:
		if len(n.Children) == 0 {
			return "yield"
		}
		return "yield " + p.expr(n.Children[0])
	case ast.New:
		typ := n.Children[0].Children[0].Value
		var args []string
		for _, c := range n.Children[1:] {
			if c.Kind != ast.Body {
				args = append(args, p.expr(c))
			}
		}
		if strings.HasSuffix(typ, "[]") {
			base := strings.TrimSuffix(typ, "[]")
			if len(args) > 0 {
				return "new " + base + "[" + args[0] + "]"
			}
			return "new " + base + "[0]"
		}
		return "new " + typ + "(" + strings.Join(args, ", ") + ")"
	case ast.Cast:
		return "((" + n.Children[0].Children[0].Value + ") " + p.expr(n.Children[1]) + ")"
	case ast.InstanceOf:
		return "(" + p.expr(n.Children[0]) + " instanceof " + n.Children[1].Children[0].Value + ")"
	case ast.ArrayLit:
		return "{" + p.exprList(n.Children) + "}"
	case ast.TypeRef:
		return n.Children[0].Value
	case ast.Assign:
		// Assignment in expression position (Java).
		return p.expr(n.Children[0]) + " = " + p.expr(n.Children[1])
	case ast.AugAssign:
		return p.expr(n.Children[0]) + " " + n.Children[1].Value + " " + p.expr(n.Children[2])
	}
	return fmt.Sprintf("/*%s*/", n.Kind)
}

func (p *printer) exprList(nodes []*ast.Node) string {
	var parts []string
	for _, c := range nodes {
		parts = append(parts, p.expr(c))
	}
	return strings.Join(parts, ", ")
}
