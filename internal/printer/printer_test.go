package printer

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/corpus"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

// roundTripPy asserts parse(Print(parse(src))) is structurally equal to
// parse(src).
func roundTripPy(t *testing.T, src string) {
	t.Helper()
	a, err := pylang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	rendered := Print(a, ast.Python)
	b, err := pylang.Parse(rendered)
	if err != nil {
		t.Fatalf("reparse: %v\nrendered:\n%s", err, rendered)
	}
	if !a.Equal(b) {
		t.Fatalf("round trip diverged\noriginal:\n%s\nrendered:\n%s\nA: %s\nB: %s",
			src, rendered, a.Fingerprint(), b.Fingerprint())
	}
}

func TestPythonRoundTripBasics(t *testing.T) {
	srcs := []string{
		"x = 1\n",
		"x = y = 2\n",
		"x += 1\n",
		"x, y = y, x\n",
		"def f(a, b=1, *args, **kwargs):\n    return a + b\n",
		"class C(Base):\n    def m(self):\n        pass\n",
		"for i in range(10):\n    use(i)\nelse:\n    done()\n",
		"while x:\n    x -= 1\n",
		"if a:\n    f()\nelif b:\n    g()\nelse:\n    h()\n",
		"try:\n    risky()\nexcept ValueError as e:\n    handle(e)\nfinally:\n    cleanup()\n",
		"with open(p) as f:\n    f.read()\n",
		"import os\nimport numpy as np\nfrom a.b import c as d\n",
		"assert x == 1, 'msg'\n",
		"del x\nraise ValueError(m)\nglobal g\n",
		"x = [1, 2, 3]\ny = (1, 2)\nz = {1: 2}\nw = {1, 2}\n",
		"x = [v for v in vs if v]\n",
		"f = lambda a, b=1: a + b\n",
		"x = a if c else b\n",
		"x = obj.attr[0](1, k=2, *a, **kw)\n",
		"x = -y + (a * b) ** 2\n",
		"x = a < b <= c\n",
		"x = not a or b and c\n",
		"x = s[1:2]\n",
	}
	for _, src := range srcs {
		roundTripPy(t, src)
	}
}

func TestPythonRoundTripCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig(ast.Python)
	cfg.Repos = 4
	cfg.FilesPerRepo = 3
	cfg.IssueRate = 0.2
	c := corpus.Generate(cfg)
	for _, r := range c.Repos {
		for _, f := range r.Files {
			roundTripPy(t, f.Source)
		}
	}
}

func roundTripJava(t *testing.T, src string) {
	t.Helper()
	a, err := javalang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	rendered := Print(a, ast.Java)
	b, err := javalang.Parse(rendered)
	if err != nil {
		t.Fatalf("reparse: %v\nrendered:\n%s", err, rendered)
	}
	if !a.Equal(b) {
		t.Fatalf("round trip diverged\noriginal:\n%s\nrendered:\n%s", src, rendered)
	}
}

func TestJavaRoundTripBasics(t *testing.T) {
	srcs := []string{
		"class T { int x = 1; }",
		"package p;\nimport java.util.List;\nclass T { }",
		"public class T extends B implements I, J { }",
		"class T { void m(int a, String b) { return; } }",
		"class T { T(int x) { this.x = x; } }",
		"class T { void m() { for (int i = 0; i < 10; i++) { use(i); } } }",
		"class T { void m(List items) { for (Object o : items) { use(o); } } }",
		"class T { void m() { while (x) { x--; } } }",
		"class T { void m() { do { x--; } while (x > 0); } }",
		"class T { void m() { if (a) { f(); } else { g(); } } }",
		"class T { void m() { try { f(); } catch (IOException | Error e) { g(); } finally { h(); } } }",
		"class T { void m() { switch (x) { case 1: f(); break; default: g(); } } }",
		"class T { void m() { synchronized (this) { x = 1; } } }",
		"class T { void m() { assert x > 0 : \"neg\"; } }",
		"class T { void m() { throw new IllegalStateException(\"bad\"); } }",
		"class T { void m() { Object o = (Object) x; boolean b = o instanceof List; } }",
		"class T { void m() { int c = a > b ? a : b; } }",
		"class T { int[] xs = {1, 2, 3}; }",
		"class T { void m() { x = obj.call(1, 2)[0]; } }",
	}
	for _, src := range srcs {
		roundTripJava(t, src)
	}
}

func TestJavaRoundTripCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig(ast.Java)
	cfg.Repos = 4
	cfg.FilesPerRepo = 3
	cfg.IssueRate = 0.2
	c := corpus.Generate(cfg)
	for _, r := range c.Repos {
		for _, f := range r.Files {
			roundTripJava(t, f.Source)
		}
	}
}

func TestPrintStatement(t *testing.T) {
	root, err := pylang.Parse("self.assertTrue(x, 90)\n")
	if err != nil {
		t.Fatal(err)
	}
	got := PrintStatement(root.Children[0], ast.Python)
	if got != "self.assertTrue(x, 90)" {
		t.Errorf("PrintStatement = %q", got)
	}
}
