package printer

import (
	"strings"

	"namer/internal/ast"
)

// javaModule renders a Java compilation unit.
func (p *printer) javaModule(root *ast.Node) {
	for _, c := range root.Children {
		switch c.Kind {
		case ast.PackageDecl:
			p.line(0, "package "+c.Children[0].Value+";")
		case ast.Import:
			p.line(0, "import "+c.Children[0].Children[0].Value+";")
		default:
			p.javaType(c, 0)
		}
	}
}

func modifiers(n *ast.Node) string {
	var out []string
	for _, c := range n.Children {
		if c.Kind == ast.Modifiers {
			for _, m := range c.Children {
				if m.Kind == ast.Modifier {
					out = append(out, m.Children[0].Value)
				}
			}
		}
	}
	if len(out) == 0 {
		return ""
	}
	return strings.Join(out, " ") + " "
}

func (p *printer) javaType(n *ast.Node, depth int) {
	kw := "class"
	switch n.Kind {
	case ast.InterfaceDef:
		kw = "interface"
	case ast.EnumDef:
		kw = "enum"
	}
	name := ""
	var bases []string
	for _, c := range n.Children {
		switch c.Kind {
		case ast.Ident:
			name = c.Value
		case ast.Bases:
			for _, b := range c.Children {
				bases = append(bases, b.Children[0].Value)
			}
		}
	}
	head := modifiers(n) + kw + " " + name
	if len(bases) > 0 {
		head += " extends " + bases[0]
		if len(bases) > 1 {
			head += " implements " + strings.Join(bases[1:], ", ")
		}
	}
	p.line(depth, head+" {")
	if b := body(n); b != nil {
		for _, m := range b.Children {
			p.javaMember(m, depth+1)
		}
	}
	p.line(depth, "}")
}

func (p *printer) javaMember(n *ast.Node, depth int) {
	switch n.Kind {
	case ast.FieldDecl:
		p.javaVarDecl(n, depth, true)
	case ast.FunctionDef, ast.CtorDef:
		name, ret := "", ""
		var params []string
		for _, c := range n.Children {
			switch c.Kind {
			case ast.Ident:
				name = c.Value
			case ast.TypeRef:
				ret = c.Children[0].Value
			case ast.Params:
				for _, prm := range c.Children {
					params = append(params, p.javaParam(prm))
				}
			}
		}
		head := modifiers(n)
		if ret != "" {
			head += ret + " "
		}
		head += name + "(" + strings.Join(params, ", ") + ")"
		p.line(depth, head+" {")
		if b := body(n); b != nil {
			for _, s := range b.Children {
				p.javaStmt(s, depth+1)
			}
		}
		p.line(depth, "}")
	case ast.ClassDef, ast.InterfaceDef, ast.EnumDef:
		p.javaType(n, depth)
	case ast.Block:
		for _, s := range n.Children {
			p.javaStmt(s, depth)
		}
	}
}

func (p *printer) javaParam(n *ast.Node) string {
	typ, name := "", ""
	for _, c := range n.Children {
		switch c.Kind {
		case ast.TypeRef:
			typ = c.Children[0].Value
		case ast.Ident:
			name = c.Value
		}
	}
	if n.Kind == ast.VarArgParam {
		return typ + "... " + name
	}
	if typ == "" {
		return name
	}
	return typ + " " + name
}

func (p *printer) javaVarDecl(n *ast.Node, depth int, field bool) {
	typ, name, init := "", "", ""
	for _, c := range n.Children {
		switch c.Kind {
		case ast.TypeRef:
			typ = c.Children[0].Value
		case ast.NameStore:
			name = c.Children[0].Value
		case ast.Modifiers:
		default:
			init = p.expr(c)
		}
	}
	s := modifiers(n) + typ + " " + name
	if init != "" {
		s += " = " + init
	}
	p.line(depth, s+";")
}

func (p *printer) javaBody(n *ast.Node, depth int) {
	if b := body(n); b != nil {
		for _, s := range b.Children {
			p.javaStmt(s, depth)
		}
	}
}

func (p *printer) javaStmt(n *ast.Node, depth int) {
	switch n.Kind {
	case ast.LocalVarDecl, ast.FieldDecl:
		p.javaVarDecl(n, depth, false)
	case ast.ExprStmt:
		p.line(depth, p.expr(n.Children[0])+";")
	case ast.Assign:
		p.line(depth, p.expr(n.Children[0])+" = "+p.expr(n.Children[len(n.Children)-1])+";")
	case ast.AugAssign:
		p.line(depth, p.expr(n.Children[0])+" "+n.Children[1].Value+" "+p.expr(n.Children[2])+";")
	case ast.Return:
		s := "return"
		if len(n.Children) > 0 {
			s += " " + p.expr(n.Children[0])
		}
		p.line(depth, s+";")
	case ast.Throw:
		p.line(depth, "throw "+p.expr(n.Children[0])+";")
	case ast.Break:
		s := "break"
		if len(n.Children) > 0 {
			s += " " + n.Children[0].Value
		}
		p.line(depth, s+";")
	case ast.Continue:
		s := "continue"
		if len(n.Children) > 0 {
			s += " " + n.Children[0].Value
		}
		p.line(depth, s+";")
	case ast.If:
		p.line(depth, "if ("+p.expr(n.Children[0])+") {")
		p.javaBody(n, depth+1)
		for _, c := range n.Children[1:] {
			switch c.Kind {
			case ast.Elif:
				p.indent(depth)
				p.b.WriteString("} else ")
				// The nested If renders its own header; splice it inline.
				inner := &printer{lang: p.lang}
				inner.javaStmt(c.Children[0], 0)
				s := inner.b.String()
				p.b.WriteString(strings.TrimPrefix(s, ""))
				return
			case ast.Else:
				p.line(depth, "} else {")
				p.javaBody(c, depth+1)
			}
		}
		p.line(depth, "}")
	case ast.While:
		p.line(depth, "while ("+p.expr(n.Children[0])+") {")
		p.javaBody(n, depth+1)
		p.line(depth, "}")
	case ast.DoWhile:
		p.line(depth, "do {")
		p.javaBody(n, depth+1)
		cond := ""
		for _, c := range n.Children {
			if c.Kind != ast.Body {
				cond = p.expr(c)
			}
		}
		p.line(depth, "} while ("+cond+");")
	case ast.For:
		var init, cond string
		var updates []string
		for _, c := range n.Children {
			switch {
			case c.Kind == ast.Body:
			case c.Kind == ast.LocalVarDecl:
				typ, name, iv := "", "", ""
				for _, d := range c.Children {
					switch d.Kind {
					case ast.TypeRef:
						typ = d.Children[0].Value
					case ast.NameStore:
						name = d.Children[0].Value
					default:
						iv = p.expr(d)
					}
				}
				init = typ + " " + name + " = " + iv
			case c.Kind == ast.Compare || c.Kind == ast.BoolOp:
				cond = strings.TrimSuffix(strings.TrimPrefix(p.expr(c), "("), ")")
			default:
				updates = append(updates, p.expr(c))
			}
		}
		p.line(depth, "for ("+init+"; "+cond+"; "+strings.Join(updates, ", ")+") {")
		p.javaBody(n, depth+1)
		p.line(depth, "}")
	case ast.ForEach:
		typ := n.Children[0].Children[0].Value
		name := n.Children[1].Children[0].Value
		p.line(depth, "for ("+typ+" "+name+" : "+p.expr(n.Children[2])+") {")
		p.javaBody(n, depth+1)
		p.line(depth, "}")
	case ast.Try:
		p.line(depth, "try {")
		p.javaBody(n, depth+1)
		for _, c := range n.Children {
			switch c.Kind {
			case ast.ExceptHandler:
				var types []string
				name := ""
				for _, h := range c.Children {
					switch h.Kind {
					case ast.TypeRef:
						types = append(types, h.Children[0].Value)
					case ast.NameStore:
						name = h.Children[0].Value
					}
				}
				p.line(depth, "} catch ("+strings.Join(types, " | ")+" "+name+") {")
				p.javaBody(c, depth+1)
			case ast.Finally:
				p.line(depth, "} finally {")
				p.javaBody(c, depth+1)
			}
		}
		p.line(depth, "}")
	case ast.Switch:
		p.line(depth, "switch ("+p.expr(n.Children[0])+") {")
		if b := body(n); b != nil {
			for _, cc := range b.Children {
				if cc.Kind != ast.CaseClause {
					continue
				}
				if len(cc.Children) > 0 && !ast.IsStatementKind(cc.Children[0].Kind) &&
					cc.Children[0].Kind != ast.Break && cc.Children[0].Kind != ast.Block {
					p.line(depth, "case "+p.expr(cc.Children[0])+":")
					for _, s := range cc.Children[1:] {
						p.javaStmt(s, depth+1)
					}
				} else {
					p.line(depth, "default:")
					for _, s := range cc.Children {
						p.javaStmt(s, depth+1)
					}
				}
			}
		}
		p.line(depth, "}")
	case ast.SyncBlock:
		p.line(depth, "synchronized ("+p.expr(n.Children[0])+") {")
		p.javaBody(n, depth+1)
		p.line(depth, "}")
	case ast.AssertStmt:
		s := "assert " + p.expr(n.Children[0])
		if len(n.Children) > 1 {
			s += " : " + p.expr(n.Children[1])
		}
		p.line(depth, s+";")
	case ast.LabeledStmt:
		p.line(depth, n.Children[0].Value+":")
		p.javaStmt(n.Children[1], depth)
	case ast.EmptyStmt:
		p.line(depth, ";")
	case ast.Block:
		p.line(depth, "{")
		for _, s := range n.Children {
			switch s.Kind {
			case ast.Body:
				p.javaBody(n, depth+1)
			default:
				p.javaStmt(s, depth+1)
			}
		}
		p.line(depth, "}")
	case ast.ClassDef:
		p.javaType(n, depth)
	default:
		p.line(depth, p.expr(n)+";")
	}
}
