package namepath

import (
	"testing"
	"testing/quick"

	"namer/internal/ast"
)

func mkPath(end string, elems ...Elem) Path {
	return Path{Prefix: elems, End: end}
}

func TestRelationalOperators(t *testing.T) {
	// Example 3.3 / 3.5 of the paper.
	prefix := []Elem{
		{"NumArgs(2)", 0}, {"Call", 0}, {"AttributeLoad", 1}, {"Attr", 0},
		{"NumST(2)", 1}, {"TestCase", 0},
	}
	np1 := Path{Prefix: prefix, End: "True"}
	np2 := Path{Prefix: prefix, End: "Equal"}
	np3 := Path{Prefix: prefix, End: Epsilon}

	if !np1.Same(np2) {
		t.Error("np1 ~ np2 should hold")
	}
	if np1.Eq(np2) {
		t.Error("np1 = np2 should not hold")
	}
	if !np1.Same(np3) {
		t.Error("np1 ~ np3 should hold")
	}
	if !np1.Eq(np3) {
		t.Error("np1 = np3 should hold (ϵ matches anything)")
	}
	if !np3.Symbolic() || np1.Symbolic() {
		t.Error("Symbolic flags wrong")
	}
}

func TestSameRequiresEqualPrefixes(t *testing.T) {
	a := mkPath("x", Elem{"Assign", 0}, Elem{"NameStore", 0})
	b := mkPath("x", Elem{"Assign", 1}, Elem{"NameStore", 0})
	c := mkPath("x", Elem{"Assign", 0})
	if a.Same(b) {
		t.Error("different indices should break ~")
	}
	if a.Same(c) {
		t.Error("different lengths should break ~")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	p := mkPath("self", Elem{"Call", 0}, Elem{"NameLoad", 0}, Elem{"NumST(1)", 0})
	q, ok := ParsePath(p.String())
	if !ok {
		t.Fatalf("ParsePath(%q) failed", p.String())
	}
	if !q.Eq(p) || q.Key() != p.Key() {
		t.Errorf("round trip: %q vs %q", q.Key(), p.Key())
	}
	// Symbolic round trip.
	s := p.WithEnd(Epsilon)
	q2, ok := ParsePath(s.String())
	if !ok || !q2.Symbolic() {
		t.Error("symbolic round trip failed")
	}
}

func TestExtractOrderAndLimit(t *testing.T) {
	// Tree: Assign(NameStore(NumST(a)), NumST(b, c))
	tree := ast.NewNode(ast.Assign,
		ast.NewNode(ast.NameStore,
			&ast.Node{Kind: ast.NumST, Value: "NumST(1)", Children: []*ast.Node{
				{Kind: ast.Subtoken, Value: "a"},
			}}),
		&ast.Node{Kind: ast.NumST, Value: "NumST(2)", Children: []*ast.Node{
			{Kind: ast.Subtoken, Value: "b"},
			{Kind: ast.Subtoken, Value: "c"},
		}},
	)
	paths := Extract(tree, 0)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	if paths[0].End != "a" || paths[1].End != "b" || paths[2].End != "c" {
		t.Errorf("order: %v %v %v", paths[0].End, paths[1].End, paths[2].End)
	}
	if got := Extract(tree, 2); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
	// Prefixes of distinct leaves are distinct.
	if paths[1].PrefixKey() == paths[2].PrefixKey() {
		t.Error("sibling subtokens must have distinct prefixes (index differs)")
	}
}

func TestExtractSkipsOperators(t *testing.T) {
	tree := ast.NewNode(ast.BinOp,
		&ast.Node{Kind: ast.OpTok, Value: "+"},
		&ast.Node{Kind: ast.NumST, Value: "NumST(1)", Children: []*ast.Node{
			{Kind: ast.Subtoken, Value: "x"},
		}},
		&ast.Node{Kind: ast.NumST, Value: "NumST(1)", Children: []*ast.Node{
			{Kind: ast.Subtoken, Value: "y"},
		}},
	)
	paths := Extract(tree, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (operator leaf skipped)", len(paths))
	}
}

func TestDedup(t *testing.T) {
	p := mkPath("x", Elem{"Assign", 0})
	q := mkPath("x", Elem{"Assign", 0})
	r := mkPath("y", Elem{"Assign", 0})
	out := Dedup([]Path{p, q, r})
	if len(out) != 2 {
		t.Errorf("Dedup = %d paths, want 2", len(out))
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	p := mkPath("x", Elem{"Assign", 0})
	q := mkPath("y", Elem{"Assign", 0})
	idP := in.Intern(p)
	idQ := in.Intern(q)
	if idP == idQ {
		t.Error("distinct paths must get distinct ids")
	}
	if in.Intern(p) != idP {
		t.Error("interning not idempotent")
	}
	if got := in.Path(idP); got.Key() != p.Key() {
		t.Error("Path round trip failed")
	}
	if _, ok := in.Lookup(mkPath("z", Elem{"Assign", 0})); ok {
		t.Error("Lookup of unknown path should fail")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

// Properties of the relational operators.
func TestOperatorProperties(t *testing.T) {
	gen := func(vals []uint8, end string) Path {
		var p Path
		for i, v := range vals {
			p.Prefix = append(p.Prefix, Elem{Value: string(rune('A' + v%4)), Index: i % 3})
		}
		p.End = end
		return p
	}
	// ~ is an equivalence on prefixes: symmetric.
	sym := func(a, b []uint8, e1, e2 string) bool {
		p, q := gen(a, e1), gen(b, e2)
		return p.Same(q) == q.Same(p)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error("~ symmetry:", err)
	}
	// = implies ~.
	eqImpliesSame := func(a, b []uint8, e1, e2 string) bool {
		p, q := gen(a, e1), gen(b, e2)
		return !p.Eq(q) || p.Same(q)
	}
	if err := quick.Check(eqImpliesSame, nil); err != nil {
		t.Error("= implies ~:", err)
	}
	// Any path = its symbolic version.
	symbolicEq := func(a []uint8, e string) bool {
		p := gen(a, e)
		return p.Eq(p.WithEnd(Epsilon))
	}
	if err := quick.Check(symbolicEq, nil); err != nil {
		t.Error("p = p[ϵ]:", err)
	}
	// Key uniqueness: equal keys iff Eq for concrete paths.
	keyFaithful := func(a, b []uint8, e1, e2 string) bool {
		if e1 == "" || e2 == "" {
			return true
		}
		p, q := gen(a, e1), gen(b, e2)
		return (p.Key() == q.Key()) == (p.Same(q) && p.End == q.End)
	}
	if err := quick.Check(keyFaithful, nil); err != nil {
		t.Error("key faithfulness:", err)
	}
}
