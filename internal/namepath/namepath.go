// Package namepath implements the name path abstraction of Definition 3.2:
// a path from the root of a transformed statement AST (AST+) to a leaf
// subtoken, recorded as a list of (node value, child index) pairs plus the
// end subtoken. Name paths are the items over which name patterns are
// defined and mined.
package namepath

import (
	"strconv"
	"strings"

	"namer/internal/ast"
)

// Epsilon is the symbolic end node ϵ of Definition 3.2. A Path with
// End == Epsilon is a symbolic name path: its end matches any subtoken.
const Epsilon = ""

// Elem is one step of a name path prefix: the value of a non-terminal node
// and the index of the next node in its children list.
type Elem struct {
	Value string
	Index int
}

// pathMemo caches the canonical encodings of a path. It is written once at
// construction time and read-only afterwards, so memoized paths can be
// shared freely across goroutines.
type pathMemo struct {
	prefixKey string
	key       string
}

// Path is a name path ⟨S, n⟩: Prefix is S, End is n (Epsilon when
// symbolic).
type Path struct {
	Prefix []Elem
	End    string

	// memo holds the precomputed PrefixKey/Key. Paths built by Extract,
	// ParsePath, and WithEnd carry it; zero-value paths compute keys on
	// demand.
	memo *pathMemo
}

// Same implements the ~ operator of Definition 3.4: true iff the prefixes
// are equal element-wise.
func (p Path) Same(q Path) bool {
	if len(p.Prefix) != len(q.Prefix) {
		return false
	}
	for i := range p.Prefix {
		if p.Prefix[i] != q.Prefix[i] {
			return false
		}
	}
	return true
}

// Eq implements the = operator of Definition 3.4: prefixes equal, and the
// ends equal or either end symbolic.
func (p Path) Eq(q Path) bool {
	if !p.Same(q) {
		return false
	}
	return p.End == Epsilon || q.End == Epsilon || p.End == q.End
}

// Symbolic reports whether the end node is ϵ.
func (p Path) Symbolic() bool { return p.End == Epsilon }

// WithEnd returns a copy of p with the given end node, preserving (and
// adjusting) the key memo when present.
func (p Path) WithEnd(end string) Path {
	q := Path{Prefix: p.Prefix, End: end}
	if p.memo != nil {
		q.memo = &pathMemo{prefixKey: p.memo.prefixKey, key: fullKey(p.memo.prefixKey, end)}
	}
	return q
}

// Memoized returns p with its canonical encodings precomputed, so that
// subsequent PrefixKey/Key calls are constant-time map-key reads. It is
// idempotent and the memo is immutable, making memoized paths safe to
// share across goroutines.
func (p Path) Memoized() Path {
	if p.memo == nil {
		pk := computePrefixKey(p.Prefix)
		p.memo = &pathMemo{prefixKey: pk, key: fullKey(pk, p.End)}
	}
	return p
}

func computePrefixKey(prefix []Elem) string {
	var b strings.Builder
	for i, e := range prefix {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.Value)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(e.Index))
	}
	return b.String()
}

func fullKey(prefixKey, end string) string {
	if end == Epsilon {
		return prefixKey + " ε"
	}
	return prefixKey + " " + end
}

// PrefixKey returns a canonical encoding of the prefix, used to group and
// compare paths cheaply.
func (p Path) PrefixKey() string {
	if p.memo != nil {
		return p.memo.prefixKey
	}
	return computePrefixKey(p.Prefix)
}

// Key returns a canonical encoding of the full path (prefix and end). Two
// paths are identical iff their keys are equal.
func (p Path) Key() string {
	if p.memo != nil {
		return p.memo.key
	}
	return fullKey(p.PrefixKey(), p.End)
}

// String renders the path in the paper's notation.
func (p Path) String() string {
	if p.End == Epsilon {
		return p.PrefixKey() + " ϵ"
	}
	return p.PrefixKey() + " " + p.End
}

// Extract walks a transformed statement AST (AST+) top-down and returns
// the concrete name paths to its terminal leaves, in left-to-right order.
// Operator token leaves are skipped: name paths end at code-name subtokens
// and abstracted literals (NUM/STR/BOOL/NULL). At most limit paths are
// returned (the paper keeps the first 10); limit <= 0 means no limit.
func Extract(root *ast.Node, limit int) []Path {
	var out []Path
	var prefix []Elem
	// The canonical prefix encoding is grown incrementally alongside the
	// walk, so every emitted path carries its PrefixKey/Key memo without a
	// per-path re-encoding of the whole prefix.
	var keyBuf []byte
	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if n.IsTerminal() {
			if n.Kind == ast.Subtoken {
				pk := string(keyBuf)
				p := Path{
					Prefix: append([]Elem(nil), prefix...),
					End:    n.Value,
					memo:   &pathMemo{prefixKey: pk, key: fullKey(pk, n.Value)},
				}
				out = append(out, p)
			}
			return
		}
		for i, c := range n.Children {
			prefix = append(prefix, Elem{Value: n.Value, Index: i})
			mark := len(keyBuf)
			if mark > 0 {
				keyBuf = append(keyBuf, ' ')
			}
			keyBuf = append(keyBuf, n.Value...)
			keyBuf = append(keyBuf, ' ')
			keyBuf = strconv.AppendInt(keyBuf, int64(i), 10)
			walk(c)
			keyBuf = keyBuf[:mark]
			prefix = prefix[:len(prefix)-1]
		}
	}
	walk(root)
	return out
}

// Dedup removes duplicate paths (by Key), preserving order. Statement path
// sets are required to have pairwise-distinct prefixes; Dedup enforces the
// weaker full-path uniqueness used when updating the FP tree.
func Dedup(paths []Path) []Path {
	seen := make(map[string]bool, len(paths))
	out := paths[:0]
	for _, p := range paths {
		k := p.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// ParsePath parses the paper's textual notation back into a Path: tokens
// alternate value and index, ending with the end node ("ϵ" for symbolic).
// It is the inverse of String for values without spaces and is used by
// tests and tools.
func ParsePath(s string) (Path, bool) {
	fields := strings.Fields(s)
	if len(fields) == 0 || len(fields)%2 == 0 {
		return Path{}, false
	}
	var p Path
	for i := 0; i+1 < len(fields); i += 2 {
		idx, err := strconv.Atoi(fields[i+1])
		if err != nil {
			return Path{}, false
		}
		p.Prefix = append(p.Prefix, Elem{Value: fields[i], Index: idx})
	}
	end := fields[len(fields)-1]
	if end == "ϵ" || end == "ε" {
		end = Epsilon
	}
	p.End = end
	return p.Memoized(), true
}

// Interner assigns dense integer ids to paths so the FP-tree can store
// items as ints.
type Interner struct {
	byKey map[string]int
	paths []Path
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byKey: make(map[string]int)}
}

// Intern returns the id for p, allocating one if needed.
func (in *Interner) Intern(p Path) int {
	k := p.Key()
	if id, ok := in.byKey[k]; ok {
		return id
	}
	id := len(in.paths)
	in.byKey[k] = id
	in.paths = append(in.paths, p)
	return id
}

// Lookup returns the id for p and whether it is known.
func (in *Interner) Lookup(p Path) (int, bool) {
	id, ok := in.byKey[p.Key()]
	return id, ok
}

// Path returns the path with the given id.
func (in *Interner) Path(id int) Path { return in.paths[id] }

// Len returns the number of interned paths.
func (in *Interner) Len() int { return len(in.paths) }
