package eval

import (
	"math/rand"

	"namer/internal/corpus"
)

// StudyItem is one row of Table 7: a code-quality report shown to the
// (simulated) developers.
type StudyItem struct {
	Category  string
	Statement string
	Original  string
	Suggested string
}

// StudyResult is one row of Table 8: how the panel judged one category.
type StudyResult struct {
	Category    string
	NotAccepted int
	WithIDE     int // accepted at coding time with an IDE plugin
	WithPR      int // accepted as an automatic pull request
	Manually    int // would even fix manually
}

// userStudyCategories are the five code-quality categories of Table 7.
var userStudyCategories = []string{
	"inconsistent", "minor", "confusing", "typo", "indescriptive",
}

// UserStudyItems reproduces Table 7's selection: one classifier-approved
// code-quality report per category (randomly picking the first found).
func (r *Run) UserStudyItems() []StudyItem {
	if !r.Sys.HasClassifier() {
		r.TrainClassifier()
	}
	var items []StudyItem
	for _, cat := range userStudyCategories {
		for _, l := range r.Violations {
			if l.Severity != corpus.CodeQuality || l.Category != cat {
				continue
			}
			if !r.Sys.Classify(l.V) {
				continue
			}
			items = append(items, StudyItem{
				Category:  cat,
				Statement: l.V.Stmt.SourceLine,
				Original:  l.V.Detail.Original,
				Suggested: l.V.Detail.Suggested,
			})
			break
		}
	}
	return items
}

// acceptance propensities per category: probabilities of the four
// outcomes (not accepted, with IDE, with PR, fix manually). These encode
// the qualitative finding of §5.4 — developers accept most reports when
// an automatic tool locates the issue and suggests the fix, and only a
// few reports are rejected — and are a *simulation* standing in for the
// paper's seven human participants (see DESIGN.md).
var studyPropensity = map[string][4]float64{
	"confusing":     {0.05, 0.40, 0.30, 0.25},
	"indescriptive": {0.05, 0.40, 0.30, 0.25},
	"inconsistent":  {0.25, 0.10, 0.50, 0.15},
	"minor":         {0.30, 0.50, 0.05, 0.15},
	"typo":          {0.15, 0.25, 0.15, 0.45},
}

// SimulateUserStudy runs the §5.4 protocol with a panel of simulated
// developers: each developer judges each item, drawing an outcome from
// the category's propensity distribution with per-developer leniency
// jitter. Deterministic in the seed.
func SimulateUserStudy(items []StudyItem, developers int, seed int64) []StudyResult {
	rng := rand.New(rand.NewSource(seed))
	// Per-developer leniency shifts probability mass away from or toward
	// rejection.
	leniency := make([]float64, developers)
	for d := range leniency {
		leniency[d] = rng.Float64()*0.2 - 0.1
	}
	var out []StudyResult
	for _, item := range items {
		base, ok := studyPropensity[item.Category]
		if !ok {
			base = [4]float64{0.25, 0.25, 0.25, 0.25}
		}
		res := StudyResult{Category: item.Category}
		for d := 0; d < developers; d++ {
			p := base
			p[0] -= leniency[d]
			if p[0] < 0.01 {
				p[0] = 0.01
			}
			total := p[0] + p[1] + p[2] + p[3]
			roll := rng.Float64() * total
			switch {
			case roll < p[0]:
				res.NotAccepted++
			case roll < p[0]+p[1]:
				res.WithIDE++
			case roll < p[0]+p[1]+p[2]:
				res.WithPR++
			default:
				res.Manually++
			}
		}
		out = append(out, res)
	}
	return out
}
