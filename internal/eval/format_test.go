package eval

import (
	"strings"
	"testing"

	"namer/internal/pattern"
)

func TestFormatPrecisionTable(t *testing.T) {
	rows := []PrecisionRow{
		{Name: "Namer", Reports: 134, Semantic: 5, Quality: 89, FalsePos: 40},
		{Name: "w/o C", Reports: 300, Semantic: 13, Quality: 124, FalsePos: 163},
	}
	out := FormatPrecisionTable(rows)
	for _, want := range []string{"Namer", "w/o C", "134", "70%", "46%", "Precision"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatBreakdownEmptyCategories(t *testing.T) {
	rows := []BreakdownRow{
		{PatternType: pattern.Consistency, Semantic: 1, Quality: 2, FalsePos: 3,
			Categories: map[string]int{"typo": 2}},
		{PatternType: pattern.ConfusingWord, Categories: map[string]int{}},
	}
	out := FormatBreakdown(rows)
	if !strings.Contains(out, "typo") || !strings.Contains(out, "Semantic defect") {
		t.Errorf("breakdown:\n%s", out)
	}
}

func TestPrecisionRowZeroReports(t *testing.T) {
	r := PrecisionRow{Name: "empty"}
	if r.Precision() != 0 {
		t.Error("zero reports should give zero precision, not NaN")
	}
}
