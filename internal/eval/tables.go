package eval

import (
	"fmt"
	"sort"
	"strings"

	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/features"
	"namer/internal/pattern"
)

// PrecisionRow is one row of Table 2 (Python) or Table 5 (Java).
type PrecisionRow struct {
	Name     string
	Reports  int
	Semantic int
	Quality  int
	FalsePos int
}

// Precision returns (semantic + quality) / reports.
func (r PrecisionRow) Precision() float64 {
	if r.Reports == 0 {
		return 0
	}
	return float64(r.Semantic+r.Quality) / float64(r.Reports)
}

// PrecisionTable reproduces Table 2 / Table 5: Namer plus the three
// ablations ("C" = defect classifier, "A" = static analyses), each
// inspected on a random sample of violations.
func (r *Run) PrecisionTable() []PrecisionRow {
	var rows []PrecisionRow

	// Namer and w/o C share the analysis-enabled system.
	test := r.TrainClassifier()
	rows = append(rows, r.inspect("Namer", test, true))
	rows = append(rows, r.inspect("w/o C", test, false))

	// w/o A and w/o C&A: rebuild without the static analyses (patterns are
	// re-mined on undecorated paths, as in the paper).
	cfgNoA := r.Opts.System
	cfgNoA.UseAnalysis = false
	sysNoA, _, labeledNoA := buildSystem(r.Corpus, cfgNoA)
	runNoA := &Run{Opts: r.Opts, Corpus: r.Corpus, Sys: sysNoA, Violations: labeledNoA}
	testNoA := runNoA.TrainClassifier()
	rows = append(rows, runNoA.inspect("w/o A", testNoA, true))
	rows = append(rows, runNoA.inspect("w/o C & A", testNoA, false))
	return rows
}

// inspect simulates the manual inspection of the sampled violations:
// with the classifier, only violations it reports are inspected; without,
// every sampled violation is reported.
func (r *Run) inspect(name string, sample []*Labeled, useClassifier bool) PrecisionRow {
	row := PrecisionRow{Name: name}
	for _, l := range sample {
		if useClassifier && !r.Sys.Classify(l.V) {
			continue
		}
		row.Reports++
		switch l.Severity {
		case corpus.SemanticDefect:
			row.Semantic++
		case corpus.CodeQuality:
			row.Quality++
		default:
			row.FalsePos++
		}
	}
	return row
}

// ExampleReport is one row of Table 3 / Table 6.
type ExampleReport struct {
	Severity  corpus.Severity
	Category  string
	Statement string
	Original  string
	Suggested string
}

// ExampleReports reproduces Tables 3 and 6: representative reports per
// severity (semantic defects, code quality issues, false positives),
// up to perSeverity each, drawn from the classifier-approved reports.
func (r *Run) ExampleReports(perSeverity int) []ExampleReport {
	if !r.Sys.HasClassifier() {
		r.TrainClassifier()
	}
	var out []ExampleReport
	counts := map[corpus.Severity]int{}
	seen := map[string]bool{}
	for _, l := range r.Violations {
		if !r.Sys.Classify(l.V) {
			continue
		}
		if counts[l.Severity] >= perSeverity {
			continue
		}
		key := l.Category + "|" + l.V.Detail.Original + "|" + l.V.Detail.Suggested
		if seen[key] {
			continue
		}
		seen[key] = true
		counts[l.Severity]++
		out = append(out, ExampleReport{
			Severity:  l.Severity,
			Category:  l.Category,
			Statement: l.V.Stmt.SourceLine,
			Original:  l.V.Detail.Original,
			Suggested: l.V.Detail.Suggested,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// BreakdownRow is one column of Table 4: inspection outcomes for reports
// of one pattern type, with the code-quality category breakdown.
type BreakdownRow struct {
	PatternType pattern.Type
	Semantic    int
	Quality     int
	FalsePos    int
	// Categories counts code-quality issues by category (confusing,
	// indescriptive, inconsistent, minor, typo).
	Categories map[string]int
}

// PatternBreakdown reproduces Table 4 (and the matching §5.3 paragraph):
// up to perType classifier-approved reports per pattern type, judged
// against the ground truth.
func (r *Run) PatternBreakdown(perType int) []BreakdownRow {
	if !r.Sys.HasClassifier() {
		r.TrainClassifier()
	}
	rows := []BreakdownRow{
		{PatternType: pattern.Consistency, Categories: map[string]int{}},
		{PatternType: pattern.ConfusingWord, Categories: map[string]int{}},
	}
	counts := [2]int{}
	for _, l := range r.Violations {
		idx := 0
		if l.V.Pattern.Type == pattern.ConfusingWord {
			idx = 1
		}
		if counts[idx] >= perType {
			continue
		}
		if !r.Sys.Classify(l.V) {
			continue
		}
		counts[idx]++
		switch l.Severity {
		case corpus.SemanticDefect:
			rows[idx].Semantic++
		case corpus.CodeQuality:
			rows[idx].Quality++
			rows[idx].Categories[l.Category]++
		default:
			rows[idx].FalsePos++
		}
	}
	return rows
}

// TypeShare reproduces the "distribution of naming issues per pattern
// type" statistics: the share of reports from each pattern type (they can
// overlap when a statement is flagged by both).
type TypeShare struct {
	Consistency float64
	Confusing   float64
	Both        float64
}

// ReportTypeShare computes the per-pattern-type report shares over the
// classifier-approved reports.
func (r *Run) ReportTypeShare() TypeShare {
	if !r.Sys.HasClassifier() {
		r.TrainClassifier()
	}
	type key struct {
		stmt *core.ProcStmt
	}
	byStmt := map[key][2]bool{}
	for _, l := range r.Violations {
		if !r.Sys.Classify(l.V) {
			continue
		}
		k := key{l.V.Stmt}
		cur := byStmt[k]
		if l.V.Pattern.Type == pattern.Consistency {
			cur[0] = true
		} else {
			cur[1] = true
		}
		byStmt[k] = cur
	}
	total := len(byStmt)
	if total == 0 {
		return TypeShare{}
	}
	var cons, conf, both int
	for _, c := range byStmt {
		if c[0] {
			cons++
		}
		if c[1] {
			conf++
		}
		if c[0] && c[1] {
			both++
		}
	}
	return TypeShare{
		Consistency: float64(cons) / float64(total),
		Confusing:   float64(conf) / float64(total),
		Both:        float64(both) / float64(total),
	}
}

// WeightRow is one row of Table 9: a feature family's learned weight at
// each statistical level.
type WeightRow struct {
	Feature string
	File    float64
	Repo    float64
	Dataset float64 // NaN-free: 0 when the family has no dataset level
	HasData bool
}

// FeatureWeightTable reproduces Table 9 from the trained classifier's
// weights mapped back to the 17 features: the identical-statement,
// satisfaction-count, and violation-count families across levels.
func (r *Run) FeatureWeightTable() []WeightRow {
	if !r.Sys.HasClassifier() {
		r.TrainClassifier()
	}
	w := r.Sys.FeatureWeights()
	if len(w) != features.Count {
		return nil
	}
	return []WeightRow{
		{Feature: "Identical statement", File: w[1], Repo: w[2]},
		{Feature: "Satisfaction rate", File: w[3], Repo: w[4], Dataset: w[5], HasData: true},
		{Feature: "Violation count", File: w[6], Repo: w[7], Dataset: w[8], HasData: true},
		{Feature: "Satisfaction count", File: w[9], Repo: w[10], Dataset: w[11], HasData: true},
	}
}

// FormatPrecisionTable renders Table 2/5 as text.
func FormatPrecisionTable(rows []PrecisionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %9s %8s %6s %10s\n",
		"Baseline", "Report", "Semantic", "Quality", "FP", "Precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %9d %8d %6d %9.0f%%\n",
			r.Name, r.Reports, r.Semantic, r.Quality, r.FalsePos, 100*r.Precision())
	}
	return b.String()
}

// FormatBreakdown renders Table 4 as text.
func FormatBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %14s\n", "Inspection outcome", "Consistency", "Confusing word")
	get := func(i int, f func(BreakdownRow) int) int { return f(rows[i]) }
	fmt.Fprintf(&b, "%-22s %12d %14d\n", "Semantic defect",
		get(0, func(r BreakdownRow) int { return r.Semantic }),
		get(1, func(r BreakdownRow) int { return r.Semantic }))
	fmt.Fprintf(&b, "%-22s %12d %14d\n", "Code quality issue",
		get(0, func(r BreakdownRow) int { return r.Quality }),
		get(1, func(r BreakdownRow) int { return r.Quality }))
	fmt.Fprintf(&b, "%-22s %12d %14d\n", "False positive",
		get(0, func(r BreakdownRow) int { return r.FalsePos }),
		get(1, func(r BreakdownRow) int { return r.FalsePos }))
	cats := map[string]bool{}
	for _, r := range rows {
		for c := range r.Categories {
			cats[c] = true
		}
	}
	var names []string
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	b.WriteString("Breakdown of code quality issues\n")
	for _, c := range names {
		fmt.Fprintf(&b, "%-22s %12d %14d\n", c, rows[0].Categories[c], rows[1].Categories[c])
	}
	return b.String()
}
