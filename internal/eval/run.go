// Package eval reproduces the experimental evaluation of §5: the
// precision/ablation tables for Python and Java (Tables 2 and 5), example
// reports (Tables 3 and 6), the per-pattern-type breakdown (Table 4), the
// simulated user study (Tables 7 and 8), classifier feature weights
// (Table 9), the comparison against the GGNN and Great baselines (Tables
// 10 and 11), and the mining/cross-validation statistics quoted in §5.2
// and §5.3. The generated corpus's ground-truth labels play the role of
// the paper's manual inspection (see DESIGN.md).
package eval

import (
	"math/rand"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/ml"
)

// Options configures one evaluation run.
type Options struct {
	Lang      ast.Language
	Corpus    corpus.Config
	System    core.Config
	TrainSize int // labeled violations for the classifier (paper: 120)
	TestSize  int // randomly selected violations to inspect (paper: 300)
	Seed      int64
}

// DefaultOptions mirrors §5.1 at generated-corpus scale. The anomaly rate
// is set high enough that raw pattern matching has substantial
// false-positive pressure, which is what the defect classifier exists to
// prune.
func DefaultOptions(lang ast.Language) Options {
	ccfg := corpus.DefaultConfig(lang)
	ccfg.Repos = 60
	ccfg.FilesPerRepo = 6
	ccfg.IssueRate = 0.05
	ccfg.AnomalyRate = 0.15
	scfg := core.DefaultConfig(lang)
	// Pattern support scales with corpus size: a mined idiom typically
	// occurs once or twice per file exhibiting it.
	scfg.Mining.MinPatternCount = ccfg.Repos * ccfg.FilesPerRepo / 3
	return Options{
		Lang:      lang,
		Corpus:    ccfg,
		System:    scfg,
		TrainSize: 120,
		TestSize:  300,
		Seed:      7,
	}
}

// Labeled couples a violation with its ground-truth inspection outcome.
type Labeled struct {
	V        *core.Violation
	Severity corpus.Severity
	Category string
}

// IsIssue reports whether the violation is a true naming issue.
func (l *Labeled) IsIssue() bool { return l.Severity != corpus.NotIssue }

// Run is a fully built evaluation environment: corpus, system, and the
// labeled violation universe.
type Run struct {
	Opts       Options
	Corpus     *corpus.Corpus
	Sys        *core.System
	Violations []*Labeled
	Files      []*core.InputFile
}

// NewRun generates the corpus, builds the system (mining, scanning), and
// labels every violation with the ground truth.
func NewRun(opts Options) *Run {
	c := corpus.Generate(opts.Corpus)
	sys, files, labeled := buildSystem(c, opts.System)
	return &Run{Opts: opts, Corpus: c, Sys: sys, Violations: labeled, Files: files}
}

func buildSystem(c *corpus.Corpus, cfg core.Config) (*core.System, []*core.InputFile, []*Labeled) {
	sys := core.NewSystem(cfg)
	sys.MinePairs(c.Commits)
	var files []*core.InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{
				Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root,
			})
		}
	}
	sys.ProcessFiles(files)
	sys.MinePatterns()
	var labeled []*Labeled
	for _, v := range core.Dedup(sys.Scan()) {
		sev, cat := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original)
		labeled = append(labeled, &Labeled{V: v, Severity: sev, Category: cat})
	}
	return sys, files, labeled
}

// splitTrainTest picks a balanced training set of up to n labeled
// violations (half true, half false, per §5.1) and returns it along with
// a random sample of testSize violations from the remainder.
func splitTrainTest(labeled []*Labeled, n, testSize int, seed int64) (train, test []*Labeled) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(labeled))
	// Never consume more than half the pool for training, so a test
	// sample always remains.
	if n > len(labeled)/2 {
		n = len(labeled) / 2
	}
	half := n / 2
	pos, neg := 0, 0
	inTrain := make([]bool, len(labeled))
	for _, i := range perm {
		l := labeled[i]
		if l.IsIssue() && pos < half {
			train = append(train, l)
			inTrain[i] = true
			pos++
		} else if !l.IsIssue() && neg < half {
			train = append(train, l)
			inTrain[i] = true
			neg++
		}
	}
	for _, i := range perm {
		if inTrain[i] {
			continue
		}
		test = append(test, labeled[i])
		if len(test) >= testSize {
			break
		}
	}
	return train, test
}

// TrainClassifier trains the system's classifier on a balanced labeled
// subset and returns the held-out test sample.
func (r *Run) TrainClassifier() (test []*Labeled) {
	train, test := splitTrainTest(r.Violations, r.Opts.TrainSize, r.Opts.TestSize, r.Opts.Seed)
	vs := make([]*core.Violation, len(train))
	ys := make([]int, len(train))
	for i, l := range train {
		vs[i] = l.V
		if l.IsIssue() {
			ys[i] = 1
		}
	}
	r.Sys.TrainClassifier(vs, ys)
	return test
}

// CrossValidation reproduces the §5.1/§5.2 model-selection protocol on
// the labeled training pool, returning metrics per model and the selected
// model name.
func (r *Run) CrossValidation(repeats int) (best string, results map[string]ml.Metrics) {
	train, _ := splitTrainTest(r.Violations, r.Opts.TrainSize, 0, r.Opts.Seed)
	vs := make([]*core.Violation, len(train))
	ys := make([]int, len(train))
	for i, l := range train {
		vs[i] = l.V
		if l.IsIssue() {
			ys[i] = 1
		}
	}
	results = make(map[string]ml.Metrics)
	bestF1 := -1.0
	for _, model := range []string{"svm", "logreg", "lda"} {
		m := r.Sys.CrossValidate(vs, ys, model, repeats)
		results[model] = m
		if m.F1 > bestF1 || (m.F1 == bestF1 && model < best) {
			best, bestF1 = model, m.F1
		}
	}
	return best, results
}

// MiningStats reproduces the "statistics on pattern mining" paragraphs of
// §5.2/§5.3.
type MiningStats struct {
	Patterns            int
	ViolatingStatements int
	ViolatingFiles      int
	TotalFiles          int
	ViolatingRepos      int
	TotalRepos          int
	ConfusingPairs      int
}

// Mining returns the corpus-level mining statistics.
func (r *Run) Mining() MiningStats {
	files := map[string]bool{}
	repos := map[string]bool{}
	stmts := map[*core.ProcStmt]bool{}
	for _, l := range r.Violations {
		files[l.V.Stmt.Path] = true
		repos[l.V.Stmt.Repo] = true
		stmts[l.V.Stmt] = true
	}
	return MiningStats{
		Patterns:            len(r.Sys.Patterns),
		ViolatingStatements: len(stmts),
		ViolatingFiles:      len(files),
		TotalFiles:          r.Corpus.TotalFiles(),
		ViolatingRepos:      len(repos),
		TotalRepos:          len(r.Corpus.Repos),
		ConfusingPairs:      r.Sys.Pairs.Len(),
	}
}
