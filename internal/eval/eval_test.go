package eval

import (
	"strings"
	"testing"

	"namer/internal/ast"
)

// testOptions shrinks the corpus for fast tests.
func testOptions(lang ast.Language) Options {
	opts := DefaultOptions(lang)
	opts.Corpus.Repos = 18
	opts.Corpus.FilesPerRepo = 4
	opts.System.Mining.MinPatternCount = opts.Corpus.Repos * opts.Corpus.FilesPerRepo / 3
	opts.TrainSize = 80
	opts.TestSize = 200
	return opts
}

func TestPrecisionTableShape(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	rows := run.PrecisionTable()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]PrecisionRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Reports == 0 {
			t.Errorf("%s: zero reports", r.Name)
		}
		t.Logf("%-10s reports=%3d semantic=%2d quality=%3d fp=%3d precision=%.2f",
			r.Name, r.Reports, r.Semantic, r.Quality, r.FalsePos, r.Precision())
	}
	// Paper shape: the classifier improves precision over raw matching.
	if byName["Namer"].Precision() <= byName["w/o C"].Precision() {
		t.Errorf("Namer precision %.2f should beat w/o C %.2f",
			byName["Namer"].Precision(), byName["w/o C"].Precision())
	}
	// Paper shape: without the analyses, precision drops too.
	if byName["Namer"].Precision() <= byName["w/o C & A"].Precision() {
		t.Errorf("Namer precision %.2f should beat w/o C&A %.2f",
			byName["Namer"].Precision(), byName["w/o C & A"].Precision())
	}
	// Without the classifier every sampled violation is reported.
	if byName["w/o C"].Reports < byName["Namer"].Reports {
		t.Error("w/o C must report at least as much as Namer")
	}
	// Paper shape: the analyses unlock issues — w/o A finds fewer true
	// positives than Namer.
	namerTP := byName["Namer"].Semantic + byName["Namer"].Quality
	noATP := byName["w/o A"].Semantic + byName["w/o A"].Quality
	if noATP >= namerTP {
		t.Errorf("w/o A should find fewer issues: %d vs %d", noATP, namerTP)
	}
}

func TestExampleReports(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	examples := run.ExampleReports(3)
	if len(examples) == 0 {
		t.Fatal("no example reports")
	}
	for _, ex := range examples {
		if ex.Original == "" || ex.Suggested == "" {
			t.Errorf("incomplete example: %+v", ex)
		}
	}
}

func TestPatternBreakdown(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	rows := run.PatternBreakdown(100)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	totalQuality := rows[0].Quality + rows[1].Quality
	if totalQuality == 0 {
		t.Error("no code quality issues in the breakdown")
	}
	text := FormatBreakdown(rows)
	if !strings.Contains(text, "Consistency") || !strings.Contains(text, "Semantic defect") {
		t.Errorf("breakdown format:\n%s", text)
	}
}

func TestReportTypeShare(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	share := run.ReportTypeShare()
	if share.Consistency+share.Confusing <= 0 {
		t.Fatalf("degenerate shares: %+v", share)
	}
	// Shares can overlap, so the sum is >= 1 only when Both > 0; each must
	// be a valid proportion.
	for _, v := range []float64{share.Consistency, share.Confusing, share.Both} {
		if v < 0 || v > 1 {
			t.Errorf("share out of range: %+v", share)
		}
	}
}

func TestFeatureWeightTable(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	rows := run.FeatureWeightTable()
	if len(rows) != 4 {
		t.Fatalf("weight rows = %d, want 4", len(rows))
	}
	nonZero := 0
	for _, r := range rows {
		if r.File != 0 || r.Repo != 0 || r.Dataset != 0 {
			nonZero++
		}
		t.Logf("%-22s file=%+.3f repo=%+.3f dataset=%+.3f", r.Feature, r.File, r.Repo, r.Dataset)
	}
	if nonZero == 0 {
		t.Error("all weights are zero")
	}
}

func TestCrossValidation(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	best, results := run.CrossValidation(5)
	if len(results) != 3 {
		t.Fatalf("results = %d models", len(results))
	}
	if _, ok := results[best]; !ok {
		t.Errorf("best model %q not in results", best)
	}
	for name, m := range results {
		t.Logf("%s: acc=%.2f f1=%.2f", name, m.Accuracy, m.F1)
		if m.Accuracy < 0.5 {
			t.Errorf("%s accuracy %.2f below chance", name, m.Accuracy)
		}
	}
}

func TestMiningStats(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	st := run.Mining()
	if st.Patterns == 0 || st.ViolatingStatements == 0 {
		t.Errorf("degenerate mining stats: %+v", st)
	}
	if st.ViolatingFiles > st.TotalFiles || st.ViolatingRepos > st.TotalRepos {
		t.Errorf("impossible coverage: %+v", st)
	}
	if st.ConfusingPairs == 0 {
		t.Error("no confusing pairs")
	}
}

func TestUserStudy(t *testing.T) {
	run := NewRun(testOptions(ast.Python))
	items := run.UserStudyItems()
	if len(items) == 0 {
		t.Fatal("no study items")
	}
	results := SimulateUserStudy(items, 7, 42)
	if len(results) != len(items) {
		t.Fatalf("results = %d, items = %d", len(results), len(items))
	}
	for _, r := range results {
		total := r.NotAccepted + r.WithIDE + r.WithPR + r.Manually
		if total != 7 {
			t.Errorf("%s: %d responses, want 7", r.Category, total)
		}
	}
	// Deterministic.
	again := SimulateUserStudy(items, 7, 42)
	for i := range results {
		if results[i] != again[i] {
			t.Error("user study not deterministic")
		}
	}
	// §5.4 shape: acceptance dominates rejection overall.
	var rejected, accepted int
	for _, r := range results {
		rejected += r.NotAccepted
		accepted += r.WithIDE + r.WithPR + r.Manually
	}
	if accepted <= rejected {
		t.Errorf("acceptance (%d) should dominate rejection (%d)", accepted, rejected)
	}
}

func TestNeuralComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("neural comparison is slow")
	}
	opts := testOptions(ast.Python)
	opts.Corpus.Repos = 10
	run := NewRun(opts)
	table := run.PrecisionTable()
	namer := table[0]
	nopts := DefaultNeuralOptions()
	nopts.TrainSamples = 250
	nopts.TestSamples = 80
	nopts.Dim = 16
	nopts.Epochs = 3
	results := run.NeuralComparison(nopts, 100) // enough reports to be meaningful
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (GGNN, Great)", len(results))
	}
	_ = namer
	// Namer's true-issue yield over all classifier-approved reports (the
	// sampled table row is too small at this corpus scale).
	namerTP := 0
	for _, l := range run.Violations {
		if l.IsIssue() && run.Sys.Classify(l.V) {
			namerTP++
		}
	}
	for i, res := range results {
		t.Logf("%s: synthetic cls=%.2f loc=%.2f rep=%.2f | real: %d reports, precision %.2f",
			res.System, res.Synthetic.Classification, res.Synthetic.Localization,
			res.Synthetic.Repair, res.Row.Reports, res.Row.Precision())
		// §5.6 shape: decent synthetic accuracy (GGNN trains well even at
		// this tiny scale; the 1-layer Great underfits but must stay near
		// or above chance)...
		minCls := 0.6
		if i == 1 {
			minCls = 0.35
		}
		if res.Synthetic.Classification < minCls {
			t.Errorf("%s synthetic classification %.2f too low", res.System, res.Synthetic.Classification)
		}
		// ...but they recover fewer real naming issues than Namer at far
		// lower precision. (GGNN legitimately catches the swapped-argument
		// subset — genuine variable misuses — so the TP gap narrows on
		// tiny corpora; at full scale it is ≥3×, see EXPERIMENTS.md.)
		baseTP := res.Row.Semantic + res.Row.Quality
		if baseTP >= namerTP {
			t.Errorf("%s finds %d true issues, Namer finds %d — expected fewer",
				res.System, baseTP, namerTP)
		}
		if res.Row.Precision() >= 0.5 {
			t.Errorf("%s real precision %.2f suspiciously high", res.System, res.Row.Precision())
		}
	}
}

func TestJavaRunBuilds(t *testing.T) {
	opts := testOptions(ast.Java)
	opts.Corpus.Repos = 10
	run := NewRun(opts)
	if len(run.Violations) == 0 {
		t.Fatal("no violations on the Java corpus")
	}
	rows := run.PrecisionTable()
	byName := map[string]PrecisionRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("%-10s reports=%3d precision=%.2f", r.Name, r.Reports, r.Precision())
	}
	if byName["Namer"].Precision() <= byName["w/o C"].Precision() {
		t.Errorf("Java: Namer precision %.2f should beat w/o C %.2f",
			byName["Namer"].Precision(), byName["w/o C"].Precision())
	}
}
