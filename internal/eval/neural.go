package eval

import (
	"math/rand"
	"sort"

	"namer/internal/ast"
	"namer/internal/corpus"
	"namer/internal/ggnn"
	"namer/internal/graphs"
	"namer/internal/great"
	"namer/internal/subtoken"
	"namer/internal/synthetic"
)

// NeuralOptions sizes the baseline training of §5.6. The paper trained
// for 70–130 hours on GPUs; these CPU-scale settings preserve the
// experiment's structure (train on synthetic misuse, test on synthetic
// and on real code) at laptop cost.
type NeuralOptions struct {
	Dim          int
	Steps        int // GGNN message-passing steps
	Layers       int // Great transformer layers
	Epochs       int
	TrainSamples int
	TestSamples  int
	Seed         int64
}

// DefaultNeuralOptions returns fast CPU-scale settings.
func DefaultNeuralOptions() NeuralOptions {
	return NeuralOptions{
		Dim: 16, Steps: 2, Layers: 1, Epochs: 3,
		TrainSamples: 500, TestSamples: 200, Seed: 11,
	}
}

// SyntheticAccuracy mirrors the §5.6 "training and measuring accuracy"
// numbers: bug/no-bug classification, localization of the corrupted slot,
// and repair of the original name — all on held-out synthetic misuses.
type SyntheticAccuracy struct {
	Classification float64
	Localization   float64
	Repair         float64
}

// NeuralResult is one row of Table 10 / Table 11 plus the synthetic
// accuracy of the model.
type NeuralResult struct {
	System    string
	Synthetic SyntheticAccuracy
	Row       PrecisionRow
}

// provFn is a corpus function with provenance for judging reports.
type provFn struct {
	repo, path string
	node       *ast.Node
}

// NeuralComparison reproduces Tables 10 and 11: trains GGNN and Great on
// synthetic variable misuses derived from the corpus, measures their
// synthetic accuracy, then runs them on the unmodified corpus and judges
// their most confident reports against the ground truth. The baselines
// are tuned to report ~5× fewer issues than Namer, as in §5.6.
func (r *Run) NeuralComparison(opts NeuralOptions, namerReports int) []NeuralResult {
	vocab := graphs.NewVocab()
	rng := rand.New(rand.NewSource(opts.Seed))

	var fns []provFn
	for _, repo := range r.Corpus.Repos {
		for _, f := range repo.Files {
			for _, fn := range synthetic.Functions(f.Root) {
				fns = append(fns, provFn{repo: repo.Name, path: f.Path, node: fn})
			}
		}
	}
	if len(fns) == 0 {
		return nil
	}

	mkSample := func() *synthetic.Sample {
		f := fns[rng.Intn(len(fns))]
		if rng.Intn(2) == 0 {
			cs := synthetic.CleanSamples(f.node, vocab, 0)
			if len(cs) > 0 {
				return cs[rng.Intn(len(cs))]
			}
			return nil
		}
		if s, ok := synthetic.Inject(f.node, vocab, rng); ok {
			return s
		}
		return nil
	}
	var train, test []*synthetic.Sample
	for len(train) < opts.TrainSamples {
		if s := mkSample(); s != nil {
			train = append(train, s)
		}
	}
	for len(test) < opts.TestSamples {
		if s := mkSample(); s != nil {
			test = append(test, s)
		}
	}
	// Pre-intern every function's graph vocabulary so the real-corpus
	// scan below cannot outgrow the embedding, then freeze: unseen words
	// map to <unk>.
	for _, f := range fns {
		graphs.Build(f.node, vocab)
	}
	vocabSize := vocab.Len() + 1
	vocab.Freeze()

	gg := ggnn.New(ggnn.Config{VocabSize: vocabSize, Dim: opts.Dim, Steps: opts.Steps, Seed: opts.Seed})
	gg.Train(train, opts.Epochs, 0.01)
	gr := great.New(great.Config{VocabSize: vocabSize, Dim: opts.Dim, Layers: opts.Layers, Seed: opts.Seed})
	gr.Train(train, opts.Epochs, 0.01)

	baselineReports := namerReports / 5
	if baselineReports < 1 {
		baselineReports = 1
	}
	var out []NeuralResult
	for _, mc := range []struct {
		name  string
		model synthetic.Scorer
	}{{"GGNN", gg}, {"Great", gr}} {
		res := NeuralResult{System: mc.name}
		res.Synthetic = measureSynthetic(mc.model, train, test)
		res.Row = r.realPrecision(mc.name, mc.model, fns, vocab, baselineReports)
		out = append(out, res)
	}
	return out
}

// measureSynthetic computes classification/localization/repair accuracy
// on the synthetic test set, calibrating the classification threshold on
// the training set.
func measureSynthetic(m synthetic.Scorer, train, test []*synthetic.Sample) SyntheticAccuracy {
	// Calibrate a wrongness threshold on training samples.
	type scored struct {
		w     float64
		buggy bool
	}
	var ws []scored
	for _, s := range train {
		w, _ := synthetic.Wrongness(m, s)
		ws = append(ws, scored{w, s.Buggy})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].w < ws[j].w })
	bestThr, bestAcc := 0.0, -1.0
	for i := 0; i <= len(ws); i++ {
		thr := -1e9
		if i > 0 {
			thr = ws[i-1].w
		}
		correct := 0
		for _, s := range ws {
			pred := s.w > thr
			if pred == s.buggy {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(ws)); acc > bestAcc {
			bestAcc, bestThr = acc, thr
		}
	}

	var clsOK, clsN int
	var locOK, locN int
	var repOK, repN int
	for _, s := range test {
		w, _ := synthetic.Wrongness(m, s)
		clsN++
		if (w > bestThr) == s.Buggy {
			clsOK++
		}
		if !s.Buggy {
			continue
		}
		// Localization: the injected slot should have the highest
		// wrongness among all slots of its (corrupted) graph.
		locN++
		if argmaxSlot(m, s) == s.Slot {
			locOK++
		}
		// Repair: top candidate at the true slot is the original name.
		repN++
		scores := m.Score(s)
		best := 0
		for i, sc := range scores {
			if sc > scores[best] {
				best = i
			}
		}
		if best == s.Correct {
			repOK++
		}
	}
	acc := SyntheticAccuracy{}
	if clsN > 0 {
		acc.Classification = float64(clsOK) / float64(clsN)
	}
	if locN > 0 {
		acc.Localization = float64(locOK) / float64(locN)
	}
	if repN > 0 {
		acc.Repair = float64(repOK) / float64(repN)
	}
	return acc
}

// argmaxSlot scores every variable-use slot of the sample's graph and
// returns the one with the highest wrongness.
func argmaxSlot(m synthetic.Scorer, s *synthetic.Sample) int {
	bestSlot, bestW := -1, 0.0
	for _, slot := range s.G.VarUses() {
		probe := &synthetic.Sample{
			G: s.G, Slot: slot, Candidates: s.Candidates, CandIDs: s.CandIDs,
			Correct: s.Correct, Buggy: s.Buggy, Line: s.Line,
		}
		w, _ := synthetic.Wrongness(m, probe)
		if bestSlot == -1 || w > bestW {
			bestSlot, bestW = slot, w
		}
	}
	return bestSlot
}

// realPrecision runs the model over the unmodified corpus functions and
// judges its top-K most confident misuse reports (Table 10/11 rows).
func (r *Run) realPrecision(name string, m synthetic.Scorer, fns []provFn,
	vocab *graphs.Vocab, reports int) PrecisionRow {

	type report struct {
		wrongness  float64
		repo, path string
		line       int
		current    string
		suggested  string
	}
	var all []report
	for _, f := range fns {
		for _, s := range synthetic.CleanSamples(f.node, vocab, 0) {
			w, alt := synthetic.Wrongness(m, s)
			if alt < 0 || alt >= len(s.Candidates) {
				continue
			}
			all = append(all, report{
				wrongness: w, repo: f.repo, path: f.path, line: s.Line,
				current: s.G.VarName[s.Slot], suggested: s.Candidates[alt],
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].wrongness > all[j].wrongness })
	if len(all) > reports {
		all = all[:reports]
	}
	row := PrecisionRow{Name: name}
	for _, rep := range all {
		row.Reports++
		sev := judgeNameReport(r.Corpus, rep.repo, rep.path, rep.line, rep.current, rep.suggested)
		switch sev {
		case corpus.SemanticDefect:
			row.Semantic++
		case corpus.CodeQuality:
			row.Quality++
		default:
			row.FalsePos++
		}
	}
	return row
}

// judgeNameReport checks a variable-misuse report against the ground
// truth, trying the full names and the single differing subtoken (the
// granularity injected issues are recorded at).
func judgeNameReport(c *corpus.Corpus, repo, path string, line int, current, suggested string) corpus.Severity {
	if sev, _ := c.Judge(repo, path, line, current); sev != corpus.NotIssue {
		return sev
	}
	if sev, _ := c.Judge(repo, path, line, suggested); sev != corpus.NotIssue {
		return sev
	}
	// Subtoken-level: e.g. progDialog vs progressDialog differs at "prog".
	sa, sb := subtoken.Split(current), subtoken.Split(suggested)
	if len(sa) == len(sb) {
		diffs := 0
		word := ""
		for i := range sa {
			if sa[i] != sb[i] {
				diffs++
				word = sa[i]
			}
		}
		if diffs == 1 {
			if sev, _ := c.Judge(repo, path, line, word); sev != corpus.NotIssue {
				return sev
			}
		}
	}
	return corpus.NotIssue
}
