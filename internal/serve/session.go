// Long-lived editor sessions: POST /v1/session opens or closes a
// session, POST /v1/session/{id}/change applies didChange-style edits
// to one file overlay and answers with push-style diagnostics. A change
// is the interactive sibling of /v1/scan + /v1/diff in one round trip:
// the touched file is re-analyzed (incrementally when the edit hint and
// region verification allow — see core.AnalyzeOverlayCtx), the result
// is diffed against the session's previous scan of that file by
// statement fingerprint, and the response carries the full diagnostic
// set plus the introduced/resolved delta and proposed-fix text edits.
//
// Changes run through the exact pipeline the scan endpoints use —
// admission gate, body cap, tracing span, panic-contained analysis
// goroutine, deadline — so a thousand editor sessions obey the same
// -max-inflight budget as batch scans. Session scan state is pinned to
// the knowledge bundle it was computed under: a hot reload leaves the
// overlay *contents* untouched but invalidates the scan state lazily —
// the first change after a swap rebuilds its diff baseline under the
// new knowledge, so diagnostics never mix two artifacts.
//
// Overlay analyses are deliberately not published to the shared
// per-file scan cache: a spliced region re-analysis may differ from a
// from-scratch one on cross-region points-to origins, and the cache's
// contract is byte-identical-to-uncached.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"strings"
	"time"

	"namer/internal/core"
	"namer/internal/obs"
	"namer/internal/session"
)

// sessionScan is the per-file scan state a session stores between
// changes (the opaque value handed through session.Change.Prev).
type sessionScan struct {
	// bun is the knowledge bundle the analysis was computed under; a
	// mismatch with the bundle captured at admission means a hot reload
	// happened and the diff baseline must be rebuilt.
	bun *bundle
	// analysis is the last successful analysis of this overlay file;
	// nil until one scan succeeds.
	analysis *core.FileAnalysis
	// pending maps analysis.Source to the current overlay content when
	// scans failed in between (edits kept applying); nil when the
	// analysis is current.
	pending *core.EditHint
	// desynced marks an overlay that moved past the analysis in a way
	// pending cannot express (a failed full-content replace): the next
	// successful scan must be a full one.
	desynced bool
}

// SessionRequest is the POST /v1/session body.
type SessionRequest struct {
	// Op is "open" or "close".
	Op string `json:"op"`
	// SessionID identifies the session to close.
	SessionID string `json:"session_id,omitempty"`
}

// SessionResponse is the POST /v1/session reply.
type SessionResponse struct {
	Status    string `json:"status"`
	SessionID string `json:"session_id,omitempty"`
	// Sessions is the number of open sessions after the operation.
	Sessions int `json:"sessions"`
}

// SessionChangeRequest is the POST /v1/session/{id}/change body: one
// batch of edits to one file overlay. The first change to a path must
// carry a full-content edit (nil range); later changes may use
// LSP-style ranges.
type SessionChangeRequest struct {
	Lang    string         `json:"lang,omitempty"`
	Path    string         `json:"path"`
	Version int            `json:"version,omitempty"`
	Edits   []session.Edit `json:"edits"`
	// All includes diagnostics the classifier rejects.
	All bool `json:"all,omitempty"`
}

// TextEdit is a proposed fix as an LSP-style edit: replace
// [StartCharacter, EndCharacter) on Line (all zero-based) with NewText.
type TextEdit struct {
	Line           int    `json:"line"`
	StartCharacter int    `json:"start_character"`
	EndCharacter   int    `json:"end_character"`
	NewText        string `json:"new_text"`
}

// SessionDiagnostic is one violation in a change response, with the
// proposed fix as an applicable text edit when the flagged identifier
// can be located unambiguously on its line.
type SessionDiagnostic struct {
	ScanViolation
	Edit *TextEdit `json:"edit,omitempty"`
}

// SessionChangeResponse is the POST /v1/session/{id}/change reply.
// Diagnostics is the file's full current set (push-style — it replaces
// whatever the client showed before); Introduced/Resolved is the delta
// against this session's previous scan of the file, by statement
// fingerprint, with the same carried-over semantics as /v1/diff.
type SessionChangeResponse struct {
	SessionID string `json:"session_id"`
	Path      string `json:"path"`
	Version   int    `json:"version"`
	// ContentHash is the hex sha256 of the post-edit overlay content,
	// for clients to detect desync (and tests to detect cross-talk).
	ContentHash string `json:"content_hash"`
	// Scan reports how the change was analyzed: "incremental" (region
	// splice), "full" (whole-file re-analysis), or "failed" (the new
	// content does not parse; Diagnostics holds the previous scan's
	// set, possibly with stale line numbers, and Errors says why).
	Scan             string              `json:"scan"`
	Statements       int                 `json:"statements"`
	ReusedStatements int                 `json:"reused_statements"`
	Diagnostics      []SessionDiagnostic `json:"diagnostics"`
	Introduced       []SessionDiagnostic `json:"introduced"`
	Resolved         int                 `json:"resolved"`
	Errors           []string            `json:"errors,omitempty"`
	ScanMillis       float64             `json:"scan_millis"`
}

// handleSession answers POST /v1/session: open a new session or close
// an existing one.
func (sv *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	statRequests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		sv.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SessionRequest
	if !sv.readJSON(w, r, &req) {
		return
	}
	switch req.Op {
	case "open":
		if sv.closing.Load() {
			sv.fail(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		s, err := sv.sessions.Open()
		if err != nil {
			w.Header().Set("Retry-After", "1")
			sv.fail(w, http.StatusTooManyRequests, err.Error())
			return
		}
		sv.mSessionOpens.Inc()
		sv.writeJSON(w, http.StatusOK, SessionResponse{
			Status: "ok", SessionID: s.ID(), Sessions: sv.sessions.Len(),
		})
	case "close":
		if req.SessionID == "" {
			sv.fail(w, http.StatusBadRequest, `"close" needs a "session_id"`)
			return
		}
		if !sv.sessions.Close(req.SessionID) {
			sv.fail(w, http.StatusNotFound, "unknown session "+req.SessionID)
			return
		}
		sv.writeJSON(w, http.StatusOK, SessionResponse{
			Status: "ok", Sessions: sv.sessions.Len(),
		})
	default:
		sv.fail(w, http.StatusBadRequest, `"op" must be "open" or "close"`)
	}
}

// handleSessionRoute dispatches /v1/session/{id}/change.
func (sv *Server) handleSessionRoute(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, op, ok := strings.Cut(rest, "/")
	if !ok || id == "" || op != "change" {
		sv.fail(w, http.StatusNotFound, "unknown session endpoint (want /v1/session/{id}/change)")
		return
	}
	sv.handleSessionChange(w, r, id)
}

// handleSessionChange applies one edit batch and answers with
// diagnostics. It shares the scan endpoints' full pipeline: admission
// gate, bundle capture, body cap, tracing, panic containment, deadline.
func (sv *Server) handleSessionChange(w http.ResponseWriter, r *http.Request, id string) {
	statRequests.Add(1)
	sv.mSessionChanges.Inc()
	start := time.Now()
	defer func() { sv.hRequest.Since(start) }()

	release, ok := sv.gate(w, r)
	if !ok {
		return
	}
	defer release()
	defer func() { sv.hSessionChange.Since(start) }()

	// Same bundle-capture discipline as handleScan: the whole change —
	// scan, baseline rebuild, classify — runs against this knowledge.
	b := sv.cur.Load()

	sess, ok := sv.sessions.Get(id)
	if !ok {
		sv.fail(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	var req SessionChangeRequest
	if !sv.readJSON(w, r, &req) {
		return
	}
	if _, ok := sv.resolveLang(b, w, req.Lang); !ok {
		return
	}
	if req.Path == "" {
		sv.fail(w, http.StatusBadRequest, `a change needs a "path"`)
		return
	}
	if len(req.Edits) == 0 {
		sv.fail(w, http.StatusBadRequest, `a change needs "edits"`)
		return
	}

	ctx, tr := sv.traced(r.Context(), "session_change", 1)
	type changeOutcome struct {
		resp    *SessionChangeResponse
		editErr error
	}
	out, err := run(sv, ctx, func(ctx context.Context) changeOutcome {
		var resp *SessionChangeResponse
		editErr := sess.Update(req.Path, req.Version, req.Edits, func(ch *session.Change) any {
			state, r := sv.scanChange(ctx, b, sess.ID(), &req, ch)
			resp = r
			return state
		})
		return changeOutcome{resp: resp, editErr: editErr}
	})
	if !sv.finish(w, r, tr, err) {
		return
	}
	if out.editErr != nil {
		// Edit application problems are client errors: a bad range, a
		// range edit on a file the session never opened.
		sv.fail(w, http.StatusBadRequest, out.editErr.Error())
		return
	}
	sv.writeJSON(w, http.StatusOK, out.resp)
}

// scanChange analyzes one applied change and builds both the new scan
// state and the response. It runs inside the session lock (ordering
// edits within the session) and inside run's panic/deadline containment.
func (sv *Server) scanChange(ctx context.Context, b *bundle, sid string, req *SessionChangeRequest, ch *session.Change) (*sessionScan, *SessionChangeResponse) {
	start := time.Now()
	sum := sha256.Sum256([]byte(ch.After))
	resp := &SessionChangeResponse{
		SessionID:   sid,
		Path:        ch.Path,
		Version:     ch.Version,
		ContentHash: hex.EncodeToString(sum[:]),
		Diagnostics: []SessionDiagnostic{},
		Introduced:  []SessionDiagnostic{},
	}

	// Establish the diff baseline and the incremental hint. The hint
	// must map base.Analysis.Source to ch.After; anything that breaks
	// that chain degrades to hint=nil (full re-analysis).
	prev, _ := ch.Prev.(*sessionScan)
	var base *core.FileAnalysis
	var hint *core.EditHint
	switch {
	case prev != nil && prev.analysis != nil && prev.bun == b:
		base = prev.analysis
		switch {
		case prev.desynced || ch.Hint == nil:
			hint = nil
		case prev.pending != nil:
			m := prev.pending.Merge(*ch.Hint)
			hint = &m
		default:
			hint = ch.Hint
		}
	case prev != nil && prev.analysis != nil:
		// A hot reload swapped the knowledge since the last scan: the
		// overlay content survives, the scan state does not. Rebuild
		// the baseline from the pre-edit content under the *new*
		// bundle, so Introduced/Resolved reflects the edit rather than
		// the knowledge swap — the same semantics /v1/diff would give
		// for before/after under current knowledge.
		if ba, err := b.sys.AnalyzeOverlayCtx(ctx,
			&core.InputFile{Repo: "session", Path: ch.Path, Source: ch.Before}, nil, nil); err == nil {
			base = ba.Analysis
			hint = ch.Hint
		}
	}

	cur, err := b.sys.AnalyzeOverlayCtx(ctx,
		&core.InputFile{Repo: "session", Path: ch.Path, Source: ch.After}, base, hint)
	if err != nil {
		// The new content does not parse (mid-keystroke syntax). Keep
		// the last good analysis as the baseline and remember how far
		// the overlay has drifted from it, so the next parsable state
		// can still scan incrementally.
		resp.Scan = "failed"
		resp.Errors = append(resp.Errors, err.Error())
		state := &sessionScan{bun: b, analysis: base, pending: hint,
			desynced: base != nil && hint == nil}
		if base != nil {
			resp.Statements = len(base.Stmts)
			afterLines := strings.Split(ch.After, "\n")
			resp.Diagnostics = sv.renderStaleDiags(b, base, afterLines, req.All)
		}
		resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
		return state, resp
	}

	if cur.Incremental {
		resp.Scan = "incremental"
	} else {
		resp.Scan = "full"
	}
	resp.Statements = cur.Statements
	resp.ReusedStatements = cur.ReusedStatements
	afterLines := strings.Split(ch.After, "\n")

	_, classifySpan := obs.StartSpan(ctx, "classify")
	resp.Diagnostics = sv.renderChangeDiags(b, cur, cur.Violations, afterLines, req.All)
	if base != nil {
		introduced, _ := core.IntroducedViolations(
			base.Statements(), cur.Analysis.Statements(),
			base.RawViolations(), cur.Analysis.RawViolations())
		resolved, _ := core.IntroducedViolations(
			cur.Analysis.Statements(), base.Statements(),
			cur.Analysis.RawViolations(), base.RawViolations())
		resp.Introduced = sv.renderChangeDiags(b, cur, introduced, afterLines, req.All)
		resp.Resolved = len(resolved)
	} else {
		// First scan of this file in the session: everything is new.
		resp.Introduced = resp.Diagnostics
	}
	classifySpan.SetAttrInt("diagnostics", len(resp.Diagnostics))
	classifySpan.End()

	sv.mViol.Add(int64(len(cur.Violations)))
	resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
	return &sessionScan{bun: b, analysis: cur.Analysis}, resp
}

// renderChangeDiags classifies violations against the overlay's own
// statistics and renders them with proposed-fix text edits.
func (sv *Server) renderChangeDiags(b *bundle, cur *core.OverlayResult, vs []*core.Violation, afterLines []string, all bool) []SessionDiagnostic {
	out := []SessionDiagnostic{}
	for _, v := range vs {
		classified := b.sys.ClassifyIn(cur.Stats, v)
		if !classified && !all {
			continue
		}
		if classified {
			statReported.Add(1)
			sv.mReported.Inc()
		}
		out = append(out, sessionDiagnostic(v, classified, afterLines))
	}
	return out
}

// renderStaleDiags re-renders the last good analysis's diagnostics
// after a failed scan (the client keeps its previous squiggles, line
// numbers possibly stale), classified against that analysis's own
// replayed statistics.
func (sv *Server) renderStaleDiags(b *bundle, base *core.FileAnalysis, afterLines []string, all bool) []SessionDiagnostic {
	stats := base.Stats()
	out := []SessionDiagnostic{}
	for _, v := range core.Dedup(base.RawViolations()) {
		classified := b.sys.ClassifyIn(stats, v)
		if !classified && !all {
			continue
		}
		out = append(out, sessionDiagnostic(v, classified, afterLines))
	}
	return out
}

// sessionDiagnostic renders one violation, attaching the proposed fix
// as a text edit when the flagged identifier occurs exactly once on its
// (current) line.
func sessionDiagnostic(v *core.Violation, classified bool, afterLines []string) SessionDiagnostic {
	d := SessionDiagnostic{ScanViolation: renderViolation(v, classified)}
	from, to, ok := v.SuggestFixedName()
	if !ok {
		return d
	}
	line := v.Stmt.Line - 1
	if line < 0 || line >= len(afterLines) {
		return d
	}
	text := afterLines[line]
	col := strings.Index(text, from)
	if col < 0 || strings.Index(text[col+len(from):], from) >= 0 {
		return d
	}
	d.Edit = &TextEdit{
		Line:           line,
		StartCharacter: col,
		EndCharacter:   col + len(from),
		NewText:        to,
	}
	return d
}

// Close marks the server as draining: further reloads are refused (and
// a reload already in flight is waited out), and new sessions are
// turned away, while in-flight and subsequent scans keep answering
// until the HTTP server finishes its graceful shutdown. Wire it to
// http.Server.RegisterOnShutdown together with the ReloadOnSignal stop
// function, so a SIGHUP racing a shutdown can never swap the bundle
// under requests that are being drained.
func (sv *Server) Close() error {
	sv.closing.Store(true)
	// Taking the reload mutex waits out any reload currently swapping;
	// after Close returns the bundle pointer is final.
	sv.reloadMu.Lock()
	defer sv.reloadMu.Unlock()
	return nil
}

// errServerClosing is returned by Reload once Close has been called.
var errServerClosing = errors.New("serve: server shutting down")
