package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// driveScans fires total scan requests at the server with the given
// client concurrency, round-robining over the corpus sources, and fails
// the test on any non-200.
func driveScans(t *testing.T, url string, sources []string, total, concurrency int) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	per := total / concurrency
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body, _ := json.Marshal(ScanRequest{Source: sources[(w*per+i)%len(sources)], All: true})
				resp, err := http.Post(url+"/v1/scan", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// serveBenchFile is the BENCH_serve.json schema: end-to-end scan
// latency quantiles read back from the daemon's own /metrics
// histograms, tracked commit over commit.
type serveBenchFile struct {
	CPUs        int     `json:"cpus"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	P50Millis   float64 `json:"request_p50_ms"`
	P95Millis   float64 `json:"request_p95_ms"`
	P99Millis   float64 `json:"request_p99_ms"`
	AvgMillis   float64 `json:"request_avg_ms"`
	ScanP50Ms   float64 `json:"stage_scan_p50_ms"`
	ParseP50Ms  float64 `json:"stage_parse_p50_ms"`
	ClassP50Ms  float64 `json:"stage_classify_p50_ms"`
	Shed        int64   `json:"shed"`
	Panics      int64   `json:"panics"`
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// TestWriteServeBenchJSON snapshots serve latency into the file named
// by BENCH_SERVE_JSON (make bench writes BENCH_serve.json); without the
// env var it is a no-op. The quantiles come from the server's own obs
// histograms — the same numbers /metrics exports — so the benchmark
// doubles as an end-to-end check of the observability pipeline.
func TestWriteServeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_JSON")
	if out == "" {
		t.Skip("set BENCH_SERVE_JSON=<file> to record serve benchmarks (make bench)")
	}
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const total, concurrency = 160, 4
	driveScans(t, ts.URL, sources, total, concurrency)

	if n := sv.hRequest.Count(); n != total {
		t.Fatalf("request histogram saw %d observations, want %d", n, total)
	}
	file := serveBenchFile{
		CPUs:        runtime.NumCPU(),
		Requests:    total,
		Concurrency: concurrency,
		P50Millis:   millis(sv.hRequest.Quantile(0.50)),
		P95Millis:   millis(sv.hRequest.Quantile(0.95)),
		P99Millis:   millis(sv.hRequest.Quantile(0.99)),
		AvgMillis:   millis(sv.hRequest.Sum() / time.Duration(total)),
		ScanP50Ms:   millis(sv.hScan.Quantile(0.50)),
		ParseP50Ms:  millis(sv.hParse.Quantile(0.50)),
		ClassP50Ms:  millis(sv.hClassify.Quantile(0.50)),
		Shed:        sv.mShed.Value(),
		Panics:      sv.mPanics.Value(),
	}
	if file.Shed != 0 || file.Panics != 0 {
		t.Errorf("healthy bench run shed %d / panicked %d", file.Shed, file.Panics)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p50=%.2fms p95=%.2fms p99=%.2fms", out, file.P50Millis, file.P95Millis, file.P99Millis)
}

// BenchmarkServeScan measures one end-to-end scan request (HTTP round
// trip included) against mined knowledge.
func BenchmarkServeScan(b *testing.B) {
	sv, sources := newTestServer(b)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(ScanRequest{Source: sources[0], All: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
