package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"namer/internal/session"
)

// driveScans fires total scan requests at the server with the given
// client concurrency, round-robining over the corpus sources, and fails
// the test on any non-200.
func driveScans(t *testing.T, url string, sources []string, total, concurrency int) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	per := total / concurrency
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body, _ := json.Marshal(ScanRequest{Source: sources[(w*per+i)%len(sources)], All: true})
				resp, err := http.Post(url+"/v1/scan", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// serveBenchFile is the BENCH_serve.json schema: end-to-end scan
// latency quantiles read back from the daemon's own /metrics
// histograms, tracked commit over commit.
type serveBenchFile struct {
	CPUs        int     `json:"cpus"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	P50Millis   float64 `json:"request_p50_ms"`
	P95Millis   float64 `json:"request_p95_ms"`
	P99Millis   float64 `json:"request_p99_ms"`
	AvgMillis   float64 `json:"request_avg_ms"`
	ScanP50Ms   float64 `json:"stage_scan_p50_ms"`
	ParseP50Ms  float64 `json:"stage_parse_p50_ms"`
	ClassP50Ms  float64 `json:"stage_classify_p50_ms"`
	Shed        int64   `json:"shed"`
	Panics      int64   `json:"panics"`
	// Cache re-scan economics, measured on a cache-enabled server (the
	// request_* quantiles above run cache-disabled so they stay
	// comparable across commits): analysis latency of a full N-file
	// scan where every file misses vs the same scan with one changed
	// file, and their ratio.
	RescanFiles     int     `json:"rescan_files"`
	ColdScanP50Ms   float64 `json:"cold_scan_p50_ms"`
	WarmRescanP50Ms float64 `json:"warm_rescan_p50_ms"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	// Session re-scan economics: analysis latency of one-line edits in
	// an open editor session (incremental overlay splice) vs a cold
	// /v1/scan of the same file on a cache-disabled server.
	SessionRounds      int     `json:"session_rounds"`
	SessionColdP50Ms   float64 `json:"session_cold_scan_p50_ms"`
	SessionWarmP50Ms   float64 `json:"session_warm_rescan_p50_ms"`
	SessionWarmP99Ms   float64 `json:"session_warm_rescan_p99_ms"`
	SessionWarmSpeedup float64 `json:"session_warm_speedup"`
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// TestWriteServeBenchJSON snapshots serve latency into the file named
// by BENCH_SERVE_JSON (make bench writes BENCH_serve.json); without the
// env var it is a no-op. The quantiles come from the server's own obs
// histograms — the same numbers /metrics exports — so the benchmark
// doubles as an end-to-end check of the observability pipeline.
func TestWriteServeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_JSON")
	if out == "" {
		t.Skip("set BENCH_SERVE_JSON=<file> to record serve benchmarks (make bench)")
	}
	// The request-latency block runs with the cache disabled: driveScans
	// round-robins the same sources, so a cache would turn most requests
	// into warm hits and the quantiles would stop measuring the scan
	// pipeline this file has always tracked.
	sys, sources := newTestSystem(t)
	sv := New(sys, Config{Knowledge: KnowledgeInfo{Summary: "bench knowledge"}, CacheEntries: -1})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const total, concurrency = 160, 4
	driveScans(t, ts.URL, sources, total, concurrency)

	if n := sv.hRequest.Count(); n != total {
		t.Fatalf("request histogram saw %d observations, want %d", n, total)
	}
	file := serveBenchFile{
		CPUs:        runtime.NumCPU(),
		Requests:    total,
		Concurrency: concurrency,
		P50Millis:   millis(sv.hRequest.Quantile(0.50)),
		P95Millis:   millis(sv.hRequest.Quantile(0.95)),
		P99Millis:   millis(sv.hRequest.Quantile(0.99)),
		AvgMillis:   millis(sv.hRequest.Sum() / time.Duration(total)),
		ScanP50Ms:   millis(sv.hScan.Quantile(0.50)),
		ParseP50Ms:  millis(sv.hParse.Quantile(0.50)),
		ClassP50Ms:  millis(sv.hClassify.Quantile(0.50)),
		Shed:        sv.mShed.Value(),
		Panics:      sv.mPanics.Value(),
	}
	if file.Shed != 0 || file.Panics != 0 {
		t.Errorf("healthy bench run shed %d / panicked %d", file.Shed, file.Panics)
	}

	file.RescanFiles, file.ColdScanP50Ms, file.WarmRescanP50Ms = measureRescan(t)
	if file.WarmRescanP50Ms > 0 {
		file.WarmSpeedup = file.ColdScanP50Ms / file.WarmRescanP50Ms
	}
	if file.WarmSpeedup < 5 {
		t.Errorf("warm 1-file-change re-scan is %.1fx faster than cold (cold %.3fms, warm %.3fms), want >= 5x",
			file.WarmSpeedup, file.ColdScanP50Ms, file.WarmRescanP50Ms)
	}

	file.SessionRounds, file.SessionColdP50Ms, file.SessionWarmP50Ms, file.SessionWarmP99Ms = measureSessionRescan(t)
	if file.SessionWarmP50Ms > 0 {
		file.SessionWarmSpeedup = file.SessionColdP50Ms / file.SessionWarmP50Ms
	}
	if file.SessionWarmSpeedup < 5 {
		t.Errorf("warm session re-scan is %.1fx faster than a cold scan of the same file (cold %.3fms, warm p50 %.3fms), want >= 5x",
			file.SessionWarmSpeedup, file.SessionColdP50Ms, file.SessionWarmP50Ms)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p50=%.2fms p95=%.2fms p99=%.2fms cold=%.3fms warm=%.3fms (%.1fx)",
		out, file.P50Millis, file.P95Millis, file.P99Millis,
		file.ColdScanP50Ms, file.WarmRescanP50Ms, file.WarmSpeedup)
}

// measureRescan measures the cache's re-scan economics on a fresh
// cache-enabled server: the analysis latency (ScanMillis, HTTP excluded)
// of an N-file scan where every file is new vs the same scan with
// exactly one changed file, as medians over repeated rounds.
func measureRescan(t *testing.T) (files int, coldP50, warmP50 float64) {
	t.Helper()
	sys, sources := newTestSystem(t)
	sv := New(sys, Config{Knowledge: KnowledgeInfo{Summary: "bench knowledge"}})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const nFiles, rounds = 12, 30
	if len(sources) < nFiles {
		t.Fatalf("corpus has %d sources, need %d", len(sources), nFiles)
	}
	scan := func(req ScanRequest) ScanResponse {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("bench scan: status %d, err %v (%s)", resp.StatusCode, err, data)
		}
		var out ScanResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	request := func(round int, changed int) ScanRequest {
		// A trailing comment changes the content hash without changing
		// the statements, the cheapest possible "this file was touched".
		req := ScanRequest{All: true}
		for i := 0; i < nFiles; i++ {
			src := sources[i]
			if changed < 0 || i == changed {
				src += fmt.Sprintf("\n# bench round %d.%d\n", round, i)
			}
			req.Files = append(req.Files, ScanFile{Path: fmt.Sprintf("bench%d.py", i), Source: src})
		}
		return req
	}

	// Cold: every round rewrites all files, so every file misses.
	var cold []float64
	for r := 0; r < rounds; r++ {
		out := scan(request(r, -1))
		if out.CacheHits != 0 || out.CacheMisses != nFiles {
			t.Fatalf("cold round %d: hits/misses = %d/%d, want 0/%d", r, out.CacheHits, out.CacheMisses, nFiles)
		}
		cold = append(cold, out.ScanMillis)
	}

	// Warm: prime the fixed file set once, then change one file per
	// round (request(-1, -1) is deterministic, so repeats of it hit).
	scan(request(-1, -1))
	var warm []float64
	for r := 0; r < rounds; r++ {
		req := request(-1, -1)
		req.Files[r%nFiles].Source = sources[r%nFiles] + fmt.Sprintf("\n# warm round %d\n", r)
		out := scan(req)
		if out.CacheHits != nFiles-1 || out.CacheMisses != 1 {
			t.Fatalf("warm round %d: hits/misses = %d/%d, want %d/1", r, out.CacheHits, out.CacheMisses, nFiles-1)
		}
		warm = append(warm, out.ScanMillis)
	}
	return nFiles, median(cold), median(warm)
}

// measureSessionRescan measures the editor-session re-scan economics:
// a session holds the whole corpus concatenated into one file, each
// round replaces one trailing comment line via an LSP-style range edit
// (the incremental overlay splice), and the analysis latency
// (ScanMillis, HTTP excluded) is compared against cold /v1/scan of the
// same file on the same cache-disabled server.
func measureSessionRescan(t *testing.T) (rounds int, coldP50, warmP50, warmP99 float64) {
	t.Helper()
	sys, sources := newTestSystem(t)
	sv := New(sys, Config{Knowledge: KnowledgeInfo{Summary: "bench knowledge"}, CacheEntries: -1})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// One sizeable file: a dozen corpus sources back to back, so the
	// incremental splice has plenty of untouched statements to reuse
	// while the per-edit latency stays editor-interactive.
	var sb bytes.Buffer
	for _, src := range sources[:min(12, len(sources))] {
		sb.WriteString(src)
	}
	src := sb.String()
	lines := bytes.Count([]byte(src), []byte("\n"))

	const n = 60
	var cold []float64
	for r := 0; r < n; r++ {
		body, _ := json.Marshal(ScanRequest{All: true, Files: []ScanFile{{
			Path: "bench.py", Source: src + fmt.Sprintf("# cold %d\n", r)}}})
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var out ScanResponse
		if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &out) != nil {
			t.Fatalf("cold session bench scan: %d %s", resp.StatusCode, data)
		}
		cold = append(cold, out.ScanMillis)
	}

	postJSON := func(path string, body any) (int, []byte) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out
	}
	code, data := postJSON("/v1/session", SessionRequest{Op: "open"})
	var opened SessionResponse
	if code != http.StatusOK || json.Unmarshal(data, &opened) != nil {
		t.Fatalf("bench session open: %d %s", code, data)
	}
	// Load the file plus a trailing comment line the warm rounds will
	// keep replacing, so the overlay size stays fixed.
	code, data = postJSON("/v1/session/"+opened.SessionID+"/change", SessionChangeRequest{
		Path: "bench.py", Version: 1, All: true,
		Edits: []session.Edit{{Text: src + "# warm\n"}},
	})
	if code != http.StatusOK {
		t.Fatalf("bench session load: %d %s", code, data)
	}
	var warm []float64
	for r := 0; r < n; r++ {
		code, data = postJSON("/v1/session/"+opened.SessionID+"/change", SessionChangeRequest{
			Path: "bench.py", Version: r + 2, All: true,
			Edits: []session.Edit{{
				Range: &session.Range{
					Start: session.Pos{Line: lines, Character: 0},
					End:   session.Pos{Line: lines + 1, Character: 0},
				},
				Text: fmt.Sprintf("# warm %d\n", r),
			}},
		})
		var out SessionChangeResponse
		if code != http.StatusOK || json.Unmarshal(data, &out) != nil {
			t.Fatalf("warm session round %d: %d %s", r, code, data)
		}
		if out.Scan != "incremental" {
			t.Fatalf("warm session round %d: scan=%q, want incremental (%s)", r, out.Scan, data)
		}
		warm = append(warm, out.ScanMillis)
	}
	return n, median(cold), median(warm), quantile(warm, 0.99)
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// BenchmarkServeScan measures one end-to-end scan request (HTTP round
// trip included) against mined knowledge.
func BenchmarkServeScan(b *testing.B) {
	sv, sources := newTestServer(b)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(ScanRequest{Source: sources[0], All: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
