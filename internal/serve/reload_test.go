package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
)

// reloadLoader is a scripted Config.Loader: each call pops the next
// outcome (a system+info pair or an error).
type reloadLoader struct {
	mu    sync.Mutex
	calls int
	next  func(call int) (*core.System, KnowledgeInfo, error)
}

func (l *reloadLoader) load() (*core.System, KnowledgeInfo, error) {
	l.mu.Lock()
	call := l.calls
	l.calls++
	l.mu.Unlock()
	return l.next(call)
}

// newReloadServer builds a server whose Loader clones the test system's
// knowledge into a fresh system each call, mimicking a daemon re-reading
// its knowledge file.
func newReloadServer(t *testing.T) (*Server, []string, *reloadLoader) {
	t.Helper()
	sys, sources := newTestSystem(t)
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	loader := &reloadLoader{next: func(call int) (*core.System, KnowledgeInfo, error) {
		fresh := core.NewSystem(core.DefaultConfig(ast.Python))
		if err := fresh.ImportKnowledge(k); err != nil {
			return nil, KnowledgeInfo{}, err
		}
		return fresh, KnowledgeInfo{
			Summary:       fmt.Sprintf("reloaded knowledge %d", call),
			Format:        "binary",
			FormatVersion: 2,
			ContentHash:   fmt.Sprintf("%064d", call),
			LoadedAt:      time.Now(),
		}, nil
	}}
	sv := New(sys, Config{
		Knowledge: KnowledgeInfo{
			Summary: "initial knowledge", Format: "binary", FormatVersion: 2,
			ContentHash: strings.Repeat("a", 64), LoadedAt: time.Now(),
		},
		Loader: loader.load,
	})
	return sv, sources, loader
}

// canonicalScan re-renders a scan response with the wall-clock timing
// zeroed, so byte-identity checks compare results, not latency.
func canonicalScan(t *testing.T, data []byte) string {
	t.Helper()
	var resp ScanResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decoding scan response %s: %v", data, err)
	}
	resp.ScanMillis = 0
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func metricValue(t *testing.T, sv *Server, series string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	sv.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimSpace(strings.TrimPrefix(line, series))
		}
	}
	return ""
}

// TestReloadSwapsBundle: a reload rotates the bundle and the scan cache,
// scan output is byte-identical across the swap (same artifact), and the
// identity metrics follow the new artifact.
func TestReloadSwapsBundle(t *testing.T) {
	sv, sources, _ := newReloadServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Source: sources[0], All: true})
	_, before := postScan(t, ts.URL, string(body))

	oldCache := sv.Cache()
	oldInfo := sv.Knowledge()
	if oldInfo.Summary != "initial knowledge" {
		t.Fatalf("initial info: %+v", oldInfo)
	}

	resp, err := http.Post(ts.URL+"/debug/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, data)
	}
	var rr struct {
		Status    string        `json:"status"`
		Knowledge KnowledgeInfo `json:"knowledge"`
	}
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ok" || rr.Knowledge.Summary != "reloaded knowledge 0" {
		t.Fatalf("reload response: %s", data)
	}

	if sv.Cache() == oldCache {
		t.Fatal("scan cache did not rotate with the bundle")
	}
	if sv.Knowledge().Summary != "reloaded knowledge 0" {
		t.Fatalf("info after reload: %+v", sv.Knowledge())
	}

	// Identical knowledge must produce byte-identical scan output across
	// the swap (modulo wall-clock timing).
	_, after := postScan(t, ts.URL, string(body))
	if canonicalScan(t, before) != canonicalScan(t, after) {
		t.Fatalf("scan output changed across hot-swap to identical knowledge:\n%s\nvs\n%s", before, after)
	}

	if got := metricValue(t, sv, "namer_knowledge_reloads_total"); got != "1" {
		t.Fatalf("reloads_total = %q", got)
	}
	if got := metricValue(t, sv, "namer_knowledge_reload_last_success"); got != "1" {
		t.Fatalf("reload_last_success = %q", got)
	}
	oldSeries := knowledgeInfoSeries(oldInfo)
	newSeries := knowledgeInfoSeries(sv.Knowledge())
	if got := metricValue(t, sv, oldSeries); got != "0" {
		t.Fatalf("%s = %q, want 0 after swap", oldSeries, got)
	}
	if got := metricValue(t, sv, newSeries); got != "1" {
		t.Fatalf("%s = %q, want 1", newSeries, got)
	}

	// /healthz reports the new artifact's identity.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hdata, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var health map[string]any
	if err := json.Unmarshal(hdata, &health); err != nil {
		t.Fatal(err)
	}
	if health["knowledge"] != "reloaded knowledge 0" ||
		health["knowledge_format"] != "binary" ||
		health["knowledge_hash"] != fmt.Sprintf("%064d", 0) {
		t.Fatalf("healthz after reload: %s", hdata)
	}
	if _, ok := health["knowledge_loaded_at"]; !ok {
		t.Fatalf("healthz missing knowledge_loaded_at: %s", hdata)
	}
}

// TestReloadFailureKeepsServing: a Loader error must leave the old
// bundle serving, count the failure, and drop the last-success gauge.
func TestReloadFailureKeepsServing(t *testing.T) {
	sv, sources, loader := newReloadServer(t)
	loader.next = func(int) (*core.System, KnowledgeInfo, error) {
		return nil, KnowledgeInfo{}, errors.New("artifact corrupt")
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	oldCache := sv.Cache()
	resp, err := http.Post(ts.URL+"/debug/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(data), "artifact corrupt") {
		t.Fatalf("failed reload: %d %s", resp.StatusCode, data)
	}
	if sv.Cache() != oldCache || sv.Knowledge().Summary != "initial knowledge" {
		t.Fatal("failed reload disturbed the serving bundle")
	}
	if got := metricValue(t, sv, "namer_knowledge_reload_failures_total"); got != "1" {
		t.Fatalf("reload_failures_total = %q", got)
	}
	if got := metricValue(t, sv, "namer_knowledge_reload_last_success"); got != "0" {
		t.Fatalf("reload_last_success = %q", got)
	}

	// The daemon still answers scans.
	body, _ := json.Marshal(ScanRequest{Source: sources[0]})
	sresp, _ := postScan(t, ts.URL, string(body))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("scan after failed reload: %d", sresp.StatusCode)
	}

	// A subsequent successful reload restores the gauge.
	loader.next = func(call int) (*core.System, KnowledgeInfo, error) {
		sys, _ := newTestSystem(t)
		return sys, KnowledgeInfo{Summary: "recovered"}, nil
	}
	if _, err := sv.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, sv, "namer_knowledge_reload_last_success"); got != "1" {
		t.Fatalf("reload_last_success after recovery = %q", got)
	}
}

// TestReloadMethodAndConfigGates: /debug/reload requires POST and a
// configured Loader.
func TestReloadMethodAndConfigGates(t *testing.T) {
	sv, _, _ := newReloadServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/reload: %d", resp.StatusCode)
	}

	noLoader, _ := newTestServer(t)
	ts2 := httptest.NewServer(noLoader.Handler())
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/debug/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without loader: %d", resp.StatusCode)
	}
	if _, err := noLoader.Reload(); err == nil {
		t.Fatal("Reload without loader succeeded")
	}
}

// TestInFlightRequestFinishesOnOldBundle: a request admitted before a
// reload completes against the bundle it captured, even though the swap
// happens mid-analysis.
func TestInFlightRequestFinishesOnOldBundle(t *testing.T) {
	sv, _, _ := newReloadServer(t)

	started := make(chan struct{})
	unblock := make(chan struct{})
	var mu sync.Mutex
	var seen []*bundle
	real := sv.analyze
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		mu.Lock()
		seen = append(seen, b)
		mu.Unlock()
		close(started)
		<-unblock
		return real(ctx, b, lang, files, all)
	}

	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	oldBundle := sv.cur.Load()
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json",
			strings.NewReader(`{"source":"upload_cnt = upload_count + 1\n"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight scan: %d", resp.StatusCode)
			}
		}
		errCh <- err
	}()

	<-started
	if _, err := sv.Reload(); err != nil {
		t.Fatal(err)
	}
	if sv.cur.Load() == oldBundle {
		t.Fatal("reload did not swap the bundle")
	}
	close(unblock)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != oldBundle {
		t.Fatal("in-flight request did not run against the bundle captured at admission")
	}
}

// TestConcurrentReloadAndScan hammers scans while reloading in a loop;
// run with -race this pins the atomic swap discipline (no torn bundle,
// no cache crossing knowledge generations).
func TestConcurrentReloadAndScan(t *testing.T) {
	sv, sources, _ := newReloadServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Source: sources[0], All: true})
	var want string
	{
		_, data := postScan(t, ts.URL, string(body))
		var resp ScanResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		resp.CacheHits, resp.CacheMisses, resp.ScanMillis = 0, 0, 0
		b, _ := json.Marshal(resp)
		want = string(b)
	}

	stop := make(chan struct{})
	reloaderDone := make(chan struct{})
	go func() {
		defer close(reloaderDone)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := sv.Reload(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Post(ts.URL+"/v1/scan", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scan during reload churn: %d", resp.StatusCode)
					return
				}
				var got ScanResponse
				if err := json.Unmarshal(data, &got); err != nil {
					t.Error(err)
					return
				}
				got.CacheHits, got.CacheMisses, got.ScanMillis = 0, 0, 0
				b, _ := json.Marshal(got)
				if string(b) != want {
					t.Errorf("scan output diverged during reload churn")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-reloaderDone
}
