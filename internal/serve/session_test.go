package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"namer/internal/session"
)

func postJSONBody(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func openSession(t *testing.T, url string) string {
	t.Helper()
	code, data := postJSONBody(t, url+"/v1/session", SessionRequest{Op: "open"})
	if code != http.StatusOK {
		t.Fatalf("open session: %d %s", code, data)
	}
	var resp SessionResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SessionID == "" {
		t.Fatalf("open session: no id in %s", data)
	}
	return resp.SessionID
}

func postChange(t *testing.T, url, id string, req SessionChangeRequest) (int, *SessionChangeResponse, []byte) {
	t.Helper()
	code, data := postJSONBody(t, url+"/v1/session/"+id+"/change", req)
	if code != http.StatusOK {
		return code, nil, data
	}
	var resp SessionChangeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad change response %s: %v", data, err)
	}
	return code, &resp, data
}

func fullEdit(text string) []session.Edit { return []session.Edit{{Text: text}} }

func rangeEdit(startLine, startChar, endLine, endChar int, text string) []session.Edit {
	return []session.Edit{{
		Range: &session.Range{
			Start: session.Pos{Line: startLine, Character: startChar},
			End:   session.Pos{Line: endLine, Character: endChar},
		},
		Text: text,
	}}
}

func hashOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// sessionFixtureSource finds a corpus source that produces at least one
// diagnostic with an applicable fix edit, so the lifecycle test can
// apply the server's own proposed fix and watch the violation resolve.
func sessionFixtureSource(t *testing.T, url string, sources []string) (string, *SessionChangeResponse, string) {
	t.Helper()
	for _, src := range sources {
		id := openSession(t, url)
		code, resp, data := postChange(t, url, id, SessionChangeRequest{
			Path: "fixture.py", Edits: fullEdit(src), All: true,
		})
		if code != http.StatusOK {
			t.Fatalf("fixture change: %d %s", code, data)
		}
		for _, d := range resp.Diagnostics {
			if d.Edit != nil {
				return src, resp, id
			}
		}
		postJSONBody(t, url+"/v1/session", SessionRequest{Op: "close", SessionID: id})
	}
	t.Fatal("no corpus source produced a diagnostic with a fix edit")
	return "", nil, ""
}

// TestSessionLifecycle drives one full editor session: open, load a
// file, make an incremental edit, apply the server's proposed fix and
// watch the violation resolve, close, and get a 404 afterwards.
func TestSessionLifecycle(t *testing.T) {
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	src, first, id := sessionFixtureSource(t, ts.URL, sources)
	if first.Scan != "full" {
		t.Fatalf("first scan of a file = %q, want full", first.Scan)
	}
	if first.Statements == 0 || first.ContentHash != hashOf(src) {
		t.Fatalf("first change: %d statements, hash %s", first.Statements, first.ContentHash)
	}
	// The first scan has no baseline: everything is introduced.
	if len(first.Introduced) != len(first.Diagnostics) {
		t.Fatalf("first scan introduced %d of %d diagnostics", len(first.Introduced), len(first.Diagnostics))
	}

	// An appended comment is an incremental no-op: statements reused,
	// nothing introduced or resolved, and diagnostics unchanged.
	commented := src + "# trailing comment\n"
	lastLine := strings.Count(src, "\n")
	code, second, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "fixture.py", Version: 2, All: true,
		Edits: rangeEdit(lastLine, 0, lastLine, 0, "# trailing comment\n"),
	})
	if code != http.StatusOK {
		t.Fatalf("comment edit: %d %s", code, data)
	}
	if second.Scan != "incremental" {
		t.Fatalf("comment edit scan = %q, want incremental", second.Scan)
	}
	if second.ContentHash != hashOf(commented) {
		t.Fatalf("overlay hash diverged after comment edit")
	}
	if second.ReusedStatements == 0 || second.Statements != first.Statements {
		t.Fatalf("comment edit reused %d, statements %d -> %d",
			second.ReusedStatements, first.Statements, second.Statements)
	}
	if len(second.Introduced) != 0 || second.Resolved != 0 {
		t.Fatalf("comment edit introduced %d / resolved %d", len(second.Introduced), second.Resolved)
	}
	if len(second.Diagnostics) != len(first.Diagnostics) {
		t.Fatalf("comment edit changed diagnostics: %d -> %d", len(first.Diagnostics), len(second.Diagnostics))
	}

	// Apply the server's own proposed fix for one diagnostic; the
	// violation it fixes must show up as resolved.
	var fix *SessionDiagnostic
	for i := range second.Diagnostics {
		if second.Diagnostics[i].Edit != nil {
			fix = &second.Diagnostics[i]
			break
		}
	}
	if fix == nil {
		t.Fatal("fixture lost its fix edit after the comment edit")
	}
	e := fix.Edit
	code, third, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "fixture.py", Version: 3, All: true,
		Edits: rangeEdit(e.Line, e.StartCharacter, e.Line, e.EndCharacter, e.NewText),
	})
	if code != http.StatusOK {
		t.Fatalf("fix edit: %d %s", code, data)
	}
	if third.Scan == "failed" {
		t.Fatalf("applying the proposed fix broke the parse: %s", data)
	}
	if third.Resolved == 0 {
		t.Fatalf("proposed fix resolved nothing: %s", data)
	}

	// Close, then prove the id is gone: change → 404, re-close → 404.
	code, cdata := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "close", SessionID: id})
	if code != http.StatusOK {
		t.Fatalf("close: %d %s", code, cdata)
	}
	code, _, data = postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "fixture.py", Version: 4, Edits: fullEdit("x = 1\n"),
	})
	if code != http.StatusNotFound {
		t.Fatalf("change after close: %d %s", code, data)
	}
	if code, _ := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "close", SessionID: id}); code != http.StatusNotFound {
		t.Fatalf("double close: %d", code)
	}
}

func TestSessionBadRequests(t *testing.T) {
	sv, _ := newStubServer(t, Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	if code, data := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "suspend"}); code != http.StatusBadRequest {
		t.Fatalf("bad op: %d %s", code, data)
	}
	if code, _ := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "close"}); code != http.StatusBadRequest {
		t.Fatalf("close without id: %d", code)
	}
	if code, _, _ := postChange(t, ts.URL, "s-missing", SessionChangeRequest{
		Path: "f.py", Edits: fullEdit("x = 1\n")}); code != http.StatusNotFound {
		t.Fatal("change on unknown session accepted")
	}
	resp, err := http.Get(ts.URL + "/v1/session")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/session: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/session/s-x/unknown", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad session subpath: %d", resp.StatusCode)
	}

	id := openSession(t, ts.URL)
	cases := []struct {
		name string
		req  SessionChangeRequest
		want int
	}{
		{"no path", SessionChangeRequest{Edits: fullEdit("x = 1\n")}, http.StatusBadRequest},
		{"no edits", SessionChangeRequest{Path: "f.py"}, http.StatusBadRequest},
		{"range edit before open", SessionChangeRequest{Path: "f.py",
			Edits: rangeEdit(0, 0, 0, 1, "y")}, http.StatusBadRequest},
		{"bad lang", SessionChangeRequest{Lang: "cobol", Path: "f.py",
			Edits: fullEdit("x = 1\n")}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, data := postChange(t, ts.URL, id, tc.req); code != tc.want {
			t.Errorf("%s: %d (%s), want %d", tc.name, code, data, tc.want)
		}
	}
	// A bad range after opening the file is a 400, and the overlay is
	// left untouched (the next good edit still works).
	postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Edits: fullEdit("a = 1\n")})
	code, _, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 2, Edits: rangeEdit(7, 0, 7, 1, "y")})
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-range edit: %d %s", code, data)
	}
	code, resp2, _ := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 3, Edits: rangeEdit(0, 0, 0, 1, "b")})
	if code != http.StatusOK || resp2.ContentHash != hashOf("b = 1\n") {
		t.Fatalf("overlay corrupted by rejected edit: %d %+v", code, resp2)
	}
}

func TestSessionCapacity(t *testing.T) {
	sv, _ := newStubServer(t, Config{MaxSessions: 2})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	a := openSession(t, ts.URL)
	openSession(t, ts.URL)
	code, data := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "open"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity open: %d %s", code, data)
	}
	postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "close", SessionID: a})
	if code, _ := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "open"}); code != http.StatusOK {
		t.Fatalf("open after close: %d", code)
	}
}

// TestSessionSurvivesReload: a hot reload mid-session must leave the
// overlay contents intact while the scan state is rebuilt under the new
// knowledge — and with a byte-identical artifact, the diagnostics come
// out the same.
func TestSessionSurvivesReload(t *testing.T) {
	sv, sources, _ := newReloadServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	src := sources[0]
	id := openSession(t, ts.URL)
	code, first, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 1, Edits: fullEdit(src), All: true,
	})
	if code != http.StatusOK {
		t.Fatalf("first change: %d %s", code, data)
	}

	if _, err := sv.Reload(); err != nil {
		t.Fatal(err)
	}

	// The next change crosses the bundle swap: the overlay content must
	// have survived (hash covers old content + this edit), the scan must
	// succeed, and — same knowledge — the diagnostics must match the
	// pre-reload set, with the delta reflecting only this edit.
	commented := src + "# after reload\n"
	lastLine := strings.Count(src, "\n")
	code, second, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 2, All: true,
		Edits: rangeEdit(lastLine, 0, lastLine, 0, "# after reload\n"),
	})
	if code != http.StatusOK {
		t.Fatalf("change across reload: %d %s", code, data)
	}
	if second.ContentHash != hashOf(commented) {
		t.Fatal("overlay content did not survive the reload")
	}
	if second.Scan == "failed" {
		t.Fatalf("scan across reload failed: %s", data)
	}
	if len(second.Introduced) != 0 || second.Resolved != 0 {
		t.Fatalf("knowledge swap leaked into the edit delta: introduced %d / resolved %d",
			len(second.Introduced), second.Resolved)
	}
	if len(second.Diagnostics) != len(first.Diagnostics) {
		t.Fatalf("identical knowledge, different diagnostics across reload: %d -> %d",
			len(first.Diagnostics), len(second.Diagnostics))
	}
	// Back on one bundle: the next edit is incremental again.
	code, third, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 3, All: true,
		Edits: rangeEdit(lastLine+1, 0, lastLine+1, 0, "# one more\n"),
	})
	if code != http.StatusOK || third.Scan != "incremental" {
		t.Fatalf("post-reload steady state: %d scan=%q %s", code, third.Scan, data)
	}
}

// TestSessionFailedScanRecovers: mid-keystroke garbage answers 200 with
// scan "failed" and the previous diagnostics; the next parsable edit
// recovers (and the overlay never rewinds).
func TestSessionFailedScanRecovers(t *testing.T) {
	sv, _ := newStubServer(t, Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	id := openSession(t, ts.URL)
	src := "def f(a):\n    return a\n"
	code, _, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 1, Edits: fullEdit(src)})
	if code != http.StatusOK {
		t.Fatalf("open file: %d %s", code, data)
	}
	// Break the def header mid-keystroke (unbalanced paren).
	code, broken, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 2, Edits: rangeEdit(0, 0, 0, 9, "def f(")})
	if code != http.StatusOK {
		t.Fatalf("broken edit: %d %s", code, data)
	}
	if broken.Scan != "failed" || len(broken.Errors) == 0 {
		t.Fatalf("broken content: scan=%q errors=%v", broken.Scan, broken.Errors)
	}
	if broken.ContentHash != hashOf("def f(\n    return a\n") {
		t.Fatal("overlay did not advance on a failed scan")
	}
	// Fix it back; the scan recovers.
	code, fixed, data := postChange(t, ts.URL, id, SessionChangeRequest{
		Path: "f.py", Version: 3, Edits: rangeEdit(0, 0, 0, 6, "def f(a):")})
	if code != http.StatusOK {
		t.Fatalf("fixing edit: %d %s", code, data)
	}
	if fixed.Scan == "failed" {
		t.Fatalf("scan did not recover: %s", data)
	}
	if fixed.ContentHash != hashOf(src) {
		t.Fatalf("recovered overlay diverged: %s", data)
	}
}

// TestSessionConcurrentNoCrossTalk soaks the session subsystem: many
// concurrent sessions (far more than worker goroutines, so idle and
// active sessions mix), each editing its own distinct content, must
// never observe another session's bytes — every response's content hash
// is recomputed client-side. Run under -race this is the acceptance
// soak; zero panics allowed.
func TestSessionConcurrentNoCrossTalk(t *testing.T) {
	const sessions = 1000
	const workers = 32
	sv, _ := newStubServer(t, Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range work {
				if err := runOneSession(ts.URL, n); err != nil {
					errs <- fmt.Errorf("session %d: %w", n, err)
				}
			}
		}()
	}
	for n := 0; n < sessions; n++ {
		work <- n
	}
	close(work)
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		if failures <= 5 {
			t.Error(err)
		}
	}
	if failures > 5 {
		t.Errorf("... and %d more failures", failures-5)
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_panics_total"); got != 0 {
		t.Fatalf("panics during soak: %d", got)
	}
	if got := counterValue(t, sv.Metrics(), "namer_sessions"); got != 0 {
		t.Fatalf("%d sessions leaked after soak", got)
	}
	if got := counterValue(t, sv.Metrics(), "namer_session_changes_total"); got < sessions*3 {
		t.Fatalf("only %d changes recorded for %d sessions", got, sessions)
	}
}

// runOneSession opens a session, makes three content-hash-verified
// changes (full open, incremental append, identifier rename), and
// closes. Content embeds the session number, so any cross-session
// bleed flips the hash.
func runOneSession(url string, n int) error {
	post := func(path string, body any) (int, []byte, error) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(url+path, "application/json", strings.NewReader(string(data)))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}
	code, data, err := post("/v1/session", SessionRequest{Op: "open"})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("open: %d %s (%v)", code, data, err)
	}
	var opened SessionResponse
	if err := json.Unmarshal(data, &opened); err != nil {
		return err
	}
	id := opened.SessionID

	content := fmt.Sprintf("def f%d(a):\n    v%d = a + %d\n    return v%d\n", n, n, n, n)
	change := func(version int, edits []session.Edit, want string) error {
		code, data, err := post("/v1/session/"+id+"/change", SessionChangeRequest{
			Path: "f.py", Version: version, Edits: edits,
		})
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("change v%d: %d %s (%v)", version, code, data, err)
		}
		var resp SessionChangeResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return err
		}
		if resp.ContentHash != hashOf(want) {
			return fmt.Errorf("change v%d: overlay hash mismatch (cross-session bleed?)", version)
		}
		if resp.SessionID != id {
			return fmt.Errorf("change v%d: response for session %s", version, resp.SessionID)
		}
		return nil
	}
	if err := change(1, fullEdit(content), content); err != nil {
		return err
	}
	appended := content + fmt.Sprintf("x%d = f%d(%d)\n", n, n, n)
	lastLine := strings.Count(content, "\n")
	if err := change(2, rangeEdit(lastLine, 0, lastLine, 0,
		fmt.Sprintf("x%d = f%d(%d)\n", n, n, n)), appended); err != nil {
		return err
	}
	renamed := strings.Replace(appended, fmt.Sprintf("v%d = a", n), fmt.Sprintf("w%d = a", n), 1)
	if err := change(3, rangeEdit(1, 4, 1, 5, "w"), renamed); err != nil {
		return err
	}

	code, data, err = post("/v1/session", SessionRequest{Op: "close", SessionID: id})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("close: %d %s (%v)", code, data, err)
	}
	return nil
}
