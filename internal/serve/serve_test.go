package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
)

// newTestServer mines a small Python corpus and wraps it in a Server; the
// returned sources are corpus files usable as scan request bodies.
func newTestServer(t testing.TB) (*Server, []string) {
	t.Helper()
	sys, sources := newTestSystem(t)
	return New(sys, Config{Knowledge: KnowledgeInfo{Summary: "test knowledge"}}), sources
}

// newTestSystem mines the small corpus backing newTestServer, for tests
// that need a Server with a non-default Config.
func newTestSystem(t testing.TB) (*core.System, []string) {
	t.Helper()
	ccfg := corpus.DefaultConfig(ast.Python)
	ccfg.Repos = 20
	ccfg.FilesPerRepo = 4
	ccfg.IssueRate = 0.08
	c := corpus.Generate(ccfg)

	cfg := core.DefaultConfig(ast.Python)
	cfg.Mining.MinPatternCount = 25
	sys := core.NewSystem(cfg)
	sys.MinePairs(c.Commits)
	var files []*core.InputFile
	var sources []string
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
			sources = append(sources, f.Source)
		}
	}
	if errs := sys.ProcessFiles(files); len(errs) != 0 {
		t.Fatalf("process errors: %v", errs)
	}
	sys.MinePatterns()
	if len(sys.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}

	// Round-trip through the artifact so the serve path runs exactly what
	// a daemon would load from disk.
	k, err := sys.ExportKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	fresh := core.NewSystem(core.DefaultConfig(ast.Python))
	if err := fresh.ImportKnowledge(k); err != nil {
		t.Fatal(err)
	}
	return fresh, sources
}

func postScan(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	sv, _ := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var health struct {
		Status   string `json:"status"`
		Lang     string `json:"lang"`
		Patterns int    `json:"patterns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Lang != "Python" || health.Patterns == 0 {
		t.Fatalf("unexpected health: %+v", health)
	}
}

func TestScanEndpoint(t *testing.T) {
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Lang: "python", Source: sources[0], All: true})
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: %d: %s", resp.StatusCode, data)
	}
	var out ScanResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	if out.FilesReceived != 1 || out.FilesScanned != 1 || out.Statements == 0 {
		t.Fatalf("unexpected response: %+v", out)
	}
	// Scanning every corpus file must surface at least one violation
	// somewhere (the corpus injects issues).
	total := 0
	for _, src := range sources {
		b, _ := json.Marshal(ScanRequest{Source: src, All: true})
		_, data := postScan(t, ts.URL, string(b))
		var r ScanResponse
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		total += len(r.Violations)
	}
	if total == 0 {
		t.Fatal("no violations across the whole corpus")
	}
}

func TestScanRejectsBadRequests(t *testing.T) {
	sv, _ := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"source": "x`, http.StatusBadRequest},
		{"empty request", `{}`, http.StatusBadRequest},
		{"unknown lang", `{"lang":"cobol","source":"x = 1\n"}`, http.StatusBadRequest},
		{"lang mismatch", `{"lang":"java","source":"x = 1\n"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postScan(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d want %d (%s)", tc.name, resp.StatusCode, tc.want, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, data)
		}
	}

	// Malformed *source* (unparseable python) is a 200 with a per-file
	// error — the daemon survives and says why.
	resp, data := postScan(t, ts.URL, `{"source":"def f(:\n  ))("}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed source: got %d (%s)", resp.StatusCode, data)
	}
	var out ScanResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Errors) == 0 {
		t.Fatalf("expected a per-file error, got %+v", out)
	}
	// The counts must disagree loudly, not silently: one file came in,
	// none survived parsing.
	if out.FilesReceived != 1 || out.FilesScanned != 0 {
		t.Fatalf("received/scanned = %d/%d, want 1/0", out.FilesReceived, out.FilesScanned)
	}

	// GET is not allowed.
	resp2, err := http.Get(ts.URL + "/v1/scan")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET scan: %d", resp2.StatusCode)
	}
}

func TestScanBodyLimit(t *testing.T) {
	sv, _ := newTestServer(t)
	// Shrink the limit so the test stays fast.
	sv.cfg.MaxBodyBytes = 1024
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	big := fmt.Sprintf(`{"source": %q}`, strings.Repeat("x = 1\n", 4096))
	resp, _ := postScan(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d want 413", resp.StatusCode)
	}
}

// TestConcurrentScans hammers /v1/scan from many goroutines; under
// `go test -race` this proves the serve path shares the system read-only.
func TestConcurrentScans(t *testing.T) {
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := sources[(w*perWorker+i)%len(sources)]
				body, _ := json.Marshal(ScanRequest{Source: src, All: true})
				resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
					return
				}
				var out ScanResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestGracefulShutdownCompletesInflight starts the real server loop,
// fires a scan, and shuts down while it may still be in flight: the
// response must complete with 200 and the server must exit cleanly.
func TestGracefulShutdownCompletesInflight(t *testing.T) {
	sv, sources := newTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(sv.Handler(), 0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Batch all corpus files into one request so the scan takes a
	// nontrivial amount of work.
	var req ScanRequest
	for i, src := range sources {
		req.Files = append(req.Files, ScanFile{Path: fmt.Sprintf("f%d.py", i), Source: src})
	}
	body, _ := json.Marshal(req)

	respCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			respCh <- err
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			respCh <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			respCh <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		respCh <- nil
	}()

	// Give the request a moment to hit the handler, then shut down.
	time.Sleep(10 * time.Millisecond)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-respCh; err != nil {
		t.Fatalf("in-flight request dropped: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}
