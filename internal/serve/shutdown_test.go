package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestReloadOnSignalStop pins the signal-watcher lifecycle: fn fires on
// the signal, and after stop() returns it never fires again — not even
// for a signal that was already buffered in the channel when stop was
// called. SIGUSR1 stands in for SIGHUP so the test cannot collide with
// anything else watching HUP.
func TestReloadOnSignalStop(t *testing.T) {
	var calls atomic.Int64
	fired := make(chan struct{}, 16)
	stop := ReloadOnSignal(func() error {
		calls.Add(1)
		fired <- struct{}{}
		return nil
	}, syscall.SIGUSR1)

	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("fn did not fire on SIGUSR1")
	}

	stop()
	after := calls.Load()
	// The signal is unregistered and the goroutine has exited: further
	// signals are delivered to nobody (default disposition for USR1 is
	// ignored only while no handler exists — signal.Stop removed ours,
	// and Go's runtime keeps the process-level handler, so this is safe).
	for i := 0; i < 3; i++ {
		syscall.Kill(os.Getpid(), syscall.SIGUSR1)
	}
	time.Sleep(100 * time.Millisecond)
	if got := calls.Load(); got != after {
		t.Fatalf("fn fired %d more times after stop", got-after)
	}
	// stop is idempotent and does not deadlock.
	stop()
}

// TestReloadOnSignalStopDuringBurst races stop against a stream of
// signals: whatever lands in the buffered channel before stop must not
// leak an fn call after stop has returned.
func TestReloadOnSignalStopDuringBurst(t *testing.T) {
	for round := 0; round < 20; round++ {
		var calls atomic.Int64
		var stopped atomic.Bool
		stop := ReloadOnSignal(func() error {
			if stopped.Load() {
				t.Error("fn invoked after stop returned")
			}
			calls.Add(1)
			return nil
		}, syscall.SIGUSR2)

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				syscall.Kill(os.Getpid(), syscall.SIGUSR2)
			}
		}()
		stop()
		stopped.Store(true)
		wg.Wait()
		// Drain any last in-flight delivery window before the next round
		// re-registers the signal.
		time.Sleep(time.Millisecond)
	}
}

func (l *reloadLoader) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls
}

// TestCloseRefusesReload pins the reload/shutdown handshake: once Close
// returns, Reload fails with the closing error, the HTTP reload
// endpoint answers 503, new sessions are turned away with 503, and the
// bundle pointer never moves again — while scans keep draining.
func TestCloseRefusesReload(t *testing.T) {
	sv, _, loader := newReloadServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	if _, err := sv.Reload(); err != nil {
		t.Fatalf("reload before close: %v", err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	callsAtClose := loader.count()
	finalBundle := sv.cur.Load()

	if _, err := sv.Reload(); !errors.Is(err, errServerClosing) {
		t.Fatalf("reload after close: %v, want errServerClosing", err)
	}
	resp, err := http.Post(ts.URL+"/debug/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /debug/reload after close: %d", resp.StatusCode)
	}
	code, data := postJSONBody(t, ts.URL+"/v1/session", SessionRequest{Op: "open"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("session open after close: %d %s", code, data)
	}
	if loader.count() != callsAtClose {
		t.Fatal("loader invoked after close")
	}
	if sv.cur.Load() != finalBundle {
		t.Fatal("bundle pointer moved after close")
	}

	// Draining scans still answer: shutdown refuses new work, not work
	// already admitted.
	body, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	sresp, sdata := postScan(t, ts.URL, string(body))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("scan during drain: %d %s", sresp.StatusCode, sdata)
	}
}

// TestCloseReloadRace hammers Reload from several goroutines while
// Close lands in the middle: no reload may complete after Close returns
// (the bundle pointer is final), and every Reload that loses the race
// reports the closing error rather than succeeding or panicking.
func TestCloseReloadRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		sv, _, _ := newReloadServer(t)

		var wg sync.WaitGroup
		var closeCalled atomic.Bool
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := sv.Reload()
					if err == nil {
						continue
					}
					if errors.Is(err, errServerClosing) {
						if !closeCalled.Load() {
							t.Error("errServerClosing before Close was called")
						}
						return
					}
					t.Errorf("reload: %v", err)
					return
				}
			}()
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		closeCalled.Store(true)
		if err := sv.Close(); err != nil {
			t.Fatal(err)
		}
		// After Close returns the bundle pointer is final: a reload that
		// was already inside the mutex has been waited out, and every
		// loser must see errServerClosing rather than swap.
		final := sv.cur.Load()
		wg.Wait()
		if sv.cur.Load() != final {
			t.Fatal("bundle swapped after Close returned")
		}
	}
}
