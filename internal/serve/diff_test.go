package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
)

func postDiff(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/diff", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDiffEndpoint: an unchanged file introduces nothing; a file diffed
// from empty reports the same violations a plain scan of it does.
func TestDiffEndpoint(t *testing.T) {
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Identity diff: nothing introduced, nothing renamed.
	body, _ := json.Marshal(DiffRequest{Files: []DiffFile{
		{Path: "a.py", Before: sources[0], After: sources[0]},
	}, All: true})
	resp, data := postDiff(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identity diff: %d (%s)", resp.StatusCode, data)
	}
	var out DiffResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.FilesReceived != 1 || out.FilesScanned != 1 {
		t.Fatalf("received/scanned = %d/%d, want 1/1", out.FilesReceived, out.FilesScanned)
	}
	if out.ChangedStatements != 0 || len(out.Violations) != 0 || len(out.Renames) != 0 {
		t.Fatalf("identity diff: changed=%d violations=%d renames=%d, want 0/0/0",
			out.ChangedStatements, len(out.Violations), len(out.Renames))
	}
	if out.Statements == 0 {
		t.Fatal("identity diff scanned no statements")
	}

	// Find a source the scanner flags, then diff it from empty: the
	// introduced set must match the scan exactly (same wire form).
	var flagged string
	var scanOut ScanResponse
	for _, src := range sources {
		sb, _ := json.Marshal(ScanRequest{Source: src, Path: "b.py", All: true})
		sresp, sdata := postScan(t, ts.URL, string(sb))
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("scan: %d (%s)", sresp.StatusCode, sdata)
		}
		if err := json.Unmarshal(sdata, &scanOut); err != nil {
			t.Fatal(err)
		}
		if len(scanOut.Violations) > 0 {
			flagged = src
			break
		}
	}
	if flagged == "" {
		t.Fatal("no corpus source is flagged by the scanner")
	}
	body2, _ := json.Marshal(DiffRequest{Files: []DiffFile{{Path: "b.py", Before: "", After: flagged}}, All: true})
	resp2, data2 := postDiff(t, ts.URL, string(body2))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("from-empty diff: %d (%s)", resp2.StatusCode, data2)
	}
	var out2 DiffResponse
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.ChangedStatements != out2.Statements || out2.ChangedStatements == 0 {
		t.Fatalf("from-empty diff: changed=%d statements=%d, want all changed",
			out2.ChangedStatements, out2.Statements)
	}
	if len(out2.Violations) != len(scanOut.Violations) {
		t.Fatalf("from-empty diff introduced %d violations, scan found %d",
			len(out2.Violations), len(scanOut.Violations))
	}
	for i := range out2.Violations {
		if out2.Violations[i] != scanOut.Violations[i] {
			t.Fatalf("diff violation %d diverged from scan: %+v vs %+v",
				i, out2.Violations[i], scanOut.Violations[i])
		}
	}
}

// TestDiffEndpointPatch: the after side can arrive as a unified diff;
// bad patches are a 400, not a garbage scan.
func TestDiffEndpointPatch(t *testing.T) {
	sv, _ := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	before := "total = 1\nvalue = 2\n"
	patch := "@@ -1,2 +1,3 @@\n total = 1\n value = 2\n+extra = 3\n"
	body, _ := json.Marshal(DiffRequest{Files: []DiffFile{{Path: "p.py", Before: before, Patch: patch}}})
	resp, data := postDiff(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch diff: %d (%s)", resp.StatusCode, data)
	}
	var out DiffResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ChangedStatements != 1 {
		t.Fatalf("patch adding one statement: changed=%d, want 1", out.ChangedStatements)
	}

	for name, f := range map[string]DiffFile{
		"bad patch":      {Path: "p.py", Before: before, Patch: "@@ -9,1 +9,1 @@\n-nope\n+np\n"},
		"after and diff": {Path: "p.py", Before: before, After: before, Patch: patch},
		"no path":        {Before: before, After: before},
	} {
		b, _ := json.Marshal(DiffRequest{Files: []DiffFile{f}})
		r, d := postDiff(t, ts.URL, string(b))
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d want 400 (%s)", name, r.StatusCode, d)
		}
	}
}

// TestDiffRejectsBadRequests mirrors the scan endpoint's contract: the
// diff endpoint sits behind the same method/body/lang validation.
func TestDiffRejectsBadRequests(t *testing.T) {
	sv, _ := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"files": [`, http.StatusBadRequest},
		{"empty request", `{}`, http.StatusBadRequest},
		{"no files", `{"files":[]}`, http.StatusBadRequest},
		{"unknown lang", `{"lang":"cobol","files":[{"path":"a.py","before":"","after":"x = 1\n"}]}`, http.StatusBadRequest},
		{"lang mismatch", `{"lang":"java","files":[{"path":"a.py","before":"","after":"x = 1\n"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postDiff(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d want %d (%s)", tc.name, resp.StatusCode, tc.want, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, data)
		}
	}

	// Malformed source on either side is a 200 with per-file errors.
	resp, data := postDiff(t, ts.URL, `{"files":[{"path":"a.py","before":"def f(:\n  ))(","after":"x = 1\n"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed before-side: got %d (%s)", resp.StatusCode, data)
	}
	var out DiffResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Errors) == 0 || out.FilesScanned != 0 {
		t.Fatalf("malformed before-side: errors=%v scanned=%d, want itemized error and 0", out.Errors, out.FilesScanned)
	}

	resp2, err := http.Get(ts.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET diff: %d", resp2.StatusCode)
	}
}

// TestDiffSharesAdmissionControl: scan and diff share one in-flight
// semaphore — a saturating diff sheds the next scan, and vice versa.
func TestDiffSharesAdmissionControl(t *testing.T) {
	sv, _ := newStubServer(t, Config{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	sv.analyzeDiff = func(ctx context.Context, b *bundle, lang ast.Language, files []core.DiffFile, all bool) *DiffResponse {
		entered <- struct{}{}
		<-release
		return &DiffResponse{Lang: lang.String()}
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	diffBody, _ := json.Marshal(DiffRequest{Files: []DiffFile{{Path: "a.py", Before: "", After: "x = 1\n"}}})
	go func() {
		resp, err := http.Post(ts.URL+"/v1/diff", "application/json", bytes.NewReader(diffBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("diff analysis never started")
	}

	scanBody, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	resp, data := postScan(t, ts.URL, string(scanBody))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("scan while diff holds the slot: got %d want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
}

// TestDiffPanicContained: the diff pipeline runs inside the same
// panic-containing goroutine as scans — a poisoned diff is one sanitized
// 500, and the daemon keeps serving.
func TestDiffPanicContained(t *testing.T) {
	sv, logs := newStubServer(t, Config{})
	sv.analyzeDiff = func(ctx context.Context, b *bundle, lang ast.Language, files []core.DiffFile, all bool) *DiffResponse {
		panic("diff analyzer exploded: secret diff state")
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(DiffRequest{Files: []DiffFile{{Path: "a.py", Before: "", After: "x = 1\n"}}})
	resp, data := postDiff(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking diff: got %d want 500 (%s)", resp.StatusCode, data)
	}
	if strings.Contains(string(data), "secret diff state") {
		t.Errorf("panic value leaked to the client: %s", data)
	}
	if !strings.Contains(logs.String(), "secret diff state") {
		t.Errorf("panic value missing from error log:\n%s", logs.String())
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("diff response without X-Request-Id")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after diff panic: %d", hresp.StatusCode)
	}
}

// TestDiffWarmsFromScanCache: a scan primes the per-file cache, and a
// subsequent diff with the same content on the unchanged side hits it.
func TestDiffWarmsFromScanCache(t *testing.T) {
	sv, sources := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	sb, _ := json.Marshal(ScanRequest{Path: "w.py", Source: sources[0]})
	sresp, sdata := postScan(t, ts.URL, string(sb))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("priming scan: %d (%s)", sresp.StatusCode, sdata)
	}
	var scanOut ScanResponse
	if err := json.Unmarshal(sdata, &scanOut); err != nil {
		t.Fatal(err)
	}
	if scanOut.CacheMisses == 0 || scanOut.CacheHits != 0 {
		t.Fatalf("priming scan hits/misses = %d/%d, want 0/>0", scanOut.CacheHits, scanOut.CacheMisses)
	}

	body, _ := json.Marshal(DiffRequest{Files: []DiffFile{
		{Path: "w.py", Before: sources[0], After: sources[0] + "touched_extra = 1\n"},
	}})
	resp, data := postDiff(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: %d (%s)", resp.StatusCode, data)
	}
	var out DiffResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 1 || out.CacheMisses != 1 {
		t.Fatalf("diff after scan: hits/misses = %d/%d, want 1/1 (before side primed)",
			out.CacheHits, out.CacheMisses)
	}
	if st := sv.Cache().Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats after scan+diff: %+v", st)
	}
	if got := counterValue(t, sv.Metrics(), "namer_cache_hits_total"); got < 1 {
		t.Errorf("namer_cache_hits_total = %d, want >= 1", got)
	}
	if got := counterValue(t, sv.Metrics(), "namer_cache_misses_total"); got < 2 {
		t.Errorf("namer_cache_misses_total = %d, want >= 2", got)
	}
}
