package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTracesGatedOff pins that the flight recorder is opt-in: without
// Config.EnableTraces there is no /debug/traces route at all.
func TestTracesGatedOff(t *testing.T) {
	sv, _ := newTestServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces without EnableTraces: status %d, want 404", resp.StatusCode)
	}
}

// TestScanRequestTraced runs a scan against a traces-enabled server and
// checks the recorded span tree: the trace id matches the request's
// X-Request-Id, and the tree covers the whole pipeline (scan with
// process/match stages, per-file children carrying cache attributes and
// their own parse spans, classify).
func TestScanRequestTraced(t *testing.T) {
	sys, sources := newTestSystem(t)
	sv := New(sys, Config{Knowledge: KnowledgeInfo{Summary: "test knowledge"}, EnableTraces: true, TraceRingSize: 4})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"lang":"python","files":[{"path":"a.py","source":%q},{"path":"b.py","source":%q}]}`,
		sources[0], sources[1])
	resp, err := http.Post(ts.URL+"/v1/scan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("scan response has no X-Request-Id")
	}

	if sv.recorder.Len() != 1 {
		t.Fatalf("recorder holds %d traces, want 1", sv.recorder.Len())
	}
	tr := sv.recorder.Get(reqID)
	if tr == nil {
		t.Fatalf("no recorded trace with id %q (the request id)", reqID)
	}

	spans := tr.Spans()
	parents := map[int]string{} // span id -> name, for parent lookups
	count := map[string]int{}
	for _, s := range spans {
		parents[s.ID] = s.Name
		count[s.Name]++
	}
	for _, want := range []string{"scan_request", "parse", "scan", "process", "match", "classify"} {
		if count[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, count)
		}
	}
	// Two request files -> two "file" children under the process stage,
	// each parsed in core (a "parse" child per file: the cache is cold,
	// so both are misses and carry cache_hit="false").
	fileUnderProcess, parseUnderFile := 0, 0
	for _, s := range spans {
		switch {
		case s.Name == "file" && parents[s.Parent] == "process":
			fileUnderProcess++
			hit := ""
			for _, a := range s.Attrs {
				if a.Key == "cache_hit" {
					hit = a.Value
				}
			}
			if hit != "false" {
				t.Errorf("cold file span has cache_hit=%q, want \"false\"", hit)
			}
		case s.Name == "parse" && parents[s.Parent] == "file":
			parseUnderFile++
		}
	}
	if fileUnderProcess != 2 {
		t.Errorf("got %d file spans under process, want 2", fileUnderProcess)
	}
	if parseUnderFile != 2 {
		t.Errorf("got %d parse spans under file, want 2", parseUnderFile)
	}
	// The derived StageTimings view and the span tree must agree: the
	// process/match stages exist in both, so neither can be zero.
	for _, s := range spans {
		if s.Name == "process" || s.Name == "match" {
			if s.Duration <= 0 {
				t.Errorf("span %q has non-positive duration %v", s.Name, s.Duration)
			}
		}
	}

	// The endpoint serves the listing and the per-trace Chrome export.
	r2, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []json.RawMessage
	if err := json.NewDecoder(r2.Body).Decode(&list); err != nil {
		t.Fatalf("listing not valid JSON: %v", err)
	}
	r2.Body.Close()
	if len(list) != 1 {
		t.Fatalf("listing has %d traces, want 1", len(list))
	}
	r3, err := http.Get(ts.URL + "/debug/traces?id=" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.NewDecoder(r3.Body).Decode(&events); err != nil {
		t.Fatalf("Chrome export not valid JSON: %v", err)
	}
	r3.Body.Close()
	if len(events) != len(spans) {
		t.Errorf("Chrome export has %d events for %d spans", len(events), len(spans))
	}
}
