package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/confusion"
	"namer/internal/core"
	"namer/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing logs from
// concurrent handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newStubServer builds a Server over an empty system (no mined
// knowledge, fast to construct) so robustness tests can substitute the
// analysis function without paying for corpus mining.
func newStubServer(t *testing.T, cfg Config) (*Server, *syncBuffer) {
	t.Helper()
	logs := &syncBuffer{}
	cfg.ErrorLog = log.New(logs, "", 0)
	sys := core.NewSystem(core.DefaultConfig(ast.Python))
	sys.Pairs = confusion.NewPairSet()
	return New(sys, cfg), logs
}

// counterValue reads one series back out of the /metrics text, -1 when
// the series is absent.
func counterValue(t *testing.T, reg *obs.Registry, series string) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, series+" %d", &v); n == 1 {
			return v
		}
	}
	return -1
}

// TestScanPanicContained is the regression test for the daemon-killing
// bug: a panic inside the scan goroutine (anything past ParseSource —
// ScanFiles, Explain, Dedup, the classifier) ran outside net/http's
// handler recover, so one bad request crashed the process. Now it must
// cost that request a sanitized 500 and nothing else.
func TestScanPanicContained(t *testing.T) {
	sv, logs := newStubServer(t, Config{})
	real := sv.analyze
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		if strings.HasPrefix(files[0].Path, "panic") {
			panic("analyzer exploded: secret internal state")
		}
		return real(ctx, b, lang, files, all)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Files: []ScanFile{{Path: "panic.py", Source: "x = 1\n"}}})
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: got %d want 500 (%s)", resp.StatusCode, data)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("500 body not a JSON error: %s", data)
	}
	// The client sees a sanitized message; the panic value stays in the
	// server log (with a stack) for the operator.
	if strings.Contains(e.Error, "secret internal state") {
		t.Errorf("panic value leaked to the client: %q", e.Error)
	}
	if !strings.Contains(logs.String(), "secret internal state") ||
		!strings.Contains(logs.String(), "goroutine") {
		t.Errorf("panic value/stack missing from error log:\n%s", logs.String())
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_panics_total"); got != 1 {
		t.Errorf("namer_scan_panics_total = %d, want 1", got)
	}

	// The daemon survives: liveness and healthy scans keep working.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", hresp.StatusCode)
	}
	body2, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	resp2, data2 := postScan(t, ts.URL, string(body2))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthy scan after panic: %d (%s)", resp2.StatusCode, data2)
	}
}

// TestScanClientCancelDropped: a client disconnect surfaces as
// context.Canceled and must be logged and dropped — no 500, no
// bad-request accounting (it is not the server's failure).
func TestScanClientCancelDropped(t *testing.T) {
	sv, logs := newStubServer(t, Config{})
	entered := make(chan struct{}, 1)
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		entered <- struct{}{}
		<-ctx.Done() // hang until the client gives up
		return &ScanResponse{Lang: lang.String()}
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	badBefore := statBadRequest.Value()
	srvErrBefore := statServerError.Value()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/scan", bytes.NewReader(body))
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-entered // the handler is inside the scan
	cancel()  // client walks away
	if err := <-errCh; err == nil {
		t.Fatal("canceled request did not error on the client side")
	}

	// The handler notices asynchronously; poll the canceled counter.
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(t, sv.Metrics(), "namer_scan_canceled_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("canceled scan never counted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := statBadRequest.Value() - badBefore; got != 0 {
		t.Errorf("client cancel incremented namer_bad_requests by %d", got)
	}
	if got := statServerError.Value() - srvErrBefore; got != 0 {
		t.Errorf("client cancel incremented namer_server_errors by %d", got)
	}
	if got := counterValue(t, sv.Metrics(), `namer_http_responses_total{status="500"}`); got > 0 {
		t.Errorf("client cancel produced %d 500 responses", got)
	}
	if !strings.Contains(logs.String(), "canceled by client") {
		t.Errorf("cancel not logged:\n%s", logs.String())
	}
}

// TestScanDeadlineExceeded503: a scan that outlives ScanTimeout is a
// server-side capacity problem and answers 503, not 500.
func TestScanDeadlineExceeded503(t *testing.T) {
	sv, _ := newStubServer(t, Config{ScanTimeout: 30 * time.Millisecond})
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		<-ctx.Done()
		return &ScanResponse{Lang: lang.String()}
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out scan: got %d want 503 (%s)", resp.StatusCode, data)
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_timeouts_total"); got != 1 {
		t.Errorf("namer_scan_timeouts_total = %d, want 1", got)
	}
}

// TestMaxInFlightSheds429: with MaxInFlight scans admitted and held,
// further requests shed immediately with 429 + Retry-After; they never
// queue. Once a slot frees, requests are admitted again — so 429s
// appear only past the limit.
func TestMaxInFlightSheds429(t *testing.T) {
	const limit = 2
	sv, _ := newStubServer(t, Config{MaxInFlight: limit})
	entered := make(chan struct{}, limit)
	release := make(chan struct{})
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		entered <- struct{}{}
		<-release
		return &ScanResponse{Lang: lang.String()}
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})

	// Fill every slot and wait until both scans are provably inside.
	admitted := make(chan int, limit)
	for i := 0; i < limit; i++ {
		go func() {
			resp, _ := postScan(t, ts.URL, string(body))
			admitted <- resp.StatusCode
		}()
	}
	for i := 0; i < limit; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("admitted scans never started")
		}
	}

	// Saturated: every further request is shed, promptly, with the
	// retry hint — and none of them ever reaches the analyzer.
	const extra = 4
	for i := 0; i < extra; i++ {
		resp, data := postScan(t, ts.URL, string(body))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d past limit: got %d want 429 (%s)", i, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("429 without Retry-After header")
		}
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_shed_total"); got != extra {
		t.Errorf("namer_scan_shed_total = %d, want %d", got, extra)
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_inflight"); got != limit {
		t.Errorf("namer_scan_inflight = %d, want %d", got, limit)
	}

	// Draining the held scans frees the slots: the original requests
	// complete with 200 and a fresh request is admitted again.
	close(release)
	for i := 0; i < limit; i++ {
		if code := <-admitted; code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after drain: got %d want 200 (%s)", resp.StatusCode, data)
	}
	if got := counterValue(t, sv.Metrics(), "namer_scan_inflight"); got != 0 {
		t.Errorf("namer_scan_inflight after drain = %d, want 0", got)
	}
}

// TestServeSoak mixes panicking, slow, and healthy requests from
// concurrent clients while hammering /healthz: the daemon must answer
// liveness 200 throughout and classify every scan outcome correctly.
func TestServeSoak(t *testing.T) {
	sv, _ := newStubServer(t, Config{MaxInFlight: 32})
	real := sv.analyze
	sv.analyze = func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
		switch {
		case strings.HasPrefix(files[0].Path, "panic"):
			panic("soak boom")
		case strings.HasPrefix(files[0].Path, "slow"):
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Millisecond):
			}
			return &ScanResponse{Lang: lang.String(), FilesReceived: len(files), FilesScanned: len(files)}
		}
		return real(ctx, b, lang, files, all)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	stopHealth := make(chan struct{})
	healthErr := make(chan error, 1)
	go func() {
		defer close(healthErr)
		for {
			select {
			case <-stopHealth:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				healthErr <- fmt.Errorf("healthz died: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				healthErr <- fmt.Errorf("healthz = %d mid-soak", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	kinds := []string{"panic.py", "slow.py", "ok.py"}
	const workers, perWorker = 4, 15
	var panics int64
	errCh := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kind := kinds[(w+i)%len(kinds)]
				body, _ := json.Marshal(ScanRequest{Files: []ScanFile{{Path: kind, Source: "x = 1\n"}}})
				resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				want := http.StatusOK
				if strings.HasPrefix(kind, "panic") {
					want = http.StatusInternalServerError
					mu.Lock()
					panics++
					mu.Unlock()
				}
				if resp.StatusCode != want {
					errCh <- fmt.Errorf("%s: got %d want %d", kind, resp.StatusCode, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	close(stopHealth)
	if err, ok := <-healthErr; ok && err != nil {
		t.Fatal(err)
	}

	if got := counterValue(t, sv.Metrics(), "namer_scan_panics_total"); got != panics {
		t.Errorf("namer_scan_panics_total = %d, want %d", got, panics)
	}
	// Still alive and still serving scans after the abuse.
	body, _ := json.Marshal(ScanRequest{Source: "x = 1\n"})
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak scan: %d (%s)", resp.StatusCode, data)
	}
}

// TestMetricsEndpoint: one real scan populates the request counters and
// every stage histogram, the access log captures the requests as JSON,
// and every /metrics sample line is parsable.
func TestMetricsEndpoint(t *testing.T) {
	sv, sources := newTestServer(t)
	access := &syncBuffer{}
	sv.cfg.AccessLog = access
	sv.handler = obs.AccessLog(sv.mux, access)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ScanRequest{Source: sources[0], All: true})
	resp, data := postScan(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("scan response missing X-Request-Id")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	out := string(raw)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"namer_scan_requests_total 1",
		"namer_scans_total 1",
		`namer_http_responses_total{status="200"} 1`,
		`namer_stage_seconds_bucket{stage="parse",le="+Inf"} 1`,
		`namer_stage_seconds_bucket{stage="scan",le="+Inf"} 1`,
		`namer_stage_seconds_bucket{stage="classify",le="+Inf"} 1`,
		`namer_stage_seconds_bucket{stage="scan_process",le="+Inf"} 1`,
		`namer_stage_seconds_bucket{stage="scan_match",le="+Inf"} 1`,
		"namer_request_seconds_count 1",
		"namer_scan_inflight 0",
		fmt.Sprintf("namer_scan_inflight_limit %d", DefaultMaxInFlight),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparsable metrics line: %q", line)
		}
	}

	// Access log: one JSON entry per request (scan + metrics scrape).
	lines := strings.Split(strings.TrimSpace(access.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("access log has %d lines, want >= 2: %q", len(lines), access.String())
	}
	var first obs.AccessEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access line not JSON: %q: %v", lines[0], err)
	}
	if first.Method != "POST" || first.Path != "/v1/scan" || first.Status != 200 ||
		first.RequestID == "" || first.Bytes <= 0 {
		t.Errorf("bad access entry: %+v", first)
	}
}

// TestPprofGated: the profiling handlers exist only when EnablePprof is
// set — an internet-facing daemon must not expose them by accident.
func TestPprofGated(t *testing.T) {
	off, _ := newStubServer(t, Config{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: got %d want 404", resp.StatusCode)
	}

	on, _ := newStubServer(t, Config{EnablePprof: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp2, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: got %d want 200", resp2.StatusCode)
	}
}
