package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"namer/internal/obs"
)

// NewHTTPServer wraps a handler in an http.Server with sane production
// timeouts: slowloris-resistant header reads and a write deadline a bit
// past the scan timeout so responses are never cut off mid-scan.
func NewHTTPServer(h http.Handler, scanTimeout time.Duration) *http.Server {
	if scanTimeout <= 0 {
		scanTimeout = DefaultScanTimeout
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       scanTimeout,
		WriteTimeout:      scanTimeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// TrackConnections instruments srv so the number of open (non-idle
// lifecycle: new through closed/hijacked) TCP connections is visible on
// the registry as the namer_http_connections gauge. Call before Serve.
func TrackConnections(srv *http.Server, reg *obs.Registry) {
	g := reg.Gauge("namer_http_connections")
	prev := srv.ConnState
	srv.ConnState = func(c net.Conn, state http.ConnState) {
		switch state {
		case http.StateNew:
			g.Add(1)
		case http.StateClosed, http.StateHijacked:
			g.Add(-1)
		}
		if prev != nil {
			prev(c, state)
		}
	}
}

// ReloadOnSignal invokes fn every time one of the signals arrives
// (typically SIGHUP for a knowledge reload). Errors are fn's to report;
// the watcher keeps running either way. The returned stop function
// unregisters the handler, lets an fn call already in flight finish,
// and only returns once the watcher goroutine has exited — after stop,
// fn is never invoked again, even for a signal that was already
// buffered when stop was called. Wire stop into the HTTP server's
// shutdown (http.Server.RegisterOnShutdown) so a SIGHUP racing a
// graceful shutdown cannot trigger a reload under the drain.
func ReloadOnSignal(fn func() error, signals ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, signals...)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			case <-ch:
				// Both channels may be ready when stop races a signal;
				// re-check done so a buffered signal cannot fire fn
				// after stop has been requested.
				select {
				case <-done:
					return
				default:
				}
				fn() // errors are logged/counted by the reload path itself
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			<-exited
		})
	}
}

// RunUntilSignal serves srv on ln until one of the signals arrives (or
// the server fails), then shuts down gracefully: the listener closes
// immediately, in-flight requests get up to grace to complete, and only
// then does the call return. A nil error means a clean shutdown.
func RunUntilSignal(srv *http.Server, ln net.Listener, grace time.Duration, signals ...os.Signal) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, signals...)
	defer signal.Stop(stop)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve never returns nil; ErrServerClosed only happens when
		// someone else shut the server down, which is still clean.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-stop:
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	<-errCh // Serve has returned ErrServerClosed by now.
	return nil
}
