// Package serve implements the HTTP serving layer over mined knowledge:
// a long-running daemon loads the knowledge artifact once and answers
// scan requests (source snippet in, classified violations + suggested
// fixes out) using the read-only detached scan path of internal/core.
//
// Endpoints:
//
//	GET  /healthz     liveness + knowledge summary
//	POST /v1/scan     scan source for naming issues
//	GET  /debug/vars  expvar counters (requests, violations, latency)
//
// The handler is safe for arbitrary concurrency: all shared state (the
// pattern index, pair set, classifier) is read-only after load, and every
// request keeps its own statement and statistics storage.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
)

// Config tunes the request handling limits.
type Config struct {
	// MaxBodyBytes bounds the request body size; 0 means DefaultMaxBody.
	MaxBodyBytes int64
	// ScanTimeout bounds the analysis time of one request; 0 means
	// DefaultScanTimeout.
	ScanTimeout time.Duration
	// KnowledgeInfo describes the loaded artifact (path, format, version)
	// for /healthz and the expvar page.
	KnowledgeInfo string
}

// Defaults for the zero Config.
const (
	DefaultMaxBody     = 4 << 20
	DefaultScanTimeout = 30 * time.Second
)

// Server answers scan requests against one loaded knowledge artifact.
type Server struct {
	sys *core.System
	cfg Config
	mux *http.ServeMux
}

// Package-level expvar counters, registered once: expvar panics on
// duplicate names, and all Servers in a process share the counter page.
var (
	statRequests   = expvar.NewInt("namer_requests")
	statBadRequest = expvar.NewInt("namer_bad_requests")
	statScans      = expvar.NewInt("namer_scans")
	statViolations = expvar.NewInt("namer_violations")
	statReported   = expvar.NewInt("namer_reported")
	statScanNanos  = expvar.NewInt("namer_scan_nanos")
	statKnowledge  = expvar.NewString("namer_knowledge")
)

// New builds a server over a system with imported knowledge. The system
// must not be mutated after this point.
func New(sys *core.System, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.ScanTimeout <= 0 {
		cfg.ScanTimeout = DefaultScanTimeout
	}
	sv := &Server{sys: sys, cfg: cfg, mux: http.NewServeMux()}
	statKnowledge.Set(cfg.KnowledgeInfo)
	sv.mux.HandleFunc("/healthz", sv.handleHealth)
	sv.mux.HandleFunc("/v1/scan", sv.handleScan)
	sv.mux.Handle("/debug/vars", expvar.Handler())
	return sv
}

// Handler returns the HTTP handler for the server's endpoints.
func (sv *Server) Handler() http.Handler { return sv.mux }

// ScanFile is one source file in a scan request.
type ScanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// ScanRequest is the POST /v1/scan body. Either Source (a single snippet)
// or Files must be set. Lang is optional and must match the loaded
// knowledge when present.
type ScanRequest struct {
	Lang   string     `json:"lang,omitempty"`
	Path   string     `json:"path,omitempty"`
	Source string     `json:"source,omitempty"`
	Files  []ScanFile `json:"files,omitempty"`
	// All includes violations the classifier rejects (they carry
	// "classified": false), the "w/o C" view.
	All bool `json:"all,omitempty"`
}

// ScanViolation is one reported naming issue.
type ScanViolation struct {
	Path        string `json:"path"`
	Line        int    `json:"line"`
	SourceLine  string `json:"source_line,omitempty"`
	Original    string `json:"original"`
	Suggested   string `json:"suggested"`
	PatternType string `json:"pattern_type"`
	// Fix is the full-identifier rewrite when it can be located
	// unambiguously on the line, e.g. "upload_cnt -> upload_count".
	Fix string `json:"fix,omitempty"`
	// Classified is the defect classifier's verdict; without a trained
	// classifier every violation is reported as true.
	Classified bool `json:"classified"`
}

// ScanResponse is the POST /v1/scan reply.
type ScanResponse struct {
	Lang       string          `json:"lang"`
	Files      int             `json:"files"`
	Statements int             `json:"statements"`
	Violations []ScanViolation `json:"violations"`
	Errors     []string        `json:"errors,omitempty"`
	ScanMillis float64         `json:"scan_millis"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"lang":       sv.sys.Config().Lang.String(),
		"patterns":   len(sv.sys.Patterns),
		"pairs":      sv.sys.Pairs.Len(),
		"classifier": sv.sys.HasClassifier(),
		"knowledge":  sv.cfg.KnowledgeInfo,
	})
}

func (sv *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	statRequests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		sv.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, sv.cfg.MaxBodyBytes)
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			sv.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", sv.cfg.MaxBodyBytes))
			return
		}
		sv.fail(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}

	lang := sv.sys.Config().Lang
	if req.Lang != "" {
		got, err := ast.ParseLanguage(req.Lang)
		if err != nil {
			sv.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		if got != lang {
			sv.fail(w, http.StatusBadRequest, fmt.Sprintf(
				"knowledge is for %v, request is %v", lang, got))
			return
		}
	}
	files := req.Files
	if req.Source != "" {
		path := req.Path
		if path == "" {
			path = "snippet" + extFor(lang)
		}
		files = append([]ScanFile{{Path: path, Source: req.Source}}, files...)
	}
	if len(files) == 0 {
		sv.fail(w, http.StatusBadRequest, `provide "source" or "files"`)
		return
	}

	resp, err := sv.scan(r.Context(), lang, files, req.All)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			sv.fail(w, http.StatusServiceUnavailable, "scan timed out")
			return
		}
		sv.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// scan parses and scans the request files with the detached read-only
// path, bounded by the configured timeout. The scan itself runs in a
// helper goroutine so a stuck analysis cannot pin the handler past its
// deadline (the goroutine finishes in the background; the system has no
// unbounded analyses, so this is a latency bound, not a leak risk).
func (sv *Server) scan(ctx context.Context, lang ast.Language, files []ScanFile, all bool) (*ScanResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, sv.cfg.ScanTimeout)
	defer cancel()

	type outcome struct {
		resp *ScanResponse
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		resp := &ScanResponse{Lang: lang.String(), Violations: []ScanViolation{}}
		var inputs []*core.InputFile
		for _, f := range files {
			root, err := core.ParseSource(lang, f.Source)
			if err != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", f.Path, err))
				continue
			}
			inputs = append(inputs, &core.InputFile{
				Repo: "request", Path: f.Path, Source: f.Source, Root: root,
			})
		}
		resp.Files = len(inputs)
		res := sv.sys.ScanFiles(inputs)
		resp.Statements = res.Statements
		for _, e := range res.Errors {
			resp.Errors = append(resp.Errors, e.Error())
		}
		statScans.Add(1)
		statViolations.Add(int64(len(res.Violations)))
		for _, v := range res.Violations {
			classified := sv.sys.ClassifyIn(res.Stats, v)
			if !classified && !all {
				continue
			}
			out := ScanViolation{
				Path:        v.Stmt.Path,
				Line:        v.Stmt.Line,
				SourceLine:  v.Stmt.SourceLine,
				Original:    v.Detail.Original,
				Suggested:   v.Detail.Suggested,
				PatternType: v.Pattern.Type.String(),
				Classified:  classified,
			}
			if from, to, ok := v.SuggestFixedName(); ok {
				out.Fix = from + " -> " + to
			}
			if classified {
				statReported.Add(1)
			}
			resp.Violations = append(resp.Violations, out)
		}
		resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
		statScanNanos.Add(time.Since(start).Nanoseconds())
		done <- outcome{resp: resp}
	}()

	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-done:
		return o.resp, nil
	}
}

func (sv *Server) fail(w http.ResponseWriter, code int, msg string) {
	statBadRequest.Add(1)
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// extFor returns the snippet filename extension for a language.
func extFor(lang ast.Language) string {
	switch lang {
	case ast.Java:
		return ".java"
	case ast.Go:
		return ".go"
	}
	return ".py"
}
