// Package serve implements the HTTP serving layer over mined knowledge:
// a long-running daemon loads the knowledge artifact once and answers
// scan requests (source snippet in, classified violations + suggested
// fixes out) using the read-only detached scan path of internal/core.
//
// Endpoints:
//
//	GET  /healthz      liveness + knowledge summary
//	POST /v1/scan      scan source for naming issues
//	GET  /metrics      Prometheus text-format counters + latency histograms
//	GET  /debug/vars   expvar counters (requests, violations, latency)
//	GET  /debug/pprof  profiling handlers (only with Config.EnablePprof)
//	GET  /debug/traces slowest-request span trees (only with Config.EnableTraces)
//
// The handler is safe for arbitrary concurrency: all shared state (the
// pattern index, pair set, classifier) is read-only after load, and every
// request keeps its own statement and statistics storage. Robustness
// guarantees, in order of the request path: admission control sheds
// load past Config.MaxInFlight with 429 + Retry-After instead of
// queueing unboundedly; the analysis goroutine contains any panic, so a
// pathological request costs one 500, never the process; client
// disconnects are logged and dropped without 5xx accounting; scan
// deadlines surface as 503.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strconv"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/obs"
)

// Config tunes the request handling limits.
type Config struct {
	// MaxBodyBytes bounds the request body size; 0 means DefaultMaxBody.
	MaxBodyBytes int64
	// ScanTimeout bounds the analysis time of one request; 0 means
	// DefaultScanTimeout.
	ScanTimeout time.Duration
	// MaxInFlight bounds how many scans execute concurrently; excess
	// requests are shed immediately with 429 + Retry-After rather than
	// queued. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// KnowledgeInfo describes the loaded artifact (path, format, version)
	// for /healthz and the expvar page.
	KnowledgeInfo string
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (method, path, status, bytes, duration, request id).
	// Request ids are assigned either way.
	AccessLog io.Writer
	// ErrorLog receives server-side error messages (panic reports,
	// dropped responses); nil logs to stderr.
	ErrorLog *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// EnableTraces records a span tree for every scan request into a
	// flight recorder holding the slowest recent traces, served at
	// /debug/traces (JSON list; ?id=<trace id> or ?id=slowest for a
	// Chrome trace-event export). Gated like pprof: traces reveal
	// request paths and timing structure, so they are off by default.
	EnableTraces bool
	// TraceRingSize is the flight-recorder capacity; 0 means
	// DefaultTraceRing.
	TraceRingSize int
}

// Defaults for the zero Config.
const (
	DefaultMaxBody     = 4 << 20
	DefaultScanTimeout = 30 * time.Second
	DefaultMaxInFlight = 64
	DefaultTraceRing   = 32
)

// Server answers scan requests against one loaded knowledge artifact.
type Server struct {
	sys     *core.System
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler
	errlog  *log.Logger

	// inflight is the admission-control semaphore: a slot is taken for
	// the lifetime of one scan, and requests that cannot take one are
	// shed with 429.
	inflight chan struct{}

	// analyze runs the parse -> scan -> classify pipeline for one
	// request. It is a field so robustness tests can substitute a
	// panicking or slow front-end stub.
	analyze func(ctx context.Context, lang ast.Language, files []ScanFile, all bool) *ScanResponse

	// recorder is the slow-request flight recorder behind /debug/traces;
	// nil unless Config.EnableTraces.
	recorder *obs.FlightRecorder

	// Per-server metrics (the /metrics page). Unlike the expvar
	// counters these are instance-scoped, so tests and multi-server
	// processes see isolated numbers.
	metrics   *obs.Registry
	mRequests *obs.Counter
	mShed     *obs.Counter
	mPanics   *obs.Counter
	mCanceled *obs.Counter
	mTimeouts *obs.Counter
	mScans    *obs.Counter
	mViol     *obs.Counter
	mReported *obs.Counter
	gInflight *obs.Gauge
	hRequest  *obs.Histogram
	hParse    *obs.Histogram
	hScan     *obs.Histogram
	hClassify *obs.Histogram
	hProcess  *obs.Histogram
	hMatch    *obs.Histogram
}

// Package-level expvar counters, registered once: expvar panics on
// duplicate names, and all Servers in a process share the counter page.
var (
	statRequests    = expvar.NewInt("namer_requests")
	statBadRequest  = expvar.NewInt("namer_bad_requests")
	statServerError = expvar.NewInt("namer_server_errors")
	statShed        = expvar.NewInt("namer_shed")
	statPanics      = expvar.NewInt("namer_scan_panics")
	statCanceled    = expvar.NewInt("namer_canceled")
	statScans       = expvar.NewInt("namer_scans")
	statViolations  = expvar.NewInt("namer_violations")
	statReported    = expvar.NewInt("namer_reported")
	statScanNanos   = expvar.NewInt("namer_scan_nanos")
	statKnowledge   = expvar.NewString("namer_knowledge")
)

// New builds a server over a system with imported knowledge. The system
// must not be mutated after this point.
func New(sys *core.System, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.ScanTimeout <= 0 {
		cfg.ScanTimeout = DefaultScanTimeout
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.New(os.Stderr, "", log.LstdFlags)
	}
	sv := &Server{
		sys:      sys,
		cfg:      cfg,
		mux:      http.NewServeMux(),
		errlog:   cfg.ErrorLog,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		metrics:  obs.NewRegistry(),
	}
	sv.analyze = sv.doAnalyze

	sv.mRequests = sv.metrics.Counter("namer_scan_requests_total")
	sv.mShed = sv.metrics.Counter("namer_scan_shed_total")
	sv.mPanics = sv.metrics.Counter("namer_scan_panics_total")
	sv.mCanceled = sv.metrics.Counter("namer_scan_canceled_total")
	sv.mTimeouts = sv.metrics.Counter("namer_scan_timeouts_total")
	sv.mScans = sv.metrics.Counter("namer_scans_total")
	sv.mViol = sv.metrics.Counter("namer_violations_total")
	sv.mReported = sv.metrics.Counter("namer_reported_total")
	sv.gInflight = sv.metrics.Gauge("namer_scan_inflight")
	sv.metrics.Gauge("namer_scan_inflight_limit").Set(int64(cfg.MaxInFlight))
	sv.hRequest = sv.metrics.Histogram("namer_request_seconds", nil)
	sv.hParse = sv.metrics.Histogram(`namer_stage_seconds{stage="parse"}`, nil)
	sv.hScan = sv.metrics.Histogram(`namer_stage_seconds{stage="scan"}`, nil)
	sv.hClassify = sv.metrics.Histogram(`namer_stage_seconds{stage="classify"}`, nil)
	sv.hProcess = sv.metrics.Histogram(`namer_stage_seconds{stage="scan_process"}`, nil)
	sv.hMatch = sv.metrics.Histogram(`namer_stage_seconds{stage="scan_match"}`, nil)

	obs.RegisterGoMetrics(sv.metrics)
	buildinfo.Register(sv.metrics)

	statKnowledge.Set(cfg.KnowledgeInfo)
	sv.mux.HandleFunc("/healthz", sv.handleHealth)
	sv.mux.HandleFunc("/v1/scan", sv.handleScan)
	sv.mux.Handle("/metrics", sv.metrics.Handler())
	sv.mux.Handle("/debug/vars", expvar.Handler())
	if cfg.EnableTraces {
		ring := cfg.TraceRingSize
		if ring <= 0 {
			ring = DefaultTraceRing
		}
		sv.recorder = obs.NewFlightRecorder(ring)
		sv.mux.Handle("/debug/traces", sv.recorder.Handler())
	}
	if cfg.EnablePprof {
		sv.mux.HandleFunc("/debug/pprof/", pprof.Index)
		sv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		sv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		sv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		sv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	sv.handler = obs.AccessLog(sv.mux, cfg.AccessLog)
	return sv
}

// Handler returns the HTTP handler for the server's endpoints, wrapped
// in the request-id / access-log middleware.
func (sv *Server) Handler() http.Handler { return sv.handler }

// Metrics exposes the server's metric registry (what /metrics renders),
// for benchmarks and embedding processes.
func (sv *Server) Metrics() *obs.Registry { return sv.metrics }

// ScanFile is one source file in a scan request.
type ScanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// ScanRequest is the POST /v1/scan body. Either Source (a single snippet)
// or Files must be set. Lang is optional and must match the loaded
// knowledge when present.
type ScanRequest struct {
	Lang   string     `json:"lang,omitempty"`
	Path   string     `json:"path,omitempty"`
	Source string     `json:"source,omitempty"`
	Files  []ScanFile `json:"files,omitempty"`
	// All includes violations the classifier rejects (they carry
	// "classified": false), the "w/o C" view.
	All bool `json:"all,omitempty"`
}

// ScanViolation is one reported naming issue.
type ScanViolation struct {
	Path        string `json:"path"`
	Line        int    `json:"line"`
	SourceLine  string `json:"source_line,omitempty"`
	Original    string `json:"original"`
	Suggested   string `json:"suggested"`
	PatternType string `json:"pattern_type"`
	// Fix is the full-identifier rewrite when it can be located
	// unambiguously on the line, e.g. "upload_cnt -> upload_count".
	Fix string `json:"fix,omitempty"`
	// Classified is the defect classifier's verdict; without a trained
	// classifier every violation is reported as true.
	Classified bool `json:"classified"`
}

// ScanResponse is the POST /v1/scan reply. FilesReceived counts the
// inputs in the request; FilesScanned counts the subset that parsed —
// the difference is itemized in Errors, never silently absorbed.
type ScanResponse struct {
	Lang          string          `json:"lang"`
	FilesReceived int             `json:"files_received"`
	FilesScanned  int             `json:"files_scanned"`
	Statements    int             `json:"statements"`
	Violations    []ScanViolation `json:"violations"`
	Errors        []string        `json:"errors,omitempty"`
	ScanMillis    float64         `json:"scan_millis"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sv.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"lang":       sv.sys.Config().Lang.String(),
		"patterns":   len(sv.sys.Patterns),
		"pairs":      sv.sys.Pairs.Len(),
		"classifier": sv.sys.HasClassifier(),
		"knowledge":  sv.cfg.KnowledgeInfo,
	})
}

func (sv *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	statRequests.Add(1)
	sv.mRequests.Inc()
	start := time.Now()
	defer func() { sv.hRequest.Since(start) }()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		sv.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}

	// Admission control: take an in-flight slot or shed the request
	// before reading the body. A bounded semaphore instead of a queue
	// means saturation costs the client one cheap round trip, not an
	// unbounded wait, and the daemon's memory stays flat under load.
	select {
	case sv.inflight <- struct{}{}:
		sv.gInflight.Add(1)
		defer func() {
			<-sv.inflight
			sv.gInflight.Add(-1)
		}()
	default:
		statShed.Add(1)
		sv.mShed.Inc()
		w.Header().Set("Retry-After", "1")
		sv.fail(w, http.StatusTooManyRequests,
			fmt.Sprintf("server at capacity (%d scans in flight); retry later", sv.cfg.MaxInFlight))
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, sv.cfg.MaxBodyBytes)
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			sv.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", sv.cfg.MaxBodyBytes))
			return
		}
		sv.fail(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}

	lang := sv.sys.Config().Lang
	if req.Lang != "" {
		got, err := ast.ParseLanguage(req.Lang)
		if err != nil {
			sv.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		if got != lang {
			sv.fail(w, http.StatusBadRequest, fmt.Sprintf(
				"knowledge is for %v, request is %v", lang, got))
			return
		}
	}
	files := req.Files
	if req.Source != "" {
		path := req.Path
		if path == "" {
			path = "snippet" + extFor(lang)
		}
		files = append([]ScanFile{{Path: path, Source: req.Source}}, files...)
	}
	if len(files) == 0 {
		sv.fail(w, http.StatusBadRequest, `provide "source" or "files"`)
		return
	}

	// With the flight recorder on, the whole analysis runs under a span
	// tree whose trace id is the request id, so a slow request found in
	// the access log can be pulled up on /debug/traces by the same id.
	ctx := r.Context()
	var tr *obs.Trace
	if sv.recorder != nil {
		ctx, tr = obs.NewTrace(ctx, "scan_request", obs.RequestID(ctx))
		tr.Root().SetAttrInt("files_received", len(files))
	}
	resp, err := sv.scan(ctx, lang, files, req.All)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// The client went away; nobody is reading the response.
			// Log and drop without 4xx/5xx accounting — a disconnect
			// is not a server error and must not trip error alerts.
			statCanceled.Add(1)
			sv.mCanceled.Inc()
			sv.errlog.Printf("serve: scan canceled by client (request %s)", obs.RequestID(r.Context()))
		case errors.Is(err, context.DeadlineExceeded):
			sv.mTimeouts.Inc()
			sv.fail(w, http.StatusServiceUnavailable, "scan timed out")
		default:
			sv.fail(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	if tr != nil {
		// Record only completed analyses: on timeout/cancel the
		// abandoned goroutine may still be writing spans, so those
		// traces are dropped rather than exported mid-write.
		tr.Finish()
		sv.recorder.Add(tr)
	}
	sv.writeJSON(w, http.StatusOK, resp)
}

// errAnalysisPanic is the sanitized client-facing error for a contained
// analyzer panic: the panic value and stack go to the error log with the
// request id, never over the wire.
var errAnalysisPanic = errors.New("internal error analyzing request")

// scan runs the analysis pipeline bounded by the configured timeout. The
// work runs in a helper goroutine so a stuck analysis cannot pin the
// handler past its deadline (the goroutine finishes in the background;
// the system has no unbounded analyses, so this is a latency bound, not
// a leak risk). The goroutine recovers its own panics: it runs outside
// net/http's per-connection recover, so an uncontained panic here —
// ScanFiles, Explain, Dedup, the classifier — would kill the whole
// daemon, not just the request.
func (sv *Server) scan(ctx context.Context, lang ast.Language, files []ScanFile, all bool) (*ScanResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, sv.cfg.ScanTimeout)
	defer cancel()

	type outcome struct {
		resp *ScanResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				statPanics.Add(1)
				sv.mPanics.Inc()
				sv.errlog.Printf("serve: scan panic (request %s): %v\n%s",
					obs.RequestID(ctx), rec, debug.Stack())
				done <- outcome{err: errAnalysisPanic}
			}
		}()
		done <- outcome{resp: sv.analyze(ctx, lang, files, all)}
	}()

	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-done:
		return o.resp, o.err
	}
}

// doAnalyze is the real analysis pipeline: parse every file, scan the
// parsed set against the knowledge, classify the violations. Each stage
// is a span under the request's trace (when the flight recorder is on)
// and feeds its latency histogram either way.
func (sv *Server) doAnalyze(ctx context.Context, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
	start := time.Now()
	resp := &ScanResponse{
		Lang:          lang.String(),
		FilesReceived: len(files),
		Violations:    []ScanViolation{},
	}

	stage := time.Now()
	pctx, parseSpan := obs.StartSpan(ctx, "parse")
	var inputs []*core.InputFile
	for _, f := range files {
		_, fsp := obs.StartSpan(pctx, "file")
		fsp.SetAttr("path", f.Path)
		root, err := core.ParseSource(lang, f.Source)
		fsp.End()
		if err != nil {
			resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", f.Path, err))
			continue
		}
		inputs = append(inputs, &core.InputFile{
			Repo: "request", Path: f.Path, Source: f.Source, Root: root,
		})
	}
	parseSpan.End()
	sv.hParse.Since(stage)
	resp.FilesScanned = len(inputs)

	stage = time.Now()
	sctx, scanSpan := obs.StartSpan(ctx, "scan")
	res := sv.sys.ScanFilesCtx(sctx, inputs)
	scanSpan.End()
	sv.hScan.Since(stage)
	sv.hProcess.Observe(res.Timings.Process)
	sv.hMatch.Observe(res.Timings.Match)
	resp.Statements = res.Statements
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	statScans.Add(1)
	sv.mScans.Inc()
	statViolations.Add(int64(len(res.Violations)))
	sv.mViol.Add(int64(len(res.Violations)))

	stage = time.Now()
	_, classifySpan := obs.StartSpan(ctx, "classify")
	for _, v := range res.Violations {
		classified := sv.sys.ClassifyIn(res.Stats, v)
		if !classified && !all {
			continue
		}
		out := ScanViolation{
			Path:        v.Stmt.Path,
			Line:        v.Stmt.Line,
			SourceLine:  v.Stmt.SourceLine,
			Original:    v.Detail.Original,
			Suggested:   v.Detail.Suggested,
			PatternType: v.Pattern.Type.String(),
			Classified:  classified,
		}
		if from, to, ok := v.SuggestFixedName(); ok {
			out.Fix = from + " -> " + to
		}
		if classified {
			statReported.Add(1)
			sv.mReported.Inc()
		}
		resp.Violations = append(resp.Violations, out)
	}
	classifySpan.SetAttrInt("violations", len(res.Violations))
	classifySpan.SetAttrInt("reported", len(resp.Violations))
	classifySpan.End()
	sv.hClassify.Since(stage)

	resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
	statScanNanos.Add(time.Since(start).Nanoseconds())
	return resp
}

// fail writes an error response, accounting it as a client error (4xx)
// or server error (5xx).
func (sv *Server) fail(w http.ResponseWriter, code int, msg string) {
	if code >= 500 {
		statServerError.Add(1)
	} else {
		statBadRequest.Add(1)
	}
	sv.writeJSON(w, code, errorResponse{Error: msg})
}

// writeJSON writes a JSON response, counts the status on /metrics, and
// logs (rather than ignores) encode failures — by that point the status
// line is sent, so the error cannot reach the client.
func (sv *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	sv.metrics.Counter(fmt.Sprintf("namer_http_responses_total{status=%q}", strconv.Itoa(code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		sv.errlog.Printf("serve: writing %d response: %v", code, err)
	}
}

// extFor returns the snippet filename extension for a language.
func extFor(lang ast.Language) string {
	switch lang {
	case ast.Java:
		return ".java"
	case ast.Go:
		return ".go"
	}
	return ".py"
}
