// Package serve implements the HTTP serving layer over mined knowledge:
// a long-running daemon loads the knowledge artifact once and answers
// scan requests (source snippet in, classified violations + suggested
// fixes out) using the read-only detached scan path of internal/core.
//
// Endpoints:
//
//	GET  /healthz      liveness + knowledge summary
//	POST /v1/scan      scan source for naming issues
//	POST /v1/diff      scan a change, report only introduced issues
//	POST /v1/session   open/close a long-lived editor session
//	POST /v1/session/{id}/change  apply edits to a session overlay, get diagnostics
//	GET  /metrics      Prometheus text-format counters + latency histograms
//	GET  /debug/vars   expvar counters (requests, violations, latency)
//	GET  /debug/pprof  profiling handlers (only with Config.EnablePprof)
//	GET  /debug/traces slowest-request span trees (only with Config.EnableTraces)
//	POST /debug/reload hot-swap to freshly loaded knowledge (needs Config.Loader)
//
// The handler is safe for arbitrary concurrency: all shared state (the
// pattern index, pair set, classifier) is immutable once bundled, and
// every request keeps its own statement and statistics storage. The
// knowledge bundle — system, artifact identity, and the per-file scan
// cache keyed against it — sits behind one atomic pointer: a request
// captures it at admission and uses it end to end, while Reload (SIGHUP
// or POST /debug/reload) atomically publishes a replacement, so
// knowledge hot-swaps drop no requests and never mix two artifacts
// inside one request. Repeat files
// are served from a bounded content-hash cache of analyzed per-file
// units (internal/servecache), so an editor or CI bot re-scanning a
// mostly-unchanged file set pays only for the files that changed.
// Robustness guarantees, in order of the request path: admission control
// sheds load past Config.MaxInFlight with 429 + Retry-After instead of
// queueing unboundedly; the analysis goroutine contains any panic, so a
// pathological request costs one 500, never the process; client
// disconnects are logged and dropped without 5xx accounting; scan
// deadlines surface as 503. Both analysis endpoints go through the same
// gate/decode/trace/contain pipeline — /v1/diff is not a side door.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"namer/internal/ast"
	"namer/internal/buildinfo"
	"namer/internal/core"
	"namer/internal/obs"
	"namer/internal/servecache"
	"namer/internal/session"
	"namer/internal/udiff"
)

// Config tunes the request handling limits.
type Config struct {
	// MaxBodyBytes bounds the request body size; 0 means DefaultMaxBody.
	MaxBodyBytes int64
	// ScanTimeout bounds the analysis time of one request; 0 means
	// DefaultScanTimeout.
	ScanTimeout time.Duration
	// MaxInFlight bounds how many scans execute concurrently; excess
	// requests are shed immediately with 429 + Retry-After rather than
	// queued. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// CacheEntries bounds the per-file scan cache by unit count: 0 means
	// DefaultCacheEntries, negative disables the cache entirely.
	CacheEntries int
	// CacheBytes bounds the per-file scan cache by estimated resident
	// bytes; 0 or negative means DefaultCacheBytes. Ignored when the
	// cache is disabled.
	CacheBytes int64
	// Knowledge describes the artifact the initial system was loaded
	// from, reported on /healthz, /metrics, and the expvar page.
	Knowledge KnowledgeInfo
	// Loader, when non-nil, enables hot reloading: it is invoked by
	// Reload (SIGHUP, POST /debug/reload) and must return a freshly
	// built system with the new knowledge imported. A Loader error
	// leaves the currently served bundle untouched.
	Loader func() (*core.System, KnowledgeInfo, error)
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (method, path, status, bytes, duration, request id).
	// Request ids are assigned either way.
	AccessLog io.Writer
	// ErrorLog receives server-side error messages (panic reports,
	// dropped responses); nil logs to stderr.
	ErrorLog *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// EnableTraces records a span tree for every scan request into a
	// flight recorder holding the slowest recent traces, served at
	// /debug/traces (JSON list; ?id=<trace id> or ?id=slowest for a
	// Chrome trace-event export). Gated like pprof: traces reveal
	// request paths and timing structure, so they are off by default.
	EnableTraces bool
	// TraceRingSize is the flight-recorder capacity; 0 means
	// DefaultTraceRing.
	TraceRingSize int
	// MaxSessions caps concurrently open editor sessions; 0 means
	// session.DefaultMaxSessions, negative means unlimited. Opens past
	// the cap are shed with 429.
	MaxSessions int
	// SessionIdleTTL evicts sessions with no activity for this long; 0
	// means session.DefaultIdleTTL, negative disables eviction.
	SessionIdleTTL time.Duration
}

// Defaults for the zero Config.
const (
	DefaultMaxBody      = 4 << 20
	DefaultScanTimeout  = 30 * time.Second
	DefaultMaxInFlight  = 64
	DefaultTraceRing    = 32
	DefaultCacheEntries = 4096
	DefaultCacheBytes   = 256 << 20
)

// KnowledgeInfo identifies a loaded knowledge artifact for operators:
// the health endpoint, the `namer_knowledge_info` gauge, and reload
// responses all report it, so a fleet can tell which artifact each
// instance is serving.
type KnowledgeInfo struct {
	// Summary is the human-readable one-liner (path + format + hash
	// prefix) shown on /healthz and the expvar page.
	Summary string `json:"summary"`
	// Path is the artifact file, when loaded from one.
	Path string `json:"path,omitempty"`
	// Format names the encoding ("binary" or "json").
	Format string `json:"format,omitempty"`
	// FormatVersion is the binary codec version (0 for JSON).
	FormatVersion int `json:"format_version,omitempty"`
	// ContentHash is the hex sha256 of the artifact bytes.
	ContentHash string `json:"content_hash,omitempty"`
	// LoadedAt is when this artifact was loaded.
	LoadedAt time.Time `json:"loaded_at"`
}

// bundle is one immutable serving unit: a system with imported
// knowledge, the per-file scan cache keyed against exactly that
// knowledge, and the artifact identity. A request captures the current
// bundle once at admission and uses it end to end, so a concurrent
// reload never mixes knowledge mid-request; the old bundle stays alive
// until its last in-flight request returns, then the GC collects it
// (and its cache) wholesale.
type bundle struct {
	sys   *core.System
	cache *servecache.Cache
	info  KnowledgeInfo
}

// Server answers scan requests against one loaded knowledge artifact.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler
	errlog  *log.Logger

	// cur is the atomically swapped serving bundle. Handlers Load it
	// once per request; Reload Stores a replacement.
	cur atomic.Pointer[bundle]

	// reloadMu serializes Reload calls (SIGHUP racing the admin
	// endpoint) so two loaders never interleave their swaps.
	reloadMu sync.Mutex

	// closing is set by Close (wired to the HTTP server's shutdown):
	// once draining, reloads are refused and new sessions turned away,
	// so a SIGHUP racing the shutdown can never swap the bundle under
	// the requests being drained.
	closing atomic.Bool

	// sessions is the long-lived editor session table behind
	// /v1/session; overlay contents live here, scan state is attached
	// per file as a sessionScan.
	sessions *session.Manager

	// inflight is the admission-control semaphore: a slot is taken for
	// the lifetime of one scan, and requests that cannot take one are
	// shed with 429.
	inflight chan struct{}

	// analyze runs the parse -> scan -> classify pipeline for one
	// request against the bundle captured at admission. It is a field so
	// robustness tests can substitute a panicking or slow front-end
	// stub.
	analyze func(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse

	// analyzeDiff is the /v1/diff pipeline, a field for the same reason.
	analyzeDiff func(ctx context.Context, b *bundle, lang ast.Language, files []core.DiffFile, all bool) *DiffResponse

	// cacheMetrics holds the shared cache metric hooks; every bundle's
	// cache feeds the same counters so hit/miss totals stay cumulative
	// across reloads while the size gauges track the live cache.
	cacheMetrics servecache.Metrics

	// recorder is the slow-request flight recorder behind /debug/traces;
	// nil unless Config.EnableTraces.
	recorder *obs.FlightRecorder

	// Per-server metrics (the /metrics page). Unlike the expvar
	// counters these are instance-scoped, so tests and multi-server
	// processes see isolated numbers.
	metrics   *obs.Registry
	mRequests *obs.Counter
	mShed     *obs.Counter
	mPanics   *obs.Counter
	mCanceled *obs.Counter
	mTimeouts *obs.Counter
	mScans    *obs.Counter
	mViol     *obs.Counter
	mReported *obs.Counter
	mDiffReqs *obs.Counter
	mDiffViol *obs.Counter
	mReloads  *obs.Counter
	mReloadNo *obs.Counter
	gReloadOK *obs.Gauge
	gLoadedAt *obs.Gauge
	gInflight *obs.Gauge
	hRequest  *obs.Histogram
	hParse    *obs.Histogram
	hScan     *obs.Histogram
	hClassify *obs.Histogram
	hProcess  *obs.Histogram
	hMatch    *obs.Histogram
	hDiff     *obs.Histogram

	mSessionOpens   *obs.Counter
	mSessionChanges *obs.Counter
	mSessionEvict   *obs.Counter
	gSessions       *obs.Gauge
	hSessionChange  *obs.Histogram
}

// Package-level expvar counters, registered once: expvar panics on
// duplicate names, and all Servers in a process share the counter page.
var (
	statRequests    = expvar.NewInt("namer_requests")
	statBadRequest  = expvar.NewInt("namer_bad_requests")
	statServerError = expvar.NewInt("namer_server_errors")
	statShed        = expvar.NewInt("namer_shed")
	statPanics      = expvar.NewInt("namer_scan_panics")
	statCanceled    = expvar.NewInt("namer_canceled")
	statScans       = expvar.NewInt("namer_scans")
	statViolations  = expvar.NewInt("namer_violations")
	statReported    = expvar.NewInt("namer_reported")
	statScanNanos   = expvar.NewInt("namer_scan_nanos")
	statKnowledge   = expvar.NewString("namer_knowledge")
)

// New builds a server over a system with imported knowledge. The system
// must not be mutated after this point. New installs (or, with a
// negative Config.CacheEntries, removes) the system's per-file scan
// cache: the cached units embed match output against the loaded pattern
// index, so the cache's lifetime is exactly one (system, knowledge)
// pair and a fresh Server gets a fresh cache.
func New(sys *core.System, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.ScanTimeout <= 0 {
		cfg.ScanTimeout = DefaultScanTimeout
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.New(os.Stderr, "", log.LstdFlags)
	}
	sv := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		errlog:   cfg.ErrorLog,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		metrics:  obs.NewRegistry(),
	}
	sv.analyze = sv.doAnalyze
	sv.analyzeDiff = sv.doAnalyzeDiff

	sv.mRequests = sv.metrics.Counter("namer_scan_requests_total")
	sv.mShed = sv.metrics.Counter("namer_scan_shed_total")
	sv.mPanics = sv.metrics.Counter("namer_scan_panics_total")
	sv.mCanceled = sv.metrics.Counter("namer_scan_canceled_total")
	sv.mTimeouts = sv.metrics.Counter("namer_scan_timeouts_total")
	sv.mScans = sv.metrics.Counter("namer_scans_total")
	sv.mViol = sv.metrics.Counter("namer_violations_total")
	sv.mReported = sv.metrics.Counter("namer_reported_total")
	sv.mDiffReqs = sv.metrics.Counter("namer_diff_requests_total")
	sv.mDiffViol = sv.metrics.Counter("namer_diff_violations_total")
	sv.mReloads = sv.metrics.Counter("namer_knowledge_reloads_total")
	sv.mReloadNo = sv.metrics.Counter("namer_knowledge_reload_failures_total")
	sv.gReloadOK = sv.metrics.Gauge("namer_knowledge_reload_last_success")
	sv.gLoadedAt = sv.metrics.Gauge("namer_knowledge_loaded_timestamp_seconds")
	sv.gInflight = sv.metrics.Gauge("namer_scan_inflight")
	sv.metrics.Gauge("namer_scan_inflight_limit").Set(int64(cfg.MaxInFlight))
	sv.hRequest = sv.metrics.Histogram("namer_request_seconds", nil)
	sv.hParse = sv.metrics.Histogram(`namer_stage_seconds{stage="parse"}`, nil)
	sv.hScan = sv.metrics.Histogram(`namer_stage_seconds{stage="scan"}`, nil)
	sv.hClassify = sv.metrics.Histogram(`namer_stage_seconds{stage="classify"}`, nil)
	sv.hProcess = sv.metrics.Histogram(`namer_stage_seconds{stage="scan_process"}`, nil)
	sv.hMatch = sv.metrics.Histogram(`namer_stage_seconds{stage="scan_match"}`, nil)
	sv.hDiff = sv.metrics.Histogram(`namer_stage_seconds{stage="diff"}`, nil)

	sv.mSessionOpens = sv.metrics.Counter("namer_session_opens_total")
	sv.mSessionChanges = sv.metrics.Counter("namer_session_changes_total")
	sv.mSessionEvict = sv.metrics.Counter("namer_session_idle_evictions_total")
	sv.gSessions = sv.metrics.Gauge("namer_sessions")
	sv.hSessionChange = sv.metrics.Histogram("namer_session_change_seconds", nil)
	sv.sessions = session.NewManager(session.Config{
		MaxSessions: cfg.MaxSessions,
		IdleTTL:     cfg.SessionIdleTTL,
		Metrics: session.Metrics{
			Count:         sv.gSessions,
			IdleEvictions: sv.mSessionEvict,
		},
	})

	sv.cacheMetrics = servecache.Metrics{
		Hits:      sv.metrics.Counter("namer_cache_hits_total"),
		Misses:    sv.metrics.Counter("namer_cache_misses_total"),
		Evictions: sv.metrics.Counter("namer_cache_evictions_total"),
		Bytes:     sv.metrics.Gauge("namer_cache_bytes"),
		Entries:   sv.metrics.Gauge("namer_cache_entries"),
	}
	sv.install(sv.newBundle(sys, cfg.Knowledge), nil)
	sv.gReloadOK.Set(1)

	obs.RegisterGoMetrics(sv.metrics)
	buildinfo.Register(sv.metrics)

	sv.mux.HandleFunc("/healthz", sv.handleHealth)
	sv.mux.HandleFunc("/v1/scan", sv.handleScan)
	sv.mux.HandleFunc("/v1/diff", sv.handleDiff)
	sv.mux.HandleFunc("/v1/session", sv.handleSession)
	sv.mux.HandleFunc("/v1/session/", sv.handleSessionRoute)
	sv.mux.HandleFunc("/debug/reload", sv.handleReload)
	sv.mux.Handle("/metrics", sv.metrics.Handler())
	sv.mux.Handle("/debug/vars", expvar.Handler())
	if cfg.EnableTraces {
		ring := cfg.TraceRingSize
		if ring <= 0 {
			ring = DefaultTraceRing
		}
		sv.recorder = obs.NewFlightRecorder(ring)
		sv.mux.Handle("/debug/traces", sv.recorder.Handler())
	}
	if cfg.EnablePprof {
		sv.mux.HandleFunc("/debug/pprof/", pprof.Index)
		sv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		sv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		sv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		sv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	sv.handler = obs.AccessLog(sv.mux, cfg.AccessLog)
	return sv
}

// Handler returns the HTTP handler for the server's endpoints, wrapped
// in the request-id / access-log middleware.
func (sv *Server) Handler() http.Handler { return sv.handler }

// Metrics exposes the server's metric registry (what /metrics renders),
// for benchmarks and embedding processes.
func (sv *Server) Metrics() *obs.Registry { return sv.metrics }

// Cache exposes the current bundle's per-file scan cache, nil when
// disabled; tests and benchmarks read its Stats. After a reload this is
// the new bundle's (fresh) cache.
func (sv *Server) Cache() *servecache.Cache { return sv.cur.Load().cache }

// Knowledge returns the identity of the artifact currently being served.
func (sv *Server) Knowledge() KnowledgeInfo { return sv.cur.Load().info }

// newBundle wraps a knowledge-imported system into a serving bundle
// with its own scan cache. The cached units embed match output against
// the bundle's pattern index, so the cache's lifetime is exactly one
// (system, knowledge) pair: every bundle gets a fresh cache, wired to
// the shared metric hooks.
func (sv *Server) newBundle(sys *core.System, info KnowledgeInfo) *bundle {
	b := &bundle{sys: sys, info: info}
	if sv.cfg.CacheEntries >= 0 {
		entries := sv.cfg.CacheEntries
		if entries == 0 {
			entries = DefaultCacheEntries
		}
		bytes := sv.cfg.CacheBytes
		if bytes <= 0 {
			bytes = DefaultCacheBytes
		}
		b.cache = servecache.New(entries, bytes)
		b.cache.SetMetrics(sv.cacheMetrics)
	}
	if b.cache != nil {
		sys.SetFileCache(b.cache)
	} else {
		// Install a true nil, not a nil *Cache boxed in the interface.
		sys.SetFileCache(nil)
	}
	return b
}

// install publishes b as the serving bundle and updates the identity
// metrics: the labeled namer_knowledge_info gauge flips to the new
// artifact (the old bundle's series drops to 0, mirroring how Prometheus
// info-style metrics express "which one is live"), and the load
// timestamp gauge follows.
func (sv *Server) install(b, old *bundle) {
	sv.cur.Store(b)
	statKnowledge.Set(b.info.Summary)
	if old != nil {
		sv.metrics.Gauge(knowledgeInfoSeries(old.info)).Set(0)
	}
	sv.metrics.Gauge(knowledgeInfoSeries(b.info)).Set(1)
	if !b.info.LoadedAt.IsZero() {
		sv.gLoadedAt.Set(b.info.LoadedAt.Unix())
	}
}

// knowledgeInfoSeries renders the labeled series name identifying an
// artifact on /metrics. The hash label is truncated: 12 hex chars keep
// the cardinality-relevant identity without bloating every scrape.
func knowledgeInfoSeries(info KnowledgeInfo) string {
	hash := info.ContentHash
	if len(hash) > 12 {
		hash = hash[:12]
	}
	return fmt.Sprintf("namer_knowledge_info{format=%q,version=%q,hash=%q}",
		info.Format, strconv.Itoa(info.FormatVersion), hash)
}

// Reload swaps in a freshly loaded knowledge bundle via Config.Loader.
// In-flight requests keep the bundle they captured at admission and
// finish against the old knowledge; new requests see the new bundle the
// moment Store completes. The scan cache rotates with the bundle — a
// cache keyed against the old pattern index is never consulted for the
// new one. On a Loader error the old bundle keeps serving untouched and
// the failure is visible on /metrics (failure counter + last-success
// gauge at 0).
func (sv *Server) Reload() (KnowledgeInfo, error) {
	sv.reloadMu.Lock()
	defer sv.reloadMu.Unlock()
	if sv.closing.Load() {
		// Graceful shutdown is in flight: the drained requests must
		// finish against the bundle they can still observe, and no
		// loader work should delay process exit.
		return KnowledgeInfo{}, errServerClosing
	}
	if sv.cfg.Loader == nil {
		return KnowledgeInfo{}, errors.New("serve: reload not configured (no knowledge loader)")
	}
	sys, info, err := sv.cfg.Loader()
	if err != nil {
		sv.mReloadNo.Inc()
		sv.gReloadOK.Set(0)
		sv.errlog.Printf("serve: knowledge reload failed (still serving %s): %v",
			sv.cur.Load().info.Summary, err)
		return KnowledgeInfo{}, err
	}
	old := sv.cur.Load()
	sv.install(sv.newBundle(sys, info), old)
	sv.mReloads.Inc()
	sv.gReloadOK.Set(1)
	sv.errlog.Printf("serve: knowledge reloaded: %s -> %s", old.info.Summary, info.Summary)
	return info, nil
}

// handleReload is the admin endpoint POST /debug/reload: trigger a
// reload and report the outcome. 501 when no loader is configured, 500
// with the loader error on failure (the old bundle keeps serving).
func (sv *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		sv.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if sv.cfg.Loader == nil {
		sv.fail(w, http.StatusNotImplemented, "reload not configured (no knowledge loader)")
		return
	}
	info, err := sv.Reload()
	if errors.Is(err, errServerClosing) {
		sv.fail(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if err != nil {
		sv.fail(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	sv.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"knowledge": info,
	})
}

// ScanFile is one source file in a scan request.
type ScanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// ScanRequest is the POST /v1/scan body. Either Source (a single snippet)
// or Files must be set. Lang is optional and must match the loaded
// knowledge when present.
type ScanRequest struct {
	Lang   string     `json:"lang,omitempty"`
	Path   string     `json:"path,omitempty"`
	Source string     `json:"source,omitempty"`
	Files  []ScanFile `json:"files,omitempty"`
	// All includes violations the classifier rejects (they carry
	// "classified": false), the "w/o C" view.
	All bool `json:"all,omitempty"`
}

// ScanViolation is one reported naming issue.
type ScanViolation struct {
	Path        string `json:"path"`
	Line        int    `json:"line"`
	SourceLine  string `json:"source_line,omitempty"`
	Original    string `json:"original"`
	Suggested   string `json:"suggested"`
	PatternType string `json:"pattern_type"`
	// Fix is the full-identifier rewrite when it can be located
	// unambiguously on the line, e.g. "upload_cnt -> upload_count".
	Fix string `json:"fix,omitempty"`
	// Classified is the defect classifier's verdict; without a trained
	// classifier every violation is reported as true.
	Classified bool `json:"classified"`
}

// ScanResponse is the POST /v1/scan reply. FilesReceived counts the
// inputs in the request; FilesScanned counts the subset that parsed —
// the difference is itemized in Errors, never silently absorbed.
// CacheHits/CacheMisses report how many of the request's files were
// served from the per-file scan cache (both zero when it is disabled).
type ScanResponse struct {
	Lang          string          `json:"lang"`
	FilesReceived int             `json:"files_received"`
	FilesScanned  int             `json:"files_scanned"`
	Statements    int             `json:"statements"`
	Violations    []ScanViolation `json:"violations"`
	Errors        []string        `json:"errors,omitempty"`
	CacheHits     int             `json:"cache_hits"`
	CacheMisses   int             `json:"cache_misses"`
	ScanMillis    float64         `json:"scan_millis"`
}

// DiffFile is one changed file in a diff request: the before and after
// versions of its source. After may instead be given as Patch, a unified
// diff (`git diff` output for this file) applied server-side to Before.
type DiffFile struct {
	Path   string `json:"path"`
	Before string `json:"before"`
	After  string `json:"after,omitempty"`
	Patch  string `json:"patch,omitempty"`
}

// DiffRequest is the POST /v1/diff body.
type DiffRequest struct {
	Lang  string     `json:"lang,omitempty"`
	Files []DiffFile `json:"files"`
	// All includes introduced violations the classifier rejects.
	All bool `json:"all,omitempty"`
}

// DiffRename is one identifier rename found by aligning the before/after
// ASTs; KnownPair marks renames crossing a mined confusing-word pair.
type DiffRename struct {
	Path      string `json:"path"`
	Before    string `json:"before"`
	After     string `json:"after"`
	KnownPair bool   `json:"known_pair"`
}

// DiffResponse is the POST /v1/diff reply. Violations holds only the
// issues *introduced* by the change — present on changed after-side
// statements and not carried over from the before side.
type DiffResponse struct {
	Lang              string          `json:"lang"`
	FilesReceived     int             `json:"files_received"`
	FilesScanned      int             `json:"files_scanned"`
	Statements        int             `json:"statements"`
	ChangedStatements int             `json:"changed_statements"`
	Violations        []ScanViolation `json:"violations"`
	Renames           []DiffRename    `json:"renames,omitempty"`
	Errors            []string        `json:"errors,omitempty"`
	CacheHits         int             `json:"cache_hits"`
	CacheMisses       int             `json:"cache_misses"`
	ScanMillis        float64         `json:"scan_millis"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	b := sv.cur.Load()
	resp := map[string]any{
		"status":     "ok",
		"lang":       b.sys.Config().Lang.String(),
		"patterns":   len(b.sys.Patterns),
		"pairs":      b.sys.Pairs.Len(),
		"classifier": b.sys.HasClassifier(),
		"knowledge":  b.info.Summary,
	}
	if b.info.Format != "" {
		resp["knowledge_format"] = b.info.Format
		resp["knowledge_format_version"] = b.info.FormatVersion
	}
	if b.info.ContentHash != "" {
		resp["knowledge_hash"] = b.info.ContentHash
	}
	if !b.info.LoadedAt.IsZero() {
		resp["knowledge_loaded_at"] = b.info.LoadedAt.UTC().Format(time.RFC3339Nano)
	}
	sv.writeJSON(w, http.StatusOK, resp)
}

// gate runs the shared request admission path: method check, then the
// in-flight semaphore. On success the caller must invoke the returned
// release function when the request is done. A bounded semaphore instead
// of a queue means saturation costs the client one cheap round trip, not
// an unbounded wait, and the daemon's memory stays flat under load.
func (sv *Server) gate(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		sv.fail(w, http.StatusMethodNotAllowed, "POST required")
		return nil, false
	}
	select {
	case sv.inflight <- struct{}{}:
		sv.gInflight.Add(1)
		return func() {
			<-sv.inflight
			sv.gInflight.Add(-1)
		}, true
	default:
		statShed.Add(1)
		sv.mShed.Inc()
		w.Header().Set("Retry-After", "1")
		sv.fail(w, http.StatusTooManyRequests,
			fmt.Sprintf("server at capacity (%d scans in flight); retry later", sv.cfg.MaxInFlight))
		return nil, false
	}
}

// readJSON decodes the size-capped request body into v, answering 413 or
// 400 itself; it reports whether the caller should proceed.
func (sv *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, sv.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			sv.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", sv.cfg.MaxBodyBytes))
			return false
		}
		sv.fail(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// resolveLang validates an optional request language against the
// bundle's loaded knowledge, answering 400 on mismatch.
func (sv *Server) resolveLang(b *bundle, w http.ResponseWriter, reqLang string) (ast.Language, bool) {
	lang := b.sys.Config().Lang
	if reqLang == "" {
		return lang, true
	}
	got, err := ast.ParseLanguage(reqLang)
	if err != nil {
		sv.fail(w, http.StatusBadRequest, err.Error())
		return lang, false
	}
	if got != lang {
		sv.fail(w, http.StatusBadRequest, fmt.Sprintf(
			"knowledge is for %v, request is %v", lang, got))
		return lang, false
	}
	return lang, true
}

// traced wraps the request context in a span tree when the flight
// recorder is on. The trace id is the request id, so a slow request
// found in the access log can be pulled up on /debug/traces by the same
// id.
func (sv *Server) traced(ctx context.Context, root string, files int) (context.Context, *obs.Trace) {
	if sv.recorder == nil {
		return ctx, nil
	}
	ctx, tr := obs.NewTrace(ctx, root, obs.RequestID(ctx))
	tr.Root().SetAttrInt("files_received", files)
	return ctx, tr
}

// finish dispatches the analysis outcome shared by both endpoints:
// client cancels are logged and dropped without error accounting,
// deadlines surface as 503, other errors as 500, and — only on success —
// the request's trace is recorded (on timeout/cancel the abandoned
// goroutine may still be writing spans, so those traces are dropped
// rather than exported mid-write). It reports whether the caller should
// write its 200 response.
func (sv *Server) finish(w http.ResponseWriter, r *http.Request, tr *obs.Trace, err error) bool {
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// The client went away; nobody is reading the response.
			// A disconnect is not a server error and must not trip
			// error alerts.
			statCanceled.Add(1)
			sv.mCanceled.Inc()
			sv.errlog.Printf("serve: scan canceled by client (request %s)", obs.RequestID(r.Context()))
		case errors.Is(err, context.DeadlineExceeded):
			sv.mTimeouts.Inc()
			sv.fail(w, http.StatusServiceUnavailable, "scan timed out")
		default:
			sv.fail(w, http.StatusInternalServerError, err.Error())
		}
		return false
	}
	if tr != nil {
		tr.Finish()
		sv.recorder.Add(tr)
	}
	return true
}

func (sv *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	statRequests.Add(1)
	sv.mRequests.Inc()
	start := time.Now()
	defer func() { sv.hRequest.Since(start) }()

	release, ok := sv.gate(w, r)
	if !ok {
		return
	}
	defer release()

	// Capture the serving bundle once: the whole request — language
	// check, scan, classify, cache — runs against this knowledge even if
	// a reload swaps the current bundle mid-flight.
	b := sv.cur.Load()

	var req ScanRequest
	if !sv.readJSON(w, r, &req) {
		return
	}
	lang, ok := sv.resolveLang(b, w, req.Lang)
	if !ok {
		return
	}
	files := req.Files
	if req.Source != "" {
		path := req.Path
		if path == "" {
			path = "snippet" + extFor(lang)
		}
		files = append([]ScanFile{{Path: path, Source: req.Source}}, files...)
	}
	if len(files) == 0 {
		sv.fail(w, http.StatusBadRequest, `provide "source" or "files"`)
		return
	}

	ctx, tr := sv.traced(r.Context(), "scan_request", len(files))
	resp, err := run(sv, ctx, func(ctx context.Context) *ScanResponse {
		return sv.analyze(ctx, b, lang, files, req.All)
	})
	if !sv.finish(w, r, tr, err) {
		return
	}
	sv.writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	statRequests.Add(1)
	sv.mDiffReqs.Inc()
	start := time.Now()
	defer func() { sv.hRequest.Since(start) }()

	release, ok := sv.gate(w, r)
	if !ok {
		return
	}
	defer release()

	// Same bundle-capture discipline as handleScan.
	b := sv.cur.Load()

	var req DiffRequest
	if !sv.readJSON(w, r, &req) {
		return
	}
	lang, ok := sv.resolveLang(b, w, req.Lang)
	if !ok {
		return
	}
	if len(req.Files) == 0 {
		sv.fail(w, http.StatusBadRequest, `provide "files" with before/after versions`)
		return
	}
	pairs := make([]core.DiffFile, 0, len(req.Files))
	for _, f := range req.Files {
		if f.Path == "" {
			sv.fail(w, http.StatusBadRequest, `every diff file needs a "path"`)
			return
		}
		after := f.After
		if f.Patch != "" {
			if f.After != "" {
				sv.fail(w, http.StatusBadRequest,
					fmt.Sprintf("%s: provide either %q or %q, not both", f.Path, "after", "patch"))
				return
			}
			applied, err := udiff.Apply(f.Before, f.Patch)
			if err != nil {
				sv.fail(w, http.StatusBadRequest, fmt.Sprintf("%s: %v", f.Path, err))
				return
			}
			after = applied
		}
		pairs = append(pairs, core.DiffFile{
			Repo: "request", Path: f.Path, Before: f.Before, After: after,
		})
	}

	ctx, tr := sv.traced(r.Context(), "diff_request", len(pairs))
	resp, err := run(sv, ctx, func(ctx context.Context) *DiffResponse {
		return sv.analyzeDiff(ctx, b, lang, pairs, req.All)
	})
	if !sv.finish(w, r, tr, err) {
		return
	}
	sv.writeJSON(w, http.StatusOK, resp)
}

// errAnalysisPanic is the sanitized client-facing error for a contained
// analyzer panic: the panic value and stack go to the error log with the
// request id, never over the wire.
var errAnalysisPanic = errors.New("internal error analyzing request")

// run executes one analysis pipeline bounded by the configured timeout.
// The work runs in a helper goroutine so a stuck analysis cannot pin the
// handler past its deadline (the goroutine finishes in the background;
// the system has no unbounded analyses, so this is a latency bound, not
// a leak risk). The goroutine recovers its own panics: it runs outside
// net/http's per-connection recover, so an uncontained panic here —
// ScanFiles, DiffFiles, Explain, Dedup, the classifier — would kill the
// whole daemon, not just the request.
func run[T any](sv *Server, ctx context.Context, fn func(context.Context) T) (T, error) {
	ctx, cancel := context.WithTimeout(ctx, sv.cfg.ScanTimeout)
	defer cancel()

	type outcome struct {
		resp T
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				statPanics.Add(1)
				sv.mPanics.Inc()
				sv.errlog.Printf("serve: scan panic (request %s): %v\n%s",
					obs.RequestID(ctx), rec, debug.Stack())
				done <- outcome{err: errAnalysisPanic}
			}
		}()
		done <- outcome{resp: fn(ctx)}
	}()

	select {
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	case o := <-done:
		return o.resp, o.err
	}
}

// doAnalyze is the real /v1/scan pipeline: scan the files against the
// knowledge (the core scan path parses per file, consulting the cache
// first), then classify the violations. Each stage is a span under the
// request's trace (when the flight recorder is on) and feeds its latency
// histogram either way.
func (sv *Server) doAnalyze(ctx context.Context, b *bundle, lang ast.Language, files []ScanFile, all bool) *ScanResponse {
	start := time.Now()
	resp := &ScanResponse{
		Lang:          lang.String(),
		FilesReceived: len(files),
		Violations:    []ScanViolation{},
	}

	inputs := make([]*core.InputFile, 0, len(files))
	for _, f := range files {
		inputs = append(inputs, &core.InputFile{Repo: "request", Path: f.Path, Source: f.Source})
	}

	stage := time.Now()
	sctx, scanSpan := obs.StartSpan(ctx, "scan")
	res := b.sys.ScanFilesCtx(sctx, inputs)
	scanSpan.SetAttrInt("cache_hits", res.CacheHits)
	scanSpan.SetAttrInt("cache_misses", res.CacheMisses)
	scanSpan.End()
	sv.hScan.Since(stage)
	sv.hParse.Observe(res.Timings.Parse)
	sv.hProcess.Observe(res.Timings.Process)
	sv.hMatch.Observe(res.Timings.Match)
	resp.FilesScanned = res.FilesParsed
	resp.Statements = res.Statements
	resp.CacheHits = res.CacheHits
	resp.CacheMisses = res.CacheMisses
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	statScans.Add(1)
	sv.mScans.Inc()
	statViolations.Add(int64(len(res.Violations)))
	sv.mViol.Add(int64(len(res.Violations)))

	stage = time.Now()
	_, classifySpan := obs.StartSpan(ctx, "classify")
	for _, v := range res.Violations {
		classified := b.sys.ClassifyIn(res.Stats, v)
		if !classified && !all {
			continue
		}
		if classified {
			statReported.Add(1)
			sv.mReported.Inc()
		}
		resp.Violations = append(resp.Violations, renderViolation(v, classified))
	}
	classifySpan.SetAttrInt("violations", len(res.Violations))
	classifySpan.SetAttrInt("reported", len(resp.Violations))
	classifySpan.End()
	sv.hClassify.Since(stage)

	resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
	statScanNanos.Add(time.Since(start).Nanoseconds())
	return resp
}

// doAnalyzeDiff is the real /v1/diff pipeline: diff-scan the file pairs
// (both sides served from the per-file cache when possible), classify
// the introduced violations against the after side's statistics, and
// attach the rename report.
func (sv *Server) doAnalyzeDiff(ctx context.Context, b *bundle, lang ast.Language, files []core.DiffFile, all bool) *DiffResponse {
	start := time.Now()
	resp := &DiffResponse{
		Lang:          lang.String(),
		FilesReceived: len(files),
		Violations:    []ScanViolation{},
	}

	stage := time.Now()
	dctx, diffSpan := obs.StartSpan(ctx, "diff")
	res := b.sys.DiffFilesCtx(dctx, files)
	diffSpan.SetAttrInt("cache_hits", res.CacheHits)
	diffSpan.SetAttrInt("cache_misses", res.CacheMisses)
	diffSpan.SetAttrInt("changed", res.Changed)
	diffSpan.End()
	sv.hDiff.Since(stage)
	sv.hParse.Observe(res.Timings.Parse)
	resp.FilesScanned = res.FilesParsed
	resp.Statements = res.Statements
	resp.ChangedStatements = res.Changed
	resp.CacheHits = res.CacheHits
	resp.CacheMisses = res.CacheMisses
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	sv.mViol.Add(int64(len(res.Introduced)))
	sv.mDiffViol.Add(int64(len(res.Introduced)))

	stage = time.Now()
	_, classifySpan := obs.StartSpan(ctx, "classify")
	for _, v := range res.Introduced {
		classified := b.sys.ClassifyIn(res.Stats, v)
		if !classified && !all {
			continue
		}
		if classified {
			statReported.Add(1)
			sv.mReported.Inc()
		}
		resp.Violations = append(resp.Violations, renderViolation(v, classified))
	}
	classifySpan.SetAttrInt("violations", len(res.Introduced))
	classifySpan.SetAttrInt("reported", len(resp.Violations))
	classifySpan.End()
	sv.hClassify.Since(stage)

	for _, rn := range res.Renames {
		resp.Renames = append(resp.Renames, DiffRename{
			Path: rn.Path, Before: rn.Before, After: rn.After, KnownPair: rn.KnownPair,
		})
	}

	resp.ScanMillis = float64(time.Since(start).Microseconds()) / 1000
	statScanNanos.Add(time.Since(start).Nanoseconds())
	return resp
}

// renderViolation converts one core violation into its wire form.
func renderViolation(v *core.Violation, classified bool) ScanViolation {
	out := ScanViolation{
		Path:        v.Stmt.Path,
		Line:        v.Stmt.Line,
		SourceLine:  v.Stmt.SourceLine,
		Original:    v.Detail.Original,
		Suggested:   v.Detail.Suggested,
		PatternType: v.Pattern.Type.String(),
		Classified:  classified,
	}
	if from, to, ok := v.SuggestFixedName(); ok {
		out.Fix = from + " -> " + to
	}
	return out
}

// fail writes an error response, accounting it as a client error (4xx)
// or server error (5xx).
func (sv *Server) fail(w http.ResponseWriter, code int, msg string) {
	if code >= 500 {
		statServerError.Add(1)
	} else {
		statBadRequest.Add(1)
	}
	sv.writeJSON(w, code, errorResponse{Error: msg})
}

// writeJSON writes a JSON response, counts the status on /metrics, and
// logs (rather than ignores) encode failures — by that point the status
// line is sent, so the error cannot reach the client.
func (sv *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	sv.metrics.Counter(fmt.Sprintf("namer_http_responses_total{status=%q}", strconv.Itoa(code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		sv.errlog.Printf("serve: writing %d response: %v", code, err)
	}
}

// extFor returns the snippet filename extension for a language.
func extFor(lang ast.Language) string {
	switch lang {
	case ast.Java:
		return ".java"
	case ast.Go:
		return ".go"
	}
	return ".py"
}
