package ml

import (
	"encoding/json"
	"math"
	"testing"
)

func TestPipelineExportRestore(t *testing.T) {
	X, y := synthData(120, 21)
	p := &Pipeline{UsePCA: true, NewModel: func() Classifier {
		return &LinearSVM{Epochs: 80, Seed: 21}
	}}
	p.Fit(X, y)

	st, err := p.Export()
	if err != nil {
		t.Fatal(err)
	}
	// JSON round trip, as the knowledge file does.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 PipelineState
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	q := Restore(&st2)

	for i, x := range X {
		if p.Predict(x) != q.Predict(x) {
			t.Fatalf("prediction diverged at sample %d", i)
		}
		if math.Abs(p.Decision(x)-q.Decision(x)) > 1e-9 {
			t.Fatalf("decision value diverged at sample %d: %g vs %g",
				i, p.Decision(x), q.Decision(x))
		}
	}
}

func TestExportWithoutPCA(t *testing.T) {
	X, y := synthData(80, 22)
	p := &Pipeline{NewModel: func() Classifier {
		return &LogisticRegression{Epochs: 60, Seed: 22}
	}}
	p.Fit(X, y)
	st, err := p.Export()
	if err != nil {
		t.Fatal(err)
	}
	q := Restore(st)
	for _, x := range X[:20] {
		if p.Predict(x) != q.Predict(x) {
			t.Fatal("prediction diverged without PCA")
		}
	}
}

func TestLinearModelInterfaces(t *testing.T) {
	m := &LinearModel{W: []float64{1, -1}, B: 0.5}
	if m.Predict([]float64{1, 0}) != 1 {
		t.Error("positive decision should predict 1")
	}
	if m.Predict([]float64{0, 2}) != 0 {
		t.Error("negative decision should predict 0")
	}
	if len(m.Weights()) != 2 || m.Bias() != 0.5 {
		t.Error("weight accessors wrong")
	}
	m.Fit(nil, nil) // no-op must not panic
}
