package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthData builds a linearly separable-ish two-class dataset.
func synthData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []int
	for i := 0; i < n; i++ {
		c := i % 2
		base := -1.5
		if c == 1 {
			base = 1.5
		}
		X = append(X, []float64{
			base + rng.NormFloat64(),
			2*base + rng.NormFloat64(),
			rng.NormFloat64(), // noise feature
		})
		y = append(y, c)
	}
	return X, y
}

func trainAccuracy(m Classifier, X [][]float64, y []int) float64 {
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func TestLinearSVM(t *testing.T) {
	X, y := synthData(200, 7)
	m := &LinearSVM{Epochs: 100, Seed: 7}
	m.Fit(X, y)
	if acc := trainAccuracy(m, X, y); acc < 0.9 {
		t.Errorf("SVM train accuracy = %.2f, want >= 0.9", acc)
	}
	if len(m.Weights()) != 3 {
		t.Error("weights missing")
	}
}

func TestLogisticRegression(t *testing.T) {
	X, y := synthData(200, 8)
	m := &LogisticRegression{Epochs: 100, Seed: 8}
	m.Fit(X, y)
	if acc := trainAccuracy(m, X, y); acc < 0.9 {
		t.Errorf("logreg train accuracy = %.2f, want >= 0.9", acc)
	}
	p := m.Probability(X[0])
	if p < 0 || p > 1 {
		t.Errorf("probability out of range: %f", p)
	}
}

func TestLDA(t *testing.T) {
	X, y := synthData(200, 9)
	m := &LDA{}
	m.Fit(X, y)
	if acc := trainAccuracy(m, X, y); acc < 0.9 {
		t.Errorf("LDA train accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	var s Standardizer
	s.Fit(X)
	Z := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		mean, variance := 0.0, 0.0
		for _, z := range Z {
			mean += z[j]
		}
		mean /= 3
		for _, z := range Z {
			variance += (z[j] - mean) * (z[j] - mean)
		}
		variance /= 3
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Errorf("feature %d: mean=%g var=%g", j, mean, variance)
		}
	}
	// Constant feature does not divide by zero.
	var s2 Standardizer
	s2.Fit([][]float64{{5}, {5}, {5}})
	out := s2.Transform([]float64{5})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Error("constant feature produced NaN/Inf")
	}
}

func TestJacobiEigen(t *testing.T) {
	// Known symmetric matrix: eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := JacobiEigen(a, 50)
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// A·v = λ·v for the first eigenvector.
	v := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	av := []float64{2*v[0] + v[1], v[0] + 2*v[1]}
	for i := range v {
		if math.Abs(av[i]-3*v[i]) > 1e-9 {
			t.Errorf("A·v != λ·v at %d: %g vs %g", i, av[i], 3*v[i])
		}
	}
}

func TestInvert(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv := Invert(a, 0)
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Errorf("A·A⁻¹[%d][%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
}

func TestPCAReducesAndReconstructs(t *testing.T) {
	// Data on a line in 3D: one dominant component.
	var X [][]float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tv := rng.NormFloat64()
		X = append(X, []float64{tv, 2 * tv, -tv + 0.01*rng.NormFloat64()})
	}
	p := PCA{K: 1}
	p.Fit(X)
	z := p.Transform(X[0])
	if len(z) != 1 {
		t.Fatalf("PCA output dim = %d, want 1", len(z))
	}
	// BackProject shape.
	w := p.BackProject([]float64{1})
	if len(w) != 3 {
		t.Errorf("BackProject dim = %d, want 3", len(w))
	}
}

func TestPipelineWithPCA(t *testing.T) {
	X, y := synthData(200, 11)
	p := &Pipeline{UsePCA: true, PCAK: 2, NewModel: func() Classifier {
		return &LinearSVM{Epochs: 100, Seed: 11}
	}}
	p.Fit(X, y)
	correct := 0
	for i, x := range X {
		if p.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Errorf("pipeline accuracy = %.2f", acc)
	}
	w := p.FeatureWeights()
	if len(w) != 3 {
		t.Fatalf("FeatureWeights dim = %d, want 3", len(w))
	}
	// The informative features should outweigh the noise feature.
	if math.Abs(w[2]) > math.Abs(w[0])+math.Abs(w[1]) {
		t.Errorf("noise feature dominates: %v", w)
	}
}

func TestEvaluate(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	gold := []int{1, 0, 0, 1, 1}
	m := Evaluate(pred, gold)
	if math.Abs(m.Accuracy-0.6) > 1e-9 {
		t.Errorf("accuracy = %g", m.Accuracy)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-9 {
		t.Errorf("precision = %g", m.Precision)
	}
	if math.Abs(m.Recall-2.0/3.0) > 1e-9 {
		t.Errorf("recall = %g", m.Recall)
	}
	if m.F1 <= 0 {
		t.Errorf("f1 = %g", m.F1)
	}
}

func TestEvaluateProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		pred := make([]int, n)
		gold := make([]int, n)
		for i := 0; i < n; i++ {
			pred[i] = int(raw[i] % 2)
			gold[i] = int(raw[n+i] % 2)
		}
		m := Evaluate(pred, gold)
		in01 := func(v float64) bool { return v >= 0 && v <= 1.000001 }
		return in01(m.Accuracy) && in01(m.Precision) && in01(m.Recall) && in01(m.F1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossValidate(t *testing.T) {
	X, y := synthData(150, 13)
	mk := func() *Pipeline {
		return &Pipeline{NewModel: func() Classifier { return &LinearSVM{Epochs: 60, Seed: 13} }}
	}
	m := CrossValidate(mk, X, y, 10, 0.8, 13)
	if m.Accuracy < 0.85 {
		t.Errorf("cross-val accuracy = %.2f", m.Accuracy)
	}
	// Determinism.
	m2 := CrossValidate(mk, X, y, 10, 0.8, 13)
	if m != m2 {
		t.Error("cross-validation is not deterministic for a fixed seed")
	}
}

func TestSelectModel(t *testing.T) {
	X, y := synthData(150, 17)
	candidates := map[string]func() *Pipeline{
		"svm": func() *Pipeline {
			return &Pipeline{NewModel: func() Classifier { return &LinearSVM{Epochs: 60, Seed: 17} }}
		},
		"logreg": func() *Pipeline {
			return &Pipeline{NewModel: func() Classifier { return &LogisticRegression{Epochs: 60, Seed: 17} }}
		},
		"lda": func() *Pipeline {
			return &Pipeline{NewModel: func() Classifier { return &LDA{} }}
		},
	}
	best, results := SelectModel(candidates, X, y, 5, 17)
	if len(results) != 3 {
		t.Fatalf("results = %d models", len(results))
	}
	if _, ok := results[best]; !ok {
		t.Errorf("best model %q missing from results", best)
	}
}

func TestMatrixOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g", i, j, c.At(i, j))
			}
		}
	}
	at := a.T()
	if at.At(0, 1) != 3 {
		t.Error("transpose wrong")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("dot wrong")
	}
}
