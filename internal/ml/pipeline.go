package ml

// Pipeline chains feature standardization, PCA, and a linear classifier —
// the exact setup of §5.1 ("feature standardization and principal
// component analysis as a preprocessing step").
type Pipeline struct {
	UsePCA   bool
	PCAK     int // components to keep (0 = all)
	NewModel func() Classifier
	std      Standardizer
	pca      PCA
	model    Classifier
}

// Fit fits the preprocessing on X and trains the classifier.
func (p *Pipeline) Fit(X [][]float64, y []int) {
	p.std = Standardizer{}
	p.std.Fit(X)
	Z := p.std.TransformAll(X)
	if p.UsePCA {
		p.pca = PCA{K: p.PCAK}
		p.pca.Fit(Z)
		Z = p.pca.TransformAll(Z)
	}
	p.model = p.NewModel()
	p.model.Fit(Z, y)
}

func (p *Pipeline) transform(x []float64) []float64 {
	z := p.std.Transform(x)
	if p.UsePCA {
		z = p.pca.Transform(z)
	}
	return z
}

// Predict classifies one raw (untransformed) sample.
func (p *Pipeline) Predict(x []float64) int { return p.model.Predict(p.transform(x)) }

// Decision returns the signed decision value for one raw sample.
func (p *Pipeline) Decision(x []float64) float64 { return p.model.Decision(p.transform(x)) }

// FeatureWeights maps the trained linear model's weights back to the
// original (standardized) feature space, undoing the PCA rotation. This is
// what Table 9 reports. Returns nil when the model is not linear.
func (p *Pipeline) FeatureWeights() []float64 {
	wm, ok := p.model.(WeightedModel)
	if !ok {
		return nil
	}
	w := wm.Weights()
	if p.UsePCA {
		w = p.pca.BackProject(w)
	}
	out := make([]float64, len(w))
	copy(out, w)
	return out
}

// Model returns the trained classifier.
func (p *Pipeline) Model() Classifier { return p.model }
