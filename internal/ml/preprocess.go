package ml

import "math"

// Standardizer rescales each feature to zero mean and unit variance, the
// preprocessing step of §5.1.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// Fit estimates per-feature means and standard deviations.
func (s *Standardizer) Fit(X [][]float64) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	s.Mean = make([]float64, d)
	s.Std = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
}

// Transform standardizes one sample.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes a dataset.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// PCA projects samples onto the top-k principal components of the training
// covariance, the second preprocessing step of §5.1.
type PCA struct {
	K          int
	Components *Matrix // d × k, columns are principal directions
	Mean       []float64
}

// Fit computes the principal components of X. K <= 0 or K > d keeps all
// components.
func (p *PCA) Fit(X [][]float64) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	if p.K <= 0 || p.K > d {
		p.K = d
	}
	p.Mean = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			p.Mean[j] += v
		}
	}
	for j := range p.Mean {
		p.Mean[j] /= float64(len(X))
	}
	cov := Covariance(X)
	_, vecs := JacobiEigen(cov, 60)
	p.Components = NewMatrix(d, p.K)
	for i := 0; i < d; i++ {
		for j := 0; j < p.K; j++ {
			p.Components.Set(i, j, vecs.At(i, j))
		}
	}
}

// Transform projects one sample.
func (p *PCA) Transform(x []float64) []float64 {
	out := make([]float64, p.K)
	for j := 0; j < p.K; j++ {
		s := 0.0
		for i := range x {
			s += (x[i] - p.Mean[i]) * p.Components.At(i, j)
		}
		out[j] = s
	}
	return out
}

// TransformAll projects a dataset.
func (p *PCA) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = p.Transform(row)
	}
	return out
}

// BackProject maps a weight vector from component space back to the
// original feature space: w_orig = C · w_pca. Used to report per-feature
// classifier weights (Table 9).
func (p *PCA) BackProject(w []float64) []float64 {
	d := p.Components.Rows
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		for j := 0; j < p.K && j < len(w); j++ {
			out[i] += p.Components.At(i, j) * w[j]
		}
	}
	return out
}
