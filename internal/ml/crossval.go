package ml

import "math/rand"

// Metrics are the binary-classification quality measures reported in §5.2
// and §5.3.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate computes metrics from predictions and gold labels (class 1 is
// the positive class).
func Evaluate(pred, gold []int) Metrics {
	var tp, fp, fn, correct int
	for i := range gold {
		if pred[i] == gold[i] {
			correct++
		}
		switch {
		case pred[i] == 1 && gold[i] == 1:
			tp++
		case pred[i] == 1 && gold[i] == 0:
			fp++
		case pred[i] == 0 && gold[i] == 1:
			fn++
		}
	}
	m := Metrics{}
	if len(gold) > 0 {
		m.Accuracy = float64(correct) / float64(len(gold))
	}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// CrossValidate repeats a random train/test split (trainFrac of samples
// train, the rest test) `repeats` times, training a fresh pipeline each
// round, and returns the averaged metrics. The paper uses 80/20 splits
// repeated 30 times.
func CrossValidate(newPipeline func() *Pipeline, X [][]float64, y []int,
	repeats int, trainFrac float64, seed int64) Metrics {

	if repeats <= 0 {
		repeats = 30
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	rng := rand.New(rand.NewSource(seed))
	var sum Metrics
	for r := 0; r < repeats; r++ {
		perm := rng.Perm(len(X))
		cut := int(trainFrac * float64(len(X)))
		if cut < 1 {
			cut = 1
		}
		if cut >= len(X) {
			cut = len(X) - 1
		}
		var trX, teX [][]float64
		var trY, teY []int
		for i, idx := range perm {
			if i < cut {
				trX = append(trX, X[idx])
				trY = append(trY, y[idx])
			} else {
				teX = append(teX, X[idx])
				teY = append(teY, y[idx])
			}
		}
		p := newPipeline()
		p.Fit(trX, trY)
		pred := make([]int, len(teX))
		for i, x := range teX {
			pred[i] = p.Predict(x)
		}
		m := Evaluate(pred, teY)
		sum.Accuracy += m.Accuracy
		sum.Precision += m.Precision
		sum.Recall += m.Recall
		sum.F1 += m.F1
	}
	n := float64(repeats)
	return Metrics{
		Accuracy:  sum.Accuracy / n,
		Precision: sum.Precision / n,
		Recall:    sum.Recall / n,
		F1:        sum.F1 / n,
	}
}

// SelectModel runs cross-validation for each candidate and returns the
// name of the best model by F1 (the paper's model-selection procedure,
// which picked the linear SVM). Candidates map names to pipeline factories.
func SelectModel(candidates map[string]func() *Pipeline, X [][]float64, y []int,
	repeats int, seed int64) (string, map[string]Metrics) {

	results := make(map[string]Metrics, len(candidates))
	bestName, bestF1 := "", -1.0
	for name, mk := range candidates {
		m := CrossValidate(mk, X, y, repeats, 0.8, seed)
		results[name] = m
		if m.F1 > bestF1 || (m.F1 == bestF1 && name < bestName) {
			bestName, bestF1 = name, m.F1
		}
	}
	return bestName, results
}
