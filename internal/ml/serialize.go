package ml

import "fmt"

// PipelineState is the serializable form of a trained Pipeline: the
// preprocessing statistics and the linear decision function.
type PipelineState struct {
	Mean    []float64   `json:"mean"`
	Std     []float64   `json:"std"`
	UsePCA  bool        `json:"use_pca"`
	PCAMean []float64   `json:"pca_mean,omitempty"`
	PCACols [][]float64 `json:"pca_components,omitempty"` // d rows × k cols
	Weights []float64   `json:"weights"`
	Bias    float64     `json:"bias"`
}

// LinearModel is a frozen linear classifier restored from a
// PipelineState.
type LinearModel struct {
	W []float64
	B float64
}

// Fit is a no-op: LinearModel is always pre-trained.
func (m *LinearModel) Fit(X [][]float64, y []int) {}

// Decision returns w·x + b.
func (m *LinearModel) Decision(x []float64) float64 { return Dot(m.W, x) + m.B }

// Predict returns 1 when the decision value is positive.
func (m *LinearModel) Predict(x []float64) int {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// Weights returns the weight vector.
func (m *LinearModel) Weights() []float64 { return m.W }

// Bias returns the bias.
func (m *LinearModel) Bias() float64 { return m.B }

// Export captures a trained pipeline's state. It fails if the underlying
// model is not linear.
func (p *Pipeline) Export() (*PipelineState, error) {
	wm, ok := p.model.(WeightedModel)
	if !ok {
		return nil, fmt.Errorf("ml: model does not expose weights")
	}
	st := &PipelineState{
		Mean:    append([]float64(nil), p.std.Mean...),
		Std:     append([]float64(nil), p.std.Std...),
		UsePCA:  p.UsePCA,
		Weights: append([]float64(nil), wm.Weights()...),
		Bias:    wm.Bias(),
	}
	if p.UsePCA {
		st.PCAMean = append([]float64(nil), p.pca.Mean...)
		for i := 0; i < p.pca.Components.Rows; i++ {
			st.PCACols = append(st.PCACols, append([]float64(nil), p.pca.Components.Row(i)...))
		}
	}
	return st, nil
}

// Restore rebuilds a pipeline from exported state.
func Restore(st *PipelineState) *Pipeline {
	p := &Pipeline{UsePCA: st.UsePCA}
	p.std = Standardizer{Mean: st.Mean, Std: st.Std}
	if st.UsePCA {
		k := len(st.Weights)
		comp := NewMatrix(len(st.PCACols), k)
		for i, row := range st.PCACols {
			for j := 0; j < k && j < len(row); j++ {
				comp.Set(i, j, row[j])
			}
		}
		p.pca = PCA{K: k, Mean: st.PCAMean, Components: comp}
	}
	p.model = &LinearModel{W: st.Weights, B: st.Bias}
	return p
}
