// Package ml is a small, dependency-free machine-learning library backing
// the defect classifier of §4.2 and §5.1: feature standardization,
// principal component analysis, a linear support vector machine, logistic
// regression, linear discriminant analysis, and the cross-validation
// harness used for model selection. All training is deterministic given a
// seed.
package ml

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (which must be equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("ml: ragged rows: %d vs %d", len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("ml: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Covariance returns the sample covariance matrix of the rows of X.
func Covariance(X [][]float64) *Matrix {
	n := len(X)
	if n == 0 {
		return NewMatrix(0, 0)
	}
	d := len(X[0])
	mean := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	denom := float64(n - 1)
	if denom <= 0 {
		denom = 1
	}
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov.Data[i*d+j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) / denom
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix with
// the cyclic Jacobi method, returning eigenvalues and the matrix whose
// columns are the corresponding eigenvectors, sorted by descending
// eigenvalue.
func JacobiEigen(a *Matrix, maxSweeps int) ([]float64, *Matrix) {
	n := a.Rows
	if n != a.Cols {
		panic("ml: JacobiEigen needs a square matrix")
	}
	A := a.Clone()
	V := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		V.Set(i, i, 1)
	}
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += A.At(i, j) * A.At(i, j)
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := A.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := A.At(p, p), A.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := A.At(k, p), A.At(k, q)
					A.Set(k, p, c*akp-s*akq)
					A.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := A.At(p, k), A.At(q, k)
					A.Set(p, k, c*apk-s*aqk)
					A.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := V.At(k, p), V.At(k, q)
					V.Set(k, p, c*vkp-s*vkq)
					V.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = A.At(i, i)
	}
	// Sort by descending eigenvalue, permuting eigenvector columns.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for c, idx := range order {
		sortedVals[c] = vals[idx]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, c, V.At(r, idx))
		}
	}
	return sortedVals, sortedVecs
}

// Invert returns the inverse of a square matrix via Gauss–Jordan
// elimination with partial pivoting, adding ridge*I for stability.
func Invert(a *Matrix, ridge float64) *Matrix {
	n := a.Rows
	if n != a.Cols {
		panic("ml: Invert needs a square matrix")
	}
	aug := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if i == j {
				v += ridge
			}
			aug.Set(i, j, v)
		}
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug.At(r, col)) > math.Abs(aug.At(pivot, col)) {
				pivot = r
			}
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				pv, cv := aug.At(pivot, j), aug.At(col, j)
				aug.Set(pivot, j, cv)
				aug.Set(col, j, pv)
			}
		}
		pv := aug.At(col, col)
		if math.Abs(pv) < 1e-12 {
			pv = 1e-12
		}
		for j := 0; j < 2*n; j++ {
			aug.Set(col, j, aug.At(col, j)/pv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Set(i, j, aug.At(i, n+j))
		}
	}
	return inv
}
