package ml

import (
	"math"
	"math/rand"
)

// Classifier is a binary classifier over float feature vectors with labels
// 0 (false positive) and 1 (true naming issue).
type Classifier interface {
	Fit(X [][]float64, y []int)
	Predict(x []float64) int
	// Decision returns the signed decision value (positive predicts 1).
	Decision(x []float64) float64
}

// WeightedModel is implemented by linear models that expose their weight
// vector (used for Table 9).
type WeightedModel interface {
	Weights() []float64
	Bias() float64
}

// LinearSVM is a linear support vector machine trained with the Pegasos
// stochastic subgradient method on the hinge loss.
type LinearSVM struct {
	Lambda float64 // regularization (default 0.01)
	Epochs int     // passes over the data (default 200)
	Seed   int64

	w []float64
	b float64
}

// Fit trains the SVM.
func (m *LinearSVM) Fit(X [][]float64, y []int) {
	if len(X) == 0 {
		return
	}
	if m.Lambda <= 0 {
		m.Lambda = 0.01
	}
	if m.Epochs <= 0 {
		m.Epochs = 200
	}
	d := len(X[0])
	m.w = make([]float64, d)
	m.b = 0
	rng := rand.New(rand.NewSource(m.Seed + 1))
	t := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		perm := rng.Perm(len(X))
		for _, i := range perm {
			t++
			eta := 1 / (m.Lambda * float64(t))
			yi := float64(2*y[i] - 1) // {0,1} -> {-1,+1}
			margin := yi * (Dot(m.w, X[i]) + m.b)
			for j := range m.w {
				m.w[j] *= 1 - eta*m.Lambda
			}
			if margin < 1 {
				for j := range m.w {
					m.w[j] += eta * yi * X[i][j]
				}
				m.b += eta * yi
			}
		}
	}
}

// Decision returns w·x + b.
func (m *LinearSVM) Decision(x []float64) float64 { return Dot(m.w, x) + m.b }

// Predict returns 1 when the decision value is positive.
func (m *LinearSVM) Predict(x []float64) int {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// Weights returns the learned weight vector.
func (m *LinearSVM) Weights() []float64 { return m.w }

// Bias returns the learned bias.
func (m *LinearSVM) Bias() float64 { return m.b }

// LogisticRegression is an L2-regularized logistic regression trained by
// stochastic gradient descent.
type LogisticRegression struct {
	LR     float64 // learning rate (default 0.1)
	Lambda float64 // L2 regularization (default 1e-3)
	Epochs int     // default 200
	Seed   int64

	w []float64
	b float64
}

// Fit trains the model.
func (m *LogisticRegression) Fit(X [][]float64, y []int) {
	if len(X) == 0 {
		return
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.Lambda <= 0 {
		m.Lambda = 1e-3
	}
	if m.Epochs <= 0 {
		m.Epochs = 200
	}
	d := len(X[0])
	m.w = make([]float64, d)
	m.b = 0
	rng := rand.New(rand.NewSource(m.Seed + 2))
	for epoch := 0; epoch < m.Epochs; epoch++ {
		perm := rng.Perm(len(X))
		lr := m.LR / (1 + 0.01*float64(epoch))
		for _, i := range perm {
			p := sigmoid(Dot(m.w, X[i]) + m.b)
			g := p - float64(y[i])
			for j := range m.w {
				m.w[j] -= lr * (g*X[i][j] + m.Lambda*m.w[j])
			}
			m.b -= lr * g
		}
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Decision returns the logit.
func (m *LogisticRegression) Decision(x []float64) float64 { return Dot(m.w, x) + m.b }

// Predict returns 1 when the probability exceeds 0.5.
func (m *LogisticRegression) Predict(x []float64) int {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// Probability returns P(y=1 | x).
func (m *LogisticRegression) Probability(x []float64) float64 {
	return sigmoid(m.Decision(x))
}

// Weights returns the learned weight vector.
func (m *LogisticRegression) Weights() []float64 { return m.w }

// Bias returns the learned bias.
func (m *LogisticRegression) Bias() float64 { return m.b }

// LDA is two-class linear discriminant analysis with a shared (pooled)
// covariance estimate.
type LDA struct {
	Ridge float64 // covariance ridge (default 1e-6)

	w []float64
	b float64
}

// Fit estimates the discriminant direction w = Σ⁻¹(μ₁ − μ₀) and a
// threshold from the class means and priors.
func (m *LDA) Fit(X [][]float64, y []int) {
	if len(X) == 0 {
		return
	}
	if m.Ridge <= 0 {
		m.Ridge = 1e-6
	}
	d := len(X[0])
	mu := [2][]float64{make([]float64, d), make([]float64, d)}
	count := [2]int{}
	for i, row := range X {
		c := y[i]
		count[c]++
		for j, v := range row {
			mu[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			m.w = make([]float64, d)
			return
		}
		for j := range mu[c] {
			mu[c][j] /= float64(count[c])
		}
	}
	// Pooled within-class covariance.
	cov := NewMatrix(d, d)
	for i, row := range X {
		c := y[i]
		for a := 0; a < d; a++ {
			da := row[a] - mu[c][a]
			for b := a; b < d; b++ {
				cov.Data[a*d+b] += da * (row[b] - mu[c][b])
			}
		}
	}
	denom := float64(len(X) - 2)
	if denom <= 0 {
		denom = 1
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) / denom
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	inv := Invert(cov, m.Ridge)
	m.w = make([]float64, d)
	diff := make([]float64, d)
	for j := 0; j < d; j++ {
		diff[j] = mu[1][j] - mu[0][j]
	}
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			m.w[a] += inv.At(a, b) * diff[b]
		}
	}
	mid := make([]float64, d)
	for j := 0; j < d; j++ {
		mid[j] = (mu[0][j] + mu[1][j]) / 2
	}
	prior := math.Log(float64(count[1])/float64(len(X))) -
		math.Log(float64(count[0])/float64(len(X)))
	m.b = -Dot(m.w, mid) + prior
}

// Decision returns the discriminant value.
func (m *LDA) Decision(x []float64) float64 { return Dot(m.w, x) + m.b }

// Predict returns 1 when the discriminant is positive.
func (m *LDA) Predict(x []float64) int {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// Weights returns the discriminant direction.
func (m *LDA) Weights() []float64 { return m.w }

// Bias returns the threshold term.
func (m *LDA) Bias() float64 { return m.b }
