package javalang

import (
	"fmt"
	"strings"

	"namer/internal/ast"
)

// Parse parses Java source into a unified AST rooted at a Module node.
func Parse(src string) (*ast.Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var root *ast.Node
	err = p.recoverParse(func() {
		root = p.parseCompilationUnit()
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

type parser struct {
	toks []token
	pos  int
}

func (p *parser) recoverParse(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parseError); ok {
				err = pe
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek(k int) token {
	if p.pos+k < len(p.toks) {
		return p.toks[p.pos+k]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) fail(format string, args ...any) {
	panic(&parseError{p.cur().line, fmt.Sprintf(format, args...)})
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atKw(kw string) bool { return p.at(tokKeyword, kw) }
func (p *parser) atOp(op string) bool { return p.at(tokOp, op) }

func (p *parser) eat(k tokKind, text string) token {
	if !p.at(k, text) {
		p.fail("expected %s %q, got %s %q", k, text, p.cur().kind, p.cur().text)
	}
	return p.next()
}

func (p *parser) eatOp(op string) token { return p.eat(tokOp, op) }
func (p *parser) eatKw(kw string) token { return p.eat(tokKeyword, kw) }

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool { return p.accept(tokOp, op) }
func (p *parser) acceptKw(kw string) bool { return p.accept(tokKeyword, kw) }

func node(k ast.Kind, line int, children ...*ast.Node) *ast.Node {
	n := ast.NewNode(k, children...)
	n.Line = line
	return n
}

func leaf(k ast.Kind, text string, line int) *ast.Node {
	n := ast.NewLeaf(k, text)
	n.Line = line
	return n
}

// speculate runs fn with backtracking: if fn panics with a parse error, the
// position is restored and speculate returns nil.
func (p *parser) speculate(fn func() *ast.Node) *ast.Node {
	save := p.pos
	var out *ast.Node
	err := p.recoverParse(func() { out = fn() })
	if err != nil {
		p.pos = save
		return nil
	}
	return out
}

var primitiveTypes = map[string]bool{
	"boolean": true, "byte": true, "char": true, "short": true, "int": true,
	"long": true, "float": true, "double": true, "void": true, "var": true,
}

var modifierWords = map[string]bool{
	"public": true, "private": true, "protected": true, "static": true,
	"final": true, "abstract": true, "native": true, "synchronized": true,
	"transient": true, "volatile": true, "strictfp": true, "default": true,
	"const": true,
}

// parseCompilationUnit: [package] imports* typeDecl*
func (p *parser) parseCompilationUnit() *ast.Node {
	mod := node(ast.Module, 1)
	if p.atKw("package") {
		line := p.next().line
		name := p.parseQualifiedName()
		p.eatOp(";")
		mod.Add(node(ast.PackageDecl, line, leaf(ast.Ident, name, line)))
	}
	for p.atKw("import") {
		line := p.next().line
		p.acceptKw("static")
		name := p.parseQualifiedName()
		if p.acceptOp(".") {
			p.eatOp("*")
			name += ".*"
		}
		p.eatOp(";")
		mod.Add(node(ast.Import, line, node(ast.ImportAlias, line, leaf(ast.Ident, name, line))))
	}
	for !p.at(tokEOF, "") {
		if p.acceptOp(";") {
			continue
		}
		mod.Add(p.parseTypeDecl())
	}
	return mod
}

func (p *parser) parseQualifiedName() string {
	nm := p.eat(tokName, "").text
	for p.atOp(".") && p.peek(1).kind == tokName {
		p.next()
		nm += "." + p.next().text
	}
	return nm
}

// parseModifiers consumes modifier keywords and annotations, returning a
// Modifiers node (possibly empty).
func (p *parser) parseModifiers() *ast.Node {
	mods := node(ast.Modifiers, p.cur().line)
	for {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && modifierWords[t.text]:
			// `synchronized (expr)` is a statement, not a modifier.
			if t.text == "synchronized" && p.peek(1).kind == tokOp && p.peek(1).text == "(" {
				return mods
			}
			p.next()
			mods.Add(node(ast.Modifier, t.line, leaf(ast.Ident, t.text, t.line)))
		case t.kind == tokOp && t.text == "@":
			p.next()
			name := p.parseQualifiedName()
			ann := node(ast.Annotation, t.line, leaf(ast.Ident, name, t.line))
			if p.atOp("(") {
				p.skipBalanced("(", ")")
			}
			mods.Add(ann)
		default:
			return mods
		}
	}
}

// skipBalanced consumes a balanced token run from open to close.
func (p *parser) skipBalanced(open, close string) {
	p.eatOp(open)
	depth := 1
	for depth > 0 {
		t := p.next()
		if t.kind == tokEOF {
			p.fail("unexpected EOF skipping %s...%s", open, close)
		}
		if t.kind == tokOp {
			switch t.text {
			case open:
				depth++
			case close:
				depth--
			}
		}
	}
}

func (p *parser) parseTypeDecl() *ast.Node {
	mods := p.parseModifiers()
	switch {
	case p.atKw("class"):
		return p.parseClassDecl(mods)
	case p.atKw("interface"):
		return p.parseInterfaceDecl(mods)
	case p.atKw("enum"):
		return p.parseEnumDecl(mods)
	}
	p.fail("expected type declaration, got %q", p.cur().text)
	return nil
}

// skipTypeParams consumes a generic parameter/argument list starting at '<'.
func (p *parser) skipTypeParams() {
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			p.fail("unexpected EOF in type parameters")
		}
		p.next()
		if t.kind == tokOp {
			switch t.text {
			case "<", "<<":
				depth += len(t.text)
			case ">":
				depth--
			case ">>":
				depth -= 2
			case ">>>":
				depth -= 3
			}
			if depth <= 0 {
				return
			}
		}
	}
}

func (p *parser) parseClassDecl(mods *ast.Node) *ast.Node {
	line := p.eatKw("class").line
	name := p.eat(tokName, "")
	cls := node(ast.ClassDef, line)
	if len(mods.Children) > 0 {
		cls.Add(mods)
	}
	cls.Add(leaf(ast.Ident, name.text, name.line))
	if p.atOp("<") {
		p.skipTypeParams()
	}
	bases := node(ast.Bases, line)
	if p.acceptKw("extends") {
		bases.Add(p.parseType())
	}
	if p.acceptKw("implements") {
		for {
			bases.Add(p.parseType())
			if !p.acceptOp(",") {
				break
			}
		}
	}
	cls.Add(bases)
	cls.Add(p.parseClassBody(name.text))
	return cls
}

func (p *parser) parseInterfaceDecl(mods *ast.Node) *ast.Node {
	line := p.eatKw("interface").line
	name := p.eat(tokName, "")
	it := node(ast.InterfaceDef, line)
	if len(mods.Children) > 0 {
		it.Add(mods)
	}
	it.Add(leaf(ast.Ident, name.text, name.line))
	if p.atOp("<") {
		p.skipTypeParams()
	}
	bases := node(ast.Bases, line)
	if p.acceptKw("extends") {
		for {
			bases.Add(p.parseType())
			if !p.acceptOp(",") {
				break
			}
		}
	}
	it.Add(bases)
	it.Add(p.parseClassBody(name.text))
	return it
}

func (p *parser) parseEnumDecl(mods *ast.Node) *ast.Node {
	line := p.eatKw("enum").line
	name := p.eat(tokName, "")
	en := node(ast.EnumDef, line)
	if len(mods.Children) > 0 {
		en.Add(mods)
	}
	en.Add(leaf(ast.Ident, name.text, name.line))
	bases := node(ast.Bases, line)
	if p.acceptKw("implements") {
		for {
			bases.Add(p.parseType())
			if !p.acceptOp(",") {
				break
			}
		}
	}
	en.Add(bases)
	body := node(ast.Body, p.cur().line)
	p.eatOp("{")
	// Enum constants.
	for p.at(tokName, "") || p.atOp("@") {
		for p.atOp("@") {
			p.next()
			p.parseQualifiedName()
			if p.atOp("(") {
				p.skipBalanced("(", ")")
			}
		}
		if !p.at(tokName, "") {
			break
		}
		cn := p.next()
		konst := node(ast.FieldDecl, cn.line, node(ast.NameStore, cn.line, leaf(ast.Ident, cn.text, cn.line)))
		if p.atOp("(") {
			line := p.cur().line
			call := node(ast.Call, line, node(ast.NameLoad, cn.line, leaf(ast.Ident, cn.text, cn.line)))
			p.next()
			for !p.atOp(")") {
				call.Add(p.parseExpr())
				if !p.acceptOp(",") {
					break
				}
			}
			p.eatOp(")")
			konst.Add(call)
		}
		if p.atOp("{") {
			konst.Add(p.parseClassBody(name.text))
		}
		body.Add(konst)
		if !p.acceptOp(",") {
			break
		}
	}
	p.acceptOp(";")
	// Remaining members.
	for !p.atOp("}") && !p.at(tokEOF, "") {
		if p.acceptOp(";") {
			continue
		}
		body.Add(p.parseMember(name.text))
	}
	p.eatOp("}")
	en.Add(body)
	return en
}

func (p *parser) parseClassBody(className string) *ast.Node {
	body := node(ast.Body, p.cur().line)
	p.eatOp("{")
	for !p.atOp("}") && !p.at(tokEOF, "") {
		if p.acceptOp(";") {
			continue
		}
		body.Add(p.parseMember(className))
	}
	p.eatOp("}")
	return body
}

// parseMember parses one class member: nested type, initializer block,
// constructor, method, or field.
func (p *parser) parseMember(className string) *ast.Node {
	mods := p.parseModifiers()
	switch {
	case p.atKw("class"):
		return p.parseClassDecl(mods)
	case p.atKw("interface"):
		return p.parseInterfaceDecl(mods)
	case p.atKw("enum"):
		return p.parseEnumDecl(mods)
	case p.atOp("{"):
		// Static or instance initializer block.
		return p.parseBlockNode()
	}
	if p.atOp("<") {
		p.skipTypeParams() // method type parameters
	}
	// Constructor: Name '(' where Name == className.
	if p.at(tokName, "") && p.cur().text == className &&
		p.peek(1).kind == tokOp && p.peek(1).text == "(" {
		nm := p.next()
		ctor := node(ast.CtorDef, nm.line)
		if len(mods.Children) > 0 {
			ctor.Add(mods)
		}
		ctor.Add(leaf(ast.Ident, nm.text, nm.line))
		ctor.Add(p.parseFormalParams())
		p.skipThrows()
		ctor.Add(p.parseMethodBody())
		return ctor
	}
	typ := p.parseType()
	nm := p.eat(tokName, "")
	if p.atOp("(") {
		fn := node(ast.FunctionDef, nm.line)
		if len(mods.Children) > 0 {
			fn.Add(mods)
		}
		fn.Add(typ)
		fn.Add(leaf(ast.Ident, nm.text, nm.line))
		fn.Add(p.parseFormalParams())
		for p.acceptOp("[") { // legacy `int m()[]`
			p.eatOp("]")
		}
		p.skipThrows()
		fn.Add(p.parseMethodBody())
		return fn
	}
	// Field declaration, possibly multiple declarators.
	decls := p.parseDeclarators(ast.FieldDecl, mods, typ, nm)
	p.eatOp(";")
	if len(decls) == 1 {
		return decls[0]
	}
	blk := node(ast.Block, typ.Line)
	blk.Add(decls...)
	return blk
}

func (p *parser) skipThrows() {
	if p.acceptKw("throws") {
		for {
			p.parseType()
			if !p.acceptOp(",") {
				break
			}
		}
	}
}

func (p *parser) parseMethodBody() *ast.Node {
	if p.acceptOp(";") {
		return node(ast.Body, p.cur().line) // abstract / interface method
	}
	return p.parseBlockBody()
}

// parseDeclarators parses `name [=init] (, name [=init])*` given the first
// name already consumed, producing one decl node per declarator.
func (p *parser) parseDeclarators(kind ast.Kind, mods, typ *ast.Node, first token) []*ast.Node {
	var out []*ast.Node
	nm := first
	for {
		d := node(kind, nm.line)
		if mods != nil && len(mods.Children) > 0 {
			d.Add(mods)
		}
		dtyp := typ.Clone()
		for p.acceptOp("[") { // C-style array suffix
			p.eatOp("]")
			dtyp.Children[0].Value += "[]"
		}
		d.Add(dtyp)
		d.Add(node(ast.NameStore, nm.line, leaf(ast.Ident, nm.text, nm.line)))
		if p.acceptOp("=") {
			d.Add(p.parseVarInit())
		}
		out = append(out, d)
		if !p.acceptOp(",") {
			break
		}
		nm = p.eat(tokName, "")
	}
	return out
}

func (p *parser) parseVarInit() *ast.Node {
	if p.atOp("{") {
		return p.parseArrayInit()
	}
	return p.parseExpr()
}

func (p *parser) parseArrayInit() *ast.Node {
	line := p.eatOp("{").line
	arr := node(ast.ArrayLit, line)
	for !p.atOp("}") {
		arr.Add(p.parseVarInit())
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp("}")
	return arr
}

func (p *parser) parseFormalParams() *ast.Node {
	params := node(ast.Params, p.cur().line)
	p.eatOp("(")
	for !p.atOp(")") {
		line := p.cur().line
		p.parseModifiers() // final, annotations
		typ := p.parseType()
		vararg := p.acceptOp("...")
		nm := p.eat(tokName, "")
		for p.acceptOp("[") {
			p.eatOp("]")
		}
		kind := ast.Param
		if vararg {
			kind = ast.VarArgParam
		}
		params.Add(node(kind, line, typ, leaf(ast.Ident, nm.text, nm.line)))
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp(")")
	return params
}

// parseType parses a type reference: primitive or qualified name, generic
// arguments (discarded), and array dimensions (appended as [] to the name).
func (p *parser) parseType() *ast.Node {
	t := p.cur()
	var name string
	switch {
	case t.kind == tokKeyword && primitiveTypes[t.text]:
		p.next()
		name = t.text
	case t.kind == tokName:
		name = p.parseQualifiedNameWithGenerics()
	default:
		p.fail("expected type, got %q", t.text)
	}
	for p.atOp("[") && p.peek(1).kind == tokOp && p.peek(1).text == "]" {
		p.next()
		p.next()
		name += "[]"
	}
	return node(ast.TypeRef, t.line, leaf(ast.Ident, name, t.line))
}

func (p *parser) parseQualifiedNameWithGenerics() string {
	nm := p.eat(tokName, "").text
	if p.atOp("<") {
		p.skipTypeParams()
	}
	for p.atOp(".") && p.peek(1).kind == tokName {
		p.next()
		nm += "." + p.next().text
		if p.atOp("<") {
			p.skipTypeParams()
		}
	}
	return nm
}

// Statements.

func (p *parser) parseBlockNode() *ast.Node {
	line := p.cur().line
	return node(ast.Block, line, p.parseBlockBody())
}

func (p *parser) parseBlockBody() *ast.Node {
	body := node(ast.Body, p.cur().line)
	p.eatOp("{")
	for !p.atOp("}") && !p.at(tokEOF, "") {
		body.Add(p.parseStatement())
	}
	p.eatOp("}")
	return body
}

// parseStmtAsBody wraps a single statement (or block) in a Body node so
// compound statements always have a Body child.
func (p *parser) parseStmtAsBody() *ast.Node {
	if p.atOp("{") {
		return p.parseBlockBody()
	}
	line := p.cur().line
	return node(ast.Body, line, p.parseStatement())
}

func (p *parser) parseStatement() *ast.Node {
	t := p.cur()
	if t.kind == tokOp {
		switch t.text {
		case "{":
			return p.parseBlockNode()
		case ";":
			p.next()
			return node(ast.EmptyStmt, t.line)
		case "@":
			// Annotated local class or variable.
			mods := p.parseModifiers()
			if p.atKw("class") {
				return p.parseClassDecl(mods)
			}
			return p.parseLocalVarOrExpr()
		}
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			p.next()
			p.eatOp("(")
			cond := p.parseExpr()
			p.eatOp(")")
			return node(ast.While, t.line, cond, p.parseStmtAsBody())
		case "do":
			p.next()
			body := p.parseStmtAsBody()
			p.eatKw("while")
			p.eatOp("(")
			cond := p.parseExpr()
			p.eatOp(")")
			p.eatOp(";")
			return node(ast.DoWhile, t.line, body, cond)
		case "try":
			return p.parseTry()
		case "switch":
			return p.parseSwitch()
		case "return":
			p.next()
			stmt := node(ast.Return, t.line)
			if !p.atOp(";") {
				stmt.Add(p.parseExpr())
			}
			p.eatOp(";")
			return stmt
		case "throw":
			p.next()
			stmt := node(ast.Throw, t.line, p.parseExpr())
			p.eatOp(";")
			return stmt
		case "break":
			p.next()
			stmt := node(ast.Break, t.line)
			if p.at(tokName, "") {
				stmt.Add(leaf(ast.Ident, p.next().text, t.line))
			}
			p.eatOp(";")
			return stmt
		case "continue":
			p.next()
			stmt := node(ast.Continue, t.line)
			if p.at(tokName, "") {
				stmt.Add(leaf(ast.Ident, p.next().text, t.line))
			}
			p.eatOp(";")
			return stmt
		case "synchronized":
			p.next()
			p.eatOp("(")
			e := p.parseExpr()
			p.eatOp(")")
			return node(ast.SyncBlock, t.line, e, p.parseBlockBody())
		case "assert":
			p.next()
			stmt := node(ast.AssertStmt, t.line, p.parseExpr())
			if p.acceptOp(":") {
				stmt.Add(p.parseExpr())
			}
			p.eatOp(";")
			return stmt
		case "class":
			return p.parseClassDecl(node(ast.Modifiers, t.line))
		case "final", "static", "abstract":
			mods := p.parseModifiers()
			if p.atKw("class") {
				return p.parseClassDecl(mods)
			}
			// final local variable
			typ := p.parseType()
			nm := p.eat(tokName, "")
			decls := p.parseDeclarators(ast.LocalVarDecl, mods, typ, nm)
			p.eatOp(";")
			if len(decls) == 1 {
				return decls[0]
			}
			blk := node(ast.Block, t.line)
			blk.Add(decls...)
			return blk
		}
	}
	// Labeled statement: Name ':' stmt
	if t.kind == tokName && p.peek(1).kind == tokOp && p.peek(1).text == ":" &&
		!(p.peek(2).kind == tokOp && p.peek(2).text == ":") {
		p.next()
		p.next()
		return node(ast.LabeledStmt, t.line, leaf(ast.Ident, t.text, t.line), p.parseStatement())
	}
	return p.parseLocalVarOrExpr()
}

// parseLocalVarOrExpr disambiguates local variable declarations from
// expression statements via speculative parsing.
func (p *parser) parseLocalVarOrExpr() *ast.Node {
	if decl := p.speculate(p.tryLocalVarDecl); decl != nil {
		return decl
	}
	line := p.cur().line
	e := p.parseExpr()
	p.eatOp(";")
	if e.Kind == ast.Assign || e.Kind == ast.AugAssign {
		return e // assignment expression promoted to statement
	}
	return node(ast.ExprStmt, line, e)
}

func (p *parser) tryLocalVarDecl() *ast.Node {
	line := p.cur().line
	typ := p.parseType()
	if !p.at(tokName, "") {
		p.fail("not a declaration")
	}
	nm := p.next()
	// The token after the declarator name decides.
	if !p.atOp("=") && !p.atOp(";") && !p.atOp(",") && !p.atOp("[") {
		p.fail("not a declaration")
	}
	decls := p.parseDeclarators(ast.LocalVarDecl, nil, typ, nm)
	p.eatOp(";")
	if len(decls) == 1 {
		return decls[0]
	}
	blk := node(ast.Block, line)
	blk.Add(decls...)
	return blk
}

func (p *parser) parseIf() *ast.Node {
	line := p.eatKw("if").line
	p.eatOp("(")
	cond := p.parseExpr()
	p.eatOp(")")
	stmt := node(ast.If, line, cond, p.parseStmtAsBody())
	if p.atKw("else") {
		eline := p.next().line
		if p.atKw("if") {
			stmt.Add(node(ast.Elif, eline, p.parseIf()))
		} else {
			stmt.Add(node(ast.Else, eline, p.parseStmtAsBody()))
		}
	}
	return stmt
}

func (p *parser) parseFor() *ast.Node {
	line := p.eatKw("for").line
	p.eatOp("(")
	// Enhanced for: [final] Type name : expr
	if fe := p.speculate(func() *ast.Node {
		p.parseModifiers()
		typ := p.parseType()
		nm := p.eat(tokName, "")
		if !p.atOp(":") {
			p.fail("not enhanced for")
		}
		p.next()
		iter := p.parseExpr()
		p.eatOp(")")
		return node(ast.ForEach, line, typ,
			node(ast.NameStore, nm.line, leaf(ast.Ident, nm.text, nm.line)), iter)
	}); fe != nil {
		fe.Add(p.parseStmtAsBody())
		return fe
	}
	stmt := node(ast.For, line)
	// Init.
	if !p.atOp(";") {
		if decl := p.speculate(func() *ast.Node {
			p.parseModifiers()
			typ := p.parseType()
			if !p.at(tokName, "") {
				p.fail("not a declaration")
			}
			nm := p.next()
			if !p.atOp("=") && !p.atOp(",") && !p.atOp(";") {
				p.fail("not a declaration")
			}
			decls := p.parseDeclarators(ast.LocalVarDecl, nil, typ, nm)
			blk := node(ast.Block, line)
			blk.Add(decls...)
			if len(decls) == 1 {
				return decls[0]
			}
			return blk
		}); decl != nil {
			stmt.Add(decl)
		} else {
			for {
				stmt.Add(p.parseExpr())
				if !p.acceptOp(",") {
					break
				}
			}
		}
	}
	p.eatOp(";")
	// Condition.
	if !p.atOp(";") {
		stmt.Add(p.parseExpr())
	}
	p.eatOp(";")
	// Update.
	if !p.atOp(")") {
		for {
			stmt.Add(p.parseExpr())
			if !p.acceptOp(",") {
				break
			}
		}
	}
	p.eatOp(")")
	stmt.Add(p.parseStmtAsBody())
	return stmt
}

func (p *parser) parseTry() *ast.Node {
	line := p.eatKw("try").line
	stmt := node(ast.Try, line)
	if p.acceptOp("(") {
		// try-with-resources
		for !p.atOp(")") {
			iline := p.cur().line
			p.parseModifiers()
			if res := p.speculate(func() *ast.Node {
				typ := p.parseType()
				nm := p.eat(tokName, "")
				p.eatOp("=")
				init := p.parseExpr()
				d := node(ast.LocalVarDecl, iline, typ,
					node(ast.NameStore, nm.line, leaf(ast.Ident, nm.text, nm.line)), init)
				return node(ast.WithItem, iline, d)
			}); res != nil {
				stmt.Add(res)
			} else {
				stmt.Add(node(ast.WithItem, iline, p.parseExpr()))
			}
			if !p.acceptOp(";") {
				break
			}
		}
		p.eatOp(")")
	}
	stmt.Add(p.parseBlockBody())
	for p.atKw("catch") {
		cline := p.next().line
		p.eatOp("(")
		p.parseModifiers()
		h := node(ast.ExceptHandler, cline)
		typ := p.parseType()
		// Multi-catch: T1 | T2 e
		for p.acceptOp("|") {
			h.Add(typ)
			typ = p.parseType()
		}
		h.Add(typ)
		nm := p.eat(tokName, "")
		h.Add(node(ast.NameStore, nm.line, leaf(ast.Ident, nm.text, nm.line)))
		p.eatOp(")")
		h.Add(p.parseBlockBody())
		stmt.Add(h)
	}
	if p.atKw("finally") {
		fline := p.next().line
		stmt.Add(node(ast.Finally, fline, p.parseBlockBody()))
	}
	return stmt
}

func (p *parser) parseSwitch() *ast.Node {
	line := p.eatKw("switch").line
	p.eatOp("(")
	subject := p.parseExpr()
	p.eatOp(")")
	stmt := node(ast.Switch, line, subject)
	body := node(ast.Body, p.cur().line)
	p.eatOp("{")
	var cur *ast.Node
	for !p.atOp("}") && !p.at(tokEOF, "") {
		switch {
		case p.atKw("case"):
			cline := p.next().line
			cur = node(ast.CaseClause, cline, p.parseExpr())
			p.eatOp(":")
			body.Add(cur)
		case p.atKw("default"):
			cline := p.next().line
			cur = node(ast.CaseClause, cline)
			p.eatOp(":")
			body.Add(cur)
		default:
			if cur == nil {
				p.fail("statement outside case clause")
			}
			cur.Add(p.parseStatement())
		}
	}
	p.eatOp("}")
	stmt.Add(body)
	return stmt
}

// Expressions.

func (p *parser) parseExpr() *ast.Node { return p.parseAssignment() }

var javaAugOps = map[string]bool{
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
}

func (p *parser) parseAssignment() *ast.Node {
	left := p.parseTernary()
	t := p.cur()
	if t.kind == tokOp && t.text == "=" {
		p.next()
		right := p.parseAssignment()
		return node(ast.Assign, t.line, toStore(left), right)
	}
	if t.kind == tokOp && javaAugOps[t.text] {
		p.next()
		right := p.parseAssignment()
		return node(ast.AugAssign, t.line, toStore(left), leaf(ast.OpTok, t.text, t.line), right)
	}
	return left
}

func toStore(n *ast.Node) *ast.Node {
	switch n.Kind {
	case ast.NameLoad:
		n.Kind = ast.NameStore
		n.Value = ast.NameStore.String()
	case ast.AttributeLoad:
		n.Kind = ast.AttributeStore
		n.Value = ast.AttributeStore.String()
	case ast.SubscriptLoad:
		n.Kind = ast.SubscriptStore
		n.Value = ast.SubscriptStore.String()
	}
	return n
}

func (p *parser) parseTernary() *ast.Node {
	cond := p.parseBinary(0)
	if p.atOp("?") {
		line := p.next().line
		a := p.parseExpr()
		p.eatOp(":")
		b := p.parseExpr()
		return node(ast.Ternary, line, cond, a, b)
	}
	return cond
}

// Binary precedence levels, loosest first. instanceof is handled at the
// relational level.
var javaBinLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">=", "instanceof"},
	{"<<", ">>", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) *ast.Node {
	if level >= len(javaBinLevels) {
		return p.parseUnary()
	}
	left := p.parseBinary(level + 1)
	for {
		matched := ""
		t := p.cur()
		for _, op := range javaBinLevels[level] {
			if op == "instanceof" {
				if t.kind == tokKeyword && t.text == "instanceof" {
					matched = op
				}
			} else if t.kind == tokOp && t.text == op {
				matched = op
			}
			if matched != "" {
				break
			}
		}
		if matched == "" {
			return left
		}
		// Avoid misreading generics: `a < b` is fine; `List<` never reaches
		// here because types are parsed separately.
		op := p.next()
		if matched == "instanceof" {
			typ := p.parseType()
			left = node(ast.InstanceOf, op.line, left, typ)
			continue
		}
		right := p.parseBinary(level + 1)
		kind := ast.BinOp
		switch matched {
		case "||", "&&":
			kind = ast.BoolOp
		case "==", "!=", "<", ">", "<=", ">=":
			kind = ast.Compare
		}
		if kind == ast.Compare {
			left = node(ast.Compare, op.line, left, leaf(ast.OpTok, matched, op.line), right)
		} else {
			left = node(kind, op.line, leaf(ast.OpTok, matched, op.line), left, right)
		}
	}
}

func (p *parser) parseUnary() *ast.Node {
	t := p.cur()
	if t.kind == tokOp {
		switch t.text {
		case "+", "-", "!", "~":
			p.next()
			return node(ast.UnaryOp, t.line, leaf(ast.OpTok, t.text, t.line), p.parseUnary())
		case "++", "--":
			p.next()
			return node(ast.UnaryOp, t.line, leaf(ast.OpTok, t.text, t.line), p.parseUnary())
		case "(":
			// Cast or parenthesized expression.
			if c := p.speculate(func() *ast.Node {
				p.eatOp("(")
				typ := p.parseCastType()
				p.eatOp(")")
				operand := p.parseUnary()
				return node(ast.Cast, t.line, typ, operand)
			}); c != nil {
				return c
			}
		}
	}
	return p.parsePostfix(p.parsePrimary())
}

// parseCastType parses a type usable in a cast; to keep speculative parsing
// honest, a plain name is only a cast if the operand that follows could not
// continue an expression (heuristic: next token after ')' starts a primary).
func (p *parser) parseCastType() *ast.Node {
	t := p.cur()
	if t.kind == tokKeyword && primitiveTypes[t.text] && t.text != "var" {
		return p.parseType()
	}
	typ := p.parseType()
	// Reject `(a) + b`-style: after ')' must come a primary-start token.
	if !p.atOp(")") {
		p.fail("not a cast")
	}
	nt := p.peek(1)
	ok := nt.kind == tokName || nt.kind == tokNumber || nt.kind == tokString ||
		nt.kind == tokChar ||
		(nt.kind == tokKeyword && (nt.text == "this" || nt.text == "new" ||
			nt.text == "true" || nt.text == "false" || nt.text == "null" ||
			nt.text == "super")) ||
		(nt.kind == tokOp && (nt.text == "(" || nt.text == "!" || nt.text == "~"))
	if !ok {
		p.fail("not a cast")
	}
	return typ
}

func (p *parser) parsePostfix(expr *ast.Node) *ast.Node {
	for {
		t := p.cur()
		switch {
		case p.atOp("."):
			if p.peek(1).kind == tokName || (p.peek(1).kind == tokKeyword && (p.peek(1).text == "this" || p.peek(1).text == "class" || p.peek(1).text == "new" || p.peek(1).text == "super")) {
				p.next()
				nm := p.next()
				if p.atOp("<") { // explicit generic method call
					p.skipTypeParams()
				}
				expr = node(ast.AttributeLoad, t.line, expr,
					node(ast.Attr, nm.line, leaf(ast.Ident, nm.text, nm.line)))
			} else {
				return expr
			}
		case p.atOp("("):
			line := p.next().line
			call := node(ast.Call, line, expr)
			for !p.atOp(")") {
				call.Add(p.parseExpr())
				if !p.acceptOp(",") {
					break
				}
			}
			p.eatOp(")")
			expr = call
		case p.atOp("["):
			line := p.next().line
			idx := p.parseExpr()
			p.eatOp("]")
			expr = node(ast.SubscriptLoad, line, expr, node(ast.Index, line, idx))
		case p.atOp("::"):
			p.next()
			var nm token
			if p.atKw("new") {
				nm = p.next()
			} else {
				nm = p.eat(tokName, "")
			}
			expr = node(ast.AttributeLoad, t.line, expr,
				node(ast.Attr, nm.line, leaf(ast.Ident, nm.text, nm.line)))
		case p.atOp("++") || p.atOp("--"):
			p.next()
			expr = node(ast.UnaryOp, t.line, leaf(ast.OpTok, t.text, t.line), expr)
		default:
			return expr
		}
	}
}

func (p *parser) parsePrimary() *ast.Node {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return node(ast.Num, t.line, leaf(ast.NumLit, t.text, t.line))
	case tokString:
		p.next()
		return node(ast.Str, t.line, leaf(ast.StrLit, t.text, t.line))
	case tokChar:
		p.next()
		return node(ast.Str, t.line, leaf(ast.StrLit, t.text, t.line))
	case tokName:
		// Lambda: name -> ...
		if p.peek(1).kind == tokOp && p.peek(1).text == "->" {
			return p.parseLambdaFromName()
		}
		p.next()
		return node(ast.NameLoad, t.line, leaf(ast.Ident, t.text, t.line))
	case tokKeyword:
		switch t.text {
		case "true", "false":
			p.next()
			return node(ast.Bool, t.line, leaf(ast.BoolLit, t.text, t.line))
		case "null":
			p.next()
			return node(ast.Null, t.line, leaf(ast.NullLit, "null", t.line))
		case "this":
			p.next()
			return node(ast.NameLoad, t.line, leaf(ast.Ident, "this", t.line))
		case "super":
			p.next()
			return node(ast.NameLoad, t.line, leaf(ast.Ident, "super", t.line))
		case "new":
			return p.parseNew()
		case "void":
			// void.class
			p.next()
			return node(ast.NameLoad, t.line, leaf(ast.Ident, "void", t.line))
		default:
			if primitiveTypes[t.text] {
				// int.class, int[]::new, etc.
				typ := p.parseType()
				return typ
			}
		}
	case tokOp:
		if t.text == "(" {
			// Lambda with parameter list, or parenthesized expression.
			if l := p.speculate(p.tryParenLambda); l != nil {
				return l
			}
			p.next()
			e := p.parseExpr()
			p.eatOp(")")
			return e
		}
	}
	p.fail("unexpected token %s %q", t.kind, t.text)
	return nil
}

func (p *parser) parseLambdaFromName() *ast.Node {
	nm := p.next()
	arrow := p.eatOp("->")
	params := node(ast.Params, nm.line,
		node(ast.Param, nm.line, leaf(ast.Ident, nm.text, nm.line)))
	return node(ast.Lambda, arrow.line, params, p.parseLambdaBody())
}

func (p *parser) tryParenLambda() *ast.Node {
	open := p.eatOp("(")
	params := node(ast.Params, open.line)
	for !p.atOp(")") {
		line := p.cur().line
		p.parseModifiers()
		// Typed or untyped parameter.
		if p.at(tokName, "") && (p.peek(1).text == "," || p.peek(1).text == ")") {
			nm := p.next()
			params.Add(node(ast.Param, line, leaf(ast.Ident, nm.text, nm.line)))
		} else {
			typ := p.parseType()
			nm := p.eat(tokName, "")
			params.Add(node(ast.Param, line, typ, leaf(ast.Ident, nm.text, nm.line)))
		}
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp(")")
	if !p.atOp("->") {
		p.fail("not a lambda")
	}
	arrow := p.next()
	return node(ast.Lambda, arrow.line, params, p.parseLambdaBody())
}

func (p *parser) parseLambdaBody() *ast.Node {
	if p.atOp("{") {
		return p.parseBlockBody()
	}
	return p.parseExpr()
}

func (p *parser) parseNew() *ast.Node {
	line := p.eatKw("new").line
	typ := p.parseType()
	if strings.HasSuffix(typ.Children[0].Value, "[]") || p.atOp("[") {
		// Array creation: new T[expr]... or new T[]{...}
		arr := node(ast.New, line, typ)
		for p.acceptOp("[") {
			if !p.atOp("]") {
				arr.Add(p.parseExpr())
			}
			p.eatOp("]")
			typ.Children[0].Value += "[]"
		}
		if p.atOp("{") {
			arr.Add(p.parseArrayInit())
		}
		return arr
	}
	obj := node(ast.New, line, typ)
	p.eatOp("(")
	for !p.atOp(")") {
		obj.Add(p.parseExpr())
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp(")")
	if p.atOp("{") {
		// Anonymous class body.
		obj.Add(p.parseClassBody(typ.Children[0].Value))
	}
	return obj
}
