package javalang

import (
	"strings"
	"testing"

	"namer/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Node {
	t.Helper()
	root, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return root
}

func TestParseHelloClass(t *testing.T) {
	src := `package com.example.app;

import java.util.List;
import java.util.*;

public class Hello extends Base implements Runnable, Closeable {
    private int count = 0;
    private String name;

    public Hello(String name) {
        this.name = name;
    }

    public void run() {
        count++;
    }
}
`
	root := mustParse(t, src)
	if root.Children[0].Kind != ast.PackageDecl {
		t.Errorf("first child should be PackageDecl, got %v", root.Children[0].Kind)
	}
	if root.Children[1].Kind != ast.Import || root.Children[2].Kind != ast.Import {
		t.Error("imports not parsed")
	}
	cls := root.Children[3]
	if cls.Kind != ast.ClassDef {
		t.Fatalf("want ClassDef, got %v", cls.Kind)
	}
	var bases *ast.Node
	for _, c := range cls.Children {
		if c.Kind == ast.Bases {
			bases = c
		}
	}
	if bases == nil || len(bases.Children) != 3 {
		t.Fatalf("bases: %v", bases)
	}
	// this.name = name inside constructor becomes Assign with AttributeStore.
	var assign *ast.Node
	cls.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Assign {
			assign = n
		}
		return true
	})
	if assign == nil {
		t.Fatal("constructor assignment not found")
	}
	if assign.Children[0].Kind != ast.AttributeStore {
		t.Errorf("target should be AttributeStore, got %v", assign.Children[0].Kind)
	}
	recv := assign.Children[0].Children[0]
	if recv.Children[0].Value != "this" {
		t.Errorf("receiver should be this, got %q", recv.Children[0].Value)
	}
}

func TestParseTable6Examples(t *testing.T) {
	src := `public class T {
    void m(Exception e, double chainlength, ProgressDialog progDialog, Context context, Intent i) {
        e.getStackTrace();
        for (double j = 1; j < chainlength; j++) {
            use(j);
        }
        try {
            risky();
        } catch (Throwable t) {
            t.printStackTrace();
        }
        context.startActivity(i);
        progDialog.dismiss();
        ConektaObject resource = new ConektaObject();
    }
}
`
	root := mustParse(t, src)
	var forStmt, try, local *ast.Node
	calls := 0
	root.Walk(func(n *ast.Node) bool {
		switch n.Kind {
		case ast.For:
			forStmt = n
		case ast.Try:
			try = n
		case ast.LocalVarDecl:
			if n.Children[0].Children[0].Value == "ConektaObject" {
				local = n
			}
		case ast.Call:
			calls++
		}
		return true
	})
	if forStmt == nil {
		t.Fatal("for statement not found")
	}
	// for-init declares double j = 1.
	init := forStmt.Children[0]
	if init.Kind != ast.LocalVarDecl || init.Children[0].Children[0].Value != "double" {
		t.Errorf("for-init: %s", init)
	}
	if try == nil {
		t.Fatal("try not found")
	}
	var handler *ast.Node
	for _, c := range try.Children {
		if c.Kind == ast.ExceptHandler {
			handler = c
		}
	}
	if handler == nil || handler.Children[0].Children[0].Value != "Throwable" {
		t.Errorf("catch clause: %v", handler)
	}
	if local == nil {
		t.Error("ConektaObject declaration not found")
	} else if local.Children[2].Kind != ast.New {
		t.Errorf("init should be New, got %v", local.Children[2].Kind)
	}
	if calls < 5 {
		t.Errorf("calls = %d, want >= 5", calls)
	}
}

func TestParseStatements(t *testing.T) {
	src := `class T {
    void m(int[] a, List<String> xs) {
        int x = 1, y = 2;
        x += 3;
        if (x > 0) { y = 1; } else if (x < 0) y = 2; else y = 3;
        while (x-- > 0) y++;
        do { y--; } while (y > 0);
        for (String s : xs) { use(s); }
        switch (x) {
        case 1:
            y = 1;
            break;
        default:
            y = 0;
        }
        String[] parts = new String[10];
        int[] nums = {1, 2, 3};
        a[0] = nums[1];
        Object o = (Object) xs;
        boolean b = o instanceof List;
        synchronized (this) { y = 4; }
        assert y >= 0 : "neg";
        label: for (;;) { break label; }
        try (Reader r = open(); Writer w = create()) { r.read(); }
        throw new IllegalStateException("bad");
    }
}
`
	root := mustParse(t, src)
	var kinds = map[ast.Kind]int{}
	root.Walk(func(n *ast.Node) bool {
		kinds[n.Kind]++
		return true
	})
	for _, want := range []ast.Kind{
		ast.LocalVarDecl, ast.AugAssign, ast.If, ast.Elif, ast.Else,
		ast.While, ast.DoWhile, ast.ForEach, ast.Switch, ast.CaseClause,
		ast.New, ast.ArrayLit, ast.SubscriptStore, ast.Cast, ast.InstanceOf,
		ast.SyncBlock, ast.AssertStmt, ast.LabeledStmt, ast.Try,
		ast.WithItem, ast.Throw, ast.Break,
	} {
		if kinds[want] == 0 {
			t.Errorf("kind %v not produced", want)
		}
	}
}

func TestParseGenericsAndAnnotations(t *testing.T) {
	src := `@Entity
@Table(name = "users")
public class Repo<T extends Comparable<T>> {
    private Map<String, List<T>> index = new HashMap<String, List<T>>();

    @Override
    public <R> R transform(Function<T, R> fn, T item) {
        return fn.apply(item);
    }

    public void forEach(Consumer<? super T> c) {
        index.values().forEach(list -> list.forEach(x -> c.accept(x)));
    }

    public Supplier<T> supplier() {
        return this::create;
    }
}
`
	root := mustParse(t, src)
	var lambdas, methods int
	root.Walk(func(n *ast.Node) bool {
		switch n.Kind {
		case ast.Lambda:
			lambdas++
		case ast.FunctionDef:
			methods++
		}
		return true
	})
	if lambdas != 2 {
		t.Errorf("lambdas = %d, want 2", lambdas)
	}
	if methods != 3 {
		t.Errorf("methods = %d, want 3", methods)
	}
}

func TestParseEnum(t *testing.T) {
	src := `public enum Color implements Named {
    RED("red"), GREEN("green"), BLUE("blue");

    private final String label;

    Color(String label) {
        this.label = label;
    }

    public String label() { return label; }
}
`
	root := mustParse(t, src)
	en := root.Children[0]
	if en.Kind != ast.EnumDef {
		t.Fatalf("want EnumDef, got %v", en.Kind)
	}
	var consts, ctors int
	en.Walk(func(n *ast.Node) bool {
		switch n.Kind {
		case ast.FieldDecl:
			consts++
		case ast.CtorDef:
			ctors++
		}
		return true
	})
	if consts < 4 { // 3 enum constants + 1 field
		t.Errorf("field decls = %d, want >= 4", consts)
	}
	if ctors != 1 {
		t.Errorf("ctors = %d, want 1", ctors)
	}
}

func TestParseInterface(t *testing.T) {
	src := `public interface Store extends AutoCloseable {
    String get(String key);
    default void warm() { }
}
`
	root := mustParse(t, src)
	if root.Children[0].Kind != ast.InterfaceDef {
		t.Fatalf("want InterfaceDef, got %v", root.Children[0].Kind)
	}
}

func TestParseAnonymousClass(t *testing.T) {
	src := `class T {
    void m() {
        Runnable r = new Runnable() {
            public void run() {
                tick();
            }
        };
        r.run();
    }
}
`
	root := mustParse(t, src)
	var anonMethods int
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.New {
			n.Walk(func(x *ast.Node) bool {
				if x.Kind == ast.FunctionDef {
					anonMethods++
				}
				return true
			})
			return false
		}
		return true
	})
	if anonMethods != 1 {
		t.Errorf("anonymous class methods = %d, want 1", anonMethods)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"class {",
		"class T { void m( { } }",
		"class T { int x = ; }",
		`class T { String s = "unterminated; }`,
		"class T { void m() { if } }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTernaryAndOperators(t *testing.T) {
	src := `class T {
    int m(int a, int b) {
        int c = a > b ? a : b;
        long mask = (a & 0xFF) | (b << 8) ^ ~a;
        boolean ok = a != 0 && b != 0 || a == b;
        int shifted = a >>> 2;
        return ok ? c : -c;
    }
}
`
	root := mustParse(t, src)
	var ternaries int
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Ternary {
			ternaries++
		}
		return true
	})
	if ternaries != 2 {
		t.Errorf("ternaries = %d, want 2", ternaries)
	}
}

func TestStatementsProjectionJava(t *testing.T) {
	src := `class C {
    void m() {
        int x = 0;
        for (int i = 0; i < 10; i++) {
            x += i;
        }
    }
}
`
	root := mustParse(t, src)
	stmts := ast.Statements(root)
	// class, method, int x=0, for header, x+=i  (for-init NOT double counted)
	if len(stmts) != 5 {
		for _, s := range stmts {
			t.Log(s.Root.Fingerprint())
		}
		t.Fatalf("got %d statements, want 5", len(stmts))
	}
	var forCount, declCount int
	for _, s := range stmts {
		switch s.Root.Kind {
		case ast.For:
			forCount++
		case ast.LocalVarDecl:
			declCount++
		}
	}
	if forCount != 1 || declCount != 1 {
		t.Errorf("for=%d localdecl=%d, want 1 and 1", forCount, declCount)
	}
}

func TestParseThrowsClause(t *testing.T) {
	src := `class T {
    T(int x) throws IOException { this.x = x; }
    void m() throws IOException, java.sql.SQLException { risky(); }
}`
	root := mustParse(t, src)
	var methods int
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.FunctionDef || n.Kind == ast.CtorDef {
			methods++
		}
		return true
	})
	if methods != 2 {
		t.Errorf("methods = %d, want 2", methods)
	}
}

func TestErrorMessages(t *testing.T) {
	_, err := Parse("class T { int x = ; }")
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("error should carry a line number: %v", err)
	}
	_, err = Parse("class T { String s = \"oops; }")
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("lex error should carry a line number: %v", err)
	}
}
