// Package javalang implements a lexer and recursive-descent parser for a
// substantial subset of Java, producing the unified AST of package ast.
// Java constructs are normalized onto the same kind vocabulary used by the
// Python front end (method calls become Call, field accesses become
// AttributeLoad, `this` plays the role of `self`), so the name path and
// name pattern machinery works identically across both languages.
package javalang

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokName
	tokNumber
	tokString
	tokChar
	tokOp
	tokKeyword
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokName:
		return "NAME"
	case tokNumber:
		return "NUMBER"
	case tokString:
		return "STRING"
	case tokChar:
		return "CHAR"
	case tokOp:
		return "OP"
	case tokKeyword:
		return "KEYWORD"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string
	line int
}

var javaKeywords = map[string]bool{
	"abstract": true, "assert": true, "boolean": true, "break": true,
	"byte": true, "case": true, "catch": true, "char": true, "class": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "extends": true,
	"final": true, "finally": true, "float": true, "for": true,
	"goto": true, "if": true, "implements": true, "import": true,
	"instanceof": true, "int": true, "interface": true, "long": true,
	"native": true, "new": true, "package": true, "private": true,
	"protected": true, "public": true, "return": true, "short": true,
	"static": true, "strictfp": true, "super": true, "switch": true,
	"synchronized": true, "this": true, "throw": true, "throws": true,
	"transient": true, "try": true, "void": true, "volatile": true,
	"while": true, "true": true, "false": true, "null": true, "var": true,
}

var javaOps = []string{
	">>>=", "<<=", ">>=", ">>>", "...",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
	"/=", "%=", "&=", "|=", "^=", "<<", "->", "::",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"?", ":", "(", ")", "[", "]", "{", "}", ",", ".", ";", "@",
}

type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

// lex tokenizes Java source. Comments are skipped; lines are tracked for
// error reporting and AST positions.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			j := i + 2
			for j+1 < n && !(src[j] == '*' && src[j+1] == '/') {
				if src[j] == '\n' {
					line++
				}
				j++
			}
			if j+1 >= n {
				return nil, &lexError{line, "unterminated block comment"}
			}
			i = j + 2
		case isNameStart(c):
			j := i
			for j < n && isNameCont(src[j]) {
				j++
			}
			word := src[i:j]
			if javaKeywords[word] {
				toks = append(toks, token{tokKeyword, word, line})
			} else {
				toks = append(toks, token{tokName, word, line})
			}
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < n && (isNameCont(src[j]) || src[j] == '.' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case c == '"':
			j := i + 1
			for j < n {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				if src[j] == '\n' {
					return nil, &lexError{line, "unterminated string literal"}
				}
				j++
			}
			if j >= n {
				return nil, &lexError{line, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, src[i : j+1], line})
			i = j + 1
		case c == '\'':
			j := i + 1
			for j < n {
				if src[j] == '\\' {
					j += 2
					continue
				}
				if src[j] == '\'' {
					break
				}
				if src[j] == '\n' {
					return nil, &lexError{line, "unterminated char literal"}
				}
				j++
			}
			if j >= n {
				return nil, &lexError{line, "unterminated char literal"}
			}
			toks = append(toks, token{tokChar, src[i : j+1], line})
			i = j + 1
		default:
			op := ""
			for _, o := range javaOps {
				if strings.HasPrefix(src[i:], o) {
					op = o
					break
				}
			}
			if op == "" {
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, token{tokOp, op, line})
			i += len(op)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isNameStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameCont(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}
