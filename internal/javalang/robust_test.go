package javalang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parse must never panic on any input.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Mutated valid programs must also never panic.
func TestParseMutatedSources(t *testing.T) {
	base := `package p;
import java.util.List;
public class Widget<T extends Comparable<T>> extends Base implements Runnable {
    private Map<String, List<T>> index = new HashMap<>();
    public Widget(int port) { this.port = port; }
    public void run() {
        for (int i = 0; i < 10; i++) { total += i; }
        try (Reader r = open()) { r.read(); }
        catch (IOException | RuntimeException e) { e.printStackTrace(); }
        Runnable fn = () -> use(index);
        switch (total) { case 1: break; default: use(0); }
    }
}
`
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{byte(33 + rng.Intn(90))}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated source: %v\n%s", r, b)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

// Deep nesting does not blow the stack.
func TestParsePathological(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("class T { void m() {\n")
	for d := 0; d < 80; d++ {
		sb.WriteString("if (x) {\n")
	}
	sb.WriteString("use(0);\n")
	for d := 0; d < 80; d++ {
		sb.WriteString("}\n")
	}
	sb.WriteString("} }\n")
	if _, err := Parse(sb.String()); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
	long := "class T { int x = " + strings.Repeat("1 + ", 2000) + "1; }"
	if _, err := Parse(long); err != nil {
		t.Fatalf("long expression: %v", err)
	}
}
