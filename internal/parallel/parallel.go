// Package parallel provides the worker-pool and sharding primitives shared
// by the corpus-scale stages of the pipeline (file processing, pass-1 path
// counting, candidate pruning, and the violation scan). All helpers take an
// explicit worker count so callers can force the serial reference path
// (workers = 1) when asserting determinism against the parallel one.
package parallel

import (
	"runtime"
	"sync"
)

// Degree resolves a Parallelism configuration knob: values <= 0 mean "use
// every CPU" (runtime.NumCPU), 1 forces the serial reference path, and any
// other value is taken literally.
func Degree(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on a fixed pool of at most
// `workers` goroutines pulling indices from a channel. It never spawns more
// goroutines than items. workers <= 1 runs inline with no goroutines at
// all, which is the serial reference path.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and returns the results in index order, regardless of which worker
// computed which slot. It is the fan-out-then-ordered-merge primitive used
// by the sharded FP-tree build: each shard computes a private value, and
// the caller folds the returned slice in shard order to stay
// deterministic. workers <= 1 computes every slot inline.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Shard is a contiguous index range [Lo, Hi).
type Shard struct {
	Lo, Hi int
}

// Shards splits n items into at most `workers` contiguous, near-equal
// ranges covering [0, n) in order. It returns nil when n == 0.
func Shards(n, workers int) []Shard {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]Shard, 0, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for s := 0; s < workers; s++ {
		size := base
		if s < rem {
			size++
		}
		out = append(out, Shard{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEachShard partitions [0, n) into Shards(n, workers) and runs
// fn(shard, lo, hi) for each range, one goroutine per shard. Shard indices
// identify the range's position so callers can merge per-shard results in
// deterministic order afterwards.
func ForEachShard(n, workers int, fn func(shard, lo, hi int)) int {
	shards := Shards(n, workers)
	ForEach(len(shards), workers, func(s int) {
		fn(s, shards[s].Lo, shards[s].Hi)
	})
	return len(shards)
}
