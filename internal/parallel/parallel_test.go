package parallel

import (
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if Degree(1) != 1 || Degree(7) != 7 {
		t.Error("explicit degrees must pass through")
	}
	if Degree(0) < 1 || Degree(-3) < 1 {
		t.Error("auto degree must be at least 1")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var hits [57]int32
		ForEach(len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("ForEach over zero items must not call fn")
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out := Map(41, workers, func(i int) int { return i * i })
		if len(out) != 41 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Error("Map over zero items must return an empty slice")
	}
}

func TestShardsPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 1},
	} {
		shards := Shards(tc.n, tc.workers)
		if tc.n == 0 {
			if shards != nil {
				t.Errorf("n=0: want nil shards, got %v", shards)
			}
			continue
		}
		if len(shards) > tc.workers || len(shards) > tc.n {
			t.Errorf("n=%d workers=%d: %d shards", tc.n, tc.workers, len(shards))
		}
		lo := 0
		for _, s := range shards {
			if s.Lo != lo || s.Hi <= s.Lo {
				t.Fatalf("n=%d workers=%d: bad shard %+v at lo=%d", tc.n, tc.workers, s, lo)
			}
			lo = s.Hi
		}
		if lo != tc.n {
			t.Errorf("n=%d workers=%d: shards cover [0,%d)", tc.n, tc.workers, lo)
		}
	}
}

func TestForEachShardOrderableMerge(t *testing.T) {
	n := 103
	sums := make([]int, 8)
	got := ForEachShard(n, 8, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[shard] += i
		}
	})
	if got != len(Shards(n, 8)) {
		t.Fatalf("shard count mismatch")
	}
	total := 0
	for _, s := range sums {
		total += s
	}
	if want := n * (n - 1) / 2; total != want {
		t.Errorf("sum = %d, want %d", total, want)
	}
}

func TestShardsEdgeCases(t *testing.T) {
	// Fewer items than workers: one single-item shard per item, never an
	// empty shard.
	shards := Shards(3, 16)
	if len(shards) != 3 {
		t.Fatalf("n=3 workers=16: %d shards, want 3", len(shards))
	}
	for i, s := range shards {
		if s.Hi-s.Lo != 1 {
			t.Fatalf("shard %d = %+v, want a single item", i, s)
		}
	}
	// Degenerate worker counts clamp to a single shard.
	for _, workers := range []int{0, -1} {
		shards := Shards(5, workers)
		if len(shards) != 1 || shards[0].Lo != 0 || shards[0].Hi != 5 {
			t.Fatalf("workers=%d: shards = %v, want one covering [0,5)", workers, shards)
		}
	}
	if Shards(0, 0) != nil {
		t.Fatal("n=0 must yield nil shards for any worker count")
	}
	// Balance: shard sizes differ by at most one.
	for _, tc := range []struct{ n, workers int }{{10, 3}, {17, 5}, {64, 64}} {
		min, max := tc.n, 0
		for _, s := range Shards(tc.n, tc.workers) {
			size := s.Hi - s.Lo
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d workers=%d: shard sizes range [%d,%d]", tc.n, tc.workers, min, max)
		}
	}
}
