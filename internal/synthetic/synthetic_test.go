package synthetic

import (
	"math/rand"
	"testing"

	"namer/internal/ast"
	"namer/internal/graphs"
	"namer/internal/pylang"
)

const fileSrc = `def alpha(a, b):
    c = a + b
    return c

def beta(x, y):
    z = x * y
    if z > x:
        return z
    return y

class C:
    def method(self, items, limit):
        total = 0
        for item in items:
            total += item
        if total > limit:
            return limit
        return total
`

func parseFile(t *testing.T) *ast.Node {
	t.Helper()
	root, err := pylang.Parse(fileSrc)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFunctions(t *testing.T) {
	fns := Functions(parseFile(t))
	if len(fns) != 3 {
		t.Fatalf("functions = %d, want 3", len(fns))
	}
}

func TestCleanSamples(t *testing.T) {
	fns := Functions(parseFile(t))
	v := graphs.NewVocab()
	samples := CleanSamples(fns[0], v, 0)
	if len(samples) == 0 {
		t.Fatal("no clean samples")
	}
	for _, s := range samples {
		if s.Buggy {
			t.Error("clean sample marked buggy")
		}
		if s.Correct < 0 || s.Correct >= len(s.Candidates) {
			t.Errorf("bad correct index %d of %d", s.Correct, len(s.Candidates))
		}
		if s.Candidates[s.Correct] != s.G.VarName[s.Slot] {
			t.Error("clean sample's correct name must be the slot's name")
		}
		if s.CurrentIndex() != s.Correct {
			t.Error("clean sample current index should equal correct")
		}
		if len(s.CandIDs) != len(s.Candidates) {
			t.Error("candidate ids misaligned")
		}
	}
}

func TestInject(t *testing.T) {
	fns := Functions(parseFile(t))
	v := graphs.NewVocab()
	rng := rand.New(rand.NewSource(1))
	injected := 0
	for i := 0; i < 20; i++ {
		for _, fn := range fns {
			s, ok := Inject(fn, v, rng)
			if !ok {
				continue
			}
			injected++
			if !s.Buggy {
				t.Error("injected sample not marked buggy")
			}
			if s.CurrentIndex() == s.Correct {
				t.Error("injected slot still holds the correct name")
			}
			if s.Candidates[s.Correct] == s.G.VarName[s.Slot] {
				t.Error("correct candidate equals the corrupted name")
			}
		}
	}
	if injected == 0 {
		t.Fatal("no injections succeeded")
	}
	// Original functions must be untouched (Inject clones).
	again := Functions(parseFile(t))
	for i, fn := range Functions(parseFile(t)) {
		if !fn.Equal(again[i]) {
			t.Error("source AST mutated")
		}
	}
}

func TestWrongness(t *testing.T) {
	fns := Functions(parseFile(t))
	v := graphs.NewVocab()
	samples := CleanSamples(fns[1], v, 0)
	if len(samples) == 0 {
		t.Fatal("need samples")
	}
	s := samples[0]
	// A scorer that always prefers the current name: wrongness <= 0.
	lover := scorerFunc(func(sm *Sample) []float64 {
		out := make([]float64, len(sm.Candidates))
		if c := sm.CurrentIndex(); c >= 0 {
			out[c] = 10
		}
		return out
	})
	w, _ := Wrongness(lover, s)
	if w >= 0 {
		t.Errorf("wrongness = %f, want negative", w)
	}
	// A scorer that hates the current name.
	hater := scorerFunc(func(sm *Sample) []float64 {
		out := make([]float64, len(sm.Candidates))
		for i := range out {
			out[i] = 5
		}
		if c := sm.CurrentIndex(); c >= 0 {
			out[c] = -5
		}
		return out
	})
	w2, alt := Wrongness(hater, s)
	if w2 <= 0 {
		t.Errorf("wrongness = %f, want positive", w2)
	}
	if alt == s.CurrentIndex() {
		t.Error("suggested alternative is the current name")
	}
}

type scorerFunc func(*Sample) []float64

func (f scorerFunc) Score(s *Sample) []float64 { return f(s) }
