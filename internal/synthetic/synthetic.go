// Package synthetic implements the synthetic variable-misuse corpus the
// neural baselines are trained on (§5.6): clean functions become positive
// examples; corrupting one variable use with another in-scope variable
// produces buggy examples whose injected location and original name are
// the localization/repair targets. The paper's central finding is that
// models trained on this distribution do not transfer to real naming
// issues; package eval reproduces that comparison.
package synthetic

import (
	"math/rand"

	"namer/internal/ast"
	"namer/internal/graphs"
)

// MaxCandidates caps the repair candidate set per sample.
const MaxCandidates = 10

// Sample is one variable-misuse example.
type Sample struct {
	G *graphs.Graph
	// Slot is the graph node index of the examined variable use.
	Slot int
	// Candidates are the in-scope variable names (vocabulary ids in
	// CandIDs align with Candidates).
	Candidates []string
	CandIDs    []int
	// Correct indexes Candidates: the name that should appear at Slot.
	Correct int
	// Buggy marks corrupted samples (Slot's current name != correct).
	Buggy bool
	// Line is the source line of the slot (for report judging).
	Line int
}

// CurrentIndex returns the candidate index of the name currently at the
// slot, or -1.
func (s *Sample) CurrentIndex() int {
	cur := s.G.VarName[s.Slot]
	for i, c := range s.Candidates {
		if c == cur {
			return i
		}
	}
	return -1
}

// Functions extracts the function subtrees of a file AST.
func Functions(root *ast.Node) []*ast.Node {
	var out []*ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.FunctionDef || n.Kind == ast.CtorDef {
			out = append(out, n)
			return false // no nested functions
		}
		return true
	})
	return out
}

// buildSample constructs a Sample for a slot in fn's graph.
func buildSample(g *graphs.Graph, fn *ast.Node, slot int, correctName string, buggy bool, vocab *graphs.Vocab) *Sample {
	names, _ := g.Variables()
	if len(names) > MaxCandidates {
		names = names[:MaxCandidates]
	}
	// Ensure the correct and current names are among the candidates.
	ensure := func(nm string) {
		for _, c := range names {
			if c == nm {
				return
			}
		}
		names = append(names, nm)
	}
	ensure(correctName)
	ensure(g.VarName[slot])
	correct := -1
	for i, c := range names {
		if c == correctName {
			correct = i
		}
	}
	ids := make([]int, len(names))
	for i, c := range names {
		ids[i] = vocab.ID(c)
	}
	line := 0
	for n, id := range g.NodeOf {
		if id == slot {
			line = n.Line
		}
	}
	return &Sample{
		G: g, Slot: slot, Candidates: names, CandIDs: ids,
		Correct: correct, Buggy: buggy, Line: line,
	}
}

// CleanSamples returns one non-buggy sample per variable-use slot of the
// function (capped at max; 0 means all).
func CleanSamples(fn *ast.Node, vocab *graphs.Vocab, max int) []*Sample {
	g := graphs.Build(fn, vocab)
	uses := g.VarUses()
	if max > 0 && len(uses) > max {
		uses = uses[:max]
	}
	var out []*Sample
	for _, u := range uses {
		names, _ := g.Variables()
		if len(names) < 2 {
			continue
		}
		out = append(out, buildSample(g, fn, u, g.VarName[u], false, vocab))
	}
	return out
}

// Inject corrupts one random variable use in a clone of fn, replacing its
// name with a different in-scope variable, and returns the buggy sample
// (ok=false when the function has too few variables or uses).
func Inject(fn *ast.Node, vocab *graphs.Vocab, rng *rand.Rand) (*Sample, bool) {
	clone := fn.Clone()
	g0 := graphs.Build(clone, vocab)
	uses := g0.VarUses()
	names, _ := g0.Variables()
	if len(uses) == 0 || len(names) < 2 {
		return nil, false
	}
	slot := uses[rng.Intn(len(uses))]
	origName := g0.VarName[slot]
	// Pick a different name.
	var alternatives []string
	for _, n := range names {
		if n != origName {
			alternatives = append(alternatives, n)
		}
	}
	if len(alternatives) == 0 {
		return nil, false
	}
	wrong := alternatives[rng.Intn(len(alternatives))]
	// Mutate the AST node and rebuild so every edge reflects the bug.
	var slotNode *ast.Node
	for n, id := range g0.NodeOf {
		if id == slot {
			slotNode = n
		}
	}
	if slotNode == nil {
		return nil, false
	}
	slotNode.Value = wrong
	g := graphs.Build(clone, vocab)
	newSlot, ok := g.NodeOf[slotNode]
	if !ok {
		return nil, false
	}
	return buildSample(g, clone, newSlot, origName, true, vocab), true
}

// Scorer scores a sample's candidates; both baselines implement it.
type Scorer interface {
	// Score returns one score per candidate of the sample.
	Score(s *Sample) []float64
}

// Wrongness returns the model's belief that the slot is a misuse: the
// best alternative candidate's score minus the current name's score.
func Wrongness(m Scorer, s *Sample) (float64, int) {
	scores := m.Score(s)
	cur := s.CurrentIndex()
	curScore := 0.0
	if cur >= 0 && cur < len(scores) {
		curScore = scores[cur]
	}
	best, bestIdx := 0.0, -1
	for i, sc := range scores {
		if i == cur {
			continue
		}
		if bestIdx == -1 || sc > best {
			best, bestIdx = sc, i
		}
	}
	if bestIdx == -1 {
		return 0, cur
	}
	return best - curScore, bestIdx
}
