package knowledge

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"namer/internal/confusion"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// mustPath parses a name path in the textual notation or fails the test.
func mustPath(t *testing.T, s string) namepath.Path {
	t.Helper()
	p, ok := namepath.ParsePath(s)
	if !ok {
		t.Fatalf("bad path %q", s)
	}
	return p
}

// sampleArtifact builds a small but fully populated artifact for lang,
// optionally with classifier state.
func sampleArtifact(t *testing.T, lang string, classifier bool) *Artifact {
	t.Helper()
	pairs := confusion.NewPairSet()
	pairs.AddN("recieve", "receive", 7)
	pairs.AddN("cnt", "count", 3)
	a := &Artifact{
		Lang:  lang,
		Pairs: pairs,
		Patterns: []*pattern.Pattern{
			{
				Type: pattern.Consistency,
				Condition: []namepath.Path{
					mustPath(t, "Assign 1 Call 0 load"),
				},
				Deduction: []namepath.Path{
					mustPath(t, "Assign 0 NameStore 0 ε"),
					mustPath(t, "Assign 1 Call 1 NameLoad 0 ε"),
				},
				Count: 42, MatchCount: 40, SatisfyCount: 38,
			},
			{
				Type: pattern.ConfusingWord,
				Deduction: []namepath.Path{
					mustPath(t, "Expr 0 Call 0 AttributeLoad 1 receive"),
				},
				Count: 12, MatchCount: 12, SatisfyCount: 9,
			},
		},
	}
	if classifier {
		a.Classifier = &ml.PipelineState{
			Mean:    []float64{0.5, 1.25, -3},
			Std:     []float64{1, 2, 0.25},
			UsePCA:  true,
			PCAMean: []float64{0.1, 0.2, 0.3},
			PCACols: [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}},
			Weights: []float64{0.75, -0.25},
			Bias:    -0.125,
		}
	}
	return a
}

// assertEqualArtifacts compares every semantic component of two artifacts.
func assertEqualArtifacts(t *testing.T, want, got *Artifact) {
	t.Helper()
	if got.Lang != want.Lang {
		t.Fatalf("lang: %q vs %q", got.Lang, want.Lang)
	}
	if !reflect.DeepEqual(want.Pairs.Pairs(), got.Pairs.Pairs()) {
		t.Fatalf("pairs diverged: %v vs %v", want.Pairs.Pairs(), got.Pairs.Pairs())
	}
	for _, p := range want.Pairs.Pairs() {
		if want.Pairs.Count(p[0], p[1]) != got.Pairs.Count(p[0], p[1]) {
			t.Fatalf("pair count for %v diverged", p)
		}
	}
	if len(want.Patterns) != len(got.Patterns) {
		t.Fatalf("patterns: %d vs %d", len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		w, g := want.Patterns[i], got.Patterns[i]
		if w.Key() != g.Key() {
			t.Fatalf("pattern %d key: %q vs %q", i, g.Key(), w.Key())
		}
		if w.Count != g.Count || w.MatchCount != g.MatchCount || w.SatisfyCount != g.SatisfyCount {
			t.Fatalf("pattern %d stats diverged", i)
		}
	}
	if (want.Classifier == nil) != (got.Classifier == nil) {
		t.Fatalf("classifier presence: %v vs %v", got.Classifier != nil, want.Classifier != nil)
	}
	if want.Classifier != nil && !reflect.DeepEqual(want.Classifier, got.Classifier) {
		t.Fatalf("classifier state diverged:\n%+v\nvs\n%+v", got.Classifier, want.Classifier)
	}
}

func TestRoundTripAllLanguagesAndFormats(t *testing.T) {
	for _, lang := range []string{"Python", "Java", "Go"} {
		for _, classifier := range []bool{false, true} {
			for _, format := range []Format{FormatBinary, FormatJSON} {
				a := sampleArtifact(t, lang, classifier)
				data, err := Encode(a, format)
				if err != nil {
					t.Fatalf("%s/%v/classifier=%v: encode: %v", lang, format, classifier, err)
				}
				if got := DetectFormat(data); got != format {
					t.Fatalf("%v encoded bytes detected as %v", format, got)
				}
				back, err := Decode(data)
				if err != nil {
					t.Fatalf("%s/%v/classifier=%v: decode: %v", lang, format, classifier, err)
				}
				assertEqualArtifacts(t, a, back)
			}
		}
	}
}

func TestSaveLoadByExtensionAndSniffing(t *testing.T) {
	dir := t.TempDir()
	a := sampleArtifact(t, "Python", true)

	jsonPath := filepath.Join(dir, "knowledge.json")
	binPath := filepath.Join(dir, "knowledge.bin")
	if err := Save(jsonPath, a); err != nil {
		t.Fatal(err)
	}
	if err := Save(binPath, a); err != nil {
		t.Fatal(err)
	}
	jdata, _ := os.ReadFile(jsonPath)
	bdata, _ := os.ReadFile(binPath)
	if DetectFormat(jdata) != FormatJSON {
		t.Fatal(".json file did not encode as JSON")
	}
	if DetectFormat(bdata) != FormatBinary {
		t.Fatal(".bin file did not encode as binary")
	}
	// Load must sniff content, not trust the name: binary bytes under a
	// .json name still load.
	disguised := filepath.Join(dir, "disguised.json")
	if err := os.WriteFile(disguised, bdata, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, binPath, disguised} {
		back, err := Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		assertEqualArtifacts(t, a, back)
	}
	// No temp files left behind by the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestAtomicSavePreservesOldFileOnBadDir(t *testing.T) {
	dir := t.TempDir()
	a := sampleArtifact(t, "Java", false)
	path := filepath.Join(dir, "does", "not", "exist", "k.bin")
	if err := Save(path, a); err == nil {
		t.Fatal("expected error saving into a missing directory")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	jdata, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	bdata, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(bdata) >= len(jdata) {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bdata), len(jdata))
	}
}

// TestCorruptInputsErrorNotPanic drives the binary decoder over a large
// family of corrupt files: every truncation prefix, wrong magic, a future
// version, and single-byte flips. All must return errors (or succeed, for
// flips that land in don't-care bits) — never panic.
func TestCorruptInputsErrorNotPanic(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncated prefix must fail cleanly.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}

	// Wrong magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := DecodeBinary(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v", err)
	}
	// Decode (auto-detect) treats non-magic bytes as JSON and must also
	// fail without panicking.
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic decoded as JSON without error")
	}

	// Future version.
	bad = append([]byte{}, data...)
	bad[4] = 0x63 // varint 99
	if _, err := DecodeBinary(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: got %v", err)
	}

	// Flip every byte, one at a time. Decoding may succeed or fail, but
	// must never panic (DecodeBinary converts decoder panics to errors;
	// the test binary would crash on an unrecovered one).
	for i := range data {
		bad := append([]byte{}, data...)
		bad[i] ^= 0x55
		DecodeBinary(bad)
	}

	// Trailing garbage is rejected.
	if _, err := DecodeBinary(append(append([]byte{}, data...), 0xAB)); err == nil {
		t.Fatal("trailing garbage accepted")
	}

	// Corrupt JSON paths error as well.
	if _, err := Decode([]byte(`{"lang": "Python", "patterns": [{]`)); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, err := Decode([]byte(`{"lang":"Python","patterns":[{"type":"consistency","deduction":["x"]}]}`)); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestEmptyArtifactRoundTrip(t *testing.T) {
	a := &Artifact{Lang: "Go", Pairs: confusion.NewPairSet()}
	for _, format := range []Format{FormatBinary, FormatJSON} {
		data, err := Encode(a, format)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if back.Lang != "Go" || back.Pairs == nil || back.Pairs.Len() != 0 ||
			len(back.Patterns) != 0 || back.Classifier != nil {
			t.Fatalf("%v: empty artifact round-trip diverged: %+v", format, back)
		}
	}
	// A nil pair set encodes as empty rather than crashing.
	if _, err := EncodeBinary(&Artifact{Lang: "Go"}); err != nil {
		t.Fatal(err)
	}
}
