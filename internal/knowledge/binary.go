package knowledge

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"namer/internal/confusion"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// Binary format v1 (all integers are unsigned varints unless noted):
//
//	magic      4 bytes  0x9E 'N' 'K' 'B'
//	version    varint   1
//	strings    count, then per string: length + raw bytes
//	lang       string id
//	pairs      count, then per pair: mistaken id, correct id, count
//	patterns   count, then per pattern:
//	             type, Count, MatchCount, SatisfyCount,
//	             len(Condition) + paths, len(Deduction) + paths
//	             (path = len(Prefix), per elem: value id + index, end id)
//	classifier 0 or 1; when 1: UsePCA byte, Mean, Std, PCAMean,
//	             PCACols (row count, then rows), Weights, Bias
//	             (float slice = count + 8-byte little-endian IEEE754 each)
//
// Every name component is an index into the interned string table, so a
// subtoken that appears in thousands of paths is stored once. The empty
// string is a valid table entry (it encodes the symbolic path end ϵ).
//
// Format v2 (the default writer output) is the flat offset-based layout
// documented in flat.go. Both share the magic; the byte at offset 4
// distinguishes them (a varint 1 for v1, the byte 2 for v2), so either
// decoder rejects the other's output with a clear version error.

// magic identifies a binary knowledge file. The first byte is outside
// ASCII so binary artifacts can never be confused with JSON.
var magic = [4]byte{0x9E, 'N', 'K', 'B'}

// Version is the current binary format version (the flat v2 layout;
// see flat.go). Decoders reject unknown versions with a descriptive
// error instead of misparsing.
const Version = 2

// VersionV1 is the legacy varint-stream format, still fully readable
// and writable via EncodeBinaryV1/SaveV1.
const VersionV1 = 1

// Decode sanity bounds: counts above these limits indicate a corrupt or
// hostile file and fail fast instead of attempting a giant allocation.
const (
	maxStrings   = 1 << 26
	maxStringLen = 1 << 22
	maxPairs     = 1 << 26
	maxPatterns  = 1 << 26
	maxPaths     = 1 << 16
	maxElems     = 1 << 16
	maxFloats    = 1 << 24
)

// EncodeBinary renders the artifact in the current binary format (the
// flat v2 layout, openable in place via OpenBytes).
func EncodeBinary(a *Artifact) ([]byte, error) {
	return encodeFlat(a)
}

// EncodeBinaryV1 renders the artifact in the legacy v1 varint-stream
// format, kept for fleets that still run pre-v2 readers.
func EncodeBinaryV1(a *Artifact) ([]byte, error) {
	e := &encoder{byString: make(map[string]uint64)}

	// Pass 1: intern every string in deterministic order.
	e.intern(a.Lang)
	pairs := orderedPairs(a.Pairs)
	for _, p := range pairs {
		e.intern(p[0])
		e.intern(p[1])
	}
	for _, p := range a.Patterns {
		for _, np := range p.Condition {
			e.internPath(np)
		}
		for _, np := range p.Deduction {
			e.internPath(np)
		}
	}

	// Pass 2: emit.
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(VersionV1)
	e.uvarint(uint64(len(e.strings)))
	for _, s := range e.strings {
		e.str(s)
	}
	e.uvarint(e.byString[a.Lang])
	e.uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		e.uvarint(e.byString[p[0]])
		e.uvarint(e.byString[p[1]])
		e.uvarint(uint64(a.Pairs.Count(p[0], p[1])))
	}
	e.uvarint(uint64(len(a.Patterns)))
	for _, p := range a.Patterns {
		e.uvarint(uint64(p.Type))
		e.uvarint(uint64(p.Count))
		e.uvarint(uint64(p.MatchCount))
		e.uvarint(uint64(p.SatisfyCount))
		e.paths(p.Condition)
		e.paths(p.Deduction)
	}
	if a.Classifier == nil {
		e.buf = append(e.buf, 0)
	} else {
		c := a.Classifier
		e.buf = append(e.buf, 1)
		if c.UsePCA {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
		e.floats(c.Mean)
		e.floats(c.Std)
		e.floats(c.PCAMean)
		e.uvarint(uint64(len(c.PCACols)))
		for _, row := range c.PCACols {
			e.floats(row)
		}
		e.floats(c.Weights)
		e.float(c.Bias)
	}
	return e.buf, nil
}

// orderedPairs returns the pair set in its canonical (count-desc,
// lexicographic) order; nil sets encode as empty.
func orderedPairs(ps *confusion.PairSet) [][2]string {
	if ps == nil {
		return nil
	}
	return ps.Pairs()
}

type encoder struct {
	buf      []byte
	strings  []string
	byString map[string]uint64
	scratch  [binary.MaxVarintLen64]byte
}

func (e *encoder) intern(s string) {
	if _, ok := e.byString[s]; ok {
		return
	}
	e.byString[s] = uint64(len(e.strings))
	e.strings = append(e.strings, s)
}

func (e *encoder) internPath(p namepath.Path) {
	for _, el := range p.Prefix {
		e.intern(el.Value)
	}
	e.intern(p.End)
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf = append(e.buf, e.scratch[:n]...)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) paths(ps []namepath.Path) {
	e.uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.uvarint(uint64(len(p.Prefix)))
		for _, el := range p.Prefix {
			e.uvarint(e.byString[el.Value])
			e.uvarint(uint64(el.Index))
		}
		e.uvarint(e.byString[p.End])
	}
}

func (e *encoder) float(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) floats(fs []float64) {
	e.uvarint(uint64(len(fs)))
	for _, f := range fs {
		e.float(f)
	}
}

// DecodeBinary parses a binary artifact of any supported version,
// validating the magic, version, and every internal reference. Corrupt,
// truncated, or future-versioned inputs return descriptive errors —
// never panics.
func DecodeBinary(data []byte) (*Artifact, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("knowledge: not a binary knowledge file (bad magic)")
	}
	version, n := binary.Uvarint(data[len(magic):])
	if n <= 0 {
		return nil, fmt.Errorf("knowledge: truncated version at byte %d: %v", len(magic), io.ErrUnexpectedEOF)
	}
	switch version {
	case VersionV1:
		return decodeBinaryV1(data)
	case v2Version:
		v, err := OpenBytes(data)
		if err != nil {
			return nil, err
		}
		return v.Artifact(), nil
	default:
		return nil, fmt.Errorf("knowledge: unsupported binary version %d (this build reads versions %d and %d)",
			version, VersionV1, Version)
	}
}

// decodeBinaryV1 parses the legacy v1 varint stream.
func decodeBinaryV1(data []byte) (a *Artifact, err error) {
	defer func() {
		// The decoder bounds-checks everything it reads, but a decode
		// panic must surface as a corrupt-file error, not kill a serving
		// process.
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("knowledge: corrupt binary artifact: %v", r)
		}
	}()
	d := &decoder{buf: data}
	d.pos = len(magic)
	d.uvarint("version") // checked by DecodeBinary

	nstr := d.count("string table size", maxStrings)
	strings := make([]string, nstr)
	for i := range strings {
		strings[i] = d.str()
	}
	stringAt := func(what string) string {
		id := d.uvarint(what)
		if id >= uint64(len(strings)) {
			d.failf("%s: string id %d out of range (table has %d)", what, id, len(strings))
		}
		return strings[id]
	}

	a = &Artifact{Lang: stringAt("lang"), Pairs: confusion.NewPairSet()}
	npairs := d.count("pair count", maxPairs)
	for i := 0; i < npairs; i++ {
		mistaken := stringAt("pair mistaken word")
		correct := stringAt("pair correct word")
		n := d.uvarint("pair count value")
		a.Pairs.AddN(mistaken, correct, int(n))
	}

	npat := d.count("pattern count", maxPatterns)
	a.Patterns = make([]*pattern.Pattern, 0, npat)
	readPaths := func() []namepath.Path {
		n := d.count("path count", maxPaths)
		out := make([]namepath.Path, 0, n)
		for i := 0; i < n; i++ {
			ne := d.count("path prefix length", maxElems)
			p := namepath.Path{Prefix: make([]namepath.Elem, 0, ne)}
			for j := 0; j < ne; j++ {
				v := stringAt("path element value")
				idx := d.uvarint("path element index")
				p.Prefix = append(p.Prefix, namepath.Elem{Value: v, Index: int(idx)})
			}
			p.End = stringAt("path end")
			out = append(out, p.Memoized())
		}
		return out
	}
	for i := 0; i < npat; i++ {
		p := &pattern.Pattern{Type: pattern.Type(d.uvarint("pattern type"))}
		p.Count = int(d.uvarint("pattern count stat"))
		p.MatchCount = int(d.uvarint("pattern match count"))
		p.SatisfyCount = int(d.uvarint("pattern satisfy count"))
		p.Condition = readPaths()
		p.Deduction = readPaths()
		if !p.Valid() {
			return nil, fmt.Errorf("knowledge: pattern %d is invalid for type %v", i, p.Type)
		}
		a.Patterns = append(a.Patterns, p)
	}
	warmPatterns(a.Patterns)

	switch d.byte("classifier flag") {
	case 0:
	case 1:
		c := &ml.PipelineState{}
		c.UsePCA = d.byte("pca flag") != 0
		c.Mean = d.floats("mean")
		c.Std = d.floats("std")
		c.PCAMean = d.floats("pca mean")
		rows := d.count("pca rows", maxFloats)
		for i := 0; i < rows; i++ {
			c.PCACols = append(c.PCACols, d.floats("pca row"))
		}
		c.Weights = d.floats("weights")
		c.Bias = d.float("bias")
		a.Classifier = c
	default:
		return nil, fmt.Errorf("knowledge: corrupt classifier flag")
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("knowledge: %d trailing bytes after artifact", len(d.buf)-d.pos)
	}
	return a, nil
}

// decoder reads the buffer sequentially. Malformed input aborts via a
// decodeError panic, converted to an error at the DecodeBinary boundary —
// this keeps the happy path free of error plumbing on every varint.
type decoder struct {
	buf []byte
	pos int
}

type decodeError struct{ msg string }

func (e decodeError) String() string { return e.msg }

func (d *decoder) failf(format string, args ...any) {
	panic(decodeError{fmt.Sprintf(format, args...)})
}

func (d *decoder) uvarint(what string) uint64 {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.failf("truncated %s at byte %d: %v", what, d.pos, io.ErrUnexpectedEOF)
	}
	d.pos += n
	return v
}

// count reads a varint meant to size an allocation, rejecting values past
// the sanity limit or past what the remaining bytes could possibly hold.
func (d *decoder) count(what string, limit int) int {
	v := d.uvarint(what)
	if v > uint64(limit) || v > uint64(len(d.buf)-d.pos) {
		d.failf("implausible %s %d at byte %d", what, v, d.pos)
	}
	return int(v)
}

func (d *decoder) byte(what string) byte {
	if d.pos >= len(d.buf) {
		d.failf("truncated %s at byte %d: %v", what, d.pos, io.ErrUnexpectedEOF)
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) str() string {
	n := d.count("string length", maxStringLen)
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) float(what string) float64 {
	if len(d.buf)-d.pos < 8 {
		d.failf("truncated %s at byte %d: %v", what, d.pos, io.ErrUnexpectedEOF)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return f
}

func (d *decoder) floats(what string) []float64 {
	n := d.count(what+" length", maxFloats)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.float(what)
	}
	return out
}
