package knowledge

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"namer/internal/confusion"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// Binary format version 2: a flat, offset-based layout designed to be
// used directly from a read-only byte slice (a plain file read or an
// mmap). Nothing is materialized at open time — validation is a header
// check, a CRC-32C checksum, and one bounds pass over the index
// sections, after which every accessor reads the artifact in place.
// All integers are fixed-width little-endian, so any record is O(1)
// addressable:
//
//	off   0  magic      4 bytes, 0x9E 'N' 'K' 'B' (shared with v1)
//	off   4  version    1 byte, 2 (a valid uvarint, so v1 readers see
//	                    "unsupported version 2", never a misparse)
//	off   5  pad        3 zero bytes
//	off   8  checksum   u32, CRC-32C over bytes [0,8) ++ [12,len)
//	off  12  length     u32, total file length (rejects truncation and
//	                    trailing garbage before the checksum runs)
//	off  16  fields     21 × u32 (see the hdr* constants): the lang
//	                    string id, and per section its element count and
//	                    absolute byte offset
//
// Sections (any order; offsets are absolute):
//
//	string offsets  u32 × (nStrings+1), cumulative starts into the blob
//	string blob     raw bytes; string i = blob[offs[i]:offs[i+1]]
//	pairs           12 B each: mistaken id, correct id, count
//	elems           8 B each: value string id, child index
//	paths           12 B each: elem start, elem count, end string id
//	patterns        32 B each: type, count, match count, satisfy count,
//	                condition path start/count, deduction path start/count
//	floats          8 B each, IEEE-754 LE: mean ++ std ++ pcaMean ++
//	                pca (rows×cols, row-major) ++ weights ++ bias
//
// Paths reference a shared elem array and patterns reference a shared
// path array, so the entire pattern set is three flat tables plus one
// interned string table — the on-disk mirror of the arena layout the
// FP-tree already uses in memory.

// v2Version is the flat-format version byte.
const v2Version = 2

// Header field indices (u32 slots starting at byte 16).
const (
	hdrLang = iota
	hdrNumStrings
	hdrStrOffsOff
	hdrStrBlobOff
	hdrStrBlobLen
	hdrNumPairs
	hdrPairsOff
	hdrNumElems
	hdrElemsOff
	hdrNumPaths
	hdrPathsOff
	hdrNumPatterns
	hdrPatternsOff
	hdrClsFlags
	hdrFloatsOff
	hdrNumMean
	hdrNumStd
	hdrNumPCAMean
	hdrPCARows
	hdrPCACols
	hdrNumWeights

	hdrFields
)

// Fixed byte offsets and record sizes of the v2 layout.
const (
	v2ChecksumOff = 8
	v2LengthOff   = 12
	v2FieldsOff   = 16
	v2HeaderLen   = v2FieldsOff + hdrFields*4

	v2PairSize    = 12
	v2ElemSize    = 8
	v2PathSize    = 12
	v2PatternSize = 32
)

// Classifier flag bits (hdrClsFlags).
const (
	clsPresent = 1 << 0
	clsUsePCA  = 1 << 1
)

// crcTable is the CRC-32C (Castagnoli) polynomial, hardware-accelerated
// on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// v2Checksum computes the artifact checksum: everything except the
// 4-byte checksum field itself.
func v2Checksum(data []byte) uint32 {
	c := crc32.Update(0, crcTable, data[:v2ChecksumOff])
	return crc32.Update(c, crcTable, data[v2ChecksumOff+4:])
}

// encodeFlat renders the artifact in the v2 flat layout.
func encodeFlat(a *Artifact) ([]byte, error) {
	e := &encoder{byString: make(map[string]uint64)}
	// Intern every string in the same deterministic order as v1, so the
	// string table is stable across format versions.
	e.intern(a.Lang)
	pairs := orderedPairs(a.Pairs)
	for _, p := range pairs {
		e.intern(p[0])
		e.intern(p[1])
	}
	for _, p := range a.Patterns {
		for _, np := range p.Condition {
			e.internPath(np)
		}
		for _, np := range p.Deduction {
			e.internPath(np)
		}
	}

	// Flatten patterns into the shared elem and path tables.
	type flatPath struct{ elemStart, elemCount, end uint32 }
	type flatPattern struct{ f [8]uint32 }
	var elems []uint32 // (value id, child index) pairs, flattened
	var paths []flatPath
	var pats []flatPattern
	addPath := func(np namepath.Path) error {
		fp := flatPath{elemStart: uint32(len(elems) / 2), elemCount: uint32(len(np.Prefix))}
		for _, el := range np.Prefix {
			if el.Index < 0 || el.Index > math.MaxInt32 {
				return fmt.Errorf("knowledge: path element index %d out of int32 range", el.Index)
			}
			elems = append(elems, uint32(e.byString[el.Value]), uint32(el.Index))
		}
		fp.end = uint32(e.byString[np.End])
		paths = append(paths, fp)
		return nil
	}
	u32stat := func(what string, v int) (uint32, error) {
		if v < 0 || v > math.MaxInt32 {
			return 0, fmt.Errorf("knowledge: pattern %s %d out of int32 range", what, v)
		}
		return uint32(v), nil
	}
	for _, p := range a.Patterns {
		var fp flatPattern
		var err error
		fp.f[0] = uint32(p.Type)
		if fp.f[1], err = u32stat("count", p.Count); err != nil {
			return nil, err
		}
		if fp.f[2], err = u32stat("match count", p.MatchCount); err != nil {
			return nil, err
		}
		if fp.f[3], err = u32stat("satisfy count", p.SatisfyCount); err != nil {
			return nil, err
		}
		fp.f[4], fp.f[5] = uint32(len(paths)), uint32(len(p.Condition))
		for _, np := range p.Condition {
			if err := addPath(np); err != nil {
				return nil, err
			}
		}
		fp.f[6], fp.f[7] = uint32(len(paths)), uint32(len(p.Deduction))
		for _, np := range p.Deduction {
			if err := addPath(np); err != nil {
				return nil, err
			}
		}
		pats = append(pats, fp)
	}

	// Classifier floats: one contiguous blob, bias last.
	var floats []float64
	var flags uint32
	var nMean, nStd, nPCAMean, pcaRows, pcaCols, nWeights uint32
	if c := a.Classifier; c != nil {
		flags = clsPresent
		if c.UsePCA {
			flags |= clsUsePCA
		}
		nMean, nStd, nPCAMean = uint32(len(c.Mean)), uint32(len(c.Std)), uint32(len(c.PCAMean))
		nWeights = uint32(len(c.Weights))
		pcaRows = uint32(len(c.PCACols))
		if pcaRows > 0 {
			pcaCols = uint32(len(c.PCACols[0]))
		}
		floats = append(floats, c.Mean...)
		floats = append(floats, c.Std...)
		floats = append(floats, c.PCAMean...)
		for _, row := range c.PCACols {
			if uint32(len(row)) != pcaCols {
				return nil, fmt.Errorf("knowledge: ragged PCA matrix (%d vs %d cols)", len(row), pcaCols)
			}
			floats = append(floats, row...)
		}
		floats = append(floats, c.Weights...)
		floats = append(floats, c.Bias)
	}

	// Lay out the sections and emit.
	var h [hdrFields]uint32
	strBlobLen := 0
	for _, s := range e.strings {
		strBlobLen += len(s)
	}
	pos := uint32(v2HeaderLen)
	place := func(n int, size int) uint32 {
		off := pos
		pos += uint32(n * size)
		return off
	}
	h[hdrLang] = uint32(e.byString[a.Lang])
	h[hdrNumStrings] = uint32(len(e.strings))
	h[hdrStrOffsOff] = place(len(e.strings)+1, 4)
	h[hdrStrBlobOff] = place(strBlobLen, 1)
	h[hdrStrBlobLen] = uint32(strBlobLen)
	h[hdrNumPairs] = uint32(len(pairs))
	h[hdrPairsOff] = place(len(pairs), v2PairSize)
	h[hdrNumElems] = uint32(len(elems) / 2)
	h[hdrElemsOff] = place(len(elems)/2, v2ElemSize)
	h[hdrNumPaths] = uint32(len(paths))
	h[hdrPathsOff] = place(len(paths), v2PathSize)
	h[hdrNumPatterns] = uint32(len(pats))
	h[hdrPatternsOff] = place(len(pats), v2PatternSize)
	h[hdrClsFlags] = flags
	h[hdrFloatsOff] = place(len(floats), 8)
	h[hdrNumMean], h[hdrNumStd], h[hdrNumPCAMean] = nMean, nStd, nPCAMean
	h[hdrPCARows], h[hdrPCACols], h[hdrNumWeights] = pcaRows, pcaCols, nWeights

	buf := make([]byte, pos)
	copy(buf, magic[:])
	buf[4] = v2Version
	binary.LittleEndian.PutUint32(buf[v2LengthOff:], pos)
	for i, f := range h {
		binary.LittleEndian.PutUint32(buf[v2FieldsOff+4*i:], f)
	}
	off := h[hdrStrOffsOff]
	cum := uint32(0)
	for _, s := range e.strings {
		binary.LittleEndian.PutUint32(buf[off:], cum)
		off += 4
		cum += uint32(len(s))
	}
	binary.LittleEndian.PutUint32(buf[off:], cum)
	off = h[hdrStrBlobOff]
	for _, s := range e.strings {
		copy(buf[off:], s)
		off += uint32(len(s))
	}
	off = h[hdrPairsOff]
	for _, p := range pairs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.byString[p[0]]))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.byString[p[1]]))
		n := a.Pairs.Count(p[0], p[1])
		if n < 0 || n > math.MaxInt32 {
			return nil, fmt.Errorf("knowledge: pair count %d out of int32 range", n)
		}
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(n))
		off += v2PairSize
	}
	off = h[hdrElemsOff]
	for _, v := range elems {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	off = h[hdrPathsOff]
	for _, p := range paths {
		binary.LittleEndian.PutUint32(buf[off:], p.elemStart)
		binary.LittleEndian.PutUint32(buf[off+4:], p.elemCount)
		binary.LittleEndian.PutUint32(buf[off+8:], p.end)
		off += v2PathSize
	}
	off = h[hdrPatternsOff]
	for _, p := range pats {
		for _, f := range p.f {
			binary.LittleEndian.PutUint32(buf[off:], f)
			off += 4
		}
	}
	off = h[hdrFloatsOff]
	for _, f := range floats {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[v2ChecksumOff:], v2Checksum(buf))
	return buf, nil
}

// View is a validated read-only view over a v2 artifact. It holds only
// the raw bytes — no patterns, paths, or strings are materialized — so
// opening one is O(1) in allocations regardless of artifact size, and N
// processes can share one mapped file. Accessors read the flat layout
// in place; Artifact materializes the traditional pointer form when a
// scan index is needed. The underlying slice must not be mutated while
// the View is in use.
type View struct {
	data []byte
	h    [hdrFields]uint32
}

// Open reads path and returns a validated View. The file contents are
// read once; everything afterwards is in-place access.
func Open(path string) (*View, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	v, err := OpenBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// OpenBytes validates data as a v2 artifact and returns a View over it.
// Validation is the fixed-size header, the checksum, and one bounds
// pass over the index sections — no tree construction, no per-pattern
// allocation. After a nil error, no accessor can read out of bounds.
func OpenBytes(data []byte) (*View, error) {
	if len(data) < v2HeaderLen {
		return nil, fmt.Errorf("knowledge: v2 artifact truncated (%d bytes, header needs %d)", len(data), v2HeaderLen)
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("knowledge: not a binary knowledge file (bad magic)")
	}
	if data[4] != v2Version {
		return nil, fmt.Errorf("knowledge: not a v2 artifact (version %d)", data[4])
	}
	if n := binary.LittleEndian.Uint32(data[v2LengthOff:]); uint64(n) != uint64(len(data)) {
		return nil, fmt.Errorf("knowledge: v2 length field %d does not match file size %d (truncated or trailing bytes)", n, len(data))
	}
	if got, want := v2Checksum(data), binary.LittleEndian.Uint32(data[v2ChecksumOff:]); got != want {
		return nil, fmt.Errorf("knowledge: v2 checksum mismatch (file %08x, computed %08x)", want, got)
	}
	v := &View{data: data}
	for i := range v.h {
		v.h[i] = binary.LittleEndian.Uint32(data[v2FieldsOff+4*i:])
	}
	if err := v.validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// section checks that count records of size bytes starting at off fit
// inside the payload (and past the header), in overflow-safe arithmetic.
func (v *View) section(what string, off, count uint32, size, limit int) error {
	if uint64(count) > uint64(limit) {
		return fmt.Errorf("knowledge: v2: implausible %s count %d", what, count)
	}
	end := uint64(off) + uint64(count)*uint64(size)
	if off < v2HeaderLen || end > uint64(len(v.data)) {
		return fmt.Errorf("knowledge: v2: %s section [%d, %d) out of bounds (file is %d bytes)",
			what, off, end, len(v.data))
	}
	return nil
}

// validate runs the one-shot bounds pass: every section inside the
// file, string offsets monotone, and every cross-table index in range.
// It allocates nothing.
func (v *View) validate() error {
	h := &v.h
	nStr := h[hdrNumStrings]
	if err := v.section("string offset table", h[hdrStrOffsOff], nStr+1, 4, maxStrings+1); err != nil {
		return err
	}
	if err := v.section("string blob", h[hdrStrBlobOff], h[hdrStrBlobLen], 1, math.MaxInt32); err != nil {
		return err
	}
	if err := v.section("pair", h[hdrPairsOff], h[hdrNumPairs], v2PairSize, maxPairs); err != nil {
		return err
	}
	if err := v.section("elem", h[hdrElemsOff], h[hdrNumElems], v2ElemSize, maxStrings); err != nil {
		return err
	}
	if err := v.section("path", h[hdrPathsOff], h[hdrNumPaths], v2PathSize, maxStrings); err != nil {
		return err
	}
	if err := v.section("pattern", h[hdrPatternsOff], h[hdrNumPatterns], v2PatternSize, maxPatterns); err != nil {
		return err
	}
	prev := uint32(0)
	for i := uint32(0); i <= nStr; i++ {
		off := v.u32(h[hdrStrOffsOff] + 4*i)
		if off < prev || off > h[hdrStrBlobLen] {
			return fmt.Errorf("knowledge: v2: string offset table corrupt at entry %d (%d after %d, blob is %d bytes)",
				i, off, prev, h[hdrStrBlobLen])
		}
		prev = off
	}
	if h[hdrLang] >= nStr {
		return fmt.Errorf("knowledge: v2: lang string id %d out of range (table has %d)", h[hdrLang], nStr)
	}
	for i := uint32(0); i < h[hdrNumPairs]; i++ {
		off := h[hdrPairsOff] + i*v2PairSize
		if v.u32(off) >= nStr || v.u32(off+4) >= nStr {
			return fmt.Errorf("knowledge: v2: pair %d references string out of range", i)
		}
	}
	for i := uint32(0); i < h[hdrNumElems]; i++ {
		if v.u32(h[hdrElemsOff]+i*v2ElemSize) >= nStr {
			return fmt.Errorf("knowledge: v2: path element %d references string out of range", i)
		}
	}
	for i := uint32(0); i < h[hdrNumPaths]; i++ {
		off := h[hdrPathsOff] + i*v2PathSize
		if uint64(v.u32(off))+uint64(v.u32(off+4)) > uint64(h[hdrNumElems]) {
			return fmt.Errorf("knowledge: v2: path %d elem range out of bounds", i)
		}
		if v.u32(off+8) >= nStr {
			return fmt.Errorf("knowledge: v2: path %d end string out of range", i)
		}
	}
	for i := uint32(0); i < h[hdrNumPatterns]; i++ {
		off := h[hdrPatternsOff] + i*v2PatternSize
		typ := v.u32(off)
		condStart, condCount := v.u32(off+16), v.u32(off+20)
		dedStart, dedCount := v.u32(off+24), v.u32(off+28)
		if uint64(condStart)+uint64(condCount) > uint64(h[hdrNumPaths]) ||
			uint64(dedStart)+uint64(dedCount) > uint64(h[hdrNumPaths]) {
			return fmt.Errorf("knowledge: v2: pattern %d path range out of bounds", i)
		}
		// Shape check, mirroring pattern.Valid: consistency patterns have
		// two symbolic deduction paths, confusing-word patterns one
		// concrete deduction path. Symbolic means the end string is empty.
		switch pattern.Type(typ) {
		case pattern.Consistency:
			if dedCount != 2 || !v.pathSymbolic(dedStart) || !v.pathSymbolic(dedStart+1) {
				return fmt.Errorf("knowledge: v2: pattern %d is invalid for type consistency", i)
			}
		case pattern.ConfusingWord:
			if dedCount != 1 || v.pathSymbolic(dedStart) {
				return fmt.Errorf("knowledge: v2: pattern %d is invalid for type confusing-word", i)
			}
		default:
			return fmt.Errorf("knowledge: v2: pattern %d has unknown type %d", i, typ)
		}
	}
	flags := h[hdrClsFlags]
	if flags&^uint32(clsPresent|clsUsePCA) != 0 {
		return fmt.Errorf("knowledge: v2: unknown classifier flags %#x", flags)
	}
	for _, c := range []struct {
		what string
		n    uint32
	}{
		{"mean", h[hdrNumMean]}, {"std", h[hdrNumStd]}, {"pca mean", h[hdrNumPCAMean]},
		{"pca rows", h[hdrPCARows]}, {"pca cols", h[hdrPCACols]}, {"weights", h[hdrNumWeights]},
	} {
		if c.n > maxFloats {
			return fmt.Errorf("knowledge: v2: implausible classifier %s count %d", c.what, c.n)
		}
		if flags&clsPresent == 0 && c.n != 0 {
			return fmt.Errorf("knowledge: v2: classifier %s count %d without a classifier", c.what, c.n)
		}
	}
	if err := v.section("float", h[hdrFloatsOff], uint32(v.numFloats()), 8, maxFloats); err != nil {
		return err
	}
	return nil
}

// numFloats is the float-blob length implied by the classifier counts
// (bias included when a classifier is present). Bounded by validate's
// per-count limits, so the multiplication cannot overflow.
func (v *View) numFloats() uint64 {
	if v.h[hdrClsFlags]&clsPresent == 0 {
		return 0
	}
	return uint64(v.h[hdrNumMean]) + uint64(v.h[hdrNumStd]) + uint64(v.h[hdrNumPCAMean]) +
		uint64(v.h[hdrPCARows])*uint64(v.h[hdrPCACols]) + uint64(v.h[hdrNumWeights]) + 1
}

func (v *View) u32(off uint32) uint32 { return binary.LittleEndian.Uint32(v.data[off:]) }

// str materializes string table entry i (validated to be in range).
func (v *View) str(i uint32) string {
	lo := v.u32(v.h[hdrStrOffsOff] + 4*i)
	hi := v.u32(v.h[hdrStrOffsOff] + 4*i + 4)
	return string(v.data[v.h[hdrStrBlobOff]+lo : v.h[hdrStrBlobOff]+hi])
}

// strLen is str without the allocation, for validation predicates.
func (v *View) strLen(i uint32) uint32 {
	return v.u32(v.h[hdrStrOffsOff]+4*i+4) - v.u32(v.h[hdrStrOffsOff]+4*i)
}

// pathSymbolic reports whether path i ends in ϵ (the empty string).
func (v *View) pathSymbolic(i uint32) bool {
	return v.strLen(v.u32(v.h[hdrPathsOff]+i*v2PathSize+8)) == 0
}

// FormatVersion returns 2.
func (v *View) FormatVersion() int { return v2Version }

// Checksum returns the artifact's CRC-32C, usable as a cheap identity.
func (v *View) Checksum() uint32 {
	return binary.LittleEndian.Uint32(v.data[v2ChecksumOff:])
}

// Size returns the artifact size in bytes.
func (v *View) Size() int { return len(v.data) }

// Lang returns the knowledge language name.
func (v *View) Lang() string { return v.str(v.h[hdrLang]) }

// NumPatterns returns the pattern count without decoding any pattern.
func (v *View) NumPatterns() int { return int(v.h[hdrNumPatterns]) }

// NumPairs returns the confusing-pair count.
func (v *View) NumPairs() int { return int(v.h[hdrNumPairs]) }

// HasClassifier reports whether trained classifier state is present.
func (v *View) HasClassifier() bool { return v.h[hdrClsFlags]&clsPresent != 0 }

// Pair returns confusing pair i in place.
func (v *View) Pair(i int) (mistaken, correct string, count int) {
	off := v.h[hdrPairsOff] + uint32(i)*v2PairSize
	return v.str(v.u32(off)), v.str(v.u32(off + 4)), int(v.u32(off + 8))
}

// path materializes path i, sharing the elem arena when one is given.
func (v *View) path(i uint32, arena []namepath.Elem) namepath.Path {
	off := v.h[hdrPathsOff] + i*v2PathSize
	start, count := v.u32(off), v.u32(off+4)
	var prefix []namepath.Elem
	if arena != nil {
		prefix = arena[start : start+count : start+count]
	} else {
		prefix = make([]namepath.Elem, count)
		for j := uint32(0); j < count; j++ {
			eoff := v.h[hdrElemsOff] + (start+j)*v2ElemSize
			prefix[j] = namepath.Elem{Value: v.str(v.u32(eoff)), Index: int(v.u32(eoff + 4))}
		}
	}
	return namepath.Path{Prefix: prefix, End: v.str(v.u32(off + 8))}.Memoized()
}

// pattern builds pattern i into p, using the shared path arena when
// given (Artifact passes one; Pattern passes nil and decodes in place).
func (v *View) pattern(i uint32, p *pattern.Pattern, paths []namepath.Path) {
	off := v.h[hdrPatternsOff] + i*v2PatternSize
	p.Type = pattern.Type(v.u32(off))
	p.Count = int(v.u32(off + 4))
	p.MatchCount = int(v.u32(off + 8))
	p.SatisfyCount = int(v.u32(off + 12))
	slice := func(start, count uint32) []namepath.Path {
		if paths != nil {
			return paths[start : start+count : start+count]
		}
		out := make([]namepath.Path, count)
		for j := uint32(0); j < count; j++ {
			out[j] = v.path(start+j, nil)
		}
		return out
	}
	p.Condition = slice(v.u32(off+16), v.u32(off+20))
	p.Deduction = slice(v.u32(off+24), v.u32(off+28))
}

// Pattern materializes pattern i on demand — the rest of the artifact
// stays untouched, which is what lets selective consumers (an explain
// endpoint, a pattern browser) work off one shared artifact.
func (v *View) Pattern(i int) *pattern.Pattern {
	p := &pattern.Pattern{}
	v.pattern(uint32(i), p, nil)
	p.Key()
	return p
}

// Artifact materializes the whole artifact into the traditional pointer
// form (what the scan index consumes). Unlike the v1 decoder this is a
// flat pass over pre-validated tables: the string table is decoded
// once, path elements land in a single shared arena, and patterns are
// one slab — so even the slow path allocates far less than v1.
func (v *View) Artifact() *Artifact {
	strs := make([]string, v.h[hdrNumStrings])
	for i := range strs {
		strs[i] = v.str(uint32(i))
	}
	a := &Artifact{Lang: strs[v.h[hdrLang]], Pairs: confusion.NewPairSet()}
	for i := uint32(0); i < v.h[hdrNumPairs]; i++ {
		off := v.h[hdrPairsOff] + i*v2PairSize
		a.Pairs.AddN(strs[v.u32(off)], strs[v.u32(off+4)], int(v.u32(off+8)))
	}
	elems := make([]namepath.Elem, v.h[hdrNumElems])
	for i := range elems {
		off := v.h[hdrElemsOff] + uint32(i)*v2ElemSize
		elems[i] = namepath.Elem{Value: strs[v.u32(off)], Index: int(v.u32(off + 4))}
	}
	paths := make([]namepath.Path, v.h[hdrNumPaths])
	for i := range paths {
		off := v.h[hdrPathsOff] + uint32(i)*v2PathSize
		start, count := v.u32(off), v.u32(off+4)
		paths[i] = namepath.Path{
			Prefix: elems[start : start+count : start+count],
			End:    strs[v.u32(off+8)],
		}.Memoized()
	}
	if n := v.h[hdrNumPatterns]; n > 0 {
		slab := make([]pattern.Pattern, n)
		a.Patterns = make([]*pattern.Pattern, n)
		for i := uint32(0); i < n; i++ {
			v.pattern(i, &slab[i], paths)
			a.Patterns[i] = &slab[i]
		}
	}
	warmPatterns(a.Patterns)
	if v.HasClassifier() {
		c := &ml.PipelineState{UsePCA: v.h[hdrClsFlags]&clsUsePCA != 0}
		off := v.h[hdrFloatsOff]
		take := func(n uint32) []float64 {
			if n == 0 {
				return nil
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = math.Float64frombits(binary.LittleEndian.Uint64(v.data[off:]))
				off += 8
			}
			return out
		}
		c.Mean = take(v.h[hdrNumMean])
		c.Std = take(v.h[hdrNumStd])
		c.PCAMean = take(v.h[hdrNumPCAMean])
		for i := uint32(0); i < v.h[hdrPCARows]; i++ {
			c.PCACols = append(c.PCACols, take(v.h[hdrPCACols]))
		}
		c.Weights = take(v.h[hdrNumWeights])
		c.Bias = math.Float64frombits(binary.LittleEndian.Uint64(v.data[off:]))
		a.Classifier = c
	}
	return a
}
