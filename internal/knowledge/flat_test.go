package knowledge

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"namer/internal/confusion"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// reseal recomputes the checksum after test surgery so corruption in a
// specific field is exercised, not just the CRC.
func reseal(data []byte) {
	binary.LittleEndian.PutUint32(data[v2ChecksumOff:], v2Checksum(data))
}

// largeArtifact builds an artifact with n synthetic consistency patterns
// so alloc-constancy can be checked against a much bigger input.
func largeArtifact(n int) *Artifact {
	pairs := confusion.NewPairSet()
	a := &Artifact{Lang: "Python", Pairs: pairs}
	for i := 0; i < n; i++ {
		pairs.AddN(fmt.Sprintf("wrng%d", i), fmt.Sprintf("wrong%d", i), i+1)
		a.Patterns = append(a.Patterns, &pattern.Pattern{
			Type: pattern.Consistency,
			Condition: []namepath.Path{{
				Prefix: []namepath.Elem{{Value: fmt.Sprintf("Call%d", i), Index: i}},
				End:    fmt.Sprintf("load%d", i),
			}},
			Deduction: []namepath.Path{
				{Prefix: []namepath.Elem{{Value: "Assign", Index: 0}}, End: namepath.Epsilon},
				{Prefix: []namepath.Elem{{Value: "Assign", Index: 1}}, End: namepath.Epsilon},
			},
			Count: i + 3, MatchCount: i + 2, SatisfyCount: i + 1,
		})
	}
	return a
}

func TestV1V2DecodeEquivalence(t *testing.T) {
	for _, classifier := range []bool{false, true} {
		a := sampleArtifact(t, "Python", classifier)
		v1, err := EncodeBinaryV1(a)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := EncodeBinary(a)
		if err != nil {
			t.Fatal(err)
		}
		if v1[4] != 0x01 || v2[4] != 0x02 {
			t.Fatalf("version bytes: v1=%#x v2=%#x", v1[4], v2[4])
		}
		fromV1, err := DecodeBinary(v1)
		if err != nil {
			t.Fatalf("decode v1: %v", err)
		}
		fromV2, err := DecodeBinary(v2)
		if err != nil {
			t.Fatalf("decode v2: %v", err)
		}
		assertEqualArtifacts(t, a, fromV1)
		assertEqualArtifacts(t, a, fromV2)
		assertEqualArtifacts(t, fromV1, fromV2)
	}
}

func TestSaveV1LoadsViaDispatch(t *testing.T) {
	a := sampleArtifact(t, "Java", true)
	path := filepath.Join(t.TempDir(), "k.bin")
	if err := SaveV1(path, a); err != nil {
		t.Fatal(err)
	}
	back, info, err := LoadWithInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualArtifacts(t, a, back)
	if info.Format != FormatBinary || info.FormatVersion != VersionV1 {
		t.Fatalf("v1 artifact reported as %v v%d", info.Format, info.FormatVersion)
	}
}

func TestLoadWithInfoIdentity(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "k.bin")
	jsonPath := filepath.Join(dir, "k.json")
	if err := Save(binPath, a); err != nil {
		t.Fatal(err)
	}
	if err := Save(jsonPath, a); err != nil {
		t.Fatal(err)
	}
	_, binInfo, err := LoadWithInfo(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if binInfo.Format != FormatBinary || binInfo.FormatVersion != Version {
		t.Fatalf("bin info: %v v%d", binInfo.Format, binInfo.FormatVersion)
	}
	if len(binInfo.ContentHash) != 64 || binInfo.Bytes == 0 || binInfo.LoadedAt.IsZero() {
		t.Fatalf("bin info incomplete: %+v", binInfo)
	}
	_, jsonInfo, err := LoadWithInfo(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if jsonInfo.Format != FormatJSON || jsonInfo.FormatVersion != 0 {
		t.Fatalf("json info: %v v%d", jsonInfo.Format, jsonInfo.FormatVersion)
	}
	if jsonInfo.ContentHash == binInfo.ContentHash {
		t.Fatal("different bytes produced the same content hash")
	}
	// Identical bytes hash identically across loads.
	_, again, err := LoadWithInfo(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if again.ContentHash != binInfo.ContentHash {
		t.Fatal("content hash not stable across loads of identical bytes")
	}
}

func TestViewAccessors(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.FormatVersion() != 2 || v.Size() != len(data) {
		t.Fatalf("FormatVersion=%d Size=%d", v.FormatVersion(), v.Size())
	}
	if v.Checksum() != v2Checksum(data) {
		t.Fatal("Checksum does not match recomputed CRC")
	}
	if v.Lang() != "Python" || v.NumPatterns() != len(a.Patterns) || v.NumPairs() != a.Pairs.Len() {
		t.Fatalf("Lang=%q NumPatterns=%d NumPairs=%d", v.Lang(), v.NumPatterns(), v.NumPairs())
	}
	if !v.HasClassifier() {
		t.Fatal("classifier not visible through the view")
	}
	wantPairs := a.Pairs.Pairs()
	for i := range wantPairs {
		m, c, n := v.Pair(i)
		if m != wantPairs[i][0] || c != wantPairs[i][1] || n != a.Pairs.Count(m, c) {
			t.Fatalf("Pair(%d) = %q %q %d", i, m, c, n)
		}
	}
	for i := range a.Patterns {
		if got, want := v.Pattern(i).Key(), a.Patterns[i].Key(); got != want {
			t.Fatalf("Pattern(%d) key %q, want %q", i, got, want)
		}
	}
	assertEqualArtifacts(t, a, v.Artifact())
}

// TestOpenBytesConstantAllocs pins the headline v2 property: opening an
// artifact allocates a constant amount regardless of how much knowledge
// it holds.
func TestOpenBytesConstantAllocs(t *testing.T) {
	small, err := EncodeBinary(largeArtifact(1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := EncodeBinary(largeArtifact(2000))
	if err != nil {
		t.Fatal(err)
	}
	measure := func(data []byte) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := OpenBytes(data); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs, bigAllocs := measure(small), measure(big)
	if smallAllocs != bigAllocs {
		t.Fatalf("open allocs scale with artifact size: %v (1 pattern) vs %v (2000 patterns)",
			smallAllocs, bigAllocs)
	}
	if bigAllocs > 4 {
		t.Fatalf("open allocates %v times, want O(1) (≤4)", bigAllocs)
	}
}

func TestV2LargeRoundTrip(t *testing.T) {
	a := largeArtifact(500)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualArtifacts(t, a, back)
}

// TestV2HeaderFieldCorruption sets every header field to an absurd value
// with a recomputed checksum, so the bounds pass — not the CRC — must
// catch it. Every field must produce an error, never a panic or an
// out-of-range read.
func TestV2HeaderFieldCorruption(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	for field := 0; field < hdrFields; field++ {
		bad := append([]byte{}, data...)
		binary.LittleEndian.PutUint32(bad[v2FieldsOff+4*field:], 0xFFFFFFFF)
		reseal(bad)
		if _, err := OpenBytes(bad); err == nil {
			t.Errorf("header field %d set to 0xFFFFFFFF accepted", field)
		}
		if _, err := DecodeBinary(bad); err == nil {
			t.Errorf("header field %d corruption accepted via DecodeBinary", field)
		}
	}
}

// TestV2TargetedCorruption drives resealed (valid-CRC) corruption into
// the index structures themselves: string offsets, cross-table indices,
// and pattern shape fields.
func TestV2TargetedCorruption(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	h := v.h

	corrupt := func(name string, off uint32, val uint32, wantErr string) {
		t.Helper()
		bad := append([]byte{}, data...)
		binary.LittleEndian.PutUint32(bad[off:], val)
		reseal(bad)
		_, err := OpenBytes(bad)
		if err == nil {
			t.Errorf("%s: accepted", name)
			return
		}
		if wantErr != "" && !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}

	// Non-monotone string offset table entry.
	corrupt("string offset beyond blob", h[hdrStrOffsOff]+4, h[hdrStrBlobLen]+100, "string offset table")
	// Pair referencing a string id past the table.
	corrupt("pair string id", h[hdrPairsOff], h[hdrNumStrings]+5, "pair 0")
	// Path element string id out of range.
	corrupt("elem string id", h[hdrElemsOff], h[hdrNumStrings], "element 0")
	// Path pointing past the elem table.
	corrupt("path elem start", h[hdrPathsOff], h[hdrNumElems]+1, "path 0")
	// Path end string out of range.
	corrupt("path end id", h[hdrPathsOff]+8, h[hdrNumStrings], "path 0 end")
	// Pattern with a path range past the path table.
	corrupt("pattern path start", h[hdrPatternsOff]+16, h[hdrNumPaths]+1, "pattern 0")
	// Pattern type out of the enum.
	corrupt("pattern type", h[hdrPatternsOff], 99, "unknown type")
	// Consistency pattern with the wrong deduction arity.
	corrupt("pattern deduction arity", h[hdrPatternsOff]+28, 1, "pattern 0")

	// Version byte corruption still mentions "version".
	bad := append([]byte{}, data...)
	bad[4] = 0x63
	reseal(bad)
	if _, err := DecodeBinary(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: got %v", err)
	}

	// Length field mismatch is caught before the checksum runs.
	bad = append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[v2LengthOff:], uint32(len(bad))+8)
	if _, err := OpenBytes(bad); err == nil || !strings.Contains(err.Error(), "length") {
		t.Errorf("length mismatch: got %v", err)
	}
}

// TestV2EveryByteFlipRejected: unlike v1 (where some flips land in
// don't-care bits), v2 is fully checksummed, so flipping any byte must
// produce an error.
func TestV2EveryByteFlipRejected(t *testing.T) {
	a := sampleArtifact(t, "Python", true)
	data, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte{}, data...)
		bad[i] ^= 0x55
		if _, err := OpenBytes(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file opened")
	}
	a := sampleArtifact(t, "Go", false)
	path := filepath.Join(t.TempDir(), "k1.bin")
	if err := SaveV1(path, a); err != nil {
		t.Fatal(err)
	}
	// Open is v2-only; v1 artifacts go through Load/DecodeBinary.
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v1 artifact through Open: %v", err)
	}
}
