package knowledge

import (
	"bytes"
	"testing"

	"namer/internal/confusion"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// seedArtifact builds a fully populated artifact without needing a
// *testing.T (sampleArtifact does; fuzz seeding only has a *testing.F).
func seedArtifact() *Artifact {
	a := largeArtifact(3)
	a.Patterns = append(a.Patterns, &pattern.Pattern{
		Type: pattern.ConfusingWord,
		Deduction: []namepath.Path{{
			Prefix: []namepath.Elem{{Value: "AttributeLoad", Index: 1}},
			End:    "receive",
		}},
		Count: 12, MatchCount: 12, SatisfyCount: 9,
	})
	a.Classifier = &ml.PipelineState{
		Mean:    []float64{0.5, 1.25, -3},
		Std:     []float64{1, 2, 0.25},
		UsePCA:  true,
		PCAMean: []float64{0.1, 0.2, 0.3},
		PCACols: [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}},
		Weights: []float64{0.75, -0.25},
		Bias:    -0.125,
	}
	return a
}

// fuzzSeedArtifacts returns the raw encodings seeded into the fuzz
// corpus: both binary versions, JSON, and an empty artifact.
func fuzzSeedArtifacts(t testing.TB) [][]byte {
	t.Helper()
	full := seedArtifact()
	empty := &Artifact{Lang: "Go", Pairs: confusion.NewPairSet()}
	var seeds [][]byte
	for _, a := range []*Artifact{full, empty} {
		v2, err := EncodeBinary(a)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := EncodeBinaryV1(a)
		if err != nil {
			t.Fatal(err)
		}
		j, err := EncodeJSON(a)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, v2, v1, j)
	}
	return seeds
}

// FuzzDecodeKnowledge throws arbitrary bytes at every decode entry
// point. The invariants: no panic, no decode of garbage into something
// that fails to re-encode, and a successful decode must survive a
// v2 re-encode → re-decode round trip losslessly.
func FuzzDecodeKnowledge(f *testing.F) {
	for _, seed := range fuzzSeedArtifacts(f) {
		f.Add(seed)
		if len(seed) > 8 {
			f.Add(seed[:len(seed)/2]) // truncations
			flipped := append([]byte{}, seed...)
			flipped[len(flipped)/3] ^= 0x55
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("{\"lang\":\"Python\"}"))
	f.Add([]byte{0x9E, 'N', 'K', 'B'})
	f.Add([]byte{0x9E, 'N', 'K', 'B', 0x02})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// OpenBytes must never panic or over-read, whatever the input.
		if v, err := OpenBytes(data); err == nil {
			v.Artifact() // pre-validated: must not panic either
		}
		a, err := Decode(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode and round-trip.
		re, err := EncodeBinary(a)
		if err != nil {
			t.Fatalf("accepted artifact failed to re-encode: %v", err)
		}
		back, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("re-encoded artifact failed to decode: %v", err)
		}
		if a.Lang != back.Lang || len(a.Patterns) != len(back.Patterns) {
			t.Fatalf("round trip diverged: %q/%d vs %q/%d",
				a.Lang, len(a.Patterns), back.Lang, len(back.Patterns))
		}
		for i := range a.Patterns {
			if a.Patterns[i].Key() != back.Patterns[i].Key() {
				t.Fatalf("pattern %d key diverged", i)
			}
		}
	})
}
