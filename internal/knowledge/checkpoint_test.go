package knowledge

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0001.ck")
	payload := []byte("per-shard artifact bytes \x00\xff binary ok")
	if err := WriteCheckpoint(path, "shard-stmts", payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, "shard-stmts")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload changed across round trip")
	}
	if _, err := ReadCheckpoint(path, "shard-trees"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestCheckpointEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.ck")
	if err := WriteCheckpoint(path, "k", nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %q, want empty", got)
	}
}

// Every single-byte corruption of a checkpoint must be rejected — this is
// the property the driver's resume logic relies on to re-run only broken
// shards instead of trusting them.
func TestCheckpointEveryByteFlipRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ck")
	if err := WriteCheckpoint(path, "shard-stmts", []byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, _, err := decodeCheckpoint(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for i := 0; i < len(data); i++ {
		if _, _, err := decodeCheckpoint(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
}

func TestCheckpointRejectsUnrelatedFiles(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"json.ck":  `{"not": "a checkpoint"}`,
		"empty.ck": "",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(p, "k"); err == nil {
			t.Fatalf("%s accepted as checkpoint", name)
		}
	}
	if _, err := ReadCheckpoint(filepath.Join(dir, "missing.ck"), "k"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointKindValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.ck")
	if err := WriteCheckpoint(path, "", nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := WriteCheckpoint(path, strings.Repeat("k", maxCheckpointKind+1), nil); err == nil {
		t.Fatal("oversized kind accepted")
	}
}
