// Package knowledge implements the persistent knowledge artifact of the
// system: the mined confusing word pairs, name patterns, and trained
// classifier state that a detection process loads instead of re-mining
// (PAPER §3.3, §4.2 — mining is expensive, detection is cheap).
//
// Two on-disk formats are supported and auto-detected:
//
//   - a versioned binary format, the default for production artifacts.
//     The current version (v2, flat.go) is a flat offset-based layout
//     openable in place from a read-only byte slice via Open/OpenBytes
//     with O(1) allocations; the legacy varint stream (v1, below) stays
//     fully readable and writable via EncodeBinaryV1/SaveV1; and
//   - pretty-printed JSON, kept as the human-inspectable debug format.
//
// Save picks the format from the file extension (".json" means JSON,
// anything else binary); Load sniffs the magic bytes so either format
// loads regardless of its name. All writes are atomic: the artifact is
// written to a temp file in the destination directory and renamed into
// place, so a crash mid-write can never leave a torn knowledge file.
package knowledge

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"namer/internal/confusion"
	"namer/internal/ml"
	"namer/internal/pattern"
)

// Artifact is the serializable product of mining and training: everything
// a fresh process needs to detect naming issues in new code.
type Artifact struct {
	Lang       string             `json:"lang"`
	Pairs      *confusion.PairSet `json:"pairs"`
	Patterns   []*pattern.Pattern `json:"patterns"`
	Classifier *ml.PipelineState  `json:"classifier,omitempty"`
}

// Format identifies an on-disk knowledge encoding.
type Format int

// Supported formats.
const (
	FormatBinary Format = iota
	FormatJSON
)

// String returns the format name.
func (f Format) String() string {
	if f == FormatJSON {
		return "json"
	}
	return "binary"
}

// FormatForPath returns the format Save uses for a destination path:
// ".json" files are written as JSON, everything else as binary.
func FormatForPath(path string) Format {
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return FormatJSON
	}
	return FormatBinary
}

// DetectFormat sniffs the encoding of raw knowledge bytes by the binary
// magic; anything else is treated as JSON.
func DetectFormat(data []byte) Format {
	if bytes.HasPrefix(data, magic[:]) {
		return FormatBinary
	}
	return FormatJSON
}

// EncodeJSON renders the artifact as pretty-printed JSON (the debug
// format).
func EncodeJSON(a *Artifact) ([]byte, error) {
	return json.MarshalIndent(a, "", " ")
}

// DecodeJSON parses a JSON artifact. The pair set is always non-nil after
// a successful decode, even when the field is absent.
func DecodeJSON(data []byte) (*Artifact, error) {
	a := &Artifact{Pairs: confusion.NewPairSet()}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("knowledge: decoding JSON: %w", err)
	}
	if a.Pairs == nil {
		a.Pairs = confusion.NewPairSet()
	}
	// A JSON null bypasses Pattern.UnmarshalJSON entirely, and negative
	// stats pass its shape check; both would corrupt anything downstream
	// (nil deref in key warming, unencodable counts), so reject them here.
	for i, p := range a.Patterns {
		if p == nil {
			return nil, fmt.Errorf("knowledge: pattern %d is null", i)
		}
		if p.Count < 0 || p.MatchCount < 0 || p.SatisfyCount < 0 {
			return nil, fmt.Errorf("knowledge: pattern %d has negative stats", i)
		}
	}
	warmPatterns(a.Patterns)
	return a, nil
}

// Encode renders the artifact in the named format.
func Encode(a *Artifact, f Format) ([]byte, error) {
	if f == FormatJSON {
		return EncodeJSON(a)
	}
	return EncodeBinary(a)
}

// Decode parses an artifact in either format, auto-detected by magic.
func Decode(data []byte) (*Artifact, error) {
	if DetectFormat(data) == FormatBinary {
		return DecodeBinary(data)
	}
	return DecodeJSON(data)
}

// Save writes the artifact to path atomically, choosing the format by
// extension (FormatForPath). The data lands in a temp file in the same
// directory first and is renamed into place, so readers never observe a
// partially written artifact and a crash cannot corrupt an existing one.
func Save(path string, a *Artifact) error {
	data, err := Encode(a, FormatForPath(path))
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// SaveV1 writes the artifact to path atomically in the legacy v1 binary
// format, for artifacts consumed by pre-v2 readers.
func SaveV1(path string, a *Artifact) error {
	data, err := EncodeBinaryV1(a)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// Load reads an artifact from path, sniffing the format from the file
// contents so binary and JSON knowledge load interchangeably.
func Load(path string) (*Artifact, error) {
	a, _, err := LoadWithInfo(path)
	return a, err
}

// Info describes a loaded knowledge artifact: enough identity to tell
// two artifacts apart across a hot reload and to report provenance on
// health and metrics endpoints.
type Info struct {
	Format        Format    // binary or json
	FormatVersion int       // binary codec version; 0 for JSON
	Bytes         int       // on-disk artifact size
	ContentHash   string    // hex sha256 of the raw artifact bytes
	LoadedAt      time.Time // when this load happened
}

// LoadWithInfo is Load plus artifact identity: the format, codec
// version, size, and content hash of the exact bytes that were read.
func LoadWithInfo(path string) (*Artifact, Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Info{}, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%s: %w", path, err)
	}
	sum := sha256.Sum256(data)
	info := Info{
		Format:      DetectFormat(data),
		Bytes:       len(data),
		ContentHash: hex.EncodeToString(sum[:]),
		LoadedAt:    time.Now(),
	}
	if info.Format == FormatBinary && len(data) > len(magic) {
		// The version is the uvarint at offset 4 for every binary version;
		// Decode already validated it.
		v, _ := binary.Uvarint(data[len(magic):])
		info.FormatVersion = int(v)
	}
	return a, info, nil
}

// writeFileAtomic writes data to path via a temp file + rename in the
// destination directory (rename is atomic only within one filesystem).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// warmPatterns precomputes every pattern's identity key from a single
// goroutine so the patterns can be shared across concurrent scans without
// racing on the lazy key cache.
func warmPatterns(ps []*pattern.Pattern) {
	for _, p := range ps {
		p.Key()
	}
}
