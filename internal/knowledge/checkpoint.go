package knowledge

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"namer/internal/obs"
)

// Checkpoint container: the on-disk envelope for the map/reduce mining
// driver's per-shard artifacts. Like the flat v2 knowledge format it is
// versioned, CRC-checked over every byte, and written atomically (temp
// file + rename), so a crashed or killed worker can never leave a torn
// artifact that a resumed driver would trust. The payload is opaque to
// this layer — the driver owns the per-kind encodings — but the kind
// string is part of the validated header, so a shard-statements file can
// never be misread as a shard-trees file.
//
// Layout (integers are unsigned varints unless noted):
//
//	magic     4 bytes  0x9F 'N' 'C' 'K'
//	version   varint   1
//	kind      varint length + raw bytes
//	payload   varint length + raw bytes
//	crc       4 bytes LE, CRC-32C over every preceding byte

// ckMagic identifies a checkpoint file. The first byte is outside ASCII,
// and the magic differs from the knowledge magic, so artifacts and
// checkpoints can never be confused.
var ckMagic = [4]byte{0x9F, 'N', 'C', 'K'}

// CheckpointVersion is the current checkpoint envelope version.
const CheckpointVersion = 1

const maxCheckpointKind = 256

// WriteCheckpointCtx is WriteCheckpoint under a tracing context: when
// the context carries a live trace, the write is recorded as a
// checkpoint_write span with the file, kind, and payload size — the
// per-shard I/O cost a distributed mine's trace makes visible. Outside
// a trace the span calls are free no-ops.
func WriteCheckpointCtx(ctx context.Context, path, kind string, payload []byte) error {
	_, sp := obs.StartSpan(ctx, "checkpoint_write")
	sp.SetAttr("file", filepath.Base(path))
	sp.SetAttr("kind", kind)
	sp.SetAttrInt("bytes", len(payload))
	defer sp.End()
	return WriteCheckpoint(path, kind, payload)
}

// ReadCheckpointCtx is ReadCheckpoint under a tracing context,
// recording a checkpoint_read span (file, kind, bytes, and whether the
// read validated) when the context carries a live trace.
func ReadCheckpointCtx(ctx context.Context, path, kind string) ([]byte, error) {
	_, sp := obs.StartSpan(ctx, "checkpoint_read")
	sp.SetAttr("file", filepath.Base(path))
	sp.SetAttr("kind", kind)
	defer sp.End()
	payload, err := ReadCheckpoint(path, kind)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	sp.SetAttrInt("bytes", len(payload))
	return payload, nil
}

// WriteCheckpoint writes payload to path inside a CRC-checked envelope,
// atomically (temp file in the destination directory + rename).
func WriteCheckpoint(path, kind string, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxCheckpointKind {
		return fmt.Errorf("knowledge: invalid checkpoint kind %q", kind)
	}
	var scratch [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, len(payload)+len(kind)+32)
	buf = append(buf, ckMagic[:]...)
	buf = append(buf, scratch[:binary.PutUvarint(scratch[:], CheckpointVersion)]...)
	buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(len(kind)))]...)
	buf = append(buf, kind...)
	buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(len(payload)))]...)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf, crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return writeFileAtomic(path, buf)
}

// ReadCheckpoint reads a checkpoint written by WriteCheckpoint,
// validating the magic, version, kind, length, and checksum. Any
// mismatch — including a kind other than the expected one — returns an
// error, which the driver treats as "re-run this shard".
func ReadCheckpoint(path, kind string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, gotKind, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%s: checkpoint kind %q, want %q", path, gotKind, kind)
	}
	return payload, nil
}

func decodeCheckpoint(data []byte) (payload []byte, kind string, err error) {
	if len(data) < len(ckMagic)+4 || string(data[:len(ckMagic)]) != string(ckMagic[:]) {
		return nil, "", fmt.Errorf("knowledge: not a checkpoint file (bad magic)")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, "", fmt.Errorf("knowledge: checkpoint checksum mismatch")
	}
	pos := len(ckMagic)
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("knowledge: truncated checkpoint %s at byte %d", what, pos)
		}
		pos += n
		return v, nil
	}
	version, err := uvarint("version")
	if err != nil {
		return nil, "", err
	}
	if version != CheckpointVersion {
		return nil, "", fmt.Errorf("knowledge: unsupported checkpoint version %d (this build reads %d)",
			version, CheckpointVersion)
	}
	kindLen, err := uvarint("kind length")
	if err != nil {
		return nil, "", err
	}
	if kindLen == 0 || kindLen > maxCheckpointKind || kindLen > uint64(len(body)-pos) {
		return nil, "", fmt.Errorf("knowledge: implausible checkpoint kind length %d", kindLen)
	}
	kind = string(body[pos : pos+int(kindLen)])
	pos += int(kindLen)
	payloadLen, err := uvarint("payload length")
	if err != nil {
		return nil, "", err
	}
	if payloadLen != uint64(len(body)-pos) {
		return nil, "", fmt.Errorf("knowledge: checkpoint payload length %d, have %d bytes",
			payloadLen, len(body)-pos)
	}
	return body[pos:], kind, nil
}
