package confusion

import "encoding/json"

// pairJSON is the serialized form of one confusing word pair.
type pairJSON struct {
	Mistaken string `json:"mistaken"`
	Correct  string `json:"correct"`
	Count    int    `json:"count"`
}

// MarshalJSON serializes the pair set (sorted by count).
func (ps *PairSet) MarshalJSON() ([]byte, error) {
	var out []pairJSON
	for _, p := range ps.Pairs() {
		out = append(out, pairJSON{Mistaken: p[0], Correct: p[1], Count: ps.Count(p[0], p[1])})
	}
	return json.Marshal(out)
}

// UnmarshalJSON deserializes a pair set.
func (ps *PairSet) UnmarshalJSON(data []byte) error {
	var in []pairJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	ps.counts = make(map[[2]string]int)
	ps.correct = make(map[string]bool)
	for _, p := range in {
		if p.Count <= 0 {
			p.Count = 1
		}
		ps.counts[[2]string{p.Mistaken, p.Correct}] = p.Count
		ps.correct[p.Correct] = true
	}
	return nil
}
