package confusion

import (
	"testing"

	"namer/internal/pylang"
)

func TestMinePairsFromCommits(t *testing.T) {
	mk := func(before, after string) Commit {
		b, err := pylang.Parse(before)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pylang.Parse(after)
		if err != nil {
			t.Fatal(err)
		}
		return Commit{Before: b, After: a}
	}
	commits := []Commit{
		mk("self.assertTrue(v, 4)\n", "self.assertEqual(v, 4)\n"),
		mk("self.assertTrue(w, 9)\n", "self.assertEqual(w, 9)\n"),
		mk("x = getName(d)\n", "x = getKey(d)\n"),
		mk("num_or_process = 3\n", "num_of_process = 3\n"),
		mk("y = value\n", "y = key\n"),
	}
	ps := MinePairs(commits)
	if !ps.Contains("True", "Equal") {
		t.Error("True -> Equal not mined")
	}
	if got := ps.Count("True", "Equal"); got != 2 {
		t.Errorf("Count(True, Equal) = %d, want 2", got)
	}
	if !ps.Contains("Name", "Key") {
		t.Error("Name -> Key not mined")
	}
	if !ps.Contains("or", "of") {
		t.Error("or -> of not mined")
	}
	if !ps.Contains("value", "key") {
		t.Error("value -> key not mined")
	}
	if !ps.IsCorrectWord("Equal") || ps.IsCorrectWord("True") {
		t.Error("IsCorrectWord wrong")
	}
}

func TestMultiSubtokenDiffIgnored(t *testing.T) {
	b, _ := pylang.Parse("total_item_count = 1\n")
	a, _ := pylang.Parse("final_entry_count = 1\n") // two subtokens differ
	ps := MinePairs([]Commit{{Before: b, After: a}})
	if ps.Len() != 0 {
		t.Errorf("multi-subtoken rename should be ignored, got %v", ps.Pairs())
	}
}

func TestDifferentSubtokenCountIgnored(t *testing.T) {
	b, _ := pylang.Parse("x = name\n")
	a, _ := pylang.Parse("x = first_name\n")
	ps := MinePairs([]Commit{{Before: b, After: a}})
	if ps.Len() != 0 {
		t.Errorf("count-changing rename should be ignored, got %v", ps.Pairs())
	}
}

func TestPruneAndPairsOrder(t *testing.T) {
	ps := NewPairSet()
	ps.Add("a", "b")
	ps.Add("a", "b")
	ps.Add("a", "b")
	ps.Add("c", "d")
	pruned := ps.Prune(2)
	if pruned.Len() != 1 || !pruned.Contains("a", "b") {
		t.Errorf("Prune(2) = %v", pruned.Pairs())
	}
	pairs := ps.Pairs()
	if len(pairs) != 2 || pairs[0] != [2]string{"a", "b"} {
		t.Errorf("Pairs order = %v", pairs)
	}
}

func TestAddRejectsDegenerate(t *testing.T) {
	ps := NewPairSet()
	ps.Add("same", "same")
	ps.Add("", "x")
	ps.Add("x", "")
	if ps.Len() != 0 {
		t.Errorf("degenerate pairs accepted: %v", ps.Pairs())
	}
}
