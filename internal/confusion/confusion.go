// Package confusion mines confusing word pairs ⟨w1, w2⟩ from commit
// histories (§3.2): pairs where a prior version of the code used the
// mistaken word w1 in a place later fixed to the correct word w2. Pairs
// feed the confusing-word name patterns (Definition 3.9) and feature 17 of
// the defect classifier.
package confusion

import (
	"sort"

	"namer/internal/ast"
	"namer/internal/subtoken"
	"namer/internal/treediff"
)

// Commit is one before/after pair of parsed file versions.
type Commit struct {
	Before *ast.Node
	After  *ast.Node
}

// PairSet stores mined confusing word pairs with occurrence counts. The
// mistaken word maps to the correct word.
type PairSet struct {
	counts  map[[2]string]int
	correct map[string]bool // words that appear as the correct side
}

// NewPairSet returns an empty set.
func NewPairSet() *PairSet {
	return &PairSet{counts: make(map[[2]string]int), correct: make(map[string]bool)}
}

// Add records one observation of mistaken -> correct.
func (ps *PairSet) Add(mistaken, correct string) {
	if mistaken == "" || correct == "" || mistaken == correct {
		return
	}
	ps.counts[[2]string{mistaken, correct}]++
	ps.correct[correct] = true
}

// AddN records n observations of mistaken -> correct at once (n <= 0 is
// treated as one, matching the JSON decoder); used when restoring a pair
// set from a serialized artifact.
func (ps *PairSet) AddN(mistaken, correct string, n int) {
	if mistaken == "" || correct == "" || mistaken == correct {
		return
	}
	if n <= 0 {
		n = 1
	}
	ps.counts[[2]string{mistaken, correct}] += n
	ps.correct[correct] = true
}

// Contains reports whether ⟨mistaken, correct⟩ was mined.
func (ps *PairSet) Contains(mistaken, correct string) bool {
	return ps.counts[[2]string{mistaken, correct}] > 0
}

// Count returns the observation count for a pair.
func (ps *PairSet) Count(mistaken, correct string) int {
	return ps.counts[[2]string{mistaken, correct}]
}

// IsCorrectWord reports whether w appears as the correct side of any pair;
// name paths ending in such words become deduction candidates for
// confusing-word patterns.
func (ps *PairSet) IsCorrectWord(w string) bool { return ps.correct[w] }

// Len returns the number of distinct pairs.
func (ps *PairSet) Len() int { return len(ps.counts) }

// Pairs returns all pairs sorted by descending count, then lexicographic.
func (ps *PairSet) Pairs() [][2]string {
	out := make([][2]string, 0, len(ps.counts))
	for p := range ps.counts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := ps.counts[out[i]], ps.counts[out[j]]
		if ci != cj {
			return ci > cj
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Prune returns a new set keeping only pairs observed at least minCount
// times.
func (ps *PairSet) Prune(minCount int) *PairSet {
	out := NewPairSet()
	for p, c := range ps.counts {
		if c >= minCount {
			out.counts[p] = c
			out.correct[p[1]] = true
		}
	}
	return out
}

// MinePairs extracts confusing word pairs from a set of commits: the
// before/after ASTs are diff-matched, and every aligned identifier rename
// whose subtoken sequences differ in exactly one position contributes that
// subtoken pair.
func MinePairs(commits []Commit) *PairSet {
	ps := NewPairSet()
	for _, c := range commits {
		for _, r := range treediff.Diff(c.Before, c.After) {
			w1, w2, ok := singleSubtokenDiff(r.Before, r.After)
			if ok {
				ps.Add(w1, w2)
			}
		}
	}
	return ps
}

// singleSubtokenDiff splits the two names and reports the single differing
// subtoken pair, or ok=false when the names differ in zero or more than
// one position (or have different subtoken counts).
func singleSubtokenDiff(before, after string) (w1, w2 string, ok bool) {
	sa := subtoken.Split(before)
	sb := subtoken.Split(after)
	if len(sa) != len(sb) {
		return "", "", false
	}
	diffs := 0
	for i := range sa {
		if sa[i] != sb[i] {
			diffs++
			w1, w2 = sa[i], sb[i]
		}
	}
	if diffs != 1 {
		return "", "", false
	}
	return w1, w2, true
}
