package confusion

import (
	"encoding/json"
	"testing"
)

func TestPairSetJSONRoundTrip(t *testing.T) {
	ps := NewPairSet()
	ps.Add("True", "Equal")
	ps.Add("True", "Equal")
	ps.Add("j", "i")
	data, err := json.Marshal(ps)
	if err != nil {
		t.Fatal(err)
	}
	q := NewPairSet()
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Count("True", "Equal") != 2 {
		t.Errorf("count lost: %d", q.Count("True", "Equal"))
	}
	if !q.IsCorrectWord("Equal") || !q.IsCorrectWord("i") {
		t.Error("correct-word index not rebuilt")
	}
}

func TestPairSetUnmarshalDefaultsCount(t *testing.T) {
	q := NewPairSet()
	if err := json.Unmarshal([]byte(`[{"mistaken":"a","correct":"b"}]`), q); err != nil {
		t.Fatal(err)
	}
	if q.Count("a", "b") != 1 {
		t.Errorf("zero count should default to 1, got %d", q.Count("a", "b"))
	}
}

func TestPairSetUnmarshalError(t *testing.T) {
	q := NewPairSet()
	if err := json.Unmarshal([]byte(`{"not":"a list"}`), q); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestEmptyPairSetJSON(t *testing.T) {
	ps := NewPairSet()
	data, err := json.Marshal(ps)
	if err != nil {
		t.Fatal(err)
	}
	q := NewPairSet()
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Error("empty set round trip failed")
	}
}
