package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"namer/internal/obs"
	"namer/internal/obs/log"
)

// TestObsGate is the tier-1 observability gate (make obs-gate): a
// 2-shard mine with spawned worker subprocesses, run under a trace and
// a live status server, must produce
//
//   - one merged Chrome trace containing the driver's spans plus both
//     workers' shipped span lanes keyed by their real PIDs, including
//     checkpoint and resume-validation spans, with no orphan parents
//     (enforced at graft time) and no malformed events;
//   - a /status endpoint whose shard state machine reaches "done";
//   - a /metrics endpoint that parses as Prometheus text with monotone
//     histogram buckets;
//   - live /debug/pprof and /debug/traces endpoints while jobs run;
//
// and knowledge bytes identical to the single-process reference.
func TestObsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	dir, want := testCorpus(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("NAMER_DRIVER_WORKER", "1")

	var logBuf syncLog
	lg := log.New(&logBuf, log.Debug, log.Text)
	mon := NewMonitor()
	rec := obs.NewFlightRecorder(8)
	st, err := StartStatus("127.0.0.1:0", mon, rec, lg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := "http://" + st.Addr()

	ctx, tr := obs.NewTrace(context.Background(), "obs-gate", "")
	tr.SetMaxSpans(1 << 18)

	opts := driverOptions(dir, t.TempDir(), 2)
	opts.WorkerCommand = []string{exe}
	opts.Workers = 2
	opts.Log = lg
	opts.Monitor = mon
	opts.Recorder = rec
	// Scrape the live endpoints at a deterministic moment: right after the
	// first completed map job, while the mine is mid-run.
	var scrapeOnce sync.Once
	var liveStatus, livePprof string
	opts.afterJob = func(phase string, shard int) error {
		var err error
		scrapeOnce.Do(func() {
			liveStatus, err = httpGet(base + "/status")
			if err != nil {
				return
			}
			livePprof, err = httpGet(base + "/debug/pprof/cmdline")
		})
		return err
	}

	art, stats, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	// Knowledge must stay byte-identical with all observability on.
	if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
		t.Fatal("observed driver run produced different knowledge bytes")
	}

	// --- live endpoints, captured mid-run ---
	if liveStatus == "" || livePprof == "" {
		t.Fatal("afterJob scrape did not run")
	}
	var live statusSnapshot
	if err := json.Unmarshal([]byte(liveStatus), &live); err != nil {
		t.Fatalf("/status mid-run is not JSON: %v\n%s", err, liveStatus)
	}
	if len(live.Shards) != 2 {
		t.Fatalf("/status mid-run shards = %d, want 2", len(live.Shards))
	}

	// --- final status: every shard done, round done ---
	finalStatus, err := httpGet(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var fin statusSnapshot
	if err := json.Unmarshal([]byte(finalStatus), &fin); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if fin.Round != "done" {
		t.Errorf("final round = %q, want done", fin.Round)
	}
	for _, s := range fin.Shards {
		if s.State != ShardDone {
			t.Errorf("shard %d final state = %q, want done (%+v)", s.Shard, s.State, s)
		}
		if s.CPUMs < 0 || s.WallMs <= 0 {
			t.Errorf("shard %d has implausible resource row: %+v", s.Shard, s)
		}
	}

	// --- /metrics parses; histograms monotone ---
	metrics, err := httpGet(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	checkPrometheusText(t, metrics)
	for _, want := range []string{
		`namer_mine_shard_state{state="done"} 2`,
		`namer_mine_jobs_total{phase="stmts",result="ok"} 2`,
		`namer_mine_jobs_total{phase="trees",result="ok"} 2`,
		"namer_mine_job_seconds_bucket",
		"go_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// --- /debug/traces has per-job traces ---
	if rec.Len() == 0 {
		t.Error("flight recorder is empty; per-job traces were not recorded")
	}
	if body, err := httpGet(base + "/debug/traces"); err != nil || !strings.Contains(body, "shard-") {
		t.Errorf("/debug/traces unusable: err=%v body=%.120q", err, body)
	}

	// --- the merged Chrome trace ---
	var traceJSON bytes.Buffer
	if err := tr.WriteChromeTrace(&traceJSON); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(traceJSON.Bytes(), &events); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	workerPids := map[int]bool{}
	names := map[string]bool{}
	self := os.Getpid()
	for _, e := range events {
		switch e.Ph {
		case "X":
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("malformed event %q: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
			}
			names[e.Name] = true
			if e.Pid != 1 && e.Pid != self {
				workerPids[e.Pid] = true
			}
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "" {
				t.Errorf("process_name metadata for pid %d has no label", e.Pid)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	// Each map round spawns a fresh worker pool, so a 2-worker run yields
	// at least two distinct PID lanes (2 per round when both stay busy).
	if len(workerPids) < 2 {
		t.Fatalf("trace has %d worker PID lanes (%v), want >= 2", len(workerPids), workerPids)
	}
	for _, wantSpan := range []string{
		"driver", "map_extract", "map_trees", "reduce_counts",
		"resume_validate", "checkpoint_read", "checkpoint_write",
		"job", "load_shard", "build_shard_tree",
	} {
		if !names[wantSpan] {
			t.Errorf("merged trace missing span %q", wantSpan)
		}
	}

	// --- per-shard resource accounting surfaced in Stats ---
	if len(stats.Usage) != 2 {
		t.Fatalf("stats.Usage has %d rows, want 2", len(stats.Usage))
	}
	for _, u := range stats.Usage {
		if u.Jobs != 2 || u.Wall <= 0 {
			t.Errorf("shard %d usage implausible: %+v", u.Shard, u)
		}
	}
	if len(stats.Workers) == 0 {
		t.Error("no spawned-worker rusage rows in stats.Workers")
	}
	for _, w := range stats.Workers {
		if !workerPids[w.PID] {
			t.Errorf("worker usage row pid %d not among traced worker pids %v", w.PID, workerPids)
		}
	}

	// --- captured worker stderr re-tagged with worker_pid ---
	if got := logBuf.String(); !strings.Contains(got, "worker_pid=") {
		t.Errorf("driver log has no captured worker stderr:\n%.400s", got)
	}
}

// The protocol half of the zero-overhead guard: an untraced job's done
// Result must not carry a span batch or even the JSON keys for one.
func TestResultOmitsEmptySpanBatch(t *testing.T) {
	b, err := json.Marshal(Result{Event: "done", Shard: 3, OK: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"spans", "pid", "cpu_ns", "max_rss_kb", "alloc_bytes"} {
		if bytes.Contains(b, []byte(`"`+key+`"`)) {
			t.Errorf("empty Result leaks %q onto the wire: %s", key, b)
		}
	}
}

// httpGet fetches a URL with a deadline and returns the body.
func httpGet(url string) (string, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, body)
	}
	return string(body), nil
}

// checkPrometheusText validates the exposition format shape: every
// sample line is `name{labels} value`, and every histogram's buckets
// are le-ordered with cumulative (non-decreasing) counts.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	type bucket struct {
		le    float64
		count int64
	}
	hists := map[string][]bucket{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("metrics line value %q does not parse: %q", val, line)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			base := name[:strings.Index(name, "_bucket{")]
			leIdx := strings.Index(name, `le="`)
			if leIdx < 0 {
				t.Fatalf("bucket line without le label: %q", line)
			}
			leStr := name[leIdx+4:]
			leStr = leStr[:strings.IndexByte(leStr, '"')]
			le := 0.0
			if leStr == "+Inf" {
				le = float64(1 << 62)
			} else if v, err := strconv.ParseFloat(leStr, 64); err == nil {
				le = v
			} else {
				t.Fatalf("unparseable le %q in %q", leStr, line)
			}
			n, _ := strconv.ParseInt(val, 10, 64)
			key := base + "|" + name[:leIdx] // per-series (labels minus le)
			hists[key] = append(hists[key], bucket{le, n})
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram buckets in /metrics")
	}
	for key, bs := range hists {
		sorted := sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		if !sorted {
			t.Errorf("histogram %s buckets not in le order", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].count < bs[i-1].count {
				t.Errorf("histogram %s bucket counts not cumulative: %v", key, bs)
				break
			}
		}
	}
}

// syncLog is a race-safe log sink for the gate's concurrent writers.
type syncLog struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncLog) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLog) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
