package driver

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/knowledge"
)

// TestMain doubles as the worker entry point for the subprocess tests:
// re-executing the test binary with NAMER_DRIVER_WORKER=1 drops straight
// into the ServeWorker loop, the same way namer-mine -worker does.
func TestMain(m *testing.M) {
	if os.Getenv("NAMER_DRIVER_WORKER") == "1" {
		if err := ServeWorker(os.Stdin, os.Stdout, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// corpusOnce writes one shared test corpus and computes the
// single-process reference knowledge bytes the way cmd/namer-mine would.
var corpusOnce sync.Once
var corpusDir string
var referenceBytes []byte
var referenceFiles int

func testCorpus(t *testing.T) (string, []byte) {
	corpusOnce.Do(func() {
		dir, err := os.MkdirTemp("", "driver-corpus-*")
		if err != nil {
			panic(err)
		}
		ccfg := corpus.DefaultConfig(ast.Python)
		ccfg.Repos = 12
		ccfg.FilesPerRepo = 3
		ccfg.IssueRate = 0.08
		if err := corpus.Generate(ccfg).WriteTo(dir); err != nil {
			panic(err)
		}
		corpusDir = dir
		referenceBytes = singleProcessMine(dir)
	})
	t.Cleanup(func() {}) // corpus is shared; removed by the OS tempdir sweep
	return corpusDir, referenceBytes
}

// singleProcessMine mirrors cmd/namer-mine's serial pipeline exactly:
// load, mine pairs, process, mine patterns, export.
func singleProcessMine(dir string) []byte {
	files, errs := core.LoadDirectory(dir, ast.Python)
	if len(errs) > 0 {
		panic(fmt.Sprintf("load errors: %v", errs))
	}
	referenceFiles = len(files)
	cfg := core.DefaultConfig(ast.Python)
	cfg.Mining.MinPatternCount = len(files) / 3
	if cfg.Mining.MinPatternCount < 5 {
		cfg.Mining.MinPatternCount = 5
	}
	sys := core.NewSystem(cfg)
	pairsSrc, err := corpus.ReadCommits(filepath.Join(dir, "commits"))
	if err != nil {
		panic(err)
	}
	commits, _ := corpus.ParseCommitSources(ast.Python, pairsSrc)
	sys.MinePairs(commits)
	sys.ProcessFiles(files)
	sys.MinePatterns()
	if len(sys.Patterns) == 0 {
		panic("reference mine produced no patterns")
	}
	k, err := sys.ExportKnowledge()
	if err != nil {
		panic(err)
	}
	b, err := knowledge.EncodeBinary(k)
	if err != nil {
		panic(err)
	}
	return b
}

func driverOptions(dir, ckdir string, shards int) Options {
	cfg := core.DefaultConfig(ast.Python)
	cfg.Mining.MinPatternCount = 0 // auto-scale post-map, like cmd/namer-mine
	return Options{
		CorpusDir:     dir,
		Config:        cfg,
		Shards:        shards,
		CheckpointDir: ckdir,
	}
}

func encodeArtifact(t *testing.T, a *knowledge.Artifact) []byte {
	t.Helper()
	b, err := knowledge.EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The tentpole property: driver-mode knowledge is byte-identical to a
// single-process mine for any shard count.
func TestDriverByteIdenticalAcrossShardCounts(t *testing.T) {
	dir, want := testCorpus(t)
	for _, shards := range []int{1, 2, 7, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			art, stats, err := Run(context.Background(), driverOptions(dir, t.TempDir(), shards))
			if err != nil {
				t.Fatal(err)
			}
			if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
				t.Fatalf("driver knowledge differs from single-process mine (%d vs %d bytes)",
					len(got), len(want))
			}
			if stats.FilesParsed != referenceFiles {
				t.Errorf("FilesParsed = %d, want %d", stats.FilesParsed, referenceFiles)
			}
			if stats.StmtsReused != 0 || stats.TreesReused != 0 {
				t.Errorf("fresh run reused checkpoints: %+v", stats)
			}
		})
	}
}

// Killing the driver mid-map and re-running must complete from
// checkpoints with identical output.
func TestDriverKillResume(t *testing.T) {
	dir, want := testCorpus(t)
	for _, killPhase := range []string{"stmts", "trees"} {
		t.Run("kill-"+killPhase, func(t *testing.T) {
			ckdir := t.TempDir()
			opts := driverOptions(dir, ckdir, 5)
			opts.Workers = 1 // deterministic number of completed jobs at the kill
			var completed atomic.Int32
			opts.afterJob = func(phase string, shard int) error {
				if phase == killPhase && completed.Add(1) == 2 {
					return fmt.Errorf("simulated crash after 2 %s jobs", phase)
				}
				return nil
			}
			if _, _, err := Run(context.Background(), opts); err == nil {
				t.Fatal("first run should have crashed")
			}

			opts.afterJob = nil
			art, stats, err := Run(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
				t.Fatal("resumed knowledge differs from single-process mine")
			}
			if stats.StmtsReused < 2 {
				t.Errorf("StmtsReused = %d, want at least the 2 checkpointed shards", stats.StmtsReused)
			}
			if killPhase == "trees" && stats.TreesReused < 2 {
				t.Errorf("TreesReused = %d, want at least 2", stats.TreesReused)
			}
		})
	}
}

// A corrupt checkpoint must be detected and re-run, not trusted.
func TestDriverCorruptCheckpointRerun(t *testing.T) {
	dir, want := testCorpus(t)
	ckdir := t.TempDir()
	opts := driverOptions(dir, ckdir, 4)
	if _, _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}

	victim := filepath.Join(ckdir, "shard-0001.stmts.ck")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	art, stats, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
		t.Fatal("knowledge after corrupt-checkpoint re-run differs")
	}
	if stats.StmtsReused != 3 {
		t.Errorf("StmtsReused = %d, want 3 (the uncorrupted shards)", stats.StmtsReused)
	}
}

// A second run over a complete checkpoint directory reuses everything.
func TestDriverFullResumeReusesAllShards(t *testing.T) {
	dir, want := testCorpus(t)
	ckdir := t.TempDir()
	opts := driverOptions(dir, ckdir, 3)
	if _, _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	art, stats, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
		t.Fatal("fully-resumed knowledge differs")
	}
	if stats.StmtsReused != 3 || stats.TreesReused != 3 {
		t.Errorf("reuse = %d/%d shards, want 3/3", stats.StmtsReused, stats.TreesReused)
	}
	// Fresh discards the checkpoints and recomputes.
	opts.Fresh = true
	_, stats, err = Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StmtsReused != 0 || stats.TreesReused != 0 {
		t.Errorf("-fresh run reused checkpoints: %+v", stats)
	}
}

// Subprocess workers (the namer-mine -worker path, here via the test
// binary re-exec) must produce the same bytes as in-process goroutines.
func TestDriverSubprocessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	dir, want := testCorpus(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("NAMER_DRIVER_WORKER", "1")
	opts := driverOptions(dir, t.TempDir(), 4)
	opts.WorkerCommand = []string{exe}
	opts.Workers = 2
	art, _, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeArtifact(t, art); !bytes.Equal(got, want) {
		t.Fatal("subprocess-worker knowledge differs from single-process mine")
	}
}

func TestPlanDeterministicAndRepoAligned(t *testing.T) {
	dir, _ := testCorpus(t)
	p1, err := buildPlan(dir, ast.Python, 5, "fp")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := buildPlan(dir, ast.Python, 5, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if p1.hash != p2.hash || len(p1.shards) != len(p2.shards) {
		t.Fatal("plan is not deterministic")
	}
	seen := map[string]int{}
	var all []string
	for i, s := range p1.shards {
		if len(s.files) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		for _, f := range s.files {
			all = append(all, f)
			if prev, ok := seen[repoOf(f)]; ok && prev != i {
				t.Fatalf("repo %s straddles shards %d and %d", repoOf(f), prev, i)
			}
			seen[repoOf(f)] = i
		}
	}
	flat, err := listCorpus(dir, ast.Python)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != len(all) {
		t.Fatalf("shards cover %d files, corpus has %d", len(all), len(flat))
	}
	for i := range flat {
		if flat[i] != all[i] {
			t.Fatalf("shard concatenation diverges from walk order at %d: %s vs %s", i, all[i], flat[i])
		}
	}
	// A different fingerprint must change the plan hash (stale-config
	// detection for the counts checkpoint).
	p3, err := buildPlan(dir, ast.Python, 5, "other")
	if err != nil {
		t.Fatal(err)
	}
	if p3.hash == p1.hash {
		t.Fatal("plan hash ignores the config fingerprint")
	}
}
