package driver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"namer/internal/obs"
	"namer/internal/obs/log"
)

// Live mining status: a Monitor tracks every shard through its state
// machine (pending → running → done, with reused and failed exits) and
// mirrors the transitions into an obs.Registry, and StartStatus serves
// the whole thing over HTTP while a long mine runs:
//
//	GET /status        JSON snapshot: round, elapsed, per-shard states
//	GET /metrics       Prometheus text (shard states, stage histograms,
//	                   resource counters, Go runtime metrics)
//	GET /debug/pprof/  net/http/pprof, live while the mine runs
//	GET /debug/traces  slowest per-job span trees (flight recorder)
//
// Every Monitor method is safe on a nil receiver, so the driver calls
// them unconditionally and a run without -status-addr pays one nil check
// per transition.

// ShardState is one state of the per-shard state machine.
type ShardState string

const (
	ShardPending ShardState = "pending"
	ShardRunning ShardState = "running"
	ShardReused  ShardState = "reused" // checkpoint accepted, no work ran
	ShardDone    ShardState = "done"
	ShardFailed  ShardState = "failed"
)

// shardStates is the fixed set, for pre-registering the state gauges so
// /metrics shows explicit zeros.
var shardStates = []ShardState{ShardPending, ShardRunning, ShardReused, ShardDone, ShardFailed}

// ShardStatus is one shard's row in the /status snapshot.
type ShardStatus struct {
	Shard int        `json:"shard"`
	State ShardState `json:"state"`
	// Phase is the phase the shard is in or last completed ("stmts" or
	// "trees").
	Phase      string `json:"phase,omitempty"`
	Files      int    `json:"files"`
	PID        int    `json:"pid,omitempty"` // worker that ran (is running) the shard
	Statements int    `json:"statements,omitempty"`
	WallMs     int64  `json:"wall_ms"`
	CPUMs      int64  `json:"cpu_ms"`
	MaxRSSKB   int64  `json:"max_rss_kb,omitempty"`
	Error      string `json:"error,omitempty"`

	started time.Time // of the current running job, zero otherwise
}

// statusSnapshot is the /status response body.
type statusSnapshot struct {
	Round     string        `json:"round"`
	ElapsedMs int64         `json:"elapsed_ms"`
	Shards    []ShardStatus `json:"shards"`
}

// Monitor observes a driver run: per-shard state, round transitions, and
// the derived metrics. One Monitor belongs to one Run.
type Monitor struct {
	mu         sync.Mutex
	start      time.Time
	round      string
	roundStart time.Time
	shards     []ShardStatus

	reg *obs.Registry
}

// NewMonitor returns a Monitor with a fresh metrics registry (Go runtime
// metrics included).
func NewMonitor() *Monitor {
	reg := obs.NewRegistry()
	obs.RegisterGoMetrics(reg)
	return &Monitor{start: time.Now(), reg: reg}
}

// Registry exposes the Monitor's metrics registry (the /metrics source).
func (m *Monitor) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// begin sizes the shard table from the plan. Called once per Run.
func (m *Monitor) begin(p plan) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards = make([]ShardStatus, len(p.shards))
	for i, s := range p.shards {
		m.shards[i] = ShardStatus{Shard: i, State: ShardPending, Files: len(s.files)}
	}
	m.reg.Gauge("namer_mine_shards").Set(int64(len(p.shards)))
	for _, st := range shardStates {
		m.stateGauge(st).Set(0)
	}
	m.stateGauge(ShardPending).Set(int64(len(p.shards)))
}

// setRound switches the run to a new round ("map_stmts", "reduce_counts",
// "map_trees", "reduce_knowledge", "done"), recording the previous
// round's wall time in the stage histogram.
func (m *Monitor) setRound(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	if m.round != "" && m.round != "done" {
		m.reg.Histogram(fmt.Sprintf("namer_mine_stage_seconds{stage=%q}", m.round), nil).
			Observe(now.Sub(m.roundStart))
		m.reg.Gauge(fmt.Sprintf("namer_mine_round_active{round=%q}", m.round)).Set(0)
	}
	m.round, m.roundStart = name, now
	if name != "" && name != "done" {
		m.reg.Gauge(fmt.Sprintf("namer_mine_round_active{round=%q}", name)).Set(1)
	}
}

func (m *Monitor) stateGauge(st ShardState) *obs.Gauge {
	return m.reg.Gauge(fmt.Sprintf("namer_mine_shard_state{state=%q}", st))
}

// setState transitions one shard, keeping the state gauges balanced.
// Callers hold m.mu.
func (m *Monitor) setState(shard int, st ShardState) {
	s := &m.shards[shard]
	if s.State == st {
		return
	}
	m.stateGauge(s.State).Add(-1)
	m.stateGauge(st).Add(1)
	s.State = st
}

// shardRunning marks a shard's job as dispatched to a worker.
func (m *Monitor) shardRunning(shard int, phase string, pid int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setState(shard, ShardRunning)
	s := &m.shards[shard]
	s.Phase, s.PID, s.started = phase, pid, time.Now()
}

// shardReused records a checkpoint accepted in place of running a job.
// A shard that already ran (or failed) keeps its stronger state; the
// reuse still counts in the metrics.
func (m *Monitor) shardReused(shard int, phase string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg.Counter(fmt.Sprintf("namer_mine_checkpoints_reused_total{phase=%q}", phase)).Inc()
	s := &m.shards[shard]
	if s.State == ShardPending || s.State == ShardReused {
		m.setState(shard, ShardReused)
		s.Phase = phase
	}
}

// shardDone records a completed job and its measured resources.
func (m *Monitor) shardDone(shard int, phase string, res Result, wall time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setState(shard, ShardDone)
	s := &m.shards[shard]
	s.Phase, s.started = phase, time.Time{}
	s.WallMs += wall.Milliseconds()
	s.CPUMs += time.Duration(res.CPUNs).Milliseconds()
	if res.MaxRSSKB > s.MaxRSSKB {
		s.MaxRSSKB = res.MaxRSSKB
	}
	if res.Statements > 0 {
		s.Statements = res.Statements
	}
	m.reg.Counter(fmt.Sprintf("namer_mine_jobs_total{phase=%q,result=\"ok\"}", phase)).Inc()
	m.reg.Counter("namer_mine_files_parsed_total").Add(int64(res.FilesParsed))
	m.reg.Counter("namer_mine_statements_total").Add(int64(res.Statements))
	m.reg.Counter("namer_mine_job_cpu_ms_total").Add(time.Duration(res.CPUNs).Milliseconds())
	m.reg.Histogram(fmt.Sprintf("namer_mine_job_seconds{phase=%q}", phase), nil).Observe(wall)
}

// shardFailed records a job failure.
func (m *Monitor) shardFailed(shard int, phase, msg string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setState(shard, ShardFailed)
	s := &m.shards[shard]
	s.Phase, s.Error, s.started = phase, msg, time.Time{}
	m.reg.Counter(fmt.Sprintf("namer_mine_jobs_total{phase=%q,result=\"failed\"}", phase)).Inc()
}

// Snapshot returns a copy of the current state for the /status handler
// (and tests). Running shards report their in-flight wall time.
func (m *Monitor) Snapshot() (round string, elapsed time.Duration, shards []ShardStatus) {
	if m == nil {
		return "", 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	shards = make([]ShardStatus, len(m.shards))
	copy(shards, m.shards)
	for i := range shards {
		if shards[i].State == ShardRunning && !shards[i].started.IsZero() {
			shards[i].WallMs += now.Sub(shards[i].started).Milliseconds()
		}
		shards[i].started = time.Time{}
	}
	return m.round, now.Sub(m.start), shards
}

// StatusServer is the live HTTP surface of one driver run.
type StatusServer struct {
	mon *Monitor
	ln  net.Listener
	srv *http.Server
}

// StartStatus listens on addr and serves the Monitor's state. rec, when
// non-nil, is mounted at /debug/traces. The server runs until Close;
// it is independent of the Run's lifetime so a finished (or crashed)
// mine can still be inspected until the process exits.
func StartStatus(addr string, mon *Monitor, rec *obs.FlightRecorder, lg *log.Logger) (*StatusServer, error) {
	if mon == nil {
		return nil, fmt.Errorf("driver: StartStatus needs a Monitor")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		round, elapsed, shards := mon.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(statusSnapshot{
			Round: round, ElapsedMs: elapsed.Milliseconds(), Shards: shards,
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "namer-mine driver status: /status /metrics /debug/pprof/ /debug/traces")
	})
	mux.Handle("/metrics", mon.Registry().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if rec != nil {
		mux.Handle("/debug/traces", rec.Handler())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: status server: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			lg.Error("status server failed", log.Err(err))
		}
	}()
	lg.Info("status server listening", log.Str("addr", ln.Addr().String()))
	return &StatusServer{mon: mon, ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *StatusServer) Close() error { return s.srv.Close() }
