package driver

import (
	"encoding/binary"
	"fmt"
	"math"

	"namer/internal/confusion"
	"namer/internal/fptree"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

// Checkpoint payload codecs. All three artifact kinds share the same
// building blocks: an interned string table (path element values and end
// subtokens appear in thousands of paths each) and a path table
// (statements and tree item lists reference paths by dense id). Integers
// are unsigned varints. The envelope — magic, version, kind, CRC — is
// knowledge.WriteCheckpoint's job; these encodings only define the
// payloads.
//
//	shard-stmts   sliceHash, filesParsed, filesSkipped, strings, paths,
//	              per-path shard-local count, statements (path-id lists)
//	reduce-counts planHash, filesParsed, filesSkipped, statements,
//	              strings, paths (sorted by key), per-path global count,
//	              confusing pairs (mistaken, correct, count)
//	shard-trees   sliceHash, countsHash, strings, paths, per pattern
//	              type: type, transactions, item path-ids, fptree bytes
//
// Decode sanity bounds mirror the knowledge codecs: counts above these
// limits indicate corruption and fail fast instead of allocating.
const (
	maxArtifactStrings = 1 << 26
	maxArtifactStrLen  = 1 << 22
	maxArtifactPaths   = 1 << 26
	maxArtifactElems   = 1 << 16
	maxArtifactStmts   = 1 << 26
	maxArtifactPairs   = 1 << 26
	maxArtifactTypes   = 16
)

// Checkpoint kinds.
const (
	kindStmts  = "shard-stmts"
	kindCounts = "reduce-counts"
	kindTrees  = "shard-trees"
)

// shardStmts is map round 1's product for one shard.
type shardStmts struct {
	SliceHash    string
	FilesParsed  int
	FilesSkipped int
	Paths        []namepath.Path // distinct paths, first-appearance order
	Counts       []int           // shard-local occurrences, aligned with Paths
	Stmts        [][]int32       // per statement, ids into Paths
}

// reduceCounts is reduce 1's product: the global view round 2 needs.
type reduceCounts struct {
	PlanHash     string
	FilesParsed  int
	FilesSkipped int
	Statements   int
	Paths        []namepath.Path
	Counts       []int
	Pairs        *confusion.PairSet
}

// shardTrees is map round 2's product for one shard.
type shardTrees struct {
	SliceHash  string
	CountsHash string
	Types      []typedTree
}

// typedTree is one pattern type's FP subtree over a shard. Tree item id
// i denotes the path itemPaths[i]; on the wire the items section stores
// the artifact path-table id of each tree item.
type typedTree struct {
	Type         pattern.Type
	Transactions int
	Items        []int32 // artifact path-table ids, indexed by tree item
	Tree         []byte  // fptree.EncodeTree

	itemPaths []namepath.Path // tree item id -> path
}

// --- encoder ---

type artEnc struct {
	buf     []byte
	scratch [binary.MaxVarintLen64]byte

	strs  []string
	byStr map[string]uint64

	paths  []namepath.Path
	byPath map[string]int32
}

func newArtEnc() *artEnc {
	return &artEnc{byStr: make(map[string]uint64), byPath: make(map[string]int32)}
}

func (e *artEnc) uvarint(v uint64) {
	e.buf = append(e.buf, e.scratch[:binary.PutUvarint(e.scratch[:], v)]...)
}

func (e *artEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *artEnc) internStr(s string) uint64 {
	if id, ok := e.byStr[s]; ok {
		return id
	}
	id := uint64(len(e.strs))
	e.byStr[s] = id
	e.strs = append(e.strs, s)
	return id
}

func (e *artEnc) internPath(p namepath.Path) int32 {
	k := p.Key()
	if id, ok := e.byPath[k]; ok {
		return id
	}
	for _, el := range p.Prefix {
		e.internStr(el.Value)
	}
	e.internStr(p.End)
	id := int32(len(e.paths))
	e.byPath[k] = id
	e.paths = append(e.paths, p)
	return id
}

// tables emits the string and path tables. Call after every internStr/
// internPath, before any section that references ids.
func (e *artEnc) tables() {
	e.uvarint(uint64(len(e.strs)))
	for _, s := range e.strs {
		e.str(s)
	}
	e.uvarint(uint64(len(e.paths)))
	for _, p := range e.paths {
		e.uvarint(uint64(len(p.Prefix)))
		for _, el := range p.Prefix {
			e.uvarint(e.byStr[el.Value])
			e.uvarint(uint64(el.Index))
		}
		e.uvarint(e.byStr[p.End])
	}
}

// --- decoder ---

type artDec struct {
	data []byte
	pos  int

	strs  []string
	paths []namepath.Path
}

func (d *artDec) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("driver: truncated %s at byte %d", what, d.pos)
	}
	d.pos += n
	return v, nil
}

// scalar reads a standalone integer value (a file or statement tally),
// bounded only by its own range — unlike count, it implies no following
// bytes.
func (d *artDec) scalar(what string, max uint64) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("driver: %s %d out of range", what, v)
	}
	return int(v), nil
}

// count reads an element count: a table or list length whose elements
// occupy at least one byte each, so any value beyond the remaining
// payload is corruption.
func (d *artDec) count(what string, max uint64) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max || v > uint64(len(d.data)-d.pos) {
		return 0, fmt.Errorf("driver: implausible %s %d at byte %d", what, v, d.pos)
	}
	return int(v), nil
}

func (d *artDec) str(what string) (string, error) {
	n, err := d.count(what, maxArtifactStrLen)
	if err != nil {
		return "", err
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *artDec) strID(what string) (string, error) {
	id, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if id >= uint64(len(d.strs)) {
		return "", fmt.Errorf("driver: %s string id %d out of range at byte %d", what, id, d.pos)
	}
	return d.strs[id], nil
}

// tables reads the string and path tables written by artEnc.tables.
func (d *artDec) tables() error {
	nstr, err := d.count("string count", maxArtifactStrings)
	if err != nil {
		return err
	}
	d.strs = make([]string, nstr)
	for i := range d.strs {
		if d.strs[i], err = d.str("string"); err != nil {
			return err
		}
	}
	npath, err := d.count("path count", maxArtifactPaths)
	if err != nil {
		return err
	}
	d.paths = make([]namepath.Path, npath)
	for i := range d.paths {
		elems, err := d.count("path elems", maxArtifactElems)
		if err != nil {
			return err
		}
		p := namepath.Path{Prefix: make([]namepath.Elem, elems)}
		for j := range p.Prefix {
			if p.Prefix[j].Value, err = d.strID("elem value"); err != nil {
				return err
			}
			idx, err := d.uvarint("elem index")
			if err != nil {
				return err
			}
			if idx > math.MaxInt32 {
				return fmt.Errorf("driver: elem index %d out of range at byte %d", idx, d.pos)
			}
			p.Prefix[j].Index = int(idx)
		}
		if p.End, err = d.strID("path end"); err != nil {
			return err
		}
		d.paths[i] = p.Memoized()
	}
	return nil
}

func (d *artDec) pathID(what string) (int32, error) {
	id, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if id >= uint64(len(d.paths)) {
		return 0, fmt.Errorf("driver: %s path id %d out of range at byte %d", what, id, d.pos)
	}
	return int32(id), nil
}

func (d *artDec) done() error {
	if d.pos != len(d.data) {
		return fmt.Errorf("driver: %d trailing bytes in artifact", len(d.data)-d.pos)
	}
	return nil
}

// --- shard-stmts ---

func encodeShardStmts(a *shardStmts) []byte {
	e := newArtEnc()
	for _, p := range a.Paths {
		e.internPath(p)
	}
	e.str(a.SliceHash)
	e.uvarint(uint64(a.FilesParsed))
	e.uvarint(uint64(a.FilesSkipped))
	e.tables()
	for _, c := range a.Counts {
		e.uvarint(uint64(c))
	}
	e.uvarint(uint64(len(a.Stmts)))
	for _, ids := range a.Stmts {
		e.uvarint(uint64(len(ids)))
		for _, id := range ids {
			e.uvarint(uint64(id))
		}
	}
	return e.buf
}

func decodeShardStmts(data []byte) (*shardStmts, error) {
	d := &artDec{data: data}
	a := &shardStmts{}
	var err error
	if a.SliceHash, err = d.str("slice hash"); err != nil {
		return nil, err
	}
	if a.FilesParsed, err = d.scalar("files parsed", maxArtifactStmts); err != nil {
		return nil, err
	}
	if a.FilesSkipped, err = d.scalar("files skipped", maxArtifactStmts); err != nil {
		return nil, err
	}
	if err = d.tables(); err != nil {
		return nil, err
	}
	a.Paths = d.paths
	a.Counts = make([]int, len(a.Paths))
	for i := range a.Counts {
		c, err := d.uvarint("path count value")
		if err != nil {
			return nil, err
		}
		if c > math.MaxInt32 {
			return nil, fmt.Errorf("driver: path count %d out of range", c)
		}
		a.Counts[i] = int(c)
	}
	nstmt, err := d.count("statement count", maxArtifactStmts)
	if err != nil {
		return nil, err
	}
	a.Stmts = make([][]int32, nstmt)
	for i := range a.Stmts {
		k, err := d.count("statement paths", maxArtifactElems)
		if err != nil {
			return nil, err
		}
		ids := make([]int32, k)
		for j := range ids {
			if ids[j], err = d.pathID("statement path"); err != nil {
				return nil, err
			}
		}
		a.Stmts[i] = ids
	}
	return a, d.done()
}

// statements materializes the shard's indexed statements in extraction
// order — the same objects pass 2 and the satisfaction-ratio prune see
// in a single-process mine.
func (a *shardStmts) statements() []*pattern.Statement {
	out := make([]*pattern.Statement, len(a.Stmts))
	for i, ids := range a.Stmts {
		paths := make([]namepath.Path, len(ids))
		for j, id := range ids {
			paths[j] = a.Paths[id]
		}
		out[i] = pattern.NewStatement(paths)
	}
	return out
}

// --- reduce-counts ---

func encodeReduceCounts(a *reduceCounts) []byte {
	e := newArtEnc()
	for _, p := range a.Paths {
		e.internPath(p)
	}
	pairs := a.Pairs.Pairs()
	for _, pr := range pairs {
		e.internStr(pr[0])
		e.internStr(pr[1])
	}
	e.str(a.PlanHash)
	e.uvarint(uint64(a.FilesParsed))
	e.uvarint(uint64(a.FilesSkipped))
	e.uvarint(uint64(a.Statements))
	e.tables()
	for _, c := range a.Counts {
		e.uvarint(uint64(c))
	}
	e.uvarint(uint64(len(pairs)))
	for _, pr := range pairs {
		e.uvarint(e.byStr[pr[0]])
		e.uvarint(e.byStr[pr[1]])
		e.uvarint(uint64(a.Pairs.Count(pr[0], pr[1])))
	}
	return e.buf
}

func decodeReduceCounts(data []byte) (*reduceCounts, error) {
	d := &artDec{data: data}
	a := &reduceCounts{}
	var err error
	if a.PlanHash, err = d.str("plan hash"); err != nil {
		return nil, err
	}
	if a.FilesParsed, err = d.scalar("files parsed", maxArtifactStmts); err != nil {
		return nil, err
	}
	if a.FilesSkipped, err = d.scalar("files skipped", maxArtifactStmts); err != nil {
		return nil, err
	}
	if a.Statements, err = d.scalar("statement count", maxArtifactStmts); err != nil {
		return nil, err
	}
	if err = d.tables(); err != nil {
		return nil, err
	}
	a.Paths = d.paths
	a.Counts = make([]int, len(a.Paths))
	for i := range a.Counts {
		c, err := d.uvarint("path count value")
		if err != nil {
			return nil, err
		}
		if c > math.MaxInt32 {
			return nil, fmt.Errorf("driver: path count %d out of range", c)
		}
		a.Counts[i] = int(c)
	}
	npairs, err := d.count("pair count", maxArtifactPairs)
	if err != nil {
		return nil, err
	}
	a.Pairs = confusion.NewPairSet()
	for i := 0; i < npairs; i++ {
		mistaken, err := d.strID("pair mistaken")
		if err != nil {
			return nil, err
		}
		correct, err := d.strID("pair correct")
		if err != nil {
			return nil, err
		}
		n, err := d.uvarint("pair support")
		if err != nil {
			return nil, err
		}
		if n > math.MaxInt32 {
			return nil, fmt.Errorf("driver: pair support %d out of range", n)
		}
		a.Pairs.AddN(mistaken, correct, int(n))
	}
	return a, d.done()
}

// freq rebuilds the dataset-wide path frequency map keyed by path key —
// the exact input mining.BuildShardTree expects.
func (a *reduceCounts) freq() map[string]int {
	m := make(map[string]int, len(a.Paths))
	for i, p := range a.Paths {
		m[p.Key()] = a.Counts[i]
	}
	return m
}

// --- shard-trees ---

func encodeShardTrees(a *shardTrees) []byte {
	e := newArtEnc()
	// Pass 1: intern every type's item paths so the tables are complete
	// before any id is written; ids[t][i] is the path-table id of type
	// t's tree item i.
	ids := make([][]int32, len(a.Types))
	for t, tt := range a.Types {
		ids[t] = make([]int32, len(tt.itemPaths))
		for i, p := range tt.itemPaths {
			ids[t][i] = e.internPath(p)
		}
	}
	e.str(a.SliceHash)
	e.str(a.CountsHash)
	e.tables()
	e.uvarint(uint64(len(a.Types)))
	for t, tt := range a.Types {
		e.uvarint(uint64(tt.Type))
		e.uvarint(uint64(tt.Transactions))
		e.uvarint(uint64(len(ids[t])))
		for _, id := range ids[t] {
			e.uvarint(uint64(id))
		}
		e.uvarint(uint64(len(tt.Tree)))
		e.buf = append(e.buf, tt.Tree...)
	}
	return e.buf
}

func decodeShardTrees(data []byte) (*shardTrees, error) {
	d := &artDec{data: data}
	a := &shardTrees{}
	var err error
	if a.SliceHash, err = d.str("slice hash"); err != nil {
		return nil, err
	}
	if a.CountsHash, err = d.str("counts hash"); err != nil {
		return nil, err
	}
	if err = d.tables(); err != nil {
		return nil, err
	}
	ntypes, err := d.count("type count", maxArtifactTypes)
	if err != nil {
		return nil, err
	}
	a.Types = make([]typedTree, ntypes)
	for i := range a.Types {
		tt := &a.Types[i]
		typ, err := d.uvarint("pattern type")
		if err != nil {
			return nil, err
		}
		tt.Type = pattern.Type(typ)
		txs, err := d.uvarint("transactions")
		if err != nil {
			return nil, err
		}
		if txs > math.MaxInt32 {
			return nil, fmt.Errorf("driver: transaction count %d out of range", txs)
		}
		tt.Transactions = int(txs)
		nitems, err := d.count("item count", maxArtifactPaths)
		if err != nil {
			return nil, err
		}
		tt.Items = make([]int32, nitems)
		tt.itemPaths = make([]namepath.Path, nitems)
		for j := range tt.Items {
			if tt.Items[j], err = d.pathID("tree item"); err != nil {
				return nil, err
			}
			tt.itemPaths[j] = d.paths[tt.Items[j]]
		}
		ntree, err := d.count("tree bytes", 1<<31)
		if err != nil {
			return nil, err
		}
		tt.Tree = d.data[d.pos : d.pos+ntree]
		d.pos += ntree
	}
	return a, d.done()
}

// decodeTyped turns one decoded typedTree into the mining.ShardTree
// inputs: the FP tree and its item→path table. Every tree item is range
// checked against the table, so a corrupt artifact fails here instead of
// panicking inside the reduce merge.
func (tt *typedTree) decodeTyped() (*fptree.Tree, []namepath.Path, error) {
	t, err := fptree.DecodeTree(tt.Tree)
	if err != nil {
		return nil, nil, err
	}
	var rangeErr error
	t.Walk(func(n *fptree.Node, _ []int) {
		if rangeErr == nil && (n.Item < 0 || int(n.Item) >= len(tt.itemPaths)) {
			rangeErr = fmt.Errorf("driver: tree item %d outside %d-entry item table",
				n.Item, len(tt.itemPaths))
		}
	})
	if rangeErr != nil {
		return nil, nil, rangeErr
	}
	return t, tt.itemPaths, nil
}
