//go:build !unix

package driver

import (
	"os"
	"time"
)

// Non-unix platforms have no getrusage; resource accounting degrades to
// zeros and the rest of the driver carries on.

func processCPUTime() time.Duration { return 0 }

func processMaxRSSKB() int64 { return 0 }

func waitUsage(ps *os.ProcessState) (cpu time.Duration, maxRSSKB int64) { return 0, 0 }
