package driver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/fptree"
	"namer/internal/knowledge"
	"namer/internal/mining"
	"namer/internal/obs"
	"namer/internal/obs/log"
	"namer/internal/pattern"
)

// Job is one unit of map work, sent to a worker as a JSON line on stdin.
// The same struct drives in-process workers, so spawned and in-process
// runs execute identical code.
type Job struct {
	// Phase is "stmts" (map round 1: parse, analyze, extract statement
	// paths and shard-local counts) or "trees" (map round 2: rebuild the
	// shard's transactions against the global counts and grow one FP
	// subtree per pattern type).
	Phase string `json:"phase"`
	Shard int    `json:"shard"`
	// OutPath is where the worker writes its checkpoint artifact.
	OutPath string `json:"out_path"`
	// Trace asks a spawned worker to record the job as a local span tree
	// and ship it back on the done Result (Spans), so the driver can
	// stitch one cross-process trace. Off by default: an untraced job
	// pays nothing and its Result carries no span batch.
	Trace bool `json:"trace,omitempty"`

	// stmts-phase fields.
	CorpusDir            string   `json:"corpus_dir,omitempty"`
	Lang                 string   `json:"lang,omitempty"`
	Files                []string `json:"files,omitempty"` // corpus-relative, shard order
	UseAnalysis          bool     `json:"use_analysis,omitempty"`
	MaxPathsPerStatement int      `json:"max_paths,omitempty"`
	SliceHash            string   `json:"slice_hash,omitempty"`

	// trees-phase fields.
	StmtsPath    string `json:"stmts_path,omitempty"`  // this shard's stmts checkpoint
	CountsPath   string `json:"counts_path,omitempty"` // the reduce-counts checkpoint
	CountsHash   string `json:"counts_hash,omitempty"`
	MinPathCount int    `json:"min_path_count,omitempty"`
}

// Result is a worker→driver JSON line: either a progress event or the
// final outcome of a job.
type Result struct {
	Event string `json:"event"` // "progress" or "done"
	Shard int    `json:"shard"`
	Phase string `json:"phase,omitempty"`

	// progress fields: absolute within the job.
	Done  int `json:"done,omitempty"`
	Extra int `json:"extra,omitempty"`

	// done fields.
	OK           bool   `json:"ok"`
	Error        string `json:"error,omitempty"`
	FilesParsed  int    `json:"files_parsed,omitempty"`
	FilesSkipped int    `json:"files_skipped,omitempty"`
	Statements   int    `json:"statements,omitempty"`
	Transactions int    `json:"transactions,omitempty"`

	// Resource accounting for the job. CPUNs and MaxRSSKB come from
	// getrusage(RUSAGE_SELF); AllocBytes is the Go heap allocation delta.
	// For a spawned worker (one job at a time in its own process) the
	// CPU delta is exact; for in-process jobs the deltas are process-wide
	// and therefore approximate when jobs overlap.
	CPUNs      int64 `json:"cpu_ns,omitempty"`
	MaxRSSKB   int64 `json:"max_rss_kb,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`

	// Cross-process tracing: a spawned worker's PID and, when the job
	// asked for tracing, the job's span tree in wire form. Both are
	// omitted from the JSON line when unset, so the protocol carries no
	// span payload for untraced runs.
	PID   int            `json:"pid,omitempty"`
	Spans []obs.WireSpan `json:"spans,omitempty"`
}

// RunJob executes one map job and writes its checkpoint. report, when
// non-nil, receives absolute (done, extra) progress for the job. When ctx
// carries a live trace the job records its pipeline as spans (including
// the checkpoint I/O); otherwise every span call is a free no-op.
func RunJob(ctx context.Context, job Job, report func(done, extra int)) Result {
	res := Result{Event: "done", Shard: job.Shard, Phase: job.Phase}
	cpu0 := processCPUTime()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	ctx, sp := obs.StartSpan(ctx, "job")
	sp.SetAttr("phase", job.Phase)
	sp.SetAttrInt("shard", job.Shard)
	var err error
	switch job.Phase {
	case "stmts":
		err = runStmtsJob(ctx, job, report, &res)
	case "trees":
		err = runTreesJob(ctx, job, report, &res)
	default:
		err = fmt.Errorf("driver: unknown job phase %q", job.Phase)
	}
	sp.End()

	runtime.ReadMemStats(&m1)
	res.CPUNs = int64(processCPUTime() - cpu0)
	res.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	res.MaxRSSKB = processMaxRSSKB()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.OK = true
	return res
}

// runStmtsJob is map round 1: load and parse the shard's files, run the
// per-file front end (analysis, AST+ transformation, name path
// extraction), and checkpoint the statement path lists plus the shard's
// pass-1 path counts.
func runStmtsJob(ctx context.Context, job Job, report func(done, extra int), res *Result) error {
	lang, err := ast.ParseLanguage(job.Lang)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(lang)
	cfg.UseAnalysis = job.UseAnalysis
	if job.MaxPathsPerStatement > 0 {
		cfg.Mining.MaxPathsPerStatement = job.MaxPathsPerStatement
	}
	// Shard-level fan-out is the driver's job; within a shard the front
	// end runs serially so P workers never oversubscribe P cores.
	cfg.Parallelism = 1
	if report != nil {
		cfg.Progress = func(done, total, statements int) { report(done, statements) }
	}

	_, lsp := obs.StartSpan(ctx, "load_shard")
	var files []*core.InputFile
	skipped := 0
	for _, rel := range job.Files {
		data, err := os.ReadFile(filepath.Join(job.CorpusDir, rel))
		if err != nil {
			skipped++
			continue
		}
		root, err := core.ParseSource(lang, string(data))
		if err != nil {
			skipped++
			continue
		}
		files = append(files, &core.InputFile{
			Repo:   repoOf(rel),
			Path:   rel,
			Source: string(data),
			Root:   root,
		})
	}
	lsp.SetAttrInt("files", len(files))
	lsp.SetAttrInt("skipped", skipped)
	lsp.End()

	sys := core.NewSystem(cfg)
	// Per-file analysis panics degrade to empty statement lists, exactly
	// as the single-process pipeline treats them (warnings, not failures).
	sys.ProcessFilesCtx(ctx, files)

	art := &shardStmts{
		SliceHash:    job.SliceHash,
		FilesParsed:  len(files),
		FilesSkipped: skipped,
	}
	interned := make(map[string]int32)
	for _, ps := range sys.Stmts {
		ids := make([]int32, len(ps.PS.Paths))
		for j, p := range ps.PS.Paths {
			k := p.Key()
			id, ok := interned[k]
			if !ok {
				id = int32(len(art.Paths))
				interned[k] = id
				art.Paths = append(art.Paths, p)
				art.Counts = append(art.Counts, 0)
			}
			art.Counts[id]++
			ids[j] = id
		}
		art.Stmts = append(art.Stmts, ids)
	}
	res.FilesParsed = art.FilesParsed
	res.FilesSkipped = art.FilesSkipped
	res.Statements = len(art.Stmts)
	return knowledge.WriteCheckpointCtx(ctx, job.OutPath, kindStmts, encodeShardStmts(art))
}

// minedTypes is the fixed pattern-type order of the pipeline (the order
// core.System.MinePatterns appends results in).
var minedTypes = []pattern.Type{pattern.Consistency, pattern.ConfusingWord}

// runTreesJob is map round 2: re-derive the shard's statements from its
// round-1 checkpoint, rebuild transactions against the dataset-wide
// counts, and checkpoint one FP subtree per pattern type.
func runTreesJob(ctx context.Context, job Job, report func(done, extra int), res *Result) error {
	stmtsPayload, err := knowledge.ReadCheckpointCtx(ctx, job.StmtsPath, kindStmts)
	if err != nil {
		return err
	}
	sa, err := decodeShardStmts(stmtsPayload)
	if err != nil {
		return fmt.Errorf("%s: %w", job.StmtsPath, err)
	}
	countsPayload, err := knowledge.ReadCheckpointCtx(ctx, job.CountsPath, kindCounts)
	if err != nil {
		return err
	}
	if h := hashBytes(countsPayload); job.CountsHash != "" && h != job.CountsHash {
		return fmt.Errorf("driver: %s hash %s, want %s", job.CountsPath, h, job.CountsHash)
	}
	ca, err := decodeReduceCounts(countsPayload)
	if err != nil {
		return fmt.Errorf("%s: %w", job.CountsPath, err)
	}

	stmts := sa.statements()
	freq := ca.freq()
	cfg := mining.Config{
		MinPathCount:         job.MinPathCount,
		MaxPathsPerStatement: job.MaxPathsPerStatement,
		Parallelism:          1,
	}
	art := &shardTrees{SliceHash: sa.SliceHash, CountsHash: hashBytes(countsPayload)}
	for i, typ := range minedTypes {
		pairs := ca.Pairs
		if typ == pattern.Consistency {
			pairs = nil
		}
		_, tsp := obs.StartSpan(ctx, "build_shard_tree")
		tsp.SetAttr("type", typ.String())
		st := mining.BuildShardTree(stmts, typ, pairs, freq, cfg)
		tsp.SetAttrInt("transactions", st.Transactions)
		tsp.End()
		art.Types = append(art.Types, typedTree{
			Type:         typ,
			Transactions: st.Transactions,
			Tree:         fptree.EncodeTree(st.Tree),
			itemPaths:    st.Items,
		})
		res.Transactions += st.Transactions
		if report != nil {
			report(i+1, res.Transactions)
		}
	}
	res.Statements = len(stmts)
	return knowledge.WriteCheckpointCtx(ctx, job.OutPath, kindTrees, encodeShardTrees(art))
}

func hashBytes(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// ServeWorker is the namer-mine -worker main loop: it reads Job JSON
// lines from r and writes progress and done Result lines to w until EOF.
// Job failures are reported in-band (OK=false); only transport errors
// end the loop with a non-nil error. lg (nil is fine) receives per-job
// debug lines on the worker's stderr, which the driver captures and
// re-tags with the worker's PID.
//
// When a job arrives with Trace set, the worker records the job under a
// local trace and ships the finished span tree back on the done Result —
// the worker half of the cross-process trace: it never opens a socket or
// a file, the spans ride the same stdout pipe as the results.
func ServeWorker(r io.Reader, w io.Writer, lg *log.Logger) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	pid := os.Getpid()
	for {
		var job Job
		if err := dec.Decode(&job); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("driver: worker read: %w", err)
		}
		ctx := context.Background()
		var tr *obs.Trace
		if job.Trace {
			ctx, tr = obs.NewTrace(ctx, fmt.Sprintf("shard-%04d %s", job.Shard, job.Phase), "")
			tr.SetMaxSpans(1 << 16)
		}
		lg.Debug("job start", log.Str("phase", job.Phase), log.Int("shard", job.Shard),
			log.Int("files", len(job.Files)))
		start := time.Now()
		var reportErr error
		res := RunJob(ctx, job, func(done, extra int) {
			if reportErr == nil {
				reportErr = enc.Encode(Result{
					Event: "progress", Shard: job.Shard, Phase: job.Phase,
					Done: done, Extra: extra,
				})
			}
		})
		res.PID = pid
		if tr != nil {
			tr.Finish()
			res.Spans = tr.WireSpans()
		}
		if reportErr != nil {
			return fmt.Errorf("driver: worker write: %w", reportErr)
		}
		lg.Debug("job done", log.Str("phase", job.Phase), log.Int("shard", job.Shard),
			log.Dur("wall", time.Since(start)), log.Int64("cpu_ns", res.CPUNs),
			log.Int("spans", len(res.Spans)))
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("driver: worker write: %w", err)
		}
	}
}
