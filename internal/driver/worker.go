package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/fptree"
	"namer/internal/knowledge"
	"namer/internal/mining"
	"namer/internal/pattern"
)

// Job is one unit of map work, sent to a worker as a JSON line on stdin.
// The same struct drives in-process workers, so spawned and in-process
// runs execute identical code.
type Job struct {
	// Phase is "stmts" (map round 1: parse, analyze, extract statement
	// paths and shard-local counts) or "trees" (map round 2: rebuild the
	// shard's transactions against the global counts and grow one FP
	// subtree per pattern type).
	Phase string `json:"phase"`
	Shard int    `json:"shard"`
	// OutPath is where the worker writes its checkpoint artifact.
	OutPath string `json:"out_path"`

	// stmts-phase fields.
	CorpusDir            string   `json:"corpus_dir,omitempty"`
	Lang                 string   `json:"lang,omitempty"`
	Files                []string `json:"files,omitempty"` // corpus-relative, shard order
	UseAnalysis          bool     `json:"use_analysis,omitempty"`
	MaxPathsPerStatement int      `json:"max_paths,omitempty"`
	SliceHash            string   `json:"slice_hash,omitempty"`

	// trees-phase fields.
	StmtsPath    string `json:"stmts_path,omitempty"`  // this shard's stmts checkpoint
	CountsPath   string `json:"counts_path,omitempty"` // the reduce-counts checkpoint
	CountsHash   string `json:"counts_hash,omitempty"`
	MinPathCount int    `json:"min_path_count,omitempty"`
}

// Result is a worker→driver JSON line: either a progress event or the
// final outcome of a job.
type Result struct {
	Event string `json:"event"` // "progress" or "done"
	Shard int    `json:"shard"`
	Phase string `json:"phase,omitempty"`

	// progress fields: absolute within the job.
	Done  int `json:"done,omitempty"`
	Extra int `json:"extra,omitempty"`

	// done fields.
	OK           bool   `json:"ok"`
	Error        string `json:"error,omitempty"`
	FilesParsed  int    `json:"files_parsed,omitempty"`
	FilesSkipped int    `json:"files_skipped,omitempty"`
	Statements   int    `json:"statements,omitempty"`
	Transactions int    `json:"transactions,omitempty"`
}

// RunJob executes one map job and writes its checkpoint. report, when
// non-nil, receives absolute (done, extra) progress for the job.
func RunJob(job Job, report func(done, extra int)) Result {
	res := Result{Event: "done", Shard: job.Shard, Phase: job.Phase}
	var err error
	switch job.Phase {
	case "stmts":
		err = runStmtsJob(job, report, &res)
	case "trees":
		err = runTreesJob(job, report, &res)
	default:
		err = fmt.Errorf("driver: unknown job phase %q", job.Phase)
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.OK = true
	return res
}

// runStmtsJob is map round 1: load and parse the shard's files, run the
// per-file front end (analysis, AST+ transformation, name path
// extraction), and checkpoint the statement path lists plus the shard's
// pass-1 path counts.
func runStmtsJob(job Job, report func(done, extra int), res *Result) error {
	lang, err := ast.ParseLanguage(job.Lang)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(lang)
	cfg.UseAnalysis = job.UseAnalysis
	if job.MaxPathsPerStatement > 0 {
		cfg.Mining.MaxPathsPerStatement = job.MaxPathsPerStatement
	}
	// Shard-level fan-out is the driver's job; within a shard the front
	// end runs serially so P workers never oversubscribe P cores.
	cfg.Parallelism = 1
	if report != nil {
		cfg.Progress = func(done, total, statements int) { report(done, statements) }
	}

	var files []*core.InputFile
	skipped := 0
	for _, rel := range job.Files {
		data, err := os.ReadFile(filepath.Join(job.CorpusDir, rel))
		if err != nil {
			skipped++
			continue
		}
		root, err := core.ParseSource(lang, string(data))
		if err != nil {
			skipped++
			continue
		}
		files = append(files, &core.InputFile{
			Repo:   repoOf(rel),
			Path:   rel,
			Source: string(data),
			Root:   root,
		})
	}

	sys := core.NewSystem(cfg)
	// Per-file analysis panics degrade to empty statement lists, exactly
	// as the single-process pipeline treats them (warnings, not failures).
	sys.ProcessFiles(files)

	art := &shardStmts{
		SliceHash:    job.SliceHash,
		FilesParsed:  len(files),
		FilesSkipped: skipped,
	}
	interned := make(map[string]int32)
	for _, ps := range sys.Stmts {
		ids := make([]int32, len(ps.PS.Paths))
		for j, p := range ps.PS.Paths {
			k := p.Key()
			id, ok := interned[k]
			if !ok {
				id = int32(len(art.Paths))
				interned[k] = id
				art.Paths = append(art.Paths, p)
				art.Counts = append(art.Counts, 0)
			}
			art.Counts[id]++
			ids[j] = id
		}
		art.Stmts = append(art.Stmts, ids)
	}
	res.FilesParsed = art.FilesParsed
	res.FilesSkipped = art.FilesSkipped
	res.Statements = len(art.Stmts)
	return knowledge.WriteCheckpoint(job.OutPath, kindStmts, encodeShardStmts(art))
}

// minedTypes is the fixed pattern-type order of the pipeline (the order
// core.System.MinePatterns appends results in).
var minedTypes = []pattern.Type{pattern.Consistency, pattern.ConfusingWord}

// runTreesJob is map round 2: re-derive the shard's statements from its
// round-1 checkpoint, rebuild transactions against the dataset-wide
// counts, and checkpoint one FP subtree per pattern type.
func runTreesJob(job Job, report func(done, extra int), res *Result) error {
	stmtsPayload, err := knowledge.ReadCheckpoint(job.StmtsPath, kindStmts)
	if err != nil {
		return err
	}
	sa, err := decodeShardStmts(stmtsPayload)
	if err != nil {
		return fmt.Errorf("%s: %w", job.StmtsPath, err)
	}
	countsPayload, err := knowledge.ReadCheckpoint(job.CountsPath, kindCounts)
	if err != nil {
		return err
	}
	if h := hashBytes(countsPayload); job.CountsHash != "" && h != job.CountsHash {
		return fmt.Errorf("driver: %s hash %s, want %s", job.CountsPath, h, job.CountsHash)
	}
	ca, err := decodeReduceCounts(countsPayload)
	if err != nil {
		return fmt.Errorf("%s: %w", job.CountsPath, err)
	}

	stmts := sa.statements()
	freq := ca.freq()
	cfg := mining.Config{
		MinPathCount:         job.MinPathCount,
		MaxPathsPerStatement: job.MaxPathsPerStatement,
		Parallelism:          1,
	}
	art := &shardTrees{SliceHash: sa.SliceHash, CountsHash: hashBytes(countsPayload)}
	for i, typ := range minedTypes {
		pairs := ca.Pairs
		if typ == pattern.Consistency {
			pairs = nil
		}
		st := mining.BuildShardTree(stmts, typ, pairs, freq, cfg)
		art.Types = append(art.Types, typedTree{
			Type:         typ,
			Transactions: st.Transactions,
			Tree:         fptree.EncodeTree(st.Tree),
			itemPaths:    st.Items,
		})
		res.Transactions += st.Transactions
		if report != nil {
			report(i+1, res.Transactions)
		}
	}
	res.Statements = len(stmts)
	return knowledge.WriteCheckpoint(job.OutPath, kindTrees, encodeShardTrees(art))
}

func hashBytes(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// ServeWorker is the namer-mine -worker main loop: it reads Job JSON
// lines from r and writes progress and done Result lines to w until EOF.
// Job failures are reported in-band (OK=false); only transport errors
// end the loop with a non-nil error.
func ServeWorker(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var job Job
		if err := dec.Decode(&job); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("driver: worker read: %w", err)
		}
		var reportErr error
		res := RunJob(job, func(done, extra int) {
			if reportErr == nil {
				reportErr = enc.Encode(Result{
					Event: "progress", Shard: job.Shard, Phase: job.Phase,
					Done: done, Extra: extra,
				})
			}
		})
		if reportErr != nil {
			return fmt.Errorf("driver: worker write: %w", reportErr)
		}
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("driver: worker write: %w", err)
		}
	}
}
